// Ablation: write-through vs write-back DRAM caching.
//
// Section 4.2 of the paper simulates write-through caching (the Macintosh /
// DOS behaviour) and notes that "a write-back cache might avoid some
// erasures at the cost of occasional data loss".  This bench quantifies
// that: device write traffic, segment erasures, energy, and response under
// both policies, with a 30-s periodic sync in write-back mode.
//
// The cache policy is a config flag, not a spec dimension, so the bench
// runs hand-built points through the engine.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Ablation: write-through vs write-back DRAM cache (scale %.2f) ==\n", scale);
  std::printf("(2-MB DRAM; write-back syncs every 30 s; hp is omitted -- it has no\n");
  std::printf(" DRAM cache in the paper's methodology)\n\n");

  const std::vector<const char*> workloads = {"mac", "dos"};
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const DeviceSpec& spec :
         {Cu140Datasheet(), Sdp5Datasheet(), IntelCardDatasheet()}) {
      for (const bool write_back : {false, true}) {
        ExperimentPoint point;
        point.index = points.size();
        point.workload = workload;
        point.scale = scale;
        point.config = MakePaperConfig(spec, 2 * 1024 * 1024);
        point.config.write_back_cache = write_back;
        points.push_back(std::move(point));
      }
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

  std::size_t next = 0;
  for (const char* workload : workloads) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Device", "Policy", "Device writes", "Bytes written (MB)",
                        "Erases", "Energy (J)", "Write Mean (ms)"});
    for (const DeviceSpec& spec :
         {Cu140Datasheet(), Sdp5Datasheet(), IntelCardDatasheet()}) {
      for (const bool write_back : {false, true}) {
        const SimResult& result = outcomes[next++].result;
        table.BeginRow()
            .Cell(spec.name)
            .Cell(std::string(write_back ? "write-back" : "write-through"))
            .Cell(static_cast<std::int64_t>(result.counters.writes))
            .Cell(static_cast<double>(result.counters.bytes_written) / (1024.0 * 1024.0), 1)
            .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
            .Cell(result.total_energy_j(), 0)
            .Cell(result.write_response_ms.mean(), 2);
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(ablation_writeback)({
    .name = "ablation_writeback",
    .description = "Write-through vs write-back DRAM cache",
    .source = "Section 4.2",
    .dims = "workload{mac,dos} x device{3} x policy{through,back}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
