// Ablation: write-through vs write-back DRAM caching.
//
// Section 4.2 of the paper simulates write-through caching (the Macintosh /
// DOS behaviour) and notes that "a write-back cache might avoid some
// erasures at the cost of occasional data loss".  This bench quantifies
// that: device write traffic, segment erasures, energy, and response under
// both policies, with a 30-s periodic sync in write-back mode.
//
// Usage: bench_ablation_writeback [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(double scale) {
  std::printf("== Ablation: write-through vs write-back DRAM cache (scale %.2f) ==\n", scale);
  std::printf("(2-MB DRAM; write-back syncs every 30 s; hp is omitted -- it has no\n");
  std::printf(" DRAM cache in the paper's methodology)\n\n");

  for (const char* workload : {"mac", "dos"}) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Device", "Policy", "Device writes", "Bytes written (MB)",
                        "Erases", "Energy (J)", "Write Mean (ms)"});
    for (const DeviceSpec& spec :
         {Cu140Datasheet(), Sdp5Datasheet(), IntelCardDatasheet()}) {
      for (const bool write_back : {false, true}) {
        SimConfig config = MakePaperConfig(spec, 2 * 1024 * 1024);
        config.write_back_cache = write_back;
        const SimResult result = RunNamedWorkload(workload, config, scale);
        table.BeginRow()
            .Cell(spec.name)
            .Cell(std::string(write_back ? "write-back" : "write-through"))
            .Cell(static_cast<std::int64_t>(result.counters.writes))
            .Cell(static_cast<double>(result.counters.bytes_written) / (1024.0 * 1024.0), 1)
            .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
            .Cell(result.total_energy_j(), 0)
            .Cell(result.write_response_ms.mean(), 2);
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
