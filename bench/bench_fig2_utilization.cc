// Reproduces Figure 2 (and the section 5.2 endurance numbers): simulated
// energy consumption and mean write response time of the Intel flash card
// (datasheet specs, 128-KB segments) as a function of flash storage
// utilization, for the mac, dos, and hp traces, plus per-segment erase
// counts (endurance).
//
// Flash capacity is held constant across the sweep (large relative to each
// trace) and utilization is set by preloading filler data, mirroring the
// paper's methodology.  The sweep itself runs on the src/runner engine: one
// grid per trace, fanned across all cores, with identical results to the
// old serial loops (per-point seeding is deterministic).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/ascii_plot.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  const std::vector<double> utilizations = {0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95};

  std::printf("== Figure 2: Intel flash card vs storage utilization (scale %.2f) ==\n", scale);
  std::printf("(paper: 40%%->95%% raises energy 70-190%%, write response up to 30%%, and\n");
  std::printf(" the mac max segment-erase count 7->34, mean 0.9->1.9)\n");

  AsciiPlot energy_plot("Figure 2(a): energy vs flash utilization", "utilization %",
                        "J (per trace)");
  AsciiPlot write_plot("Figure 2(b): mean write response vs flash utilization",
                       "utilization %", "ms");
  const char glyphs[] = {'m', 'd', 'h'};
  int glyph_index = 0;

  for (const char* workload : {"mac", "dos", "hp"}) {
    // Fixed capacity across the sweep: big enough for the highest demand.
    // (The engine regenerates this trace internally from the same seed.)
    const Trace trace = GenerateNamedWorkload(workload, scale);
    const BlockTrace blocks = BlockMapper::Map(trace);
    const std::uint64_t capacity =
        RequiredCapacityBytes(blocks.total_bytes(), utilizations.front(), 128 * 1024);

    ExperimentSpec spec;
    spec.base = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
    spec.base.capacity_bytes = capacity;
    spec.base.auto_capacity = false;
    spec.workloads = {workload};
    spec.utilizations = utilizations;
    spec.scale = scale;

    const std::vector<SweepOutcome> outcomes = ctx.RunGrid(spec);

    std::vector<double> xs;
    std::vector<double> energies;
    std::vector<double> write_means;

    std::printf("\n-- %s trace (flash capacity %.1f MB) --\n", workload,
                static_cast<double>(capacity) / (1024.0 * 1024.0));
    TablePrinter table({"Utilization (%)", "Energy (J)", "Write Mean (ms)", "Write Max",
                        "Erases", "Blocks copied", "Max seg erases", "Mean seg erases"});
    double energy40 = 0.0;
    double write40 = 0.0;
    for (const SweepOutcome& outcome : outcomes) {
      const double util = outcome.point.config.flash_utilization;
      const SimResult& result = outcome.result;
      xs.push_back(util * 100.0);
      energies.push_back(result.total_energy_j());
      write_means.push_back(result.write_response_ms.mean());
      if (util == utilizations.front()) {
        energy40 = result.total_energy_j();
        write40 = result.write_response_ms.mean();
      }
      table.BeginRow()
          .Cell(util * 100.0, 0)
          .Cell(result.total_energy_j(), 0)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(result.write_response_ms.max(), 0)
          .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
          .Cell(static_cast<std::int64_t>(result.counters.blocks_copied))
          .Cell(result.max_segment_erases, 0)
          .Cell(result.mean_segment_erases, 2);
      if (util == utilizations.back()) {
        std::printf("95%% vs 40%%: energy +%.0f%%, write response %+.0f%%\n",
                    (result.total_energy_j() / energy40 - 1.0) * 100.0,
                    write40 > 0 ? (result.write_response_ms.mean() / write40 - 1.0) * 100.0
                                : 0.0);
      }
    }
    table.Print(std::cout);
    energy_plot.AddSeries(workload, glyphs[glyph_index], xs, energies);
    write_plot.AddSeries(workload, glyphs[glyph_index], xs, write_means);
    ++glyph_index;
  }
  std::printf("\n");
  energy_plot.Render(std::cout);
  std::printf("\n");
  write_plot.Render(std::cout);
}

REGISTER_BENCH(fig2_utilization)({
    .name = "fig2_utilization",
    .description = "Intel flash card energy/response vs storage utilization",
    .source = "Figure 2",
    .dims = "workload{mac,dos,hp} x utilization{40..95%}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
