// Hybrid disk+flash storage with the paper's economics.
//
// Section 1 prices flash at $30-50/Mbyte against $1-5/Mbyte for disk, which
// is why "replace the disk with flash" was a real trade-off in 1994.  This
// bench compares disk-only, flash-only, and hybrid organizations (a small
// flash card holding the hot files) on energy, response time, and 1994
// dollars.
//
// The disk-only and flash-only rows are plain simulator configurations and
// run as one engine batch up front; the hybrid organizations use
// src/hybrid directly and emit their rows by hand.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/hybrid/hybrid_store.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

// Mid-range 1994 prices from the paper's introduction.
constexpr double kFlashDollarsPerMb = 40.0;
constexpr double kDiskDollarsPerMb = 3.0;

double StorageDollars(double disk_mb, double flash_mb) {
  return disk_mb * kDiskDollarsPerMb + flash_mb * kFlashDollarsPerMb;
}

struct RunStats {
  double energy_j = 0.0;
  double read_ms = 0.0;
  double write_ms = 0.0;
  double flash_fraction = 0.0;
  std::uint64_t promotions = 0;
};

RunStats RunHybrid(const BlockTrace& trace, std::uint64_t flash_bytes) {
  HybridConfig config;
  config.flash_bytes = flash_bytes;
  config.block_bytes = trace.block_bytes;
  config.disk_capacity_bytes =
      std::max<std::uint64_t>(trace.total_bytes(), 40ull * 1024 * 1024);
  HybridStore store(config);

  RunningStats reads;
  RunningStats writes;
  const std::uint64_t warm = trace.records.size() / 10;
  for (std::uint64_t i = 0; i < trace.records.size(); ++i) {
    const BlockRecord& rec = trace.records[i];
    const SimTime response = store.Handle(rec);
    if (i >= warm) {
      if (rec.op == OpType::kRead) {
        reads.Add(MsFromUs(response));
      } else if (rec.op == OpType::kWrite) {
        writes.Add(MsFromUs(response));
      }
    }
  }
  store.Finish(trace.records.back().time_us);
  return RunStats{store.total_energy_j(), reads.mean(), writes.mean(),
                  store.flash_service_fraction(), store.promotions()};
}

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Hybrid disk+flash placement vs all-disk / all-flash ==\n");
  std::printf("(scale %.2f; 1994 prices: flash $%.0f/MB, disk $%.0f/MB; 40-MB store)\n\n",
              scale, kFlashDollarsPerMb, kDiskDollarsPerMb);

  const std::vector<const char*> workloads = {"mac", "synth"};
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const DeviceSpec& spec : {Cu140Datasheet(), IntelCardDatasheet()}) {
      ExperimentPoint point;
      point.index = points.size();
      point.workload = workload;
      point.scale = scale;
      point.config = MakePaperConfig(spec, 2 * 1024 * 1024);
      points.push_back(std::move(point));
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));
  std::size_t next = 0;

  for (const char* workload : workloads) {
    const Trace trace = GenerateNamedWorkload(workload, scale);
    const BlockTrace blocks = BlockMapper::Map(trace);
    const double store_mb = 40.0;

    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Organization", "1994 $", "Energy (J)", "Read Mean (ms)",
                        "Write Mean (ms)", "Flash svc frac", "Promotions"});

    const SimResult& disk_result = outcomes[next++].result;
    const SimResult& flash_result = outcomes[next++].result;
    {
      const SimResult& r = disk_result;
      table.BeginRow()
          .Cell(std::string("disk only (+SRAM)"))
          .Cell(StorageDollars(store_mb, 0), 0)
          .Cell(r.total_energy_j(), 0)
          .Cell(r.read_response_ms.mean(), 2)
          .Cell(r.write_response_ms.mean(), 2)
          .Cell(std::string("-"))
          .Cell(static_cast<std::int64_t>(0));
    }
    for (const std::uint64_t mb : {2ull, 4ull, 8ull}) {
      const RunStats stats = RunHybrid(blocks, mb * 1024 * 1024);
      char label[48];
      std::snprintf(label, sizeof(label), "hybrid: disk + %llu-MB flash",
                    static_cast<unsigned long long>(mb));
      table.BeginRow()
          .Cell(std::string(label))
          .Cell(StorageDollars(store_mb, static_cast<double>(mb)), 0)
          .Cell(stats.energy_j, 0)
          .Cell(stats.read_ms, 2)
          .Cell(stats.write_ms, 2)
          .Cell(stats.flash_fraction, 2)
          .Cell(static_cast<std::int64_t>(stats.promotions));
      ResultRow row;
      row.AddText("workload", workload);
      row.AddInt("flash_mb", static_cast<std::int64_t>(mb));
      row.AddNumber("dollars_1994", StorageDollars(store_mb, static_cast<double>(mb)));
      row.AddNumber("energy_j", stats.energy_j);
      row.AddNumber("read_mean_ms", stats.read_ms);
      row.AddNumber("write_mean_ms", stats.write_ms);
      row.AddNumber("flash_service_fraction", stats.flash_fraction);
      row.AddInt("promotions", static_cast<std::int64_t>(stats.promotions));
      ctx.Emit(std::move(row));
    }
    {
      const SimResult& r = flash_result;
      table.BeginRow()
          .Cell(std::string("flash only"))
          .Cell(StorageDollars(0, store_mb), 0)
          .Cell(r.total_energy_j(), 0)
          .Cell(r.read_response_ms.mean(), 2)
          .Cell(r.write_response_ms.mean(), 2)
          .Cell(std::string("1.00"))
          .Cell(static_cast<std::int64_t>(0));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(related_hybrid)({
    .name = "related_hybrid",
    .description = "Hybrid disk+flash placement vs all-disk / all-flash",
    .source = "Section 1/6",
    .dims = "workload{mac,synth} x organization{disk,hybrid 2-8MB,flash}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
