// Ablation: file-system metadata traffic.
//
// The paper's file-level traces lack metadata operations (section 4.1), and
// its preprocessing maps files to disk blocks with zero file-system
// overhead.  This bench lowers the same workloads through the FAT substrate
// (src/fs) and compares: metadata write share, response times, energy, and
// -- the classic result -- how the fixed, scorching-hot FAT blocks
// concentrate flash-card erasures (the wear problem log-structured flash
// file systems were invented to avoid).
//
// The FAT-lowered trace is injected, which the engine's named-workload
// regeneration cannot express, so this bench runs the simulator directly
// and emits its comparison rows by hand.
#include <cstdio>
#include <iostream>
#include <string>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/fs/fat_file_system.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Ablation: naive file->block mapping vs FAT metadata traffic ==\n");
  std::printf("(scale %.2f; flash at 80%% utilization; disk with SRAM buffer)\n\n", scale);

  for (const char* workload : {"mac", "dos"}) {
    const Trace trace = GenerateNamedWorkload(workload, scale);

    const BlockTrace naive = BlockMapper::Map(trace);
    FatConfig fat_config;
    fat_config.block_bytes = trace.block_bytes;
    fat_config.capacity_bytes =
        2 * naive.total_bytes() + 16ull * 1024 * 1024;  // roomy volume
    fat_config.dir_entries = 4096;
    FatFileSystem fat(fat_config);
    const BlockTrace with_fat = fat.Lower(trace);

    const FatStats& stats = fat.stats();
    std::printf("-- %s trace: %llu data + %llu metadata block writes (%.1f%% metadata),\n",
                workload,
                static_cast<unsigned long long>(stats.data_blocks_written),
                static_cast<unsigned long long>(stats.metadata_blocks_written()),
                100.0 * static_cast<double>(stats.metadata_blocks_written()) /
                    static_cast<double>(stats.metadata_blocks_written() +
                                        stats.data_blocks_written));
    std::printf("   %.2f extents per file (fragmentation), FAT region %llu blocks --\n",
                stats.mean_extents_per_file,
                static_cast<unsigned long long>(fat.fat_blocks()));

    TablePrinter table({"Device", "Mapping", "Energy (J)", "Read Mean (ms)",
                        "Write Mean (ms)", "Erases", "Max seg erases"});
    for (const DeviceSpec& spec : {Cu140Datasheet(), IntelCardDatasheet()}) {
      for (const bool use_fat : {false, true}) {
        const BlockTrace& blocks = use_fat ? with_fat : naive;
        SimConfig config = MakePaperConfig(spec, 2 * 1024 * 1024);
        const SimResult result = RunSimulation(blocks, config);
        table.BeginRow()
            .Cell(spec.name)
            .Cell(std::string(use_fat ? "FAT (with metadata)" : "naive"))
            .Cell(result.total_energy_j(), 0)
            .Cell(result.read_response_ms.mean(), 2)
            .Cell(result.write_response_ms.mean(), 2)
            .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
            .Cell(result.max_segment_erases, 0);
        ResultRow row;
        row.AddText("workload", workload);
        row.AddText("device", spec.name);
        row.AddText("mapping", use_fat ? "fat" : "naive");
        row.AddNumber("scale", scale);
        row.AddNumber("energy_j", result.total_energy_j());
        row.AddNumber("read_mean_ms", result.read_response_ms.mean());
        row.AddNumber("write_mean_ms", result.write_response_ms.mean());
        row.AddInt("segment_erases",
                   static_cast<std::int64_t>(result.counters.segment_erases));
        row.AddNumber("max_segment_erases", result.max_segment_erases);
        ctx.Emit(std::move(row));
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(ablation_metadata)({
    .name = "ablation_metadata",
    .description = "Naive file->block mapping vs FAT metadata traffic",
    .source = "Section 4.1",
    .dims = "workload{mac,dos} x device{cu140,Intel} x mapping{naive,FAT}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
