// Related system (section 6): eNVy-style non-volatile main-memory store
// under a TPC-A-like transaction load, swept over flash storage
// utilization.  Wu & Zwaenepoel report ~45% of time spent erasing/copying
// at 80% utilization and severe degradation beyond it; this bench
// regenerates that curve for our model.
//
// Usage: bench_related_envy [transactions]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/envy/envy_store.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(std::uint64_t transactions) {
  std::printf("== Related system: eNVy NVRAM+flash store, TPC-A-like load ==\n");
  std::printf("(%llu transactions per point; paper-cited result: ~45%% of time\n",
              static_cast<unsigned long long>(transactions));
  std::printf(" erasing/copying at 80%% utilization, severe degradation above)\n\n");

  TablePrinter table({"Utilization (%)", "TPS", "Cleaning time (%)", "Erases",
                      "Pages copied", "Copies per flushed page"});
  double tps50 = 0.0;
  for (const double util : {0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95}) {
    EnvyConfig config;
    config.utilization = util;
    EnvyStore store(config);
    Rng rng(4242);
    for (std::uint64_t i = 0; i < transactions; ++i) {
      store.Transaction(rng);
    }
    if (util == 0.50) {
      tps50 = store.tps();
    }
    const double flushed = static_cast<double>(transactions) * 3.0;
    table.BeginRow()
        .Cell(util * 100.0, 0)
        .Cell(store.tps(), 0)
        .Cell(store.cleaning_time_fraction() * 100.0, 1)
        .Cell(static_cast<std::int64_t>(store.segment_erases()))
        .Cell(static_cast<std::int64_t>(store.pages_copied()))
        .Cell(static_cast<double>(store.pages_copied()) / flushed, 2);
    if (util == 0.95 && tps50 > 0.0) {
      std::printf("95%% vs 50%% utilization: throughput x%.2f\n", store.tps() / tps50);
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const std::uint64_t transactions =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  mobisim::Run(transactions);
  return 0;
}
