// Related system (section 6): eNVy-style non-volatile main-memory store
// under a TPC-A-like transaction load, swept over flash storage
// utilization.  Wu & Zwaenepoel report ~45% of time spent erasing/copying
// at 80% utilization and severe degradation beyond it; this bench
// regenerates that curve for our model.
//
// The eNVy store is not the trace-driven simulator, so the bench emits its
// per-utilization rows by hand; the transaction count is the bench param.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/envy/envy_store.h"
#include "src/runner/bench_registry.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const std::uint64_t transactions = ctx.param();
  std::printf("== Related system: eNVy NVRAM+flash store, TPC-A-like load ==\n");
  std::printf("(%llu transactions per point; paper-cited result: ~45%% of time\n",
              static_cast<unsigned long long>(transactions));
  std::printf(" erasing/copying at 80%% utilization, severe degradation above)\n\n");

  TablePrinter table({"Utilization (%)", "TPS", "Cleaning time (%)", "Erases",
                      "Pages copied", "Copies per flushed page"});
  double tps50 = 0.0;
  for (const double util : {0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95}) {
    EnvyConfig config;
    config.utilization = util;
    EnvyStore store(config);
    Rng rng(4242);
    for (std::uint64_t i = 0; i < transactions; ++i) {
      store.Transaction(rng);
    }
    if (util == 0.50) {
      tps50 = store.tps();
    }
    const double flushed = static_cast<double>(transactions) * 3.0;
    table.BeginRow()
        .Cell(util * 100.0, 0)
        .Cell(store.tps(), 0)
        .Cell(store.cleaning_time_fraction() * 100.0, 1)
        .Cell(static_cast<std::int64_t>(store.segment_erases()))
        .Cell(static_cast<std::int64_t>(store.pages_copied()))
        .Cell(static_cast<double>(store.pages_copied()) / flushed, 2);
    if (util == 0.95 && tps50 > 0.0) {
      std::printf("95%% vs 50%% utilization: throughput x%.2f\n", store.tps() / tps50);
    }
    ResultRow row;
    row.AddNumber("utilization", util);
    row.AddInt("transactions", static_cast<std::int64_t>(transactions));
    row.AddNumber("tps", store.tps());
    row.AddNumber("cleaning_time_fraction", store.cleaning_time_fraction());
    row.AddInt("segment_erases", static_cast<std::int64_t>(store.segment_erases()));
    row.AddInt("pages_copied", static_cast<std::int64_t>(store.pages_copied()));
    ctx.Emit(std::move(row));
  }
  table.Print(std::cout);
}

REGISTER_BENCH(related_envy)({
    .name = "related_envy",
    .description = "eNVy NVRAM+flash store under a TPC-A-like load",
    .source = "Section 6",
    .dims = "utilization{50..95%}",
    .uses_scale = false,
    .default_param = 200000,
    .smoke_param = 20000,
    .param_help = "transactions per point",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
