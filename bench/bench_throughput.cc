// Simulation-kernel throughput over the pinned CI reference grid.
//
// Times RunSimulation alone — trace loading, result flattening, and sink IO
// are excluded — so the records/sec and points/sec this bench reports track
// the per-record cost of the simulator kernel and nothing else.  Every cell
// of specs/ci_reference.spec runs `param` timing replicas; the spread across
// them is the noise floor benchdiff uses when CI gates on a regression.
//
// All reported metrics exist in both directions: records_per_sec /
// points_per_sec for humans (higher is better), ns_per_record /
// sec_per_point for the gate (benchdiff treats lower as better).
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/sweep_runner.h"
#include "src/trace/trace_cache.h"
#include "src/trace/trace_view.h"

namespace mobisim {
namespace {

// Mirrors specs/ci_reference.spec (one replica per cell: the timing
// replicas below are re-runs of the same seed, not derived seeds — the
// kernel is deterministic, so seed spread would measure workload variance,
// not timing noise).
ExperimentSpec ReferenceGrid(double scale) {
  ExperimentSpec spec;
  spec.devices = {IntelCardDatasheet(), Sdp5Datasheet()};
  spec.workloads = {"mac", "dos"};
  spec.utilizations = {0.50, 0.90};
  spec.seeds = {1};
  spec.replicas = 1;
  spec.scale = scale;
  return spec;
}

void Run(BenchContext& ctx) {
  const std::vector<ExperimentPoint> points = EnumerateGrid(ReferenceGrid(ctx.scale()));
  const std::uint64_t reps = ctx.param() > 0 ? ctx.param() : 1;

  std::printf("%-8s  %-15s  %4s  %7s  %12s  %11s\n", "workload", "device", "util",
              "records", "records/sec", "ns/record");
  for (const ExperimentPoint& point : points) {
    const TraceView trace =
        LoadOrGenerateTraceView(ctx.trace_cache(), point.workload, point.scale, point.seed);
    const double n = static_cast<double>(trace.size());
    double best_rps = 0.0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const SimResult result = RunSimulation(trace, point.config);
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      const double sec = elapsed.count();

      ExperimentPoint labeled = point;
      labeled.replica = rep;
      // Every exported row needs a distinct point index (benchdiff rejects
      // duplicates); replicas of one cell pool in the same diff group via the
      // config columns, not the index.
      labeled.index = point.index * reps + rep;
      ResultRow row = PointToRow(labeled);
      row.AddNumber("records_per_sec", n / sec);
      row.AddNumber("points_per_sec", 1.0 / sec);
      row.AddNumber("ns_per_record", sec * 1e9 / n);
      row.AddNumber("sec_per_point", sec);
      // Sanity anchor: a kernel "speedup" that silently dropped work would
      // show here as a record-count or erase-count change.
      row.AddInt("record_count", result.record_count);
      row.AddInt("segment_erases", result.counters.segment_erases);
      ctx.Emit(row);
      best_rps = std::max(best_rps, n / sec);
    }
    std::printf("%-8s  %-15s  %4.2f  %7.0f  %12.0f  %11.1f\n", point.workload.c_str(),
                point.config.device.name.c_str(), point.config.flash_utilization, n,
                best_rps, 1e9 / best_rps);
  }
}

REGISTER_BENCH(throughput)({
    .name = "throughput",
    .description = "simulation-kernel records/sec over the CI reference grid",
    .source = "performance",
    .dims = "2 devices x 2 workloads x 2 utilizations, timed replicas",
    .default_param = 5,
    .smoke_param = 2,
    .param_help = "timing replicas per grid cell",
    .deterministic = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
