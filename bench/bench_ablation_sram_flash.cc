// Extension the paper proposes but does not evaluate (sections 5.1 and 7):
// an SRAM write buffer in front of the flash devices.  "Adding SRAM to
// flash should dramatically improve performance, except in situations
// where flash performance is dominated by cleaning costs."
//
// Usage: bench_ablation_sram_flash [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(double scale) {
  std::printf("== Extension: SRAM write buffer in front of flash (scale %.2f) ==\n\n", scale);

  for (const char* workload : {"mac", "dos", "hp"}) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Device", "SRAM", "Write Mean (ms)", "Write Max", "Energy (J)"});
    for (const DeviceSpec& spec : {Sdp5Datasheet(), IntelCardDatasheet()}) {
      for (const std::uint64_t sram : {std::uint64_t{0}, std::uint64_t{32 * 1024}}) {
        SimConfig config = MakePaperConfig(spec, 2 * 1024 * 1024);
        config.sram_bytes = sram;  // MakePaperConfig zeroes SRAM for flash
        const SimResult result = RunNamedWorkload(workload, config, scale);
        table.BeginRow()
            .Cell(spec.name)
            .Cell(sram == 0 ? std::string("none") : std::string("32 KB"))
            .Cell(result.write_response_ms.mean(), 2)
            .Cell(result.write_response_ms.max(), 0)
            .Cell(result.total_energy_j(), 0);
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
