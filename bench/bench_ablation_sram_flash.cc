// Extension the paper proposes but does not evaluate (sections 5.1 and 7):
// an SRAM write buffer in front of the flash devices.  "Adding SRAM to
// flash should dramatically improve performance, except in situations
// where flash performance is dominated by cleaning costs."
//
// MakePaperConfig zeroes SRAM for flash devices, so the SRAM axis must be
// re-applied per point; the bench hands the engine hand-built points.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Extension: SRAM write buffer in front of flash (scale %.2f) ==\n\n", scale);

  const std::vector<const char*> workloads = {"mac", "dos", "hp"};
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const DeviceSpec& spec : {Sdp5Datasheet(), IntelCardDatasheet()}) {
      for (const std::uint64_t sram : {std::uint64_t{0}, std::uint64_t{32 * 1024}}) {
        ExperimentPoint point;
        point.index = points.size();
        point.workload = workload;
        point.scale = scale;
        point.config = MakePaperConfig(spec, 2 * 1024 * 1024);
        point.config.sram_bytes = sram;  // MakePaperConfig zeroes SRAM for flash
        points.push_back(std::move(point));
      }
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

  std::size_t next = 0;
  for (const char* workload : workloads) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Device", "SRAM", "Write Mean (ms)", "Write Max", "Energy (J)"});
    for (const DeviceSpec& spec : {Sdp5Datasheet(), IntelCardDatasheet()}) {
      for (const std::uint64_t sram : {std::uint64_t{0}, std::uint64_t{32 * 1024}}) {
        const SimResult& result = outcomes[next++].result;
        table.BeginRow()
            .Cell(spec.name)
            .Cell(sram == 0 ? std::string("none") : std::string("32 KB"))
            .Cell(result.write_response_ms.mean(), 2)
            .Cell(result.write_response_ms.max(), 0)
            .Cell(result.total_energy_j(), 0);
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(ablation_sram_flash)({
    .name = "ablation_sram_flash",
    .description = "SRAM write buffer in front of the flash devices",
    .source = "Sections 5.1/7",
    .dims = "workload{mac,dos,hp} x device{SDP5,Intel} x sram{0,32K}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
