// google-benchmark timings of the simulator's hot paths: device model
// operations, segment-manager writes/cleaning, cache lookups, and whole
// trace-driven runs.  These guard the "laptop-scale" property: every paper
// experiment should run in seconds.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/device/flash_card.h"
#include "src/device/magnetic_disk.h"
#include "src/flash/segment_manager.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"

namespace mobisim {
namespace {

void BM_SegmentManagerWrite(benchmark::State& state) {
  SegmentManagerConfig config;
  config.capacity_bytes = 8 * 1024 * 1024;
  config.segment_bytes = 128 * 1024;
  config.block_bytes = 512;
  SegmentManager manager(config);
  const std::uint64_t span = manager.total_blocks() / 2;
  manager.Preload(0, span);
  std::uint64_t lba = 0;
  for (auto _ : state) {
    if (manager.free_slots() <= manager.blocks_per_segment() * 2) {
      const std::uint32_t victim = manager.PickVictim();
      if (victim != SegmentManager::kNoSegment) {
        manager.CleanSegment(victim);
      }
    }
    manager.WriteBlock(lba);
    lba = (lba + 7919) % span;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentManagerWrite);

void BM_MagneticDiskOp(benchmark::State& state) {
  DeviceOptions options;
  options.block_bytes = 1024;
  MagneticDisk disk(Cu140Datasheet(), options);
  BlockRecord rec;
  rec.block_count = 4;
  SimTime now = 0;
  for (auto _ : state) {
    rec.time_us = now;
    rec.file_id = static_cast<std::uint32_t>(now % 97);
    benchmark::DoNotOptimize(disk.Read(now, rec));
    now += 100000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MagneticDiskOp);

void BM_FlashCardWrite(benchmark::State& state) {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = 16 * 1024 * 1024;
  FlashCard card(IntelCardDatasheet(), options);
  const std::uint64_t span = 10 * 1024;
  card.Preload(span, 0.8);
  BlockRecord rec;
  rec.block_count = 2;
  SimTime now = 0;
  std::uint64_t lba = 0;
  for (auto _ : state) {
    rec.time_us = now;
    rec.lba = lba;
    benchmark::DoNotOptimize(card.Write(now, rec));
    now += 500000;
    lba = (lba + 127) % (span - 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlashCardWrite);

void BM_BufferCacheHit(benchmark::State& state) {
  BufferCache cache(NecDramSpec(), 2 * 1024 * 1024, 1024);
  cache.Insert(0, 1024);
  std::uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.ReadHit(lba, 2));
    lba = (lba + 37) % 1000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheHit);

void BM_SynthEndToEnd(benchmark::State& state) {
  const Trace trace = GenerateNamedWorkload("synth", 0.25);
  const BlockTrace blocks = BlockMapper::Map(trace);
  for (auto _ : state) {
    SimConfig config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
    benchmark::DoNotOptimize(RunSimulation(blocks, config));
  }
  state.SetItemsProcessed(state.iterations() * blocks.records.size());
}
BENCHMARK(BM_SynthEndToEnd);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateNamedWorkload("synth", 0.25));
  }
}
BENCHMARK(BM_WorkloadGeneration);

void Run(BenchContext& ctx) {
  // Hand google-benchmark a synthetic argv; under --smoke the minimum
  // measurement time shrinks so the whole suite finishes in a few seconds.
  // The bare-double form parses on every library version (1.8+ also accepts
  // a "0.05s" spelling, older ones only the number).
  std::vector<std::string> args = {"mobisim_bench"};
  if (ctx.smoke()) {
    args.push_back("--benchmark_min_time=0.05");
  }
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());
  benchmark::RunSpecifiedBenchmarks();
}

REGISTER_BENCH(micro_models)({
    .name = "micro_models",
    .description = "google-benchmark timings of the simulator's hot paths",
    .source = "performance",
    .dims = "device ops, segment manager, cache, end-to-end runs",
    .uses_scale = false,
    .deterministic = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
