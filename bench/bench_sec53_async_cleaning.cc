// Reproduces section 5.3: the SunDisk SDP5A with and without asynchronous
// (decoupled) erasure.  The paper found asynchronous cleaning decreased the
// average write time by 56-61% across the traces (a ~2.5x improvement) with
// minimal impact on energy.
//
// The erasure mode is a config flag, not a spec dimension, so the bench
// builds one point per (trace, mode) pair and runs the batch through the
// engine's point API.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Section 5.3: SDP5A asynchronous vs on-demand erasure (scale %.2f) ==\n",
              scale);
  std::printf("(paper: write response improves 56-61%%; energy essentially unchanged)\n\n");

  const std::vector<const char*> workloads = {"mac", "dos", "hp"};
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const bool async : {false, true}) {
      ExperimentPoint point;
      point.index = points.size();
      point.workload = workload;
      point.scale = scale;
      point.config = MakePaperConfig(Sdp5aDatasheet(), 2 * 1024 * 1024);
      point.config.flash_async_erasure = async;
      points.push_back(std::move(point));
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

  TablePrinter table({"Trace", "Sync write mean (ms)", "Async write mean (ms)",
                      "Improvement (%)", "Sync energy (J)", "Async energy (J)"});
  std::size_t next = 0;
  for (const char* workload : workloads) {
    const SimResult& sync_result = outcomes[next++].result;
    const SimResult& async_result = outcomes[next++].result;
    const double sync_ms = sync_result.write_response_ms.mean();
    const double async_ms = async_result.write_response_ms.mean();
    table.BeginRow()
        .Cell(std::string(workload))
        .Cell(sync_ms, 2)
        .Cell(async_ms, 2)
        .Cell(sync_ms > 0 ? (1.0 - async_ms / sync_ms) * 100.0 : 0.0, 1)
        .Cell(sync_result.total_energy_j(), 0)
        .Cell(async_result.total_energy_j(), 0);
  }
  table.Print(std::cout);
}

REGISTER_BENCH(sec53_async_cleaning)({
    .name = "sec53_async_cleaning",
    .description = "SDP5A asynchronous vs on-demand segment erasure",
    .source = "Section 5.3",
    .dims = "workload{mac,dos,hp} x erasure{sync,async}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
