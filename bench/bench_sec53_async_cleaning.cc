// Reproduces section 5.3: the SunDisk SDP5A with and without asynchronous
// (decoupled) erasure.  The paper found asynchronous cleaning decreased the
// average write time by 56-61% across the traces (a ~2.5x improvement) with
// minimal impact on energy.
//
// Usage: bench_sec53_async_cleaning [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(double scale) {
  std::printf("== Section 5.3: SDP5A asynchronous vs on-demand erasure (scale %.2f) ==\n",
              scale);
  std::printf("(paper: write response improves 56-61%%; energy essentially unchanged)\n\n");

  TablePrinter table({"Trace", "Sync write mean (ms)", "Async write mean (ms)",
                      "Improvement (%)", "Sync energy (J)", "Async energy (J)"});
  for (const char* workload : {"mac", "dos", "hp"}) {
    SimConfig sync_config = MakePaperConfig(Sdp5aDatasheet(), 2 * 1024 * 1024);
    sync_config.flash_async_erasure = false;
    SimConfig async_config = MakePaperConfig(Sdp5aDatasheet(), 2 * 1024 * 1024);
    async_config.flash_async_erasure = true;

    const SimResult sync_result = RunNamedWorkload(workload, sync_config, scale);
    const SimResult async_result = RunNamedWorkload(workload, async_config, scale);
    const double sync_ms = sync_result.write_response_ms.mean();
    const double async_ms = async_result.write_response_ms.mean();
    table.BeginRow()
        .Cell(std::string(workload))
        .Cell(sync_ms, 2)
        .Cell(async_ms, 2)
        .Cell(sync_ms > 0 ? (1.0 - async_ms / sync_ms) * 100.0 : 0.0, 1)
        .Cell(sync_result.total_energy_j(), 0)
        .Cell(async_result.total_energy_j(), 0);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
