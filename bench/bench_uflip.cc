// uFLIP validation of the NAND/SSD device tier (Bouganim/Jonsson/Bonnet).
//
// Runs the benchmark's core micro-patterns -- sequential/random/strided
// reads and writes, a request-granularity sweep, partitioned random writes,
// and the same pattern across channel counts -- against the parameterized
// NAND devices, and asserts the response-time *shapes* the original
// benchmark established for flash devices:
//
//   1. random writes cost more than sequential writes (GC copy traffic),
//      while random reads cost about the same as sequential reads;
//   2. request cost has a knee at the page size: sub-page requests cost one
//      full page, and cost grows once requests span multiple pages;
//   3. striped throughput grows with channel count and saturates once the
//      request's pages no longer queue behind each other.
//
// Shape violations throw (MOBISIM_CHECK), which the registry turns into an
// `_error` row -- so CI's bench-smoke leg gates on these invariants.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/device/device_catalog.h"
#include "src/device/nand_ssd.h"
#include "src/device/uflip.h"
#include "src/runner/bench_registry.h"
#include "src/util/check.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

constexpr std::uint32_t kBlockBytes = 1024;

// A fresh preloaded device per measurement: uFLIP prescribes independent
// runs so device history does not bleed between patterns.
std::unique_ptr<NandSsd> MakeDevice(const DeviceSpec& spec,
                                    std::uint64_t capacity_bytes,
                                    std::uint64_t region_blocks,
                                    double utilization) {
  DeviceOptions options;
  options.block_bytes = kBlockBytes;
  options.capacity_bytes = capacity_bytes;
  auto device = std::make_unique<NandSsd>(spec, options);
  // No interleaved filler: the pattern region occupies whole erase blocks,
  // so sequential overwrites produce fully-dead victims (the cheap case the
  // random-write penalty is measured against).
  device->Preload(region_blocks, utilization, /*interleave=*/false);
  return device;
}

double MbPerSec(const UflipStats& stats) { return stats.throughput_kbps / 1024.0; }

void Run(BenchContext& ctx) {
  // High-utilization device for the pattern matrix: small enough that even
  // the smoke run's write volume exceeds the free pool, so cleaning engages
  // and the random-write penalty is exercised, not just the cell timings.
  const std::uint64_t capacity = 4 * 1024 * 1024;  // 32 erase blocks
  const std::uint64_t region_blocks = 2048;        // 16 erase blocks
  const double utilization = 0.9;
  const std::uint64_t ops = ctx.smoke() ? 160 : 640;

  std::printf("== uFLIP micro-patterns on the NAND device tier ==\n");
  std::printf("closed loop, %llu ops x 4 KB, %llu-block region, utilization %.2f\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(region_blocks), utilization);

  // ---- Pattern x device matrix -------------------------------------------
  const DeviceSpec devices[] = {NandChip(), NandSsd4ch(), NandSsd8ch()};
  const UflipPattern patterns[] = {
      UflipPattern::kSequentialRead,  UflipPattern::kRandomRead,
      UflipPattern::kStridedRead,     UflipPattern::kSequentialWrite,
      UflipPattern::kRandomWrite,     UflipPattern::kStridedWrite,
      UflipPattern::kPartitionedWrite,
  };

  TablePrinter matrix({"Device", "Pattern", "Mean (us)", "Max (us)", "MB/s"});
  for (const DeviceSpec& spec : devices) {
    UflipStats seq_read, rand_read, seq_write, rand_write;
    for (const UflipPattern pattern : patterns) {
      UflipParams params;
      params.ops = ops;
      params.blocks_per_op = 4;
      params.region_blocks = region_blocks;
      params.block_bytes = kBlockBytes;
      auto device = MakeDevice(spec, capacity, region_blocks, utilization);
      const UflipStats stats = RunUflipPattern(*device, pattern, params);

      matrix.BeginRow()
          .Cell(spec.name)
          .Cell(std::string(UflipPatternName(pattern)))
          .Cell(stats.mean_response_us, 1)
          .Cell(static_cast<double>(stats.max_response_us), 0)
          .Cell(MbPerSec(stats), 1);
      ResultRow row;
      row.AddText("section", "patterns");
      row.AddText("device", spec.name);
      row.AddText("pattern", UflipPatternName(pattern));
      row.AddNumber("ops", static_cast<double>(stats.ops));
      row.AddNumber("mean_us", stats.mean_response_us);
      row.AddNumber("max_us", static_cast<double>(stats.max_response_us));
      row.AddNumber("mb_per_sec", MbPerSec(stats));
      ctx.Emit(std::move(row));

      switch (pattern) {
        case UflipPattern::kSequentialRead: seq_read = stats; break;
        case UflipPattern::kRandomRead: rand_read = stats; break;
        case UflipPattern::kSequentialWrite: seq_write = stats; break;
        case UflipPattern::kRandomWrite: rand_write = stats; break;
        default: break;
      }
    }
    // Shape 1: the write asymmetry is there and reads do not share it.
    MOBISIM_CHECK(rand_write.mean_response_us >
                      1.25 * seq_write.mean_response_us &&
                  "uFLIP shape: random writes must cost more than sequential");
    MOBISIM_CHECK(rand_read.mean_response_us <
                      3.0 * seq_read.mean_response_us &&
                  "uFLIP shape: random reads must cost about the same as sequential");
  }
  matrix.Print(std::cout);

  // ---- Granularity sweep (shape 2) ---------------------------------------
  // Single-unit chip at low utilization: no cleaning, pure cell timings.
  // The page is 2 KB = 2 logical blocks, so 1- and 2-block requests must
  // cost the same (both program one page) and the cost climbs past that.
  std::printf("\n-- request-granularity sweep (nand-chip, writes) --\n");
  const std::uint64_t gran_ops = ctx.smoke() ? 64 : 256;
  TablePrinter gran({"Request (KB)", "Pages", "Mean (us)", "us/KB"});
  std::vector<double> gran_mean;
  for (const std::uint32_t blocks : {1u, 2u, 4u, 8u, 16u}) {
    UflipParams params;
    params.ops = gran_ops;
    params.blocks_per_op = blocks;
    params.region_blocks = 2048;
    params.block_bytes = kBlockBytes;
    auto device = MakeDevice(NandChip(), capacity, params.region_blocks, 0.5);
    const UflipStats stats =
        RunUflipPattern(*device, UflipPattern::kSequentialWrite, params);
    const double kb = static_cast<double>(blocks) * kBlockBytes / 1024.0;
    gran.BeginRow()
        .Cell(kb, 0)
        .Cell(static_cast<double>(device->PagesForBytes(
                  static_cast<std::uint64_t>(blocks) * kBlockBytes)), 0)
        .Cell(stats.mean_response_us, 1)
        .Cell(stats.mean_response_us / kb, 1);
    ResultRow row;
    row.AddText("section", "granularity");
    row.AddText("device", "nand-chip");
    row.AddNumber("request_kb", kb);
    row.AddNumber("mean_us", stats.mean_response_us);
    row.AddNumber("mb_per_sec", MbPerSec(stats));
    ctx.Emit(std::move(row));
    gran_mean.push_back(stats.mean_response_us);
  }
  gran.Print(std::cout);
  MOBISIM_CHECK(gran_mean[1] < 1.10 * gran_mean[0] &&
                gran_mean[0] < 1.10 * gran_mean[1] &&
                "uFLIP shape: sub-page requests must cost one full page");
  MOBISIM_CHECK(gran_mean[2] > 1.4 * gran_mean[1] &&
                "uFLIP shape: cost must climb once requests span pages");

  // ---- Parallelism sweep (shape 3) ---------------------------------------
  // The same 32-KB sequential-read stream across channel counts, dies fixed
  // at 2: throughput must grow with channels and show diminishing returns
  // once the 16 pages of a request stop queueing behind each other.
  std::printf("\n-- channel-parallelism sweep (16-page reads, 2 dies/channel) --\n");
  const std::uint64_t par_ops = ctx.smoke() ? 64 : 256;
  TablePrinter par({"Channels", "Units", "Mean (us)", "MB/s"});
  std::vector<double> par_tp;
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u, 16u}) {
    DeviceSpec spec = NandSsd4ch();
    spec.name = "nand-ssd-" + std::to_string(channels) + "ch";
    spec.nand.channels = channels;
    UflipParams params;
    params.ops = par_ops;
    params.blocks_per_op = 32;  // 16 pages
    params.region_blocks = 2048;
    params.block_bytes = kBlockBytes;
    auto device = MakeDevice(spec, capacity, params.region_blocks, 0.5);
    const UflipStats stats =
        RunUflipPattern(*device, UflipPattern::kSequentialRead, params);
    par.BeginRow()
        .Cell(static_cast<double>(channels), 0)
        .Cell(static_cast<double>(device->units()), 0)
        .Cell(stats.mean_response_us, 1)
        .Cell(MbPerSec(stats), 1);
    ResultRow row;
    row.AddText("section", "parallelism");
    row.AddText("device", spec.name);
    row.AddNumber("channels", static_cast<double>(channels));
    row.AddNumber("mean_us", stats.mean_response_us);
    row.AddNumber("mb_per_sec", MbPerSec(stats));
    ctx.Emit(std::move(row));
    par_tp.push_back(MbPerSec(stats));
  }
  par.Print(std::cout);
  for (std::size_t i = 1; i < par_tp.size(); ++i) {
    MOBISIM_CHECK(par_tp[i] >= par_tp[i - 1] &&
                  "uFLIP shape: throughput must not drop with more channels");
  }
  MOBISIM_CHECK(par_tp[2] > 2.0 * par_tp[0] &&
                "uFLIP shape: striping must scale while pages queue");
  MOBISIM_CHECK(par_tp[4] / par_tp[3] < par_tp[2] / par_tp[0] &&
                "uFLIP shape: throughput must saturate with channel count");

  // ---- Partitioned random writes -----------------------------------------
  // uFLIP's partitioning pattern: random choice among p sequential cursors.
  // p = 1 is a sequential stream; as p grows the stream degrades toward the
  // random-write case.
  std::printf("\n-- partitioned writes (nand-ssd-4ch) --\n");
  TablePrinter part({"Partitions", "Mean (us)", "MB/s"});
  std::vector<double> part_mean;
  for (const std::uint32_t partitions : {1u, 2u, 4u, 8u, 16u}) {
    UflipParams params;
    params.ops = ops;
    params.blocks_per_op = 4;
    params.region_blocks = region_blocks;
    params.partitions = partitions;
    params.block_bytes = kBlockBytes;
    auto device = MakeDevice(NandSsd4ch(), capacity, region_blocks, utilization);
    const UflipStats stats =
        RunUflipPattern(*device, UflipPattern::kPartitionedWrite, params);
    part.BeginRow()
        .Cell(static_cast<double>(partitions), 0)
        .Cell(stats.mean_response_us, 1)
        .Cell(MbPerSec(stats), 1);
    ResultRow row;
    row.AddText("section", "partitioned");
    row.AddText("device", "nand-ssd-4ch");
    row.AddNumber("partitions", static_cast<double>(partitions));
    row.AddNumber("mean_us", stats.mean_response_us);
    row.AddNumber("mb_per_sec", MbPerSec(stats));
    ctx.Emit(std::move(row));
    part_mean.push_back(stats.mean_response_us);
  }
  part.Print(std::cout);
  MOBISIM_CHECK(part_mean.back() > part_mean.front() &&
                "uFLIP shape: more partitions must degrade toward random writes");
}

REGISTER_BENCH(uflip)({
    .name = "uflip",
    .description = "uFLIP micro-patterns validating the NAND/SSD timing model",
    .source = "uFLIP (Bouganim et al.)",
    .dims = "pattern{seq,rand,stride,part} x device{chip,4ch,8ch} x size x channels",
    .uses_scale = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
