// Reproduces Table 3: characteristics of the (synthetic stand-ins for the)
// mac, dos, and hp traces.  Statistics are computed over the 90% of each
// trace simulated after the warm start, as in the paper.
//
#include <cstdio>
#include <iostream>

#include "src/runner/bench_registry.h"
#include "src/trace/calibrated_workload.h"
#include "src/trace/trace_stats.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Table 3: trace characteristics (scale %.2f) ==\n", scale);
  std::printf("Paper targets: mac 12600s/22000KB/0.50/1KB/1.3/1.2/(0.078,90.8,0.57)\n");
  std::printf("               dos  5400s/16300KB/0.24/.5KB/3.8/3.4/(0.528,713,10.8)\n");
  std::printf("               hp 380160s/32000KB/0.38/1KB/4.3/6.2/(11.1,1800,112.3)\n\n");

  TablePrinter table({"Trace", "Duration (s)", "Distinct KB", "Read frac", "Block (KB)",
                      "Mean read (blk)", "Mean write (blk)", "Gap mean (s)", "Gap max",
                      "Gap sd"});
  for (const char* name : {"mac", "dos", "hp"}) {
    const Trace trace = GenerateNamedWorkload(name, scale);
    const TraceStats stats = ComputeTraceStats(trace, /*skip_fraction=*/0.1);
    table.BeginRow()
        .Cell(std::string(name))
        .Cell(stats.duration_sec, 0)
        .Cell(static_cast<std::int64_t>(stats.distinct_kbytes))
        .Cell(stats.read_fraction, 2)
        .Cell(static_cast<double>(stats.block_bytes) / 1024.0, 1)
        .Cell(stats.read_blocks.mean(), 2)
        .Cell(stats.write_blocks.mean(), 2)
        .Cell(stats.interarrival_sec.mean(), 3)
        .Cell(stats.interarrival_sec.max(), 1)
        .Cell(stats.interarrival_sec.stddev(), 2);
    ResultRow row;
    row.AddText("workload", name);
    row.AddNumber("scale", scale);
    row.AddNumber("duration_sec", stats.duration_sec);
    row.AddInt("distinct_kbytes", static_cast<std::int64_t>(stats.distinct_kbytes));
    row.AddNumber("read_fraction", stats.read_fraction);
    row.AddNumber("read_blocks_mean", stats.read_blocks.mean());
    row.AddNumber("write_blocks_mean", stats.write_blocks.mean());
    row.AddNumber("gap_mean_sec", stats.interarrival_sec.mean());
    ctx.Emit(std::move(row));
  }
  table.Print(std::cout);
}

REGISTER_BENCH(table3_traces)({
    .name = "table3_traces",
    .description = "Characteristics of the synthetic trace stand-ins",
    .source = "Table 3",
    .dims = "workload{mac,dos,hp} (trace statistics, no simulation)",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
