// Reproduces Figure 5: normalized energy consumption and mean write response
// time of the cu140 disk system as a function of battery-backed SRAM
// write-buffer size (0 / 32 / 512 / 1024 Kbytes), for each trace.  Values
// are normalized to the no-SRAM configuration, as in the paper.
//
// The whole figure is one src/runner grid — workloads x SRAM sizes — run in
// parallel; enumeration order (workload outer, SRAM inner) matches the table
// layout, so outcomes are consumed sequentially.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  const std::vector<std::uint64_t> sram_sizes = {0, 32 * 1024, 512 * 1024, 1024 * 1024};

  std::printf("== Figure 5: cu140 + SRAM write buffer (scale %.2f) ==\n", scale);
  std::printf("(paper: 32 KB improves mac/dos write response ~20x and hp ~2x; energy\n");
  std::printf(" drops 21%% mac / 15%% dos / 4%% hp; only hp benefits from more than 32 KB)\n\n");

  ExperimentSpec spec;
  spec.base = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
  spec.workloads = {"mac", "dos", "hp"};
  spec.sram_sizes = sram_sizes;
  spec.scale = scale;

  const std::vector<SweepOutcome> outcomes = ctx.RunGrid(spec);

  TablePrinter energy({"Trace", "SRAM 0", "32 KB", "512 KB", "1024 KB"});
  TablePrinter writes({"Trace", "SRAM 0", "32 KB", "512 KB", "1024 KB"});
  TablePrinter writes_abs({"Trace", "SRAM 0 (ms)", "32 KB", "512 KB", "1024 KB"});

  std::size_t next = 0;
  for (const char* workload : {"mac", "dos", "hp"}) {
    double base_energy = 0.0;
    double base_write = 0.0;
    energy.BeginRow().Cell(std::string(workload));
    writes.BeginRow().Cell(std::string(workload));
    writes_abs.BeginRow().Cell(std::string(workload));
    for (const std::uint64_t sram : sram_sizes) {
      const SimResult& result = outcomes[next++].result;
      if (sram == 0) {
        base_energy = result.total_energy_j();
        base_write = result.write_response_ms.mean();
      }
      energy.Cell(base_energy > 0 ? result.total_energy_j() / base_energy : 0.0, 3);
      writes.Cell(base_write > 0 ? result.write_response_ms.mean() / base_write : 0.0, 3);
      writes_abs.Cell(result.write_response_ms.mean(), 2);
    }
  }

  std::printf("-- Figure 5(a): normalized energy consumption --\n");
  energy.Print(std::cout);
  std::printf("\n-- Figure 5(b): normalized average write response time --\n");
  writes.Print(std::cout);
  std::printf("\n-- (absolute write response, ms) --\n");
  writes_abs.Print(std::cout);
}

REGISTER_BENCH(fig5_sram)({
    .name = "fig5_sram",
    .description = "cu140 disk with battery-backed SRAM write buffer",
    .source = "Figure 5",
    .dims = "workload{mac,dos,hp} x sram{0,32K,512K,1M}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
