// Related system (section 6): the log-structured flash file system of
// Kawaguchi et al., run head-to-head against MFFS 2.00 on the paper's
// section-3 micro-benchmarks.  The paper's conclusion predicts exactly this
// comparison: "Newer versions of the Microsoft Flash File System should
// address the degradation imposed by large files."
//
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/mffs/lfs_ffs.h"
#include "src/runner/bench_registry.h"
#include "src/mffs/microbench.h"
#include "src/mffs/testbed_device.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

constexpr std::uint32_t kChunk = 4 * 1024;
constexpr std::uint64_t kMb = 1024 * 1024;

void Run(BenchContext& ctx) {
  std::printf("== Related system: MFFS 2.00 vs log-structured flash FS ==\n\n");

  // Table-1-style throughput, random (incompressible) data.
  {
    TablePrinter table({"File system", "Read 4KB-file", "Read 1MB-file", "Write 4KB-file",
                        "Write 1MB-file"});
    MffsTestbedDevice mffs(DefaultMffsConfig());
    LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
    for (TestbedDevice* device : {static_cast<TestbedDevice*>(&mffs),
                                  static_cast<TestbedDevice*>(&lfs)}) {
      device->Format();
      const double w4 =
          BenchWriteFiles(*device, 4 * 1024, kChunk, 2 * kMb, 1.0).throughput_kbps();
      const double r4 =
          BenchReadFiles(*device, 4 * 1024, kChunk, 2 * kMb, 1.0).throughput_kbps();
      device->Format();
      const double w1m = BenchWriteFiles(*device, kMb, kChunk, 2 * kMb, 1.0).throughput_kbps();
      const double r1m = BenchReadFiles(*device, kMb, kChunk, 2 * kMb, 1.0).throughput_kbps();
      table.BeginRow()
          .Cell(device->name())
          .Cell(r4, 0)
          .Cell(r1m, 0)
          .Cell(w4, 0)
          .Cell(w1m, 0);
      ResultRow row;
      row.AddText("file_system", device->name());
      row.AddNumber("read_4kb_kbps", r4);
      row.AddNumber("read_1mb_kbps", r1m);
      row.AddNumber("write_4kb_kbps", w4);
      row.AddNumber("write_1mb_kbps", w1m);
      ctx.Emit(std::move(row));
    }
    std::printf("-- Table-1-style throughput (KB/s, incompressible data) --\n");
    table.Print(std::cout);
  }

  // Figure-1-style latency growth across a 1-MB file.
  {
    MffsTestbedDevice mffs(DefaultMffsConfig());
    LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
    const MicroBenchResult mffs_result = BenchWriteFiles(mffs, kMb, kChunk, kMb, 1.0);
    const MicroBenchResult lfs_result = BenchWriteFiles(lfs, kMb, kChunk, kMb, 1.0);
    std::printf("\n-- Figure-1-style latency growth over a 1-MB file --\n");
    std::printf("MFFS 2.00 : %.1f ms -> %.1f ms (%.1fx)\n", mffs_result.latency_ms.front(),
                mffs_result.latency_ms.back(),
                mffs_result.latency_ms.back() / mffs_result.latency_ms.front());
    std::printf("LFS FFS   : %.1f ms -> %.1f ms (%.1fx)\n", lfs_result.latency_ms.front(),
                lfs_result.latency_ms.back(),
                lfs_result.latency_ms.back() / lfs_result.latency_ms.front());
  }

  // Figure-3-style overwrite pressure at high live-data volume.
  {
    std::printf("\n-- Figure-3-style: 10 x 1-MB random overwrites, 9 MB live --\n");
    TablePrinter table({"File system", "First pass (KB/s)", "Last pass (KB/s)",
                        "Copies", "Erases"});
    {
      MffsTestbedDevice mffs(DefaultMffsConfig());
      Rng rng(7);
      const auto curve = BenchOverwritePasses(mffs, 9 * kMb, kMb, kChunk, 10, 1.0, rng);
      table.BeginRow()
          .Cell(mffs.name())
          .Cell(curve.front(), 1)
          .Cell(curve.back(), 1)
          .Cell(static_cast<std::int64_t>(mffs.cleaning_copies()))
          .Cell(static_cast<std::int64_t>(mffs.segment_erases()));
    }
    {
      LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
      Rng rng(7);
      const auto curve = BenchOverwritePasses(lfs, 9 * kMb, kMb, kChunk, 10, 1.0, rng);
      table.BeginRow()
          .Cell(lfs.name())
          .Cell(curve.front(), 1)
          .Cell(curve.back(), 1)
          .Cell(static_cast<std::int64_t>(lfs.cleaning_copies()))
          .Cell(static_cast<std::int64_t>(lfs.segment_erases()));
    }
    table.Print(std::cout);
  }
}

REGISTER_BENCH(related_lfs_ffs)({
    .name = "related_lfs_ffs",
    .description = "MFFS 2.00 vs log-structured flash FS on the microbenchmarks",
    .source = "Section 6",
    .dims = "file_system{MFFS,LFS-FFS} x microbench{throughput,latency,overwrite}",
    .uses_scale = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
