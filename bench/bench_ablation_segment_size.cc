// Ablation: flash-card erase-segment size.
//
// The paper's conclusion argues that the erasure unit, fixed by the
// manufacturer, strongly influences file-system behaviour: large units
// require low utilization, and flash "more like the flash disk emulator,
// with small erasure units immune to storage-utilization effects, will
// likely grow in popularity".  This bench sweeps the segment size (with
// erase time scaled to keep erase bandwidth constant) at two utilizations.
//
// Usage: bench_ablation_segment_size [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(double scale) {
  std::printf("== Ablation: flash-card erase-segment size (mac trace, scale %.2f) ==\n", scale);
  std::printf("(erase time scaled with segment size: constant 80 KB/s erase bandwidth)\n\n");

  const Trace trace = GenerateNamedWorkload("mac", scale);
  const BlockTrace blocks = BlockMapper::Map(trace);

  const std::vector<std::uint32_t> segment_kb = {8, 16, 32, 64, 128, 256};
  for (const double util : {0.80, 0.95}) {
    std::printf("-- utilization %.0f%% --\n", util * 100.0);
    TablePrinter table({"Segment (KB)", "Energy (J)", "Write Mean (ms)", "Write Max",
                        "Erases", "Blocks copied", "Stall time (s)"});
    for (const std::uint32_t seg_kb : segment_kb) {
      DeviceSpec spec = IntelCardDatasheet();
      spec.erase_segment_bytes = seg_kb * 1024;
      // Keep erase bandwidth at the Series 2's 128 KB / 1.6 s.
      spec.erase_ms_per_segment = 1600.0 * seg_kb / 128.0;

      SimConfig config = MakePaperConfig(spec, 2 * 1024 * 1024);
      config.flash_utilization = util;
      config.capacity_bytes =
          RequiredCapacityBytes(blocks.total_bytes(), 0.40, 256 * 1024);
      config.auto_capacity = false;
      const SimResult result = RunSimulation(blocks, config);
      table.BeginRow()
          .Cell(static_cast<std::int64_t>(seg_kb))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(result.write_response_ms.max(), 0)
          .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
          .Cell(static_cast<std::int64_t>(result.counters.blocks_copied))
          .Cell(SecFromUs(result.counters.stall_time_us), 2);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
