// Ablation: flash-card erase-segment size.
//
// The paper's conclusion argues that the erasure unit, fixed by the
// manufacturer, strongly influences file-system behaviour: large units
// require low utilization, and flash "more like the flash disk emulator,
// with small erasure units immune to storage-utilization effects, will
// likely grow in popularity".  This bench sweeps the segment size (with
// erase time scaled to keep erase bandwidth constant) at two utilizations.
//
// The trace is generated locally only to fix the flash capacity; each point
// names the same (workload, scale, seed) so the engine regenerates the
// identical trace from its cache.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Ablation: flash-card erase-segment size (mac trace, scale %.2f) ==\n", scale);
  std::printf("(erase time scaled with segment size: constant 80 KB/s erase bandwidth)\n\n");

  const Trace trace = GenerateNamedWorkload("mac", scale);
  const BlockTrace blocks = BlockMapper::Map(trace);

  const std::vector<std::uint32_t> segment_kb = {8, 16, 32, 64, 128, 256};
  const std::vector<double> utils = {0.80, 0.95};
  std::vector<ExperimentPoint> points;
  for (const double util : utils) {
    for (const std::uint32_t seg_kb : segment_kb) {
      DeviceSpec spec = IntelCardDatasheet();
      spec.erase_segment_bytes = seg_kb * 1024;
      // Keep erase bandwidth at the Series 2's 128 KB / 1.6 s.
      spec.erase_ms_per_segment = 1600.0 * seg_kb / 128.0;

      ExperimentPoint point;
      point.index = points.size();
      point.workload = "mac";
      point.scale = scale;
      point.config = MakePaperConfig(spec, 2 * 1024 * 1024);
      point.config.flash_utilization = util;
      point.config.capacity_bytes =
          RequiredCapacityBytes(blocks.total_bytes(), 0.40, 256 * 1024);
      point.config.auto_capacity = false;
      points.push_back(std::move(point));
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

  std::size_t next = 0;
  for (const double util : utils) {
    std::printf("-- utilization %.0f%% --\n", util * 100.0);
    TablePrinter table({"Segment (KB)", "Energy (J)", "Write Mean (ms)", "Write Max",
                        "Erases", "Blocks copied", "Stall time (s)"});
    for (const std::uint32_t seg_kb : segment_kb) {
      const SimResult& result = outcomes[next++].result;
      table.BeginRow()
          .Cell(static_cast<std::int64_t>(seg_kb))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(result.write_response_ms.max(), 0)
          .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
          .Cell(static_cast<std::int64_t>(result.counters.blocks_copied))
          .Cell(SecFromUs(result.counters.stall_time_us), 2);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(ablation_segment_size)({
    .name = "ablation_segment_size",
    .description = "Flash-card erase-segment size at constant erase bandwidth",
    .source = "Section 7",
    .dims = "utilization{80,95%} x segment{8..256KB} (mac trace)",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
