// Reproduces Table 1: measured throughput of the three storage devices on
// the OmniBook testbed, for 4-Kbyte reads and writes to 4-Kbyte and 1-Mbyte
// files, with and without compression.
//
// The "devices" here are the section-3 testbed behaviour models
// (src/mffs/testbed_device.h), which include the DOS file-system and
// compression software costs the paper measured -- most notably MFFS 2.00's
// linearly-degrading writes.
#include <cstdio>
#include <iostream>
#include <string>

#include "src/device/device_catalog.h"
#include "src/mffs/microbench.h"
#include "src/mffs/testbed_device.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

constexpr std::uint32_t kChunk = 4 * 1024;
constexpr std::uint64_t kSmallFile = 4 * 1024;
constexpr std::uint64_t kLargeFile = 1024 * 1024;
// Total volume per measurement (many small files / a few large ones).
constexpr std::uint64_t kVolume = 2 * 1024 * 1024;

CompressionModel DoubleSpace() {
  CompressionModel c;
  c.enabled = true;
  c.ratio = 0.5;
  c.compress_kbps = 260.0;
  c.decompress_kbps = 1000.0;
  c.open_overhead_ms = 25.0;
  return c;
}

CompressionModel Stacker() {
  CompressionModel c;
  c.enabled = true;
  c.ratio = 0.5;
  c.compress_kbps = 260.0;
  c.decompress_kbps = 500.0;
  c.open_overhead_ms = 0.0;
  c.chunk_overhead_ms = 48.0;
  return c;
}

struct Cell {
  double read_small, read_large, write_small, write_large;
};

Cell Measure(TestbedDevice& device, double data_ratio) {
  Cell cell{};
  device.Format();
  cell.write_small = BenchWriteFiles(device, kSmallFile, kChunk, kVolume, data_ratio)
                         .throughput_kbps();
  cell.read_small = BenchReadFiles(device, kSmallFile, kChunk, kVolume, data_ratio)
                        .throughput_kbps();
  device.Format();
  cell.write_large = BenchWriteFiles(device, kLargeFile, kChunk, kVolume, data_ratio)
                         .throughput_kbps();
  cell.read_large = BenchReadFiles(device, kLargeFile, kChunk, kVolume, data_ratio)
                        .throughput_kbps();
  return cell;
}

void Run(BenchContext& ctx) {
  std::printf("== Table 1: measured throughput (KB/s) on the testbed models ==\n");
  std::printf("Paper: cu140 R 116/543 W 76/231 | compressed R 64/543 W 289/146\n");
  std::printf("       sdp10 R 280/410 W 39/40  | compressed R 218/246 W 225/35\n");
  std::printf("       intel R 645/37  W 43/21  | compressed R 345/34  W 83/27\n\n");

  TablePrinter table({"Device", "Mode", "Read 4KB-file", "Read 1MB-file", "Write 4KB-file",
                      "Write 1MB-file"});

  const CompressionModel off{};
  SimpleTestbedDevice cu_raw(Cu140Measured(), off);
  SimpleTestbedDevice cu_comp(Cu140Measured(), DoubleSpace());
  SimpleTestbedDevice sdp_raw(Sdp10Measured(), off);
  SimpleTestbedDevice sdp_comp(Sdp10Measured(), Stacker());
  MffsTestbedDevice intel(DefaultMffsConfig());

  struct RowSpec {
    TestbedDevice* device;
    const char* label;
    const char* mode;
    double ratio;  // payload compressibility (1.0 = random data)
  };
  const RowSpec rows[] = {
      {&cu_raw, "Caviar cu140", "uncompressed", 1.0},
      {&cu_comp, "Caviar cu140", "DoubleSpace", 0.5},
      {&sdp_raw, "SunDisk sdp10", "uncompressed", 1.0},
      {&sdp_comp, "SunDisk sdp10", "Stacker", 0.5},
      {&intel, "Intel card (MFFS 2.00)", "random data", 1.0},
      {&intel, "Intel card (MFFS 2.00)", "compressible", 0.5},
  };
  for (const RowSpec& row : rows) {
    const Cell cell = Measure(*row.device, row.ratio);
    table.BeginRow()
        .Cell(std::string(row.label))
        .Cell(std::string(row.mode))
        .Cell(cell.read_small, 0)
        .Cell(cell.read_large, 0)
        .Cell(cell.write_small, 0)
        .Cell(cell.write_large, 0);
    ResultRow out;
    out.AddText("device", row.label);
    out.AddText("mode", row.mode);
    out.AddNumber("read_4kb_kbps", cell.read_small);
    out.AddNumber("read_1mb_kbps", cell.read_large);
    out.AddNumber("write_4kb_kbps", cell.write_small);
    out.AddNumber("write_1mb_kbps", cell.write_large);
    ctx.Emit(std::move(out));
  }
  table.Print(std::cout);
}

REGISTER_BENCH(table1_microbench)({
    .name = "table1_microbench",
    .description = "Measured throughput on the section-3 testbed models",
    .source = "Table 1",
    .dims = "device{cu140,sdp10,Intel MFFS} x compression x file size",
    .uses_scale = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
