// Reproduces Figure 1: measured latency and instantaneous throughput for
// 4-Kbyte writes to a 1-Mbyte file on each device/compression combination.
// The Intel card under MFFS 2.00 shows write latency growing linearly with
// cumulative data written; the other devices stay flat.
//
// Points are averaged across 32 Kbytes of writes, as in the paper.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/device/device_catalog.h"
#include "src/mffs/microbench.h"
#include "src/mffs/testbed_device.h"
#include "src/runner/bench_registry.h"
#include "src/util/ascii_plot.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

constexpr std::uint32_t kChunk = 4 * 1024;
constexpr std::uint64_t kFile = 1024 * 1024;
constexpr std::uint32_t kPointChunks = 8;  // 32 KB per plotted point

CompressionModel DoubleSpace() {
  CompressionModel c;
  c.enabled = true;
  c.ratio = 0.5;
  c.compress_kbps = 260.0;
  c.decompress_kbps = 1000.0;
  c.open_overhead_ms = 25.0;
  return c;
}

CompressionModel Stacker() {
  CompressionModel c = DoubleSpace();
  c.decompress_kbps = 500.0;
  c.open_overhead_ms = 0.0;
  c.chunk_overhead_ms = 48.0;
  return c;
}

// Latency series smoothed into one point per 32 KB.
std::vector<double> Smoothed(const std::vector<double>& latency_ms) {
  std::vector<double> points;
  double acc = 0.0;
  std::uint32_t n = 0;
  for (const double v : latency_ms) {
    acc += v;
    if (++n == kPointChunks) {
      points.push_back(acc / n);
      acc = 0.0;
      n = 0;
    }
  }
  return points;
}

void Run(BenchContext& ctx) {
  std::printf("== Figure 1: 4-KB writes to a 1-MB file ==\n");
  std::printf("(latency per op averaged over 32-KB windows; paper: Intel latency grows\n");
  std::printf(" linearly to ~300-400 ms while the disk and flash disk stay flat)\n\n");

  const CompressionModel off{};
  SimpleTestbedDevice cu_raw(Cu140Measured(), off);
  SimpleTestbedDevice cu_comp(Cu140Measured(), DoubleSpace());
  SimpleTestbedDevice sdp_raw(Sdp10Measured(), off);
  SimpleTestbedDevice sdp_comp(Sdp10Measured(), Stacker());
  MffsTestbedDevice intel(DefaultMffsConfig());

  struct Series {
    TestbedDevice* device;
    const char* label;
    double ratio;
    std::vector<double> latency;
    std::vector<double> throughput;
  };
  std::vector<Series> series = {
      {&cu_raw, "cu140 uncompressed", 1.0, {}, {}},
      {&cu_comp, "cu140 compressed", 0.5, {}, {}},
      {&sdp_raw, "sdp10 uncompressed", 1.0, {}, {}},
      {&sdp_comp, "sdp10 compressed", 0.5, {}, {}},
      {&intel, "Intel card (MFFS)", 0.5, {}, {}},
  };

  for (Series& s : series) {
    s.device->Format();
    const MicroBenchResult result =
        BenchWriteFiles(*s.device, kFile, kChunk, kFile, s.ratio);
    s.latency = Smoothed(result.latency_ms);
    for (const double ms : s.latency) {
      s.throughput.push_back(ms <= 0.0 ? 0.0 : (kChunk / 1024.0) / (ms / 1000.0));
    }
  }

  TablePrinter lat({"Cumulative KB", "cu140", "cu140+comp", "sdp10", "sdp10+comp",
                    "Intel MFFS"});
  TablePrinter tput({"Cumulative KB", "cu140", "cu140+comp", "sdp10", "sdp10+comp",
                     "Intel MFFS"});
  const std::size_t points = series[0].latency.size();
  for (std::size_t i = 0; i < points; ++i) {
    lat.BeginRow().Cell(static_cast<std::int64_t>((i + 1) * 32));
    tput.BeginRow().Cell(static_cast<std::int64_t>((i + 1) * 32));
    for (const Series& s : series) {
      lat.Cell(s.latency[i], 1);
      tput.Cell(s.throughput[i], 1);
    }
  }
  std::printf("-- Figure 1(a): write latency (ms per 4-KB op) --\n");
  lat.Print(std::cout);
  std::printf("\n-- Figure 1(b): instantaneous write throughput (KB/s) --\n");
  tput.Print(std::cout);

  AsciiPlot plot("Figure 1(a): write latency vs cumulative KB written", "cumulative KB",
                 "latency ms");
  const char glyphs[] = {'c', 'C', 's', 'S', '*'};
  for (std::size_t si = 0; si < series.size(); ++si) {
    std::vector<double> xs;
    for (std::size_t i = 0; i < series[si].latency.size(); ++i) {
      xs.push_back(static_cast<double>((i + 1) * 32));
    }
    plot.AddSeries(series[si].label, glyphs[si], xs, series[si].latency);
  }
  std::printf("\n");
  plot.Render(std::cout);

  // Headline check: the MFFS latency at the end of the file should be much
  // larger than at the start.
  const double first = series[4].latency.front();
  const double last = series[4].latency.back();
  std::printf("\nMFFS latency growth over the 1-MB file: %.1f ms -> %.1f ms (%.1fx)\n", first,
              last, last / first);

  for (const Series& s : series) {
    ResultRow row;
    row.AddText("series", s.label);
    row.AddNumber("first_latency_ms", s.latency.front());
    row.AddNumber("last_latency_ms", s.latency.back());
    row.AddNumber("first_throughput_kbps", s.throughput.front());
    row.AddNumber("last_throughput_kbps", s.throughput.back());
    ctx.Emit(std::move(row));
  }
}

REGISTER_BENCH(fig1_write_anomaly)({
    .name = "fig1_write_anomaly",
    .description = "Write latency growth for 4-KB writes to a 1-MB file",
    .source = "Figure 1",
    .dims = "series{cu140,sdp10,Intel MFFS x compression} (testbed models)",
    .uses_scale = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
