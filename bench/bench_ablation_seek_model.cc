// Ablation: the paper's average-cost disk timing vs a detailed
// geometry-based model (seek curve over cylinder distance + rotational
// position tracking + head switches).
//
// Section 4.2 lists average seek/rotation among the simulator's simplifying
// assumptions and section 5.1 attributes the cu140's 2x simulation-vs-
// measurement write gap to "our optimistic assumption about avoiding
// seeks".  This bench quantifies how much the simplification matters.
//
// The timing model is a config flag, not a spec dimension, so the bench
// runs hand-built points through the engine.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/device/geometric_disk.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct Drive {
  DeviceSpec spec;
  DiskGeometry geometry;
};

std::vector<Drive> Drives() {
  return {Drive{Cu140Datasheet(), Cu140Geometry()},
          Drive{KittyhawkDatasheet(), KittyhawkGeometry()}};
}

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Ablation: average-cost vs geometry-based disk timing (scale %.2f) ==\n\n",
              scale);

  const std::vector<const char*> workloads = {"mac", "dos", "hp"};
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const Drive& drive : Drives()) {
      for (const bool geometric : {false, true}) {
        ExperimentPoint point;
        point.index = points.size();
        point.workload = workload;
        point.scale = scale;
        point.config = MakePaperConfig(drive.spec, 2 * 1024 * 1024);
        point.config.use_disk_geometry = geometric;
        point.config.disk_geometry = drive.geometry;
        points.push_back(std::move(point));
      }
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

  std::size_t next = 0;
  for (const char* workload : workloads) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Drive", "Model", "Read Mean (ms)", "Read Max", "Write Mean (ms)",
                        "Energy (J)"});
    for (const Drive& drive : Drives()) {
      for (const bool geometric : {false, true}) {
        const SimResult& result = outcomes[next++].result;
        table.BeginRow()
            .Cell(drive.spec.name)
            .Cell(std::string(geometric ? "geometry" : "average"))
            .Cell(result.read_response_ms.mean(), 2)
            .Cell(result.read_response_ms.max(), 0)
            .Cell(result.write_response_ms.mean(), 2)
            .Cell(result.total_energy_j(), 0);
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(ablation_seek_model)({
    .name = "ablation_seek_model",
    .description = "Average-cost vs geometry-based disk timing",
    .source = "Sections 4.2/5.1",
    .dims = "workload{mac,dos,hp} x drive{cu140,kh} x model{average,geometry}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
