// Ablation: the paper's average-cost disk timing vs a detailed
// geometry-based model (seek curve over cylinder distance + rotational
// position tracking + head switches).
//
// Section 4.2 lists average seek/rotation among the simulator's simplifying
// assumptions and section 5.1 attributes the cu140's 2x simulation-vs-
// measurement write gap to "our optimistic assumption about avoiding
// seeks".  This bench quantifies how much the simplification matters.
//
// Usage: bench_ablation_seek_model [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/device/geometric_disk.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(double scale) {
  std::printf("== Ablation: average-cost vs geometry-based disk timing (scale %.2f) ==\n\n",
              scale);

  for (const char* workload : {"mac", "dos", "hp"}) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Drive", "Model", "Read Mean (ms)", "Read Max", "Write Mean (ms)",
                        "Energy (J)"});
    struct Drive {
      DeviceSpec spec;
      DiskGeometry geometry;
    };
    for (const Drive& drive : {Drive{Cu140Datasheet(), Cu140Geometry()},
                               Drive{KittyhawkDatasheet(), KittyhawkGeometry()}}) {
      for (const bool geometric : {false, true}) {
        SimConfig config = MakePaperConfig(drive.spec, 2 * 1024 * 1024);
        config.use_disk_geometry = geometric;
        config.disk_geometry = drive.geometry;
        const SimResult result = RunNamedWorkload(workload, config, scale);
        table.BeginRow()
            .Cell(drive.spec.name)
            .Cell(std::string(geometric ? "geometry" : "average"))
            .Cell(result.read_response_ms.mean(), 2)
            .Cell(result.read_response_ms.max(), 0)
            .Cell(result.write_response_ms.mean(), 2)
            .Cell(result.total_energy_j(), 0);
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
