// Ablation: flash-card cleaning policy (greedy lowest-utilization, as MFFS,
// vs LFS/eNVy-style cost-benefit) and prefill mixing (segregated cold data
// vs pessimally interleaved), across storage utilizations.
//
// Every variant is a bundle of config flags, so the bench hands the engine
// one hand-built point per (utilization, variant) pair; the trace is
// generated locally only to fix the flash capacity.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct Variant {
  const char* label;
  CleaningPolicy policy;
  bool interleave;
  bool background;
  bool separate_cleaning;
};

const std::vector<Variant>& Variants() {
  static const std::vector<Variant> variants = {
      {"greedy / segregated / background", CleaningPolicy::kGreedy, false, true, false},
      {"cost-benefit / segregated / background", CleaningPolicy::kCostBenefit, false, true,
       false},
      {"wear-aware / segregated / background", CleaningPolicy::kWearAware, false, true,
       false},
      {"greedy + eNVy-style copy separation", CleaningPolicy::kGreedy, false, true, true},
      {"greedy / interleaved / background", CleaningPolicy::kGreedy, true, true, false},
      {"cost-benefit / interleaved / background", CleaningPolicy::kCostBenefit, true, true,
       false},
      {"greedy / interleaved + copy separation", CleaningPolicy::kGreedy, true, true, true},
      {"greedy / segregated / on-demand", CleaningPolicy::kGreedy, false, false, false},
  };
  return variants;
}

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Ablation: flash-card cleaning policy and cold-data mixing (scale %.2f) ==\n",
              scale);
  std::printf("(mac trace, Intel datasheet card)\n\n");

  const Trace trace = GenerateNamedWorkload("mac", scale);
  const BlockTrace blocks = BlockMapper::Map(trace);
  const std::uint64_t capacity = RequiredCapacityBytes(blocks.total_bytes(), 0.40, 128 * 1024);

  const std::vector<double> utils = {0.80, 0.90, 0.95};
  std::vector<ExperimentPoint> points;
  for (const double util : utils) {
    for (const Variant& variant : Variants()) {
      ExperimentPoint point;
      point.index = points.size();
      point.workload = "mac";
      point.scale = scale;
      point.config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
      point.config.flash_utilization = util;
      point.config.capacity_bytes = capacity;
      point.config.auto_capacity = false;
      point.config.cleaning_policy = variant.policy;
      point.config.interleave_prefill = variant.interleave;
      point.config.background_cleaning = variant.background;
      point.config.separate_cleaning_segment = variant.separate_cleaning;
      points.push_back(std::move(point));
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

  std::size_t next = 0;
  for (const double util : utils) {
    std::printf("-- utilization %.0f%% --\n", util * 100.0);
    TablePrinter table({"Variant", "Energy (J)", "Write Mean (ms)", "Write Max", "Erases",
                        "Blocks copied", "Max seg erases", "Erase sd"});
    for (const Variant& variant : Variants()) {
      const SimResult& result = outcomes[next++].result;
      table.BeginRow()
          .Cell(std::string(variant.label))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(result.write_response_ms.max(), 0)
          .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
          .Cell(static_cast<std::int64_t>(result.counters.blocks_copied))
          .Cell(result.max_segment_erases, 0)
          .Cell(result.counters.segment_erase_stats.stddev(), 2);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(ablation_cleaning)({
    .name = "ablation_cleaning",
    .description = "Cleaning policy and cold-data mixing on the flash card",
    .source = "ablation",
    .dims = "utilization{80,90,95%} x variant{8 policy/mixing bundles}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
