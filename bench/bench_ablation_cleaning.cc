// Ablation: flash-card cleaning policy (greedy lowest-utilization, as MFFS,
// vs LFS/eNVy-style cost-benefit) and prefill mixing (segregated cold data
// vs pessimally interleaved), across storage utilizations.
//
// Usage: bench_ablation_cleaning [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(double scale) {
  std::printf("== Ablation: flash-card cleaning policy and cold-data mixing (scale %.2f) ==\n",
              scale);
  std::printf("(mac trace, Intel datasheet card)\n\n");

  const Trace trace = GenerateNamedWorkload("mac", scale);
  const BlockTrace blocks = BlockMapper::Map(trace);
  const std::uint64_t capacity = RequiredCapacityBytes(blocks.total_bytes(), 0.40, 128 * 1024);

  struct Variant {
    const char* label;
    CleaningPolicy policy;
    bool interleave;
    bool background;
    bool separate_cleaning;
  };
  const std::vector<Variant> variants = {
      {"greedy / segregated / background", CleaningPolicy::kGreedy, false, true, false},
      {"cost-benefit / segregated / background", CleaningPolicy::kCostBenefit, false, true,
       false},
      {"wear-aware / segregated / background", CleaningPolicy::kWearAware, false, true,
       false},
      {"greedy + eNVy-style copy separation", CleaningPolicy::kGreedy, false, true, true},
      {"greedy / interleaved / background", CleaningPolicy::kGreedy, true, true, false},
      {"cost-benefit / interleaved / background", CleaningPolicy::kCostBenefit, true, true,
       false},
      {"greedy / interleaved + copy separation", CleaningPolicy::kGreedy, true, true, true},
      {"greedy / segregated / on-demand", CleaningPolicy::kGreedy, false, false, false},
  };

  for (const double util : {0.80, 0.90, 0.95}) {
    std::printf("-- utilization %.0f%% --\n", util * 100.0);
    TablePrinter table({"Variant", "Energy (J)", "Write Mean (ms)", "Write Max", "Erases",
                        "Blocks copied", "Max seg erases", "Erase sd"});
    for (const Variant& variant : variants) {
      SimConfig config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
      config.flash_utilization = util;
      config.capacity_bytes = capacity;
      config.auto_capacity = false;
      config.cleaning_policy = variant.policy;
      config.interleave_prefill = variant.interleave;
      config.background_cleaning = variant.background;
      config.separate_cleaning_segment = variant.separate_cleaning;
      const SimResult result = RunSimulation(blocks, config);
      table.BeginRow()
          .Cell(std::string(variant.label))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(result.write_response_ms.max(), 0)
          .Cell(static_cast<std::int64_t>(result.counters.segment_erases))
          .Cell(static_cast<std::int64_t>(result.counters.blocks_copied))
          .Cell(result.max_segment_erases, 0)
          .Cell(result.counters.segment_erase_stats.stddev(), 2);
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
