// Reproduces Table 2: manufacturer specifications for the three storage
// devices, as encoded in the device catalog (src/device/device_catalog.cc).
#include <cstdio>
#include <iostream>

#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  std::printf("== Table 2: manufacturers' specifications ==\n");
  TablePrinter table({"Device", "Operation", "Latency (ms)", "Throughput (KB/s)", "Power (W)"});

  const DeviceSpec disk = Cu140Datasheet();
  table.BeginRow().Cell(std::string("Caviar Ultralite cu140")).Cell(std::string("Read/Write"))
      .Cell(disk.read_overhead_ms, 1).Cell(disk.read_kbps, 0).Cell(disk.read_w, 2);
  table.BeginRow().Cell(std::string("")).Cell(std::string("Idle"))
      .Cell(std::string("-")).Cell(std::string("-")).Cell(disk.idle_w, 2);
  table.BeginRow().Cell(std::string("")).Cell(std::string("Spin up"))
      .Cell(disk.spinup_ms, 1).Cell(std::string("-")).Cell(disk.spinup_w, 2);

  const DeviceSpec flash_disk = Sdp10Datasheet();
  table.BeginRow().Cell(std::string("SunDisk sdp10")).Cell(std::string("Read"))
      .Cell(flash_disk.read_overhead_ms, 1).Cell(flash_disk.read_kbps, 0)
      .Cell(flash_disk.read_w, 2);
  table.BeginRow().Cell(std::string("")).Cell(std::string("Write (erase coupled)"))
      .Cell(flash_disk.write_overhead_ms, 1).Cell(flash_disk.write_kbps, 0)
      .Cell(flash_disk.write_w, 2);

  const DeviceSpec card = IntelCardDatasheet();
  const double erase_kbps = static_cast<double>(card.erase_segment_bytes) / 1024.0 /
                            (card.erase_ms_per_segment / 1000.0);
  table.BeginRow().Cell(std::string("Intel flash card")).Cell(std::string("Read"))
      .Cell(card.read_overhead_ms, 1).Cell(card.read_kbps, 0).Cell(card.read_w, 2);
  table.BeginRow().Cell(std::string("")).Cell(std::string("Write (pre-erased)"))
      .Cell(card.write_overhead_ms, 1).Cell(card.write_kbps, 0).Cell(card.write_w, 2);
  table.BeginRow().Cell(std::string("")).Cell(std::string("Erase (per 128-KB segment)"))
      .Cell(card.erase_ms_per_segment, 0).Cell(erase_kbps, 0).Cell(card.erase_w, 2);

  table.Print(std::cout);

  std::printf("\nDerived / newer parts used elsewhere in the study:\n");
  TablePrinter extra({"Device", "Read KB/s", "Write KB/s", "Erase KB/s", "Pre-erased write KB/s",
                      "Endurance (cycles)"});
  for (const DeviceSpec& spec :
       {Sdp5Datasheet(), Sdp5aDatasheet(), IntelSeries2PlusDatasheet()}) {
    extra.BeginRow()
        .Cell(spec.name)
        .Cell(spec.read_kbps, 0)
        .Cell(spec.write_kbps, 0)
        .Cell(spec.erase_kbps, 0)
        .Cell(spec.pre_erased_write_kbps, 0)
        .Cell(static_cast<std::int64_t>(spec.endurance_cycles));
    ResultRow row;
    row.AddText("device", spec.name);
    row.AddNumber("read_kbps", spec.read_kbps);
    row.AddNumber("write_kbps", spec.write_kbps);
    row.AddNumber("erase_kbps", spec.erase_kbps);
    row.AddNumber("pre_erased_write_kbps", spec.pre_erased_write_kbps);
    row.AddInt("endurance_cycles", static_cast<std::int64_t>(spec.endurance_cycles));
    ctx.Emit(std::move(row));
  }
  extra.Print(std::cout);
}

REGISTER_BENCH(table2_specs)({
    .name = "table2_specs",
    .description = "Manufacturers' specifications from the device catalog",
    .source = "Table 2",
    .dims = "device catalog dump (no simulation)",
    .uses_scale = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
