// Reproduces Figure 3: measured throughput on a 10-Mbyte Intel flash card
// for twenty 1-Mbyte overwrite passes (4 Kbytes at a time, random positions
// within the live data), with 1, 9, and 9.5 Mbytes of live data.
//
// The paper observed throughput dropping both with cumulative data written
// (MFFS overhead + cleaning) and with the amount of live data (cleaning
// pressure).
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/mffs/microbench.h"
#include "src/mffs/testbed_device.h"
#include "src/runner/bench_registry.h"
#include "src/util/ascii_plot.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

constexpr std::uint32_t kChunk = 4 * 1024;
constexpr std::uint64_t kMb = 1024 * 1024;
constexpr std::uint32_t kPasses = 20;

void Run(BenchContext& ctx) {
  std::printf("== Figure 3: throughput of 20 x 1-MB random overwrites on a 10-MB card ==\n");
  std::printf("(paper: starts ~20-25 KB/s; drops with cumulative writes, and drops much\n");
  std::printf(" faster the more live data the card holds)\n\n");

  const std::vector<std::pair<const char*, std::uint64_t>> configs = {
      {"1 Mbyte live", 1 * kMb},
      {"9 Mbytes live", 9 * kMb},
      {"9.5 Mbytes live", 9 * kMb + kMb / 2},
  };

  std::vector<std::vector<double>> curves;
  for (const auto& [label, live] : configs) {
    MffsTestbedDevice card(DefaultMffsConfig());
    card.Format();  // "the flash card was erased completely prior to each experiment"
    Rng rng(99);
    // Incompressible payloads: with 2:1-compressible data the card would
    // only be half as full as the nominal live size and never feel pressure.
    curves.push_back(
        BenchOverwritePasses(card, live, kMb, kChunk, kPasses, /*data_ratio=*/1.0, rng));
    std::printf("%-16s: %llu cleaning copies, %llu segment erases\n", label,
                static_cast<unsigned long long>(card.cleaning_copies()),
                static_cast<unsigned long long>(card.segment_erases()));
  }

  std::printf("\n-- throughput (KB/s) per 1-MB pass --\n");
  TablePrinter table({"Cumulative MB", "1 MB live", "9 MB live", "9.5 MB live"});
  for (std::uint32_t pass = 0; pass < kPasses; ++pass) {
    table.BeginRow().Cell(static_cast<std::int64_t>(pass + 1));
    for (const auto& curve : curves) {
      table.Cell(curve[pass], 1);
    }
  }
  table.Print(std::cout);

  std::printf("\nFirst->last pass: 1MB %.1f->%.1f | 9MB %.1f->%.1f | 9.5MB %.1f->%.1f KB/s\n",
              curves[0].front(), curves[0].back(), curves[1].front(), curves[1].back(),
              curves[2].front(), curves[2].back());

  AsciiPlot plot("Figure 3: overwrite throughput vs cumulative MB written", "cumulative MB",
                 "KB/s");
  const char glyphs[] = {'1', '9', 'x'};
  for (std::size_t c = 0; c < curves.size(); ++c) {
    std::vector<double> xs;
    for (std::size_t i = 0; i < curves[c].size(); ++i) {
      xs.push_back(static_cast<double>(i + 1));
    }
    plot.AddSeries(configs[c].first, glyphs[c], xs, curves[c]);
  }
  std::printf("\n");
  plot.Render(std::cout);

  for (std::size_t c = 0; c < curves.size(); ++c) {
    ResultRow row;
    row.AddText("live_data", configs[c].first);
    row.AddNumber("first_pass_kbps", curves[c].front());
    row.AddNumber("last_pass_kbps", curves[c].back());
    ctx.Emit(std::move(row));
  }
}

REGISTER_BENCH(fig3_mffs_degradation)({
    .name = "fig3_mffs_degradation",
    .description = "MFFS overwrite throughput vs live data and cumulative writes",
    .source = "Figure 3",
    .dims = "live{1,9,9.5MB} x pass{1..20} (testbed model)",
    .uses_scale = false,
    .run = Run,
});

}  // namespace
}  // namespace mobisim
