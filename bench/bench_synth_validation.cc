// Section 5.1 validation: the paper ran a 6-MB synthetic trace both on the
// OmniBook testbed and through the simulator, and found simulated
// performance within a few percent of measurement (with two exceptions it
// explains).  Our analogue: run the synth workload through the full
// simulator (no caches, device-direct) and compare the mean read/write
// response against an analytic expectation computed straight from the
// device specifications -- no queueing, no cleaning, no spin-downs.
//
// The trace's timestamps are rewritten (closed-loop spacing), which the
// engine's named-workload regeneration cannot express, so this bench runs
// the simulator directly and emits its comparison rows by hand.
#include <cstdio>
#include <iostream>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct Expectation {
  double read_ms = 0.0;
  double write_ms = 0.0;
};

// Mean service time straight from the spec sheet, assuming a spinning disk /
// stall-free flash and the no-seek-within-file rule applied pessimistically
// (every op pays the random overhead).
Expectation AnalyticExpectation(const DeviceSpec& spec, const BlockTrace& trace) {
  Expectation e;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double read_ms = 0.0;
  double write_ms = 0.0;
  const std::uint64_t warm = trace.records.size() / 10;
  for (std::uint64_t i = warm; i < trace.records.size(); ++i) {
    const BlockRecord& rec = trace.records[i];
    const std::uint64_t bytes = static_cast<std::uint64_t>(rec.block_count) * trace.block_bytes;
    if (rec.op == OpType::kRead) {
      read_ms += spec.read_overhead_ms + MsFromUs(TransferTimeUs(bytes, spec.read_kbps));
      ++reads;
    } else if (rec.op == OpType::kWrite) {
      write_ms += spec.write_overhead_ms + MsFromUs(TransferTimeUs(bytes, spec.write_kbps));
      ++writes;
    }
  }
  e.read_ms = reads > 0 ? read_ms / static_cast<double>(reads) : 0.0;
  e.write_ms = writes > 0 ? write_ms / static_cast<double>(writes) : 0.0;
  return e;
}

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Section 5.1: simulator vs analytic expectation, synth workload ==\n");
  std::printf("(paper: simulation within a few percent of testbed measurement, except\n");
  std::printf(" flash-card reads and cu140 writes, which the paper attributes to cleaning/\n");
  std::printf(" decompression and seek costs; our deltas likewise come from seeks, queueing\n");
  std::printf(" and cleaning, which the analytic model omits)\n\n");

  const Trace trace = GenerateNamedWorkload("synth", scale);
  BlockTrace blocks = BlockMapper::Map(trace);
  // The testbed ran closed-loop (each operation issued after the previous
  // one completed); replaying trace timestamps open-loop against a raw
  // device would only measure queueing.  Spacing the records out removes
  // queueing while keeping the op mix and sizes.
  for (std::size_t i = 0; i < blocks.records.size(); ++i) {
    blocks.records[i].time_us = static_cast<SimTime>(i) * 5 * kUsPerSec;
  }

  TablePrinter table({"Device", "Read sim (ms)", "Read analytic", "Delta (%)",
                      "Write sim (ms)", "Write analytic", "Delta (%)"});
  for (const DeviceSpec& spec :
       {Cu140Measured(), Sdp10Measured(), IntelCardMeasured()}) {
    SimConfig config = MakePaperConfig(spec, /*dram_bytes=*/0, /*sram_bytes=*/0);
    config.spin_down_after_us = UsFromSec(1e6);  // keep the disk spinning, as on the testbed
    const SimResult result = RunSimulation(blocks, config);
    const Expectation expect = AnalyticExpectation(spec, blocks);
    const double read_sim = result.read_response_ms.mean();
    const double write_sim = result.write_response_ms.mean();
    table.BeginRow()
        .Cell(spec.name)
        .Cell(read_sim, 2)
        .Cell(expect.read_ms, 2)
        .Cell(expect.read_ms > 0 ? (read_sim / expect.read_ms - 1.0) * 100.0 : 0.0, 1)
        .Cell(write_sim, 2)
        .Cell(expect.write_ms, 2)
        .Cell(expect.write_ms > 0 ? (write_sim / expect.write_ms - 1.0) * 100.0 : 0.0, 1);
    ResultRow row;
    row.AddText("workload", "synth");
    row.AddText("device", spec.name);
    row.AddNumber("scale", scale);
    row.AddNumber("read_sim_ms", read_sim);
    row.AddNumber("read_analytic_ms", expect.read_ms);
    row.AddNumber("write_sim_ms", write_sim);
    row.AddNumber("write_analytic_ms", expect.write_ms);
    ctx.Emit(std::move(row));
  }
  table.Print(std::cout);
}

REGISTER_BENCH(synth_validation)({
    .name = "synth_validation",
    .description = "Simulator vs analytic expectation on the synth workload",
    .source = "Section 5.1",
    .dims = "device{cu140,sdp10,Intel measured} (closed-loop trace)",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
