// Related system (section 6): flash memory as a cache for disk blocks
// (Marsh, Douglis & Krishnan, HICSS '94).  A flash card between the DRAM
// cache and the disk absorbs reads and writes so the disk can stay spun
// down; this bench sweeps the flash cache size and compares against the
// plain disk and the all-flash organizations.
//
// The disk baselines and the all-flash upper bound are plain simulator
// configurations, so they run as one engine batch up front; the flash-cache
// organizations use src/fcache directly and emit their rows by hand.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/fcache/flash_cache_system.h"
#include "src/runner/bench_registry.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct RunStats {
  double energy_j = 0.0;
  double read_ms = 0.0;
  double write_ms = 0.0;
  std::uint64_t spinups = 0;
  double flash_hit_rate = 0.0;
};

RunStats RunFlashCache(const BlockTrace& trace, std::uint64_t flash_bytes,
                       std::uint64_t dram_bytes, SimTime spin_down_us) {
  FlashCacheConfig config;
  config.flash_bytes = flash_bytes;
  config.dram_bytes = dram_bytes;
  config.block_bytes = trace.block_bytes;
  config.spin_down_after_us = spin_down_us;
  config.disk_capacity_bytes =
      std::max<std::uint64_t>(trace.total_bytes(), 40ull * 1024 * 1024);
  FlashCacheSystem system(config);

  RunningStats reads;
  RunningStats writes;
  const std::uint64_t warm = trace.records.size() / 10;
  for (std::uint64_t i = 0; i < trace.records.size(); ++i) {
    const BlockRecord& rec = trace.records[i];
    const SimTime response = system.Handle(rec);
    if (i >= warm) {
      if (rec.op == OpType::kRead) {
        reads.Add(MsFromUs(response));
      } else if (rec.op == OpType::kWrite) {
        writes.Add(MsFromUs(response));
      }
    }
  }
  system.Finish(trace.records.back().time_us);

  RunStats stats;
  stats.energy_j = system.total_energy_j();
  stats.read_ms = reads.mean();
  stats.write_ms = writes.mean();
  stats.spinups = system.disk_counters().spinups;
  const std::uint64_t lookups = system.flash_hits() + system.flash_misses();
  stats.flash_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(system.flash_hits()) / static_cast<double>(lookups);
  return stats;
}

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Related system: flash as a disk-block cache (scale %.2f) ==\n", scale);
  std::printf("(expected: more flash cache => fewer disk spin-ups and less energy,\n");
  std::printf(" approaching the all-flash organizations)\n\n");

  const std::vector<std::uint64_t> sizes = {1, 2, 4, 8, 16};
  // The architecture targets aggressive disk power management, where spin-up
  // cost dominates; run both the paper's 5-s threshold and a 1-s one.
  const std::vector<double> thresholds_sec = {5.0, 1.0};
  const std::vector<const char*> workloads = {"synth", "mac", "hp"};

  // Engine pre-pass: per (workload, threshold), the two disk baselines and
  // the all-flash upper bound.  Consumed in enumeration order below.
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const double threshold_sec : thresholds_sec) {
      for (const std::uint64_t sram : {std::uint64_t{0}, std::uint64_t{32 * 1024}}) {
        ExperimentPoint point;
        point.index = points.size();
        point.workload = workload;
        point.scale = scale;
        point.config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024, sram);
        point.config.spin_down_after_us = UsFromSec(threshold_sec);
        points.push_back(std::move(point));
      }
      ExperimentPoint all_flash;
      all_flash.index = points.size();
      all_flash.workload = workload;
      all_flash.scale = scale;
      all_flash.config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
      points.push_back(std::move(all_flash));
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));
  std::size_t next = 0;

  // synth's 6-MB dataset fits entirely in the larger flash caches -- the
  // regime the architecture is designed for; mac and hp have working sets
  // far beyond any cache here, so compulsory misses keep the disk busy.
  for (const char* workload : workloads) {
    const Trace trace = GenerateNamedWorkload(workload, scale);
    const BlockTrace blocks = BlockMapper::Map(trace);
    for (const double threshold_sec : thresholds_sec) {
    const SimTime spin_down_us = UsFromSec(threshold_sec);

    std::printf("-- %s trace, %.0f-s spin-down --\n", workload, threshold_sec);
    TablePrinter table({"Organization", "Energy (J)", "Read Mean (ms)", "Write Mean (ms)",
                        "Disk spin-ups", "Flash hit rate"});

    // Baselines: plain disk without the SRAM buffer (the architecture Marsh
    // et al. compared against) and with it (the stronger alternative).
    for (const std::uint64_t sram : {std::uint64_t{0}, std::uint64_t{32 * 1024}}) {
      const SimResult& result = outcomes[next++].result;
      table.BeginRow()
          .Cell(std::string(sram == 0 ? "disk alone (Marsh baseline)" : "disk + 32-KB SRAM"))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(result.counters.spinups))
          .Cell(std::string("-"));
    }
    const SimResult& all_flash_result = outcomes[next++].result;
    const std::uint64_t dram_bytes =
        std::string(workload) == "hp" ? 0 : 2ull * 1024 * 1024;
    for (const std::uint64_t mb : sizes) {
      const RunStats stats =
          RunFlashCache(blocks, mb * 1024 * 1024, dram_bytes, spin_down_us);
      char label[48];
      std::snprintf(label, sizeof(label), "disk + %llu-MB flash cache",
                    static_cast<unsigned long long>(mb));
      table.BeginRow()
          .Cell(std::string(label))
          .Cell(stats.energy_j, 0)
          .Cell(stats.read_ms, 2)
          .Cell(stats.write_ms, 2)
          .Cell(static_cast<std::int64_t>(stats.spinups))
          .Cell(stats.flash_hit_rate, 2);
      ResultRow row;
      row.AddText("workload", workload);
      row.AddNumber("spin_down_sec", threshold_sec);
      row.AddInt("flash_cache_mb", static_cast<std::int64_t>(mb));
      row.AddNumber("energy_j", stats.energy_j);
      row.AddNumber("read_mean_ms", stats.read_ms);
      row.AddNumber("write_mean_ms", stats.write_ms);
      row.AddInt("spinups", static_cast<std::int64_t>(stats.spinups));
      row.AddNumber("flash_hit_rate", stats.flash_hit_rate);
      ctx.Emit(std::move(row));
    }
    // Upper bound: all-flash.
    {
      const SimResult& result = all_flash_result;
      table.BeginRow()
          .Cell(std::string("all-flash card"))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(0))
          .Cell(std::string("-"));
    }
    table.Print(std::cout);
    std::printf("\n");
    }
  }
}

REGISTER_BENCH(related_flash_cache)({
    .name = "related_flash_cache",
    .description = "Flash memory as a cache for disk blocks (Marsh et al.)",
    .source = "Section 6",
    .dims = "workload{synth,mac,hp} x spin-down{5,1s} x cache{1..16MB}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
