// Related system (section 6): flash memory as a cache for disk blocks
// (Marsh, Douglis & Krishnan, HICSS '94).  A flash card between the DRAM
// cache and the disk absorbs reads and writes so the disk can stay spun
// down; this bench sweeps the flash cache size and compares against the
// plain disk and the all-flash organizations.
//
// Usage: bench_related_flash_cache [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/fcache/flash_cache_system.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct RunStats {
  double energy_j = 0.0;
  double read_ms = 0.0;
  double write_ms = 0.0;
  std::uint64_t spinups = 0;
  double flash_hit_rate = 0.0;
};

RunStats RunFlashCache(const BlockTrace& trace, std::uint64_t flash_bytes,
                       std::uint64_t dram_bytes, SimTime spin_down_us) {
  FlashCacheConfig config;
  config.flash_bytes = flash_bytes;
  config.dram_bytes = dram_bytes;
  config.block_bytes = trace.block_bytes;
  config.spin_down_after_us = spin_down_us;
  config.disk_capacity_bytes =
      std::max<std::uint64_t>(trace.total_bytes(), 40ull * 1024 * 1024);
  FlashCacheSystem system(config);

  RunningStats reads;
  RunningStats writes;
  const std::uint64_t warm = trace.records.size() / 10;
  for (std::uint64_t i = 0; i < trace.records.size(); ++i) {
    const BlockRecord& rec = trace.records[i];
    const SimTime response = system.Handle(rec);
    if (i >= warm) {
      if (rec.op == OpType::kRead) {
        reads.Add(MsFromUs(response));
      } else if (rec.op == OpType::kWrite) {
        writes.Add(MsFromUs(response));
      }
    }
  }
  system.Finish(trace.records.back().time_us);

  RunStats stats;
  stats.energy_j = system.total_energy_j();
  stats.read_ms = reads.mean();
  stats.write_ms = writes.mean();
  stats.spinups = system.disk_counters().spinups;
  const std::uint64_t lookups = system.flash_hits() + system.flash_misses();
  stats.flash_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(system.flash_hits()) / static_cast<double>(lookups);
  return stats;
}

void Run(double scale) {
  std::printf("== Related system: flash as a disk-block cache (scale %.2f) ==\n", scale);
  std::printf("(expected: more flash cache => fewer disk spin-ups and less energy,\n");
  std::printf(" approaching the all-flash organizations)\n\n");

  const std::vector<std::uint64_t> sizes = {1, 2, 4, 8, 16};
  // The architecture targets aggressive disk power management, where spin-up
  // cost dominates; run both the paper's 5-s threshold and a 1-s one.
  const std::vector<double> thresholds_sec = {5.0, 1.0};
  // synth's 6-MB dataset fits entirely in the larger flash caches -- the
  // regime the architecture is designed for; mac and hp have working sets
  // far beyond any cache here, so compulsory misses keep the disk busy.
  for (const char* workload : {"synth", "mac", "hp"}) {
    const Trace trace = GenerateNamedWorkload(workload, scale);
    const BlockTrace blocks = BlockMapper::Map(trace);
    for (const double threshold_sec : thresholds_sec) {
    const SimTime spin_down_us = UsFromSec(threshold_sec);

    std::printf("-- %s trace, %.0f-s spin-down --\n", workload, threshold_sec);
    TablePrinter table({"Organization", "Energy (J)", "Read Mean (ms)", "Write Mean (ms)",
                        "Disk spin-ups", "Flash hit rate"});

    // Baselines: plain disk without the SRAM buffer (the architecture Marsh
    // et al. compared against) and with it (the stronger alternative).
    for (const std::uint64_t sram : {std::uint64_t{0}, std::uint64_t{32 * 1024}}) {
      SimConfig config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024, sram);
      config.spin_down_after_us = spin_down_us;
      if (std::string(workload) == "hp") {
        config.dram_bytes = 0;
      }
      const SimResult result = RunSimulation(blocks, config);
      table.BeginRow()
          .Cell(std::string(sram == 0 ? "disk alone (Marsh baseline)" : "disk + 32-KB SRAM"))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(result.counters.spinups))
          .Cell(std::string("-"));
    }
    const std::uint64_t dram_bytes =
        std::string(workload) == "hp" ? 0 : 2ull * 1024 * 1024;
    for (const std::uint64_t mb : sizes) {
      const RunStats stats =
          RunFlashCache(blocks, mb * 1024 * 1024, dram_bytes, spin_down_us);
      char label[48];
      std::snprintf(label, sizeof(label), "disk + %llu-MB flash cache",
                    static_cast<unsigned long long>(mb));
      table.BeginRow()
          .Cell(std::string(label))
          .Cell(stats.energy_j, 0)
          .Cell(stats.read_ms, 2)
          .Cell(stats.write_ms, 2)
          .Cell(static_cast<std::int64_t>(stats.spinups))
          .Cell(stats.flash_hit_rate, 2);
    }
    // Upper bound: all-flash.
    {
      SimConfig config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
      if (std::string(workload) == "hp") {
        config.dram_bytes = 0;
      }
      const SimResult result = RunSimulation(blocks, config);
      table.BeginRow()
          .Cell(std::string("all-flash card"))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(0))
          .Cell(std::string("-"));
    }
    table.Print(std::cout);
    std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
