// Reproduces Figure 4: energy consumption and average overall response time
// as a function of DRAM buffer-cache size (0-4 MB) and flash size, for the
// dos trace.  A system stores 32 MB of data on hypothetical flash devices of
// 34-38 MB (utilization 94.1% down to 84.2%); the SunDisk SDP5 appears at
// one size since its behaviour is utilization-independent.
//
// The flash-size axis couples capacity and utilization, which is not a spec
// dimension, so this bench builds its ExperimentPoints by hand and hands the
// list to the src/runner engine — the point-level API every custom grid can
// use.  All points (both figures and the section 5.4 mac variant) run as one
// parallel batch.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;
constexpr std::uint64_t kStoredData = 32 * kMb;

double UtilizationFor(std::uint64_t flash_bytes) {
  return static_cast<double>(kStoredData) / static_cast<double>(flash_bytes);
}

void MakePoint(std::vector<ExperimentPoint>* points, const char* workload,
               double scale, const DeviceSpec& device, std::uint64_t flash,
               std::uint64_t dram) {
  ExperimentPoint point;
  point.index = points->size();
  point.workload = workload;
  point.scale = scale;
  point.config = MakePaperConfig(device, dram);
  point.config.capacity_bytes = flash;
  point.config.auto_capacity = false;
  point.config.flash_utilization = UtilizationFor(flash);
  points->push_back(point);
}

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Figure 4: DRAM size vs flash size, dos trace (scale %.2f) ==\n", scale);
  std::printf("(paper: +1 MB flash on the Intel card cuts energy ~25%% and response ~18%%;\n");
  std::printf(" adding DRAM to the Intel card only adds energy; the SDP5 gains nothing\n");
  std::printf(" from either)\n\n");

  const std::vector<std::uint64_t> dram_sizes = {0, 512 * 1024, 1 * kMb, 2 * kMb, 3 * kMb,
                                                 4 * kMb};
  const std::vector<std::uint64_t> flash_sizes = {34 * kMb, 35 * kMb, 36 * kMb, 37 * kMb,
                                                  38 * kMb};
  struct MacRow {
    DeviceSpec spec;
    std::uint64_t flash;
  };
  const std::vector<MacRow> mac_rows = {MacRow{IntelCardDatasheet(), 34 * kMb},
                                        MacRow{IntelCardDatasheet(), 38 * kMb},
                                        MacRow{Sdp5Datasheet(), 34 * kMb}};

  // One flat batch: Intel dos grid, SDP5 dos row, then the mac variant.
  std::vector<ExperimentPoint> points;
  for (const std::uint64_t flash : flash_sizes) {
    for (const std::uint64_t dram : dram_sizes) {
      MakePoint(&points, "dos", scale, IntelCardDatasheet(), flash, dram);
    }
  }
  for (const std::uint64_t dram : dram_sizes) {
    MakePoint(&points, "dos", scale, Sdp5Datasheet(), 34 * kMb, dram);
  }
  for (const MacRow& row : mac_rows) {
    for (const std::uint64_t dram : dram_sizes) {
      MakePoint(&points, "mac", scale, row.spec, row.flash, dram);
    }
  }

  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));
  std::size_t next = 0;

  TablePrinter energy({"Config", "DRAM 0", "DRAM 512K", "DRAM 1M", "DRAM 2M", "DRAM 3M",
                       "DRAM 4M"});
  TablePrinter response({"Config", "DRAM 0", "DRAM 512K", "DRAM 1M", "DRAM 2M", "DRAM 3M",
                         "DRAM 4M"});

  char label[96];
  for (const std::uint64_t flash : flash_sizes) {
    std::snprintf(label, sizeof(label), "Intel %lluMB (%.1f%%)",
                  static_cast<unsigned long long>(flash / kMb),
                  UtilizationFor(flash) * 100.0);
    energy.BeginRow().Cell(std::string(label));
    response.BeginRow().Cell(std::string(label));
    for (std::size_t d = 0; d < dram_sizes.size(); ++d) {
      const SimResult& result = outcomes[next++].result;
      energy.Cell(result.total_energy_j(), 0);
      response.Cell(result.overall_response_ms.mean(), 2);
    }
  }

  std::snprintf(label, sizeof(label), "SDP5 34MB (%.1f%%)", UtilizationFor(34 * kMb) * 100.0);
  energy.BeginRow().Cell(std::string(label));
  response.BeginRow().Cell(std::string(label));
  for (std::size_t d = 0; d < dram_sizes.size(); ++d) {
    const SimResult& result = outcomes[next++].result;
    energy.Cell(result.total_energy_j(), 0);
    response.Cell(result.overall_response_ms.mean(), 2);
  }

  std::printf("-- Figure 4(a): energy consumption (J) --\n");
  energy.Print(std::cout);
  std::printf("\n-- Figure 4(b): average overall response time (ms) --\n");
  response.Print(std::cout);

  // Section 5.4's mac-trace variant: with its higher read fraction, a small
  // DRAM cache should help the SDP5 (fewer flash reads), while the Intel
  // card benefits less.
  std::printf("\n-- section 5.4 variant: mac trace, energy (J) --\n");
  TablePrinter mac_energy({"Config", "DRAM 0", "DRAM 512K", "DRAM 1M", "DRAM 2M", "DRAM 3M",
                           "DRAM 4M"});
  for (const MacRow& row : mac_rows) {
    std::snprintf(label, sizeof(label), "%s %lluMB", row.spec.name.c_str(),
                  static_cast<unsigned long long>(row.flash / kMb));
    mac_energy.BeginRow().Cell(std::string(label));
    for (std::size_t d = 0; d < dram_sizes.size(); ++d) {
      mac_energy.Cell(outcomes[next++].result.total_energy_j(), 0);
    }
  }
  mac_energy.Print(std::cout);
}

REGISTER_BENCH(fig4_dram_flash)({
    .name = "fig4_dram_flash",
    .description = "DRAM buffer-cache size vs flash size, dos trace",
    .source = "Figure 4",
    .dims = "device{Intel,SDP5} x flash{34..38MB} x dram{0..4M} (hand-built points)",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
