// Reproduces Figure 4: energy consumption and average overall response time
// as a function of DRAM buffer-cache size (0-4 MB) and flash size, for the
// dos trace.  A system stores 32 MB of data on hypothetical flash devices of
// 34-38 MB (utilization 94.1% down to 84.2%); the SunDisk SDP5 appears at
// one size since its behaviour is utilization-independent.
//
// Usage: bench_fig4_dram_flash [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

constexpr std::uint64_t kMb = 1024 * 1024;
constexpr std::uint64_t kStoredData = 32 * kMb;

void Run(double scale) {
  std::printf("== Figure 4: DRAM size vs flash size, dos trace (scale %.2f) ==\n", scale);
  std::printf("(paper: +1 MB flash on the Intel card cuts energy ~25%% and response ~18%%;\n");
  std::printf(" adding DRAM to the Intel card only adds energy; the SDP5 gains nothing\n");
  std::printf(" from either)\n\n");

  const Trace trace = GenerateNamedWorkload("dos", scale);
  const BlockTrace blocks = BlockMapper::Map(trace);
  const std::vector<std::uint64_t> dram_sizes = {0, 512 * 1024, 1 * kMb, 2 * kMb, 3 * kMb,
                                                 4 * kMb};
  const std::vector<std::uint64_t> flash_sizes = {34 * kMb, 35 * kMb, 36 * kMb, 37 * kMb,
                                                  38 * kMb};

  auto utilization_for = [](std::uint64_t flash_bytes) {
    return static_cast<double>(kStoredData) / static_cast<double>(flash_bytes);
  };

  TablePrinter energy({"Config", "DRAM 0", "DRAM 512K", "DRAM 1M", "DRAM 2M", "DRAM 3M",
                       "DRAM 4M"});
  TablePrinter response({"Config", "DRAM 0", "DRAM 512K", "DRAM 1M", "DRAM 2M", "DRAM 3M",
                         "DRAM 4M"});

  char label[96];
  for (const std::uint64_t flash : flash_sizes) {
    std::snprintf(label, sizeof(label), "Intel %lluMB (%.1f%%)",
                  static_cast<unsigned long long>(flash / kMb),
                  utilization_for(flash) * 100.0);
    energy.BeginRow().Cell(std::string(label));
    response.BeginRow().Cell(std::string(label));
    for (const std::uint64_t dram : dram_sizes) {
      SimConfig config = MakePaperConfig(IntelCardDatasheet(), dram);
      config.capacity_bytes = flash;
      config.auto_capacity = false;
      config.flash_utilization = utilization_for(flash);
      const SimResult result = RunSimulation(blocks, config);
      energy.Cell(result.total_energy_j(), 0);
      response.Cell(result.overall_response_ms.mean(), 2);
    }
  }

  std::snprintf(label, sizeof(label), "SDP5 34MB (%.1f%%)", utilization_for(34 * kMb) * 100.0);
  energy.BeginRow().Cell(std::string(label));
  response.BeginRow().Cell(std::string(label));
  for (const std::uint64_t dram : dram_sizes) {
    SimConfig config = MakePaperConfig(Sdp5Datasheet(), dram);
    config.capacity_bytes = 34 * kMb;
    config.auto_capacity = false;
    config.flash_utilization = utilization_for(34 * kMb);
    const SimResult result = RunSimulation(blocks, config);
    energy.Cell(result.total_energy_j(), 0);
    response.Cell(result.overall_response_ms.mean(), 2);
  }

  std::printf("-- Figure 4(a): energy consumption (J) --\n");
  energy.Print(std::cout);
  std::printf("\n-- Figure 4(b): average overall response time (ms) --\n");
  response.Print(std::cout);

  // Section 5.4's mac-trace variant: with its higher read fraction, a small
  // DRAM cache should help the SDP5 (fewer flash reads), while the Intel
  // card benefits less.
  std::printf("\n-- section 5.4 variant: mac trace, energy (J) --\n");
  const Trace mac_trace = GenerateNamedWorkload("mac", scale);
  const BlockTrace mac_blocks = BlockMapper::Map(mac_trace);
  TablePrinter mac_energy({"Config", "DRAM 0", "DRAM 512K", "DRAM 1M", "DRAM 2M", "DRAM 3M",
                           "DRAM 4M"});
  struct MacRow {
    DeviceSpec spec;
    std::uint64_t flash;
  };
  for (const MacRow& row : {MacRow{IntelCardDatasheet(), 34 * kMb},
                            MacRow{IntelCardDatasheet(), 38 * kMb},
                            MacRow{Sdp5Datasheet(), 34 * kMb}}) {
    std::snprintf(label, sizeof(label), "%s %lluMB", row.spec.name.c_str(),
                  static_cast<unsigned long long>(row.flash / kMb));
    mac_energy.BeginRow().Cell(std::string(label));
    for (const std::uint64_t dram : dram_sizes) {
      SimConfig config = MakePaperConfig(row.spec, dram);
      config.capacity_bytes = row.flash;
      config.auto_capacity = false;
      config.flash_utilization = utilization_for(row.flash);
      const SimResult result = RunSimulation(mac_blocks, config);
      mac_energy.Cell(result.total_energy_j(), 0);
    }
  }
  mac_energy.Print(std::cout);
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
