// Statistical robustness: the paper's traces are fixed recordings, but our
// stand-ins are stochastic.  This bench reruns the headline Table-4
// comparisons across independent workload seeds and reports mean +/- stddev,
// demonstrating that the reproduced orderings are not seed artifacts.
//
// One engine batch per trace — seed outer, device inner, matching the
// legacy aggregation order — and the per-seed ordering check reuses the
// same outcomes instead of re-running the simulations.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const int seeds = static_cast<int>(ctx.param());
  const double scale = ctx.scale();
  std::printf("== Seed sensitivity: headline metrics across %d workload seeds ==\n\n", seeds);

  for (const char* workload : {"mac", "hp"}) {
    std::printf("-- %s trace (scale %.2f) --\n", workload, scale);
    TablePrinter table({"Device", "Energy mean (J)", "Energy sd", "Read mean (ms)", "Read sd",
                        "Write mean (ms)", "Write sd"});
    struct Agg {
      RunningStats energy, read_ms, write_ms;
    };
    std::vector<DeviceSpec> devices = {Cu140Datasheet(), Sdp5Datasheet(),
                                       IntelCardDatasheet()};
    std::vector<Agg> aggregates(devices.size());

    std::vector<ExperimentPoint> points;
    for (int seed = 1; seed <= seeds; ++seed) {
      for (std::size_t d = 0; d < devices.size(); ++d) {
        ExperimentPoint point;
        point.index = points.size();
        point.workload = workload;
        point.scale = scale;
        point.seed = static_cast<std::uint64_t>(seed);
        point.config = MakePaperConfig(devices[d], 2 * 1024 * 1024);
        points.push_back(std::move(point));
      }
    }
    const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

    std::size_t next = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      for (std::size_t d = 0; d < devices.size(); ++d) {
        const SimResult& result = outcomes[next++].result;
        aggregates[d].energy.Add(result.total_energy_j());
        aggregates[d].read_ms.Add(result.read_response_ms.mean());
        aggregates[d].write_ms.Add(result.write_response_ms.mean());
      }
    }
    for (std::size_t d = 0; d < devices.size(); ++d) {
      table.BeginRow()
          .Cell(devices[d].name)
          .Cell(aggregates[d].energy.mean(), 0)
          .Cell(aggregates[d].energy.stddev(), 0)
          .Cell(aggregates[d].read_ms.mean(), 2)
          .Cell(aggregates[d].read_ms.stddev(), 2)
          .Cell(aggregates[d].write_ms.mean(), 2)
          .Cell(aggregates[d].write_ms.stddev(), 2);
    }
    table.Print(std::cout);

    // The headline ordering must hold for every seed, not just on average.
    // Devices 0 and 2 of each seed's batch are the cu140 and the Intel card.
    bool ordering_held = true;
    for (int seed = 1; seed <= seeds; ++seed) {
      const std::size_t base = static_cast<std::size_t>(seed - 1) * devices.size();
      const double disk_j = outcomes[base + 0].result.total_energy_j();
      const double card_j = outcomes[base + 2].result.total_energy_j();
      ordering_held &= card_j < disk_j / 2.0;
    }
    std::printf("flash-card energy < half of disk energy on every seed: %s\n\n",
                ordering_held ? "yes" : "NO");
  }
}

REGISTER_BENCH(seed_sensitivity)({
    .name = "seed_sensitivity",
    .description = "Headline Table-4 metrics across independent workload seeds",
    .source = "robustness",
    .dims = "workload{mac,hp} x device{3} x seed{1..N}",
    .default_scale = 0.3,
    .smoke_scale = 0.1,
    .default_param = 5,
    .smoke_param = 2,
    .param_help = "workload seeds",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
