// Statistical robustness: the paper's traces are fixed recordings, but our
// stand-ins are stochastic.  This bench reruns the headline Table-4
// comparisons across independent workload seeds and reports mean +/- stddev,
// demonstrating that the reproduced orderings are not seed artifacts.
//
// Usage: bench_seed_sensitivity [seeds] [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(int seeds, double scale) {
  std::printf("== Seed sensitivity: headline metrics across %d workload seeds ==\n\n", seeds);

  for (const char* workload : {"mac", "hp"}) {
    std::printf("-- %s trace (scale %.2f) --\n", workload, scale);
    TablePrinter table({"Device", "Energy mean (J)", "Energy sd", "Read mean (ms)", "Read sd",
                        "Write mean (ms)", "Write sd"});
    struct Agg {
      RunningStats energy, read_ms, write_ms;
    };
    std::vector<DeviceSpec> devices = {Cu140Datasheet(), Sdp5Datasheet(),
                                       IntelCardDatasheet()};
    std::vector<Agg> aggregates(devices.size());

    for (int seed = 1; seed <= seeds; ++seed) {
      const Trace trace = GenerateNamedWorkload(workload, scale, static_cast<std::uint64_t>(seed));
      const BlockTrace blocks = BlockMapper::Map(trace);
      for (std::size_t d = 0; d < devices.size(); ++d) {
        SimConfig config = MakePaperConfig(devices[d], 2 * 1024 * 1024);
        if (std::string(workload) == "hp") {
          config.dram_bytes = 0;
        }
        const SimResult result = RunSimulation(blocks, config);
        aggregates[d].energy.Add(result.total_energy_j());
        aggregates[d].read_ms.Add(result.read_response_ms.mean());
        aggregates[d].write_ms.Add(result.write_response_ms.mean());
      }
    }
    for (std::size_t d = 0; d < devices.size(); ++d) {
      table.BeginRow()
          .Cell(devices[d].name)
          .Cell(aggregates[d].energy.mean(), 0)
          .Cell(aggregates[d].energy.stddev(), 0)
          .Cell(aggregates[d].read_ms.mean(), 2)
          .Cell(aggregates[d].read_ms.stddev(), 2)
          .Cell(aggregates[d].write_ms.mean(), 2)
          .Cell(aggregates[d].write_ms.stddev(), 2);
    }
    table.Print(std::cout);

    // The headline ordering must hold for every seed, not just on average.
    bool ordering_held = true;
    for (int seed = 1; seed <= seeds; ++seed) {
      const Trace trace = GenerateNamedWorkload(workload, scale, static_cast<std::uint64_t>(seed));
      const BlockTrace blocks = BlockMapper::Map(trace);
      SimConfig disk_config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
      SimConfig card_config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
      if (std::string(workload) == "hp") {
        disk_config.dram_bytes = 0;
        card_config.dram_bytes = 0;
      }
      const double disk_j = RunSimulation(blocks, disk_config).total_energy_j();
      const double card_j = RunSimulation(blocks, card_config).total_energy_j();
      ordering_held &= card_j < disk_j / 2.0;
    }
    std::printf("flash-card energy < half of disk energy on every seed: %s\n\n",
                ordering_held ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 5;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.3;
  mobisim::Run(seeds > 0 ? seeds : 5, scale > 0.0 ? scale : 0.3);
  return 0;
}
