// Reproduces Table 4 of Douglis et al. (OSDI '94): energy consumption and
// read/write response time for seven device configurations across the mac,
// dos, and hp traces.
//
// Setup mirrors the paper: 2-Mbyte DRAM buffer cache for mac and dos, none
// for hp; disks spin down after 5 s of inactivity and carry a 32-Kbyte SRAM
// write buffer; flash simulations run at 80% storage utilization.
//
// Usage: bench_table4_devices [scale]
//   scale in (0, 1] shrinks the workloads for quick runs (default 1.0).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct Row {
  DeviceSpec spec;
  const char* label;
};

std::vector<Row> Table4Devices() {
  return {
      {Cu140Measured(), "cu140 measured"},
      {Cu140Datasheet(), "cu140 datasheet"},
      {KittyhawkDatasheet(), "kh datasheet"},
      {Sdp10Measured(), "sdp10 measured"},
      {Sdp5Datasheet(), "sdp5 datasheet"},
      {IntelCardMeasured(), "Intel flash card measured"},
      {IntelCardDatasheet(), "Intel flash card datasheet"},
  };
}

void RunTrace(const std::string& workload, double scale) {
  std::printf("\nTable 4 (%s trace)%s\n", workload.c_str(),
              workload == "hp" ? "  [no DRAM cache]" : "  [2-Mbyte DRAM cache]");
  TablePrinter table({"Device", "Energy (J)", "Read Mean (ms)", "Read Max", "Read sd",
                      "Write Mean (ms)", "Write Max", "Write sd"});
  TablePrinter percentiles({"Device", "Read p50", "Read p95", "Read p99", "Write p50",
                            "Write p95", "Write p99"});
  for (const Row& row : Table4Devices()) {
    SimConfig config = MakePaperConfig(row.spec, 2 * 1024 * 1024);
    const SimResult result = RunNamedWorkload(workload, config, scale);
    table.BeginRow()
        .Cell(std::string(row.label))
        .Cell(result.total_energy_j(), 0)
        .Cell(result.read_response_ms.mean(), 2)
        .Cell(result.read_response_ms.max(), 1)
        .Cell(result.read_response_ms.stddev(), 1)
        .Cell(result.write_response_ms.mean(), 2)
        .Cell(result.write_response_ms.max(), 1)
        .Cell(result.write_response_ms.stddev(), 1);
    percentiles.BeginRow()
        .Cell(std::string(row.label))
        .Cell(result.read_percentiles_ms.Quantile(0.50), 2)
        .Cell(result.read_percentiles_ms.Quantile(0.95), 2)
        .Cell(result.read_percentiles_ms.Quantile(0.99), 2)
        .Cell(result.write_percentiles_ms.Quantile(0.50), 2)
        .Cell(result.write_percentiles_ms.Quantile(0.95), 2)
        .Cell(result.write_percentiles_ms.Quantile(0.99), 2);
  }
  table.Print(std::cout);
  std::printf("(response-time percentiles, ms)\n");
  percentiles.Print(std::cout);
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  double scale = 1.0;
  if (argc > 1) {
    scale = std::atof(argv[1]);
    if (scale <= 0.0 || scale > 1.0) {
      std::fprintf(stderr, "scale must be in (0, 1]\n");
      return 1;
    }
  }
  std::printf("== Table 4: energy and response time by device and trace (scale %.2f) ==\n",
              scale);
  for (const char* workload : {"mac", "dos", "hp"}) {
    mobisim::RunTrace(workload, scale);
  }
  return 0;
}
