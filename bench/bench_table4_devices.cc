// Reproduces Table 4 of Douglis et al. (OSDI '94): energy consumption and
// read/write response time for seven device configurations across the mac,
// dos, and hp traces.
//
// Setup mirrors the paper: 2-Mbyte DRAM buffer cache for mac and dos, none
// for hp; disks spin down after 5 s of inactivity and carry a 32-Kbyte SRAM
// write buffer; flash simulations run at 80% storage utilization.
//
// The device axis is not a uniform spec dimension here (each row gets its
// own MakePaperConfig), so the bench hands the engine one flat batch of
// hand-built points — workload outer, device inner — and consumes the
// outcomes in that order.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct Row {
  DeviceSpec spec;
  const char* label;
};

std::vector<Row> Table4Devices() {
  return {
      {Cu140Measured(), "cu140 measured"},
      {Cu140Datasheet(), "cu140 datasheet"},
      {KittyhawkDatasheet(), "kh datasheet"},
      {Sdp10Measured(), "sdp10 measured"},
      {Sdp5Datasheet(), "sdp5 datasheet"},
      {IntelCardMeasured(), "Intel flash card measured"},
      {IntelCardDatasheet(), "Intel flash card datasheet"},
  };
}

void PrintTrace(const std::string& workload, const std::vector<SweepOutcome>& outcomes,
                std::size_t* next) {
  std::printf("\nTable 4 (%s trace)%s\n", workload.c_str(),
              workload == "hp" ? "  [no DRAM cache]" : "  [2-Mbyte DRAM cache]");
  TablePrinter table({"Device", "Energy (J)", "Read Mean (ms)", "Read Max", "Read sd",
                      "Write Mean (ms)", "Write Max", "Write sd"});
  TablePrinter percentiles({"Device", "Read p50", "Read p95", "Read p99", "Write p50",
                            "Write p95", "Write p99"});
  for (const Row& row : Table4Devices()) {
    const SimResult& result = outcomes[(*next)++].result;
    table.BeginRow()
        .Cell(std::string(row.label))
        .Cell(result.total_energy_j(), 0)
        .Cell(result.read_response_ms.mean(), 2)
        .Cell(result.read_response_ms.max(), 1)
        .Cell(result.read_response_ms.stddev(), 1)
        .Cell(result.write_response_ms.mean(), 2)
        .Cell(result.write_response_ms.max(), 1)
        .Cell(result.write_response_ms.stddev(), 1);
    const std::vector<double> rq = result.read_percentiles_ms.Quantiles({0.50, 0.95, 0.99});
    const std::vector<double> wq = result.write_percentiles_ms.Quantiles({0.50, 0.95, 0.99});
    percentiles.BeginRow()
        .Cell(std::string(row.label))
        .Cell(rq[0], 2)
        .Cell(rq[1], 2)
        .Cell(rq[2], 2)
        .Cell(wq[0], 2)
        .Cell(wq[1], 2)
        .Cell(wq[2], 2);
  }
  table.Print(std::cout);
  std::printf("(response-time percentiles, ms)\n");
  percentiles.Print(std::cout);
}

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  std::printf("== Table 4: energy and response time by device and trace (scale %.2f) ==\n",
              scale);
  const std::vector<const char*> workloads = {"mac", "dos", "hp"};
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const Row& row : Table4Devices()) {
      ExperimentPoint point;
      point.index = points.size();
      point.workload = workload;
      point.scale = scale;
      point.config = MakePaperConfig(row.spec, 2 * 1024 * 1024);
      points.push_back(std::move(point));
    }
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));
  std::size_t next = 0;
  for (const char* workload : workloads) {
    PrintTrace(workload, outcomes, &next);
  }
}

REGISTER_BENCH(table4_devices)({
    .name = "table4_devices",
    .description = "Energy and response time by device and trace",
    .source = "Table 4",
    .dims = "workload{mac,dos,hp} x device{7 configurations}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
