// Ablation: flash wear-out.  The paper tracks per-segment erase counts and
// projects lifetime (section 5.2); this bench goes further and simulates a
// card to destruction with an accelerated endurance limit, comparing
// cleaning policies on total data written before the card dies and on how
// much of the card is lost when it does.
//
#include <cstdio>
#include <iostream>
#include <string>

#include "src/flash/segment_manager.h"
#include "src/runner/bench_registry.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

struct WearOutResult {
  std::uint64_t host_blocks_written = 0;
  std::uint64_t erases = 0;
  std::uint64_t copies = 0;
  std::uint32_t bad_segments = 0;
  double drive_writes = 0.0;  // host bytes / capacity at death
};

WearOutResult RunToDestruction(CleaningPolicy policy, double zipf_skew,
                               std::uint32_t endurance) {
  SegmentManagerConfig config;
  config.capacity_bytes = 2 * 1024 * 1024;
  config.segment_bytes = 64 * 1024;
  config.block_bytes = 512;
  config.endurance_limit = endurance;
  config.cleaning_policy = policy;
  SegmentManager manager(config);

  const std::uint64_t span = manager.total_blocks() * 6 / 10;  // 60% utilization
  manager.Preload(0, span);
  ZipfDistribution popularity(span, zipf_skew);
  Rng rng(2024);

  WearOutResult result;
  while (true) {
    // Maintain the cleaning reserve; the card is dead when it cannot.
    bool dead = false;
    while (manager.free_slots() <= 2ull * manager.blocks_per_segment()) {
      const std::uint32_t victim = manager.PickVictim();
      if (victim == SegmentManager::kNoSegment ||
          manager.free_slots() < manager.VictimLiveBlocks(victim)) {
        dead = true;
        break;
      }
      result.copies += manager.CleanSegment(victim);
      ++result.erases;
    }
    if (dead) {
      break;
    }
    manager.WriteBlock(popularity.Sample(rng));
    ++result.host_blocks_written;
  }
  result.bad_segments = manager.bad_segment_count();
  result.drive_writes = static_cast<double>(result.host_blocks_written * config.block_bytes) /
                        static_cast<double>(config.capacity_bytes);
  return result;
}

void Run(BenchContext& ctx) {
  const std::uint32_t endurance = static_cast<std::uint32_t>(ctx.param());
  std::printf("== Ablation: wear-out under an accelerated %u-cycle endurance limit ==\n",
              endurance);
  std::printf("(2-MB card, 64-KB segments, 60%% utilization; 'drive writes' = host data\n");
  std::printf(" written before death, in multiples of the card's capacity)\n\n");

  TablePrinter table({"Policy", "Traffic", "Drive writes", "Host blocks", "Erases",
                      "Copies", "Bad segments at death"});
  for (const double skew : {0.0, 1.2}) {
    for (const CleaningPolicy policy :
         {CleaningPolicy::kGreedy, CleaningPolicy::kCostBenefit, CleaningPolicy::kWearAware}) {
      const WearOutResult result = RunToDestruction(policy, skew, endurance);
      table.BeginRow()
          .Cell(std::string(CleaningPolicyName(policy)))
          .Cell(std::string(skew == 0.0 ? "uniform" : "zipf-1.2"))
          .Cell(result.drive_writes, 1)
          .Cell(static_cast<std::int64_t>(result.host_blocks_written))
          .Cell(static_cast<std::int64_t>(result.erases))
          .Cell(static_cast<std::int64_t>(result.copies))
          .Cell(static_cast<std::int64_t>(result.bad_segments));
      ResultRow row;
      row.AddText("policy", CleaningPolicyName(policy));
      row.AddText("traffic", skew == 0.0 ? "uniform" : "zipf-1.2");
      row.AddInt("endurance_cycles", static_cast<std::int64_t>(endurance));
      row.AddNumber("drive_writes", result.drive_writes);
      row.AddInt("host_blocks", static_cast<std::int64_t>(result.host_blocks_written));
      row.AddInt("erases", static_cast<std::int64_t>(result.erases));
      row.AddInt("copies", static_cast<std::int64_t>(result.copies));
      row.AddInt("bad_segments", static_cast<std::int64_t>(result.bad_segments));
      ctx.Emit(std::move(row));
    }
  }
  table.Print(std::cout);
  std::printf("\nExpected: wear-aware survives the most drive writes (it levels erases\n");
  std::printf("across segments), at the cost of extra copying while alive.\n");
}

REGISTER_BENCH(ablation_endurance)({
    .name = "ablation_endurance",
    .description = "Simulated wear-out to destruction by cleaning policy",
    .source = "Section 5.2",
    .dims = "traffic{uniform,zipf} x policy{greedy,cost-benefit,wear-aware}",
    .uses_scale = false,
    .default_param = 100,
    .smoke_param = 60,
    .param_help = "endurance cycles",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
