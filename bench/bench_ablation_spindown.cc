// Ablation: disk spin-down threshold sweep.
//
// The paper fixes the threshold at 5 s, citing prior work (Douglis et al.
// '94, Li et al. '94) that it balances energy against response time.  This
// bench regenerates that trade-off curve for the cu140 on each trace:
// energy falls and response rises as the threshold shrinks.
//
// Usage: bench_ablation_spindown [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(double scale) {
  const std::vector<double> thresholds_sec = {0.5, 1, 2, 5, 10, 30, 1e9};

  std::printf("== Ablation: cu140 spin-down threshold (scale %.2f) ==\n\n", scale);
  for (const char* workload : {"mac", "dos", "hp"}) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Threshold (s)", "Energy (J)", "Read Mean (ms)", "Write Mean (ms)",
                        "Spin-ups"});
    for (const double threshold : thresholds_sec) {
      SimConfig config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
      config.spin_down_after_us = UsFromSec(threshold);
      const SimResult result = RunNamedWorkload(workload, config, scale);
      table.BeginRow()
          .Cell(threshold >= 1e9 ? std::string("never") : TablePrinter::Format(threshold, 1))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(result.counters.spinups));
    }
    {
      // The adaptive policy of the paper's reference [5]: starts at 5 s and
      // floats between 0.5 s and 60 s based on sleep outcomes.
      SimConfig config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
      config.spin_down_policy = SpinDownPolicy::kAdaptive;
      const SimResult result = RunNamedWorkload(workload, config, scale);
      table.BeginRow()
          .Cell(std::string("adaptive"))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(result.counters.spinups));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace mobisim

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  mobisim::Run(scale > 0.0 ? scale : 1.0);
  return 0;
}
