// Ablation: disk spin-down threshold sweep.
//
// The paper fixes the threshold at 5 s, citing prior work (Douglis et al.
// '94, Li et al. '94) that it balances energy against response time.  This
// bench regenerates that trade-off curve for the cu140 on each trace:
// energy falls and response rises as the threshold shrinks.
//
// The threshold and the adaptive policy are config fields, not spec
// dimensions, so the bench runs hand-built points through the engine.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/bench_registry.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

void Run(BenchContext& ctx) {
  const double scale = ctx.scale();
  const std::vector<double> thresholds_sec = {0.5, 1, 2, 5, 10, 30, 1e9};
  const std::vector<const char*> workloads = {"mac", "dos", "hp"};

  std::printf("== Ablation: cu140 spin-down threshold (scale %.2f) ==\n\n", scale);

  // Per trace: one point per threshold, then the adaptive policy.
  std::vector<ExperimentPoint> points;
  for (const char* workload : workloads) {
    for (const double threshold : thresholds_sec) {
      ExperimentPoint point;
      point.index = points.size();
      point.workload = workload;
      point.scale = scale;
      point.config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
      point.config.spin_down_after_us = UsFromSec(threshold);
      points.push_back(std::move(point));
    }
    ExperimentPoint adaptive;
    adaptive.index = points.size();
    adaptive.workload = workload;
    adaptive.scale = scale;
    // The adaptive policy of the paper's reference [5]: starts at 5 s and
    // floats between 0.5 s and 60 s based on sleep outcomes.
    adaptive.config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
    adaptive.config.spin_down_policy = SpinDownPolicy::kAdaptive;
    points.push_back(std::move(adaptive));
  }
  const std::vector<SweepOutcome> outcomes = ctx.RunPoints(std::move(points));

  std::size_t next = 0;
  for (const char* workload : workloads) {
    std::printf("-- %s trace --\n", workload);
    TablePrinter table({"Threshold (s)", "Energy (J)", "Read Mean (ms)", "Write Mean (ms)",
                        "Spin-ups"});
    for (const double threshold : thresholds_sec) {
      const SimResult& result = outcomes[next++].result;
      table.BeginRow()
          .Cell(threshold >= 1e9 ? std::string("never") : TablePrinter::Format(threshold, 1))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(result.counters.spinups));
    }
    {
      const SimResult& result = outcomes[next++].result;
      table.BeginRow()
          .Cell(std::string("adaptive"))
          .Cell(result.total_energy_j(), 0)
          .Cell(result.read_response_ms.mean(), 2)
          .Cell(result.write_response_ms.mean(), 2)
          .Cell(static_cast<std::int64_t>(result.counters.spinups));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

REGISTER_BENCH(ablation_spindown)({
    .name = "ablation_spindown",
    .description = "cu140 spin-down threshold trade-off curve",
    .source = "ablation",
    .dims = "workload{mac,dos,hp} x threshold{0.5s..never,adaptive}",
    .run = Run,
});

}  // namespace
}  // namespace mobisim
