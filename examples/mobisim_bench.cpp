// The paper's bench suite behind one binary.
//
//   mobisim_bench list
//   mobisim_bench run <name>... [options]
//   mobisim_bench run --all [--smoke] [options]
//
// Every figure, table, ablation and related-system study from the
// historical bench/ binaries is a registered BenchDef (see
// src/runner/bench_registry.h); this driver resolves names, wires the
// shared export sinks, and routes each bench through the sweep engine.
// Text output on stdout is byte-identical to the old per-bench binaries;
// the common flags add structured export and parallel execution on top:
//
//   --smoke       scaled-down workloads / counts, for CI and quick checks
//   --scale S     workload scale override (benches that take one)
//   --param N     bench-specific count override (seeds, cycles, ...)
// plus the common export/execution flags shared with mobisim_sweep and
// mobisim_cli (src/runner/cli_options.h): --jobs/--serial, --seed,
// --replicas, --jsonl, --csv, --db/--name/--sha, --quiet.
//
// The trace-cache maintenance surface also lives here:
//
//   mobisim_bench trace-cache stats [--trace-cache DIR]
//   mobisim_bench trace-cache gc [--max-bytes SIZE] [--trace-cache DIR]
//
// With a cache configured (--trace-cache DIR or $MOBISIM_TRACE_CACHE), run
// commands load previously generated block traces instead of regenerating
// them and report `trace-cache: hits=... misses=...` on stderr.
//
// Exit status: 0 on a clean run, 1 when any bench had failed points (the
// failures are also exported as `_error` rows), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/bench_db/bench_db.h"
#include "src/core/config_text.h"
#include "src/runner/bench_registry.h"
#include "src/runner/cli_options.h"
#include "src/runner/sweep_runner.h"
#include "src/trace/trace_cache.h"
#include "src/util/bytes.h"
#include "src/util/parse.h"

namespace {

using namespace mobisim;

int Usage() {
  std::fprintf(stderr,
               "usage: mobisim_bench list\n"
               "       mobisim_bench run <name>... [options]\n"
               "       mobisim_bench run --all [options]\n"
               "       mobisim_bench trace-cache stats|gc [--max-bytes SIZE]\n"
               "options:\n"
               "  --smoke          scaled-down run for CI / quick checks\n"
               "  --scale S        workload scale override\n"
               "  --param N        bench-specific count override\n"
               "%s"
               "`mobisim_bench list` names every bench.\n",
               CommonFlagsUsage());
  return 2;
}

// Collects every row (including dynamic and `_error` rows) for --db: the
// store wants the complete run as one vector, not a stream.
class VectorSink : public ResultSink {
 public:
  void Write(const ResultRow& row) override { rows_.push_back(row); }
  const std::vector<ResultRow>& rows() const { return rows_; }

 private:
  std::vector<ResultRow> rows_;
};

int ListBenches() {
  const std::vector<const BenchDef*> benches = AllBenches();
  std::printf("%-24s %-13s %s\n", "NAME", "SOURCE", "DESCRIPTION");
  for (const BenchDef* def : benches) {
    std::printf("%-24s %-13s %s\n", def->name.c_str(), def->source.c_str(),
                def->description.c_str());
    std::printf("%-24s %-13s   dims: %s\n", "", "", def->dims.c_str());
    if (def->default_param != 0) {
      std::printf("%-24s %-13s   --param: %s (default %llu, smoke %llu)\n", "", "",
                  def->param_help.c_str(),
                  static_cast<unsigned long long>(def->default_param),
                  static_cast<unsigned long long>(def->smoke_param));
    }
  }
  std::printf("\n%zu benches.  Run one with `mobisim_bench run <name>`.\n",
              benches.size());
  return 0;
}

int RunCommand(std::vector<std::string> args) {
  CliOptions common;
  std::string error;
  if (!ExtractCommonFlags(&args, &common, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }

  bool all = false;
  bool smoke = false;
  double scale = 0.0;
  std::uint64_t param = 0;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--all") {
      all = true;
    } else if (args[i] == "--smoke") {
      smoke = true;
    } else if (args[i] == "--scale") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      const auto parsed = ParseFiniteDouble(args[++i]);
      if (!parsed || *parsed <= 0.0) {
        std::fprintf(stderr, "error: --scale wants a positive number, got '%s'\n",
                     args[i].c_str());
        return Usage();
      }
      scale = *parsed;
    } else if (args[i] == "--param") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      const auto parsed = ParseUint64(args[++i]);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "error: --param wants a positive count, got '%s'\n",
                     args[i].c_str());
        return Usage();
      }
      param = *parsed;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::fprintf(stderr, "error: unrecognised flag '%s'\n", args[i].c_str());
      return Usage();
    } else {
      names.push_back(args[i]);
    }
  }
  if (all == !names.empty()) {  // exactly one of --all / explicit names
    std::fprintf(stderr, all ? "error: --all takes no bench names\n"
                             : "error: no benches named (or use --all)\n");
    return Usage();
  }

  std::vector<const BenchDef*> benches;
  if (all) {
    benches = AllBenches();
  } else {
    for (const std::string& name : names) {
      const BenchDef* def = FindBench(name);
      if (def == nullptr) {
        std::fprintf(stderr,
                     "error: unknown bench '%s' (see `mobisim_bench list`)\n",
                     name.c_str());
        return 2;
      }
      benches.push_back(def);
    }
  }

  RunMeta meta;
  meta.spec_name = common.db_name.empty() ? "bench" : common.db_name;
  // Fingerprint the run by what it executed: the bench list plus the knobs
  // that change results.  Lets benchdiff refuse to compare unlike runs.
  meta.spec_hash = "bench:";
  for (const BenchDef* def : benches) {
    meta.spec_hash += def->name + ",";
  }
  if (smoke) {
    meta.spec_hash += "smoke";
  }
  meta.git_sha = common.git_sha;
  meta.created = NowUtc();
  meta.host = HostName();

  SinkSet sinks;
  if (!sinks.Open(common, meta, "bench," + SweepCsvHeader(), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  VectorSink collected;

  const std::unique_ptr<TraceCache> trace_cache = OpenTraceCache(common);

  BenchContext::Options options;
  options.scale = scale;
  options.param = param;
  options.smoke = smoke;
  options.threads = common.jobs;
  options.seed = common.seed;
  options.replicas = common.replicas;
  options.sinks = sinks.sinks();
  options.trace_cache = trace_cache.get();
  if (!common.db_root.empty()) {
    options.sinks.push_back(&collected);
  }

  std::size_t failed = 0;
  for (std::size_t i = 0; i < benches.size(); ++i) {
    const BenchDef* def = benches[i];
    if (!common.quiet) {
      std::fprintf(stderr, "mobisim_bench: [%zu/%zu] %s\n", i + 1, benches.size(),
                   def->name.c_str());
    }
    const std::size_t bench_failed = RunBench(*def, options);
    if (bench_failed > 0) {
      failed += bench_failed;
      std::fprintf(stderr, "mobisim_bench: %s: %zu failed point%s\n",
                   def->name.c_str(), bench_failed, bench_failed == 1 ? "" : "s");
    }
  }
  sinks.Finish();

  if (!common.db_root.empty()) {
    BenchDb db(common.db_root);
    const auto stored = db.StoreRun(meta, collected.rows(), &error);
    if (!stored) {
      std::fprintf(stderr, "error storing run: %s\n", error.c_str());
      return 1;
    }
    if (!common.quiet) {
      std::fprintf(stderr, "mobisim_bench: stored %s\n", stored->c_str());
    }
  }
  if (trace_cache != nullptr && !common.quiet) {
    // The stats line is CI's evidence that a warm cache performed zero
    // trace generations (misses=0 stores=0).
    std::fprintf(stderr, "mobisim_bench: %s\n", trace_cache->StatsLine().c_str());
  }
  if (!common.quiet) {
    std::fprintf(stderr, "mobisim_bench: %zu bench%s done%s\n", benches.size(),
                 benches.size() == 1 ? "" : "es",
                 failed > 0 ? ", with failures" : "");
  }
  return failed > 0 ? 1 : 0;
}

// `trace-cache stats` and `trace-cache gc`: inspect and prune the persistent
// trace cache shared by all three drivers.
int TraceCacheCommand(std::vector<std::string> args) {
  CliOptions common;
  std::string error;
  if (!ExtractCommonFlags(&args, &common, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }

  std::string action;
  std::uint64_t max_bytes = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--max-bytes") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      const auto size = ParseSize(args[++i]);
      if (!size || *size == 0) {
        std::fprintf(stderr, "error: --max-bytes wants a positive size, got '%s'\n",
                     args[i].c_str());
        return Usage();
      }
      max_bytes = *size;
    } else if (action.empty() && (args[i] == "stats" || args[i] == "gc")) {
      action = args[i];
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }
  if (action.empty()) {
    std::fprintf(stderr, "error: trace-cache wants `stats` or `gc`\n");
    return Usage();
  }
  if (common.trace_cache_dir.empty()) {
    std::fprintf(stderr,
                 "error: no cache directory (use --trace-cache DIR or set "
                 "MOBISIM_TRACE_CACHE)\n");
    return 2;
  }

  if (action == "stats") {
    const std::vector<TraceCacheEntry> entries = ListTraceCache(common.trace_cache_dir);
    std::uint64_t bytes = 0;
    std::size_t invalid = 0;
    for (const TraceCacheEntry& entry : entries) {
      bytes += entry.bytes;
      if (!entry.valid) {
        ++invalid;
      }
      std::printf("%s  %10s  %s\n", entry.fingerprint.c_str(),
                  HumanBytes(entry.bytes).c_str(), entry.valid ? "ok" : "INVALID");
    }
    std::printf("trace-cache %s: %zu entries, %s, %zu invalid\n",
                common.trace_cache_dir.c_str(), entries.size(),
                HumanBytes(bytes).c_str(), invalid);
    return 0;
  }

  // CI greps the literal `removed %zu entries` phrase; keep it stable.
  const TraceCacheGcResult gc = GcTraceCache(common.trace_cache_dir, max_bytes);
  std::printf("trace-cache %s: removed %zu entries (%s), kept %zu (%s)\n",
              common.trace_cache_dir.c_str(), gc.removed,
              HumanBytes(gc.removed_bytes).c_str(), gc.kept,
              HumanBytes(gc.kept_bytes).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "list") {
      return args.empty() ? ListBenches() : Usage();
    }
    if (command == "run") {
      return RunCommand(std::move(args));
    }
    if (command == "trace-cache") {
      return TraceCacheCommand(std::move(args));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mobisim_bench: fatal: %s\n", e.what());
    return 1;
  }
  return Usage();
}
