// Regression diff of two sweep runs of the same spec.
//
//   mobisim_benchdiff --base FILE --cand FILE [options]
//   mobisim_benchdiff --db DIR --spec NAME --cand-sha SHA [--base-sha SHA] [options]
//   mobisim_benchdiff --verify-db DIR
//
// Joins the runs by stable point index, computes per-metric deltas (energy
// breakdown, latency stats/percentiles, erase and stall counters), and
// classifies each cell as pass / noise / regression / improvement.  The noise
// band comes from seed-replicated points when the spec carried `replicas`;
// otherwise from --threshold.  Exit status: 0 clean, 1 regressions found,
// 2 usage, 3 runs could not be loaded or compared.
//
// Options:
//   --metrics a,b,c     compare these columns (default: the curated set)
//   --threshold F       fallback relative band without replicas (default 0.05)
//   --noise-mult F      multiplier on replica spread (default 1.5)
//   --rel-floor F       always-tolerated relative drift (default 0.01)
//   --force             diff even when spec fingerprints differ
//   --markdown FILE|-   also write a GitHub-flavoured Markdown report
//   --quiet             suppress the text report (exit status only)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/bench_db/bench_db.h"
#include "src/bench_db/benchdiff.h"
#include "src/util/parse.h"

namespace {

using namespace mobisim;

int Usage() {
  std::fprintf(
      stderr,
      "usage: mobisim_benchdiff --base FILE --cand FILE [options]\n"
      "       mobisim_benchdiff --db DIR --spec NAME --cand-sha SHA\n"
      "                         [--base-sha SHA] [options]\n"
      "       mobisim_benchdiff --verify-db DIR\n"
      "options: [--metrics a,b,c] [--threshold F] [--noise-mult F]\n"
      "         [--rel-floor F] [--force] [--markdown FILE|-] [--quiet]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> items;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  return items;
}

bool ParsePositive(const std::string& text, double* out) {
  // Strict finite parse: "nan" would sail through a `v <= 0.0` check and
  // poison every threshold comparison downstream.
  const auto v = ParseFiniteDouble(text);
  if (!v || *v <= 0.0) {
    return false;
  }
  *out = *v;
  return true;
}

}  // namespace

namespace {

int RunMain(int argc, char** argv) {
  std::string base_path;
  std::string cand_path;
  std::string db_root;
  std::string spec_name;
  std::string base_sha;
  std::string cand_sha;
  std::string verify_root;
  std::string markdown_path;
  bool quiet = false;
  DiffOptions options;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&](std::string* out) {
      if (i + 1 >= args.size()) {
        return false;
      }
      *out = args[++i];
      return true;
    };
    std::string value;
    if (args[i] == "--base" && next(&base_path)) {
    } else if (args[i] == "--cand" && next(&cand_path)) {
    } else if (args[i] == "--db" && next(&db_root)) {
    } else if (args[i] == "--spec" && next(&spec_name)) {
    } else if (args[i] == "--base-sha" && next(&base_sha)) {
    } else if (args[i] == "--cand-sha" && next(&cand_sha)) {
    } else if (args[i] == "--verify-db" && next(&verify_root)) {
    } else if (args[i] == "--markdown" && next(&markdown_path)) {
    } else if (args[i] == "--metrics" && next(&value)) {
      options.metrics = SplitCommas(value);
    } else if (args[i] == "--threshold" && next(&value)) {
      if (!ParsePositive(value, &options.rel_threshold)) {
        return Usage();
      }
    } else if (args[i] == "--noise-mult" && next(&value)) {
      if (!ParsePositive(value, &options.noise_mult)) {
        return Usage();
      }
    } else if (args[i] == "--rel-floor" && next(&value)) {
      if (!ParsePositive(value, &options.min_rel_floor)) {
        return Usage();
      }
    } else if (args[i] == "--force") {
      options.require_same_spec = false;
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }

  if (!verify_root.empty()) {
    BenchDb db(verify_root);
    std::string error;
    if (!db.Verify(&error)) {
      std::fprintf(stderr, "mobisim_benchdiff: store verification FAILED: %s\n",
                   error.c_str());
      return 1;
    }
    if (!quiet) {
      std::fprintf(stderr, "mobisim_benchdiff: store %s verified (%zu runs)\n",
                   verify_root.c_str(), db.ReadIndex(nullptr).size());
    }
    return 0;
  }

  // Resolve file paths through the store when asked to.
  if (!db_root.empty()) {
    if (spec_name.empty() || cand_sha.empty()) {
      return Usage();
    }
    BenchDb db(db_root);
    cand_path = db.RunPath(cand_sha, spec_name);
    if (base_path.empty()) {
      if (base_sha.empty()) {
        const auto latest = db.FindLatest(spec_name, cand_sha);
        if (!latest) {
          std::fprintf(stderr, "no stored baseline for spec '%s' in %s\n",
                       spec_name.c_str(), db_root.c_str());
          return 3;
        }
        base_sha = latest->git_sha;
      }
      base_path = db.RunPath(base_sha, spec_name);
    }
  }
  if (base_path.empty() || cand_path.empty()) {
    return Usage();
  }

  std::string error;
  const auto base = LoadRunFile(base_path, &error);
  if (!base) {
    std::fprintf(stderr, "error loading base: %s\n", error.c_str());
    return 3;
  }
  const auto cand = LoadRunFile(cand_path, &error);
  if (!cand) {
    std::fprintf(stderr, "error loading candidate: %s\n", error.c_str());
    return 3;
  }

  DiffReport report = DiffRuns(*base, *cand, options);
  if (!base->has_meta) {
    report.base_label = base_path;
  }
  if (!cand->has_meta) {
    report.cand_label = cand_path;
  }

  if (!quiet) {
    std::cout << RenderReportText(report);
  }
  if (!markdown_path.empty()) {
    const std::string markdown = RenderReportMarkdown(report);
    if (markdown_path == "-") {
      std::cout << markdown;
    } else {
      std::ofstream out(markdown_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", markdown_path.c_str());
        return 3;
      }
      out << markdown;
    }
  }

  if (!report.comparable) {
    return 3;
  }
  return report.HasRegressions() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return RunMain(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mobisim_benchdiff: fatal: %s\n", e.what());
    return 1;
  }
}
