// Battery-life estimation: translate storage-subsystem energy into whole-
// system battery life, the way the paper's abstract does ("these energy
// savings can translate into a 22% extension of battery life").
//
// The storage subsystem is assumed to draw `storage share` of total system
// energy when built with the baseline disk (the paper cites 20-54%); the
// rest of the system is held constant while the storage device changes.
//
//   ./battery_life [workload] [storage_share] [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/power/battery.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace mobisim;

  const std::string workload = argc > 1 ? argv[1] : "mac";
  const double storage_share = argc > 2 ? std::atof(argv[2]) : 0.30;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.5;

  std::printf("Battery-life impact, %s workload (storage draws %.0f%% of system energy\n",
              workload.c_str(), storage_share * 100.0);
  std::printf("with the baseline disk)\n\n");

  // Baseline: the spinning disk.
  const SimConfig disk_config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
  const SimResult disk_result = RunNamedWorkload(workload, disk_config, scale);
  const double disk_j = disk_result.total_energy_j();
  const double duration_sec = disk_result.duration_sec;
  const double disk_w = disk_j / duration_sec;
  const double rest_of_system_w = disk_w * (1.0 - storage_share) / storage_share;

  const Battery battery(BatteryConfig{});
  const double base_hours = battery.LifetimeHours(disk_w + rest_of_system_w);
  std::printf("24-Wh NiMH pack, %.1f W whole-system baseline -> %.2f h of battery\n\n",
              disk_w + rest_of_system_w, base_hours);

  TablePrinter table({"Storage", "Storage avg (W)", "Saving vs disk", "System avg (W)",
                      "Battery (h)", "Extension"});
  for (const DeviceSpec& spec :
       {Cu140Datasheet(), KittyhawkDatasheet(), Sdp5Datasheet(), IntelCardDatasheet()}) {
    const SimConfig config = MakePaperConfig(spec, 2 * 1024 * 1024);
    const SimResult result = RunNamedWorkload(workload, config, scale);
    const double storage_w = result.total_energy_j() / result.duration_sec;
    const double system_w = storage_w + rest_of_system_w;
    table.BeginRow()
        .Cell(spec.name)
        .Cell(storage_w, 3)
        .Cell((1.0 - storage_w / disk_w) * 100.0, 1)
        .Cell(system_w, 2)
        .Cell(battery.LifetimeHours(system_w), 2)
        .Cell(battery.ExtensionVs(disk_w + rest_of_system_w, system_w) * 100.0, 1);
  }
  table.Print(std::cout);
  std::printf("\n(Extensions are relative to the cu140 disk; the paper reports ~22%% for\n");
  std::printf(" flash at a comparable storage share, 20-100%% across scenarios.)\n");
  return 0;
}
