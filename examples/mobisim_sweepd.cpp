// Fault-tolerant local sweep service: a dispatcher, a worker pool, and a
// persistent spool directory that survives any of them dying.
//
//   mobisim_sweepd serve  --spool DIR [--spec FILE] [key=value ...]
//                         [--shards N] [--workers N] [--retry-budget N]
//                         [--lease-sec S] [--poll-sec S] [--http PORT]
//                         [--http-bind-any]
//                         [common flags: --jobs --seed --replicas --jsonl
//                          --csv --db/--name/--sha --trace-cache --quiet]
//   mobisim_sweepd work   --spool DIR [--jobs N] [--trace-cache DIR] [--quiet]
//   mobisim_sweepd work   --connect HOST:PORT [--jobs N] [--chunk-rows N]
//                         [--heartbeat-sec S] [--poll-sec S] [--retries N]
//                         [--net-fault SPEC] [--worker-name NAME]
//   mobisim_sweepd status --spool DIR | --connect HOST:PORT
//   mobisim_sweepd merge  DIR [--jsonl F] [--csv F] [--db DIR --name N] [--quiet]
//
// `serve` creates the spool from the spec (or resumes an existing one: the
// spool is the durable state, delete it to start over), spawns `--workers`
// local worker processes, enforces leases, retries dead shards and poisoned
// `_error` points up to `--retry-budget`, and serves GET /status and
// GET /results on `--http` (0 = ephemeral; the port lands in
// <spool>/http.port).  When every shard settles it merges the shard outputs
// into <spool>/merged.jsonl, the requested sinks, and (with --db) a bench_db
// store — idempotently, keyed by spec fingerprint, so re-serving or
// re-merging the same spool never duplicates rows.
//
// `work` is the subordinate mode `serve` spawns; it also works standalone
// (point any number of shells at the same spool for extra throughput).
// With `--connect` it needs no shared filesystem at all: it speaks the
// dispatcher's HTTP lease protocol (POST /lease, /heartbeat, /results,
// /done) with connect/read deadlines, bounded exponential backoff with
// jitter, and idempotent chunked uploads, so machines anywhere the
// dispatcher's port is reachable can serve the sweep.  `--net-fault
// seed=7,drop=0.2,dup=0.2,delay=0.5,delay-ms=40` injects deterministic
// request drops/duplicates/delays for partition testing.  The dispatcher
// binds loopback unless `serve --http-bind-any` opts into the network.
//
// `merge` accepts a spool root, a spool's done/ directory, or a flat
// directory of `mobisim_sweep --shard` JSONL files — same code path, same
// dedup-by-fingerprint semantics (shared with `mobisim_sweep --merge`).
//
// Exit codes: serve 0 = clean complete, 2 = finished with failed shards or
// surviving `_error` points; work 0 = clean, 3 = finished but poisoned,
// 4 = (--connect only) dispatcher unreachable past the retry budget.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/bench_db/bench_db.h"
#include "src/runner/cli_options.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/sweepd/dispatcher.h"
#include "src/sweepd/merge.h"
#include "src/sweepd/spool.h"
#include "src/sweepd/worker.h"
#include "src/util/atomic_file.h"
#include "src/util/http_client.h"
#include "src/util/http_server.h"
#include "src/util/parse.h"

namespace {

using namespace mobisim;

int Usage() {
  std::fprintf(
      stderr,
      "usage: mobisim_sweepd serve  --spool DIR [--spec FILE] [key=value ...]\n"
      "                             [--shards N] [--workers N] [--retry-budget N]\n"
      "                             [--lease-sec S] [--poll-sec S] [--http PORT]\n"
      "                             [--http-bind-any]\n"
      "       mobisim_sweepd work   --spool DIR | --connect HOST:PORT\n"
      "                             [--chunk-rows N] [--heartbeat-sec S]\n"
      "                             [--poll-sec S] [--retries N]\n"
      "                             [--net-fault seed=S,drop=R,dup=R,delay=R,delay-ms=M]\n"
      "       mobisim_sweepd status --spool DIR | --connect HOST:PORT\n"
      "       mobisim_sweepd merge  DIR\n"
      "%s",
      CommonFlagsUsage());
  return 2;
}

// "host:port" -> (host, port).  False (with a message) on anything else.
bool ParseHostPort(const std::string& text, std::string* host,
                   std::uint16_t* port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    std::fprintf(stderr, "error: --connect wants HOST:PORT, got '%s'\n",
                 text.c_str());
    return false;
  }
  const auto parsed = ParseUint64(text.substr(colon + 1));
  if (!parsed || *parsed == 0 || *parsed > 65535) {
    std::fprintf(stderr, "error: --connect port in '%s' is not in 1..65535\n",
                 text.c_str());
    return false;
  }
  *host = text.substr(0, colon);
  *port = static_cast<std::uint16_t>(*parsed);
  return true;
}

// --- serve ---------------------------------------------------------------

int RunServe(std::vector<std::string> args, const CliOptions& common) {
  std::string spool_root;
  std::string spec_file;
  std::vector<std::string> assignments;
  DispatcherOptions options;
  options.jobs_per_worker = common.jobs == 0 ? 1 : common.jobs;
  options.trace_cache_dir = common.trace_cache_dir;
  std::size_t shards = 0;  // 0 = pick from worker count
  bool workers_set = false;  // --workers 0 means "remote/external only"
  std::string error;

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s requires an argument\n", flag);
        return std::nullopt;
      }
      return args[++i];
    };
    auto count = [&](const char* flag) -> std::optional<std::uint64_t> {
      const auto text = value(flag);
      if (!text) {
        return std::nullopt;
      }
      const auto parsed = ParseUint64(*text);
      if (!parsed) {
        std::fprintf(stderr, "error: %s wants a non-negative integer, got '%s'\n",
                     flag, text->c_str());
      }
      return parsed;
    };
    auto seconds = [&](const char* flag) -> std::optional<double> {
      const auto text = value(flag);
      if (!text) {
        return std::nullopt;
      }
      const auto parsed = ParseFiniteDouble(*text);
      if (!parsed || *parsed <= 0.0) {
        std::fprintf(stderr, "error: %s wants a positive number of seconds\n", flag);
        return std::nullopt;
      }
      return parsed;
    };

    if (args[i] == "--spool") {
      const auto v = value("--spool");
      if (!v) return Usage();
      spool_root = *v;
    } else if (args[i] == "--spec") {
      const auto v = value("--spec");
      if (!v) return Usage();
      spec_file = *v;
    } else if (args[i] == "--shards") {
      const auto v = count("--shards");
      if (!v) return Usage();
      shards = *v;
    } else if (args[i] == "--workers") {
      const auto v = count("--workers");
      if (!v) return Usage();
      options.workers = *v;
      workers_set = true;
    } else if (args[i] == "--retry-budget") {
      const auto v = count("--retry-budget");
      if (!v) return Usage();
      options.retry_budget = *v;
    } else if (args[i] == "--lease-sec") {
      const auto v = seconds("--lease-sec");
      if (!v) return Usage();
      options.lease_sec = *v;
    } else if (args[i] == "--poll-sec") {
      const auto v = seconds("--poll-sec");
      if (!v) return Usage();
      options.poll_sec = *v;
    } else if (args[i] == "--http") {
      const auto v = count("--http");
      if (!v || *v > 65535) return Usage();
      options.http_port = static_cast<int>(*v);
    } else if (args[i] == "--http-bind-any") {
      options.http_bind_any = true;
    } else if (args[i] == "--throttle-ms") {
      const auto v = count("--throttle-ms");
      if (!v) return Usage();
      options.throttle_ms = *v;
    } else if (args[i] == "--kill-first-worker-after-rows") {
      const auto v = count("--kill-first-worker-after-rows");
      if (!v) return Usage();
      options.kill_first_worker_after_rows = *v;
    } else if (args[i].find('=') != std::string::npos) {
      assignments.push_back(args[i]);
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }
  if (spool_root.empty()) {
    std::fprintf(stderr, "error: serve requires --spool DIR\n");
    return Usage();
  }
  if (options.http_bind_any && options.http_port < 0) {
    std::fprintf(stderr, "error: --http-bind-any requires --http PORT\n");
    return Usage();
  }
  if (options.workers == 0 && !workers_set) {
    options.workers = 2;
  }
  if (shards == 0) {
    // Oversplit so a dead shard costs little; with `--workers 0` (remote
    // workers only) there is no local pool to size against.
    shards = options.workers > 0 ? options.workers * 2 : 4;
  }

  Spool spool(spool_root);
  auto meta = spool.ReadMeta(&error);
  if (!meta) {
    // No spool yet: assemble its spec as parseable source text — the file,
    // then command-line assignments and common-surface overrides as
    // later-wins lines.  The spool stores these bytes verbatim; workers
    // parse the same text, so the grid and fingerprint cannot drift.
    std::string spec_text;
    if (!spec_file.empty()) {
      std::ifstream in(spec_file);
      if (!in) {
        std::fprintf(stderr, "cannot open spec %s\n", spec_file.c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      spec_text = buffer.str();
      if (!spec_text.empty() && spec_text.back() != '\n') {
        spec_text += "\n";
      }
    }
    for (const std::string& token : assignments) {
      spec_text += token + "\n";
    }
    if (common.seed) {
      spec_text += "seeds = " + std::to_string(*common.seed) + "\n";
    }
    if (common.replicas) {
      spec_text += "replicas = " + std::to_string(*common.replicas) + "\n";
    }
    const std::string name = common.db_name.empty() ? "sweep" : common.db_name;
    if (!Spool::Create(spool_root, spec_text, name, shards, &error)) {
      std::fprintf(stderr, "error creating spool: %s\n", error.c_str());
      return 1;
    }
    meta = spool.ReadMeta(&error);
    if (!meta) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (!common.quiet) {
      std::fprintf(stderr, "mobisim_sweepd: spool %s created: %zu points in %zu shards\n",
                   spool_root.c_str(), meta->points, meta->shards);
    }
  } else {
    // Resuming: the spool's spec is canonical; a conflicting --spec would
    // silently run a different experiment, so refuse it.
    if (!spec_file.empty() || !assignments.empty()) {
      std::fprintf(stderr,
                   "error: %s already holds a spool; resume it without --spec or "
                   "key=value, or delete it to start over\n",
                   spool_root.c_str());
      return 1;
    }
    if (!common.quiet) {
      std::fprintf(stderr, "mobisim_sweepd: resuming spool %s (%zu points, %zu shards)\n",
                   spool_root.c_str(), meta->points, meta->shards);
    }
  }

  options.spool_root = spool_root;
  if (!common.quiet) {
    options.log = &std::cerr;
  }
  const DispatchSummary summary = RunDispatcher(options);
  if (!common.quiet) {
    std::fprintf(stderr,
                 "mobisim_sweepd: %zu shards done, %zu failed; %zu points "
                 "(%zu error), %zu requeues, %zu point retries, %zu workers\n",
                 summary.shards_done, summary.shards_failed, summary.points_done,
                 summary.error_points, summary.requeues, summary.retries,
                 summary.workers_spawned);
  }
  if (!summary.complete) {
    std::fprintf(stderr, "mobisim_sweepd: sweep did not settle; spool kept at %s\n",
                 spool_root.c_str());
    return 2;
  }

  const auto merged = MergeShardDir(spool_root, &error);
  if (!merged) {
    std::fprintf(stderr, "error merging %s: %s\n", spool_root.c_str(), error.c_str());
    return 1;
  }
  const int export_status = ExportMergedRun(*merged, common, meta->name,
                                            spool.MergedPath(), "mobisim_sweepd");
  if (export_status != 0) {
    return export_status;
  }
  if (!common.quiet) {
    std::fprintf(stderr, "mobisim_sweepd: merged run at %s\n",
                 spool.MergedPath().c_str());
  }
  return (summary.shards_failed > 0 || summary.error_points > 0) ? 2 : 0;
}

// --- work ----------------------------------------------------------------

int RunWork(std::vector<std::string> args, const CliOptions& common) {
  WorkerOptions options;
  RemoteWorkerOptions remote;
  std::string connect;
  options.jobs = common.jobs == 0 ? 1 : common.jobs;
  options.trace_cache_dir = common.trace_cache_dir;
  if (!common.quiet) {
    options.log = &std::cerr;
    remote.log = &std::cerr;
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto seconds = [&](const char* flag) -> std::optional<double> {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s requires an argument\n", flag);
        return std::nullopt;
      }
      const auto parsed = ParseFiniteDouble(args[++i]);
      if (!parsed || *parsed <= 0.0) {
        std::fprintf(stderr, "error: %s wants a positive number of seconds\n", flag);
        return std::nullopt;
      }
      return parsed;
    };
    if (args[i] == "--spool" && i + 1 < args.size()) {
      options.spool_root = args[++i];
    } else if (args[i] == "--connect" && i + 1 < args.size()) {
      connect = args[++i];
    } else if (args[i] == "--chunk-rows" && i + 1 < args.size()) {
      const auto v = ParseUint64(args[++i]);
      if (!v || *v == 0) return Usage();
      remote.chunk_rows = *v;
    } else if (args[i] == "--heartbeat-sec") {
      const auto v = seconds("--heartbeat-sec");
      if (!v) return Usage();
      remote.heartbeat_sec = *v;
    } else if (args[i] == "--poll-sec") {
      const auto v = seconds("--poll-sec");
      if (!v) return Usage();
      remote.poll_sec = *v;
    } else if (args[i] == "--connect-timeout") {
      const auto v = seconds("--connect-timeout");
      if (!v) return Usage();
      remote.http.connect_timeout_sec = *v;
    } else if (args[i] == "--io-timeout") {
      const auto v = seconds("--io-timeout");
      if (!v) return Usage();
      remote.http.io_timeout_sec = *v;
    } else if (args[i] == "--retries" && i + 1 < args.size()) {
      const auto v = ParseUint64(args[++i]);
      if (!v) return Usage();
      remote.http.max_retries = *v;
    } else if (args[i] == "--backoff-base-sec") {
      const auto v = seconds("--backoff-base-sec");
      if (!v) return Usage();
      remote.http.backoff_base_sec = *v;
    } else if (args[i] == "--net-fault" && i + 1 < args.size()) {
      std::string fault_error;
      const auto config = ParseNetFaultSpec(args[++i], &fault_error);
      if (!config) {
        std::fprintf(stderr, "error: %s\n", fault_error.c_str());
        return Usage();
      }
      remote.net_fault = *config;
    } else if (args[i] == "--worker-name" && i + 1 < args.size()) {
      remote.worker_name = args[++i];
    } else if (args[i] == "--throttle-ms" && i + 1 < args.size()) {
      const auto v = ParseUint64(args[++i]);
      if (!v) return Usage();
      options.throttle_ms = *v;
      remote.throttle_ms = *v;
    } else if (args[i] == "--kill-after-rows" && i + 1 < args.size()) {
      const auto v = ParseUint64(args[++i]);
      if (!v) return Usage();
      options.kill_after_rows = *v;
      remote.kill_after_rows = *v;
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }
  if (options.spool_root.empty() == connect.empty()) {
    std::fprintf(stderr, "error: work takes exactly one of --spool DIR or "
                         "--connect HOST:PORT\n");
    return Usage();
  }

  if (!connect.empty()) {
    if (!ParseHostPort(connect, &remote.host, &remote.port)) {
      return Usage();
    }
    remote.jobs = options.jobs;
    remote.trace_cache_dir = options.trace_cache_dir;
    const RemoteWorkerSummary summary = RunRemoteWorkerLoop(remote);
    if (!common.quiet) {
      std::fprintf(stderr,
                   "mobisim_sweepd: remote worker done: %zu items, %zu rows "
                   "(%zu inherited, %zu errors, %zu lost leases, "
                   "%llu transport failures)%s\n",
                   summary.items, summary.rows, summary.inherited,
                   summary.error_rows, summary.lost_leases,
                   static_cast<unsigned long long>(summary.transport_failures),
                   summary.drained ? "; sweep drained" : "");
    }
    if (summary.unreachable) {
      return RemoteWorkerOptions::kExitUnreachable;
    }
    return summary.error_rows > 0 ? RemoteWorkerOptions::kExitPoisoned
                                  : RemoteWorkerOptions::kExitClean;
  }

  const WorkerSummary summary = RunWorkerLoop(options);
  if (!common.quiet) {
    std::fprintf(stderr,
                 "mobisim_sweepd: worker done: %zu items, %zu rows "
                 "(%zu resumed, %zu errors)\n",
                 summary.items, summary.rows, summary.resumed, summary.error_rows);
  }
  return summary.error_rows > 0 ? WorkerOptions::kExitPoisoned
                                : WorkerOptions::kExitClean;
}

// --- status --------------------------------------------------------------

// Human-readable per-lease lines.  stderr, so stdout stays pure JSON for
// scripted pollers (the CI job pipes it straight into a JSON parser).
void PrintLeaseLines(const Spool& spool) {
  for (const ResultRow& row : SpoolLeaseRows(spool, 0.0)) {
    const double age = row.Number("heartbeat_age_sec", -1.0);
    if (age < 0.0) {
      std::fprintf(stderr, "lease %s attempt=%d owner=%llu rows=%llu (no heartbeat yet)\n",
                   row.Text("item").c_str(),
                   static_cast<int>(row.Number("attempt", 0)),
                   static_cast<unsigned long long>(row.Number("owner", 0)),
                   static_cast<unsigned long long>(row.Number("rows", 0)));
    } else {
      std::fprintf(stderr, "lease %s attempt=%d owner=%llu rows=%llu hb_age=%.1fs\n",
                   row.Text("item").c_str(),
                   static_cast<int>(row.Number("attempt", 0)),
                   static_cast<unsigned long long>(row.Number("owner", 0)),
                   static_cast<unsigned long long>(row.Number("rows", 0)), age);
    }
  }
}

int RunStatus(std::vector<std::string> args, const CliOptions& common) {
  std::string spool_root;
  std::string connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--spool" && i + 1 < args.size()) {
      spool_root = args[++i];
    } else if (args[i] == "--connect" && i + 1 < args.size()) {
      connect = args[++i];
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }
  if (spool_root.empty() && connect.empty()) {
    std::fprintf(stderr, "error: status requires --spool DIR or --connect HOST:PORT\n");
    return Usage();
  }

  // A remote dispatcher: ask it and print its answer, nothing local to scan.
  if (!connect.empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!ParseHostPort(connect, &host, &port)) {
      return Usage();
    }
    HttpClientOptions http;
    http.max_retries = 0;  // a status poll either answers now or fails now
    HttpClient client(host, port, http);
    HttpResponse response;
    std::string error;
    if (!client.Fetch("GET", "/status", "", &response, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fputs(response.body.c_str(), stdout);
    return response.status == 200 ? 0 : 1;
  }

  Spool spool(spool_root);

  // A live dispatcher publishes its port; prefer its view (it knows the
  // elapsed time and serves even while this process cannot read half-written
  // state).  Fall back to scanning the spool directly.  HttpGet carries its
  // own deadline, so a hung dispatcher yields the fallback, not a hang.
  std::ifstream port_file(spool.PortPath());
  std::uint64_t port = 0;
  if (port_file >> port && port > 0 && port <= 65535) {
    std::string body;
    std::string error;
    if (HttpGet(static_cast<std::uint16_t>(port), "/status", &body, &error)) {
      std::fputs(body.c_str(), stdout);
      if (!common.quiet) {
        PrintLeaseLines(spool);
      }
      return 0;
    }
  }
  std::string error;
  const auto meta = spool.ReadMeta(&error);
  if (!meta) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", RenderStatusJson(spool, *meta, 0.0, 0.0).c_str());
  if (!common.quiet) {
    PrintLeaseLines(spool);
  }
  return 0;
}

// --- merge ---------------------------------------------------------------

int RunMerge(std::vector<std::string> args, const CliOptions& common) {
  std::string dir;
  for (const std::string& arg : args) {
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", arg.c_str());
      return Usage();
    }
    if (!dir.empty()) {
      std::fprintf(stderr, "error: merge takes exactly one directory\n");
      return Usage();
    }
    dir = arg;
  }
  if (dir.empty()) {
    std::fprintf(stderr, "error: merge requires a shard directory\n");
    return Usage();
  }
  std::string error;
  const auto merged = MergeShardDir(dir, &error);
  if (!merged) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::string name = common.db_name.empty() ? "sweep" : common.db_name;
  // A spool knows its own run name; use it unless --name overrides.
  if (common.db_name.empty()) {
    Spool spool(dir);
    std::string meta_error;
    if (const auto meta = spool.ReadMeta(&meta_error)) {
      name = meta->name;
    }
  }
  return ExportMergedRun(*merged, common, name, "", "mobisim_sweepd");
}

int RunMain(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  const std::string command = args.front();
  args.erase(args.begin());

  CliOptions common;
  std::string error;
  if (!ExtractCommonFlags(&args, &common, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }

  if (command == "serve") {
    return RunServe(std::move(args), common);
  }
  if (command == "work") {
    return RunWork(std::move(args), common);
  }
  if (command == "status") {
    return RunStatus(std::move(args), common);
  }
  if (command == "merge") {
    return RunMerge(std::move(args), common);
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return RunMain(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mobisim_sweepd: fatal: %s\n", e.what());
    return 1;
  }
}
