// Trace utility: generate the paper's workloads, save/load them in the
// mobisim text format, and print Table-3-style statistics.
//
//   ./trace_tool gen <mac|dos|hp|synth> <out.trc> [scale] [seed]
//   ./trace_tool stats <in.trc>
//   ./trace_tool head <in.trc> [n]
//   ./trace_tool filter <in.trc> <out.trc> <reads|writes|file:ID>
//   ./trace_tool timescale <in.trc> <out.trc> <factor>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/trace/calibrated_workload.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/util/table.h"

namespace {

using namespace mobisim;

int Generate(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: trace_tool gen <mac|dos|hp|synth> <out.trc> [scale] [seed]\n");
    return 1;
  }
  const std::string name = argv[2];
  const std::string path = argv[3];
  const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
  const Trace trace = GenerateNamedWorkload(name, scale, seed);
  if (!WriteTraceFile(trace, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", trace.records.size(), path.c_str());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_tool stats <in.trc>\n");
    return 1;
  }
  std::string error;
  const auto trace = ReadTraceFile(argv[2], &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const TraceStats stats = ComputeTraceStats(*trace);
  std::printf("trace %s: %zu records\n", trace->name.c_str(), trace->records.size());
  TablePrinter table({"Metric", "Value"});
  table.BeginRow().Cell(std::string("duration (s)")).Cell(stats.duration_sec, 1);
  table.BeginRow().Cell(std::string("distinct KB")).Cell(
      static_cast<std::int64_t>(stats.distinct_kbytes));
  table.BeginRow().Cell(std::string("reads")).Cell(
      static_cast<std::int64_t>(stats.read_count));
  table.BeginRow().Cell(std::string("writes")).Cell(
      static_cast<std::int64_t>(stats.write_count));
  table.BeginRow().Cell(std::string("erases")).Cell(
      static_cast<std::int64_t>(stats.erase_count));
  table.BeginRow().Cell(std::string("read fraction")).Cell(stats.read_fraction, 3);
  table.BeginRow().Cell(std::string("mean read (blocks)")).Cell(stats.read_blocks.mean(), 2);
  table.BeginRow().Cell(std::string("mean write (blocks)")).Cell(stats.write_blocks.mean(), 2);
  table.BeginRow().Cell(std::string("gap mean (s)")).Cell(stats.interarrival_sec.mean(), 3);
  table.BeginRow().Cell(std::string("gap max (s)")).Cell(stats.interarrival_sec.max(), 1);
  table.BeginRow().Cell(std::string("gap sigma (s)")).Cell(stats.interarrival_sec.stddev(), 2);
  table.Print(std::cout);
  return 0;
}

int Head(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_tool head <in.trc> [n]\n");
    return 1;
  }
  std::string error;
  const auto trace = ReadTraceFile(argv[2], &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::size_t n = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10;
  for (std::size_t i = 0; i < std::min(n, trace->records.size()); ++i) {
    const TraceRecord& rec = trace->records[i];
    std::printf("%10lld us  %-5s file %-6u offset %-8llu size %u\n",
                static_cast<long long>(rec.time_us), OpTypeName(rec.op), rec.file_id,
                static_cast<unsigned long long>(rec.offset), rec.size_bytes);
  }
  return 0;
}

int Filter(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: trace_tool filter <in.trc> <out.trc> <reads|writes|file:ID>\n");
    return 1;
  }
  std::string error;
  const auto trace = ReadTraceFile(argv[2], &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::string what = argv[4];
  Trace out;
  out.name = trace->name + "-" + what;
  out.block_bytes = trace->block_bytes;
  for (const TraceRecord& rec : trace->records) {
    bool keep = false;
    if (what == "reads") {
      keep = rec.op == OpType::kRead;
    } else if (what == "writes") {
      keep = rec.op == OpType::kWrite;
    } else if (what.rfind("file:", 0) == 0) {
      keep = rec.file_id == std::strtoul(what.c_str() + 5, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown filter '%s'\n", what.c_str());
      return 1;
    }
    if (keep) {
      out.records.push_back(rec);
    }
  }
  if (!WriteTraceFile(out, argv[3])) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf("kept %zu of %zu records\n", out.records.size(), trace->records.size());
  return 0;
}

int TimeScale(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: trace_tool timescale <in.trc> <out.trc> <factor>\n");
    return 1;
  }
  std::string error;
  const auto trace = ReadTraceFile(argv[2], &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const double factor = std::atof(argv[4]);
  if (factor <= 0.0) {
    std::fprintf(stderr, "factor must be positive\n");
    return 1;
  }
  Trace out = *trace;
  out.name = trace->name + "-x" + argv[4];
  for (TraceRecord& rec : out.records) {
    rec.time_us = static_cast<SimTime>(static_cast<double>(rec.time_us) * factor);
  }
  if (!WriteTraceFile(out, argv[3])) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf("rescaled %zu records by %.3f\n", out.records.size(), factor);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_tool <gen|stats|head> ...\n");
    return 1;
  }
  const std::string command = argv[1];
  if (command == "gen") {
    return Generate(argc, argv);
  }
  if (command == "stats") {
    return Stats(argc, argv);
  }
  if (command == "head") {
    return Head(argc, argv);
  }
  if (command == "filter") {
    return Filter(argc, argv);
  }
  if (command == "timescale") {
    return TimeScale(argc, argv);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
