// Quickstart: simulate one workload on the three storage organizations the
// paper compares, and print energy and response-time summaries.
//
//   ./quickstart [workload] [scale]
//     workload: mac | dos | hp | synth   (default mac)
//     scale:    fraction of the full workload to run (default 0.5)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace mobisim;

  const std::string workload = argc > 1 ? argv[1] : "mac";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  std::printf("mobisim quickstart: %s workload at scale %.2f\n\n", workload.c_str(), scale);

  // The three architectural alternatives, with the paper's standard setup:
  // 2-MB DRAM buffer cache, 32-KB SRAM write buffer for the magnetic disk,
  // flash preloaded to 80%% utilization.
  TablePrinter table({"Storage", "Energy (J)", "Read mean (ms)", "Read max (ms)",
                      "Write mean (ms)", "Write max (ms)"});
  for (const DeviceSpec& spec :
       {Cu140Datasheet(), Sdp5Datasheet(), IntelCardDatasheet()}) {
    const SimConfig config = MakePaperConfig(spec, 2 * 1024 * 1024);
    const SimResult result = RunNamedWorkload(workload, config, scale);
    table.BeginRow()
        .Cell(spec.name)
        .Cell(result.total_energy_j(), 1)
        .Cell(result.read_response_ms.mean(), 2)
        .Cell(result.read_response_ms.max(), 1)
        .Cell(result.write_response_ms.mean(), 2)
        .Cell(result.write_response_ms.max(), 1);
  }
  table.Print(std::cout);

  std::printf(
      "\nThe flash devices should use roughly an order of magnitude less energy\n"
      "than the spinning disk, read several times faster, and write slower --\n"
      "the trade-off the paper quantifies.\n");
  return 0;
}
