// Full command-line driver: run any simulator configuration against any
// workload (generated or loaded from a trace file) and print the results.
//
//   mobisim_cli [--config FILE] [key=value ...] [--workload NAME|--trace FILE]
//               [--scale S] [common flags]
//
// key=value settings are the ones documented in src/core/config_text.h, e.g.
//   mobisim_cli device=intel-datasheet utilization=0.95 --workload mac
//   mobisim_cli device=cu140-datasheet sram=32k spin_down=2 --workload hp
//   mobisim_cli --config experiment.cfg --trace /tmp/mytrace.trc
//
// The common flags (src/runner/cli_options.h) add structured export on top
// of the human-readable table: --jsonl FILE|- and --csv FILE|- write the
// run as sweep-schema rows, --seed N picks the workload-generator seed,
// and --replicas N exports N independently seeded re-runs (the table shows
// the first); --db/--name/--sha land the rows in a bench_db store.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/bench_db/bench_db.h"
#include "src/core/config_text.h"
#include "src/core/simulator.h"
#include "src/runner/cli_options.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/sweep_runner.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/trace/external_formats.h"
#include "src/trace/trace_cache.h"
#include "src/trace/trace_io.h"
#include "src/util/parse.h"
#include "src/util/table.h"

namespace {

using namespace mobisim;

int Usage() {
  std::fprintf(stderr,
               "usage: mobisim_cli [--config FILE] [key=value ...]\n"
               "                   [--workload mac|dos|hp|synth | --trace FILE\n"
               "                    | --hpl-trace FILE | --disksim-trace FILE]\n"
               "                   [--scale S] [common flags]\n"
               "%s",
               CommonFlagsUsage());
  return 2;
}

int RunMain(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  CliOptions common;
  std::string error;
  if (!ExtractCommonFlags(&args, &common, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }

  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  std::string workload = "mac";
  std::string trace_path;
  std::string hpl_path;
  std::string disksim_path;
  double scale = 1.0;
  const std::uint64_t seed = common.seed.value_or(1);  // generator's default

  // First: --config files (applied in order), then key=value overrides.
  std::vector<std::string> remaining;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--config") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      std::ifstream in(args[++i]);
      if (!in) {
        std::fprintf(stderr, "cannot open config %s\n", args[i].c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      const auto parsed = ParseConfigText(buffer.str(), &error);
      if (!parsed) {
        std::fprintf(stderr, "config error: %s\n", error.c_str());
        return 1;
      }
      config = *parsed;
    } else if (args[i] == "--workload") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      workload = args[++i];
    } else if (args[i] == "--trace") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      trace_path = args[++i];
    } else if (args[i] == "--hpl-trace") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      hpl_path = args[++i];
    } else if (args[i] == "--disksim-trace") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      disksim_path = args[++i];
    } else if (args[i] == "--scale") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      const auto parsed = ParseFiniteDouble(args[++i]);
      if (!parsed || *parsed <= 0.0) {
        std::fprintf(stderr, "error: --scale wants a positive number, got '%s'\n",
                     args[i].c_str());
        return Usage();
      }
      scale = *parsed;
    } else {
      remaining.push_back(args[i]);
    }
  }
  const std::vector<std::string> unknown = ApplyConfigArgs(&config, remaining, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  for (const std::string& token : unknown) {
    std::fprintf(stderr, "error: unrecognised argument '%s'\n", token.c_str());
    return Usage();
  }

  const bool generated = hpl_path.empty() && disksim_path.empty() && trace_path.empty();
  const std::unique_ptr<TraceCache> tcache = OpenTraceCache(common);
  const std::size_t replicas = common.replicas.value_or(1);
  if (replicas > 1 && !generated) {
    std::fprintf(stderr,
                 "error: --replicas needs a generated workload (file traces are fixed)\n");
    return Usage();
  }

  // Build the block-level workload.
  BlockTrace blocks;
  if (!hpl_path.empty() || !disksim_path.empty()) {
    std::ifstream in(hpl_path.empty() ? disksim_path : hpl_path);
    if (!in) {
      std::fprintf(stderr, "cannot open trace %s\n",
                   (hpl_path.empty() ? disksim_path : hpl_path).c_str());
      return 1;
    }
    const auto imported = hpl_path.empty()
                              ? ImportDiskSimTrace(in, DiskSimImportOptions{}, &error)
                              : ImportHplTrace(in, HplImportOptions{}, &error);
    if (!imported) {
      std::fprintf(stderr, "import error: %s\n", error.c_str());
      return 1;
    }
    blocks = *imported;
    // Disk-level traces carry an implicit buffer cache (like the paper's hp
    // trace); simulate without one.
    config.dram_bytes = 0;
  } else if (!trace_path.empty()) {
    const auto trace = ReadTraceFile(trace_path, &error);
    if (!trace) {
      std::fprintf(stderr, "trace error: %s\n", error.c_str());
      return 1;
    }
    blocks = BlockMapper::Map(*trace);
  } else {
    // `seed` perturbs the generator so repeated runs are reproducible and
    // distinct seeds give independent workload instances.  The trace cache
    // (when configured) shares the generated blocks with sweep/bench runs.
    blocks = *LoadOrGenerateBlockTrace(tcache.get(), workload, scale, seed);
    if (workload == "hp") {
      config.dram_bytes = 0;  // the paper's methodology for hp
    }
  }

  std::printf("mobisim: %s | workload %s (%zu block records)\n",
              DescribeConfig(config).c_str(),
              trace_path.empty() ? workload.c_str() : trace_path.c_str(),
              blocks.records.size());

  const SimResult result = RunSimulation(blocks, config);

  TablePrinter table({"Metric", "Value"});
  table.BeginRow().Cell(std::string("energy total (J)")).Cell(result.total_energy_j(), 1);
  table.BeginRow().Cell(std::string("  device (J)")).Cell(result.device_energy_j, 1);
  table.BeginRow().Cell(std::string("  DRAM (J)")).Cell(result.dram_energy_j, 1);
  table.BeginRow().Cell(std::string("  SRAM (J)")).Cell(result.sram_energy_j, 1);
  table.BeginRow().Cell(std::string("read mean (ms)")).Cell(result.read_response_ms.mean(), 3);
  table.BeginRow().Cell(std::string("read p95 (ms)"))
      .Cell(result.read_percentiles_ms.Quantile(0.95), 3);
  table.BeginRow().Cell(std::string("read max (ms)")).Cell(result.read_response_ms.max(), 1);
  table.BeginRow().Cell(std::string("write mean (ms)"))
      .Cell(result.write_response_ms.mean(), 3);
  table.BeginRow().Cell(std::string("write p95 (ms)"))
      .Cell(result.write_percentiles_ms.Quantile(0.95), 3);
  table.BeginRow().Cell(std::string("write max (ms)")).Cell(result.write_response_ms.max(), 1);
  table.BeginRow().Cell(std::string("disk spin-ups"))
      .Cell(static_cast<std::int64_t>(result.counters.spinups));
  table.BeginRow().Cell(std::string("segment erases"))
      .Cell(static_cast<std::int64_t>(result.counters.segment_erases));
  table.BeginRow().Cell(std::string("blocks copied (cleaning)"))
      .Cell(static_cast<std::int64_t>(result.counters.blocks_copied));
  table.BeginRow().Cell(std::string("max segment erases")).Cell(result.max_segment_erases, 0);
  table.BeginRow().Cell(std::string("DRAM hit rate"))
      .Cell(result.dram_hits + result.dram_misses == 0
                ? 0.0
                : static_cast<double>(result.dram_hits) /
                      static_cast<double>(result.dram_hits + result.dram_misses),
            3);
  for (const auto& [mode, seconds] : result.device_mode_seconds) {
    table.BeginRow().Cell("device " + mode + " (s)").Cell(seconds, 1);
  }
  table.Print(std::cout);
  std::printf("device energy: %s\n", result.device_energy_breakdown.c_str());

  if (!common.wants_export()) {
    if (tcache != nullptr && !common.quiet) {
      std::fprintf(stderr, "mobisim_cli: %s\n", tcache->StatsLine().c_str());
    }
    return 0;
  }

  // Structured export: the run as sweep-schema rows, one per replica
  // (replica 0 is the run the table above shows).
  RunMeta meta;
  meta.spec_name = common.db_name.empty() ? "cli" : common.db_name;
  meta.spec_hash = DescribeConfig(config);
  meta.git_sha = common.git_sha;
  meta.created = NowUtc();
  meta.host = HostName();
  meta.points = replicas;

  SinkSet sinks;
  if (!sinks.Open(common, meta, SweepCsvHeader(), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  std::vector<ResultRow> rows;
  for (std::size_t replica = 0; replica < replicas; ++replica) {
    ExperimentPoint point;
    point.index = replica;
    point.workload = generated ? workload
                               : (trace_path.empty()
                                      ? (hpl_path.empty() ? disksim_path : hpl_path)
                                      : trace_path);
    point.scale = scale;
    point.seed = ReplicaSeed(seed, replica);
    point.replica = replica;
    point.config = config;
    SimResult replica_result;
    if (replica == 0) {
      replica_result = result;  // reuse the run the table reported
    } else {
      replica_result = RunSimulation(
          *LoadOrGenerateBlockTrace(tcache.get(), workload, scale, point.seed), config);
    }
    ResultRow row = MergePointAndResult(point, replica_result);
    for (ResultSink* sink : sinks.sinks()) {
      sink->Write(row);
    }
    rows.push_back(std::move(row));
  }
  sinks.Finish();

  if (!common.db_root.empty()) {
    BenchDb db(common.db_root);
    const auto stored = db.StoreRun(meta, rows, &error);
    if (!stored) {
      std::fprintf(stderr, "error storing run: %s\n", error.c_str());
      return 1;
    }
    if (!common.quiet) {
      std::fprintf(stderr, "mobisim_cli: stored %s\n", stored->c_str());
    }
  }
  if (tcache != nullptr && !common.quiet) {
    std::fprintf(stderr, "mobisim_cli: %s\n", tcache->StatsLine().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return RunMain(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mobisim_cli: fatal: %s\n", e.what());
    return 1;
  }
}
