// Flash endurance projection: how long until a card wears out?
//
// Runs a workload against the flash card at several storage utilizations,
// measures per-segment erase counts, and extrapolates to the endurance limit
// (10^5 cycles for the parts the paper studied, 10^6 for the Series 2+).
// Reproduces the section 5.2 observation that running flash near capacity
// can cost a third or more of its lifetime.
//
//   ./flash_lifetime [workload] [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace mobisim;

  const std::string workload = argc > 1 ? argv[1] : "mac";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  const Trace trace = GenerateNamedWorkload(workload, scale);
  const BlockTrace blocks = BlockMapper::Map(trace);
  const std::uint64_t capacity =
      RequiredCapacityBytes(blocks.total_bytes(), 0.40, 128 * 1024);

  std::printf("Flash-card lifetime projection, %s workload (card %.1f MB)\n\n",
              workload.c_str(), static_cast<double>(capacity) / (1024.0 * 1024.0));

  TablePrinter table({"Utilization (%)", "Max seg erases", "Mean seg erases",
                      "Worst-segment life @100k (years)", "@1M (years)"});
  for (const double util : {0.40, 0.60, 0.80, 0.90, 0.95}) {
    SimConfig config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
    if (workload == "hp") {
      config.dram_bytes = 0;
    }
    config.flash_utilization = util;
    config.capacity_bytes = capacity;
    config.auto_capacity = false;
    const SimResult result = RunSimulation(blocks, config);

    // Extrapolate: the workload's post-warm span produced `max` erases on
    // the hottest segment; wear-out is when that segment hits the limit.
    const double span_years = result.duration_sec / (365.25 * 24 * 3600);
    table.BeginRow()
        .Cell(util * 100.0, 0)
        .Cell(result.max_segment_erases, 0)
        .Cell(result.mean_segment_erases, 2);
    if (result.max_segment_erases < 1.0) {
      table.Cell(std::string("no wear observed")).Cell(std::string("no wear observed"));
    } else {
      table.Cell(100000.0 / result.max_segment_erases * span_years, 1)
          .Cell(1000000.0 / result.max_segment_erases * span_years, 1);
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nNote: the projection assumes this workload runs continuously and that the\n"
      "hottest segment stays hottest (no additional wear-levelling beyond the\n"
      "cleaner's natural rotation).\n");
  return 0;
}
