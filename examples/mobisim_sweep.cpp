// Parallel experiment-sweep driver: describe a grid over devices, workloads,
// flash utilization, DRAM/SRAM sizes, cleaning policies and seeds, fan it
// out across cores, and export one structured row per point.
//
//   mobisim_sweep [--spec FILE] [key=value ...] [--jobs N] [--serial]
//                 [--jsonl FILE|-] [--csv FILE|-] [--list] [--quiet]
//                 [--shard K/N] [--db DIR --name NAME [--sha SHA]]
//
// key=value tokens use the spec syntax of src/runner/experiment_spec.h
// (sweep lists like `workloads=mac,dos` plus every base-config key from
// src/core/config_text.h).  Lists given on the command line override the
// spec file.  Examples:
//
//   # Figure 2 grid, all cores, JSONL to a file:
//   mobisim_sweep workloads=mac,dos,hp device=intel-datasheet
//       'utilizations=0.4,0.5,0.6,0.7,0.8,0.85,0.9,0.95' --jsonl fig2.jsonl
//
//   # 24-point device x workload x utilization grid, CSV to stdout:
//   mobisim_sweep devices=intel-datasheet,sdp5-datasheet workloads=mac,dos
//       'utilizations=0.4,0.5,0.6,0.7,0.8,0.9' --csv -
//
// --shard K/N keeps only points with index % N == K (indices stay global, so
// shards from different machines merge by concatenating their JSONL).
//
// --db lands the run in a bench_db result store as
// <DIR>/<sha>/<NAME>.jsonl with a metadata header (spec fingerprint, date,
// host) and a manifest entry; --sha defaults to $GITHUB_SHA, then
// $MOBISIM_GIT_SHA, then "local".  JSONL output (--jsonl and --db files)
// starts with the same metadata header line; readers recognise it by its
// leading "_meta" key.
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/bench_db/bench_db.h"
#include "src/core/config_text.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace {

using namespace mobisim;

int Usage() {
  std::fprintf(stderr,
               "usage: mobisim_sweep [--spec FILE] [key=value ...] [--jobs N] [--serial]\n"
               "                     [--jsonl FILE|-] [--csv FILE|-] [--list] [--quiet]\n"
               "                     [--shard K/N] [--db DIR --name NAME [--sha SHA]]\n"
               "sweep keys: devices workloads utilizations dram_sizes sram_sizes\n"
               "            cleaning_policies power_loss_intervals seeds scale\n"
               "            replicas  (comma lists)\n"
               "plus any base-config key from src/core/config_text.h\n");
  return 2;
}

// ISO-8601 UTC, second resolution; stable format for metadata headers.
std::string NowUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

std::string HostName() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
  const char* env = std::getenv("HOSTNAME");
  return env != nullptr ? env : "unknown";
}

std::string DefaultSha() {
  for (const char* var : {"GITHUB_SHA", "MOBISIM_GIT_SHA"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && value[0] != '\0') {
      return value;
    }
  }
  return "local";
}

bool ParseShard(const std::string& text, std::size_t* shard, std::size_t* shards) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    return false;
  }
  try {
    const unsigned long long k = std::stoull(text.substr(0, slash));
    const unsigned long long n = std::stoull(text.substr(slash + 1));
    if (n == 0 || k >= n) {
      return false;
    }
    *shard = static_cast<std::size_t>(k);
    *shards = static_cast<std::size_t>(n);
    return true;
  } catch (...) {
    return false;
  }
}

// "-" means stdout; otherwise open the file for writing.
std::ostream* OpenSink(const std::string& path, std::ofstream* file) {
  if (path == "-") {
    return &std::cout;
  }
  file->open(path);
  if (!*file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return nullptr;
  }
  return file;
}

}  // namespace

namespace {

int RunMain(int argc, char** argv) {
  ExperimentSpec spec;
  std::size_t jobs = 0;  // 0 = all cores
  std::string jsonl_path;
  std::string csv_path;
  std::string db_root;
  std::string db_name;
  std::string git_sha = DefaultSha();
  std::size_t shard = 0;
  std::size_t shards = 1;
  bool list_only = false;
  bool quiet = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> assignments;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--spec") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      std::ifstream in(args[++i]);
      if (!in) {
        std::fprintf(stderr, "cannot open spec %s\n", args[i].c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::string error;
      const auto parsed = ParseExperimentSpec(buffer.str(), &error);
      if (!parsed) {
        std::fprintf(stderr, "spec error: %s\n", error.c_str());
        return 1;
      }
      spec = *parsed;
    } else if (args[i] == "--jobs") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      jobs = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
      if (jobs == 0) {
        return Usage();
      }
    } else if (args[i] == "--serial") {
      jobs = 1;
    } else if (args[i] == "--jsonl") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      jsonl_path = args[++i];
    } else if (args[i] == "--csv") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      csv_path = args[++i];
    } else if (args[i] == "--db") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      db_root = args[++i];
    } else if (args[i] == "--name") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      db_name = args[++i];
    } else if (args[i] == "--sha") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      git_sha = args[++i];
    } else if (args[i] == "--shard") {
      if (i + 1 >= args.size() || !ParseShard(args[++i], &shard, &shards)) {
        return Usage();
      }
    } else if (args[i] == "--list") {
      list_only = true;
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else if (args[i].find('=') != std::string::npos) {
      assignments.push_back(args[i]);
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }
  for (const std::string& token : assignments) {
    const std::size_t eq = token.find('=');
    std::string error;
    if (!ApplySpecAssignment(&spec, token.substr(0, eq), token.substr(eq + 1), &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  if (!db_root.empty() && db_name.empty()) {
    std::fprintf(stderr, "error: --db requires --name\n");
    return Usage();
  }

  std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  if (shards > 1) {
    // Keep global indices: shards from different machines merge by
    // concatenation and still join by point index.
    std::vector<ExperimentPoint> mine;
    for (ExperimentPoint& point : points) {
      if (point.index % shards == shard) {
        mine.push_back(std::move(point));
      }
    }
    points = std::move(mine);
  }
  if (!quiet) {
    std::fprintf(stderr, "mobisim_sweep: %s\n", DescribeSpec(spec).c_str());
    if (shards > 1) {
      std::fprintf(stderr, "mobisim_sweep: shard %zu/%zu -> %zu points\n", shard,
                   shards, points.size());
    }
  }
  if (list_only) {
    for (const ExperimentPoint& point : points) {
      std::printf("%4zu  %-5s seed=%llu  %s\n", point.index, point.workload.c_str(),
                  static_cast<unsigned long long>(point.seed),
                  DescribeConfig(point.config).c_str());
    }
    return 0;
  }

  RunMeta meta;
  meta.spec_name = db_name.empty() ? "sweep" : db_name;
  meta.spec_hash = SpecFingerprint(spec);
  meta.git_sha = git_sha;
  meta.created = NowUtc();
  meta.host = HostName();
  meta.points = points.size();

  std::ofstream jsonl_file;
  std::ofstream csv_file;
  std::unique_ptr<JsonlResultSink> jsonl_sink;
  std::unique_ptr<CsvResultSink> csv_sink;
  SweepOptions options;
  options.threads = jobs;
  if (!jsonl_path.empty()) {
    std::ostream* out = OpenSink(jsonl_path, &jsonl_file);
    if (out == nullptr) {
      return 1;
    }
    jsonl_sink = std::make_unique<JsonlResultSink>(*out);
    // Metadata header first: identifies the run and fingerprints the spec so
    // benchdiff can verify it is comparing like with like.
    jsonl_sink->Write(MetaToRow(meta));
    options.sinks.push_back(jsonl_sink.get());
  }
  if (!csv_path.empty()) {
    std::ostream* out = OpenSink(csv_path, &csv_file);
    if (out == nullptr) {
      return 1;
    }
    csv_sink = std::make_unique<CsvResultSink>(*out, SweepCsvHeader());
    options.sinks.push_back(csv_sink.get());
  }
  // With no explicit sink, CSV goes to stdout so the tool is useful bare
  // (unless --db already captures the run).
  if (options.sinks.empty() && db_root.empty()) {
    csv_sink = std::make_unique<CsvResultSink>(std::cout, SweepCsvHeader());
    options.sinks.push_back(csv_sink.get());
  }
  if (!quiet) {
    options.progress = &std::cerr;
  }

  const std::vector<SweepOutcome> outcomes = RunSweep(points, options);

  // Failed points were exported as `_error` rows; surface them here and make
  // the exit status reflect that the sweep is incomplete.
  std::size_t failed = 0;
  for (const SweepOutcome& outcome : outcomes) {
    if (outcome.failed) {
      ++failed;
      std::fprintf(stderr, "mobisim_sweep: point %zu failed: %s\n",
                   outcome.point.index, outcome.error.c_str());
    }
  }

  if (!db_root.empty()) {
    std::vector<ResultRow> rows;
    rows.reserve(outcomes.size());
    for (const SweepOutcome& outcome : outcomes) {
      rows.push_back(outcome.row);
    }
    BenchDb db(db_root);
    std::string error;
    const auto stored = db.StoreRun(meta, rows, &error);
    if (!stored) {
      std::fprintf(stderr, "error storing run: %s\n", error.c_str());
      return 1;
    }
    if (!quiet) {
      std::fprintf(stderr, "mobisim_sweep: stored %s (spec hash %s)\n",
                   stored->c_str(), meta.spec_hash.c_str());
    }
  }

  if (!quiet) {
    // Compact human summary: one line per point on stderr-adjacent stdout
    // would fight the CSV default, so summarize only when not writing there.
    const bool stdout_taken = csv_path == "-" || jsonl_path == "-" ||
                              (csv_path.empty() && jsonl_path.empty());
    if (!stdout_taken) {
      TablePrinter table({"Point", "Workload", "Device", "Util (%)", "Energy (J)",
                          "Write Mean (ms)", "Erases"});
      for (const SweepOutcome& outcome : outcomes) {
        if (outcome.failed) {
          continue;
        }
        table.BeginRow()
            .Cell(static_cast<std::int64_t>(outcome.point.index))
            .Cell(outcome.point.workload)
            .Cell(outcome.point.config.device.name)
            .Cell(outcome.point.config.flash_utilization * 100.0, 0)
            .Cell(outcome.result.total_energy_j(), 1)
            .Cell(outcome.result.write_response_ms.mean(), 2)
            .Cell(static_cast<std::int64_t>(outcome.result.counters.segment_erases));
      }
      table.Print(std::cout);
    }
    std::fprintf(stderr, "mobisim_sweep: %zu points done (%zu threads)%s\n",
                 outcomes.size(),
                 options.threads == 0 ? ThreadPool::DefaultThreadCount() : options.threads,
                 failed > 0 ? ", with failures" : "");
  }
  return failed > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return RunMain(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mobisim_sweep: fatal: %s\n", e.what());
    return 1;
  }
}
