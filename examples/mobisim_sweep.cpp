// Parallel experiment-sweep driver: describe a grid over devices, workloads,
// flash utilization, DRAM/SRAM sizes, cleaning policies and seeds, fan it
// out across cores, and export one structured row per point.
//
//   mobisim_sweep [--spec FILE] [key=value ...] [--jobs N] [--serial]
//                 [--jsonl FILE|-] [--csv FILE|-] [--list] [--quiet]
//
// key=value tokens use the spec syntax of src/runner/experiment_spec.h
// (sweep lists like `workloads=mac,dos` plus every base-config key from
// src/core/config_text.h).  Lists given on the command line override the
// spec file.  Examples:
//
//   # Figure 2 grid, all cores, JSONL to a file:
//   mobisim_sweep workloads=mac,dos,hp device=intel-datasheet
//       'utilizations=0.4,0.5,0.6,0.7,0.8,0.85,0.9,0.95' --jsonl fig2.jsonl
//
//   # 24-point device x workload x utilization grid, CSV to stdout:
//   mobisim_sweep devices=intel-datasheet,sdp5-datasheet workloads=mac,dos
//       'utilizations=0.4,0.5,0.6,0.7,0.8,0.9' --csv -
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/config_text.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace {

using namespace mobisim;

int Usage() {
  std::fprintf(stderr,
               "usage: mobisim_sweep [--spec FILE] [key=value ...] [--jobs N] [--serial]\n"
               "                     [--jsonl FILE|-] [--csv FILE|-] [--list] [--quiet]\n"
               "sweep keys: devices workloads utilizations dram_sizes sram_sizes\n"
               "            cleaning_policies seeds scale  (comma-separated lists)\n"
               "plus any base-config key from src/core/config_text.h\n");
  return 2;
}

// "-" means stdout; otherwise open the file for writing.
std::ostream* OpenSink(const std::string& path, std::ofstream* file) {
  if (path == "-") {
    return &std::cout;
  }
  file->open(path);
  if (!*file) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return nullptr;
  }
  return file;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentSpec spec;
  std::size_t jobs = 0;  // 0 = all cores
  std::string jsonl_path;
  std::string csv_path;
  bool list_only = false;
  bool quiet = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> assignments;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--spec") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      std::ifstream in(args[++i]);
      if (!in) {
        std::fprintf(stderr, "cannot open spec %s\n", args[i].c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::string error;
      const auto parsed = ParseExperimentSpec(buffer.str(), &error);
      if (!parsed) {
        std::fprintf(stderr, "spec error: %s\n", error.c_str());
        return 1;
      }
      spec = *parsed;
    } else if (args[i] == "--jobs") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      jobs = static_cast<std::size_t>(std::atoll(args[++i].c_str()));
      if (jobs == 0) {
        return Usage();
      }
    } else if (args[i] == "--serial") {
      jobs = 1;
    } else if (args[i] == "--jsonl") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      jsonl_path = args[++i];
    } else if (args[i] == "--csv") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      csv_path = args[++i];
    } else if (args[i] == "--list") {
      list_only = true;
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else if (args[i].find('=') != std::string::npos) {
      assignments.push_back(args[i]);
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }
  for (const std::string& token : assignments) {
    const std::size_t eq = token.find('=');
    std::string error;
    if (!ApplySpecAssignment(&spec, token.substr(0, eq), token.substr(eq + 1), &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  const std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  if (!quiet) {
    std::fprintf(stderr, "mobisim_sweep: %s\n", DescribeSpec(spec).c_str());
  }
  if (list_only) {
    for (const ExperimentPoint& point : points) {
      std::printf("%4zu  %-5s seed=%llu  %s\n", point.index, point.workload.c_str(),
                  static_cast<unsigned long long>(point.seed),
                  DescribeConfig(point.config).c_str());
    }
    return 0;
  }

  std::ofstream jsonl_file;
  std::ofstream csv_file;
  std::unique_ptr<JsonlResultSink> jsonl_sink;
  std::unique_ptr<CsvResultSink> csv_sink;
  SweepOptions options;
  options.threads = jobs;
  if (!jsonl_path.empty()) {
    std::ostream* out = OpenSink(jsonl_path, &jsonl_file);
    if (out == nullptr) {
      return 1;
    }
    jsonl_sink = std::make_unique<JsonlResultSink>(*out);
    options.sinks.push_back(jsonl_sink.get());
  }
  if (!csv_path.empty()) {
    std::ostream* out = OpenSink(csv_path, &csv_file);
    if (out == nullptr) {
      return 1;
    }
    csv_sink = std::make_unique<CsvResultSink>(*out);
    options.sinks.push_back(csv_sink.get());
  }
  // With no explicit sink, CSV goes to stdout so the tool is useful bare.
  if (options.sinks.empty()) {
    csv_sink = std::make_unique<CsvResultSink>(std::cout);
    options.sinks.push_back(csv_sink.get());
  }
  if (!quiet) {
    options.progress = &std::cerr;
  }

  const std::vector<SweepOutcome> outcomes = RunSweep(points, options);

  if (!quiet) {
    // Compact human summary: one line per point on stderr-adjacent stdout
    // would fight the CSV default, so summarize only when not writing there.
    const bool stdout_taken = csv_path == "-" || jsonl_path == "-" ||
                              (csv_path.empty() && jsonl_path.empty());
    if (!stdout_taken) {
      TablePrinter table({"Point", "Workload", "Device", "Util (%)", "Energy (J)",
                          "Write Mean (ms)", "Erases"});
      for (const SweepOutcome& outcome : outcomes) {
        table.BeginRow()
            .Cell(static_cast<std::int64_t>(outcome.point.index))
            .Cell(outcome.point.workload)
            .Cell(outcome.point.config.device.name)
            .Cell(outcome.point.config.flash_utilization * 100.0, 0)
            .Cell(outcome.result.total_energy_j(), 1)
            .Cell(outcome.result.write_response_ms.mean(), 2)
            .Cell(static_cast<std::int64_t>(outcome.result.counters.segment_erases));
      }
      table.Print(std::cout);
    }
    std::fprintf(stderr, "mobisim_sweep: %zu points done (%zu threads)\n",
                 outcomes.size(),
                 options.threads == 0 ? ThreadPool::DefaultThreadCount() : options.threads);
  }
  return 0;
}
