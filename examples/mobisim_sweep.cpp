// Parallel experiment-sweep driver: describe a grid over devices, workloads,
// flash utilization, DRAM/SRAM sizes, cleaning policies and seeds, fan it
// out across cores, and export one structured row per point.
//
//   mobisim_sweep [--spec FILE] [key=value ...] [--list] [--shard K/N]
//                 [common flags: --jobs/--serial --seed --replicas
//                  --jsonl --csv --db/--name/--sha --quiet]
//
// key=value tokens use the spec syntax of src/runner/experiment_spec.h
// (sweep lists like `workloads=mac,dos` plus every base-config key from
// src/core/config_text.h).  Lists given on the command line override the
// spec file.  Examples:
//
//   # Figure 2 grid, all cores, JSONL to a file:
//   mobisim_sweep workloads=mac,dos,hp device=intel-datasheet
//       'utilizations=0.4,0.5,0.6,0.7,0.8,0.85,0.9,0.95' --jsonl fig2.jsonl
//
//   # 24-point device x workload x utilization grid, CSV to stdout:
//   mobisim_sweep devices=intel-datasheet,sdp5-datasheet workloads=mac,dos
//       'utilizations=0.4,0.5,0.6,0.7,0.8,0.9' --csv -
//
// --shard K/N keeps only points with index % N == K (indices stay global, so
// shards from different machines merge by concatenating their JSONL).
//
// --merge DIR runs no sweep: it merges a directory of shard JSONL outputs
// (or a sweepd spool) into one run — rows in global point-index order,
// exact duplicates collapsed by point fingerprint, clean retry rows
// replacing `_error` rows — and exports it through the usual sinks (JSONL
// to stdout when none are given).  The same code path serves
// `mobisim_sweepd merge`, so the two tools cannot disagree about dedup.
//
// --matrix FILE additionally renders the run as a side-by-side ablation
// matrix (markdown, one table per metric, a column per policy tuple) to
// FILE ("-" for stdout).  Works in both sweep and --merge modes, so a
// policy-grid sweep farmed out over sweepd workers renders the same matrix
// as a serial run.
//
// --list prints the enumerated grid without running it, then the registered
// benches of the canned paper experiments (run those with `mobisim_bench`).
//
// --db lands the run in a bench_db result store as
// <DIR>/<sha>/<NAME>.jsonl with a metadata header (spec fingerprint, date,
// host) and a manifest entry.  JSONL output (--jsonl and --db files)
// starts with the same metadata header line; readers recognise it by its
// leading "_meta" key.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/bench_db/bench_db.h"
#include "src/core/config_text.h"
#include "src/runner/ablation.h"
#include "src/runner/bench_registry.h"
#include "src/runner/cli_options.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/sweepd/merge.h"
#include "src/trace/trace_cache.h"
#include "src/util/parse.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace {

using namespace mobisim;

int Usage() {
  std::fprintf(stderr,
               "usage: mobisim_sweep [--spec FILE] [key=value ...] [--list]\n"
               "                     [--shard K/N] [--merge DIR] [--matrix FILE]\n"
               "                     [common flags]\n"
               "%s"
               "sweep keys: devices workloads utilizations dram_sizes sram_sizes\n"
               "            backends ftl cleaning_policies power_loss_intervals\n"
               "            seeds scale replicas  (comma lists)\n"
               "plus any base-config key from src/core/config_text.h\n",
               CommonFlagsUsage());
  return 2;
}

// Writes the rendered ablation matrix to `path` ("-" for stdout).  Returns
// false (with stderr diagnostics) when the file cannot be written — a sweep
// whose requested matrix is lost should not exit 0.
bool WriteMatrix(const std::string& path, const std::vector<ResultRow>& rows,
                 bool quiet) {
  const std::string matrix = RenderAblationMatrix(rows);
  if (path == "-") {
    std::fwrite(matrix.data(), 1, matrix.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "error: cannot open matrix file %s\n", path.c_str());
    return false;
  }
  out << matrix;
  out.close();
  if (!out) {
    std::fprintf(stderr, "error: failed writing matrix file %s\n", path.c_str());
    return false;
  }
  if (!quiet) {
    std::fprintf(stderr, "mobisim_sweep: wrote ablation matrix to %s\n",
                 path.c_str());
  }
  return true;
}

int RunMain(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  CliOptions common;
  std::string error;
  if (!ExtractCommonFlags(&args, &common, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }

  ExperimentSpec spec;
  std::size_t shard = 0;
  std::size_t shards = 1;
  bool list_only = false;
  std::string merge_dir;
  std::string matrix_path;

  std::vector<std::string> assignments;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--spec") {
      if (i + 1 >= args.size()) {
        return Usage();
      }
      std::ifstream in(args[++i]);
      if (!in) {
        std::fprintf(stderr, "cannot open spec %s\n", args[i].c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      const auto parsed = ParseExperimentSpec(buffer.str(), &error);
      if (!parsed) {
        // The parser reports line and key; add the file so multi-spec
        // invocations point at the right one.
        std::fprintf(stderr, "spec error in %s: %s\n", args[i].c_str(), error.c_str());
        return 1;
      }
      spec = *parsed;
    } else if (args[i] == "--shard") {
      // Strict K/N validation with a named error: a typo'd shard must never
      // silently run the wrong (or an empty) slice of the grid.
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: --shard requires a K/N argument\n");
        return Usage();
      }
      if (!ParseShardSpec(args[++i], &shard, &shards, &error)) {
        std::fprintf(stderr, "error: --shard: %s\n", error.c_str());
        return Usage();
      }
    } else if (args[i] == "--merge") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: --merge requires a directory argument\n");
        return Usage();
      }
      merge_dir = args[++i];
    } else if (args[i] == "--matrix") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: --matrix requires a file argument\n");
        return Usage();
      }
      matrix_path = args[++i];
    } else if (args[i] == "--list") {
      list_only = true;
    } else if (args[i].find('=') != std::string::npos) {
      assignments.push_back(args[i]);
    } else {
      std::fprintf(stderr, "error: unrecognised argument '%s'\n", args[i].c_str());
      return Usage();
    }
  }
  if (!merge_dir.empty()) {
    // Merge mode runs no sweep: collect shard outputs, dedup, export.
    if (!assignments.empty() || shards > 1 || list_only) {
      std::fprintf(stderr, "error: --merge takes no spec, shard, or list flags\n");
      return Usage();
    }
    const auto merged = MergeShardDir(merge_dir, &error);
    if (!merged) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (!matrix_path.empty() &&
        !WriteMatrix(matrix_path, merged->rows, common.quiet)) {
      return 1;
    }
    return ExportMergedRun(*merged, common,
                           common.db_name.empty() ? "sweep" : common.db_name, "",
                           "mobisim_sweep");
  }

  for (const std::string& token : assignments) {
    const std::size_t eq = token.find('=');
    if (!ApplySpecAssignment(&spec, token.substr(0, eq), token.substr(eq + 1), &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
  // Common-surface overrides land in the spec itself so the fingerprint and
  // the enumerated points both reflect them.
  if (common.seed) {
    spec.seeds = {*common.seed};
  }
  if (common.replicas) {
    spec.replicas = *common.replicas;
  }

  // Keep global indices: shards from different machines merge by
  // concatenation and still join by point index.
  std::vector<ExperimentPoint> points = FilterShard(EnumerateGrid(spec), shard, shards);
  if (!common.quiet) {
    std::fprintf(stderr, "mobisim_sweep: %s\n", DescribeSpec(spec).c_str());
    if (shards > 1) {
      std::fprintf(stderr, "mobisim_sweep: shard %zu/%zu -> %zu points\n", shard,
                   shards, points.size());
    }
  }
  if (list_only) {
    for (const ExperimentPoint& point : points) {
      std::printf("%4zu  %-5s seed=%llu  %s\n", point.index, point.workload.c_str(),
                  static_cast<unsigned long long>(point.seed),
                  DescribeConfig(point.config).c_str());
    }
    std::printf("\nregistered benches (run with `mobisim_bench run <name>`):\n");
    for (const BenchDef* def : AllBenches()) {
      std::printf("  %-24s %s\n", def->name.c_str(), def->description.c_str());
    }
    return 0;
  }

  RunMeta meta;
  meta.spec_name = common.db_name.empty() ? "sweep" : common.db_name;
  meta.spec_hash = SpecFingerprint(spec);
  meta.git_sha = common.git_sha;
  meta.created = NowUtc();
  meta.host = HostName();
  meta.points = points.size();

  SinkSet sinks;
  if (!sinks.Open(common, meta, SweepCsvHeader(), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // With no explicit sink, CSV goes to stdout so the tool is useful bare
  // (unless --db already captures the run).
  if (sinks.sinks().empty() && common.db_root.empty()) {
    sinks.AddStdoutCsv(SweepCsvHeader());
  }

  const std::unique_ptr<TraceCache> trace_cache = OpenTraceCache(common);

  SweepOptions options;
  options.threads = common.jobs;
  options.sinks = sinks.sinks();
  options.trace_cache = trace_cache.get();
  if (!common.quiet) {
    options.progress = &std::cerr;
  }

  const std::vector<SweepOutcome> outcomes = RunSweep(points, options);
  sinks.Finish();
  if (!matrix_path.empty()) {
    std::vector<ResultRow> matrix_rows;
    matrix_rows.reserve(outcomes.size());
    for (const SweepOutcome& outcome : outcomes) {
      matrix_rows.push_back(outcome.row);
    }
    if (!WriteMatrix(matrix_path, matrix_rows, common.quiet)) {
      return 1;
    }
  }
  if (trace_cache != nullptr && !common.quiet) {
    std::fprintf(stderr, "mobisim_sweep: %s\n", trace_cache->StatsLine().c_str());
  }

  // Failed points were exported as `_error` rows; surface them here and make
  // the exit status reflect that the sweep is incomplete.
  std::size_t failed = 0;
  for (const SweepOutcome& outcome : outcomes) {
    if (outcome.failed) {
      ++failed;
      std::fprintf(stderr, "mobisim_sweep: point %zu failed: %s\n",
                   outcome.point.index, outcome.error.c_str());
    }
  }

  if (!common.db_root.empty()) {
    std::vector<ResultRow> rows;
    rows.reserve(outcomes.size());
    for (const SweepOutcome& outcome : outcomes) {
      rows.push_back(outcome.row);
    }
    BenchDb db(common.db_root);
    const auto stored = db.StoreRun(meta, rows, &error);
    if (!stored) {
      std::fprintf(stderr, "error storing run: %s\n", error.c_str());
      return 1;
    }
    if (!common.quiet) {
      std::fprintf(stderr, "mobisim_sweep: stored %s (spec hash %s)\n",
                   stored->c_str(), meta.spec_hash.c_str());
    }
  }

  if (!common.quiet) {
    // Compact human summary: one line per point on stderr-adjacent stdout
    // would fight the CSV default, so summarize only when not writing there.
    const bool stdout_taken = common.csv_path == "-" || common.jsonl_path == "-" ||
                              (common.csv_path.empty() && common.jsonl_path.empty());
    if (!stdout_taken) {
      TablePrinter table({"Point", "Workload", "Device", "Util (%)", "Energy (J)",
                          "Write Mean (ms)", "Erases"});
      for (const SweepOutcome& outcome : outcomes) {
        if (outcome.failed) {
          continue;
        }
        table.BeginRow()
            .Cell(static_cast<std::int64_t>(outcome.point.index))
            .Cell(outcome.point.workload)
            .Cell(outcome.point.config.device.name)
            .Cell(outcome.point.config.flash_utilization * 100.0, 0)
            .Cell(outcome.result.total_energy_j(), 1)
            .Cell(outcome.result.write_response_ms.mean(), 2)
            .Cell(static_cast<std::int64_t>(outcome.result.counters.segment_erases));
      }
      table.Print(std::cout);
    }
    std::fprintf(stderr, "mobisim_sweep: %zu points done (%zu threads)%s\n",
                 outcomes.size(),
                 options.threads == 0 ? ThreadPool::DefaultThreadCount() : options.threads,
                 failed > 0 ? ", with failures" : "");
  }
  return failed > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return RunMain(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mobisim_sweep: fatal: %s\n", e.what());
    return 1;
  }
}
