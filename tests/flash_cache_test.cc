// Tests for the flash-as-disk-cache system (Marsh et al. architecture).
#include <gtest/gtest.h>

#include "src/fcache/flash_cache_system.h"

namespace mobisim {
namespace {

FlashCacheConfig SmallConfig() {
  FlashCacheConfig config;
  config.flash_bytes = 1024 * 1024;
  config.dram_bytes = 0;  // isolate the flash-cache behaviour
  config.block_bytes = 1024;
  return config;
}

BlockRecord Rec(SimTime t, OpType op, std::uint64_t lba, std::uint32_t count) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = 1;
  return rec;
}

TEST(FlashCacheTest, ReadMissGoesToDiskThenHitsFlash) {
  FlashCacheSystem system(SmallConfig());
  const SimTime miss = system.Handle(Rec(0, OpType::kRead, 0, 2));
  EXPECT_GT(miss, UsFromMs(20));  // disk service
  EXPECT_EQ(system.flash_misses(), 1u);
  const SimTime t2 = kUsPerSec;
  const SimTime hit = system.Handle(Rec(t2, OpType::kRead, 0, 2));
  EXPECT_LT(hit, UsFromMs(5));  // flash service
  EXPECT_EQ(system.flash_hits(), 1u);
}

TEST(FlashCacheTest, WritesCompleteInFlashWithoutWakingDisk) {
  FlashCacheSystem system(SmallConfig());
  // Let the disk fall asleep first.
  const SimTime t = 10 * kUsPerSec;
  const SimTime response = system.Handle(Rec(t, OpType::kWrite, 0, 2));
  EXPECT_LT(response, UsFromMs(30));  // two flash block writes, no spin-up
  EXPECT_EQ(system.disk_counters().spinups, 0u);
  EXPECT_EQ(system.dirty_blocks(), 2u);
}

TEST(FlashCacheTest, DirtyThresholdTriggersDestage) {
  FlashCacheConfig config = SmallConfig();
  config.destage_threshold = 0.05;
  FlashCacheSystem system(config);
  SimTime t = 10 * kUsPerSec;
  for (int i = 0; i < 64; ++i) {
    system.Handle(Rec(t, OpType::kWrite, static_cast<std::uint64_t>(i) * 4, 4));
    t += kUsPerSec;
  }
  EXPECT_GT(system.destages(), 0u);
  EXPECT_GT(system.disk_counters().writes, 0u);
  // After a destage the data is clean but still cached.
  EXPECT_GT(system.cached_blocks(), 0u);
}

TEST(FlashCacheTest, EvictionRecyclesSlots) {
  FlashCacheConfig config = SmallConfig();
  config.flash_bytes = 256 * 1024;  // tiny cache: 2 segments
  config.flash_usable_fraction = 0.5;
  FlashCacheSystem system(config);
  SimTime t = 0;
  // Stream far more distinct blocks than the cache holds.
  for (int i = 0; i < 1000; ++i) {
    system.Handle(Rec(t, OpType::kRead, static_cast<std::uint64_t>(i), 1));
    t += kUsPerSec / 10;
  }
  EXPECT_LE(system.cached_blocks(), 128u);
  EXPECT_GT(system.flash_misses(), 900u);
}

TEST(FlashCacheTest, EraseDropsCachedBlocks) {
  FlashCacheSystem system(SmallConfig());
  system.Handle(Rec(0, OpType::kWrite, 0, 4));
  EXPECT_EQ(system.cached_blocks(), 4u);
  system.Handle(Rec(1000, OpType::kErase, 0, 4));
  EXPECT_EQ(system.cached_blocks(), 0u);
  EXPECT_EQ(system.dirty_blocks(), 0u);
}

TEST(FlashCacheTest, FinishDestagesDirtyData) {
  FlashCacheSystem system(SmallConfig());
  system.Handle(Rec(10 * kUsPerSec, OpType::kWrite, 0, 4));
  EXPECT_EQ(system.dirty_blocks(), 4u);
  system.Finish(20 * kUsPerSec);
  EXPECT_EQ(system.dirty_blocks(), 0u);
  EXPECT_GT(system.disk_counters().writes, 0u);
}

TEST(FlashCacheTest, EnergyAccountedAcrossComponents) {
  FlashCacheSystem system(SmallConfig());
  system.Handle(Rec(0, OpType::kRead, 0, 2));
  system.Handle(Rec(kUsPerSec, OpType::kWrite, 10, 2));
  system.Finish(30 * kUsPerSec);
  EXPECT_GT(system.disk_energy_j(), 0.0);
  EXPECT_GT(system.flash_energy_j(), 0.0);
  EXPECT_GT(system.total_energy_j(),
            system.disk_energy_j());  // flash + dram contribute
}

TEST(FlashCacheTest, CacheKeepsDiskAsleepLongerThanBaseline) {
  // Compare spin-up counts for a read-heavy pattern with strong reuse.
  FlashCacheConfig config = SmallConfig();
  FlashCacheSystem cached(config);
  SimTime t = 0;
  std::uint64_t lba = 0;
  for (int i = 0; i < 200; ++i) {
    // 20-s gaps guarantee the disk sleeps between misses; reuse of a small
    // set means the flash absorbs almost everything after warmup.
    cached.Handle(Rec(t, OpType::kRead, lba, 1));
    lba = (lba + 1) % 8;
    t += 20 * kUsPerSec;
  }
  // 8 misses fill the cache; everything else hits flash.
  EXPECT_LE(cached.disk_counters().spinups, 9u);
  EXPECT_GE(cached.flash_hits(), 190u);
}

}  // namespace
}  // namespace mobisim
