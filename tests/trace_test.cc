// Unit tests for the trace layer: records, serialization, block mapping, and
// statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/block_mapper.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_record.h"
#include "src/trace/trace_stats.h"

namespace mobisim {
namespace {

Trace SmallTrace() {
  Trace trace;
  trace.name = "small";
  trace.block_bytes = 1024;
  trace.records = {
      {0, OpType::kWrite, /*file=*/1, /*offset=*/0, /*size=*/4096},
      {UsFromSec(1), OpType::kRead, 1, 1024, 2048},
      {UsFromSec(2), OpType::kWrite, 2, 0, 1024},
      {UsFromSec(4), OpType::kErase, 1, 0, 0},
      {UsFromSec(5), OpType::kRead, 2, 0, 512},
  };
  return trace;
}

TEST(TraceIoTest, RoundTrip) {
  const Trace trace = SmallTrace();
  std::stringstream stream;
  WriteTrace(trace, stream);
  std::string error;
  const auto loaded = ReadTrace(stream, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->name, trace.name);
  EXPECT_EQ(loaded->block_bytes, trace.block_bytes);
  ASSERT_EQ(loaded->records.size(), trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(loaded->records[i].time_us, trace.records[i].time_us);
    EXPECT_EQ(loaded->records[i].op, trace.records[i].op);
    EXPECT_EQ(loaded->records[i].file_id, trace.records[i].file_id);
    EXPECT_EQ(loaded->records[i].offset, trace.records[i].offset);
    EXPECT_EQ(loaded->records[i].size_bytes, trace.records[i].size_bytes);
  }
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::stringstream stream("not a trace\n");
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceIoTest, RejectsMalformedRecord) {
  std::stringstream stream("mobisim-trace v1\nblock 1024\n12 x 1 0 0\n");
  EXPECT_FALSE(ReadTrace(stream).has_value());
}

TEST(TraceIoTest, RejectsMissingBlockSize) {
  std::stringstream stream("mobisim-trace v1\nname foo\n");
  EXPECT_FALSE(ReadTrace(stream).has_value());
}

TEST(BlockMapperTest, AssignsDisjointExtents) {
  const BlockTrace blocks = BlockMapper::Map(SmallTrace());
  // File 1 reaches 4 KB = 4 blocks, file 2 reaches 1 block.
  EXPECT_EQ(blocks.total_blocks, 5u);
  EXPECT_EQ(blocks.records.size(), 5u);
  // First record: file 1 blocks 0..3.
  EXPECT_EQ(blocks.records[0].lba, 0u);
  EXPECT_EQ(blocks.records[0].block_count, 4u);
  // Second: offset 1024 size 2048 -> blocks 1..2.
  EXPECT_EQ(blocks.records[1].lba, 1u);
  EXPECT_EQ(blocks.records[1].block_count, 2u);
  // Third: file 2 gets the next extent.
  EXPECT_EQ(blocks.records[2].lba, 4u);
  EXPECT_EQ(blocks.records[2].block_count, 1u);
}

TEST(BlockMapperTest, EraseCoversWholeExtent) {
  const BlockTrace blocks = BlockMapper::Map(SmallTrace());
  const BlockRecord& erase = blocks.records[3];
  EXPECT_EQ(erase.op, OpType::kErase);
  EXPECT_EQ(erase.lba, 0u);
  EXPECT_EQ(erase.block_count, 4u);
}

TEST(BlockMapperTest, SubBlockAccessRoundsUp) {
  const BlockTrace blocks = BlockMapper::Map(SmallTrace());
  const BlockRecord& read = blocks.records[4];  // 512 bytes at offset 0
  EXPECT_EQ(read.block_count, 1u);
}

TEST(BlockMapperTest, UnalignedAccessSpansBlocks) {
  Trace trace;
  trace.block_bytes = 1024;
  // 1024 bytes starting at offset 512 touches blocks 0 and 1.
  trace.records = {{0, OpType::kRead, 1, 512, 1024}};
  const BlockTrace blocks = BlockMapper::Map(trace);
  EXPECT_EQ(blocks.records[0].block_count, 2u);
  EXPECT_EQ(blocks.total_blocks, 2u);
}

TEST(TraceIoTest, FilePathRoundTrip) {
  const Trace trace = SmallTrace();
  const std::string path = ::testing::TempDir() + "/mobisim_trace_io_test.trc";
  ASSERT_TRUE(WriteTraceFile(trace, path));
  std::string error;
  const auto loaded = ReadTraceFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->records.size(), trace.records.size());
  // Missing files are reported, not crashed on.
  EXPECT_FALSE(ReadTraceFile("/nonexistent/dir/x.trc", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceStatsTest, ComputesTable3Shape) {
  const TraceStats stats = ComputeTraceStats(SmallTrace());
  EXPECT_EQ(stats.read_count, 2u);
  EXPECT_EQ(stats.write_count, 2u);
  EXPECT_EQ(stats.erase_count, 1u);
  EXPECT_DOUBLE_EQ(stats.read_fraction, 0.5);
  EXPECT_DOUBLE_EQ(stats.duration_sec, 5.0);
  // Distinct KB: file1 bytes 0..4095 (4 KB) + file2 0..1023 (1 KB).
  EXPECT_EQ(stats.distinct_kbytes, 5u);
  // Mean read size in blocks: (2 + 1) / 2.
  EXPECT_DOUBLE_EQ(stats.read_blocks.mean(), 1.5);
  // Inter-arrival: 1,1,2,1 seconds.
  EXPECT_DOUBLE_EQ(stats.interarrival_sec.mean(), 1.25);
  EXPECT_DOUBLE_EQ(stats.interarrival_sec.max(), 2.0);
}

TEST(TraceStatsTest, SkipFractionDropsHead) {
  const TraceStats stats = ComputeTraceStats(SmallTrace(), 0.4);  // drop first 2
  EXPECT_EQ(stats.read_count + stats.write_count + stats.erase_count, 3u);
}

TEST(TraceStatsTest, EmptyTrace) {
  Trace trace;
  trace.block_bytes = 512;
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.read_count, 0u);
  EXPECT_EQ(stats.distinct_kbytes, 0u);
}

}  // namespace
}  // namespace mobisim
