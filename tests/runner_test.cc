// Tests for the src/runner sweep engine: grid enumeration, parallel-vs-serial
// result equality, JSONL/CSV round-trips, and thread-pool behaviour under
// exceptions.
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/result_io.h"
#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/util/thread_pool.h"

namespace mobisim {
namespace {

// A small but non-trivial grid: 2 devices x 1 workload x 3 utilizations x
// 2 seeds = 12 points, synth workload at a tiny scale so the suite stays fast.
ExperimentSpec SmallSpec() {
  ExperimentSpec spec;
  spec.base = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  spec.devices = {IntelCardDatasheet(), Sdp5Datasheet()};
  spec.workloads = {"synth"};
  spec.utilizations = {0.40, 0.80, 0.95};
  spec.seeds = {1, 7};
  spec.scale = 0.02;
  return spec;
}

TEST(ExperimentSpecTest, GridSizeCountsEmptyDimensionsAsOne) {
  ExperimentSpec spec;
  EXPECT_EQ(GridSize(spec), 1u);
  spec.workloads = {"mac", "dos"};
  EXPECT_EQ(GridSize(spec), 2u);
  spec.utilizations = {0.4, 0.6, 0.8};
  EXPECT_EQ(GridSize(spec), 6u);
  spec.seeds = {1, 2, 3, 4};
  EXPECT_EQ(GridSize(spec), 24u);
}

TEST(ExperimentSpecTest, EnumerationOrderNestsSeedFastest) {
  ExperimentSpec spec = SmallSpec();
  const std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  ASSERT_EQ(points.size(), 12u);
  ASSERT_EQ(points.size(), GridSize(spec));

  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
  // Seed is the innermost dimension...
  EXPECT_EQ(points[0].seed, 1u);
  EXPECT_EQ(points[1].seed, 7u);
  // ...then utilization...
  EXPECT_DOUBLE_EQ(points[0].config.flash_utilization, 0.40);
  EXPECT_DOUBLE_EQ(points[2].config.flash_utilization, 0.80);
  EXPECT_DOUBLE_EQ(points[4].config.flash_utilization, 0.95);
  // ...and device is outermost: first half Intel, second half SDP5.
  EXPECT_EQ(points[0].config.device.name, IntelCardDatasheet().name);
  EXPECT_EQ(points[6].config.device.name, Sdp5Datasheet().name);
  EXPECT_EQ(points[11].config.device.name, Sdp5Datasheet().name);
}

TEST(ExperimentSpecTest, ParsesSweepAndBaseKeys) {
  std::string error;
  const auto spec = ParseExperimentSpec(
      "# sweep spec\n"
      "device = intel-datasheet\n"
      "devices = intel-datasheet, sdp5-datasheet\n"
      "workloads = mac, dos\n"
      "utilizations = 0.4, 0.5, 0.6, 0.7, 0.8, 0.9\n"
      "dram_sizes = 0, 2m\n"
      "seeds = 1, 2, 3\n"
      "scale = 0.25\n"
      "write_back = true\n",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->devices.size(), 2u);
  EXPECT_EQ(spec->workloads.size(), 2u);
  EXPECT_EQ(spec->utilizations.size(), 6u);
  EXPECT_EQ(spec->dram_sizes.size(), 2u);
  EXPECT_EQ(spec->dram_sizes[1], 2u * 1024 * 1024);
  EXPECT_EQ(spec->seeds.size(), 3u);
  EXPECT_DOUBLE_EQ(spec->scale, 0.25);
  EXPECT_TRUE(spec->base.write_back_cache);
  EXPECT_EQ(GridSize(*spec), 2u * 2 * 6 * 2 * 3);
}

TEST(ExperimentSpecTest, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(ParseExperimentSpec("devices = warp-drive\n", &error).has_value());
  EXPECT_NE(error.find("warp-drive"), std::string::npos);
  EXPECT_FALSE(ParseExperimentSpec("workloads = mac, vax\n", &error).has_value());
  EXPECT_FALSE(ParseExperimentSpec("utilizations = 1.5\n", &error).has_value());
  EXPECT_FALSE(ParseExperimentSpec("seeds = one\n", &error).has_value());
  EXPECT_FALSE(ParseExperimentSpec("scale = -2\n", &error).has_value());
  EXPECT_FALSE(ParseExperimentSpec("no equals sign\n", &error).has_value());
}

TEST(ExperimentSpecTest, RejectsMalformedNumbersWithLineAndKey) {
  std::string error;
  // NaN passes naive `< 0 || >= 1` range checks (both comparisons are
  // false), 1e999 overflows the double parse, and "-1" silently wraps
  // through an unsigned parse to 2^64-1.  All must be clean spec errors.
  EXPECT_FALSE(ParseExperimentSpec("scale = nan\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("scale"), std::string::npos) << error;

  EXPECT_FALSE(ParseExperimentSpec("scale = 1e999\n", &error).has_value());
  EXPECT_FALSE(ParseExperimentSpec("utilizations = nan\n", &error).has_value());
  EXPECT_FALSE(ParseExperimentSpec("power_loss_intervals = inf\n", &error).has_value());

  EXPECT_FALSE(ParseExperimentSpec("seeds = -1\n", &error).has_value());
  EXPECT_NE(error.find("-1"), std::string::npos) << error;
  EXPECT_FALSE(ParseExperimentSpec("seeds = abc\n", &error).has_value());
  EXPECT_FALSE(ParseExperimentSpec("replicas = 1x\n", &error).has_value());

  // Errors report the offending line in multi-line specs.
  EXPECT_FALSE(
      ParseExperimentSpec("workloads = mac\nseeds = 1, -1\n", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// The core guarantee of the engine: fanning a grid across threads changes
// nothing about the numbers.  Counters must match bitwise; floats are
// compared with a tolerance (they are in fact identical too, since each
// point's computation is untouched by scheduling, but the contract only
// promises tolerance).
TEST(SweepRunnerTest, ParallelMatchesSerial) {
  const ExperimentSpec spec = SmallSpec();

  SweepOptions serial;
  serial.threads = 1;
  const std::vector<SweepOutcome> serial_outcomes = RunSweep(spec, serial);

  SweepOptions parallel;
  parallel.threads = 4;
  const std::vector<SweepOutcome> parallel_outcomes = RunSweep(spec, parallel);

  ASSERT_EQ(serial_outcomes.size(), parallel_outcomes.size());
  for (std::size_t i = 0; i < serial_outcomes.size(); ++i) {
    const SimResult& s = serial_outcomes[i].result;
    const SimResult& p = parallel_outcomes[i].result;
    EXPECT_EQ(s.workload, p.workload);
    EXPECT_EQ(s.device, p.device);
    // Bitwise on counters.
    EXPECT_EQ(s.counters.reads, p.counters.reads);
    EXPECT_EQ(s.counters.writes, p.counters.writes);
    EXPECT_EQ(s.counters.bytes_read, p.counters.bytes_read);
    EXPECT_EQ(s.counters.bytes_written, p.counters.bytes_written);
    EXPECT_EQ(s.counters.segment_erases, p.counters.segment_erases);
    EXPECT_EQ(s.counters.blocks_copied, p.counters.blocks_copied);
    EXPECT_EQ(s.counters.write_stalls, p.counters.write_stalls);
    EXPECT_EQ(s.record_count, p.record_count);
    EXPECT_EQ(s.dram_hits, p.dram_hits);
    EXPECT_EQ(s.dram_misses, p.dram_misses);
    // Tolerance on floats.
    EXPECT_NEAR(s.total_energy_j(), p.total_energy_j(), 1e-9);
    EXPECT_NEAR(s.write_response_ms.mean(), p.write_response_ms.mean(), 1e-12);
    EXPECT_NEAR(s.read_response_ms.mean(), p.read_response_ms.mean(), 1e-12);
    EXPECT_NEAR(s.duration_sec, p.duration_sec, 1e-12);
    EXPECT_NEAR(s.max_segment_erases, p.max_segment_erases, 1e-12);
  }
}

TEST(SweepRunnerTest, SinksReceiveRowsInPointOrder) {
  const ExperimentSpec spec = SmallSpec();
  std::ostringstream jsonl_out;
  JsonlResultSink jsonl(jsonl_out);
  SweepOptions options;
  options.threads = 4;
  options.sinks.push_back(&jsonl);
  const std::vector<SweepOutcome> outcomes = RunSweep(spec, options);

  std::istringstream lines(jsonl_out.str());
  std::string line;
  std::size_t expected_point = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto row = RowFromJson(line, &error);
    ASSERT_TRUE(row.has_value()) << error << " in: " << line;
    EXPECT_EQ(static_cast<std::size_t>(row->Number("point", -1)), expected_point);
    ++expected_point;
  }
  EXPECT_EQ(expected_point, outcomes.size());
}

TEST(SweepRunnerTest, HpRunsWithoutDramLikeRunNamedWorkload) {
  ExperimentSpec spec;
  spec.base = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
  spec.workloads = {"hp"};
  spec.scale = 0.002;
  SweepOptions options;
  options.threads = 1;
  const auto outcomes = RunSweep(spec, options);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].point.config.dram_bytes, 0u);
  EXPECT_EQ(outcomes[0].result.dram_hits + outcomes[0].result.dram_misses, 0u);
}

SimResult MakeResult() {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 256 * 1024);
  return RunNamedWorkload("synth", config, 0.02);
}

TEST(ResultIoTest, JsonlRoundTrip) {
  const SimResult result = MakeResult();
  const ResultRow row = ResultToRow(result);
  const std::string json = RowToJson(row);

  std::string error;
  const auto parsed = RowFromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->fields.size(), row.fields.size());
  for (std::size_t i = 0; i < row.fields.size(); ++i) {
    EXPECT_EQ(parsed->fields[i].key, row.fields[i].key);
    EXPECT_EQ(parsed->fields[i].value, row.fields[i].value);
    EXPECT_EQ(parsed->fields[i].quoted, row.fields[i].quoted);
  }
  // Bitwise on counters (integers survive the text round trip exactly)...
  EXPECT_EQ(static_cast<std::uint64_t>(parsed->Number("segment_erases", -1)),
            result.counters.segment_erases);
  EXPECT_EQ(static_cast<std::uint64_t>(parsed->Number("record_count", -1)),
            result.record_count);
  // ...tolerance on floats (%.17g makes doubles round-trip exactly as well).
  EXPECT_NEAR(parsed->Number("total_energy_j"), result.total_energy_j(), 1e-12);
  EXPECT_NEAR(parsed->Number("write_ms_mean"), result.write_response_ms.mean(), 1e-12);
  EXPECT_EQ(parsed->Text("workload"), result.workload);
  EXPECT_EQ(parsed->Text("device"), result.device);
  // Re-serializing reproduces the line byte for byte.
  EXPECT_EQ(RowToJson(*parsed), json);
}

TEST(ResultIoTest, CsvRoundTrip) {
  const SimResult result = MakeResult();
  const ResultRow row = ResultToRow(result);
  const std::string header = RowToCsvHeader(row);
  const std::string line = RowToCsvLine(row);

  std::string error;
  const auto parsed = RowFromCsv(header, line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->fields.size(), row.fields.size());
  for (std::size_t i = 0; i < row.fields.size(); ++i) {
    EXPECT_EQ(parsed->fields[i].key, row.fields[i].key);
    EXPECT_EQ(parsed->fields[i].value, row.fields[i].value);
  }
  EXPECT_EQ(RowToCsvHeader(*parsed), header);
  EXPECT_EQ(RowToCsvLine(*parsed), line);
}

TEST(ResultIoTest, JsonEscapesAndRejectsMalformedInput) {
  ResultRow row;
  row.AddText("name", "quote \" backslash \\ newline \n done");
  const std::string json = RowToJson(row);
  std::string error;
  const auto parsed = RowFromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Text("name"), "quote \" backslash \\ newline \n done");

  EXPECT_FALSE(RowFromJson("", &error).has_value());
  EXPECT_FALSE(RowFromJson("{\"a\":1", &error).has_value());
  EXPECT_FALSE(RowFromJson("{\"a\":{\"nested\":1}}", &error).has_value());
  EXPECT_FALSE(RowFromJson("{\"a\":1} trailing", &error).has_value());
}

TEST(ResultIoTest, CsvQuotesCommasAndQuotes) {
  ResultRow row;
  row.AddText("label", "a,b \"c\"");
  row.AddInt("n", 42);
  const std::string header = RowToCsvHeader(row);
  const std::string line = RowToCsvLine(row);
  EXPECT_EQ(line, "\"a,b \"\"c\"\"\",42");
  std::string error;
  const auto parsed = RowFromCsv(header, line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Text("label"), "a,b \"c\"");
  EXPECT_EQ(parsed->Number("n"), 42.0);
}

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitRethrowsFirstExceptionAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&completed, i] {
      if (i % 4 == 0) {
        throw std::runtime_error("job failed");
      }
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Non-throwing jobs all ran despite the failures.
  EXPECT_EQ(completed.load(), 12);
  // The pool remains usable: the error was cleared by Wait.
  pool.Submit([&completed] { completed.fetch_add(1); });
  pool.Wait();  // must not throw or hang
  EXPECT_EQ(completed.load(), 13);
}

TEST(ThreadPoolTest, DestructionDrainsQueueWithoutWait) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count, i] {
        if (i == 10) {
          throw std::runtime_error("boom");  // swallowed by the destructor
        }
        count.fetch_add(1);
      });
    }
    // No Wait(): destructor must finish the queue and join cleanly.
  }
  EXPECT_EQ(count.load(), 49);
}

TEST(ThreadPoolTest, ParallelForCoversRangeSeriallyAndInParallel) {
  std::vector<int> hits(200, 0);
  ParallelFor(nullptr, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  ThreadPool pool(4);
  ParallelFor(&pool, hits.size(), [&hits](std::size_t i) { hits[i] += 2; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 3) << "index " << i;
  }
}

}  // namespace
}  // namespace mobisim
