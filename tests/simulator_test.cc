// Tests for the trace-driven simulator: warm-start handling, energy
// attribution, determinism, and cross-device orderings the paper reports.
#include <gtest/gtest.h>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"

namespace mobisim {
namespace {

BlockTrace TinyTrace() {
  const Trace trace = GenerateNamedWorkload("synth", 0.1);
  return BlockMapper::Map(trace);
}

TEST(SimulatorTest, WarmFractionSplitsRecords) {
  const BlockTrace trace = TinyTrace();
  SimConfig config = MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024);
  config.warm_fraction = 0.25;
  const SimResult result = RunSimulation(trace, config);
  EXPECT_EQ(result.warm_record_count, trace.records.size() / 4);
  std::uint64_t post_warm_rw = 0;
  for (std::uint64_t i = result.warm_record_count; i < trace.records.size(); ++i) {
    post_warm_rw += trace.records[i].op != OpType::kErase ? 1 : 0;
  }
  EXPECT_EQ(result.overall_response_ms.count(), post_warm_rw);
}

TEST(SimulatorTest, PostWarmEnergyLessThanWholeRun) {
  const BlockTrace trace = TinyTrace();
  SimConfig config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
  SimConfig no_warm = config;
  no_warm.warm_fraction = 0.0;
  const double with_warm = RunSimulation(trace, config).total_energy_j();
  const double full = RunSimulation(trace, no_warm).total_energy_j();
  EXPECT_GT(full, with_warm);
  EXPECT_GT(with_warm, 0.0);
}

TEST(SimulatorTest, Deterministic) {
  const BlockTrace trace = TinyTrace();
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  const SimResult a = RunSimulation(trace, config);
  const SimResult b = RunSimulation(trace, config);
  EXPECT_DOUBLE_EQ(a.total_energy_j(), b.total_energy_j());
  EXPECT_DOUBLE_EQ(a.read_response_ms.mean(), b.read_response_ms.mean());
  EXPECT_DOUBLE_EQ(a.write_response_ms.max(), b.write_response_ms.max());
  EXPECT_EQ(a.counters.segment_erases, b.counters.segment_erases);
}

TEST(SimulatorTest, DeviceModeBreakdownCoversTheRun) {
  const BlockTrace trace = TinyTrace();
  SimConfig config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
  const SimResult result = RunSimulation(trace, config);
  ASSERT_EQ(result.device_mode_seconds.size(), 5u);  // disk has 5 modes
  double total_sec = 0.0;
  for (const auto& [mode, seconds] : result.device_mode_seconds) {
    EXPECT_GE(seconds, 0.0) << mode;
    total_sec += seconds;
  }
  // Mode times tile the whole run (within rounding).
  const double span_sec = SecFromUs(trace.records.back().time_us);
  EXPECT_NEAR(total_sec, span_sec, 0.05 * span_sec + 5.0);
  EXPECT_FALSE(result.device_energy_breakdown.empty());
}

TEST(SimulatorTest, PcIsAnAliasForDos) {
  const Trace pc = GenerateNamedWorkload("pc", 0.1);
  const Trace dos = GenerateNamedWorkload("dos", 0.1);
  ASSERT_EQ(pc.records.size(), dos.records.size());
  EXPECT_EQ(pc.records[7].time_us, dos.records[7].time_us);
}

TEST(SimulatorTest, HpRunsWithoutDram) {
  SimConfig config = MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024);
  const SimResult result = RunNamedWorkload("hp", config, 0.05);
  EXPECT_EQ(result.dram_hits, 0u);
  EXPECT_EQ(result.dram_misses, 0u);
}

TEST(SimulatorTest, ResponsesSplitByOpType) {
  const BlockTrace trace = TinyTrace();
  SimConfig config = MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024);
  const SimResult result = RunSimulation(trace, config);
  EXPECT_EQ(result.read_response_ms.count() + result.write_response_ms.count(),
            result.overall_response_ms.count());
  EXPECT_GE(result.write_response_ms.max(), result.write_response_ms.mean());
}

// The paper's headline orderings, checked end-to-end on the synth workload.
TEST(SimulatorOrderingTest, FlashBeatsDiskOnEnergy) {
  const BlockTrace trace = TinyTrace();
  const double disk =
      RunSimulation(trace, MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024))
          .total_energy_j();
  const double flash_disk =
      RunSimulation(trace, MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024))
          .total_energy_j();
  const double card =
      RunSimulation(trace, MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024))
          .total_energy_j();
  EXPECT_LT(flash_disk, disk);
  EXPECT_LT(card, disk);
  // Order-of-magnitude claim from the abstract.
  EXPECT_LT(card, disk / 3.0);
}

TEST(SimulatorOrderingTest, FlashCardReadsBeatFlashDiskReads) {
  const BlockTrace trace = TinyTrace();
  const SimResult flash_disk =
      RunSimulation(trace, MakePaperConfig(Sdp5Datasheet(), 0));
  const SimResult card = RunSimulation(trace, MakePaperConfig(IntelCardDatasheet(), 0));
  EXPECT_LT(card.read_response_ms.mean(), flash_disk.read_response_ms.mean());
}

TEST(SimulatorOrderingTest, DiskWithSramBeatsFlashOnWrites) {
  const BlockTrace trace = TinyTrace();
  const SimResult disk =
      RunSimulation(trace, MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024));
  const SimResult flash_disk =
      RunSimulation(trace, MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024));
  EXPECT_LT(disk.write_response_ms.mean(), flash_disk.write_response_ms.mean());
}

TEST(SimulatorOrderingTest, AsyncErasureImprovesWrites) {
  const BlockTrace trace = TinyTrace();
  SimConfig sync_config = MakePaperConfig(Sdp5aDatasheet(), 2 * 1024 * 1024);
  sync_config.flash_async_erasure = false;
  SimConfig async_config = MakePaperConfig(Sdp5aDatasheet(), 2 * 1024 * 1024);
  const SimResult sync_result = RunSimulation(trace, sync_config);
  const SimResult async_result = RunSimulation(trace, async_config);
  EXPECT_LT(async_result.write_response_ms.mean(),
            sync_result.write_response_ms.mean() * 0.7);
}

TEST(SimulatorOrderingTest, UtilizationRaisesFlashCardEnergy) {
  const BlockTrace trace = TinyTrace();
  SimConfig low = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  low.flash_utilization = 0.40;
  low.capacity_bytes = 16 * 1024 * 1024;
  low.auto_capacity = false;
  SimConfig high = low;
  high.flash_utilization = 0.95;
  const SimResult low_result = RunSimulation(trace, low);
  const SimResult high_result = RunSimulation(trace, high);
  EXPECT_GT(high_result.total_energy_j(), low_result.total_energy_j());
  EXPECT_GT(high_result.counters.blocks_copied, low_result.counters.blocks_copied);
  EXPECT_GT(high_result.max_segment_erases, low_result.max_segment_erases);
}

}  // namespace
}  // namespace mobisim
