// Tests for the per-commit result store (src/bench_db) and the regression
// diff harness: metadata round-trips, manifest integrity under tampering,
// spec fingerprint stability, and pass/noise/regression classification.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/bench_db/bench_db.h"
#include "src/bench_db/benchdiff.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"

namespace mobisim {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mobisim_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

RunMeta MakeMeta(const std::string& sha) {
  RunMeta meta;
  meta.spec_name = "refspec";
  meta.spec_hash = "00000000deadbeef";
  meta.git_sha = sha;
  meta.created = "2026-08-06T00:00:00Z";
  meta.host = "testhost";
  return meta;
}

// A synthetic sweep row: the config columns benchdiff groups replicas by,
// plus two metrics.  `energy` and `write_ms` are the knobs tests turn.
ResultRow MakeRow(std::size_t point, double utilization, std::uint64_t seed,
                  std::size_t replica, double energy, double write_ms) {
  ResultRow row;
  row.AddInt("point", point);
  row.AddText("workload", "synth");
  row.AddText("device", "intel-datasheet");
  row.AddInt("seed", seed);
  row.AddInt("replica", replica);
  row.AddNumber("scale", 0.1);
  row.AddNumber("utilization", utilization);
  row.AddInt("dram_bytes", 2 * 1024 * 1024);
  row.AddInt("sram_bytes", 0);
  row.AddInt("capacity_bytes", 40 * 1024 * 1024);
  row.AddInt("auto_capacity", 1);
  row.AddText("cleaning_policy", "greedy");
  row.AddNumber("total_energy_j", energy);
  row.AddNumber("write_ms_mean", write_ms);
  return row;
}

// Two utilization cells x three replicas each, ~1% seed spread.
std::vector<ResultRow> MakeReplicatedRows() {
  std::vector<ResultRow> rows;
  std::size_t point = 0;
  for (const double utilization : {0.4, 0.9}) {
    const double base_energy = utilization * 100.0;
    for (std::size_t replica = 0; replica < 3; ++replica) {
      const double wobble = 1.0 + 0.005 * static_cast<double>(replica);
      rows.push_back(MakeRow(point, utilization, 1000 + replica, replica,
                             base_energy * wobble, 10.0 * wobble));
      ++point;
    }
  }
  return rows;
}

void ScaleField(ResultRow* row, const std::string& key, double factor) {
  for (ResultField& field : row->fields) {
    if (field.key == key) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.17g", row->Number(key) * factor);
      field.value = buf;
      return;
    }
  }
  FAIL() << "no field " << key;
}

StoredRun MakeRun(const std::string& sha, std::vector<ResultRow> rows) {
  StoredRun run;
  run.meta = MakeMeta(sha);
  run.meta.points = rows.size();
  run.has_meta = true;
  run.rows = std::move(rows);
  return run;
}

TEST(ResultIoMetaTest, MetaRowRoundTripsThroughJson) {
  const RunMeta meta = MakeMeta("abc123");
  ResultRow row = MetaToRow(meta);
  EXPECT_TRUE(IsMetaRow(row));

  std::string error;
  const auto parsed = RowFromJson(RowToJson(row), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto back = MetaFromRow(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spec_name, meta.spec_name);
  EXPECT_EQ(back->spec_hash, meta.spec_hash);
  EXPECT_EQ(back->git_sha, meta.git_sha);
  EXPECT_EQ(back->created, meta.created);
  EXPECT_EQ(back->host, meta.host);
  EXPECT_EQ(back->points, meta.points);

  // Data rows are not mistaken for metadata.
  EXPECT_FALSE(IsMetaRow(MakeRow(0, 0.4, 1, 0, 1.0, 1.0)));
  EXPECT_FALSE(MetaFromRow(MakeRow(0, 0.4, 1, 0, 1.0, 1.0)).has_value());
}

TEST(BenchDbTest, StoreLoadIndexRoundTrip) {
  const std::string root = FreshDir("store_roundtrip");
  BenchDb db(root);

  const std::vector<ResultRow> rows = MakeReplicatedRows();
  std::string error;
  const auto path = db.StoreRun(MakeMeta("sha1"), rows, &error);
  ASSERT_TRUE(path.has_value()) << error;
  EXPECT_EQ(*path, db.RunPath("sha1", "refspec"));

  const auto loaded = LoadRunFile(*path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->has_meta);
  EXPECT_EQ(loaded->meta.git_sha, "sha1");
  EXPECT_EQ(loaded->meta.points, rows.size());
  ASSERT_EQ(loaded->rows.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(loaded->rows[i].fields.size(), rows[i].fields.size());
    for (std::size_t f = 0; f < rows[i].fields.size(); ++f) {
      EXPECT_EQ(loaded->rows[i].fields[f].key, rows[i].fields[f].key);
      EXPECT_EQ(loaded->rows[i].fields[f].value, rows[i].fields[f].value);
    }
  }

  // A second run lands beside it and the manifest records both, in order.
  ASSERT_TRUE(db.StoreRun(MakeMeta("sha2"), rows, &error).has_value()) << error;
  const std::vector<RunMeta> index = db.ReadIndex(&error);
  ASSERT_EQ(index.size(), 2u);
  EXPECT_EQ(index[0].git_sha, "sha1");
  EXPECT_EQ(index[1].git_sha, "sha2");

  const auto latest = db.FindLatest("refspec");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->git_sha, "sha2");
  const auto excluding = db.FindLatest("refspec", "sha2");
  ASSERT_TRUE(excluding.has_value());
  EXPECT_EQ(excluding->git_sha, "sha1");
  EXPECT_FALSE(db.FindLatest("otherspec").has_value());

  EXPECT_TRUE(db.Verify(&error)) << error;
}

TEST(BenchDbTest, StoreRejectsPathEscapes) {
  const std::string root = FreshDir("store_paths");
  BenchDb db(root);
  std::string error;
  RunMeta meta = MakeMeta("ok");
  meta.spec_name = "../escape";
  EXPECT_FALSE(db.StoreRun(meta, {}, &error).has_value());
  meta = MakeMeta("a/b");
  EXPECT_FALSE(db.StoreRun(meta, {}, &error).has_value());
  meta = MakeMeta("ok");
  meta.spec_name = "index";  // would collide with index.jsonl
  EXPECT_FALSE(db.StoreRun(meta, {}, &error).has_value());
}

TEST(BenchDbTest, VerifyDetectsTamperedHeaderAndTruncation) {
  const std::string root = FreshDir("store_tamper");
  BenchDb db(root);
  std::string error;
  ASSERT_TRUE(db.StoreRun(MakeMeta("sha1"), MakeReplicatedRows(), &error).has_value())
      << error;
  ASSERT_TRUE(db.Verify(&error)) << error;

  // Tamper: rewrite the run header with a different spec hash.
  const std::string path = db.RunPath("sha1", "refspec");
  const auto run = LoadRunFile(path, &error);
  ASSERT_TRUE(run.has_value()) << error;
  {
    RunMeta tampered = run->meta;
    tampered.spec_hash = "1111111111111111";
    std::ofstream out(path, std::ios::trunc);
    out << RowToJson(MetaToRow(tampered)) << "\n";
    for (const ResultRow& row : run->rows) {
      out << RowToJson(row) << "\n";
    }
  }
  EXPECT_FALSE(db.Verify(&error));
  EXPECT_NE(error.find("disagrees"), std::string::npos) << error;

  // Tamper: drop the last data row (header restored).
  {
    std::ofstream out(path, std::ios::trunc);
    out << RowToJson(MetaToRow(run->meta)) << "\n";
    for (std::size_t i = 0; i + 1 < run->rows.size(); ++i) {
      out << RowToJson(run->rows[i]) << "\n";
    }
  }
  EXPECT_FALSE(db.Verify(&error));
  EXPECT_NE(error.find("point count"), std::string::npos) << error;

  // Tamper: delete the file entirely.
  std::filesystem::remove(path);
  EXPECT_FALSE(db.Verify(&error));
}

TEST(SpecFingerprintTest, StableUnderLineReorderingAndFormatting) {
  std::string error;
  const auto a = ParseExperimentSpec(
      "devices = intel-datasheet, sdp5-datasheet\n"
      "workloads = mac, dos\n"
      "utilizations = 0.4, 0.9\n"
      "seeds = 1, 2\n"
      "scale = 0.25\n",
      &error);
  ASSERT_TRUE(a.has_value()) << error;
  // Same grid: lines reordered, comments added, list spacing changed, and the
  // same numbers spelled differently.
  const auto b = ParseExperimentSpec(
      "# reference grid\n"
      "scale = 0.250\n"
      "seeds = 1,2\n"
      "workloads =   mac , dos\n"
      "utilizations = 0.40, 0.90\n"
      "devices = intel-datasheet, sdp5-datasheet\n",
      &error);
  ASSERT_TRUE(b.has_value()) << error;
  EXPECT_EQ(SpecFingerprint(*a), SpecFingerprint(*b));
  EXPECT_EQ(CanonicalSpecText(*a), CanonicalSpecText(*b));
  EXPECT_EQ(SpecFingerprint(*a).size(), 16u);
}

TEST(SpecFingerprintTest, ChangesWithGridAndBaseConfig) {
  std::string error;
  const std::string base_text =
      "devices = intel-datasheet\nworkloads = mac\nutilizations = 0.4, 0.9\n";
  const auto base = ParseExperimentSpec(base_text, &error);
  ASSERT_TRUE(base.has_value()) << error;

  // Grid changes: extra utilization, reordered values (different enumeration),
  // extra replica dimension.
  const auto wider = ParseExperimentSpec(base_text + "seeds = 1, 2\n", &error);
  ASSERT_TRUE(wider.has_value()) << error;
  EXPECT_NE(SpecFingerprint(*base), SpecFingerprint(*wider));

  const auto reordered = ParseExperimentSpec(
      "devices = intel-datasheet\nworkloads = mac\nutilizations = 0.9, 0.4\n",
      &error);
  ASSERT_TRUE(reordered.has_value()) << error;
  EXPECT_NE(SpecFingerprint(*base), SpecFingerprint(*reordered));

  const auto replicated = ParseExperimentSpec(base_text + "replicas = 3\n", &error);
  ASSERT_TRUE(replicated.has_value()) << error;
  EXPECT_NE(SpecFingerprint(*base), SpecFingerprint(*replicated));

  // Base-config change without touching the sweep dimensions.
  const auto write_back = ParseExperimentSpec(base_text + "write_back = true\n", &error);
  ASSERT_TRUE(write_back.has_value()) << error;
  EXPECT_NE(SpecFingerprint(*base), SpecFingerprint(*write_back));
}

TEST(ReplicaExpansionTest, ReplicasMultiplyTheGridWithDerivedSeeds) {
  std::string error;
  const auto spec = ParseExperimentSpec(
      "workloads = synth\nutilizations = 0.4, 0.9\nseeds = 7\nreplicas = 3\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(GridSize(*spec), 6u);

  const std::vector<ExperimentPoint> points = EnumerateGrid(*spec);
  ASSERT_EQ(points.size(), 6u);
  // Replica is the innermost dimension; replica 0 keeps the listed seed.
  EXPECT_EQ(points[0].replica, 0u);
  EXPECT_EQ(points[0].seed, 7u);
  EXPECT_EQ(points[1].replica, 1u);
  EXPECT_EQ(points[1].seed, ReplicaSeed(7, 1));
  EXPECT_EQ(points[2].replica, 2u);
  EXPECT_EQ(points[2].seed, ReplicaSeed(7, 2));
  // Derived seeds are distinct from each other and the base.
  EXPECT_NE(points[1].seed, points[0].seed);
  EXPECT_NE(points[2].seed, points[0].seed);
  EXPECT_NE(points[2].seed, points[1].seed);
  // The second cell repeats the same seed schedule at the other utilization.
  EXPECT_EQ(points[3].seed, points[0].seed);
  EXPECT_DOUBLE_EQ(points[3].config.flash_utilization, 0.9);
  // Replica expansion is visible in exported rows.
  EXPECT_EQ(PointToRow(points[1]).Number("replica", -1), 1.0);
}

TEST(BenchdiffTest, IdenticalRunsPassAndInjectedRegressionIsFlagged) {
  const StoredRun base = MakeRun("sha1", MakeReplicatedRows());
  DiffOptions options;
  options.metrics = {"total_energy_j", "write_ms_mean"};

  // A re-run of the same spec with the same seeds reproduces the matrix
  // exactly (the engine is deterministic) and must gate clean.
  const DiffReport same = DiffRuns(base, MakeRun("sha2", MakeReplicatedRows()), options);
  ASSERT_TRUE(same.comparable);
  EXPECT_TRUE(same.noise_from_replicas);
  EXPECT_FALSE(same.HasRegressions());
  EXPECT_TRUE(same.flagged.empty());
  ASSERT_EQ(same.summaries.size(), 2u);
  EXPECT_EQ(same.summaries[0].pass, 6u);

  // +10% energy on every point: far beyond the ~1% replica spread.
  std::vector<ResultRow> worse = MakeReplicatedRows();
  for (ResultRow& row : worse) {
    ScaleField(&row, "total_energy_j", 1.10);
  }
  const DiffReport regressed = DiffRuns(base, MakeRun("sha3", std::move(worse)), options);
  ASSERT_TRUE(regressed.comparable);
  EXPECT_TRUE(regressed.HasRegressions());
  ASSERT_EQ(regressed.summaries.size(), 2u);
  EXPECT_EQ(regressed.summaries[0].metric, "total_energy_j");
  EXPECT_EQ(regressed.summaries[0].regressions, 6u);
  EXPECT_NEAR(regressed.summaries[0].worst_rel, 0.10, 1e-9);
  // write_ms_mean was untouched.
  EXPECT_EQ(regressed.summaries[1].regressions, 0u);
  for (const MetricDiff& cell : regressed.flagged) {
    EXPECT_EQ(cell.metric, "total_energy_j");
    EXPECT_EQ(cell.cls, DiffClass::kRegression);
    EXPECT_TRUE(cell.from_replicas);
  }

  // Reports render without blowing up and carry the verdict.
  EXPECT_NE(RenderReportText(regressed).find("REGRESSION"), std::string::npos);
  EXPECT_NE(RenderReportMarkdown(regressed).find("Regressions"), std::string::npos);
  EXPECT_NE(RenderReportText(same).find("OK"), std::string::npos);
}

TEST(BenchdiffTest, ImprovementsAreNotRegressions) {
  const StoredRun base = MakeRun("sha1", MakeReplicatedRows());
  std::vector<ResultRow> better = MakeReplicatedRows();
  for (ResultRow& row : better) {
    ScaleField(&row, "total_energy_j", 0.80);
  }
  DiffOptions options;
  options.metrics = {"total_energy_j"};
  const DiffReport report = DiffRuns(base, MakeRun("sha2", std::move(better)), options);
  ASSERT_TRUE(report.comparable);
  EXPECT_FALSE(report.HasRegressions());
  EXPECT_EQ(report.summaries[0].improvements, 6u);
}

TEST(BenchdiffTest, FallbackThresholdWithoutReplicas) {
  // Six distinct cells (no replica groups): band = rel_threshold.
  auto make_singletons = [](double factor) {
    std::vector<ResultRow> rows;
    for (std::size_t i = 0; i < 6; ++i) {
      const double utilization = 0.4 + 0.1 * static_cast<double>(i);
      rows.push_back(MakeRow(i, utilization, 1, 0, 100.0 * factor, 10.0));
    }
    return rows;
  };
  DiffOptions options;
  options.metrics = {"total_energy_j"};
  options.rel_threshold = 0.05;

  const StoredRun base = MakeRun("sha1", make_singletons(1.0));
  const DiffReport drift =
      DiffRuns(base, MakeRun("sha2", make_singletons(1.03)), options);
  ASSERT_TRUE(drift.comparable);
  EXPECT_FALSE(drift.noise_from_replicas);
  EXPECT_FALSE(drift.HasRegressions());
  EXPECT_EQ(drift.summaries[0].noise, 6u);

  const DiffReport beyond =
      DiffRuns(base, MakeRun("sha3", make_singletons(1.08)), options);
  EXPECT_TRUE(beyond.HasRegressions());
  EXPECT_EQ(beyond.summaries[0].regressions, 6u);
}

TEST(BenchdiffTest, RefusesMismatchedSpecsUnlessForced) {
  const StoredRun base = MakeRun("sha1", MakeReplicatedRows());
  StoredRun other = MakeRun("sha2", MakeReplicatedRows());
  other.meta.spec_hash = "ffffffffffffffff";

  DiffOptions options;
  options.metrics = {"total_energy_j"};
  const DiffReport refused = DiffRuns(base, other, options);
  EXPECT_FALSE(refused.comparable);
  EXPECT_NE(refused.incomparable_reason.find("fingerprints"), std::string::npos);
  EXPECT_TRUE(refused.summaries.empty());

  options.require_same_spec = false;
  EXPECT_TRUE(DiffRuns(base, other, options).comparable);

  // Mismatched point sets are also refused.
  StoredRun truncated = MakeRun("sha3", MakeReplicatedRows());
  truncated.rows.pop_back();
  const DiffReport mismatched = DiffRuns(base, truncated, options);
  EXPECT_FALSE(mismatched.comparable);
  EXPECT_NE(mismatched.incomparable_reason.find("point counts"), std::string::npos);
}

TEST(BenchdiffTest, AbsentMetricsAreSkippedNotMisread) {
  const StoredRun base = MakeRun("sha1", MakeReplicatedRows());
  DiffOptions options;
  options.metrics = {"total_energy_j", "no_such_metric"};
  const DiffReport report = DiffRuns(base, MakeRun("sha2", MakeReplicatedRows()), options);
  ASSERT_TRUE(report.comparable);
  ASSERT_EQ(report.summaries.size(), 1u);
  EXPECT_EQ(report.summaries[0].metric, "total_energy_j");
  ASSERT_EQ(report.skipped_metrics.size(), 1u);
  EXPECT_EQ(report.skipped_metrics[0], "no_such_metric");
}

TEST(CsvSinkTest, EmptySweepStillWritesHeader) {
  // Zero points (e.g. a shard filter that matched nothing) must still produce
  // a well-formed CSV: header only, no special-casing downstream.
  std::ostringstream out;
  CsvResultSink sink(out, SweepCsvHeader());
  SweepOptions options;
  options.threads = 1;
  options.sinks.push_back(&sink);
  const auto outcomes = RunSweep(std::vector<ExperimentPoint>{}, options);
  EXPECT_TRUE(outcomes.empty());
  EXPECT_EQ(out.str(), SweepCsvHeader() + "\n");

  // And the default header matches what a populated sweep emits, so the
  // schema is identical either way.
  std::ostringstream populated;
  CsvResultSink sink2(populated, SweepCsvHeader());
  ExperimentSpec spec;
  spec.workloads = {"synth"};
  spec.scale = 0.02;
  SweepOptions options2;
  options2.threads = 1;
  options2.sinks.push_back(&sink2);
  RunSweep(spec, options2);
  std::istringstream lines(populated.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, SweepCsvHeader());
}

}  // namespace
}  // namespace mobisim
