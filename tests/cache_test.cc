// Unit tests for the DRAM buffer cache and the SRAM write buffer.
#include <gtest/gtest.h>

#include "src/cache/buffer_cache.h"
#include "src/cache/sram_write_buffer.h"
#include "src/device/device_catalog.h"

namespace mobisim {
namespace {

// ------------------------------- BufferCache --------------------------------

TEST(BufferCacheTest, ZeroCapacityIsDisabled) {
  BufferCache cache(NecDramSpec(), 0, 1024);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.ReadHit(0, 1));
  cache.Insert(0, 4);  // must be a no-op, not a crash
  EXPECT_EQ(cache.cached_blocks(), 0u);
}

TEST(BufferCacheTest, MissThenHit) {
  BufferCache cache(NecDramSpec(), 8 * 1024, 1024);
  EXPECT_FALSE(cache.ReadHit(10, 2));
  cache.Insert(10, 2);
  EXPECT_TRUE(cache.ReadHit(10, 2));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BufferCacheTest, PartialRangeIsMiss) {
  BufferCache cache(NecDramSpec(), 8 * 1024, 1024);
  cache.Insert(0, 3);
  EXPECT_FALSE(cache.ReadHit(0, 4));  // block 3 missing
  EXPECT_TRUE(cache.ReadHit(0, 3));
}

TEST(BufferCacheTest, LruEviction) {
  BufferCache cache(NecDramSpec(), 4 * 1024, 1024);  // 4 blocks
  cache.Insert(0, 4);                                 // 0,1,2,3
  EXPECT_TRUE(cache.ReadHit(0, 1));                   // 0 is now most recent
  cache.Insert(100, 1);                               // evicts LRU = 1
  EXPECT_TRUE(cache.ReadHit(0, 1));
  EXPECT_FALSE(cache.ReadHit(1, 1));
  EXPECT_TRUE(cache.ReadHit(2, 1));
  EXPECT_TRUE(cache.ReadHit(100, 1));
}

TEST(BufferCacheTest, InvalidateRange) {
  BufferCache cache(NecDramSpec(), 8 * 1024, 1024);
  cache.Insert(0, 8);
  cache.InvalidateRange(2, 3);
  EXPECT_TRUE(cache.ReadHit(0, 2));
  EXPECT_FALSE(cache.ReadHit(2, 1));
  EXPECT_FALSE(cache.ReadHit(4, 1));
  EXPECT_TRUE(cache.ReadHit(5, 3));
}

TEST(BufferCacheTest, ReinsertRefreshesNotDuplicates) {
  BufferCache cache(NecDramSpec(), 4 * 1024, 1024);
  cache.Insert(0, 2);
  cache.Insert(0, 2);
  EXPECT_EQ(cache.cached_blocks(), 2u);
}

TEST(BufferCacheTest, RefreshEnergyScalesWithTimeAndSize) {
  MemorySpec spec = NecDramSpec();
  spec.idle_w_per_mbyte = 0.010;
  BufferCache one_mb(spec, 1024 * 1024, 1024);
  BufferCache two_mb(spec, 2 * 1024 * 1024, 1024);
  one_mb.AccountUntil(UsFromSec(100));
  two_mb.AccountUntil(UsFromSec(100));
  EXPECT_NEAR(one_mb.energy().total_joules(), 1.0, 1e-6);
  EXPECT_NEAR(two_mb.energy().total_joules(), 2.0, 1e-6);
  // Accounting is monotonic: going backwards adds nothing.
  two_mb.AccountUntil(UsFromSec(50));
  EXPECT_NEAR(two_mb.energy().total_joules(), 2.0, 1e-6);
}

TEST(BufferCacheTest, AccessTimeMatchesBandwidth) {
  MemorySpec spec = NecDramSpec();
  BufferCache cache(spec, 1024 * 1024, 1024);
  EXPECT_EQ(cache.AccessTime(0), 0);
  const SimTime t = cache.AccessTime(25 * 1024 * 1024);  // one second at 25 MB/s
  EXPECT_NEAR(static_cast<double>(t), static_cast<double>(kUsPerSec), 1000.0);
}

// ----------------------------- SramWriteBuffer ------------------------------

TEST(SramWriteBufferTest, DisabledWhenZero) {
  SramWriteBuffer sram(NecSramSpec(), 0, 1024);
  EXPECT_FALSE(sram.enabled());
  EXPECT_FALSE(sram.Absorb(0, 1));
  EXPECT_FALSE(sram.ContainsAny(0, 100));
}

TEST(SramWriteBufferTest, AbsorbUntilFull) {
  SramWriteBuffer sram(NecSramSpec(), 4 * 1024, 1024);  // 4 blocks
  EXPECT_TRUE(sram.Absorb(0, 2));
  EXPECT_TRUE(sram.Absorb(2, 2));
  EXPECT_FALSE(sram.Absorb(4, 1));  // full
  EXPECT_EQ(sram.dirty_blocks(), 4u);
}

TEST(SramWriteBufferTest, RewriteOfBufferedBlockIsFree) {
  SramWriteBuffer sram(NecSramSpec(), 4 * 1024, 1024);
  EXPECT_TRUE(sram.Absorb(0, 4));
  // Same blocks again: fits even though the buffer is "full".
  EXPECT_TRUE(sram.Absorb(0, 4));
  EXPECT_TRUE(sram.Absorb(1, 2));
  EXPECT_EQ(sram.dirty_blocks(), 4u);
}

TEST(SramWriteBufferTest, ContainsAllAndAny) {
  SramWriteBuffer sram(NecSramSpec(), 8 * 1024, 1024);
  sram.Absorb(10, 3);
  EXPECT_TRUE(sram.ContainsAll(10, 3));
  EXPECT_TRUE(sram.ContainsAll(11, 2));
  EXPECT_FALSE(sram.ContainsAll(10, 4));
  EXPECT_TRUE(sram.ContainsAny(12, 5));
  EXPECT_FALSE(sram.ContainsAny(13, 5));
  EXPECT_FALSE(sram.ContainsAll(20, 0));  // empty range is not a hit
}

TEST(SramWriteBufferTest, DrainCoalescesRuns) {
  SramWriteBuffer sram(NecSramSpec(), 16 * 1024, 1024);
  sram.Absorb(5, 2);   // 5,6
  sram.Absorb(9, 1);   // 9
  sram.Absorb(7, 2);   // 7,8 -> now 5..9 contiguous
  sram.Absorb(20, 1);  // separate run
  const auto ranges = sram.Drain();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].lba, 5u);
  EXPECT_EQ(ranges[0].count, 5u);
  EXPECT_EQ(ranges[1].lba, 20u);
  EXPECT_EQ(ranges[1].count, 1u);
  EXPECT_EQ(sram.dirty_blocks(), 0u);
  EXPECT_EQ(sram.flushes(), 1u);
  // Draining an empty buffer reports nothing and counts no flush.
  EXPECT_TRUE(sram.Drain().empty());
  EXPECT_EQ(sram.flushes(), 1u);
}

TEST(SramWriteBufferTest, DiscardDropsBlocks) {
  SramWriteBuffer sram(NecSramSpec(), 8 * 1024, 1024);
  sram.Absorb(0, 4);
  sram.Discard(1, 2);
  EXPECT_EQ(sram.dirty_blocks(), 2u);
  const auto ranges = sram.Drain();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].lba, 0u);
  EXPECT_EQ(ranges[1].lba, 3u);
}

TEST(SramWriteBufferTest, RetentionEnergyAccrues) {
  MemorySpec spec = NecSramSpec();
  spec.idle_w_per_mbyte = 0.001;
  SramWriteBuffer sram(spec, 1024 * 1024, 1024);
  sram.AccountUntil(UsFromSec(1000));
  EXPECT_NEAR(sram.energy().total_joules(), 1.0, 1e-6);
}

}  // namespace
}  // namespace mobisim
