// Guards the device catalog against drift: the datasheet specs must match
// the paper's Table 2 (and section 2/5.3 for the newer parts) exactly, and
// the measured specs must be consistent with Table 1 arithmetic.
#include <gtest/gtest.h>

#include "src/device/device_catalog.h"
#include "src/util/sim_time.h"

namespace mobisim {
namespace {

TEST(CatalogTest, Cu140MatchesTable2) {
  const DeviceSpec s = Cu140Datasheet();
  EXPECT_EQ(s.kind, DeviceKind::kMagneticDisk);
  EXPECT_DOUBLE_EQ(s.read_overhead_ms, 25.7);
  EXPECT_DOUBLE_EQ(s.read_kbps, 2125.0);
  EXPECT_DOUBLE_EQ(s.spinup_ms, 1000.0);
  EXPECT_DOUBLE_EQ(s.read_w, 1.75);
  EXPECT_DOUBLE_EQ(s.idle_w, 0.7);
  EXPECT_DOUBLE_EQ(s.spinup_w, 3.0);
}

TEST(CatalogTest, Sdp10MatchesTable2) {
  const DeviceSpec s = Sdp10Datasheet();
  EXPECT_EQ(s.kind, DeviceKind::kFlashDisk);
  EXPECT_DOUBLE_EQ(s.read_overhead_ms, 1.5);
  EXPECT_DOUBLE_EQ(s.write_overhead_ms, 1.5);
  EXPECT_DOUBLE_EQ(s.read_kbps, 600.0);
  EXPECT_DOUBLE_EQ(s.write_kbps, 50.0);
  EXPECT_DOUBLE_EQ(s.read_w, 0.36);
  EXPECT_EQ(s.erase_segment_bytes, 512u);  // sector-granular erasure
}

TEST(CatalogTest, IntelCardMatchesTable2) {
  const DeviceSpec s = IntelCardDatasheet();
  EXPECT_EQ(s.kind, DeviceKind::kFlashCard);
  EXPECT_DOUBLE_EQ(s.read_overhead_ms, 0.0);
  EXPECT_DOUBLE_EQ(s.read_kbps, 9765.0);
  EXPECT_DOUBLE_EQ(s.write_kbps, 214.0);
  EXPECT_DOUBLE_EQ(s.erase_ms_per_segment, 1600.0);
  EXPECT_EQ(s.erase_segment_bytes, 128u * 1024);
  EXPECT_DOUBLE_EQ(s.read_w, 0.47);
  EXPECT_EQ(s.endurance_cycles, 100000u);
}

TEST(CatalogTest, Sdp5aMatchesSection53) {
  const DeviceSpec s = Sdp5aDatasheet();
  EXPECT_DOUBLE_EQ(s.erase_kbps, 150.0);
  EXPECT_DOUBLE_EQ(s.pre_erased_write_kbps, 400.0);
  // The coupled sdp5 path the paper quotes: 75 KB/s.
  EXPECT_DOUBLE_EQ(Sdp5Datasheet().write_kbps, 75.0);
}

TEST(CatalogTest, Series2PlusMatchesSection2) {
  const DeviceSpec s = IntelSeries2PlusDatasheet();
  EXPECT_DOUBLE_EQ(s.erase_ms_per_segment, 300.0);
  EXPECT_EQ(s.endurance_cycles, 1000000u);
}

TEST(CatalogTest, MeasuredSpecsReproduceTable1SmallFileRates) {
  // 4-KB operation throughput implied by overhead + bandwidth must land on
  // Table 1's measured column.
  auto small_file_kbps = [](double overhead_ms, double bw_kbps) {
    const double op_ms = overhead_ms + 4.0 / bw_kbps * 1000.0;
    return 4.0 / (op_ms / 1000.0);
  };
  const DeviceSpec cu = Cu140Measured();
  EXPECT_NEAR(small_file_kbps(cu.read_overhead_ms, cu.read_kbps), 116.0, 6.0);
  EXPECT_NEAR(small_file_kbps(cu.write_overhead_ms, cu.write_kbps), 76.0, 4.0);
  const DeviceSpec sdp = Sdp10Measured();
  EXPECT_NEAR(small_file_kbps(sdp.read_overhead_ms, sdp.read_kbps), 280.0, 15.0);
  EXPECT_NEAR(small_file_kbps(sdp.write_overhead_ms, sdp.write_kbps), 39.0, 2.0);
  const DeviceSpec intel = IntelCardMeasured();
  EXPECT_NEAR(small_file_kbps(intel.read_overhead_ms, intel.read_kbps), 645.0, 60.0);
  EXPECT_NEAR(small_file_kbps(intel.write_overhead_ms, intel.write_kbps), 43.0, 3.0);
}

TEST(CatalogTest, MeasuredIntelCleansAtRawSpeed) {
  const DeviceSpec s = IntelCardMeasured();
  EXPECT_DOUBLE_EQ(s.internal_read_kbps, 9765.0);
  EXPECT_DOUBLE_EQ(s.internal_write_kbps, 214.0);
}

TEST(CatalogTest, AllSpecsAreSelfConsistent) {
  for (const DeviceSpec& s : AllDeviceSpecs()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.read_kbps, 0.0) << s.name;
    EXPECT_GT(s.write_kbps, 0.0) << s.name;
    EXPECT_GE(s.read_w, 0.0) << s.name;
    EXPECT_GE(s.idle_w, 0.0) << s.name;
    if (s.kind == DeviceKind::kFlashCard) {
      EXPECT_GT(s.erase_segment_bytes, 0u) << s.name;
      EXPECT_GT(s.erase_ms_per_segment, 0.0) << s.name;
      EXPECT_GT(s.endurance_cycles, 0u) << s.name;
    }
    if (s.kind == DeviceKind::kMagneticDisk) {
      EXPECT_GT(s.spinup_ms, 0.0) << s.name;
      EXPECT_GT(s.spinup_w, 0.0) << s.name;
      EXPECT_GE(s.read_overhead_ms, s.sequential_overhead_ms) << s.name;
    }
  }
}

TEST(CatalogTest, MemoryChipsHaveSaneNumbers) {
  const MemorySpec dram = NecDramSpec();
  EXPECT_GT(dram.read_kbps, 1024.0);
  EXPECT_GT(dram.idle_w_per_mbyte, 0.0);
  const MemorySpec sram = NecSramSpec();
  // Battery-backed SRAM retention is orders of magnitude below DRAM refresh.
  EXPECT_LT(sram.idle_w_per_mbyte, dram.idle_w_per_mbyte);
}

}  // namespace
}  // namespace mobisim
