// Parameterized property sweep: every catalog device x every workload must
// satisfy the simulator's global invariants.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"

namespace mobisim {
namespace {

using Param = std::tuple<std::string, std::string>;

class DeviceWorkloadPropertyTest : public ::testing::TestWithParam<Param> {};

DeviceSpec SpecByName(const std::string& name) {
  for (const DeviceSpec& spec : AllDeviceSpecs()) {
    if (spec.name == name) {
      return spec;
    }
  }
  ADD_FAILURE() << "unknown device " << name;
  return DeviceSpec{};
}

TEST_P(DeviceWorkloadPropertyTest, GlobalInvariantsHold) {
  const auto& [device_name, workload] = GetParam();
  SimConfig config = MakePaperConfig(SpecByName(device_name), 2 * 1024 * 1024);
  const SimResult result = RunNamedWorkload(workload, config, /*scale=*/0.1);

  // Energy is positive and split into non-negative components.
  EXPECT_GT(result.total_energy_j(), 0.0);
  EXPECT_GE(result.device_energy_j, 0.0);
  EXPECT_GE(result.dram_energy_j, 0.0);
  EXPECT_GE(result.sram_energy_j, 0.0);

  // Response-time sanity.
  for (const RunningStats* stats :
       {&result.read_response_ms, &result.write_response_ms, &result.overall_response_ms}) {
    EXPECT_GE(stats->min(), 0.0);
    EXPECT_GE(stats->max(), stats->mean());
    EXPECT_GE(stats->mean(), 0.0);
  }
  EXPECT_EQ(result.read_response_ms.count() + result.write_response_ms.count(),
            result.overall_response_ms.count());
  EXPECT_GT(result.overall_response_ms.count(), 0u);

  // Counters are consistent with the workload.
  EXPECT_GT(result.counters.reads + result.counters.writes, 0u);
  EXPECT_GE(result.counters.stall_time_us, 0);
  if (result.counters.blocks_copied > 0) {
    EXPECT_GT(result.counters.clean_jobs, 0u);  // copies imply cleaning ran
  }

  // Post-warm duration never exceeds the full span.
  EXPECT_GT(result.duration_sec, 0.0);
  EXPECT_EQ(result.workload, workload);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeviceWorkloadPropertyTest,
    ::testing::Combine(::testing::Values("cu140-measured", "cu140-datasheet", "kh-datasheet",
                                         "sdp10-measured", "sdp10-datasheet", "sdp5-datasheet",
                                         "sdp5a-datasheet", "intel-measured",
                                         "intel-datasheet", "intel-series2plus-datasheet"),
                       ::testing::Values("mac", "dos", "hp", "synth")),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// Spin-down threshold monotonicity: a disk that never spins down uses the
// most energy; an aggressive threshold uses less than "never" on every trace.
class SpinDownPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SpinDownPropertyTest, SpinningForeverCostsMost) {
  SimConfig config = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
  SimConfig never = config;
  never.spin_down_after_us = UsFromSec(1e9);
  const double with_pm = RunNamedWorkload(GetParam(), config, 0.1).total_energy_j();
  const double without_pm = RunNamedWorkload(GetParam(), never, 0.1).total_energy_j();
  if (GetParam() == "hp") {
    // Idle-heavy trace: power management must win decisively.
    EXPECT_LT(with_pm, 0.5 * without_pm);
  } else {
    // Busy traces can lose a little to spin-up energy; they must not lose
    // much.
    EXPECT_LT(with_pm, 1.10 * without_pm);
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, SpinDownPropertyTest,
                         ::testing::Values("mac", "dos", "hp"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace mobisim
