// Tests for the MFFS 2.00 behavioural model and the micro-benchmark harness.
#include <gtest/gtest.h>

#include "src/device/device_catalog.h"
#include "src/mffs/lfs_ffs.h"
#include "src/mffs/microbench.h"
#include "src/mffs/testbed_device.h"
#include "src/util/rng.h"

namespace mobisim {
namespace {

TEST(MffsTest, WriteLatencyGrowsLinearlyWithFileSize) {
  MffsTestbedDevice card(DefaultMffsConfig());
  const MicroBenchResult result =
      BenchWriteFiles(card, 1024 * 1024, 4096, 1024 * 1024, /*ratio=*/0.5);
  ASSERT_EQ(result.latency_ms.size(), 256u);
  // The anomaly: last write much slower than first.
  EXPECT_GT(result.latency_ms.back(), 3.0 * result.latency_ms.front());
  // Roughly linear: the midpoint sits near the average of the endpoints.
  const double mid = result.latency_ms[128];
  const double expected_mid = (result.latency_ms.front() + result.latency_ms.back()) / 2.0;
  EXPECT_NEAR(mid / expected_mid, 1.0, 0.25);
}

TEST(MffsTest, SmallFileWritesDoNotDegrade) {
  MffsTestbedDevice card(DefaultMffsConfig());
  const MicroBenchResult result =
      BenchWriteFiles(card, 4096, 4096, 512 * 1024, /*ratio=*/0.5);
  EXPECT_NEAR(result.latency_ms.front(), result.latency_ms.back(), 1.0);
}

TEST(MffsTest, CompressibleDataWritesFaster) {
  MffsTestbedDevice a(DefaultMffsConfig());
  MffsTestbedDevice b(DefaultMffsConfig());
  const double random_kbps =
      BenchWriteFiles(a, 4096, 4096, 256 * 1024, 1.0).throughput_kbps();
  const double text_kbps =
      BenchWriteFiles(b, 4096, 4096, 256 * 1024, 0.5).throughput_kbps();
  EXPECT_GT(text_kbps, 1.5 * random_kbps);
}

TEST(MffsTest, ReadChainCostGrowsWithOffset) {
  MffsConfig config = DefaultMffsConfig();
  MffsTestbedDevice card(config);
  BenchWriteFiles(card, 1024 * 1024, 4096, 1024 * 1024, 1.0);
  const std::uint32_t file = 1u << 20;  // the harness's first file id
  const double early = card.ReadChunkMs(file, 0, 4096, 1024 * 1024, 1.0);
  const double late = card.ReadChunkMs(file, 1000 * 1024, 4096, 1024 * 1024, 1.0);
  EXPECT_GT(late, early + 50.0);
}

TEST(MffsTest, DeleteReclaimsLiveBlocks) {
  MffsTestbedDevice card(DefaultMffsConfig());
  // Enough data to fill several 128-KB erase segments.
  BenchWriteFiles(card, 1024 * 1024, 4096, 1024 * 1024, 1.0);
  card.DeleteFile(1u << 20);
  card.IdleCleanup();
  // After cleanup the deleted file's segments have been erased.
  EXPECT_GT(card.segment_erases(), 0u);
}

TEST(MffsTest, OverwritePressureScalesWithLiveData) {
  Rng rng_a(5);
  Rng rng_b(5);
  MffsTestbedDevice low(DefaultMffsConfig());
  MffsTestbedDevice high(DefaultMffsConfig());
  const auto low_curve = BenchOverwritePasses(low, 1 * 1024 * 1024, 1024 * 1024, 4096,
                                              /*passes=*/6, 1.0, rng_a);
  const auto high_curve = BenchOverwritePasses(high, 9 * 1024 * 1024 + 512 * 1024,
                                               1024 * 1024, 4096, 6, 1.0, rng_b);
  EXPECT_GT(low_curve.back(), 2.0 * high_curve.back());
  // Low-live throughput declines as the card's free pool is consumed.
  EXPECT_GT(low_curve.front(), low_curve.back());
}

TEST(MffsTest, FormatResetsState) {
  MffsTestbedDevice card(DefaultMffsConfig());
  BenchWriteFiles(card, 1024 * 1024, 4096, 2 * 1024 * 1024, 1.0);
  card.Format();
  EXPECT_EQ(card.segment_erases(), 0u);
  EXPECT_EQ(card.cleaning_copies(), 0u);
  // Fresh writes behave like a fresh card.
  const MicroBenchResult result = BenchWriteFiles(card, 4096, 4096, 64 * 1024, 1.0);
  EXPECT_GT(result.throughput_kbps(), 30.0);
}

TEST(LfsFfsTest, NoLatencyGrowthWithFileSize) {
  LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
  const MicroBenchResult result =
      BenchWriteFiles(lfs, 1024 * 1024, 4096, 1024 * 1024, 1.0);
  // Flat, unlike MFFS 2.00: last write within 2x of the first.
  EXPECT_LT(result.latency_ms.back(), 2.0 * result.latency_ms.front());
}

TEST(LfsFfsTest, BeatsMffsOnLargeFiles) {
  MffsTestbedDevice mffs(DefaultMffsConfig());
  LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
  const double mffs_kbps =
      BenchWriteFiles(mffs, 1024 * 1024, 4096, 1024 * 1024, 1.0).throughput_kbps();
  const double lfs_kbps =
      BenchWriteFiles(lfs, 1024 * 1024, 4096, 1024 * 1024, 1.0).throughput_kbps();
  EXPECT_GT(lfs_kbps, 3.0 * mffs_kbps);
}

TEST(LfsFfsTest, ReadsAtMediumSpeed) {
  LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
  BenchWriteFiles(lfs, 4096, 4096, 64 * 1024, 1.0);
  const double kbps = BenchReadFiles(lfs, 4096, 4096, 64 * 1024, 1.0).throughput_kbps();
  // 4 KB at 9765 KB/s plus 1 ms overhead: ~2800 KB/s.
  EXPECT_GT(kbps, 2000.0);
}

TEST(LfsFfsTest, CleansUnderOverwritePressure) {
  LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
  Rng rng(3);
  const auto curve = BenchOverwritePasses(lfs, 8 * 1024 * 1024, 1024 * 1024, 4096, 4, 1.0, rng);
  EXPECT_GT(lfs.segment_erases(), 0u);
  EXPECT_GT(curve.front(), 0.0);
}

TEST(LfsFfsTest, FormatResets) {
  LfsFfsTestbedDevice lfs(DefaultLfsFfsConfig());
  BenchWriteFiles(lfs, 1024 * 1024, 4096, 4 * 1024 * 1024, 1.0);
  lfs.Format();
  EXPECT_EQ(lfs.segment_erases(), 0u);
  EXPECT_EQ(lfs.cleaning_copies(), 0u);
}

TEST(SimpleTestbedTest, MatchesSpecRates) {
  const CompressionModel off{};
  SimpleTestbedDevice disk(Cu140Measured(), off);
  // 4-KB files, uncompressed: Table 1 reports ~116 KB/s reads, ~76 writes.
  MicroBenchResult writes = BenchWriteFiles(disk, 4096, 4096, 1024 * 1024, 1.0);
  MicroBenchResult reads = BenchReadFiles(disk, 4096, 4096, 1024 * 1024, 1.0);
  EXPECT_NEAR(writes.throughput_kbps(), 76.0, 8.0);
  EXPECT_NEAR(reads.throughput_kbps(), 116.0, 10.0);
}

TEST(SimpleTestbedTest, CompressionBuffersSmallWrites) {
  CompressionModel comp;
  comp.enabled = true;
  comp.compress_kbps = 260.0;
  SimpleTestbedDevice disk(Cu140Measured(), comp);
  const MicroBenchResult result = BenchWriteFiles(disk, 4096, 4096, 512 * 1024, 0.5);
  EXPECT_NEAR(result.throughput_kbps(), 260.0, 15.0);
}

TEST(SimpleTestbedTest, SequentialChunksSkipOverhead) {
  const CompressionModel off{};
  SimpleTestbedDevice disk(Cu140Measured(), off);
  const double first = disk.WriteChunkMs(1, 0, 4096, 1024 * 1024, 1.0);
  const double second = disk.WriteChunkMs(1, 4096, 4096, 1024 * 1024, 1.0);
  EXPECT_GT(first, second + 30.0);  // first pays the random overhead
  // A seek back to the start pays it again.
  const double random = disk.WriteChunkMs(1, 0, 4096, 1024 * 1024, 1.0);
  EXPECT_NEAR(random, first, 1.0);
}

}  // namespace
}  // namespace mobisim
