// Tests for the FAT file-system substrate.
#include <gtest/gtest.h>

#include <set>

#include "src/fs/fat_file_system.h"

namespace mobisim {
namespace {

FatConfig SmallConfig() {
  FatConfig config;
  config.capacity_bytes = 1024 * 1024;  // 1024 blocks of 1 KB
  config.block_bytes = 1024;
  return config;
}

TraceRecord Rec(SimTime t, OpType op, std::uint32_t file, std::uint64_t offset,
                std::uint32_t size) {
  TraceRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.file_id = file;
  rec.offset = offset;
  rec.size_bytes = size;
  return rec;
}

Trace MakeTrace(std::vector<TraceRecord> records) {
  Trace trace;
  trace.name = "t";
  trace.block_bytes = 1024;
  trace.records = std::move(records);
  return trace;
}

TEST(FatLayoutTest, RegionsAreDisjointAndOrdered) {
  FatFileSystem fs(SmallConfig());
  EXPECT_EQ(fs.fat_begin(), 1u);
  EXPECT_GT(fs.fat_blocks(), 0u);
  EXPECT_EQ(fs.dir_begin(), 1 + fs.fat_blocks());
  EXPECT_EQ(fs.data_begin(), fs.dir_begin() + fs.dir_blocks());
  EXPECT_LT(fs.data_begin(), fs.total_blocks());
  // Two FAT copies of 16-bit entries covering ~1024 clusters: 2 blocks each.
  EXPECT_EQ(fs.fat_blocks(), 4u);
}

TEST(FatLowerTest, CreateEmitsMetadataThenData) {
  FatFileSystem fs(SmallConfig());
  const BlockTrace out = fs.Lower(MakeTrace({Rec(0, OpType::kWrite, 1, 0, 4096)}));
  // Expected: FAT writes (chain) + data write + dir write.
  EXPECT_GT(fs.stats().fat_blocks_written, 0u);
  EXPECT_EQ(fs.stats().dir_blocks_written, 2u);  // create + per-write update
  EXPECT_EQ(fs.stats().data_blocks_written, 4u);
  EXPECT_EQ(fs.stats().files_created, 1u);
  // Data lands in the data region, metadata before it.
  bool saw_data = false;
  for (const BlockRecord& rec : out.records) {
    if (rec.file_id == 1) {
      saw_data = true;
      EXPECT_GE(rec.lba, fs.data_begin());
    } else {
      EXPECT_LT(rec.lba, fs.data_begin());
    }
  }
  EXPECT_TRUE(saw_data);
}

TEST(FatLowerTest, PreexistingFilesReadWithoutMetadata) {
  FatFileSystem fs(SmallConfig());
  const BlockTrace out = fs.Lower(MakeTrace({Rec(0, OpType::kRead, 1, 0, 4096)}));
  EXPECT_EQ(fs.stats().fat_blocks_written, 0u);
  EXPECT_EQ(fs.stats().dir_blocks_written, 0u);
  EXPECT_EQ(fs.stats().data_blocks_read, 4u);
  EXPECT_EQ(out.records.size(), 1u);  // contiguous fresh allocation: one run
}

TEST(FatLowerTest, ContiguousFileReadsAsOneRun) {
  FatFileSystem fs(SmallConfig());
  const BlockTrace out = fs.Lower(MakeTrace({
      Rec(0, OpType::kRead, 1, 0, 16 * 1024),
  }));
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].block_count, 16u);
}

TEST(FatLowerTest, DeleteFreesAndReuseFragments) {
  FatFileSystem fs(SmallConfig());
  // Three files, delete the middle one, then create a file larger than the
  // hole: its clusters must fragment (hole + fresh area).
  const BlockTrace out = fs.Lower(MakeTrace({
      Rec(0, OpType::kWrite, 1, 0, 8 * 1024),
      Rec(1, OpType::kWrite, 2, 0, 8 * 1024),
      Rec(2, OpType::kWrite, 3, 0, 8 * 1024),
      Rec(3, OpType::kErase, 2, 0, 0),
      Rec(4, OpType::kWrite, 4, 0, 16 * 1024),
  }));
  (void)out;
  EXPECT_EQ(fs.stats().files_deleted, 1u);
  const auto clusters = fs.FileClusters(4);
  ASSERT_EQ(clusters.size(), 16u);
  // Next-fit starts after file 3, reaches the end region, and wraps into
  // file 2's freed hole only when needed; either way the chain cannot be
  // fully contiguous once it spans the hole boundary.
  bool contiguous = true;
  for (std::size_t i = 1; i < clusters.size(); ++i) {
    contiguous &= clusters[i] == clusters[i - 1] + 1;
  }
  EXPECT_GE(fs.stats().mean_extents_per_file, 1.0);
  EXPECT_EQ(fs.free_clusters(), (1024 - fs.data_begin()) - 8 - 8 - 16);
  (void)contiguous;
}

TEST(FatLowerTest, RecreationAfterDeleteAllocatesAgain) {
  FatFileSystem fs(SmallConfig());
  fs.Lower(MakeTrace({
      Rec(0, OpType::kWrite, 1, 0, 4096),
      Rec(1, OpType::kErase, 1, 0, 0),
  }));
  const std::uint64_t fat_before = fs.stats().fat_blocks_written;
  fs.Lower(MakeTrace({Rec(2, OpType::kWrite, 1, 0, 4096)}));
  EXPECT_GT(fs.stats().fat_blocks_written, fat_before);
  EXPECT_EQ(fs.FileClusters(1).size(), 4u);
}

TEST(FatLowerTest, FatWritesHitSmallFixedRegion) {
  // The classic flash-killer: all allocation traffic lands on a handful of
  // FAT blocks.
  FatFileSystem fs(SmallConfig());
  std::vector<TraceRecord> records;
  for (std::uint32_t f = 0; f < 50; ++f) {
    records.push_back(Rec(f, OpType::kWrite, 100 + f, 0, 4096));
  }
  const BlockTrace out = fs.Lower(MakeTrace(std::move(records)));
  std::set<std::uint64_t> fat_lbas;
  for (const BlockRecord& rec : out.records) {
    if (rec.lba >= fs.fat_begin() && rec.lba < fs.fat_begin() + fs.fat_blocks()) {
      fat_lbas.insert(rec.lba);
    }
  }
  EXPECT_LE(fat_lbas.size(), fs.fat_blocks());
  EXPECT_GE(fs.stats().fat_blocks_written, 100u);  // many writes...
  EXPECT_LE(fat_lbas.size(), 4u);                  // ...to at most 4 blocks
}

TEST(FatLowerTest, MetadataShareGrowsWithSmallWrites) {
  // Small writes pay proportionally more metadata than large ones.
  FatFileSystem small_fs(SmallConfig());
  FatFileSystem large_fs(SmallConfig());
  std::vector<TraceRecord> small_records;
  std::vector<TraceRecord> large_records;
  for (std::uint32_t i = 0; i < 32; ++i) {
    small_records.push_back(Rec(i, OpType::kWrite, 1, i * 1024, 1024));
    large_records.push_back(Rec(i, OpType::kWrite, 1, i * 8192, 8192));
  }
  small_fs.Lower(MakeTrace(std::move(small_records)));
  large_fs.Lower(MakeTrace(std::move(large_records)));
  const double small_share =
      static_cast<double>(small_fs.stats().metadata_blocks_written()) /
      static_cast<double>(small_fs.stats().data_blocks_written);
  const double large_share =
      static_cast<double>(large_fs.stats().metadata_blocks_written()) /
      static_cast<double>(large_fs.stats().data_blocks_written);
  EXPECT_GT(small_share, large_share);
}

TEST(FatLowerTest, TimesPreserved) {
  FatFileSystem fs(SmallConfig());
  const BlockTrace out = fs.Lower(MakeTrace({
      Rec(1000, OpType::kWrite, 1, 0, 2048),
      Rec(2000, OpType::kRead, 1, 0, 2048),
  }));
  for (const BlockRecord& rec : out.records) {
    EXPECT_TRUE(rec.time_us == 1000 || rec.time_us == 2000);
  }
}

}  // namespace
}  // namespace mobisim
