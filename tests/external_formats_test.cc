// Tests for the HPL and DiskSim trace importers.
#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/external_formats.h"

namespace mobisim {
namespace {

TEST(HplImportTest, ParsesByteOffsets) {
  std::istringstream in(
      "# comment\n"
      "0.000 0 0 4096 R\n"
      "0.125 0 8192 2048 W\n"
      "1.500 0 1024 512 r\n");
  HplImportOptions options;
  options.block_bytes = 1024;
  std::string error;
  const auto trace = ImportHplTrace(in, options, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->records.size(), 3u);
  EXPECT_EQ(trace->records[0].op, OpType::kRead);
  EXPECT_EQ(trace->records[0].lba, 0u);
  EXPECT_EQ(trace->records[0].block_count, 4u);
  EXPECT_EQ(trace->records[1].op, OpType::kWrite);
  EXPECT_EQ(trace->records[1].lba, 8u);
  EXPECT_EQ(trace->records[1].block_count, 2u);
  EXPECT_EQ(trace->records[1].time_us, 125000);
  EXPECT_EQ(trace->total_blocks, 10u);
}

TEST(HplImportTest, BlockOffsets) {
  std::istringstream in("0.0 0 100 4 W\n");
  HplImportOptions options;
  options.offsets_in_bytes = false;
  const auto trace = ImportHplTrace(in, options);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->records[0].lba, 100u);
  EXPECT_EQ(trace->records[0].block_count, 4u);
}

TEST(HplImportTest, DeviceFilter) {
  std::istringstream in(
      "0.0 0 0 1024 R\n"
      "0.1 1 0 1024 R\n"
      "0.2 0 1024 1024 W\n");
  HplImportOptions options;
  options.device_filter = 0;
  const auto trace = ImportHplTrace(in, options);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->records.size(), 2u);
}

TEST(HplImportTest, RejectsMalformed) {
  std::istringstream bad_op("0.0 0 0 1024 X\n");
  std::string error;
  EXPECT_FALSE(ImportHplTrace(bad_op, HplImportOptions{}, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  std::istringstream truncated("0.0 0 0\n");
  EXPECT_FALSE(ImportHplTrace(truncated, HplImportOptions{}, &error).has_value());

  std::istringstream empty("# nothing\n");
  EXPECT_FALSE(ImportHplTrace(empty, HplImportOptions{}, &error).has_value());
}

TEST(HplImportTest, SortsOutOfOrderTimestamps) {
  std::istringstream in(
      "2.0 0 0 1024 R\n"
      "1.0 0 1024 1024 W\n");
  const auto trace = ImportHplTrace(in, HplImportOptions{});
  ASSERT_TRUE(trace.has_value());
  EXPECT_LT(trace->records[0].time_us, trace->records[1].time_us);
  EXPECT_EQ(trace->records[0].op, OpType::kWrite);
}

TEST(DiskSimImportTest, ParsesAndScalesBlocks) {
  // DiskSim 512-byte blocks into 1024-byte simulator blocks.
  std::istringstream in(
      "0.0 0 16 8 1\n"     // read, blocks 16..23 (512B) -> lba 8..11
      "10.5 0 100 4 0\n");  // write
  DiskSimImportOptions options;
  std::string error;
  const auto trace = ImportDiskSimTrace(in, options, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->records.size(), 2u);
  EXPECT_EQ(trace->records[0].op, OpType::kRead);
  EXPECT_EQ(trace->records[0].lba, 8u);
  EXPECT_EQ(trace->records[0].block_count, 4u);
  EXPECT_EQ(trace->records[1].op, OpType::kWrite);
  EXPECT_EQ(trace->records[1].time_us, 10500);
}

TEST(DiskSimImportTest, LocalityGroupsShareFileIds) {
  std::istringstream in(
      "0.0 0 0 2 1\n"
      "1.0 0 4 2 1\n"      // same 64-block neighbourhood
      "2.0 0 4000 2 1\n");  // far away
  const auto trace = ImportDiskSimTrace(in, DiskSimImportOptions{});
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->records[0].file_id, trace->records[1].file_id);
  EXPECT_NE(trace->records[0].file_id, trace->records[2].file_id);
}

}  // namespace
}  // namespace mobisim
