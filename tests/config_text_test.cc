// Tests for the text configuration parser.
#include <gtest/gtest.h>

#include "src/core/config_text.h"
#include "src/core/simulator.h"

namespace mobisim {
namespace {

TEST(ParseSizeTest, SuffixesAndPlainBytes) {
  EXPECT_EQ(ParseSize("1024"), 1024u);
  EXPECT_EQ(ParseSize("32k"), 32u * 1024);
  EXPECT_EQ(ParseSize("2m"), 2u * 1024 * 1024);
  EXPECT_EQ(ParseSize("1g"), 1ull * 1024 * 1024 * 1024);
  EXPECT_EQ(ParseSize("1.5m"), static_cast<std::uint64_t>(1.5 * 1024 * 1024));
  EXPECT_EQ(ParseSize(" 64K "), 64u * 1024);
  EXPECT_FALSE(ParseSize("abc").has_value());
  EXPECT_FALSE(ParseSize("").has_value());
  EXPECT_FALSE(ParseSize("-5k").has_value());
}

TEST(ParseSizeTest, RejectsNonFiniteAndOverflowingValues) {
  // NaN/inf would sail through naive `v < 0` checks; 1e999 overflows the
  // double parse; huge suffixed sizes would hit undefined behaviour in the
  // double -> uint64 cast.  All must be plain parse errors.
  EXPECT_FALSE(ParseSize("nan").has_value());
  EXPECT_FALSE(ParseSize("inf").has_value());
  EXPECT_FALSE(ParseSize("1e999").has_value());
  EXPECT_FALSE(ParseSize("99999999999g").has_value());
  EXPECT_FALSE(ParseSize("18446744073709551616").has_value());  // 2^64
  EXPECT_FALSE(ParseSize("1 2k").has_value());
  EXPECT_EQ(ParseSize("1e3"), 1000u);  // scientific notation itself is fine
}

TEST(ParseBoolTest, Variants) {
  EXPECT_EQ(ParseBool("true"), true);
  EXPECT_EQ(ParseBool("ON"), true);
  EXPECT_EQ(ParseBool("0"), false);
  EXPECT_EQ(ParseBool("no"), false);
  EXPECT_FALSE(ParseBool("maybe").has_value());
}

TEST(DeviceByNameTest, FindsCatalogEntries) {
  EXPECT_TRUE(DeviceByName("cu140-datasheet").has_value());
  EXPECT_TRUE(DeviceByName("intel-series2plus-datasheet").has_value());
  EXPECT_FALSE(DeviceByName("floppy").has_value());
}

TEST(ApplyAssignmentTest, SetsFields) {
  SimConfig config;
  std::string error;
  EXPECT_TRUE(ApplyConfigAssignment(&config, "device", "sdp5a-datasheet", &error));
  EXPECT_EQ(config.device.name, "sdp5a-datasheet");
  EXPECT_TRUE(ApplyConfigAssignment(&config, "dram", "4m", &error));
  EXPECT_EQ(config.dram_bytes, 4u * 1024 * 1024);
  EXPECT_TRUE(ApplyConfigAssignment(&config, "utilization", "0.9", &error));
  EXPECT_DOUBLE_EQ(config.flash_utilization, 0.9);
  EXPECT_TRUE(ApplyConfigAssignment(&config, "spin_down", "2.5", &error));
  EXPECT_EQ(config.spin_down_after_us, UsFromSec(2.5));
  EXPECT_TRUE(ApplyConfigAssignment(&config, "cleaning_policy", "wear-aware", &error));
  EXPECT_EQ(config.cleaning_policy, CleaningPolicy::kWearAware);
  EXPECT_TRUE(ApplyConfigAssignment(&config, "write_back", "true", &error));
  EXPECT_TRUE(config.write_back_cache);
  EXPECT_TRUE(ApplyConfigAssignment(&config, "spin_down_policy", "adaptive", &error));
  EXPECT_EQ(config.spin_down_policy, SpinDownPolicy::kAdaptive);
}

TEST(ApplyAssignmentTest, RejectsBadValues) {
  SimConfig config;
  std::string error;
  EXPECT_FALSE(ApplyConfigAssignment(&config, "device", "nope", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ApplyConfigAssignment(&config, "utilization", "1.5", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "dram", "lots", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "wibble", "1", &error));
}

TEST(ParseConfigTextTest, FullFile) {
  const std::string text = R"(
# experiment: high-utilization flash card
device = intel-datasheet
dram = 2m
utilization = 0.95
cleaning_policy = cost-benefit
separate_cleaning = true
)";
  std::string error;
  const auto config = ParseConfigText(text, &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->device.name, "intel-datasheet");
  EXPECT_DOUBLE_EQ(config->flash_utilization, 0.95);
  EXPECT_EQ(config->cleaning_policy, CleaningPolicy::kCostBenefit);
  EXPECT_TRUE(config->separate_cleaning_segment);
}

TEST(ApplyAssignmentTest, RejectsNonFiniteNumbers) {
  // NaN fails both `v < 0.0` and `v >= 1.0`, so a naive range check would
  // accept it and poison every downstream comparison; 1e999 is out of
  // double range.  Both must be value errors that name the key.
  SimConfig config;
  std::string error;
  EXPECT_FALSE(ApplyConfigAssignment(&config, "utilization", "nan", &error));
  EXPECT_NE(error.find("utilization"), std::string::npos);
  EXPECT_FALSE(ApplyConfigAssignment(&config, "warm_fraction", "nan", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "spin_down", "inf", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "spin_down", "1e999", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "dram", "1e999", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "fault.transient_error_rate", "nan", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "fault.endurance_scale", "nan", &error));
}

TEST(ParseConfigTextTest, ReportsLineNumbers) {
  std::string error;
  EXPECT_FALSE(ParseConfigText("device = intel-datasheet\nbogus line\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ParseConfigTextTest, ReportsLineAndKeyForMalformedNumbers) {
  std::string error;
  EXPECT_FALSE(ParseConfigText("device = intel-datasheet\ndram = 1e999\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("dram"), std::string::npos) << error;
  EXPECT_FALSE(ParseConfigText("utilization = nan\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(ApplyConfigArgsTest, SeparatesUnknownTokens) {
  SimConfig config;
  std::string error;
  const auto leftover =
      ApplyConfigArgs(&config, {"dram=1m", "--verbose", "utilization=0.5"}, &error);
  EXPECT_TRUE(error.empty());
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "--verbose");
  EXPECT_EQ(config.dram_bytes, 1024u * 1024);
}

TEST(ParseConfigTextTest, ParsedConfigDrivesASimulation) {
  const std::string text =
      "device = sdp5a-datasheet\n"
      "dram = 1m\n"
      "utilization = 0.7\n"
      "async_erasure = true\n";
  std::string error;
  const auto config = ParseConfigText(text, &error);
  ASSERT_TRUE(config.has_value()) << error;
  const SimResult result = RunNamedWorkload("synth", *config, 0.05);
  EXPECT_GT(result.total_energy_j(), 0.0);
  EXPECT_GT(result.write_response_ms.count(), 0u);
}

TEST(DescribeConfigTest, MentionsKeyFields) {
  SimConfig config = MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024);
  const std::string text = DescribeConfig(config);
  EXPECT_NE(text.find("sdp5-datasheet"), std::string::npos);
  EXPECT_NE(text.find("2048K"), std::string::npos);
}

}  // namespace
}  // namespace mobisim
