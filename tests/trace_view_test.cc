// Tests for the zero-copy mmap trace path: a warm cache entry is served as
// an mmap-backed TraceView whose records — and whose simulation results —
// are bit-identical to the copying loader and to plain generation; a torn
// entry falls back to regeneration and heals the cache; gc'ing an entry out
// from under a live view leaves the mapping readable (POSIX unlink
// semantics); and warm parallel sweeps stay deterministic across thread
// counts while serving every trace as a view.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/result_io.h"
#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/sweep_runner.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/trace/trace_cache.h"
#include "src/trace/trace_view.h"

namespace mobisim {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mobisim_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

BlockTrace SmallTrace() {
  return BlockMapper::Map(GenerateNamedWorkload("synth", 0.02, 7));
}

// Field-by-field equality of every record plus the trace-level metadata.
void ExpectSameData(const TraceView& view, const BlockTrace& trace) {
  ASSERT_EQ(view.size(), trace.records.size());
  EXPECT_EQ(view.name(), trace.name);
  EXPECT_EQ(view.block_bytes(), trace.block_bytes);
  EXPECT_EQ(view.total_blocks(), trace.total_blocks);
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const BlockRecord want = trace.records[i];
    const BlockRecord got = view.record(i);
    ASSERT_EQ(got.time_us, want.time_us) << "record " << i;
    ASSERT_EQ(got.op, want.op) << "record " << i;
    ASSERT_EQ(got.lba, want.lba) << "record " << i;
    ASSERT_EQ(got.block_count, want.block_count) << "record " << i;
    ASSERT_EQ(got.file_id, want.file_id) << "record " << i;
  }
}

TEST(TraceViewTest, FromBlockTraceCopiesExactly) {
  const BlockTrace trace = SmallTrace();
  const TraceView view = TraceView::FromBlockTrace(trace);
  EXPECT_FALSE(view.zero_copy());
  ExpectSameData(view, trace);
  // The round trip back to row form is exact too.
  EXPECT_EQ(SerializeBlockTrace(view.ToBlockTrace()), SerializeBlockTrace(trace));
}

TEST(TraceViewTest, WarmLoadIsZeroCopyAndBitIdentical) {
  const std::string dir = FreshDir("tv_warm");
  TraceCache cold(dir);
  const TraceView generated = LoadOrGenerateTraceView(&cold, "synth", 0.02, 7);
  ASSERT_FALSE(generated.empty());
  // A cold load generates: owned columns, nothing mapped.
  EXPECT_FALSE(generated.zero_copy());
  EXPECT_EQ(cold.stats().misses, 1u);
  EXPECT_EQ(cold.stats().stores, 1u);
  EXPECT_EQ(cold.stats().views, 0u);

  TraceCache warm(dir);
  const TraceView view = LoadOrGenerateTraceView(&warm, "synth", 0.02, 7);
  ASSERT_FALSE(view.empty());
  EXPECT_TRUE(view.zero_copy());
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(warm.stats().views, 1u);
  EXPECT_EQ(warm.stats().copies, 0u);

  // The mapped columns carry exactly the generated data, record for record.
  ExpectSameData(view, SmallTrace());
}

TEST(TraceViewTest, SimulationResultsIdenticalAcrossBackings) {
  const std::string dir = FreshDir("tv_sim");
  TraceCache cache(dir);
  LoadOrGenerateTraceView(&cache, "synth", 0.02, 7);  // populate the entry

  const BlockTrace trace = SmallTrace();
  TraceCache warm(dir);
  const TraceView view = LoadOrGenerateTraceView(&warm, "synth", 0.02, 7);
  ASSERT_TRUE(view.zero_copy());

  const SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  // Same simulation through the mmap view, the owned-column view, and the
  // row-form overload: every result field must match exactly.
  const std::string mapped = RowToJson(ResultToRow(RunSimulation(view, config)));
  const std::string owned =
      RowToJson(ResultToRow(RunSimulation(TraceView::FromBlockTrace(trace), config)));
  const std::string rows = RowToJson(ResultToRow(RunSimulation(trace, config)));
  EXPECT_EQ(mapped, owned);
  EXPECT_EQ(mapped, rows);
}

TEST(TraceViewTest, TornEntryFallsBackAndHeals) {
  const std::string dir = FreshDir("tv_torn");
  TraceCache cache(dir);
  LoadOrGenerateTraceView(&cache, "synth", 0.02, 7);
  const std::string path = cache.EntryPath(TraceCacheFingerprint("synth", 0.02, 7));
  ASSERT_TRUE(std::filesystem::exists(path));

  // Truncate the entry as a torn write would.  A direct LoadView must treat
  // it as a corrupt miss: empty view, file removed.
  std::filesystem::resize_file(path, 17);
  TraceCache torn(dir);
  EXPECT_TRUE(torn.LoadView(TraceCacheFingerprint("synth", 0.02, 7)).empty());
  EXPECT_EQ(torn.stats().corrupt, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));

  // The shared path regenerates, re-stores, and still returns correct data.
  TraceCache heal(dir);
  const TraceView regenerated = LoadOrGenerateTraceView(&heal, "synth", 0.02, 7);
  ASSERT_FALSE(regenerated.empty());
  EXPECT_FALSE(regenerated.zero_copy());  // this run generated
  EXPECT_EQ(heal.stats().misses, 1u);
  EXPECT_EQ(heal.stats().stores, 1u);
  ExpectSameData(regenerated, SmallTrace());

  // ...and the healed entry maps zero-copy on the next run.
  TraceCache again(dir);
  EXPECT_TRUE(LoadOrGenerateTraceView(&again, "synth", 0.02, 7).zero_copy());
}

TEST(TraceViewTest, GcEvictionKeepsLiveViewValid) {
  const std::string dir = FreshDir("tv_gc");
  TraceCache cache(dir);
  LoadOrGenerateTraceView(&cache, "synth", 0.02, 7);

  TraceCache warm(dir);
  const TraceView view = LoadOrGenerateTraceView(&warm, "synth", 0.02, 7);
  ASSERT_TRUE(view.zero_copy());

  // Evict everything while the view is live.  The entry leaves the
  // directory, but the unlinked file's pages stay valid until the last
  // mapping drops, so every record must still read back exactly.
  const TraceCacheGcResult gc = GcTraceCache(dir, 1);
  EXPECT_EQ(gc.kept, 0u);
  EXPECT_TRUE(ListTraceCache(dir).empty());
  ExpectSameData(view, SmallTrace());

  // The view still simulates correctly post-eviction.
  const SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  EXPECT_EQ(RowToJson(ResultToRow(RunSimulation(view, config))),
            RowToJson(ResultToRow(RunSimulation(SmallTrace(), config))));
}

TEST(TraceViewTest, WarmSweepDeterministicAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.base = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  spec.devices = {IntelCardDatasheet(), Sdp5Datasheet()};
  spec.workloads = {"synth"};
  spec.utilizations = {0.40, 0.80, 0.95};
  spec.seeds = {1, 7};
  spec.scale = 0.02;
  const std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  ASSERT_EQ(points.size(), 12u);

  const std::string dir = FreshDir("tv_sweep");
  TraceCache prime(dir);
  SweepOptions prime_options;
  prime_options.threads = 1;
  prime_options.trace_cache = &prime;
  const std::vector<SweepOutcome> serial = RunSweep(points, prime_options);

  // Warm + threaded: every distinct trace arrives as one zero-copy view
  // shared across the workers, and the rows match the serial run byte for
  // byte in point order.
  TraceCache warm(dir);
  SweepOptions warm_options;
  warm_options.threads = 4;
  warm_options.trace_cache = &warm;
  const std::vector<SweepOutcome> threaded = RunSweep(points, warm_options);
  EXPECT_EQ(warm.stats().views, 2u);  // 2 distinct (workload, scale, seed) keys
  EXPECT_EQ(warm.stats().copies, 0u);
  EXPECT_EQ(warm.stats().misses, 0u);

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(threaded[i].failed);
    EXPECT_EQ(RowToJson(serial[i].row), RowToJson(threaded[i].row)) << "point " << i;
  }
}

}  // namespace
}  // namespace mobisim
