// Tests for the FtlPolicy layer: the extracted log cleaners reproduce the
// pre-refactor sweeps byte-for-byte (golden JSONL equivalence), the spec
// fingerprints of every committed spec are pinned (the refactor must not
// move them), page-diff merge-on-read and diff-page accounting behave per
// the Kim/Whang/Song scheme, the FAT remap table wraps and flushes map
// pages, and the `backends=` / `ftl=` sweep dimensions enumerate correctly.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/config_text.h"
#include "src/core/result_io.h"
#include "src/flash/ftl_policy.h"
#include "src/runner/ablation.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/sweep_runner.h"

#ifndef MOBISIM_GOLDEN_DIR
#error "MOBISIM_GOLDEN_DIR must name the tests/golden directory"
#endif
#ifndef MOBISIM_SPEC_DIR
#error "MOBISIM_SPEC_DIR must name the repo's specs directory"
#endif

namespace mobisim {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Runs the spec serially and renders each row exactly as the JSONL sink
// does, so comparing against a golden file is a byte-level statement.
std::vector<std::string> SweepRowsJson(const ExperimentSpec& spec) {
  SweepOptions options;
  options.threads = 1;
  std::vector<std::string> rows;
  for (const SweepOutcome& outcome : RunSweep(EnumerateGrid(spec), options)) {
    EXPECT_FALSE(outcome.failed) << outcome.error;
    rows.push_back(RowToJson(outcome.row));
  }
  return rows;
}

// --- Golden equivalence: the refactor must not move a single byte ---------

TEST(FtlGoldenTest, CiReferenceSweepIsByteIdentical) {
  std::string error;
  const auto spec = ParseExperimentSpec(
      ReadFile(std::string(MOBISIM_SPEC_DIR) + "/ci_reference.spec"), &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const std::vector<std::string> golden =
      ReadLines(std::string(MOBISIM_GOLDEN_DIR) + "/ci_reference_sweep.jsonl");
  ASSERT_EQ(golden.size(), 32u);
  EXPECT_EQ(SweepRowsJson(*spec), golden);
}

TEST(FtlGoldenTest, CleaningPolicySweepIsByteIdentical) {
  // The exact grid the golden was captured from, spelled through the same
  // parser the CLI uses: all three extracted log cleaners at both
  // utilization extremes.
  std::string error;
  const auto spec = ParseExperimentSpec(
      "device = intel-datasheet\n"
      "workloads = synth\n"
      "utilizations = 0.50, 0.90\n"
      "cleaning_policies = greedy, cost-benefit, wear-aware\n"
      "seeds = 1\n"
      "scale = 0.2\n",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const std::vector<std::string> golden = ReadLines(
      std::string(MOBISIM_GOLDEN_DIR) + "/cleaning_policies_sweep.jsonl");
  ASSERT_EQ(golden.size(), 6u);
  EXPECT_EQ(SweepRowsJson(*spec), golden);
}

// Spec fingerprints gate benchdiff comparisons; the policy API must leave
// every committed spec's fingerprint where it was.  A change here means
// historical bench_db runs silently stop comparing — update baselines
// deliberately, never by accident.
TEST(FtlGoldenTest, CommittedSpecFingerprintsArePinned) {
  const struct {
    const char* file;
    const char* fingerprint;
  } kPins[] = {
      {"ci_reference.spec", "1b859d7daa61912e"},
      {"fault_endurance.spec", "d55aa17cfbd1bff5"},
      {"fault_power_loss.spec", "7c84a55605073a37"},
      {"fault_smoke.spec", "d27936fc27f6c4a2"},
      {"sweepd_error.spec", "fe6a2eb9ab61c83b"},
  };
  for (const auto& pin : kPins) {
    std::string error;
    const auto spec = ParseExperimentSpec(
        ReadFile(std::string(MOBISIM_SPEC_DIR) + "/" + pin.file), &error);
    ASSERT_TRUE(spec.has_value()) << pin.file << ": " << error;
    EXPECT_EQ(SpecFingerprint(*spec), pin.fingerprint) << pin.file;
  }
}

// --- Page-differential logging -------------------------------------------

TEST(PageDiffFtlTest, AbsorbsOverwritesAsDiffsThenMerges) {
  constexpr std::uint32_t kBlock = 4096;
  PageDiffFtl ftl(CleaningPolicy::kGreedy);
  ftl.AttachMetaWindow(/*base=*/100, /*available=*/400, kBlock);

  // First write of an unmapped block: the classic full-page append.
  HostWritePlan plan = ftl.PlanHostWrite(7, /*mapped=*/false, kBlock);
  EXPECT_EQ(plan.append_count, 1u);
  EXPECT_EQ(plan.appends[0], 7u);
  EXPECT_EQ(plan.programmed_bytes, kBlock);
  EXPECT_EQ(plan.merge_read_bytes, 0u);

  // Three overwrites absorb as quarter-page diffs (max_diffs = 3): no log
  // append of the block itself, a quarter page programmed each time.
  for (int i = 0; i < 3; ++i) {
    plan = ftl.PlanHostWrite(7, /*mapped=*/true, kBlock);
    EXPECT_EQ(plan.programmed_bytes, kBlock / 4);
    EXPECT_EQ(plan.merge_read_bytes, 0u);
  }
  EXPECT_EQ(ftl.counters().diff_writes, 3u);

  // The fourth overwrite finds the chain full: merge.  The base page plus
  // its three diffs are read back internally and the folded page rewritten.
  plan = ftl.PlanHostWrite(7, /*mapped=*/true, kBlock);
  EXPECT_EQ(plan.append_count, 1u);
  EXPECT_EQ(plan.appends[0], 7u);
  EXPECT_EQ(plan.programmed_bytes, kBlock);
  EXPECT_EQ(plan.merge_read_bytes, kBlock + 3u * (kBlock / 4));
  EXPECT_EQ(ftl.counters().diff_merges, 1u);

  // The merge cleared the chain: the next overwrite diffs again.
  plan = ftl.PlanHostWrite(7, /*mapped=*/true, kBlock);
  EXPECT_EQ(plan.programmed_bytes, kBlock / 4);
}

TEST(PageDiffFtlTest, MergeOnReadChargesOutstandingDiffs) {
  constexpr std::uint32_t kBlock = 4096;
  PageDiffFtl ftl(CleaningPolicy::kGreedy);
  ftl.AttachMetaWindow(100, 400, kBlock);

  // No diffs outstanding: reads are free.
  EXPECT_EQ(ftl.ExtraReadBytes(3), 0u);

  ftl.PlanHostWrite(3, false, kBlock);
  ftl.PlanHostWrite(3, true, kBlock);
  ftl.PlanHostWrite(3, true, kBlock);

  // Two outstanding diffs: the read folds both in at a quarter page each,
  // and keeps paying until a merge or trim clears the chain.
  EXPECT_EQ(ftl.ExtraReadBytes(3), 2u * (kBlock / 4));
  EXPECT_EQ(ftl.ExtraReadBytes(3), 2u * (kBlock / 4));
  EXPECT_EQ(ftl.counters().diff_merge_reads, 2u);

  ftl.OnTrim(3);
  EXPECT_EQ(ftl.ExtraReadBytes(3), 0u);

  // Metadata pages themselves never carry diffs.
  EXPECT_EQ(ftl.ExtraReadBytes(100), 0u);
}

TEST(PageDiffFtlTest, DiffPageAppendsOnceAPageAccumulates) {
  constexpr std::uint32_t kBlock = 4096;
  PageDiffFtl ftl(CleaningPolicy::kGreedy);
  ftl.AttachMetaWindow(100, 400, kBlock);
  ASSERT_EQ(ftl.pool_pages(), 32u);  // min(32, 400/4)

  for (std::uint64_t lba = 0; lba < 8; ++lba) {
    ftl.PlanHostWrite(lba, false, kBlock);
  }
  // Quarter-page diffs across distinct blocks share one diff page: the
  // fourth diff completes a page's worth and triggers the physical append
  // of diff page meta_base + 0.
  std::uint32_t diff_page_appends = 0;
  for (std::uint64_t lba = 0; lba < 4; ++lba) {
    const HostWritePlan plan = ftl.PlanHostWrite(lba, true, kBlock);
    if (plan.append_count > 0) {
      ++diff_page_appends;
      EXPECT_EQ(plan.appends[0], 100u);
    }
  }
  EXPECT_EQ(diff_page_appends, 1u);

  // The next full page of diffs lands on the next pool page (round-robin).
  for (std::uint64_t lba = 4; lba < 7; ++lba) {
    EXPECT_EQ(ftl.PlanHostWrite(lba, true, kBlock).append_count, 0u);
  }
  const HostWritePlan plan = ftl.PlanHostWrite(7, true, kBlock);
  ASSERT_EQ(plan.append_count, 1u);
  EXPECT_EQ(plan.appends[0], 101u);
}

TEST(PageDiffFtlTest, WithoutMetaWindowDegradesToIdentityPlans) {
  constexpr std::uint32_t kBlock = 4096;
  PageDiffFtl ftl(CleaningPolicy::kGreedy);  // no AttachMetaWindow
  const HostWritePlan plan = ftl.PlanHostWrite(7, true, kBlock);
  EXPECT_EQ(plan.append_count, 1u);
  EXPECT_EQ(plan.appends[0], 7u);
  EXPECT_EQ(plan.programmed_bytes, kBlock);
  EXPECT_EQ(ftl.counters().diff_writes, 0u);
}

// --- FAT-style block remapping -------------------------------------------

TEST(FatRemapFtlTest, TableWraparoundFlushesMapPages) {
  constexpr std::uint32_t kBlock = 4096;
  FatRemapFtl::Params params;
  params.table_entries = 3;
  params.map_pool_pages = 2;
  FatRemapFtl ftl(params);
  ftl.AttachMetaWindow(/*base=*/50, /*available=*/40, kBlock);

  // Fresh writes never consume table entries.
  for (std::uint64_t lba = 0; lba < 4; ++lba) {
    const HostWritePlan plan = ftl.PlanHostWrite(lba, false, kBlock);
    EXPECT_EQ(plan.append_count, 1u);
    EXPECT_EQ(plan.programmed_bytes, kBlock);
  }
  EXPECT_EQ(ftl.counters().remap_table_hits, 0u);
  EXPECT_EQ(ftl.table_cursor(), 0u);

  // Two overwrites advance the cursor without wrapping.
  EXPECT_EQ(ftl.PlanHostWrite(0, true, kBlock).append_count, 1u);
  EXPECT_EQ(ftl.PlanHostWrite(1, true, kBlock).append_count, 1u);
  EXPECT_EQ(ftl.table_cursor(), 2u);

  // The third overwrite fills the table: wraparound — cursor resets and the
  // plan carries a map-page append (map pool page 0) on top of the block.
  HostWritePlan plan = ftl.PlanHostWrite(2, true, kBlock);
  ASSERT_EQ(plan.append_count, 2u);
  EXPECT_EQ(plan.appends[0], 2u);
  EXPECT_EQ(plan.appends[1], 50u);
  EXPECT_EQ(plan.programmed_bytes, 2u * kBlock);
  EXPECT_EQ(ftl.table_cursor(), 0u);
  EXPECT_EQ(ftl.counters().remap_table_wraps, 1u);

  // The next wrap cycles to map pool page 1, then back to page 0.
  for (int i = 0; i < 3; ++i) {
    plan = ftl.PlanHostWrite(3, true, kBlock);
  }
  ASSERT_EQ(plan.append_count, 2u);
  EXPECT_EQ(plan.appends[1], 51u);
  EXPECT_EQ(ftl.counters().remap_table_wraps, 2u);
  EXPECT_EQ(ftl.counters().remap_table_hits, 6u);

  // Remapped blocks count table hits on read; trimmed blocks drop out.
  EXPECT_EQ(ftl.ExtraReadBytes(0), 0u);
  EXPECT_EQ(ftl.counters().remap_table_hits, 7u);
  ftl.OnTrim(0);
  EXPECT_EQ(ftl.ExtraReadBytes(0), 0u);
  EXPECT_EQ(ftl.counters().remap_table_hits, 7u);
}

TEST(FatRemapFtlTest, VictimOrderIsStrictFifo) {
  const FatRemapFtl ftl;
  VictimView view;
  view.blocks_per_segment = 16;
  view.fill_sequence = 10;
  VictimCandidate old_seg;
  old_seg.sequence = 1;
  old_seg.live = 15;  // nearly full of live data...
  VictimCandidate young_seg;
  young_seg.sequence = 9;
  young_seg.live = 1;  // ...but FIFO ignores liveness entirely
  EXPECT_GT(ftl.ScoreVictim(old_seg, view), ftl.ScoreVictim(young_seg, view));
  // Scores stay positive so the `score > -1` victim scan always engages.
  EXPECT_GT(ftl.ScoreVictim(young_seg, view), 0.0);
}

// --- Name parsing and the sweep dimensions -------------------------------

TEST(FtlSelectionTest, CleanerNamesMapToLogStructured) {
  const auto greedy = FtlSelectionByName("greedy");
  ASSERT_TRUE(greedy.has_value());
  EXPECT_EQ(greedy->kind, FtlPolicyKind::kLogStructured);
  ASSERT_TRUE(greedy->cleaner.has_value());
  EXPECT_EQ(*greedy->cleaner, CleaningPolicy::kGreedy);

  // Underscores are tolerated everywhere names are parsed.
  const auto cb = FtlSelectionByName("cost_benefit");
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(cb->kind, FtlPolicyKind::kLogStructured);
  EXPECT_EQ(*cb->cleaner, CleaningPolicy::kCostBenefit);

  const auto page_diff = FtlSelectionByName("page_diff");
  ASSERT_TRUE(page_diff.has_value());
  EXPECT_EQ(page_diff->kind, FtlPolicyKind::kPageDiff);
  EXPECT_FALSE(page_diff->cleaner.has_value());

  EXPECT_FALSE(FtlSelectionByName("fifo").has_value());
  EXPECT_FALSE(FtlSelectionByName("").has_value());
}

TEST(FtlDimensionTest, BackendAndFtlAxesMultiplyTheGrid) {
  ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "workloads", "synth", &error)) << error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "utilizations", "0.5", &error)) << error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "backends", "average-cost, geometry", &error))
      << error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "ftl", "greedy, page_diff, fat_remap", &error))
      << error;
  EXPECT_EQ(GridSize(spec), 6u);

  const std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  ASSERT_EQ(points.size(), 6u);
  // Backend is the outer axis, ftl the inner; every ftl point exports the
  // policy columns.
  EXPECT_FALSE(points[0].config.use_disk_geometry);
  EXPECT_TRUE(points[3].config.use_disk_geometry);
  EXPECT_EQ(points[0].config.ftl_policy, FtlPolicyKind::kLogStructured);
  EXPECT_EQ(points[0].config.cleaning_policy, CleaningPolicy::kGreedy);
  EXPECT_EQ(points[1].config.ftl_policy, FtlPolicyKind::kPageDiff);
  EXPECT_EQ(points[2].config.ftl_policy, FtlPolicyKind::kFatRemap);
  for (const ExperimentPoint& point : points) {
    EXPECT_TRUE(point.config.export_ftl_metrics);
  }

  EXPECT_FALSE(ApplySpecAssignment(&spec, "ftl", "greedy, fifo", &error));
  EXPECT_FALSE(ApplySpecAssignment(&spec, "backends", "geometry, ramdisk", &error));
}

TEST(FtlDimensionTest, FtlRowsCarryPolicyColumnsAndHistoricRowsDoNot) {
  ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "workloads", "synth", &error)) << error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "utilizations", "0.5", &error)) << error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "scale", "0.05", &error)) << error;

  // A plain cleaner sweep keeps the historical schema: no ftl column.
  const auto plain = EnumerateGrid(spec);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(PointToRow(plain[0]).Find("ftl"), nullptr);

  ASSERT_TRUE(ApplySpecAssignment(&spec, "ftl", "greedy, page_diff", &error)) << error;
  const auto points = EnumerateGrid(spec);
  ASSERT_EQ(points.size(), 2u);
  const ResultRow row = PointToRow(points[1]);
  ASSERT_NE(row.Find("ftl"), nullptr);
  EXPECT_EQ(row.Text("ftl", ""), "page-diff");
  EXPECT_EQ(row.Text("backend", ""), "average-cost");
}

// --- Ablation matrix rendering -------------------------------------------

TEST(AblationMatrixTest, RendersPolicyColumnsAndErrorCells) {
  auto make_row = [](const char* ftl, const char* cleaner, double util,
                     double energy, bool error) {
    ResultRow row;
    row.AddText("workload", "synth");
    row.AddText("device", "intel-datasheet");
    row.AddNumber("utilization", util);
    row.AddText("cleaning_policy", cleaner);
    row.AddText("ftl", ftl);
    if (error) {
      row.AddText("_error", "boom");
    } else {
      row.AddNumber("total_energy_j", energy);
    }
    return row;
  };
  const std::vector<ResultRow> rows = {
      make_row("log", "greedy", 0.5, 10.0, false),
      make_row("log", "greedy", 0.5, 14.0, false),  // replica: means to 12.00
      make_row("page-diff", "greedy", 0.5, 8.0, false),
      make_row("fat-remap", "greedy", 0.5, 0.0, true),
  };
  const std::string matrix = RenderAblationMatrix(rows);
  EXPECT_NE(matrix.find("| greedy | page-diff | fat-remap |"), std::string::npos);
  EXPECT_NE(matrix.find("synth / intel-datasheet / 50% | 12.00 | 8.00 | ERR |"),
            std::string::npos);
  EXPECT_NE(RenderAblationMatrix({}).find("(no data rows)"), std::string::npos);
}

}  // namespace
}  // namespace mobisim
