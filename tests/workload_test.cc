// Tests for the workload generators: the section 4.1 synthetic workload and
// the Table-3-calibrated mac/dos/hp stand-ins.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/trace/calibrated_workload.h"
#include "src/trace/synth_workload.h"
#include "src/trace/trace_stats.h"

namespace mobisim {
namespace {

TEST(SynthWorkloadTest, MatchesSection41Mix) {
  SynthWorkloadConfig config;
  config.op_count = 50000;
  const Trace trace = GenerateSynthWorkload(config);
  EXPECT_EQ(trace.records.size(), 50000u);

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t erases = 0;
  std::uint64_t half_kb = 0;
  std::uint64_t small = 0;
  std::uint64_t large = 0;
  std::uint64_t hot = 0;
  const std::uint32_t hot_count = 192 / 8;  // 1/8 of 192 files
  for (const TraceRecord& rec : trace.records) {
    if (rec.file_id < hot_count) {
      ++hot;
    }
    switch (rec.op) {
      case OpType::kRead:
        ++reads;
        break;
      case OpType::kWrite:
        ++writes;
        break;
      case OpType::kErase:
        ++erases;
        continue;
    }
    if (rec.size_bytes == 512) {
      ++half_kb;
    } else if (rec.size_bytes <= 16 * 1024) {
      ++small;
    } else {
      ++large;
    }
    EXPECT_LE(rec.offset + rec.size_bytes, 32u * 1024) << "access exceeds file";
  }
  const double n = static_cast<double>(trace.records.size());
  // The erase-then-full-rewrite rule shifts a few percent of reads on erased
  // files into writes, so the achieved mix sits slightly off 60/35/5.
  EXPECT_NEAR(reads / n, 0.60, 0.04);
  EXPECT_NEAR(writes / n, 0.35, 0.04);
  EXPECT_NEAR(erases / n, 0.05, 0.01);
  // 7/8 of accesses to 1/8 of the files.
  EXPECT_NEAR(hot / n, 7.0 / 8.0, 0.02);
  // Size mix 40/40/20 (the erase-rewrite rule perturbs it slightly).
  const double rw = static_cast<double>(reads + writes);
  EXPECT_NEAR(half_kb / rw, 0.40, 0.05);
  EXPECT_NEAR(small / rw, 0.40, 0.05);
  EXPECT_NEAR(large / rw, 0.20, 0.05);
}

TEST(SynthWorkloadTest, EraseThenFullRewrite) {
  SynthWorkloadConfig config;
  config.op_count = 50000;
  const Trace trace = GenerateSynthWorkload(config);
  std::vector<bool> erased(192, false);
  bool saw_full_rewrite = false;
  for (const TraceRecord& rec : trace.records) {
    if (rec.op == OpType::kErase) {
      erased[rec.file_id] = true;
    } else if (erased[rec.file_id]) {
      // First touch after an erase must be a full-unit write.
      EXPECT_EQ(rec.op, OpType::kWrite);
      EXPECT_EQ(rec.offset, 0u);
      EXPECT_EQ(rec.size_bytes, 32u * 1024);
      erased[rec.file_id] = false;
      saw_full_rewrite = true;
    }
  }
  EXPECT_TRUE(saw_full_rewrite);
}

TEST(SynthWorkloadTest, DeterministicForSeed) {
  SynthWorkloadConfig config;
  config.op_count = 1000;
  const Trace a = GenerateSynthWorkload(config);
  const Trace b = GenerateSynthWorkload(config);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].time_us, b.records[i].time_us);
    EXPECT_EQ(a.records[i].file_id, b.records[i].file_id);
  }
}

// Calibration checks against Table 3, run at reduced scale for speed.  The
// tolerances are loose: these are stochastic stand-ins, and the benches
// report the exact achieved statistics.
struct Target {
  const char* name;
  double duration_sec;
  double distinct_kb;
  double read_fraction;
  std::uint32_t block_bytes;
  double read_blocks;
  double write_blocks;
  double gap_mean_sec;
};

class CalibratedWorkloadTest : public ::testing::TestWithParam<Target> {};

TEST_P(CalibratedWorkloadTest, MatchesTable3) {
  const Target& target = GetParam();
  const Trace trace = GenerateNamedWorkload(target.name, /*scale=*/1.0);
  const TraceStats stats = ComputeTraceStats(trace, 0.1);

  EXPECT_EQ(stats.block_bytes, target.block_bytes);
  EXPECT_NEAR(stats.duration_sec / target.duration_sec, 1.0, 0.25);
  EXPECT_NEAR(stats.read_fraction, target.read_fraction, 0.05);
  EXPECT_NEAR(stats.read_blocks.mean() / target.read_blocks, 1.0, 0.25);
  EXPECT_NEAR(stats.write_blocks.mean() / target.write_blocks, 1.0, 0.25);
  // The heavy-tailed gap distribution makes the sample mean noisy (a dozen
  // or so tail draws dominate it), hence the wide band.
  EXPECT_NEAR(stats.interarrival_sec.mean() / target.gap_mean_sec, 1.0, 0.35);
  EXPECT_GT(static_cast<double>(stats.distinct_kbytes), 0.4 * target.distinct_kb);
  EXPECT_LT(static_cast<double>(stats.distinct_kbytes), 1.5 * target.distinct_kb);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, CalibratedWorkloadTest,
    ::testing::Values(Target{"mac", 12600, 22000, 0.50, 1024, 1.3, 1.2, 0.078},
                      Target{"dos", 5400, 16300, 0.24, 512, 3.8, 3.4, 0.528},
                      Target{"hp", 380160, 32000, 0.38, 1024, 4.3, 6.2, 11.1}),
    [](const ::testing::TestParamInfo<Target>& info) { return info.param.name; });

TEST(CalibratedWorkloadTest, DosContainsDeletions) {
  const Trace trace = GenerateNamedWorkload("dos", 0.5);
  std::uint64_t erases = 0;
  for (const TraceRecord& rec : trace.records) {
    erases += rec.op == OpType::kErase ? 1 : 0;
  }
  EXPECT_GT(erases, 0u);
}

TEST(CalibratedWorkloadTest, MacAndHpContainNoDeletions) {
  for (const char* name : {"mac", "hp"}) {
    const Trace trace = GenerateNamedWorkload(name, 0.2);
    for (const TraceRecord& rec : trace.records) {
      ASSERT_NE(rec.op, OpType::kErase) << name;
    }
  }
}

TEST(CalibratedWorkloadTest, DriftMovesTheWorkingSet) {
  // With drift, the set of hot files early in the trace differs from the set
  // late in the trace; without drift they coincide.
  auto hot_overlap = [](double drift_cycles) {
    CalibratedWorkloadConfig config = MacWorkloadConfig(0.3);
    config.drift_cycles = drift_cycles;
    const Trace trace = GenerateCalibratedWorkload(config);
    auto top_files = [&](std::size_t begin, std::size_t end) {
      std::unordered_map<std::uint32_t, int> counts;
      for (std::size_t i = begin; i < end; ++i) {
        ++counts[trace.records[i].file_id];
      }
      std::vector<std::pair<int, std::uint32_t>> ranked;
      for (const auto& [id, n] : counts) {
        ranked.emplace_back(n, id);
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::set<std::uint32_t> top;
      for (std::size_t i = 0; i < std::min<std::size_t>(20, ranked.size()); ++i) {
        top.insert(ranked[i].second);
      }
      return top;
    };
    const std::size_t n = trace.records.size();
    const auto early = top_files(0, n / 4);
    const auto late = top_files(3 * n / 4, n);
    std::size_t overlap = 0;
    for (const std::uint32_t id : early) {
      overlap += late.count(id);
    }
    return static_cast<double>(overlap) / static_cast<double>(early.size());
  };
  EXPECT_LT(hot_overlap(0.9), 0.3);  // drifted: mostly different hot sets
  EXPECT_GT(hot_overlap(0.0), 0.7);  // stationary: mostly the same
}

TEST(CalibratedWorkloadTest, SeedsProduceDistinctButSimilarTraces) {
  const Trace a = GenerateNamedWorkload("dos", 0.3, 1);
  const Trace b = GenerateNamedWorkload("dos", 0.3, 2);
  ASSERT_EQ(a.records.size(), b.records.size());
  int same = 0;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    same += a.records[i].file_id == b.records[i].file_id ? 1 : 0;
  }
  // Different realizations...
  EXPECT_LT(same, static_cast<int>(a.records.size()) / 2);
  // ...of the same distribution.
  const TraceStats sa = ComputeTraceStats(a);
  const TraceStats sb = ComputeTraceStats(b);
  EXPECT_NEAR(sa.read_fraction, sb.read_fraction, 0.05);
}

TEST(CalibratedWorkloadTest, AccessesStayWithinFiles) {
  const Trace trace = GenerateNamedWorkload("hp", 0.05);
  std::unordered_map<std::uint32_t, std::uint64_t> max_end;
  for (const TraceRecord& rec : trace.records) {
    if (rec.op == OpType::kErase) {
      continue;
    }
    max_end[rec.file_id] = std::max(max_end[rec.file_id], rec.offset + rec.size_bytes);
    ASSERT_GT(rec.size_bytes, 0u);
    ASSERT_EQ(rec.offset % trace.block_bytes, 0u);
    ASSERT_EQ(rec.size_bytes % trace.block_bytes, 0u);
  }
  // File sizes are bounded by the generator's cap (16x the mean).
  for (const auto& [id, end] : max_end) {
    ASSERT_LE(end, static_cast<std::uint64_t>(16.5 * 20.0 * 1024.0));
  }
}

TEST(CalibratedWorkloadTest, TimesAreMonotonic) {
  const Trace trace = GenerateNamedWorkload("mac", 0.2);
  for (std::size_t i = 1; i < trace.records.size(); ++i) {
    ASSERT_GE(trace.records[i].time_us, trace.records[i - 1].time_us);
  }
}

}  // namespace
}  // namespace mobisim
