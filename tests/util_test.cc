// Unit tests for src/util: RNG determinism and distribution moments,
// streaming statistics, histograms, energy metering, table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/util/energy_meter.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace mobisim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(UsFromMs(1.5), 1500);
  EXPECT_EQ(UsFromSec(2.0), 2000000);
  EXPECT_DOUBLE_EQ(MsFromUs(2500), 2.5);
  EXPECT_DOUBLE_EQ(SecFromUs(1500000), 1.5);
}

TEST(SimTimeTest, TransferTime) {
  // 1024 bytes at 1 KB/s = 1 second.
  EXPECT_EQ(TransferTimeUs(1024, 1.0), kUsPerSec);
  EXPECT_EQ(TransferTimeUs(0, 100.0), 0);
  EXPECT_EQ(TransferTimeUs(1024, 0.0), 0);
  // 4 KB at 2125 KB/s ~ 1.88 ms.
  const SimTime t = TransferTimeUs(4096, 2125.0);
  EXPECT_NEAR(static_cast<double>(t), 1882.0, 2.0);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.NextU32() == b.NextU32() ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.Exponential(3.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += parent.NextU32() == child.NextU32() ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(29);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewFavoursLowRanks) {
  Rng rng(31);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(DiscreteTest, RespectsWeights) {
  Rng rng(37);
  DiscreteDistribution dist({1.0, 3.0});
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ones += dist.Sample(rng) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(0, 10);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(ReservoirSampleTest, ExactWhenUnderCapacity) {
  ReservoirSample res(100);
  for (int i = 0; i <= 10; ++i) {
    res.Add(static_cast<double>(i));
  }
  EXPECT_EQ(res.count(), 11u);
  EXPECT_DOUBLE_EQ(res.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(res.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(res.Quantile(1.0), 10.0);
}

TEST(ReservoirSampleTest, EmptyIsZero) {
  ReservoirSample res(16);
  EXPECT_DOUBLE_EQ(res.Quantile(0.5), 0.0);
  EXPECT_EQ(res.count(), 0u);
}

TEST(ReservoirSampleTest, ApproximatesLargeStream) {
  ReservoirSample res(4096);
  Rng rng(99);
  for (int i = 0; i < 200000; ++i) {
    res.Add(rng.Uniform(0.0, 100.0));
  }
  EXPECT_EQ(res.count(), 200000u);
  EXPECT_EQ(res.sample_size(), 4096u);
  EXPECT_NEAR(res.Quantile(0.5), 50.0, 4.0);
  EXPECT_NEAR(res.Quantile(0.95), 95.0, 4.0);
}

TEST(ReservoirSampleTest, Deterministic) {
  ReservoirSample a(64);
  ReservoirSample b(64);
  Rng rng_a(5);
  Rng rng_b(5);
  for (int i = 0; i < 10000; ++i) {
    a.Add(rng_a.NextDouble());
    b.Add(rng_b.NextDouble());
  }
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), b.Quantile(0.5));
}

TEST(HistogramTest, BucketsAndQuantiles) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i) / 10.0);  // 0.0 .. 9.9 uniformly
  }
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 0.5);
  EXPECT_NEAR(h.Quantile(0.9), 9.0, 0.5);
}

TEST(HistogramTest, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-1.0);
  h.Add(100.0);
  h.Add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(EnergyMeterTest, IntegratesPowerOverTime) {
  EnergyMeter meter({{"idle", 0.7}, {"active", 1.75}});
  meter.Accumulate(0, UsFromSec(10));  // 7 J
  meter.Accumulate(1, UsFromSec(2));   // 3.5 J
  EXPECT_NEAR(meter.mode_joules(0), 7.0, 1e-9);
  EXPECT_NEAR(meter.mode_joules(1), 3.5, 1e-9);
  EXPECT_NEAR(meter.total_joules(), 10.5, 1e-9);
  EXPECT_EQ(meter.mode_time_us(0), UsFromSec(10));
  EXPECT_EQ(meter.mode_name(1), "active");
}

TEST(EnergyMeterTest, DirectJoules) {
  EnergyMeter meter({{"refresh", 0.0}});
  meter.AccumulateJoules(0, 1.25);
  EXPECT_NEAR(meter.total_joules(), 1.25, 1e-12);
}

TEST(TablePrinterTest, AlignsAndCounts) {
  TablePrinter table({"Device", "Energy (J)"});
  table.BeginRow().Cell("cu140").Cell(8854.0, 0);
  table.BeginRow().Cell("intel").Cell(888.0, 0);
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("cu140"), std::string::npos);
  EXPECT_NE(text.find("8854"), std::string::npos);
  EXPECT_NE(text.find("Device"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace mobisim
