// Tests for the section-3 micro-benchmark harness itself.
#include <gtest/gtest.h>

#include "src/device/device_catalog.h"
#include "src/mffs/microbench.h"
#include "src/mffs/testbed_device.h"
#include "src/util/rng.h"

namespace mobisim {
namespace {

// A testbed device with constant per-chunk cost, for exact arithmetic.
class ConstantDevice : public TestbedDevice {
 public:
  explicit ConstantDevice(double ms) : ms_(ms) {}
  double WriteChunkMs(std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t,
                      double) override {
    ++writes_;
    return ms_;
  }
  double ReadChunkMs(std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t,
                     double) override {
    ++reads_;
    return ms_;
  }
  void DeleteFile(std::uint32_t) override {}
  void Format() override {}
  std::string name() const override { return "constant"; }

  int writes_ = 0;
  int reads_ = 0;

 private:
  double ms_;
};

TEST(MicroBenchTest, WriteVolumeAndChunking) {
  ConstantDevice device(10.0);
  const MicroBenchResult result =
      BenchWriteFiles(device, /*file=*/16 * 1024, /*chunk=*/4096, /*total=*/64 * 1024, 1.0);
  EXPECT_EQ(result.total_bytes, 64u * 1024);
  EXPECT_EQ(device.writes_, 16);  // 4 files x 4 chunks
  EXPECT_EQ(result.latency_ms.size(), 16u);
  EXPECT_DOUBLE_EQ(result.total_ms, 160.0);
  // Throughput: 64 KB in 0.16 s = 400 KB/s.
  EXPECT_NEAR(result.throughput_kbps(), 400.0, 1e-9);
}

TEST(MicroBenchTest, PartialLastChunk) {
  ConstantDevice device(1.0);
  const MicroBenchResult result = BenchWriteFiles(device, 5000, 4096, 10000, 1.0);
  // File layout: chunks of 4096 + 904 per 5000-byte file; 10000 bytes total.
  EXPECT_EQ(result.total_bytes, 10000u);
  EXPECT_EQ(device.writes_, 4);
}

TEST(MicroBenchTest, ReadMirrorsWriteLayout) {
  ConstantDevice device(2.0);
  const MicroBenchResult result = BenchReadFiles(device, 8192, 4096, 32 * 1024, 1.0);
  EXPECT_EQ(device.reads_, 8);
  EXPECT_EQ(result.total_bytes, 32u * 1024);
}

TEST(MicroBenchTest, OverwritePassesCoverRequestedVolume) {
  ConstantDevice device(1.0);
  Rng rng(1);
  const auto passes =
      BenchOverwritePasses(device, 64 * 1024, 16 * 1024, 4096, 3, 1.0, rng, 32 * 1024);
  ASSERT_EQ(passes.size(), 3u);
  // Setup: 16 chunks; each pass: 4 chunks. 16 + 12 = 28 writes.
  EXPECT_EQ(device.writes_, 28);
  for (const double kbps : passes) {
    EXPECT_NEAR(kbps, 4096.0 / 1024.0 * 1000.0, 1.0);  // 4 KB per 1 ms
  }
}

TEST(MicroBenchTest, ThroughputZeroWhenNoTime) {
  MicroBenchResult result;
  EXPECT_DOUBLE_EQ(result.throughput_kbps(), 0.0);
}

TEST(MffsConfigTest, DefaultMatchesTable2Card) {
  const MffsConfig config = DefaultMffsConfig();
  EXPECT_EQ(config.card.erase_segment_bytes, 128u * 1024);
  EXPECT_DOUBLE_EQ(config.card.erase_ms_per_segment, 1600.0);
  EXPECT_TRUE(config.compression.enabled);
}

}  // namespace
}  // namespace mobisim
