// Tests for the hybrid disk+flash store.
#include <gtest/gtest.h>

#include "src/hybrid/hybrid_store.h"

namespace mobisim {
namespace {

HybridConfig SmallConfig() {
  HybridConfig config;
  config.flash_bytes = 1024 * 1024;
  config.dram_bytes = 0;  // isolate placement behaviour
  config.block_bytes = 1024;
  config.half_life_sec = 1000.0;  // effectively no decay within a test
  config.promote_heat = 3.0;      // promote quickly in the small tests
  return config;
}

BlockRecord Rec(SimTime t, OpType op, std::uint64_t lba, std::uint32_t count,
                std::uint32_t file) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = file;
  return rec;
}

TEST(HybridStoreTest, ColdFilesStayOnDisk) {
  HybridStore store(SmallConfig());
  const SimTime response = store.Handle(Rec(0, OpType::kRead, 0, 2, 1));
  EXPECT_GT(response, UsFromMs(20));  // disk service
  EXPECT_EQ(store.promotions(), 0u);
  EXPECT_EQ(store.flash_resident_blocks(), 0u);
}

TEST(HybridStoreTest, RepeatedAccessPromotesToFlash) {
  HybridStore store(SmallConfig());
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    store.Handle(Rec(t, OpType::kRead, 0, 2, 1));
    t += kUsPerSec;
  }
  EXPECT_EQ(store.promotions(), 1u);
  EXPECT_EQ(store.flash_resident_blocks(), 2u);
  // Subsequent accesses are served by flash, fast.
  const SimTime response = store.Handle(Rec(t, OpType::kRead, 0, 2, 1));
  EXPECT_LT(response, UsFromMs(5));
  EXPECT_GT(store.flash_service_fraction(), 0.0);
}

TEST(HybridStoreTest, FlashResidentWritesLeaveDiskAsleep) {
  HybridStore store(SmallConfig());
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    store.Handle(Rec(t, OpType::kWrite, 0, 2, 1));
    t += kUsPerSec;
  }
  ASSERT_EQ(store.promotions(), 1u);
  const std::uint64_t spinups_before = store.disk_counters().spinups;
  // Long idle: the disk sleeps; flash-resident writes must not wake it.
  t += 60 * kUsPerSec;
  store.Handle(Rec(t, OpType::kWrite, 0, 2, 1));
  EXPECT_EQ(store.disk_counters().spinups, spinups_before);
}

TEST(HybridStoreTest, HotterFileDisplacesColdResident) {
  HybridConfig config = SmallConfig();
  config.flash_fill_fraction = 0.005;  // tiny flash: ~5 blocks
  HybridStore store(config);
  SimTime t = 0;
  // File 1 becomes resident.
  for (int i = 0; i < 5; ++i) {
    store.Handle(Rec(t, OpType::kRead, 0, 4, 1));
    t += kUsPerSec;
  }
  ASSERT_EQ(store.promotions(), 1u);
  // File 2 becomes much hotter; file 1 cools off.
  for (int i = 0; i < 30; ++i) {
    store.Handle(Rec(t, OpType::kRead, 100, 4, 2));
    t += kUsPerSec;
  }
  EXPECT_GE(store.promotions(), 2u);
  EXPECT_GE(store.demotions(), 1u);
}

TEST(HybridStoreTest, ExtentGrowthDemotesBeforeRouting) {
  HybridStore store(SmallConfig());
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    store.Handle(Rec(t, OpType::kRead, 0, 2, 1));
    t += kUsPerSec;
  }
  ASSERT_EQ(store.promotions(), 1u);
  // Access beyond the promoted extent: the store must handle it safely.
  store.Handle(Rec(t, OpType::kWrite, 0, 8, 1));
  EXPECT_GE(store.demotions(), 1u);
}

TEST(HybridStoreTest, EraseReleasesFlash) {
  HybridStore store(SmallConfig());
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    store.Handle(Rec(t, OpType::kWrite, 0, 2, 1));
    t += kUsPerSec;
  }
  ASSERT_GT(store.flash_resident_blocks(), 0u);
  store.Handle(Rec(t, OpType::kErase, 0, 2, 1));
  EXPECT_EQ(store.flash_resident_blocks(), 0u);
}

TEST(HybridStoreTest, EnergySplitsAcrossDevices) {
  HybridStore store(SmallConfig());
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    store.Handle(Rec(t, OpType::kRead, static_cast<std::uint64_t>(i) * 4, 2,
                     static_cast<std::uint32_t>(i)));
    t += kUsPerSec;
  }
  store.Finish(t);
  EXPECT_GT(store.disk_energy_j(), 0.0);
  EXPECT_GT(store.total_energy_j(), store.disk_energy_j());
}

}  // namespace
}  // namespace mobisim
