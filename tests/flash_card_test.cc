// Unit and property tests for the flash memory card: out-of-place writes,
// background/on-demand cleaning, utilization effects, stalls, endurance.
#include <gtest/gtest.h>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/device/flash_card.h"
#include "src/util/rng.h"

namespace mobisim {
namespace {

DeviceSpec TestCard() {
  DeviceSpec s;
  s.name = "test-card";
  s.kind = DeviceKind::kFlashCard;
  s.read_overhead_ms = 0.0;
  s.write_overhead_ms = 0.0;
  s.sequential_overhead_ms = 0.0;
  s.read_kbps = 8192.0;
  s.write_kbps = 256.0;
  s.erase_segment_bytes = 4 * 1024;  // 4 blocks per segment
  s.erase_ms_per_segment = 100.0;
  s.read_w = 0.5;
  s.write_w = 0.5;
  s.erase_w = 0.5;
  s.idle_w = 0.001;
  return s;
}

DeviceOptions TestOptions(bool background = true) {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = 64 * 1024;  // 16 segments
  options.background_cleaning = background;
  return options;
}

BlockRecord Rec(SimTime t, OpType op, std::uint64_t lba, std::uint32_t count,
                std::uint32_t file = 1) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = file;
  return rec;
}

TEST(FlashCardTest, ReadAndWriteTiming) {
  FlashCard card(TestCard(), TestOptions());
  EXPECT_EQ(card.Read(0, Rec(0, OpType::kRead, 0, 8)), TransferTimeUs(8192, 8192.0));
  const SimTime t2 = kUsPerSec;
  EXPECT_EQ(card.Write(t2, Rec(t2, OpType::kWrite, 0, 1)), TransferTimeUs(1024, 256.0));
}

TEST(FlashCardTest, PreloadReachesUtilization) {
  FlashCard card(TestCard(), TestOptions());
  card.Preload(16, 0.5);
  EXPECT_NEAR(card.segments().utilization(), 0.5, 0.01);
  EXPECT_TRUE(card.segments().CheckInvariants());
  // All trace blocks mapped.
  for (std::uint64_t lba = 0; lba < 16; ++lba) {
    EXPECT_TRUE(card.segments().IsMapped(lba));
  }
}

TEST(FlashCardTest, BackgroundCleaningKeepsReserveDuringIdle) {
  FlashCard card(TestCard(), TestOptions());
  card.Preload(16, 0.75);  // 48 of 64 blocks live
  // Overwrite steadily with generous idle time: cleaning happens in the
  // background, so writes never stall.
  SimTime now = 0;
  for (int i = 0; i < 200; ++i) {
    now += 2 * kUsPerSec;
    const SimTime response = card.Write(now, Rec(now, OpType::kWrite, i % 16, 1));
    EXPECT_LT(response, UsFromMs(20)) << "write " << i << " stalled";
  }
  EXPECT_GT(card.counters().clean_jobs, 0u);
  EXPECT_EQ(card.counters().write_stalls, 0u);
  EXPECT_TRUE(card.segments().CheckInvariants());
}

TEST(FlashCardTest, BurstWritesStallForCleaning) {
  FlashCard card(TestCard(), TestOptions());
  card.Preload(16, 0.75);
  // A dense burst with no idle time must eventually wait for erasure.
  SimTime now = 0;
  SimTime worst = 0;
  for (int i = 0; i < 200; ++i) {
    const SimTime response = card.Write(now, Rec(now, OpType::kWrite, i % 16, 1));
    worst = std::max(worst, response);
    now += 100;  // 0.1 ms apart: far faster than the card can erase
  }
  EXPECT_GT(card.counters().write_stalls, 0u);
  EXPECT_GE(worst, UsFromMs(100));  // at least one erase on the critical path
  EXPECT_TRUE(card.segments().CheckInvariants());
}

TEST(FlashCardTest, OnDemandCleaningChargesWrites) {
  FlashCard card(TestCard(), TestOptions(/*background=*/false));
  card.Preload(16, 0.75);
  SimTime now = 0;
  SimTime total_response = 0;
  for (int i = 0; i < 100; ++i) {
    now += 10 * kUsPerSec;  // plenty of idle that on-demand mode must not use
    total_response += card.Write(now, Rec(now, OpType::kWrite, i % 16, 1));
  }
  EXPECT_GT(card.counters().clean_jobs, 0u);
  // All cleaning time was charged to writes.
  EXPECT_GE(total_response, static_cast<SimTime>(card.counters().clean_jobs) * UsFromMs(100));
  EXPECT_TRUE(card.segments().CheckInvariants());
}

TEST(FlashCardTest, TrimReclaimsSpace) {
  FlashCard card(TestCard(), TestOptions());
  card.Preload(16, 0.75);
  const std::uint64_t live_before = card.segments().live_blocks();
  card.Trim(0, Rec(0, OpType::kErase, 0, 8));
  EXPECT_EQ(card.segments().live_blocks(), live_before - 8);
}

TEST(FlashCardTest, EraseCountersTrackEndurance) {
  FlashCard card(TestCard(), TestOptions());
  card.Preload(16, 0.75);
  SimTime now = 0;
  for (int i = 0; i < 300; ++i) {
    now += kUsPerSec;
    card.Write(now, Rec(now, OpType::kWrite, i % 16, 1));
  }
  const DeviceCounters& counters = card.counters();
  EXPECT_GT(counters.segment_erases, 0u);
  EXPECT_GT(counters.segment_erase_stats.max(), 0.0);
  EXPECT_EQ(counters.segment_erases,
            static_cast<std::uint64_t>(counters.segment_erase_stats.sum()));
}

TEST(FlashCardTest, HigherUtilizationCopiesMore) {
  // The paper's section 5.2 effect, at model scale: same traffic, higher
  // utilization => more copying and more erasures.
  auto run = [](double util) {
    DeviceOptions options = TestOptions();
    options.capacity_bytes = 256 * 1024;  // 64 segments
    FlashCard card(TestCard(), options);
    card.Preload(64, util);
    SimTime now = 0;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      now += kUsPerSec / 2;
      const std::uint64_t lba = static_cast<std::uint64_t>(rng.UniformInt(0, 63));
      card.Write(now, Rec(now, OpType::kWrite, lba, 1));
    }
    return card.counters();
  };
  const DeviceCounters low = run(0.40);
  const DeviceCounters high = run(0.90);
  EXPECT_GT(high.blocks_copied, low.blocks_copied);
  EXPECT_GT(high.segment_erases, low.segment_erases);
}

TEST(FlashCardTest, InterleavedPrefillIsWorseThanSegregated) {
  auto run = [](bool interleave) {
    DeviceOptions options = TestOptions();
    options.capacity_bytes = 256 * 1024;
    FlashCard card(TestCard(), options);
    card.Preload(64, 0.90, interleave);
    SimTime now = 0;
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
      now += kUsPerSec / 2;
      card.Write(now, Rec(now, OpType::kWrite,
                          static_cast<std::uint64_t>(rng.UniformInt(0, 63)), 1));
    }
    return card.counters().blocks_copied;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(FlashCardTest, ReadsDoNotConsumeSlots) {
  FlashCard card(TestCard(), TestOptions());
  card.Preload(16, 0.5);
  const std::uint64_t free_before = card.segments().free_slots();
  card.Read(0, Rec(0, OpType::kRead, 0, 8));
  EXPECT_EQ(card.segments().free_slots(), free_before);
}

TEST(FlashCardTest, EnergyIncludesCleaningWork) {
  FlashCard card(TestCard(), TestOptions());
  card.Preload(16, 0.75);
  SimTime now = 0;
  for (int i = 0; i < 200; ++i) {
    now += kUsPerSec;
    card.Write(now, Rec(now, OpType::kWrite, i % 16, 1));
  }
  card.Finish(now + kUsPerSec);
  const EnergyMeter& meter = card.energy();
  // Mode 2 is erase, mode 3 is clean-copy (see FlashCard's meter layout).
  EXPECT_GT(meter.mode_joules(2), 0.0);
  EXPECT_GT(meter.mode_joules(3), 0.0);
}

}  // namespace
}  // namespace mobisim
