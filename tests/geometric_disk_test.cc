// Unit tests for the geometry-based disk model.
#include <gtest/gtest.h>

#include "src/device/device_catalog.h"
#include "src/device/geometric_disk.h"

namespace mobisim {
namespace {

DiskGeometry SmallGeometry() {
  DiskGeometry g;
  g.cylinders = 10;
  g.heads = 2;
  g.sectors_per_track = 8;
  g.sector_bytes = 512;
  g.rpm = 6000.0;  // 10-ms revolution
  g.seek_a_ms = 2.0;
  g.seek_b_ms = 1.0;
  g.seek_c_ms = 0.1;
  g.head_switch_ms = 0.5;
  g.controller_ms = 0.0;
  return g;
}

DeviceOptions TestOptions() {
  DeviceOptions options;
  options.block_bytes = 512;
  options.spin_down_after_us = 5 * kUsPerSec;
  return options;
}

BlockRecord Rec(SimTime t, std::uint64_t lba, std::uint32_t count) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = OpType::kRead;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = 1;
  return rec;
}

TEST(DiskGeometryTest, SeekCurve) {
  const DiskGeometry g = SmallGeometry();
  EXPECT_DOUBLE_EQ(g.SeekMs(0), 0.0);
  EXPECT_DOUBLE_EQ(g.SeekMs(1), 2.0 + 1.0 + 0.1);
  EXPECT_DOUBLE_EQ(g.SeekMs(4), 2.0 + 2.0 + 0.4);
  // Monotone in distance.
  for (std::uint32_t d = 1; d < 9; ++d) {
    EXPECT_GT(g.SeekMs(d + 1), g.SeekMs(d));
  }
}

TEST(DiskGeometryTest, CapacityArithmetic) {
  const DiskGeometry g = SmallGeometry();
  EXPECT_EQ(g.total_sectors(), 10u * 2 * 8);
  EXPECT_EQ(g.capacity_bytes(), 160u * 512);
  EXPECT_DOUBLE_EQ(g.revolution_ms(), 10.0);
}

TEST(GeometricDiskTest, RotationalLatencyBounded) {
  GeometricDisk disk(Cu140Datasheet(), SmallGeometry(), TestOptions());
  // Same cylinder (sector 0, head at cylinder 0): cost is controller +
  // rotation wait (< one revolution) + 1 sector transfer.
  const SimTime t = disk.MechanicalTimeUs(0, 1, 0, 0);
  const SimTime max_expected = UsFromMs(10.0 + 10.0 / 8.0);
  EXPECT_LE(t, max_expected);
  EXPECT_GE(t, 0);
}

TEST(GeometricDiskTest, MechanicalTimeDecomposes) {
  // total = controller + seek + rotational wait (in [0, rev)) + transfer.
  // A longer seek can absorb rotational wait, so totals are compared via
  // their decomposition, not directly.
  GeometricDisk disk(Cu140Datasheet(), SmallGeometry(), TestOptions());
  const DiskGeometry g = SmallGeometry();
  const std::uint64_t per_cyl = g.heads * g.sectors_per_track;
  const SimTime sector_us = UsFromMs(g.revolution_ms() / g.sectors_per_track);
  const SimTime rev_us = UsFromMs(g.revolution_ms());
  for (const std::uint32_t cyl : {1u, 4u, 9u}) {
    const SimTime total = disk.MechanicalTimeUs(cyl * per_cyl, 1, 0, 0);
    const SimTime wait = total - UsFromMs(g.SeekMs(cyl)) - sector_us;
    EXPECT_GE(wait, 0) << "cylinder distance " << cyl;
    EXPECT_LT(wait, rev_us) << "cylinder distance " << cyl;
  }
}

TEST(GeometricDiskTest, TrackBoundaryPaysHeadSwitch) {
  GeometricDisk disk(Cu140Datasheet(), SmallGeometry(), TestOptions());
  // 8 sectors = exactly one track: no switch.  9 sectors: one head switch.
  const SimTime one_track = disk.MechanicalTimeUs(0, 8, 0, 0);
  const SimTime spill = disk.MechanicalTimeUs(0, 9, 0, 0);
  const DiskGeometry g = SmallGeometry();
  EXPECT_EQ(spill - one_track, UsFromMs(g.head_switch_ms + 10.0 / 8.0));
}

TEST(GeometricDiskTest, SequentialRunFasterThanScattered) {
  GeometricDisk seq(Cu140Datasheet(), SmallGeometry(), TestOptions());
  GeometricDisk scattered(Cu140Datasheet(), SmallGeometry(), TestOptions());
  SimTime t = 0;
  SimTime seq_total = 0;
  SimTime sc_total = 0;
  for (int i = 0; i < 8; ++i) {
    seq_total += seq.Read(t, Rec(t, static_cast<std::uint64_t>(i), 1));
    // Scattered: jump across the whole disk each time.
    sc_total += scattered.Read(t, Rec(t, static_cast<std::uint64_t>((i * 71) % 150), 1));
    t += kUsPerSec;
  }
  EXPECT_LT(seq_total, sc_total);
}

TEST(GeometricDiskTest, SpinDownAndWake) {
  GeometricDisk disk(Cu140Datasheet(), SmallGeometry(), TestOptions());
  disk.Read(0, Rec(0, 0, 1));
  EXPECT_TRUE(disk.IsSpinningAt(4 * kUsPerSec));
  EXPECT_FALSE(disk.IsSpinningAt(6 * kUsPerSec));
  const SimTime t2 = 20 * kUsPerSec;
  const SimTime response = disk.Read(t2, Rec(t2, 0, 1));
  EXPECT_GE(response, UsFromMs(Cu140Datasheet().spinup_ms));
  EXPECT_EQ(disk.counters().spinups, 1u);
}

TEST(GeometricDiskTest, EnergyModesMatchAverageModel) {
  // Idle/sleep accounting uses the same machinery as MagneticDisk: 10 s
  // idle-then-finish gives 5 s idle + 5 s sleep.
  DeviceSpec spec = Cu140Datasheet();
  GeometricDisk disk(spec, SmallGeometry(), TestOptions());
  disk.Finish(10 * kUsPerSec);
  EXPECT_NEAR(disk.energy().total_joules(), 5.0 * spec.idle_w + 5.0 * spec.sleep_w, 1e-6);
}

TEST(GeometricDiskTest, PresetsSizedLikeTheRealDrives) {
  EXPECT_NEAR(static_cast<double>(Cu140Geometry().capacity_bytes()) / (1024 * 1024), 40.0,
              4.0);
  EXPECT_NEAR(static_cast<double>(KittyhawkGeometry().capacity_bytes()) / (1024 * 1024),
              20.0, 2.0);
}

}  // namespace
}  // namespace mobisim
