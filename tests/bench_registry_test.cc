// The bench registry's contract: every converted bench reproduces the text
// output of its historical stand-alone binary byte for byte (goldens in
// tests/golden/, captured from the pre-registry binaries at pinned args),
// rows export deterministically regardless of --jobs, and the sink rules
// (dynamic rows, seed/replica overrides) hold.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/runner/bench_registry.h"
#include "src/runner/result_sink.h"

namespace mobisim {
namespace {

#ifndef MOBISIM_GOLDEN_DIR
#error "MOBISIM_GOLDEN_DIR must name the tests/golden directory"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(MOBISIM_GOLDEN_DIR) + "/" + name + ".txt";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Captures everything the bench printf()s to stdout.  The benches write with
// C stdio, so the capture redirects the file descriptor, not the C++ stream.
class StdoutCapture {
 public:
  StdoutCapture() : path_(::testing::TempDir() + "bench_stdout.txt") {
    std::fflush(stdout);
    saved_fd_ = dup(fileno(stdout));
    FILE* file = std::fopen(path_.c_str(), "wb");
    dup2(fileno(file), fileno(stdout));
    std::fclose(file);
  }

  std::string Finish() {
    std::fflush(stdout);
    dup2(saved_fd_, fileno(stdout));
    close(saved_fd_);
    return ReadFileOrDie(path_);
  }

 private:
  std::string path_;
  int saved_fd_;
};

// Collects rows in arrival order; configurable schema strictness so tests
// can model both JSONL-like and CSV-like destinations.
class VectorSink : public ResultSink {
 public:
  explicit VectorSink(bool dynamic_ok = true) : dynamic_ok_(dynamic_ok) {}
  void Write(const ResultRow& row) override { rows_.push_back(row); }
  bool AcceptsDynamicRows() const override { return dynamic_ok_; }
  const std::vector<ResultRow>& rows() const { return rows_; }

 private:
  bool dynamic_ok_;
  std::vector<ResultRow> rows_;
};

std::string Serialize(const std::vector<ResultRow>& rows) {
  std::string out;
  for (const ResultRow& row : rows) {
    out += RowToJson(row);
    out += "\n";
  }
  return out;
}

// The exact arguments each golden was captured with (the legacy binaries'
// command lines, pinned small enough for test time).  scale 0 / param 0
// mean "bench default".
struct GoldenCase {
  const char* name;
  double scale = 0.0;
  std::uint64_t param = 0;
};

const GoldenCase kGoldenCases[] = {
    {"ablation_cleaning", 0.3},
    {"ablation_endurance", 0.0, 80},
    {"ablation_metadata", 0.3},
    {"ablation_seek_model", 0.3},
    {"ablation_segment_size", 0.3},
    {"ablation_spindown", 0.3},
    {"ablation_sram_flash", 0.3},
    {"ablation_writeback", 0.3},
    {"fig1_write_anomaly"},
    {"fig2_utilization", 0.3},
    {"fig3_mffs_degradation"},
    {"fig4_dram_flash", 0.2},
    {"fig5_sram", 0.3},
    {"related_envy", 0.0, 50000},
    {"related_flash_cache", 0.3},
    {"related_hybrid", 0.3},
    {"related_lfs_ffs"},
    {"sec53_async_cleaning", 0.3},
    {"seed_sensitivity", 0.2, 3},
    {"synth_validation", 0.5},
    {"table1_microbench"},
    {"table2_specs"},
    {"table3_traces", 0.3},
    {"table4_devices", 0.2},
};

class GoldenOutputTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenOutputTest, MatchesPreRegistryBinary) {
  const GoldenCase& test_case = GetParam();
  const BenchDef* def = FindBench(test_case.name);
  ASSERT_NE(def, nullptr) << test_case.name << " not registered";
  ASSERT_TRUE(def->deterministic);

  BenchContext::Options options;
  options.scale = test_case.scale;
  options.param = test_case.param;
  StdoutCapture capture;
  const std::size_t failed = RunBench(*def, options);
  const std::string output = capture.Finish();

  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(output, ReadFileOrDie(GoldenPath(test_case.name)))
      << test_case.name << " no longer reproduces its pre-registry output";
}

INSTANTIATE_TEST_SUITE_P(AllBenches, GoldenOutputTest,
                         ::testing::ValuesIn(kGoldenCases),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                           return std::string(info.param.name);
                         });

TEST(BenchRegistryTest, EveryHistoricalBenchIsRegistered) {
  // One deterministic golden per converted binary, plus the timing bench.
  EXPECT_GE(AllBenches().size(), 25u);
  EXPECT_NE(FindBench("micro_models"), nullptr);
  // Every golden case is registered and deterministic; micro_models is the
  // one registered bench goldens must skip.
  for (const GoldenCase& test_case : kGoldenCases) {
    const BenchDef* def = FindBench(test_case.name);
    ASSERT_NE(def, nullptr) << test_case.name;
    EXPECT_TRUE(def->deterministic) << test_case.name;
  }
  EXPECT_FALSE(FindBench("micro_models")->deterministic);
}

TEST(BenchRegistryTest, NamesAreSortedAndUnique) {
  const std::vector<const BenchDef*> benches = AllBenches();
  for (std::size_t i = 1; i < benches.size(); ++i) {
    EXPECT_LT(benches[i - 1]->name, benches[i]->name);
  }
}

TEST(BenchRegistryTest, UnknownBenchIsNull) {
  EXPECT_EQ(FindBench("no_such_bench"), nullptr);
}

std::string RunForRows(const char* name, std::size_t threads,
                       BenchContext::Options options = {}) {
  const BenchDef* def = FindBench(name);
  EXPECT_NE(def, nullptr) << name;
  VectorSink sink;
  options.smoke = true;
  options.threads = threads;
  options.sinks = {&sink};
  StdoutCapture capture;  // swallow the bench's human output
  RunBench(*def, options);
  capture.Finish();
  return Serialize(sink.rows());
}

TEST(BenchRegistryTest, GridRowsAreIdenticalAcrossJobCounts) {
  // fig5_sram is a pure RunGrid bench: rows must be bit-identical and in
  // enumeration order no matter how the sweep is scheduled.
  const std::string serial = RunForRows("fig5_sram", 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, RunForRows("fig5_sram", 4));
}

TEST(BenchRegistryTest, PointRowsAreIdenticalAcrossJobCounts) {
  // table4_devices uses the point-level API (hand-built points).
  const std::string serial = RunForRows("table4_devices", 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, RunForRows("table4_devices", 4));
}

TEST(BenchRegistryTest, RowsCarryBenchLabelAndMonotonicPointIndex) {
  const BenchDef* def = FindBench("fig2_utilization");
  ASSERT_NE(def, nullptr);
  VectorSink sink;
  BenchContext::Options options;
  options.smoke = true;
  options.sinks = {&sink};
  StdoutCapture capture;
  RunBench(*def, options);
  capture.Finish();

  // fig2 runs one grid per workload; the registry must re-index so `point`
  // stays unique across the whole bench run.
  ASSERT_FALSE(sink.rows().empty());
  for (std::size_t i = 0; i < sink.rows().size(); ++i) {
    const ResultRow& row = sink.rows()[i];
    ASSERT_FALSE(row.fields.empty());
    EXPECT_EQ(row.fields[0].key, "bench");
    EXPECT_EQ(row.fields[0].value, "fig2_utilization");
    EXPECT_EQ(row.Number("point", -1.0), static_cast<double>(i));
  }
}

TEST(BenchRegistryTest, DynamicRowsSkipFixedSchemaSinks) {
  // ablation_endurance only Emit()s hand-measured rows; a CSV-like sink
  // (fixed schema) must see nothing, a JSONL-like sink everything.
  const BenchDef* def = FindBench("ablation_endurance");
  ASSERT_NE(def, nullptr);
  VectorSink jsonl_like(/*dynamic_ok=*/true);
  VectorSink csv_like(/*dynamic_ok=*/false);
  BenchContext::Options options;
  options.smoke = true;
  options.sinks = {&jsonl_like, &csv_like};
  StdoutCapture capture;
  RunBench(*def, options);
  capture.Finish();
  EXPECT_FALSE(jsonl_like.rows().empty());
  EXPECT_TRUE(csv_like.rows().empty());
}

TEST(BenchRegistryTest, SeedOverrideReachesEveryGridRow) {
  const BenchDef* def = FindBench("fig5_sram");
  ASSERT_NE(def, nullptr);
  VectorSink sink;
  BenchContext::Options options;
  options.smoke = true;
  options.seed = 7;
  options.sinks = {&sink};
  StdoutCapture capture;
  RunBench(*def, options);
  capture.Finish();
  ASSERT_FALSE(sink.rows().empty());
  for (const ResultRow& row : sink.rows()) {
    EXPECT_EQ(row.Number("seed", -1.0), 7.0);
  }
}

TEST(BenchRegistryTest, ReplicasOverrideMultipliesGridRows) {
  const std::string one = RunForRows("fig5_sram", 1);
  BenchContext::Options options;
  options.replicas = 2;
  const std::string two = RunForRows("fig5_sram", 1, options);
  const auto count = [](const std::string& text) {
    std::size_t lines = 0;
    for (const char c : text) {
      lines += c == '\n';
    }
    return lines;
  };
  EXPECT_EQ(count(two), 2 * count(one));
}

TEST(BenchRegistryTest, SmokeKnobsShrinkTheRun) {
  // The CI leg runs every bench under --smoke; the registry must resolve the
  // smoke-scale/param defaults so that path stays fast.
  for (const BenchDef* def : AllBenches()) {
    if (def->uses_scale) {
      EXPECT_LE(def->smoke_scale, def->default_scale) << def->name;
      EXPECT_GT(def->smoke_scale, 0.0) << def->name;
    }
    if (def->default_param != 0) {
      EXPECT_LE(def->smoke_param, def->default_param) << def->name;
      EXPECT_GT(def->smoke_param, 0u) << def->name;
    }
  }
}

}  // namespace
}  // namespace mobisim
