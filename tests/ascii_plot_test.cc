// Tests for the ASCII chart renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/util/ascii_plot.h"

namespace mobisim {
namespace {

TEST(AsciiPlotTest, RendersTitleSeriesAndAxes) {
  AsciiPlot plot("Test chart", "x", "y");
  plot.AddSeries("line", '*', {0.0, 1.0, 2.0}, {0.0, 1.0, 4.0});
  std::ostringstream out;
  plot.Render(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Test chart"), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("* = line"), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiPlotTest, EmptyPlotDoesNotCrash) {
  AsciiPlot plot("Empty", "x", "y");
  std::ostringstream out;
  plot.Render(out);
  EXPECT_NE(out.str().find("no data"), std::string::npos);
}

TEST(AsciiPlotTest, SinglePointSeries) {
  AsciiPlot plot("Dot", "x", "y");
  plot.AddSeries("dot", 'o', {5.0}, {7.0});
  std::ostringstream out;
  plot.Render(out);
  EXPECT_NE(out.str().find('o'), std::string::npos);
}

TEST(AsciiPlotTest, MonotoneSeriesRendersMonotonically) {
  // The glyph for the max-y point must appear on an earlier (higher) row
  // than the glyph for the min-y point.
  AsciiPlot plot("Mono", "x", "y");
  plot.AddSeries("up", '#', {0.0, 10.0}, {0.0, 100.0});
  std::ostringstream out;
  plot.Render(out);
  const std::string text = out.str();
  const std::size_t first_hash = text.find('#');
  const std::size_t last_hash = text.rfind('#');
  // Higher y (later x) drawn on an earlier line; line order in the string is
  // top to bottom.
  const std::size_t first_line = std::count(text.begin(), text.begin() + first_hash, '\n');
  const std::size_t last_line = std::count(text.begin(), text.begin() + last_hash, '\n');
  EXPECT_LT(first_line, last_line);
  // The top point is at the right edge, the bottom at the left.
  const std::size_t top_col = first_hash - text.rfind('\n', first_hash);
  const std::size_t bottom_col = last_hash - text.rfind('\n', last_hash);
  EXPECT_GT(top_col, bottom_col);
}

TEST(AsciiPlotTest, FixedYRangeClips) {
  AsciiPlot plot("Clip", "x", "y");
  plot.SetYRange(0.0, 10.0);
  plot.AddSeries("s", '@', {0.0, 1.0}, {5.0, 5.0});
  std::ostringstream out;
  plot.Render(out);
  // Top tick label should read 10.00.
  EXPECT_NE(out.str().find("10.00"), std::string::npos);
}

}  // namespace
}  // namespace mobisim
