// Timing and accounting properties that must hold for every device model
// under randomized traffic: monotonic completion times, energy bounded by
// wall-clock x peak power, counter/byte consistency, and busy-time sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "src/device/device_catalog.h"
#include "src/device/flash_card.h"
#include "src/device/flash_disk.h"
#include "src/device/geometric_disk.h"
#include "src/device/magnetic_disk.h"
#include "src/device/nand_ssd.h"
#include "src/util/rng.h"

namespace mobisim {
namespace {

struct DeviceMaker {
  const char* name;
  std::unique_ptr<StorageDevice> (*make)();
  // Single-queue devices complete requests in issue order.  The striped
  // NAND SSD does not: a short read on a free plane may legitimately finish
  // before an earlier multi-page write still programming on other planes.
  bool fifo_completions = true;
};

std::unique_ptr<StorageDevice> MakeDisk() {
  DeviceOptions options;
  options.block_bytes = 1024;
  return std::make_unique<MagneticDisk>(Cu140Datasheet(), options);
}

std::unique_ptr<StorageDevice> MakeGeometricDisk() {
  DeviceOptions options;
  options.block_bytes = 1024;
  return std::make_unique<GeometricDisk>(Cu140Datasheet(), Cu140Geometry(), options);
}

std::unique_ptr<StorageDevice> MakeFlashDisk() {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = 4 * 1024 * 1024;
  auto device = std::make_unique<FlashDisk>(Sdp5aDatasheet(), options);
  device->Preload(1024);
  return device;
}

std::unique_ptr<StorageDevice> MakeFlashCard() {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = 4 * 1024 * 1024;
  auto device = std::make_unique<FlashCard>(IntelCardDatasheet(), options);
  device->Preload(1024, 0.7);
  return device;
}

std::unique_ptr<StorageDevice> MakeNandSsd() {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = 4 * 1024 * 1024;
  auto device = std::make_unique<NandSsd>(NandSsd4ch(), options);
  device->Preload(1024, 0.7);
  return device;
}

class DeviceTimingPropertyTest : public ::testing::TestWithParam<DeviceMaker> {};

TEST_P(DeviceTimingPropertyTest, RandomTrafficInvariants) {
  auto device = GetParam().make();
  Rng rng(17);
  SimTime now = 0;
  SimTime last_completion = 0;

  for (int i = 0; i < 1500; ++i) {
    now += static_cast<SimTime>(rng.Exponential(200000.0));  // ~0.2-s mean gaps
    BlockRecord rec;
    rec.time_us = now;
    rec.lba = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
    rec.block_count = static_cast<std::uint32_t>(rng.UniformInt(1, 8));
    rec.lba = std::min<std::uint64_t>(rec.lba, 1024 - rec.block_count);
    rec.file_id = static_cast<std::uint32_t>(rng.UniformInt(0, 40));
    const bool is_read = rng.Chance(0.5);
    rec.op = is_read ? OpType::kRead : OpType::kWrite;

    const SimTime response =
        is_read ? device->Read(now, rec) : device->Write(now, rec);
    ASSERT_GT(response, 0) << GetParam().name << " op " << i;

    // Completions never go backwards (on in-order devices), and busy_until
    // covers this op.
    const SimTime completion = now + response;
    if (GetParam().fifo_completions) {
      ASSERT_GE(completion, last_completion) << GetParam().name << " op " << i;
    }
    ASSERT_GE(device->busy_until(), completion - response) << GetParam().name;
    last_completion = completion;
  }

  device->Finish(std::max(now, device->busy_until()));

  // Energy is bounded by wall-clock times the highest mode power.
  const DeviceSpec& spec = device->spec();
  const double peak_w = std::max({spec.read_w, spec.write_w, spec.erase_w, spec.idle_w,
                                  spec.spinup_w, spec.sleep_w});
  const double wall_sec = SecFromUs(device->busy_until());
  EXPECT_LE(device->energy().total_joules(), peak_w * wall_sec * 1.01) << GetParam().name;
  EXPECT_GT(device->energy().total_joules(), 0.0);

  // Counters add up.
  const DeviceCounters& counters = device->counters();
  EXPECT_GT(counters.reads, 0u);
  EXPECT_GT(counters.writes, 0u);
  EXPECT_EQ(counters.reads + counters.writes, 1500u);
  EXPECT_GE(counters.bytes_read, counters.reads * 1024u);
  EXPECT_GE(counters.bytes_written, counters.writes * 1024u);
}

TEST_P(DeviceTimingPropertyTest, BackToBackRequestsQueueFifo) {
  auto device = GetParam().make();
  BlockRecord rec;
  rec.block_count = 4;
  rec.lba = 0;
  rec.file_id = 1;
  rec.op = OpType::kWrite;
  // Three writes at the same instant: responses strictly increase.
  SimTime prev = 0;
  for (int i = 0; i < 3; ++i) {
    rec.time_us = 1000;
    const SimTime response = device->Write(1000, rec);
    ASSERT_GT(response, prev);
    prev = response;
  }
}

TEST_P(DeviceTimingPropertyTest, AdvanceToIsIdempotent) {
  auto device = GetParam().make();
  BlockRecord rec;
  rec.time_us = 0;
  rec.lba = 0;
  rec.block_count = 1;
  rec.file_id = 1;
  rec.op = OpType::kWrite;
  device->Write(0, rec);
  device->AdvanceTo(10 * kUsPerSec);
  const double energy_once = device->energy().total_joules();
  device->AdvanceTo(10 * kUsPerSec);
  device->AdvanceTo(9 * kUsPerSec);  // going backwards must be a no-op
  EXPECT_DOUBLE_EQ(device->energy().total_joules(), energy_once) << GetParam().name;
}

TEST_P(DeviceTimingPropertyTest, FinishBeforeBusyUntilStillAccountsInFlightWork) {
  // Finish(end) with end earlier than busy_until must account up to
  // busy_until, not truncate the in-flight operation's energy.
  auto device = GetParam().make();
  BlockRecord rec;
  rec.time_us = 1000;
  rec.lba = 0;
  rec.block_count = 8;
  rec.file_id = 1;
  rec.op = OpType::kWrite;
  device->Write(1000, rec);
  const SimTime busy = device->busy_until();
  ASSERT_GT(busy, 1000);

  device->Finish(1000);  // earlier than the op's completion
  const double joules = device->energy().total_joules();
  EXPECT_GT(joules, 0.0) << GetParam().name;
  // Everything up to busy_until is already accounted: re-accounting to the
  // same instant must add nothing.
  device->AdvanceTo(busy);
  EXPECT_DOUBLE_EQ(device->energy().total_joules(), joules) << GetParam().name;
  device->Finish(busy);
  EXPECT_DOUBLE_EQ(device->energy().total_joules(), joules) << GetParam().name;
}

TEST_P(DeviceTimingPropertyTest, PowerLossTruncatesPendingWorkOnEveryKind) {
  auto device = GetParam().make();
  BlockRecord rec;
  rec.time_us = 1000;
  rec.lba = 0;
  rec.block_count = 8;
  rec.file_id = 1;
  rec.op = OpType::kWrite;
  device->Write(1000, rec);
  ASSERT_GT(device->busy_until(), 1100);

  const SimTime recovery = device->PowerLoss(1100);
  const double joules_before = device->energy().total_joules();

  // The abandoned operation is truncated at the loss instant on every kind:
  // the device is busy for exactly the recovery work (zero on disks and
  // block-interface flash, a mount scan on log-structured flash) and the
  // in-flight remainder never reappears.
  EXPECT_GE(recovery, 0) << GetParam().name;
  EXPECT_EQ(device->busy_until(), 1100 + recovery) << GetParam().name;

  // The device keeps working afterwards, and accounting never regresses.
  rec.time_us = 10 * kUsPerSec;
  const SimTime response = device->Write(10 * kUsPerSec, rec);
  EXPECT_GT(response, 0) << GetParam().name;
  device->Finish(device->busy_until());
  EXPECT_GE(device->energy().total_joules(), joules_before) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Devices, DeviceTimingPropertyTest,
    ::testing::Values(DeviceMaker{"magnetic", &MakeDisk},
                      DeviceMaker{"geometric", &MakeGeometricDisk},
                      DeviceMaker{"flash_disk", &MakeFlashDisk},
                      DeviceMaker{"flash_card", &MakeFlashCard},
                      DeviceMaker{"nand_ssd", &MakeNandSsd,
                                  /*fifo_completions=*/false}),
    [](const ::testing::TestParamInfo<DeviceMaker>& info) { return info.param.name; });

}  // namespace
}  // namespace mobisim
