// Tests for the persistent fingerprint-keyed trace cache: serialization
// round-trips, fingerprint sensitivity, hit/miss/corruption accounting,
// byte-identical results with the cache on/off/cold/warm (including under
// parallel sweeps), and the maintenance surface (list + gc).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/result_io.h"
#include "src/device/device_catalog.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/sweep_runner.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/trace/trace_cache.h"
#include "src/trace/trace_io.h"
#include "src/util/atomic_file.h"

namespace mobisim {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mobisim_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

BlockTrace SmallTrace() {
  return BlockMapper::Map(GenerateNamedWorkload("synth", 0.02, 7));
}

bool SameTrace(const BlockTrace& a, const BlockTrace& b) {
  if (a.name != b.name || a.block_bytes != b.block_bytes ||
      a.total_blocks != b.total_blocks || a.records.size() != b.records.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const BlockRecord& x = a.records[i];
    const BlockRecord& y = b.records[i];
    if (x.time_us != y.time_us || x.op != y.op || x.lba != y.lba ||
        x.block_count != y.block_count || x.file_id != y.file_id) {
      return false;
    }
  }
  return true;
}

TEST(TraceSerializationTest, RoundTripIsExact) {
  const BlockTrace trace = SmallTrace();
  const std::string data = SerializeBlockTrace(trace);
  std::string error;
  const auto back = DeserializeBlockTrace(data, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_TRUE(SameTrace(trace, *back));
  // Serialization is deterministic: same trace, same bytes.
  EXPECT_EQ(data, SerializeBlockTrace(*back));
}

TEST(TraceSerializationTest, DetectsTruncationAndCorruption) {
  const std::string data = SerializeBlockTrace(SmallTrace());
  std::string error;

  for (const std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                                data.size() - 1}) {
    EXPECT_FALSE(DeserializeBlockTrace(data.substr(0, cut), &error).has_value())
        << "cut at " << cut;
  }
  // A flipped payload byte fails the footer hash.
  std::string flipped = data;
  flipped[data.size() / 2] = static_cast<char>(flipped[data.size() / 2] ^ 0x5a);
  EXPECT_FALSE(DeserializeBlockTrace(flipped, &error).has_value());
  EXPECT_NE(error.find("hash"), std::string::npos) << error;
  // Extra trailing bytes are not silently ignored.
  EXPECT_FALSE(DeserializeBlockTrace(data + "x", &error).has_value());
  // Wrong magic.
  std::string magic = data;
  magic[0] = 'X';
  EXPECT_FALSE(DeserializeBlockTrace(magic, &error).has_value());
}

TEST(TraceFingerprintTest, SensitiveToEveryKeyComponent) {
  const std::string base = TraceCacheFingerprint("mac", 1.0, 1);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, TraceCacheFingerprint("mac", 1.0, 1));  // stable
  EXPECT_NE(base, TraceCacheFingerprint("dos", 1.0, 1));  // workload
  EXPECT_NE(base, TraceCacheFingerprint("mac", 0.5, 1));  // scale
  EXPECT_NE(base, TraceCacheFingerprint("mac", 1.0, 2));  // seed
  // A format-version bump invalidates every existing entry.
  EXPECT_NE(base, TraceCacheFingerprint("mac", 1.0, 1, kTraceCacheFormatVersion + 1));
}

TEST(TraceFingerprintTest, KeyTextCapturesGeneratorConfig) {
  // The canonical key renders the *resolved* generator parameters, so a
  // preset change (not just a name change) would move the fingerprint.
  const std::string text = CanonicalTraceKeyText("mac", 1.0, 3);
  EXPECT_NE(text.find("generator = calibrated"), std::string::npos) << text;
  EXPECT_NE(text.find("seed = "), std::string::npos) << text;
  const std::string synth = CanonicalTraceKeyText("synth", 1.0, 3);
  EXPECT_NE(synth.find("generator = synth"), std::string::npos) << synth;
  // The requested name itself participates, so even the "pc" alias of "dos"
  // caches under its own key — conservative, never a wrong replay.
  EXPECT_NE(TraceCacheFingerprint("pc", 1.0, 3), TraceCacheFingerprint("dos", 1.0, 3));
}

TEST(TraceCacheTest, ColdMissStoresThenWarmHitIsBitIdentical) {
  const std::string dir = FreshDir("tc_basic");
  TraceCache cache(dir);

  const auto first = LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 7);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  TraceCache warm(dir);
  const auto second = LoadOrGenerateBlockTrace(&warm, "synth", 0.02, 7);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm.stats().stores, 0u);
  EXPECT_TRUE(SameTrace(*first, *second));
  // Bit-identical means the serializations match too.
  EXPECT_EQ(SerializeBlockTrace(*first), SerializeBlockTrace(*second));
  // And both match plain generation with no cache at all.
  const auto plain = LoadOrGenerateBlockTrace(nullptr, "synth", 0.02, 7);
  EXPECT_TRUE(SameTrace(*plain, *second));
}

TEST(TraceCacheTest, CorruptEntryIsDetectedRemovedAndRegenerated) {
  const std::string dir = FreshDir("tc_corrupt");
  TraceCache cache(dir);
  const auto original = LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 7);
  const std::string path = cache.EntryPath(TraceCacheFingerprint("synth", 0.02, 7));
  ASSERT_TRUE(std::filesystem::exists(path));

  // Truncate the entry as a torn write would.
  std::filesystem::resize_file(path, 17);

  TraceCache reread(dir);
  const auto regenerated = LoadOrGenerateBlockTrace(&reread, "synth", 0.02, 7);
  ASSERT_NE(regenerated, nullptr);
  EXPECT_EQ(reread.stats().corrupt, 1u);
  EXPECT_EQ(reread.stats().misses, 1u);
  EXPECT_EQ(reread.stats().stores, 1u);  // re-stored after regeneration
  EXPECT_TRUE(SameTrace(*original, *regenerated));
  // The re-stored entry is whole again.
  TraceCache again(dir);
  EXPECT_NE(again.Load(TraceCacheFingerprint("synth", 0.02, 7)), nullptr);
}

TEST(TraceCacheTest, UnwritableDirectoryDegradesToGeneration) {
  // A path that cannot be created (parent is a file) must not fail the run.
  const std::string dir = FreshDir("tc_unwritable");
  const std::string blocker = dir + "/file";
  std::ofstream(blocker) << "x";
  TraceCache cache(blocker + "/cache");
  const auto trace = LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 7);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 0u);
  EXPECT_GE(cache.stats().errors, 1u);
}

TEST(TraceCacheTest, ParallelSweepWithSharedCacheMatchesNoCache) {
  ExperimentSpec spec;
  spec.base = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  spec.devices = {IntelCardDatasheet(), Sdp5Datasheet()};
  spec.workloads = {"synth"};
  spec.utilizations = {0.40, 0.80, 0.95};
  spec.seeds = {1, 7};
  spec.scale = 0.02;
  const std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  ASSERT_EQ(points.size(), 12u);

  SweepOptions plain_options;
  plain_options.threads = 1;
  const std::vector<SweepOutcome> plain = RunSweep(points, plain_options);

  const std::string dir = FreshDir("tc_sweep");
  TraceCache cold(dir);
  SweepOptions cold_options;
  cold_options.threads = 4;
  cold_options.trace_cache = &cold;
  const std::vector<SweepOutcome> cold_run = RunSweep(points, cold_options);
  // 2 distinct (workload, scale, seed) keys across the 12 points.
  EXPECT_EQ(cold.stats().misses, 2u);
  EXPECT_EQ(cold.stats().stores, 2u);

  TraceCache warm(dir);
  SweepOptions warm_options;
  warm_options.threads = 4;
  warm_options.trace_cache = &warm;
  const std::vector<SweepOutcome> warm_run = RunSweep(points, warm_options);
  EXPECT_EQ(warm.stats().hits, 2u);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm.stats().stores, 0u);

  ASSERT_EQ(plain.size(), cold_run.size());
  ASSERT_EQ(plain.size(), warm_run.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_FALSE(plain[i].failed);
    // Row-for-row byte identity across no-cache / cold / warm.
    EXPECT_EQ(RowToJson(plain[i].row), RowToJson(cold_run[i].row)) << "point " << i;
    EXPECT_EQ(RowToJson(plain[i].row), RowToJson(warm_run[i].row)) << "point " << i;
  }
}

TEST(TraceCacheMaintenanceTest, ListReportsValidity) {
  const std::string dir = FreshDir("tc_list");
  TraceCache cache(dir);
  LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 1);
  LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 2);
  const std::string bad = cache.EntryPath(TraceCacheFingerprint("synth", 0.02, 2));
  std::filesystem::resize_file(bad, 10);

  const std::vector<TraceCacheEntry> entries = ListTraceCache(dir);
  ASSERT_EQ(entries.size(), 2u);
  std::size_t valid = 0;
  for (const TraceCacheEntry& entry : entries) {
    EXPECT_EQ(entry.fingerprint.size(), 16u);
    valid += entry.valid ? 1 : 0;
  }
  EXPECT_EQ(valid, 1u);
  EXPECT_TRUE(ListTraceCache(dir + "/missing").empty());
}

TEST(TraceCacheMaintenanceTest, GcRemovesInvalidAndTempThenEvictsToBudget) {
  const std::string dir = FreshDir("tc_gc");
  TraceCache cache(dir);
  LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 1);
  LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 2);
  LoadOrGenerateBlockTrace(&cache, "synth", 0.02, 3);
  // A corrupted entry and a leftover temp file from a crashed writer.
  const std::string bad = cache.EntryPath(TraceCacheFingerprint("synth", 0.02, 3));
  std::filesystem::resize_file(bad, 5);
  std::ofstream(dir + "/deadbeef.mtc.tmp.123.4") << "partial";

  // max_bytes = 0: cleanup only, valid entries all stay.
  const TraceCacheGcResult cleanup = GcTraceCache(dir, 0);
  EXPECT_EQ(cleanup.removed, 2u);  // the corrupt entry + the temp file
  EXPECT_EQ(cleanup.kept, 2u);
  EXPECT_FALSE(std::filesystem::exists(bad));

  // A 1-byte budget evicts everything.
  const TraceCacheGcResult evict = GcTraceCache(dir, 1);
  EXPECT_EQ(evict.removed, 2u);
  EXPECT_EQ(evict.kept, 0u);
  EXPECT_TRUE(ListTraceCache(dir).empty());
}

TEST(AtomicFileTest, WriteReadRoundTripAndFailurePaths) {
  const std::string dir = FreshDir("atomic_file");
  const std::string path = dir + "/data.bin";
  const std::string payload("binary\0payload\n", 15);
  std::string error;
  ASSERT_TRUE(WriteFileAtomic(path, payload, &error)) << error;
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back, &error)) << error;
  EXPECT_EQ(back, payload);

  // Overwrite is atomic too: the new content fully replaces the old.
  ASSERT_TRUE(WriteFileAtomic(path, "short", &error)) << error;
  ASSERT_TRUE(ReadFileToString(path, &back, &error));
  EXPECT_EQ(back, "short");

  // A missing parent directory fails cleanly with a message and leaves no
  // temp files behind.
  EXPECT_FALSE(WriteFileAtomic(dir + "/no/such/dir/f", "x", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ReadFileToString(dir + "/absent", &back, &error));
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // only data.bin
}

TEST(TraceIoTest, WriteTraceFileIsAtomicAndReportsFailure) {
  const std::string dir = FreshDir("trace_io_atomic");
  const Trace trace = GenerateNamedWorkload("synth", 0.02, 7);

  const std::string path = dir + "/t.trc";
  std::string error;
  ASSERT_TRUE(WriteTraceFile(trace, path));
  const auto back = ReadTraceFile(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->records.size(), trace.records.size());

  // Failure leaves neither the target nor a temp file.
  EXPECT_FALSE(WriteTraceFile(trace, dir + "/no/such/t.trc"));
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

}  // namespace
}  // namespace mobisim
