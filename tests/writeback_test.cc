// Tests for write-back DRAM caching (the section 4.2 alternative policy)
// and the cache's dirty-block machinery.
#include <gtest/gtest.h>

#include "src/cache/buffer_cache.h"
#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"

namespace mobisim {
namespace {

TEST(BufferCacheDirtyTest, MarkAndDrain) {
  BufferCache cache(NecDramSpec(), 8 * 1024, 1024);
  cache.Insert(0, 4);
  cache.MarkDirty(1, 2);
  EXPECT_EQ(cache.dirty_blocks(), 2u);
  const auto ranges = cache.DrainDirty();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lba, 1u);
  EXPECT_EQ(ranges[0].count, 2u);
  EXPECT_EQ(cache.dirty_blocks(), 0u);
  // Blocks stay cached after a drain.
  EXPECT_TRUE(cache.ReadHit(0, 4));
}

TEST(BufferCacheDirtyTest, EvictionReportsDirtyVictims) {
  BufferCache cache(NecDramSpec(), 2 * 1024, 1024);  // 2 blocks
  cache.Insert(0, 2);
  cache.MarkDirty(0, 2);
  std::vector<std::uint64_t> evicted;
  cache.Insert(10, 1, &evicted);  // evicts LRU (block 0 or 1)
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(cache.dirty_blocks(), 1u);
}

TEST(BufferCacheDirtyTest, InvalidateClearsDirty) {
  BufferCache cache(NecDramSpec(), 8 * 1024, 1024);
  cache.Insert(0, 4);
  cache.MarkDirty(0, 4);
  cache.InvalidateRange(0, 4);
  EXPECT_EQ(cache.dirty_blocks(), 0u);
  EXPECT_TRUE(cache.DrainDirty().empty());
}

TEST(WriteBackSystemTest, WritesAvoidImmediateDeviceTraffic) {
  const Trace trace = GenerateNamedWorkload("synth", 0.1);
  const BlockTrace blocks = BlockMapper::Map(trace);

  SimConfig through = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  SimConfig back = through;
  back.write_back_cache = true;

  const SimResult wt = RunSimulation(blocks, through);
  const SimResult wb = RunSimulation(blocks, back);

  // Write-back coalesces rewrites: strictly less data reaches the device,
  // which is the paper's "might avoid some erasures" hypothesis.
  EXPECT_LT(wb.counters.bytes_written, wt.counters.bytes_written);
  EXPECT_LE(wb.counters.segment_erases, wt.counters.segment_erases);
  // And writes complete at DRAM speed.
  EXPECT_LT(wb.write_response_ms.mean(), wt.write_response_ms.mean());
}

TEST(WriteBackSystemTest, DirtyDataReachesDeviceEventually) {
  const Trace trace = GenerateNamedWorkload("synth", 0.1);
  const BlockTrace blocks = BlockMapper::Map(trace);
  SimConfig config = MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024);
  config.write_back_cache = true;
  const SimResult result = RunSimulation(blocks, config);
  // The periodic sync and final flush must have produced device writes.
  EXPECT_GT(result.counters.writes, 0u);
  EXPECT_GT(result.counters.bytes_written, 0u);
}

TEST(WriteBackSystemTest, SyncIntervalBoundsLossWindow) {
  // With a short sync interval, device writes approach write-through volume;
  // with a long one, they shrink (more coalescing).
  const Trace trace = GenerateNamedWorkload("synth", 0.1);
  const BlockTrace blocks = BlockMapper::Map(trace);
  SimConfig fast = MakePaperConfig(Sdp5Datasheet(), 2 * 1024 * 1024);
  fast.write_back_cache = true;
  fast.cache_sync_interval_us = 1 * kUsPerSec;
  SimConfig slow = fast;
  slow.cache_sync_interval_us = 120 * kUsPerSec;
  const SimResult fast_result = RunSimulation(blocks, fast);
  const SimResult slow_result = RunSimulation(blocks, slow);
  EXPECT_LE(slow_result.counters.bytes_written, fast_result.counters.bytes_written);
}

TEST(CleaningSeparationTest, ReducesCopyTrafficUnderMixing) {
  // With interleaved (pessimally mixed) prefill, routing cleaning copies to
  // their own segment un-mixes hot and cold data over time.
  const Trace trace = GenerateNamedWorkload("synth", 0.2);
  const BlockTrace blocks = BlockMapper::Map(trace);
  SimConfig mixed = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  mixed.flash_utilization = 0.90;
  mixed.interleave_prefill = true;
  SimConfig separated = mixed;
  separated.separate_cleaning_segment = true;
  const SimResult mixed_result = RunSimulation(blocks, mixed);
  const SimResult separated_result = RunSimulation(blocks, separated);
  EXPECT_LT(separated_result.counters.blocks_copied, mixed_result.counters.blocks_copied);
}

TEST(WearAwarePolicyTest, NarrowsEraseDistribution) {
  const Trace trace = GenerateNamedWorkload("synth", 0.3);
  const BlockTrace blocks = BlockMapper::Map(trace);
  SimConfig greedy = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  greedy.flash_utilization = 0.90;
  SimConfig wear = greedy;
  wear.cleaning_policy = CleaningPolicy::kWearAware;
  const SimResult g = RunSimulation(blocks, greedy);
  const SimResult w = RunSimulation(blocks, wear);
  ASSERT_GT(g.counters.segment_erases, 0u);
  // Wear-aware spreads erases: lower max (or at worst equal), possibly at
  // the cost of a few more total erases.
  EXPECT_LE(w.max_segment_erases, g.max_segment_erases);
}

}  // namespace
}  // namespace mobisim
