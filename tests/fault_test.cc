// Tests for the fault-injection and recovery subsystem: SimError-carrying
// checks, the strict no-op contract when faults are disabled, acknowledged-
// write durability under power loss, deterministic (idempotent) recovery,
// wear-out capacity degradation, transient-error retries, and sweep-level
// fault tolerance (failed points become `_error` rows that benchdiff skips).
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/bench_db/bench_db.h"
#include "src/bench_db/benchdiff.h"
#include "src/core/config_text.h"
#include "src/core/result_io.h"
#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/fault/fault.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/util/check.h"

namespace mobisim {
namespace {

// ---------------------------------------------------------------------------
// MOBISIM_CHECK failures are recoverable exceptions, not process aborts.

TEST(SimErrorTest, CheckFailureThrowsWithContext) {
  bool caught = false;
  try {
    MOBISIM_CHECK(2 + 2 == 5 && "arithmetic still works");
  } catch (const SimError& e) {
    caught = true;
    EXPECT_NE(std::string(e.condition()).find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(std::string(e.file()).find("fault_test"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    const std::string what = e.what();
    EXPECT_NE(what.find("MOBISIM_CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("fault_test"), std::string::npos);
  }
  EXPECT_TRUE(caught);
}

TEST(SimErrorTest, IsARuntimeError) {
  EXPECT_THROW(MOBISIM_CHECK(false), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Strict no-op: with every fault.* knob at its default, nothing fault-related
// reaches the exported rows, so pre-fault baselines stay byte-identical.

TEST(FaultNoOpTest, DefaultConfigDisablesFaults) {
  const FaultConfig config;
  EXPECT_FALSE(config.enabled());
}

TEST(FaultNoOpTest, DefaultRunExportsNoFaultColumns) {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  const SimResult result = RunNamedWorkload("synth", config, 0.05);
  EXPECT_FALSE(result.fault_enabled);
  const ResultRow row = ResultToRow(result);
  EXPECT_EQ(row.Find("power_losses"), nullptr);
  EXPECT_EQ(row.Find("lost_acked_writes"), nullptr);
  EXPECT_EQ(row.Find("io_retries"), nullptr);
  EXPECT_EQ(row.Find("usable_capacity_fraction"), nullptr);
  EXPECT_EQ(row.Find("capacity_timeline"), nullptr);
}

TEST(FaultNoOpTest, SweepHeaderHasNoFaultColumns) {
  const std::string header = SweepCsvHeader();
  EXPECT_EQ(header.find("power_loss"), std::string::npos);
  EXPECT_EQ(header.find("fault"), std::string::npos);
}

TEST(FaultNoOpTest, ExportMetricsAddsColumnsWithoutInjectingFaults) {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  config.fault.export_metrics = true;
  const SimResult result = RunNamedWorkload("synth", config, 0.05);
  EXPECT_TRUE(result.fault_enabled);
  EXPECT_EQ(result.power_losses, 0u);
  EXPECT_EQ(result.lost_acked_writes, 0u);
  EXPECT_EQ(result.transient_errors, 0u);
  const ResultRow row = ResultToRow(result);
  EXPECT_NE(row.Find("power_losses"), nullptr);
}

// ---------------------------------------------------------------------------
// Durability property: no write acknowledged past the battery-backed SRAM
// buffer is ever lost, for any power-loss schedule on any device kind.
// Without the buffer, writes in flight at the failure instant are lost.

TEST(PowerLossTest, SramBufferPreventsAllAckedWriteLoss) {
  for (const DeviceSpec& device :
       {Cu140Datasheet(), IntelCardDatasheet(), Sdp10Datasheet()}) {
    for (const double interval_sec : {0.5, 5.0}) {
      SimConfig config = MakePaperConfig(device, 512 * 1024);
      config.sram_bytes = 64 * 1024;
      config.fault.power_loss_interval_us = UsFromSec(interval_sec);
      const SimResult result = RunNamedWorkload("synth", config, 0.2);
      EXPECT_GT(result.power_losses, 0u)
          << device.name << " interval " << interval_sec;
      EXPECT_EQ(result.lost_acked_writes, 0u)
          << device.name << " interval " << interval_sec;
    }
  }
}

TEST(PowerLossTest, WithoutSramAckedWritesAreLost) {
  for (const DeviceSpec& device :
       {Cu140Datasheet(), IntelCardDatasheet(), Sdp10Datasheet()}) {
    SimConfig config = MakePaperConfig(device, 512 * 1024);
    config.sram_bytes = 0;
    config.fault.power_loss_interval_us = UsFromSec(1.0);
    const SimResult result = RunNamedWorkload("synth", config, 0.2);
    EXPECT_GT(result.power_losses, 0u) << device.name;
    EXPECT_GT(result.lost_acked_writes, 0u) << device.name;
  }
}

TEST(PowerLossTest, FlashCardPaysMountScanRecovery) {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  config.fault.power_loss_interval_us = UsFromSec(1.0);
  const SimResult result = RunNamedWorkload("synth", config, 0.2);
  EXPECT_GT(result.power_losses, 0u);
  EXPECT_GT(result.recovery_sec, 0.0);
  EXPECT_GT(result.recovery_energy_j, 0.0);
}

// Recovery replay is deterministic: the same seed and schedule produce
// byte-identical exported rows across repeated runs.
TEST(PowerLossTest, RecoveryIsIdempotentAcrossRuns) {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  config.sram_bytes = 16 * 1024;
  config.fault.power_loss_interval_us = UsFromSec(0.5);
  config.fault.transient_error_rate = 0.001;
  const SimResult a = RunNamedWorkload("synth", config, 0.2);
  const SimResult b = RunNamedWorkload("synth", config, 0.2);
  EXPECT_EQ(RowToJson(ResultToRow(a)), RowToJson(ResultToRow(b)));
  EXPECT_GT(a.power_losses, 0u);
}

// ---------------------------------------------------------------------------
// Wear-out: segments retire as their endurance budgets run out, live data is
// remapped, and usable capacity degrades monotonically over time.

TEST(WearOutTest, SegmentsRetireAndCapacityDegrades) {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  config.flash_utilization = 0.9;
  config.fault.wear_out = true;
  config.fault.endurance_scale = 0.0001;
  config.fault.endurance_spread = 0.3;
  const SimResult result = RunNamedWorkload("synth", config, 0.2);
  EXPECT_GT(result.bad_segments, 0u);
  EXPECT_GT(result.remapped_blocks, 0u);
  EXPECT_LT(result.usable_capacity_fraction, 1.0);
  ASSERT_FALSE(result.capacity_timeline.empty());
  double last_fraction = 1.0;
  for (const auto& [at_sec, fraction] : result.capacity_timeline) {
    EXPECT_GE(at_sec, 0.0);
    EXPECT_LT(fraction, last_fraction);
    last_fraction = fraction;
  }
  EXPECT_DOUBLE_EQ(last_fraction, result.usable_capacity_fraction);
}

TEST(WearOutTest, FactoryBadBlocksShrinkCapacityUpFront) {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  config.flash_utilization = 0.5;
  config.fault.bad_block_rate = 0.05;
  const SimResult result = RunNamedWorkload("synth", config, 0.05);
  EXPECT_GT(result.bad_segments, 0u);
  EXPECT_LT(result.usable_capacity_fraction, 1.0);
  ASSERT_FALSE(result.capacity_timeline.empty());
  EXPECT_DOUBLE_EQ(result.capacity_timeline.front().first, 0.0);
}

// ---------------------------------------------------------------------------
// Transient errors: failed I/Os are retried with backoff; retries cost
// simulated time and show up in the counters, and a hostile error rate
// exhausts the retry budget without crashing the run.

TEST(TransientErrorTest, RetriesAreCountedAndRunCompletes) {
  SimConfig config = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  config.fault.transient_error_rate = 0.01;
  const SimResult result = RunNamedWorkload("synth", config, 0.2);
  EXPECT_GT(result.transient_errors, 0u);
  EXPECT_GT(result.io_retries, 0u);
  EXPECT_EQ(result.io_failures, 0u);  // p(4 consecutive errors) ~ 1e-8
}

TEST(TransientErrorTest, HostileRateExhaustsRetries) {
  SimConfig config = MakePaperConfig(Cu140Datasheet(), 512 * 1024);
  config.fault.transient_error_rate = 0.9;
  config.fault.max_retries = 2;
  const SimResult result = RunNamedWorkload("synth", config, 0.05);
  EXPECT_GT(result.io_retries, 0u);
  EXPECT_GT(result.io_failures, 0u);
}

TEST(TransientErrorTest, RetriesCostSimulatedTime) {
  SimConfig base = MakePaperConfig(Cu140Datasheet(), 512 * 1024);
  base.fault.export_metrics = true;
  const SimResult clean = RunNamedWorkload("synth", base, 0.05);

  SimConfig faulty = base;
  faulty.fault.transient_error_rate = 0.2;
  const SimResult noisy = RunNamedWorkload("synth", faulty, 0.05);
  EXPECT_GT(noisy.io_retries, 0u);
  EXPECT_GT(noisy.overall_response_ms.mean(), clean.overall_response_ms.mean());
}

// ---------------------------------------------------------------------------
// Sweep-level fault tolerance: one point blowing up must not take down the
// sweep; it is exported as an `_error` row (JSONL only) and benchdiff treats
// it as incomparable, never as a regression.

ExperimentSpec TinySpec() {
  ExperimentSpec spec;
  spec.base = MakePaperConfig(IntelCardDatasheet(), 512 * 1024);
  spec.devices = {IntelCardDatasheet(), Sdp5Datasheet()};
  spec.workloads = {"synth"};
  spec.utilizations = {0.5};
  spec.scale = 0.05;
  return spec;
}

TEST(SweepFaultToleranceTest, FailedPointBecomesErrorRowAndOthersFinish) {
  std::vector<ExperimentPoint> points = EnumerateGrid(TinySpec());
  ASSERT_EQ(points.size(), 2u);
  // Sabotage point 0: a capacity far below the trace's live data makes the
  // flash card's preload MOBISIM_CHECK throw inside RunSimulation.
  points[0].config.capacity_bytes = 256 * 1024;
  points[0].config.auto_capacity = false;

  std::ostringstream jsonl;
  std::ostringstream csv;
  JsonlResultSink jsonl_sink(jsonl);
  CsvResultSink csv_sink(csv, SweepCsvHeader());
  SweepOptions options;
  options.threads = 2;
  options.sinks = {&jsonl_sink, &csv_sink};

  const std::vector<SweepOutcome> outcomes = RunSweep(points, options);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_NE(outcomes[0].error.find("MOBISIM_CHECK failed"), std::string::npos);
  EXPECT_NE(outcomes[0].row.Text("_error").find("MOBISIM_CHECK"), std::string::npos);
  EXPECT_FALSE(outcomes[1].failed);
  EXPECT_GT(outcomes[1].result.record_count, 0u);

  // JSONL carries the error row; the rigid-schema CSV skips it.
  EXPECT_NE(jsonl.str().find("\"_error\""), std::string::npos);
  EXPECT_EQ(csv.str().find("_error"), std::string::npos);
  // CSV = header + the one healthy row.
  std::size_t lines = 0;
  for (const char c : csv.str()) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(SweepFaultToleranceTest, TraceGenerationFailureFailsOnlyItsPoints) {
  std::vector<ExperimentPoint> points = EnumerateGrid(TinySpec());
  ASSERT_EQ(points.size(), 2u);
  points[0].workload = "no-such-workload";

  SweepOptions options;
  options.threads = 1;
  const std::vector<SweepOutcome> outcomes = RunSweep(points, options);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_FALSE(outcomes[0].error.empty());
  EXPECT_FALSE(outcomes[1].failed);
}

TEST(SweepFaultToleranceTest, FaultSweepIsDeterministicAcrossThreadCounts) {
  ExperimentSpec spec = TinySpec();
  spec.power_loss_intervals = {0.5};
  spec.base.fault.transient_error_rate = 0.001;
  const std::vector<ExperimentPoint> points = EnumerateGrid(spec);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::vector<SweepOutcome> a = RunSweep(points, serial);
  const std::vector<SweepOutcome> b = RunSweep(points, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(RowToJson(a[i].row), RowToJson(b[i].row)) << "point " << i;
  }
}

// ---------------------------------------------------------------------------
// benchdiff: `_error` rows are skipped points, not regressions.

ResultRow HealthyRow(std::size_t point, double energy) {
  ResultRow row;
  row.AddInt("point", point);
  row.AddText("workload", "synth");
  row.AddText("device", "intel-datasheet");
  row.AddNumber("total_energy_j", energy);
  return row;
}

ResultRow ErrorRow(std::size_t point) {
  ResultRow row;
  row.AddInt("point", point);
  row.AddText("workload", "synth");
  row.AddText("device", "intel-datasheet");
  row.AddText("_error", "MOBISIM_CHECK failed: boom");
  return row;
}

TEST(BenchdiffFaultTest, ErrorRowsAreSkippedNotRegressions) {
  StoredRun base;
  base.rows = {HealthyRow(0, 100.0), HealthyRow(1, 100.0)};
  StoredRun cand;
  // Point 1 failed in the candidate: same point count, but its row carries
  // `_error` instead of metrics (and would read as energy 0, a huge
  // "improvement", or worse as a regression with the sign flipped, if it
  // were compared).
  cand.rows = {HealthyRow(0, 100.0), ErrorRow(1)};

  DiffOptions options;
  options.metrics = {"total_energy_j"};
  const DiffReport report = DiffRuns(base, cand, options);
  EXPECT_TRUE(report.comparable);
  EXPECT_EQ(report.points, 1u);
  EXPECT_EQ(report.skipped_points, 1u);
  EXPECT_FALSE(report.HasRegressions());
  ASSERT_EQ(report.summaries.size(), 1u);
  EXPECT_EQ(report.summaries[0].pass, 1u);
  EXPECT_NE(RenderReportText(report).find("skipped"), std::string::npos);
  EXPECT_NE(RenderReportMarkdown(report).find("skipped"), std::string::npos);
}

TEST(BenchdiffFaultTest, AllPointsFailedStillComparable) {
  StoredRun base;
  base.rows = {ErrorRow(0)};
  StoredRun cand;
  cand.rows = {ErrorRow(0)};
  DiffOptions options;
  options.metrics = {"total_energy_j"};
  const DiffReport report = DiffRuns(base, cand, options);
  EXPECT_TRUE(report.comparable);
  EXPECT_EQ(report.points, 0u);
  EXPECT_EQ(report.skipped_points, 1u);
  EXPECT_FALSE(report.HasRegressions());
  EXPECT_TRUE(report.skipped_metrics.empty());
}

// ---------------------------------------------------------------------------
// Spec plumbing: fault keys parse, sweep dimension enumerates, fingerprints
// of fault-free specs are untouched.

TEST(FaultSpecTest, FaultKeysParse) {
  SimConfig config;
  std::string error;
  EXPECT_TRUE(ApplyConfigAssignment(&config, "fault.power_loss_interval", "2.5", &error));
  EXPECT_EQ(config.fault.power_loss_interval_us, UsFromSec(2.5));
  EXPECT_TRUE(ApplyConfigAssignment(&config, "fault.transient_error_rate", "0.01", &error));
  EXPECT_DOUBLE_EQ(config.fault.transient_error_rate, 0.01);
  EXPECT_TRUE(ApplyConfigAssignment(&config, "fault.wear_out", "true", &error));
  EXPECT_TRUE(config.fault.wear_out);
  EXPECT_TRUE(config.fault.enabled());
  EXPECT_FALSE(ApplyConfigAssignment(&config, "fault.bad_block_rate", "1.5", &error));
  EXPECT_FALSE(ApplyConfigAssignment(&config, "fault.max_retries", "2.5", &error));
}

TEST(FaultSpecTest, PowerLossIntervalsDimensionEnumerates) {
  ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(ApplySpecAssignment(&spec, "power_loss_intervals", "0, 1.0, 10.0", &error))
      << error;
  ASSERT_EQ(spec.power_loss_intervals.size(), 3u);
  EXPECT_EQ(GridSize(spec), 3u);
  const std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].config.fault.power_loss_interval_us, 0);
  EXPECT_EQ(points[1].config.fault.power_loss_interval_us, UsFromSec(1.0));
  EXPECT_EQ(points[2].config.fault.power_loss_interval_us, UsFromSec(10.0));
  // Export is uniform across the sweep, including the fault-free point, so
  // every row shares one schema.
  for (const ExperimentPoint& point : points) {
    EXPECT_TRUE(point.config.fault.export_metrics);
  }
}

TEST(FaultSpecTest, FaultFreeSpecFingerprintUnchangedByFaultSupport) {
  // The canonical text of a spec with no fault configuration must not
  // mention faults at all — that is what keeps committed baseline
  // fingerprints valid across this feature's introduction.
  ExperimentSpec spec;
  const std::string canon = CanonicalSpecText(spec);
  EXPECT_EQ(canon.find("fault"), std::string::npos);
  EXPECT_EQ(canon.find("power_loss"), std::string::npos);

  ExperimentSpec faulty = spec;
  faulty.power_loss_intervals = {1.0};
  EXPECT_NE(CanonicalSpecText(faulty).find("power_loss_intervals"), std::string::npos);
  EXPECT_NE(SpecFingerprint(spec), SpecFingerprint(faulty));
}

}  // namespace
}  // namespace mobisim
