// Tests for the battery lifetime model.
#include <gtest/gtest.h>

#include "src/power/battery.h"

namespace mobisim {
namespace {

TEST(BatteryTest, IdealBatteryIsLinear) {
  BatteryConfig config;
  config.nominal_wh = 20.0;
  config.nominal_load_w = 10.0;
  config.peukert_exponent = 1.0;
  const Battery battery(config);
  EXPECT_DOUBLE_EQ(battery.LifetimeHours(10.0), 2.0);
  EXPECT_DOUBLE_EQ(battery.LifetimeHours(5.0), 4.0);
  EXPECT_DOUBLE_EQ(battery.EffectiveWh(20.0), 20.0);
}

TEST(BatteryTest, PeukertPenalizesHighDischarge) {
  BatteryConfig config;
  config.nominal_wh = 24.0;
  config.nominal_load_w = 12.0;
  config.peukert_exponent = 1.10;
  const Battery battery(config);
  // At the nominal rate the pack delivers its rating.
  EXPECT_NEAR(battery.EffectiveWh(12.0), 24.0, 1e-9);
  // Faster discharge delivers less, slower delivers more.
  EXPECT_LT(battery.EffectiveWh(24.0), 24.0);
  EXPECT_GT(battery.EffectiveWh(6.0), 24.0);
}

TEST(BatteryTest, ExtensionIsSuperLinear) {
  const Battery battery(BatteryConfig{});
  // Cutting the load 20% extends life by MORE than 25% (1/0.8 - 1) because
  // the lighter rate also unlocks extra capacity.
  const double extension = battery.ExtensionVs(12.0, 12.0 * 0.8);
  EXPECT_GT(extension, 0.25);
  EXPECT_LT(extension, 0.40);
  // No change, no extension.
  EXPECT_NEAR(battery.ExtensionVs(10.0, 10.0), 0.0, 1e-12);
}

TEST(BatteryTest, PaperScaleSanity) {
  // Storage at 30% of a 12-W system; flash cuts storage power 90%: the
  // system drops to ~8.8 W and the pack should last ~20-40% longer --
  // bracketing the paper's 22%.
  const Battery battery(BatteryConfig{});
  const double base_w = 12.0;
  const double flash_w = 12.0 * 0.70 + 12.0 * 0.30 * 0.10;
  const double extension = battery.ExtensionVs(base_w, flash_w);
  EXPECT_GT(extension, 0.20);
  EXPECT_LT(extension, 0.45);
}

}  // namespace
}  // namespace mobisim
