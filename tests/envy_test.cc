// Tests for the eNVy-style NVRAM+flash store.
#include <gtest/gtest.h>

#include "src/envy/envy_store.h"

namespace mobisim {
namespace {

EnvyConfig SmallConfig(double utilization) {
  EnvyConfig config;
  config.flash_bytes = 8 * 1024 * 1024;
  config.sram_bytes = 32 * 1024;
  config.utilization = utilization;
  return config;
}

TEST(EnvyStoreTest, TransactionsAdvanceClock) {
  EnvyStore store(SmallConfig(0.6));
  Rng rng(1);
  const SimTime t1 = store.Transaction(rng);
  EXPECT_GT(t1, 0);
  EXPECT_EQ(store.transactions(), 1u);
  EXPECT_EQ(store.now(), t1);
}

TEST(EnvyStoreTest, ReadsAreCheapWritesBufferInSram) {
  EnvyStore store(SmallConfig(0.6));
  Rng rng(2);
  // Read-only transactions: cost is pure flash reads (fast).
  const SimTime read_only = store.Transaction(rng, 4, 0);
  EXPECT_LT(read_only, UsFromMs(1));
  // A small number of writes lands in SRAM: also fast (no flash write yet).
  const SimTime with_writes = store.Transaction(rng, 0, 4);
  EXPECT_LT(with_writes, UsFromMs(1));
}

TEST(EnvyStoreTest, BufferFlushPaysFlashWrites) {
  EnvyConfig config = SmallConfig(0.6);
  config.sram_bytes = 4 * 1024;  // 4-page buffer: flushes quickly
  EnvyStore store(config);
  Rng rng(3);
  SimTime max_tx = 0;
  for (int i = 0; i < 16; ++i) {
    max_tx = std::max(max_tx, store.Transaction(rng, 0, 1));
  }
  // At least one transaction triggered a flush of 4 pages to flash.
  EXPECT_GE(max_tx, 4 * TransferTimeUs(1024, 214.0));
}

TEST(EnvyStoreTest, CleaningFractionRisesWithUtilization) {
  Rng rng_low(7);
  Rng rng_high(7);
  EnvyStore low(SmallConfig(0.55));
  EnvyStore high(SmallConfig(0.90));
  for (int i = 0; i < 30000; ++i) {
    low.Transaction(rng_low);
    high.Transaction(rng_high);
  }
  EXPECT_GT(high.cleaning_time_fraction(), low.cleaning_time_fraction());
  EXPECT_LT(high.tps(), low.tps());
  EXPECT_GT(high.pages_copied(), low.pages_copied());
  EXPECT_TRUE(high.segments().CheckInvariants());
}

TEST(EnvyStoreTest, TimeFractionsAreConsistent) {
  EnvyStore store(SmallConfig(0.85));
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    store.Transaction(rng);
  }
  const double total = store.cleaning_time_fraction() + store.io_time_fraction();
  EXPECT_NEAR(total, 1.0, 1e-6);  // every microsecond is io or cleaning
  EXPECT_GT(store.cleaning_time_fraction(), 0.0);
}

TEST(EnvyStoreTest, SkewedTrafficCleansCheaper) {
  // Hot/cold skew concentrates invalidation; with the segregated cleaning
  // destination, victims carry less live data and cleaning copies less per
  // reclaimed page.
  EnvyConfig uniform_config = SmallConfig(0.85);
  uniform_config.zipf_skew = 0.0;
  EnvyConfig skewed_config = SmallConfig(0.85);
  skewed_config.zipf_skew = 1.2;
  EnvyStore uniform(uniform_config);
  EnvyStore skewed(skewed_config);
  Rng rng_a(13);
  Rng rng_b(13);
  for (int i = 0; i < 30000; ++i) {
    uniform.Transaction(rng_a);
    skewed.Transaction(rng_b);
  }
  ASSERT_GT(uniform.segment_erases(), 0u);
  ASSERT_GT(skewed.segment_erases(), 0u);
  const double uniform_cpe = static_cast<double>(uniform.pages_copied()) /
                             static_cast<double>(uniform.segment_erases());
  const double skewed_cpe = static_cast<double>(skewed.pages_copied()) /
                            static_cast<double>(skewed.segment_erases());
  EXPECT_LT(skewed_cpe, uniform_cpe);
}

}  // namespace
}  // namespace mobisim
