// Unit and property tests for the flash segment-management substrate.
#include <gtest/gtest.h>

#include <vector>

#include "src/flash/segment_manager.h"
#include "src/util/rng.h"

namespace mobisim {
namespace {

SegmentManagerConfig SmallConfig() {
  SegmentManagerConfig config;
  config.capacity_bytes = 16 * 1024;  // 4 segments x 4 KB
  config.segment_bytes = 4 * 1024;
  config.block_bytes = 1024;          // 4 blocks per segment
  return config;
}

TEST(SegmentManagerTest, InitialState) {
  SegmentManager m(SmallConfig());
  EXPECT_EQ(m.segment_count(), 4u);
  EXPECT_EQ(m.blocks_per_segment(), 4u);
  EXPECT_EQ(m.total_blocks(), 16u);
  EXPECT_EQ(m.free_slots(), 16u);
  EXPECT_EQ(m.live_blocks(), 0u);
  EXPECT_EQ(m.erased_segment_count(), 4u);
  EXPECT_EQ(m.active_free_slots(), 0u);  // no active segment yet
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, WriteConsumesSlotAndMaps) {
  SegmentManager m(SmallConfig());
  m.WriteBlock(3);
  EXPECT_TRUE(m.IsMapped(3));
  EXPECT_FALSE(m.IsMapped(2));
  EXPECT_EQ(m.live_blocks(), 1u);
  EXPECT_EQ(m.free_slots(), 15u);
  EXPECT_EQ(m.erased_segment_count(), 3u);  // one became active
  EXPECT_EQ(m.active_free_slots(), 3u);
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, OverwriteInvalidatesOldCopy) {
  SegmentManager m(SmallConfig());
  m.WriteBlock(5);
  m.WriteBlock(5);
  // Live count unchanged, but two slots consumed.
  EXPECT_EQ(m.live_blocks(), 1u);
  EXPECT_EQ(m.free_slots(), 14u);
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, TrimUnmapsBlock) {
  SegmentManager m(SmallConfig());
  m.WriteBlock(1);
  m.TrimBlock(1);
  EXPECT_FALSE(m.IsMapped(1));
  EXPECT_EQ(m.live_blocks(), 0u);
  // Trim of an unmapped block is a no-op.
  m.TrimBlock(9);
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, ActiveFillsCompletelyBeforeNewSegment) {
  SegmentManager m(SmallConfig());
  for (std::uint64_t lba = 0; lba < 4; ++lba) {
    m.WriteBlock(lba);
  }
  EXPECT_EQ(m.active_free_slots(), 0u);
  EXPECT_EQ(m.erased_segment_count(), 3u);  // active is full but no new one opened yet
  m.WriteBlock(4);
  EXPECT_EQ(m.erased_segment_count(), 2u);
  EXPECT_EQ(m.active_free_slots(), 3u);
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, VictimNeedsInvalidBlock) {
  SegmentManager m(SmallConfig());
  // Fill one segment with live data: not a victim.
  for (std::uint64_t lba = 0; lba < 4; ++lba) {
    m.WriteBlock(lba);
  }
  EXPECT_EQ(m.PickVictim(), SegmentManager::kNoSegment);
  // Invalidate one block: now it qualifies.
  m.WriteBlock(0);  // new copy elsewhere; old slot invalid
  const std::uint32_t victim = m.PickVictim();
  ASSERT_NE(victim, SegmentManager::kNoSegment);
  EXPECT_EQ(m.VictimLiveBlocks(victim), 3u);
}

TEST(SegmentManagerTest, GreedyPicksLowestUtilization) {
  SegmentManagerConfig config = SmallConfig();
  config.capacity_bytes = 32 * 1024;  // 8 segments
  SegmentManager m(config);
  // Segment A: lbas 0-3, then invalidate 3 of them (rewrite elsewhere).
  for (std::uint64_t lba = 0; lba < 4; ++lba) {
    m.WriteBlock(lba);
  }
  // Segment B: lbas 4-7, invalidate 1.
  for (std::uint64_t lba = 4; lba < 8; ++lba) {
    m.WriteBlock(lba);
  }
  // Rewrites land in segment C.
  m.WriteBlock(0);
  m.WriteBlock(1);
  m.WriteBlock(2);
  m.WriteBlock(4);
  const std::uint32_t victim = m.PickVictim();
  ASSERT_NE(victim, SegmentManager::kNoSegment);
  EXPECT_EQ(m.VictimLiveBlocks(victim), 1u);  // segment A retains only lba 3
}

TEST(SegmentManagerTest, CleanSegmentRelocatesLiveData) {
  SegmentManager m(SmallConfig());
  for (std::uint64_t lba = 0; lba < 4; ++lba) {
    m.WriteBlock(lba);
  }
  m.WriteBlock(0);
  m.WriteBlock(1);
  const std::uint32_t victim = m.PickVictim();
  ASSERT_NE(victim, SegmentManager::kNoSegment);
  const std::uint64_t free_before = m.free_slots();
  const std::uint32_t copied = m.CleanSegment(victim);
  EXPECT_EQ(copied, 2u);  // lbas 2 and 3 were still live there
  EXPECT_TRUE(m.IsMapped(2));
  EXPECT_TRUE(m.IsMapped(3));
  EXPECT_EQ(m.segment_live_count(victim), 0u);
  EXPECT_EQ(m.segment_erase_count(victim), 1u);
  EXPECT_EQ(m.total_erase_operations(), 1u);
  // Net slots: -copied + one full segment.
  EXPECT_EQ(m.free_slots(), free_before - copied + m.blocks_per_segment());
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, CostBenefitPrefersOlderSegments) {
  // The policy is fixed at construction, so run the same traffic through a
  // greedy manager and a cost-benefit manager and compare their victims.
  auto drive = [](SegmentManager& m) {
    // Two segments with identical utilization but different ages.
    for (std::uint64_t lba = 0; lba < 4; ++lba) {
      m.WriteBlock(lba);  // segment filled first (older)
    }
    for (std::uint64_t lba = 4; lba < 8; ++lba) {
      m.WriteBlock(lba);
    }
    m.WriteBlock(0);  // invalidate one in the old segment
    m.WriteBlock(4);  // and one in the newer segment
  };
  SegmentManagerConfig config = SmallConfig();
  config.capacity_bytes = 32 * 1024;  // 8 segments
  SegmentManager greedy_m(config);
  config.cleaning_policy = CleaningPolicy::kCostBenefit;
  SegmentManager cb_m(config);
  drive(greedy_m);
  drive(cb_m);
  const std::uint32_t greedy = greedy_m.PickVictim();
  const std::uint32_t cb = cb_m.PickVictim();
  ASSERT_NE(cb, SegmentManager::kNoSegment);
  // Cost-benefit must pick the older of the two equal-utilization segments;
  // greedy ties arbitrarily (first found) -- both must be valid victims.
  EXPECT_EQ(cb_m.VictimLiveBlocks(cb), 3u);
  EXPECT_EQ(greedy_m.VictimLiveBlocks(greedy), 3u);
  EXPECT_EQ(cb, 0u);  // segment 0 filled first
}

TEST(SegmentManagerTest, PreloadPlacesSequentially) {
  SegmentManager m(SmallConfig());
  m.Preload(0, 10);
  EXPECT_EQ(m.live_blocks(), 10u);
  EXPECT_EQ(m.free_slots(), 6u);
  for (std::uint64_t lba = 0; lba < 10; ++lba) {
    EXPECT_TRUE(m.IsMapped(lba));
  }
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, LogicalSpaceLargerThanPhysical) {
  SegmentManagerConfig config = SmallConfig();
  config.logical_blocks = 64;  // 4x the physical slots
  SegmentManager m(config);
  m.WriteBlock(60);
  EXPECT_TRUE(m.IsMapped(60));
  EXPECT_EQ(m.live_blocks(), 1u);
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, EraseCountStatsTrackWear) {
  SegmentManager m(SmallConfig());
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t lba = 0; lba < 4; ++lba) {
      m.WriteBlock(lba);
    }
    const std::uint32_t victim = m.PickVictim();
    if (victim != SegmentManager::kNoSegment &&
        m.free_slots() >= m.VictimLiveBlocks(victim)) {
      m.CleanSegment(victim);
    }
  }
  const RunningStats stats = m.EraseCountStats();
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_GT(stats.max(), 0.0);
  EXPECT_EQ(stats.sum(), static_cast<double>(m.total_erase_operations()));
}

TEST(SegmentManagerTest, EnduranceLimitRetiresSegments) {
  SegmentManagerConfig config = SmallConfig();
  config.endurance_limit = 2;
  SegmentManager m(config);
  // Cycle one segment's worth of data repeatedly.
  std::uint64_t cleans = 0;
  for (int round = 0; round < 64 && m.bad_segment_count() == 0; ++round) {
    for (std::uint64_t lba = 0; lba < 4; ++lba) {
      if (m.free_slots() == 0) {
        break;
      }
      m.WriteBlock(lba);
    }
    const std::uint32_t victim = m.PickVictim();
    if (victim != SegmentManager::kNoSegment &&
        m.free_slots() >= m.VictimLiveBlocks(victim)) {
      m.CleanSegment(victim);
      ++cleans;
    }
  }
  EXPECT_GT(m.bad_segment_count(), 0u);
  EXPECT_GT(cleans, 0u);
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, BadSegmentsNeverReused) {
  SegmentManagerConfig config = SmallConfig();
  config.capacity_bytes = 32 * 1024;  // 8 segments
  config.endurance_limit = 1;         // every erase retires the segment
  SegmentManager m(config);
  std::uint64_t lba = 0;
  // Burn through segments until most are gone; writes must always land in
  // good segments and invariants must hold throughout.
  for (int i = 0; i < 200 && m.bad_segment_count() < 5; ++i) {
    if (m.free_slots() <= m.blocks_per_segment()) {
      const std::uint32_t victim = m.PickVictim();
      if (victim == SegmentManager::kNoSegment ||
          m.free_slots() < m.VictimLiveBlocks(victim)) {
        break;
      }
      m.CleanSegment(victim);
      continue;
    }
    m.WriteBlock(lba);
    lba = (lba + 1) % 8;
  }
  EXPECT_GT(m.bad_segment_count(), 0u);
  EXPECT_TRUE(m.CheckInvariants());
}

TEST(SegmentManagerTest, SeparateCleaningSegmentKeepsCopiesApart) {
  SegmentManagerConfig config = SmallConfig();
  config.capacity_bytes = 32 * 1024;  // 8 segments
  config.separate_cleaning_segment = true;
  SegmentManager m(config);
  // Fill two segments, invalidate some of the first, and clean it: the
  // survivors must not share a segment with subsequently written data.
  for (std::uint64_t lba = 0; lba < 8; ++lba) {
    m.WriteBlock(lba);
  }
  m.WriteBlock(0);
  m.WriteBlock(1);
  const std::uint32_t victim = m.PickVictim();
  ASSERT_NE(victim, SegmentManager::kNoSegment);
  m.CleanSegment(victim);  // relocates lbas 2, 3
  m.WriteBlock(20);        // fresh host write
  EXPECT_TRUE(m.CheckInvariants());
  // Survivors 2 and 3 share the cleaning segment; the fresh write lives in
  // the host log, elsewhere.
  EXPECT_EQ(m.BlockSegment(2), m.BlockSegment(3));
  EXPECT_NE(m.BlockSegment(20), m.BlockSegment(2));
}

// Property test: random traffic never violates the structural invariants.
class SegmentManagerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentManagerPropertyTest, RandomTrafficKeepsInvariants) {
  SegmentManagerConfig config;
  config.capacity_bytes = 64 * 1024;
  config.segment_bytes = 8 * 1024;
  config.block_bytes = 512;
  SegmentManager m(config);
  Rng rng(GetParam());
  const std::uint64_t span = m.total_blocks() * 3 / 4;

  for (int i = 0; i < 4000; ++i) {
    // Keep a cleaning reserve so writes always have room.
    while (m.free_slots() <= m.blocks_per_segment() * 2) {
      const std::uint32_t victim = m.PickVictim();
      ASSERT_NE(victim, SegmentManager::kNoSegment);
      ASSERT_GE(m.free_slots(), m.VictimLiveBlocks(victim));
      m.CleanSegment(victim);
    }
    const std::uint64_t lba =
        static_cast<std::uint64_t>(rng.UniformInt(0, static_cast<std::int64_t>(span) - 1));
    if (rng.Chance(0.1)) {
      m.TrimBlock(lba);
    } else {
      m.WriteBlock(lba);
    }
    if (i % 256 == 0) {
      ASSERT_TRUE(m.CheckInvariants()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(m.CheckInvariants());
  EXPECT_LE(m.live_blocks(), span);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentManagerPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mobisim
