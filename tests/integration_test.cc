// Cross-module integration: full pipelines from workload generation or
// import, through lowering (naive or FAT), to simulation on each device
// class.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"
#include "src/fs/fat_file_system.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/trace/external_formats.h"
#include "src/trace/trace_io.h"

namespace mobisim {
namespace {

TEST(IntegrationTest, FatLoweredTraceSimulates) {
  const Trace trace = GenerateNamedWorkload("synth", 0.1);
  FatConfig fat_config;
  fat_config.block_bytes = trace.block_bytes;
  fat_config.capacity_bytes = 32ull * 1024 * 1024;
  fat_config.dir_entries = 1024;
  FatFileSystem fat(fat_config);
  const BlockTrace blocks = fat.Lower(trace);
  ASSERT_GT(blocks.records.size(), trace.records.size());  // metadata added

  for (const DeviceSpec& spec : {Cu140Datasheet(), IntelCardDatasheet()}) {
    SimConfig config = MakePaperConfig(spec, 1024 * 1024);
    const SimResult result = RunSimulation(blocks, config);
    EXPECT_GT(result.total_energy_j(), 0.0) << spec.name;
    EXPECT_GT(result.overall_response_ms.count(), 0u) << spec.name;
  }
}

TEST(IntegrationTest, ImportedHplTraceSimulates) {
  std::ostringstream raw;
  // A burst of requests followed by silence, repeated.
  double t = 0.0;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 10; ++i) {
      raw << t << " 0 " << (burst * 100 + i) * 1024 << " 2048 "
          << (i % 2 == 0 ? "R" : "W") << "\n";
      t += 0.4;
    }
    t += 30.0;
  }
  std::istringstream in(raw.str());
  const auto blocks = ImportHplTrace(in, HplImportOptions{});
  ASSERT_TRUE(blocks.has_value());

  SimConfig config = MakePaperConfig(Cu140Datasheet(), 0);
  const SimResult result = RunSimulation(*blocks, config);
  EXPECT_GT(result.counters.spinups, 5u);  // idle gaps spin the disk down
  EXPECT_GT(result.total_energy_j(), 0.0);
}

TEST(IntegrationTest, TraceFileRoundTripPreservesSimulation) {
  const Trace trace = GenerateNamedWorkload("synth", 0.05);
  std::stringstream file;
  WriteTrace(trace, file);
  const auto loaded = ReadTrace(file);
  ASSERT_TRUE(loaded.has_value());

  SimConfig config = MakePaperConfig(Sdp5Datasheet(), 1024 * 1024);
  const SimResult direct = RunSimulation(BlockMapper::Map(trace), config);
  const SimResult via_file = RunSimulation(BlockMapper::Map(*loaded), config);
  EXPECT_DOUBLE_EQ(direct.total_energy_j(), via_file.total_energy_j());
  EXPECT_DOUBLE_EQ(direct.write_response_ms.mean(), via_file.write_response_ms.mean());
}

TEST(IntegrationTest, GeometryAndAverageModelsAgreeOnEnergyScale) {
  const Trace trace = GenerateNamedWorkload("synth", 0.1);
  const BlockTrace blocks = BlockMapper::Map(trace);
  SimConfig average = MakePaperConfig(Cu140Datasheet(), 1024 * 1024);
  SimConfig geometry = average;
  geometry.use_disk_geometry = true;
  geometry.disk_geometry = Cu140Geometry();
  const SimResult a = RunSimulation(blocks, average);
  const SimResult g = RunSimulation(blocks, geometry);
  // Same spin-state machinery: energies within 25% of each other.
  EXPECT_NEAR(g.total_energy_j() / a.total_energy_j(), 1.0, 0.25);
}

TEST(IntegrationTest, AllWorkloadsAllPoliciesSmoke) {
  for (const char* workload : {"mac", "dos"}) {
    for (const CleaningPolicy policy :
         {CleaningPolicy::kGreedy, CleaningPolicy::kCostBenefit, CleaningPolicy::kWearAware}) {
      SimConfig config = MakePaperConfig(IntelCardDatasheet(), 1024 * 1024);
      config.cleaning_policy = policy;
      config.separate_cleaning_segment = policy == CleaningPolicy::kCostBenefit;
      const SimResult result = RunNamedWorkload(workload, config, 0.05);
      ASSERT_GT(result.total_energy_j(), 0.0)
          << workload << " " << CleaningPolicyName(policy);
    }
  }
}

}  // namespace
}  // namespace mobisim
