// Unit tests for the magnetic-disk model: spin-state machine, seek policy,
// queueing, and exact energy accounting.
#include <gtest/gtest.h>

#include "src/device/device_catalog.h"
#include "src/device/magnetic_disk.h"

namespace mobisim {
namespace {

// A disk with round numbers so expectations are exact: 10-ms random
// overhead, 2-ms same-file overhead, 1024 KB/s both ways, 1-s spin-up.
DeviceSpec TestDisk() {
  DeviceSpec s;
  s.name = "test-disk";
  s.kind = DeviceKind::kMagneticDisk;
  s.read_overhead_ms = 10.0;
  s.write_overhead_ms = 10.0;
  s.sequential_overhead_ms = 2.0;
  s.read_kbps = 1024.0;
  s.write_kbps = 1024.0;
  s.spinup_ms = 1000.0;
  s.read_w = 2.0;
  s.write_w = 2.0;
  s.idle_w = 1.0;
  s.sleep_w = 0.1;
  s.spinup_w = 4.0;
  return s;
}

DeviceOptions TestOptions() {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.spin_down_after_us = 5 * kUsPerSec;
  return options;
}

BlockRecord Rec(SimTime t, std::uint64_t lba, std::uint32_t count, std::uint32_t file) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = OpType::kRead;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = file;
  return rec;
}

// One 1-Kbyte block at 1024 KB/s is 1/1024 s.
constexpr SimTime kBlockUs = kUsPerSec / 1024;

TEST(MagneticDiskTest, FirstReadWhileSpinning) {
  MagneticDisk disk(TestDisk(), TestOptions());
  const SimTime response = disk.Read(0, Rec(0, 0, 1, 1));
  EXPECT_EQ(response, UsFromMs(10) + kBlockUs);
  EXPECT_EQ(disk.counters().reads, 1u);
  EXPECT_EQ(disk.counters().spinups, 0u);
}

TEST(MagneticDiskTest, SameFileSkipsSeek) {
  MagneticDisk disk(TestDisk(), TestOptions());
  disk.Read(0, Rec(0, 0, 1, 7));
  const SimTime t2 = 2 * kUsPerSec;
  const SimTime response = disk.Read(t2, Rec(t2, 100, 1, 7));
  EXPECT_EQ(response, UsFromMs(2) + kBlockUs);  // sequential overhead only
  // A different file pays the full seek again.
  const SimTime t3 = 3 * kUsPerSec;
  EXPECT_EQ(disk.Read(t3, Rec(t3, 0, 1, 8)), UsFromMs(10) + kBlockUs);
}

TEST(MagneticDiskTest, SpinsDownAfterThresholdAndPaysSpinup) {
  MagneticDisk disk(TestDisk(), TestOptions());
  disk.Read(0, Rec(0, 0, 1, 1));
  EXPECT_TRUE(disk.IsSpinningAt(4 * kUsPerSec));
  EXPECT_FALSE(disk.IsSpinningAt(6 * kUsPerSec));
  const SimTime t2 = 10 * kUsPerSec;
  const SimTime response = disk.Read(t2, Rec(t2, 0, 1, 1));
  // Spin-up + random overhead (head position lost) + transfer.
  EXPECT_EQ(response, UsFromMs(1000) + UsFromMs(10) + kBlockUs);
  EXPECT_EQ(disk.counters().spinups, 1u);
}

TEST(MagneticDiskTest, QueueingDelaysBackToBackRequests) {
  MagneticDisk disk(TestDisk(), TestOptions());
  const SimTime r1 = disk.Read(0, Rec(0, 0, 1, 1));
  // Second request arrives while the first is still in service.
  const SimTime r2 = disk.Read(0, Rec(0, 0, 1, 2));
  EXPECT_EQ(r2, r1 + UsFromMs(10) + kBlockUs);
}

TEST(MagneticDiskTest, IdleEnergyExact) {
  DeviceSpec spec = TestDisk();
  MagneticDisk disk(spec, TestOptions());
  // 10 s idle then finish: 5 s idle at 1 W + 5 s sleep at 0.1 W.
  disk.Finish(10 * kUsPerSec);
  EXPECT_NEAR(disk.energy().total_joules(), 5.0 * 1.0 + 5.0 * 0.1, 1e-6);
}

TEST(MagneticDiskTest, ActiveAndSpinupEnergyExact) {
  MagneticDisk disk(TestDisk(), TestOptions());
  disk.Read(0, Rec(0, 0, 1, 1));  // 10 ms + ~0.98 ms active at 2 W
  const double active_j = 2.0 * SecFromUs(UsFromMs(10) + kBlockUs);
  // Let it spin down, then wake it with a read at t = 100 s.
  const SimTime t2 = 100 * kUsPerSec;
  disk.Read(t2, Rec(t2, 0, 1, 1));
  disk.Finish(disk.busy_until());
  // Timeline: op1 active, 5 s idle, sleep until t2, 1-s spin-up, op2 active.
  const double op_sec = SecFromUs(UsFromMs(10) + kBlockUs);
  const double expected = 2.0 * active_j         // two active ops
                          + 4.0 * 1.0            // spin-up: 1 s at 4 W
                          + 1.0 * 5.0            // one 5-s idle window at 1 W
                          + 0.1 * (100.0 - op_sec - 5.0);
  EXPECT_NEAR(disk.energy().total_joules(), expected, 0.05);
}

TEST(MagneticDiskTest, WritesUseWritePowerAndCounters) {
  MagneticDisk disk(TestDisk(), TestOptions());
  BlockRecord rec = Rec(0, 0, 4, 1);
  rec.op = OpType::kWrite;
  disk.Write(0, rec);
  EXPECT_EQ(disk.counters().writes, 1u);
  EXPECT_EQ(disk.counters().bytes_written, 4096u);
  EXPECT_EQ(disk.counters().reads, 0u);
}

TEST(MagneticDiskTest, TrimIsFree) {
  MagneticDisk disk(TestDisk(), TestOptions());
  BlockRecord rec = Rec(0, 0, 4, 1);
  rec.op = OpType::kErase;
  disk.Trim(0, rec);
  EXPECT_EQ(disk.busy_until(), 0);
  EXPECT_EQ(disk.counters().writes, 0u);
}

TEST(MagneticDiskTest, AdaptiveThresholdGrowsAfterPrematureSleep) {
  DeviceOptions options = TestOptions();
  options.spin_down_policy = SpinDownPolicy::kAdaptive;
  options.spin_down_after_us = 2 * kUsPerSec;
  MagneticDisk disk(TestDisk(), options);
  EXPECT_EQ(disk.spin_down_threshold_us(), 2 * kUsPerSec);
  // Sleep for far less than break-even (spinup 4 J / (1 - 0.1) W ~ 4.4 s):
  // op at t=0, disk sleeps at 2 s, next op at 3 s -> 1-s sleep.
  disk.Read(0, Rec(0, 0, 1, 1));
  disk.Read(3 * kUsPerSec, Rec(3 * kUsPerSec, 0, 1, 1));
  EXPECT_EQ(disk.spin_down_threshold_us(), 4 * kUsPerSec);  // doubled
}

TEST(MagneticDiskTest, AdaptiveThresholdShrinksAfterLongSleep) {
  DeviceOptions options = TestOptions();
  options.spin_down_policy = SpinDownPolicy::kAdaptive;
  options.spin_down_after_us = 10 * kUsPerSec;
  MagneticDisk disk(TestDisk(), options);
  disk.Read(0, Rec(0, 0, 1, 1));
  // Next op after 10 minutes: the sleep was clearly worthwhile.
  const SimTime t2 = 600 * kUsPerSec;
  disk.Read(t2, Rec(t2, 0, 1, 1));
  EXPECT_EQ(disk.spin_down_threshold_us(), 9 * kUsPerSec);  // -10%
}

TEST(MagneticDiskTest, FixedPolicyNeverAdapts) {
  DeviceOptions options = TestOptions();
  MagneticDisk disk(TestDisk(), options);
  disk.Read(0, Rec(0, 0, 1, 1));
  disk.Read(6 * kUsPerSec, Rec(6 * kUsPerSec, 0, 1, 1));
  disk.Read(1000 * kUsPerSec, Rec(1000 * kUsPerSec, 0, 1, 1));
  EXPECT_EQ(disk.spin_down_threshold_us(), options.spin_down_after_us);
}

TEST(MagneticDiskTest, ZeroThresholdSleepsImmediately) {
  DeviceOptions options = TestOptions();
  options.spin_down_after_us = 0;
  MagneticDisk disk(TestDisk(), options);
  disk.Read(0, Rec(0, 0, 1, 1));
  EXPECT_FALSE(disk.IsSpinningAt(disk.busy_until() + 1));
  const SimTime t2 = kUsPerSec;
  const SimTime response = disk.Read(t2, Rec(t2, 0, 1, 1));
  EXPECT_EQ(response, UsFromMs(1000) + UsFromMs(10) + kBlockUs);
  EXPECT_EQ(disk.counters().spinups, 1u);
}

}  // namespace
}  // namespace mobisim
