// Tests for the sweepd subsystem: spool lifecycle and claim semantics,
// shard-spec validation, merge conflict rules, worker resume after an
// injected mid-shard death (byte-identical merged output vs a serial run),
// dispatcher retry/exhaustion of poisoned points, the incremental bench_db
// merge, and the heartbeat + HTTP status plumbing.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/bench_db/bench_db.h"
#include "src/core/result_io.h"
#include "src/runner/cli_options.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/sweepd/dispatcher.h"
#include "src/sweepd/lease.h"
#include "src/sweepd/merge.h"
#include "src/sweepd/spool.h"
#include "src/sweepd/worker.h"
#include "src/util/atomic_file.h"
#include "src/util/heartbeat.h"
#include "src/util/http_client.h"
#include "src/util/http_server.h"

namespace mobisim {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mobisim_sweepd_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Four fast points (2 utilizations x 2 replicas) on the flash card.
constexpr char kTinySpec[] =
    "devices = intel-datasheet\n"
    "workloads = synth\n"
    "utilizations = 0.5, 0.6\n"
    "seeds = 3\n"
    "replicas = 2\n"
    "scale = 0.05\n";

// A policy-grid cross: 2 backends x 3 ftl policies at one utilization.  The
// backend and ftl axes multiply the shard arithmetic exactly like the older
// dimensions, and the per-point rows carry the policy columns, so a
// sharded/merged run must stay byte-identical to a serial one.
constexpr char kPolicyGridSpec[] =
    "devices = intel-datasheet\n"
    "workloads = synth\n"
    "utilizations = 0.9\n"
    "backends = average-cost, geometry\n"
    "ftl = greedy, page_diff, fat_remap\n"
    "seeds = 3\n"
    "scale = 0.05\n";

// Two points, one deterministically poisoned: capacity = 256k is far below
// what the synth trace writes, so the flash-card point trips an invariant
// and becomes an `_error` row while the magnetic-disk point completes.
constexpr char kPoisonSpec[] =
    "devices = intel-datasheet, cu140-datasheet\n"
    "workloads = synth\n"
    "utilizations = 0.9\n"
    "capacity = 256k\n"
    "seeds = 7\n"
    "scale = 0.05\n";

// The reference output: the same spec run serially through RunSweep.
std::vector<std::string> SerialRowsJson(const std::string& spec_text) {
  std::string error;
  const auto spec = ParseExperimentSpec(spec_text, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  SweepOptions options;
  options.threads = 1;
  std::vector<std::string> rows;
  for (const SweepOutcome& outcome : RunSweep(EnumerateGrid(*spec), options)) {
    rows.push_back(RowToJson(outcome.row));
  }
  return rows;
}

std::vector<std::string> MergedRowsJson(const std::string& dir) {
  std::string error;
  const auto merged = MergeShardDir(dir, &error);
  EXPECT_TRUE(merged.has_value()) << error;
  std::vector<std::string> rows;
  for (const ResultRow& row : merged->rows) {
    rows.push_back(RowToJson(row));
  }
  return rows;
}

// --- ParseShardSpec ------------------------------------------------------

TEST(ShardSpecTest, AcceptsValidDesignators) {
  std::size_t shard = 99;
  std::size_t shards = 0;
  std::string error;
  EXPECT_TRUE(ParseShardSpec("0/4", &shard, &shards, &error));
  EXPECT_EQ(shard, 0u);
  EXPECT_EQ(shards, 4u);
  EXPECT_TRUE(ParseShardSpec("3/4", &shard, &shards, &error));
  EXPECT_EQ(shard, 3u);
}

TEST(ShardSpecTest, RejectsMalformedDesignators) {
  std::size_t shard = 0;
  std::size_t shards = 0;
  std::string error;
  // K >= N: the off-by-one a human actually types.
  EXPECT_FALSE(ParseShardSpec("4/4", &shard, &shards, &error));
  EXPECT_NE(error.find("must be <"), std::string::npos) << error;
  // Zero shard count.
  EXPECT_FALSE(ParseShardSpec("0/0", &shard, &shards, &error));
  EXPECT_NE(error.find("zero"), std::string::npos) << error;
  // Non-numeric, negative, missing slash, empty.
  EXPECT_FALSE(ParseShardSpec("x/3", &shard, &shards, &error));
  EXPECT_FALSE(ParseShardSpec("-1/3", &shard, &shards, &error));
  EXPECT_FALSE(ParseShardSpec("3", &shard, &shards, &error));
  EXPECT_FALSE(ParseShardSpec("", &shard, &shards, &error));
  EXPECT_FALSE(ParseShardSpec("1/2/3", &shard, &shards, &error));
}

// --- WorkItem serialization ----------------------------------------------

TEST(WorkItemTest, JsonRoundTrip) {
  WorkItem item;
  item.id = "shard-0007.r2";
  item.shard = 7;
  item.shards = 16;
  item.points = {3, 19, 35};
  item.attempt = 2;
  std::string error;
  const auto back = WorkItemFromJson(WorkItemToJson(item), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->id, item.id);
  EXPECT_EQ(back->shard, item.shard);
  EXPECT_EQ(back->shards, item.shards);
  EXPECT_EQ(back->points, item.points);
  EXPECT_EQ(back->attempt, item.attempt);
}

// --- Spool lifecycle -----------------------------------------------------

TEST(SpoolTest, CreateClaimFinishLifecycle) {
  const std::string root = FreshDir("lifecycle");
  std::filesystem::remove_all(root);
  std::string error;
  auto spool = Spool::Create(root, kTinySpec, "tiny", 2, &error);
  ASSERT_TRUE(spool.has_value()) << error;

  const auto meta = spool->ReadMeta(&error);
  ASSERT_TRUE(meta.has_value()) << error;
  EXPECT_EQ(meta->shards, 2u);
  EXPECT_EQ(meta->points, 4u);
  EXPECT_FALSE(meta->spec_hash.empty());

  // The stored spec parses back to the same fingerprint.
  const auto spec = spool->LoadSpec(&error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(SpecFingerprint(*spec), meta->spec_hash);

  EXPECT_EQ(spool->CountItems().queued, 2u);

  // Claim moves the item to running/ and writes a first heartbeat.
  auto first = spool->Claim(42, &error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_EQ(first->id, "shard-0000");
  EXPECT_TRUE(std::filesystem::exists(spool->HeartbeatPath(first->id)));
  EXPECT_EQ(spool->CountItems().running, 1u);

  auto second = spool->Claim(42, &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_EQ(second->id, "shard-0001");

  // Queue drained: nullopt with no error.
  error = "sentinel";
  EXPECT_FALSE(spool->Claim(42, &error).has_value());
  EXPECT_TRUE(error.empty());

  // Finish requires the rows file to be in place only by convention; the
  // state transition itself is the rename.
  ASSERT_TRUE(WriteFileAtomic(spool->RowsPath(first->id), "", &error)) << error;
  EXPECT_TRUE(spool->FinishItem(*first, &error)) << error;
  EXPECT_EQ(spool->CountItems().done, 1u);
  EXPECT_FALSE(std::filesystem::exists(spool->HeartbeatPath(first->id)));

  // A lost lease: finishing an item that is no longer in running/.
  EXPECT_FALSE(spool->FinishItem(*first, &error));

  // Requeue bumps the attempt and moves the item back to queue/.
  EXPECT_TRUE(spool->Requeue(*second, &error)) << error;
  EXPECT_EQ(spool->CountItems().queued, 1u);
  const auto requeued = spool->ReadItem("queue", second->id, &error);
  ASSERT_TRUE(requeued.has_value()) << error;
  EXPECT_EQ(requeued->attempt, second->attempt + 1);

  // FailItem retires it.
  EXPECT_TRUE(spool->FailItem(*requeued, "queue", &error)) << error;
  EXPECT_EQ(spool->CountItems().failed, 1u);
}

TEST(SpoolTest, CreateRefusesExistingSpoolAndBadSpec) {
  const std::string root = FreshDir("refuse");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 1, &error).has_value()) << error;
  EXPECT_FALSE(Spool::Create(root, kTinySpec, "tiny", 1, &error).has_value());
  EXPECT_NE(error.find("already holds a spool"), std::string::npos) << error;

  const std::string other = FreshDir("badspec");
  std::filesystem::remove_all(other);
  EXPECT_FALSE(
      Spool::Create(other, "devices = no-such-device\n", "x", 1, &error).has_value());
}

// --- Merge conflict rules ------------------------------------------------

ResultRow DataRow(std::uint64_t point, const std::string& payload,
                  bool error_row = false) {
  ResultRow row;
  row.AddInt("point", point);
  row.AddText("payload", payload);
  if (error_row) {
    row.AddText("_error", "boom");
  }
  return row;
}

std::string WriteShardFile(const std::string& dir, const std::string& name,
                           const std::string& spec_hash,
                           const std::vector<ResultRow>& rows) {
  RunMeta meta;
  meta.spec_name = "t";
  meta.spec_hash = spec_hash;
  meta.git_sha = "sha";
  meta.created = "2026-01-01T00:00:00Z";
  meta.host = "host";
  meta.points = rows.size();
  std::ostringstream out;
  out << RowToJson(MetaToRow(meta)) << "\n";
  for (const ResultRow& row : rows) {
    out << RowToJson(row) << "\n";
  }
  const std::string path = dir + "/" + name;
  std::string error;
  EXPECT_TRUE(WriteFileAtomic(path, out.str(), &error)) << error;
  return path;
}

TEST(MergeTest, DuplicatesCollapseAndCleanBeatsError) {
  const std::string dir = FreshDir("mergerules");
  std::string error;
  // Shard A: point 0 clean, point 1 errored.  Shard B: point 0 again (the
  // exact same row: a re-run), point 1 clean (a retry that succeeded),
  // point 2 errored (stays errored).
  WriteShardFile(dir, "a.jsonl", "h",
                 {DataRow(0, "x"), DataRow(1, "y", true), DataRow(2, "z", true)});
  WriteShardFile(dir, "b.jsonl", "h", {DataRow(0, "x"), DataRow(1, "y2")});
  const auto merged = MergeShardDir(dir, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_EQ(merged->rows.size(), 3u);
  EXPECT_EQ(merged->rows[0].Text("payload"), "x");
  EXPECT_EQ(merged->rows[1].Text("payload"), "y2");
  EXPECT_FALSE(IsErrorRow(merged->rows[1]));
  EXPECT_TRUE(IsErrorRow(merged->rows[2]));
  EXPECT_EQ(merged->stats.duplicates, 1u);
  EXPECT_EQ(merged->stats.overridden, 1u);
  EXPECT_EQ(merged->stats.error_rows, 1u);

  // An `_error` row never replaces a clean one, whatever the order.
  const std::string dir2 = FreshDir("mergerules2");
  WriteShardFile(dir2, "a.jsonl", "h", {DataRow(5, "good")});
  WriteShardFile(dir2, "b.jsonl", "h", {DataRow(5, "good", true)});
  const auto merged2 = MergeShardDir(dir2, &error);
  ASSERT_TRUE(merged2.has_value()) << error;
  ASSERT_EQ(merged2->rows.size(), 1u);
  EXPECT_FALSE(IsErrorRow(merged2->rows[0]));
}

TEST(MergeTest, ConflictingCleanRowsAndSpecMismatchAreHardErrors) {
  const std::string dir = FreshDir("mergeconflict");
  std::string error;
  WriteShardFile(dir, "a.jsonl", "h", {DataRow(0, "x")});
  WriteShardFile(dir, "b.jsonl", "h", {DataRow(0, "DIFFERENT")});
  EXPECT_FALSE(MergeShardDir(dir, &error).has_value());
  EXPECT_NE(error.find("conflicting"), std::string::npos) << error;

  const std::string dir2 = FreshDir("mergespecs");
  WriteShardFile(dir2, "a.jsonl", "hash1", {DataRow(0, "x")});
  WriteShardFile(dir2, "b.jsonl", "hash2", {DataRow(1, "y")});
  EXPECT_FALSE(MergeShardDir(dir2, &error).has_value());
  EXPECT_NE(error.find("different experiments"), std::string::npos) << error;
}

TEST(MergeTest, LoadPartialRowsSkipsTornTailAndHeader) {
  const std::string dir = FreshDir("torn");
  const std::string path = dir + "/part.jsonl";
  {
    std::ofstream out(path);
    out << R"({"_meta":1,"spec_name":"x"})" << "\n";
    out << RowToJson(DataRow(0, "ok")) << "\n";
    out << R"({"point":1,"payload":"tor)";  // crashed mid-write
  }
  const auto rows = LoadPartialRows(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Text("payload"), "ok");
}

// --- Worker: clean run matches serial, kill mid-shard resumes ------------

TEST(WorkerTest, DrainsSpoolAndMatchesSerialRun) {
  const std::string root = FreshDir("workerclean");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 3, &error).has_value()) << error;

  WorkerOptions options;
  options.spool_root = root;
  options.owner = 1;
  const WorkerSummary summary = RunWorkerLoop(options);
  EXPECT_EQ(summary.items, 3u);
  EXPECT_EQ(summary.rows, 4u);
  EXPECT_EQ(summary.error_rows, 0u);

  Spool spool(root);
  EXPECT_EQ(spool.CountItems().done, 3u);
  EXPECT_EQ(MergedRowsJson(root), SerialRowsJson(kTinySpec));
}

TEST(WorkerTest, PolicyGridShardsMergeByteIdenticalToSerial) {
  // The backends x ftl cross enumerates 6 points; 4 shards exercises the
  // uneven-split arithmetic over the new dimensions.
  std::string error;
  const auto spec = ParseExperimentSpec(kPolicyGridSpec, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(GridSize(*spec), 6u);

  const std::string root = FreshDir("workerpolicygrid");
  std::filesystem::remove_all(root);
  ASSERT_TRUE(Spool::Create(root, kPolicyGridSpec, "grid", 4, &error).has_value())
      << error;

  WorkerOptions options;
  options.spool_root = root;
  options.owner = 2;
  const WorkerSummary summary = RunWorkerLoop(options);
  EXPECT_EQ(summary.items, 4u);
  EXPECT_EQ(summary.rows, 6u);
  EXPECT_EQ(summary.error_rows, 0u);

  const std::vector<std::string> merged = MergedRowsJson(root);
  EXPECT_EQ(merged, SerialRowsJson(kPolicyGridSpec));
  // The rows really carry the policy axes (the merge preserved them).
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_NE(merged[0].find("\"ftl\":\"log\""), std::string::npos);
  EXPECT_NE(merged[1].find("\"ftl\":\"page-diff\""), std::string::npos);
  EXPECT_NE(merged[5].find("\"backend\":\"geometry\""), std::string::npos);
}

TEST(WorkerTest, KilledWorkerLeavesLeaseAndSuccessorResumes) {
  const std::string root = FreshDir("workerkill");
  std::filesystem::remove_all(root);
  std::string error;
  // One shard holding all four points, so the kill lands mid-shard.
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 1, &error).has_value()) << error;

  // The doomed worker runs in a fork so its _Exit(137) — a faithful SIGKILL
  // stand-in: no destructors, no finalization — cannot take the test down.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    WorkerOptions options;
    options.spool_root = root;
    options.owner = 77;
    options.kill_after_rows = 2;
    RunWorkerLoop(options);
    _exit(0);  // not reached: the kill hook fires first
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137);

  // The spool shows exactly what a kill -9 leaves: a leased item, a
  // heartbeat, and a part file holding the rows streamed before death.
  Spool spool(root);
  EXPECT_EQ(spool.CountItems().running, 1u);
  const auto parts = spool.PartPaths("shard-0000");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(LoadPartialRows(parts[0]).size(), 2u);

  // Dispatcher-style recovery: requeue, then a fresh worker claims it and
  // resumes from the dead worker's rows instead of re-simulating them.
  const auto item = spool.ReadItem("running", "shard-0000", &error);
  ASSERT_TRUE(item.has_value()) << error;
  ASSERT_TRUE(spool.Requeue(*item, &error)) << error;

  WorkerOptions options;
  options.spool_root = root;
  options.owner = 78;
  const WorkerSummary summary = RunWorkerLoop(options);
  EXPECT_EQ(summary.items, 1u);
  EXPECT_EQ(summary.resumed, 2u);
  EXPECT_EQ(summary.rows, 2u);

  // The merged output is byte-identical to the serial run: same rows, no
  // duplicates, global point order.
  EXPECT_EQ(MergedRowsJson(root), SerialRowsJson(kTinySpec));
}

// --- Dispatcher: poisoned points retried, then exhausted -----------------

TEST(DispatcherTest, RetriesPoisonedPointsUntilBudgetExhausted) {
  const std::string root = FreshDir("dispatchpoison");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kPoisonSpec, "poison", 2, &error).has_value())
      << error;

  // No spawned workers (worker_binary stays unresolvable): the dispatcher
  // only enforces leases and retries; the worker loop runs here, in-process,
  // exactly as an externally attached worker would.
  DispatcherOptions options;
  options.spool_root = root;
  options.workers = 0;
  options.worker_binary = "/nonexistent/worker";
  options.retry_budget = 1;
  options.poll_sec = 0.02;

  std::atomic<bool> done{false};
  DispatchSummary summary;
  std::thread dispatcher([&] {
    summary = RunDispatcher(options);
    done.store(true);
  });
  std::uint64_t owner = 1;
  while (!done.load()) {
    WorkerOptions worker;
    worker.spool_root = root;
    worker.owner = ++owner;
    RunWorkerLoop(worker);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  dispatcher.join();

  EXPECT_TRUE(summary.complete);
  EXPECT_EQ(summary.points_done, 2u);
  EXPECT_EQ(summary.error_points, 1u);  // deterministic fault: retry re-fails
  EXPECT_EQ(summary.retries, 1u);       // one targeted `_error`-point retry
  EXPECT_EQ(summary.shards_failed, 0u);

  // The `_error` row stands in the merged output; the healthy point's row
  // is clean; re-running the retry did not duplicate anything.
  const auto merged = MergeShardDir(root, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_EQ(merged->rows.size(), 2u);
  EXPECT_EQ(merged->stats.error_rows, 1u);
}

// --- bench_db incremental merge ------------------------------------------

RunMeta DbMeta(const std::string& name, const std::string& hash) {
  RunMeta meta;
  meta.spec_name = name;
  meta.spec_hash = hash;
  meta.git_sha = "sha1";
  meta.created = "2026-01-01T00:00:00Z";
  meta.host = "host";
  return meta;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(BenchDbMergeTest, UnionsShardsIdempotently) {
  const std::string root = FreshDir("dbmerge");
  BenchDb db(root);
  std::string error;

  // First shard lands like a plain store.
  const auto first =
      db.MergeRun(DbMeta("run", "h"), {DataRow(0, "a"), DataRow(2, "c")}, &error);
  ASSERT_TRUE(first.has_value()) << error;

  // Second shard unions in by point index, keeping global order.
  const auto second = db.MergeRun(DbMeta("run", "h"), {DataRow(1, "b")}, &error);
  ASSERT_TRUE(second.has_value()) << error;
  const auto run = LoadRunFile(*second, &error);
  ASSERT_TRUE(run.has_value()) << error;
  ASSERT_EQ(run->rows.size(), 3u);
  EXPECT_EQ(run->rows[0].Text("payload"), "a");
  EXPECT_EQ(run->rows[1].Text("payload"), "b");
  EXPECT_EQ(run->rows[2].Text("payload"), "c");

  // Re-merging the same rows changes nothing: bytes identical, manifest
  // entry count unchanged — the merge is safe to repeat forever.
  const std::string run_bytes = Slurp(*second);
  const std::string index_bytes = Slurp(root + "/index.jsonl");
  const auto again = db.MergeRun(DbMeta("run", "h"), {DataRow(1, "b")}, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(Slurp(*second), run_bytes);
  EXPECT_EQ(Slurp(root + "/index.jsonl"), index_bytes);

  // A clean retry row replaces a stored `_error` row; the reverse never
  // happens.
  ASSERT_TRUE(db.MergeRun(DbMeta("run", "h"), {DataRow(3, "d", true)}, &error));
  ASSERT_TRUE(db.MergeRun(DbMeta("run", "h"), {DataRow(3, "d")}, &error));
  const auto healed = LoadRunFile(*second, &error);
  ASSERT_TRUE(healed.has_value()) << error;
  ASSERT_EQ(healed->rows.size(), 4u);
  EXPECT_FALSE(IsErrorRow(healed->rows[3]));
  ASSERT_TRUE(db.MergeRun(DbMeta("run", "h"), {DataRow(3, "d", true)}, &error));
  const auto still = LoadRunFile(*second, &error);
  ASSERT_TRUE(still.has_value()) << error;
  EXPECT_FALSE(IsErrorRow(still->rows[3]));

  // A different spec fingerprint refuses to merge into the same run.
  EXPECT_FALSE(db.MergeRun(DbMeta("run", "OTHER"), {DataRow(9, "x")}, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;

  EXPECT_TRUE(db.Verify(&error)) << error;
}

// --- heartbeat + HTTP plumbing -------------------------------------------

TEST(HeartbeatTest, WriteReadAndThread) {
  const std::string dir = FreshDir("heartbeat");
  const std::string path = dir + "/x.hb";
  ASSERT_TRUE(WriteHeartbeat(path, {7, 42}));
  const auto beat = ReadHeartbeat(path);
  ASSERT_TRUE(beat.has_value());
  EXPECT_EQ(beat->counter, 7u);
  EXPECT_EQ(beat->owner, 42u);
  const auto age = SecondsSinceModified(path);
  ASSERT_TRUE(age.has_value());
  EXPECT_GE(*age, 0.0);
  EXPECT_LT(*age, 60.0);
  EXPECT_FALSE(ReadHeartbeat(dir + "/missing.hb").has_value());
  EXPECT_FALSE(SecondsSinceModified(dir + "/missing.hb").has_value());

  std::atomic<std::uint64_t> counter{0};
  HeartbeatThread thread;
  thread.Start(path, 0.01, 99, [&counter] { return counter.load(); });
  counter.store(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  thread.Stop();  // final beat on stop
  const auto last = ReadHeartbeat(path);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->owner, 99u);
  EXPECT_EQ(last->counter, 5u);
}

TEST(HttpServerTest, ServesHandlerAndNotFound) {
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0,
                           [](const HttpRequest& request) {
                             HttpResponse response;
                             if (request.path == "/status") {
                               response.body = "{\"ok\":1}\n";
                             } else {
                               response = HttpNotFound();
                             }
                             return response;
                           },
                           &error))
      << error;
  ASSERT_GT(server.port(), 0);

  std::string body;
  int status = 0;
  ASSERT_TRUE(HttpGet(server.port(), "/status", &body, &error, &status)) << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "{\"ok\":1}\n");
  ASSERT_TRUE(HttpGet(server.port(), "/nope", &body, &error, &status)) << error;
  EXPECT_EQ(status, 404);
  server.Stop();
  EXPECT_FALSE(HttpGet(server.port(), "/status", &body, &error, &status));
}

// Live status counters over a half-finished spool.
TEST(DispatcherTest, StatusRowCountsSpoolStates) {
  const std::string root = FreshDir("statusrow");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 4, &error).has_value()) << error;
  Spool spool(root);
  const auto meta = spool.ReadMeta(&error);
  ASSERT_TRUE(meta.has_value()) << error;

  // Run one shard to done; claim one and leave it running with a part row.
  WorkerOptions worker;
  worker.spool_root = root;
  worker.owner = 1;
  {
    auto item = spool.Claim(1, &error);
    ASSERT_TRUE(item.has_value()) << error;
    // Complete shard-0000 properly via a scoped one-item worker: requeue it
    // first so the worker loop can claim it.
    ASSERT_TRUE(spool.Requeue(*item, &error)) << error;
  }
  // Worker drains the whole queue.
  RunWorkerLoop(worker);

  const ResultRow row = SpoolStatusRow(spool, *meta, 2.0);
  EXPECT_EQ(row.Number("shards_done", -1), 4.0);
  EXPECT_EQ(row.Number("shards_queued", -1), 0.0);
  EXPECT_EQ(row.Number("points_total", -1), 4.0);
  EXPECT_EQ(row.Number("points_done", -1), 4.0);
  EXPECT_EQ(row.Number("points_per_sec", -1), 2.0);
  EXPECT_EQ(row.Number("eta_sec", -1), 0.0);
}

TEST(DispatcherTest, LeaseRowsReportHeartbeatAgeAndStaleness) {
  const std::string root = FreshDir("leaserows");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 2, &error).has_value()) << error;
  Spool spool(root);
  const auto meta = spool.ReadMeta(&error);
  ASSERT_TRUE(meta.has_value()) << error;

  EXPECT_TRUE(SpoolLeaseRows(spool, 30.0).empty());

  const auto item = spool.Claim(42, &error);
  ASSERT_TRUE(item.has_value()) << error;
  const auto rows = SpoolLeaseRows(spool, 30.0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Text("item"), item->id);
  EXPECT_EQ(rows[0].Number("owner", -1), 42.0);
  EXPECT_GE(rows[0].Number("heartbeat_age_sec", -1), 0.0);
  EXPECT_EQ(rows[0].Number("stale", -1), 0.0);

  // An impossibly tight lease deadline marks the same heartbeat stale; 0
  // disables the verdict entirely.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto stale = SpoolLeaseRows(spool, 0.001);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].Number("stale", -1), 1.0);
  const auto unjudged = SpoolLeaseRows(spool, 0.0);
  ASSERT_EQ(unjudged.size(), 1u);
  EXPECT_EQ(unjudged[0].Number("stale", -1), 0.0);

  // The /status payload nests the lease rows after the flat counters.
  const std::string status = RenderStatusJson(spool, *meta, 1.0, 30.0);
  EXPECT_NE(status.find("\"lease_sec\":"), std::string::npos) << status;
  EXPECT_NE(status.find("\"leases\":["), std::string::npos) << status;
  EXPECT_NE(status.find(item->id), std::string::npos) << status;
}

// --- remote workers over the HTTP lease protocol -------------------------

HttpRequest PostRequest(const std::string& path, const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.path = path;
  request.body = body;
  return request;
}

ResultRow ResponseRow(const HttpResponse& response) {
  std::string text = response.body;
  while (!text.empty() && text.back() == '\n') {
    text.pop_back();
  }
  std::string error;
  const auto row = RowFromJson(text, &error);
  EXPECT_TRUE(row.has_value()) << error << ": " << response.body;
  return row.value_or(ResultRow{});
}

// The dispatcher publishes its (ephemeral) port to <root>/http.port once the
// endpoint is listening.
std::uint16_t WaitForPortFile(const std::string& root) {
  for (int i = 0; i < 1000; ++i) {
    std::ifstream in(root + "/http.port");
    int port = 0;
    if (in >> port && port > 0 && port <= 65535) {
      return static_cast<std::uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "dispatcher never published its port";
  return 0;
}

TEST(RemoteWorkerTest, CleanRemoteSweepMatchesSerial) {
  const std::string root = FreshDir("remoteclean");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 3, &error).has_value()) << error;

  DispatcherOptions options;
  options.spool_root = root;
  options.workers = 0;  // remote-only: every shard must travel the lease API
  options.worker_binary = "/nonexistent/worker";
  options.http_port = 0;
  options.poll_sec = 0.02;
  DispatchSummary dispatch;
  std::thread dispatcher([&] { dispatch = RunDispatcher(options); });

  RemoteWorkerOptions remote;
  remote.port = WaitForPortFile(root);
  remote.worker_name = "test-remote";
  remote.poll_sec = 0.02;
  remote.heartbeat_sec = 0.05;
  remote.chunk_rows = 2;
  const RemoteWorkerSummary summary = RunRemoteWorkerLoop(remote);
  dispatcher.join();

  EXPECT_EQ(summary.items, 3u);
  EXPECT_EQ(summary.rows, 4u);
  EXPECT_EQ(summary.lost_leases, 0u);
  EXPECT_TRUE(summary.drained);
  EXPECT_FALSE(summary.unreachable);
  EXPECT_TRUE(dispatch.complete);
  EXPECT_EQ(dispatch.shards_failed, 0u);
  EXPECT_EQ(MergedRowsJson(root), SerialRowsJson(kTinySpec));
}

TEST(RemoteWorkerTest, FaultInjectedSweepStillMatchesSerial) {
  const std::string root = FreshDir("remotefaults");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 3, &error).has_value()) << error;

  DispatcherOptions options;
  options.spool_root = root;
  options.workers = 0;
  options.worker_binary = "/nonexistent/worker";
  options.http_port = 0;
  options.poll_sec = 0.02;
  // A duplicated /lease request claims a shard nobody works on; its lease
  // must expire and requeue, so keep the deadline tight and the budget deep.
  options.lease_sec = 0.4;
  options.retry_budget = 10;
  DispatchSummary dispatch;
  std::thread dispatcher([&] { dispatch = RunDispatcher(options); });

  RemoteWorkerOptions remote;
  remote.port = WaitForPortFile(root);
  remote.worker_name = "test-faulty";
  remote.poll_sec = 0.02;
  remote.heartbeat_sec = 0.05;
  remote.chunk_rows = 1;  // more requests: more chances for the faults to bite
  remote.http.max_retries = 8;
  remote.http.backoff_base_sec = 0.01;
  remote.http.backoff_max_sec = 0.05;
  remote.net_fault.seed = 3;
  remote.net_fault.drop_rate = 0.3;
  remote.net_fault.dup_rate = 0.3;
  const RemoteWorkerSummary summary = RunRemoteWorkerLoop(remote);
  dispatcher.join();

  EXPECT_TRUE(summary.drained);
  EXPECT_FALSE(summary.unreachable);
  EXPECT_GT(summary.transport_failures, 0u);  // the faults actually fired
  EXPECT_TRUE(dispatch.complete);
  EXPECT_EQ(dispatch.shards_failed, 0u);
  EXPECT_EQ(dispatch.points_done, 4u);
  // Drops, duplicates, retries, requeues — none of it may change a byte of
  // the merged output.
  EXPECT_EQ(MergedRowsJson(root), SerialRowsJson(kTinySpec));
}

TEST(RemoteWorkerTest, KilledWorkerRequeuesAndSuccessorConverges) {
  const std::string root = FreshDir("remotekill");
  std::filesystem::remove_all(root);
  std::string error;
  // One shard holding all four points, so the kill lands mid-shard.
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 1, &error).has_value()) << error;

  // fork() order matters under TSan: both children fork before this process
  // creates any threads (the in-process successor worker comes last).
  DispatcherOptions options;
  options.spool_root = root;
  options.workers = 0;
  options.worker_binary = "/nonexistent/worker";
  options.http_port = 0;
  options.poll_sec = 0.02;
  options.lease_sec = 0.4;  // the dead worker's lease must expire quickly
  options.retry_budget = 2;
  const pid_t dispatcher_pid = fork();
  ASSERT_GE(dispatcher_pid, 0);
  if (dispatcher_pid == 0) {
    const DispatchSummary summary = RunDispatcher(options);
    _exit(summary.complete && summary.shards_failed == 0 ? 0 : 1);
  }

  const std::uint16_t port = WaitForPortFile(root);

  // The doomed worker: chunk_rows=1 streams each row immediately, so two
  // rows reach the dispatcher before _Exit(137) — a faithful SIGKILL: no
  // /done, no heartbeat stop, the lease just goes silent.
  const pid_t doomed_pid = fork();
  ASSERT_GE(doomed_pid, 0);
  if (doomed_pid == 0) {
    RemoteWorkerOptions doomed;
    doomed.port = port;
    doomed.worker_name = "doomed";
    doomed.poll_sec = 0.02;
    doomed.heartbeat_sec = 0.05;
    doomed.chunk_rows = 1;
    doomed.kill_after_rows = 2;
    RunRemoteWorkerLoop(doomed);
    _exit(0);  // not reached: the kill hook fires first
  }
  int status = 0;
  ASSERT_EQ(waitpid(doomed_pid, &status, 0), doomed_pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137);

  // The successor polls until the expired lease requeues, inherits the dead
  // worker's two uploaded rows via the resume set, and finishes the shard.
  RemoteWorkerOptions successor;
  successor.port = port;
  successor.worker_name = "successor";
  successor.poll_sec = 0.02;
  successor.heartbeat_sec = 0.05;
  const RemoteWorkerSummary summary = RunRemoteWorkerLoop(successor);
  EXPECT_EQ(summary.items, 1u);
  EXPECT_EQ(summary.inherited, 2u);
  EXPECT_EQ(summary.rows, 2u);
  EXPECT_TRUE(summary.drained);

  ASSERT_EQ(waitpid(dispatcher_pid, &status, 0), dispatcher_pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The recovery is on the record, and the merged output is byte-identical
  // to the serial run: same rows, no duplicates, global point order.
  std::ifstream events(root + "/events.jsonl");
  std::stringstream buffer;
  buffer << events.rdbuf();
  EXPECT_NE(buffer.str().find("shard_requeued"), std::string::npos);
  EXPECT_EQ(MergedRowsJson(root), SerialRowsJson(kTinySpec));
}

// --- LeaseService failure ordering, driven directly ----------------------

TEST(LeaseServiceTest, LateUploadAfterRequeueGets410WithoutCorruption) {
  const std::string root = FreshDir("leaselate");
  std::filesystem::remove_all(root);
  std::string error;
  ASSERT_TRUE(Spool::Create(root, kTinySpec, "tiny", 1, &error).has_value()) << error;
  Spool spool(root);
  const auto meta = spool.ReadMeta(&error);
  ASSERT_TRUE(meta.has_value()) << error;
  const auto spec_text = spool.ReadSpecText(&error);
  ASSERT_TRUE(spec_text.has_value()) << error;

  LeaseService service(&spool, *meta, *spec_text, {});
  EXPECT_FALSE(service.Handle(PostRequest("/status", "")).has_value());
  {
    HttpRequest get = PostRequest("/lease", "");
    get.method = "GET";
    const auto response = service.Handle(get);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, 405);
  }

  // Claim the only shard.
  auto response = service.Handle(PostRequest("/lease", "{\"worker\":\"t\"}"));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  ResultRow grant = ResponseRow(*response);
  EXPECT_EQ(grant.Text("state"), "lease");
  EXPECT_EQ(grant.Text("spec"), *spec_text);  // verbatim bytes, newlines intact
  EXPECT_EQ(grant.Number("expected_points", -1), 4.0);
  EXPECT_EQ(grant.Text("done_points"), "");
  const std::string token = grant.Text("token");
  ASSERT_FALSE(token.empty());
  EXPECT_EQ(service.active_leases(), 1u);

  const auto chunk = [&](const std::string& chunk_token,
                         const std::vector<ResultRow>& rows) {
    std::ostringstream body;
    body << "{\"token\":\"" << chunk_token << "\"}\n";
    for (const ResultRow& row : rows) {
      body << RowToJson(row) << "\n";
    }
    return PostRequest("/results", body.str());
  };

  // Two rows land; the identical chunk replayed is a pure no-op.
  response = service.Handle(chunk(token, {DataRow(0, "a"), DataRow(1, "b")}));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(ResponseRow(*response).Number("accepted", -1), 2.0);
  response = service.Handle(chunk(token, {DataRow(0, "a"), DataRow(1, "b")}));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(ResponseRow(*response).Number("accepted", -1), 0.0);
  EXPECT_EQ(ResponseRow(*response).Number("duplicates", -1), 2.0);

  // Finalizing short must refuse: two of four points uploaded.
  response = service.Handle(
      PostRequest("/done", "{\"token\":\"" + token + "\"}"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 409);
  EXPECT_NE(response->body.find("incomplete upload"), std::string::npos);

  // The dispatcher expires the lease: requeue + token invalidation, exactly
  // its recovery sequence.  The partitioned worker's late requests now get
  // 410 Gone and change nothing on disk.
  const auto item = spool.ReadItem("running", "shard-0000", &error);
  ASSERT_TRUE(item.has_value()) << error;
  ASSERT_TRUE(spool.Requeue(*item, &error)) << error;
  service.InvalidateItem(item->id);
  EXPECT_EQ(service.active_leases(), 0u);

  response = service.Handle(chunk(token, {DataRow(2, "late")}));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 410);
  response = service.Handle(PostRequest("/done", "{\"token\":\"" + token + "\"}"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 410);
  response = service.Handle(
      PostRequest("/heartbeat", "{\"token\":\"" + token + "\"}"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 410);
  EXPECT_EQ(spool.CountItems().done, 0u);

  // The next claimant inherits the first attempt's rows as its resume set
  // and finishes with only the remainder.
  response = service.Handle(PostRequest("/lease", "{\"worker\":\"t2\"}"));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  grant = ResponseRow(*response);
  EXPECT_EQ(grant.Text("state"), "lease");
  EXPECT_EQ(grant.Text("done_points"), "0,1");
  const std::string token2 = grant.Text("token");
  EXPECT_NE(token2, token);

  response = service.Handle(chunk(token2, {DataRow(2, "c"), DataRow(3, "d")}));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(ResponseRow(*response).Number("accepted", -1), 2.0);
  response = service.Handle(PostRequest("/done", "{\"token\":\"" + token2 + "\"}"));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(ResponseRow(*response).Number("rows", -1), 4.0);
  EXPECT_EQ(spool.CountItems().done, 1u);

  // The queue is dry; /lease answers "empty" until the dispatcher flips the
  // drain flag, then "drained".
  response = service.Handle(PostRequest("/lease", ""));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(ResponseRow(*response).Text("state"), "empty");
  service.set_drained(true);
  response = service.Handle(PostRequest("/lease", ""));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(ResponseRow(*response).Text("state"), "drained");
}

TEST(LeaseServiceTest, ExpectedItemPointsCoversShardsAndRetryLists) {
  WorkItem whole;
  whole.shard = 0;
  whole.shards = 3;
  // 10 points over 3 shards: index % 3 == 0 keeps 4, the others 3.
  EXPECT_EQ(ExpectedItemPoints(whole, 10), 4u);
  whole.shard = 1;
  EXPECT_EQ(ExpectedItemPoints(whole, 10), 3u);
  whole.shard = 2;
  EXPECT_EQ(ExpectedItemPoints(whole, 10), 3u);

  WorkItem retry;
  retry.shard = 0;
  retry.shards = 1;
  retry.points = {3, 7};
  EXPECT_EQ(ExpectedItemPoints(retry, 10), 2u);
}

}  // namespace
}  // namespace mobisim
