// Hostile-input and failure-semantics tests for the HTTP plumbing under
// sweepd: the server must answer malformed, torn, or oversized requests
// with clean errors (never hang, never crash — these run under ASan/TSan in
// CI), and the client must enforce its deadlines and retry schedule so a
// hung or partitioned dispatcher costs bounded time, not a wedged worker.
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/util/http_client.h"
#include "src/util/http_server.h"

namespace mobisim {
namespace {

// Raw-socket client: send exactly `payload`, optionally half-close the
// write side, read whatever comes back until EOF.  This is how torn and
// malformed requests are produced — HttpClient refuses to send them.
std::string RawExchange(std::uint16_t port, const std::string& payload,
                        bool shutdown_write = true) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(payload.size()));
  if (shutdown_write) {
    ::shutdown(fd, SHUT_WR);  // peer sees EOF: the request ends here, torn or not
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class EchoServer {
 public:
  EchoServer() {
    std::string error;
    const bool ok = server_.Start(
        0,
        [](const HttpRequest& request) {
          HttpResponse response;
          response.body = request.method + " " + request.path + " [" +
                          request.body + "]";
          return response;
        },
        &error);
    EXPECT_TRUE(ok) << error;
  }
  std::uint16_t port() const { return server_.port(); }

 private:
  HttpServer server_;
};

TEST(HttpServerHostileTest, TornRequestLineGetsCleanError) {
  EchoServer server;
  // Bytes arrive but the header block never completes.
  const std::string response = RawExchange(server.port(), "GET /stat");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_NE(response.find("truncated request"), std::string::npos) << response;
}

TEST(HttpServerHostileTest, OversizedHeadersGetCleanError) {
  EchoServer server;
  std::string request = "GET / HTTP/1.0\r\n";
  request.append(kHttpMaxHeaderBytes + 4096, 'x');  // one endless header line
  const std::string response = RawExchange(server.port(), request);
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_NE(response.find("oversized"), std::string::npos) << response;
}

TEST(HttpServerHostileTest, UnsupportedMethodsGet405) {
  EchoServer server;
  for (const char* method : {"PUT", "DELETE", "PATCH", "HEAD"}) {
    const std::string response = RawExchange(
        server.port(), std::string(method) + " / HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("405"), std::string::npos)
        << method << ": " << response;
  }
}

TEST(HttpServerHostileTest, BodyOnGetGetsCleanError) {
  EchoServer server;
  const std::string response = RawExchange(
      server.port(), "GET /status HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_NE(response.find("GET does not take a body"), std::string::npos)
      << response;
}

TEST(HttpServerHostileTest, MalformedRequestLineGetsCleanError) {
  EchoServer server;
  for (const char* garbage :
       {"\r\n\r\n", "GET\r\n\r\n", "GET status HTTP/1.0\r\n\r\n"}) {
    const std::string response = RawExchange(server.port(), garbage);
    EXPECT_NE(response.find("400"), std::string::npos)
        << "request: " << garbage << " response: " << response;
  }
}

TEST(HttpServerHostileTest, NonNumericContentLengthGetsCleanError) {
  EchoServer server;
  const std::string response = RawExchange(
      server.port(), "POST /lease HTTP/1.0\r\nContent-Length: huge\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length"), std::string::npos) << response;
}

TEST(HttpServerHostileTest, DeclaredBodyLargerThanCapGets413) {
  EchoServer server;
  const std::string response = RawExchange(
      server.port(), "POST /results HTTP/1.0\r\nContent-Length: " +
                         std::to_string(kHttpMaxBodyBytes + 1) + "\r\n\r\n");
  EXPECT_NE(response.find("413"), std::string::npos) << response;
}

TEST(HttpServerHostileTest, TruncatedBodyGetsCleanError) {
  EchoServer server;
  const std::string response = RawExchange(
      server.port(),
      "POST /results HTTP/1.0\r\nContent-Length: 100\r\n\r\nonly this much");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_NE(response.find("truncated body"), std::string::npos) << response;
}

TEST(HttpServerHostileTest, PostBodyIsDeliveredVerbatim) {
  EchoServer server;
  const std::string body = "{\"token\":\"abc\"}\n{\"point\":1}\n";
  const std::string response = RawExchange(
      server.port(), "POST /results HTTP/1.0\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("POST /results [" + body + "]"), std::string::npos)
      << response;
}

// --- client deadlines ----------------------------------------------------

// A port that accepts connections and then says nothing: the classic hung
// dispatcher.  HttpGet used to block on it forever; now it must fail within
// its deadline.
class SilentServer {
 public:
  SilentServer() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~SilentServer() { ::close(fd_); }
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

TEST(HttpClientTest, HttpGetTimesOutAgainstSilentServer) {
  SilentServer silent;
  std::string body;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  const bool ok =
      HttpGet(silent.port(), "/status", &body, &error, nullptr, 0.3);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(ok);
  EXPECT_FALSE(error.empty());
  EXPECT_LT(elapsed, 5.0) << "deadline did not bound the hang";
}

TEST(HttpClientTest, RetriesExhaustAgainstClosedPort) {
  // Find a port with nothing behind it: bind an ephemeral port, note the
  // number, close the socket before anyone can connect.
  std::uint16_t dead_port = 0;
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    dead_port = ntohs(addr.sin_port);
    ::close(fd);
  }

  HttpClientOptions options;
  options.connect_timeout_sec = 0.2;
  options.io_timeout_sec = 0.2;
  options.max_retries = 2;
  options.backoff_base_sec = 0.01;
  options.backoff_max_sec = 0.05;
  HttpClient client("127.0.0.1", dead_port, options);
  HttpResponse response;
  std::string error;
  EXPECT_FALSE(client.FetchWithRetry("GET", "/", "", &response, &error));
  EXPECT_EQ(client.transport_failures(), 3u);  // initial try + 2 retries
  EXPECT_NE(error.find("after 3 attempts"), std::string::npos) << error;
}

TEST(HttpClientTest, HttpErrorStatusIsAnAnswerNotARetry) {
  HttpServer server;
  std::string error;
  int hits = 0;
  ASSERT_TRUE(server.Start(
      0,
      [&hits](const HttpRequest&) {
        ++hits;
        return HttpError(410, "gone");
      },
      &error))
      << error;
  HttpClientOptions options;
  options.max_retries = 4;
  HttpClient client("127.0.0.1", server.port(), options);
  HttpResponse response;
  ASSERT_TRUE(client.FetchWithRetry("POST", "/done", "{}", &response, &error));
  EXPECT_EQ(response.status, 410);
  EXPECT_EQ(hits, 1) << "an HTTP-level error must not be retried";
}

TEST(HttpServerTest, BindAnyServesOnLoopbackToo) {
  HttpServer server;
  std::string error;
  const bool ok = server.Start(
      0, /*bind_any=*/true,
      [](const HttpRequest&) {
        HttpResponse response;
        response.body = "any\n";
        return response;
      },
      &error);
  ASSERT_TRUE(ok) << error;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/", &body, &error)) << error;
  EXPECT_EQ(body, "any\n");
}

// --- fault injection -----------------------------------------------------

TEST(NetFaultTest, ParseAcceptsFullSpecAndRejectsGarbage) {
  std::string error;
  const auto config =
      ParseNetFaultSpec("seed=9,drop=0.25,dup=0.5,delay=1,delay-ms=40", &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->seed, 9u);
  EXPECT_DOUBLE_EQ(config->drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(config->dup_rate, 0.5);
  EXPECT_DOUBLE_EQ(config->delay_rate, 1.0);
  EXPECT_DOUBLE_EQ(config->delay_ms, 40.0);
  EXPECT_TRUE(config->enabled());

  EXPECT_FALSE(ParseNetFaultSpec("drop", &error).has_value());
  EXPECT_FALSE(ParseNetFaultSpec("drop=1.5", &error).has_value());
  EXPECT_FALSE(ParseNetFaultSpec("drop=-0.1", &error).has_value());
  EXPECT_FALSE(ParseNetFaultSpec("seed=x", &error).has_value());
  EXPECT_FALSE(ParseNetFaultSpec("unknown=1", &error).has_value());

  const auto empty = ParseNetFaultSpec("", &error);
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->enabled());
}

TEST(NetFaultTest, DrawsAreDeterministicPerSeed) {
  NetFaultConfig config;
  config.seed = 42;
  config.drop_rate = 0.3;
  config.dup_rate = 0.3;
  config.delay_rate = 0.3;
  config.delay_ms = 5.0;

  const auto draw = [](NetFaultInjector& injector) {
    std::vector<int> sequence;
    for (int i = 0; i < 64; ++i) {
      sequence.push_back(injector.DrawDrop() ? 1 : 0);
      sequence.push_back(injector.DrawDelayMs() > 0.0 ? 1 : 0);
      sequence.push_back(injector.DrawDuplicate() ? 1 : 0);
    }
    return sequence;
  };
  NetFaultInjector a(config);
  NetFaultInjector b(config);
  EXPECT_EQ(draw(a), draw(b));

  config.seed = 43;
  NetFaultInjector c(config);
  EXPECT_NE(draw(a), draw(c));
}

TEST(NetFaultTest, StreamsAreIndependent) {
  // Disabling delays must not move the drop schedule: each fault kind draws
  // from its own PCG32 stream.
  NetFaultConfig with_delay;
  with_delay.seed = 7;
  with_delay.drop_rate = 0.3;
  with_delay.delay_rate = 0.5;
  with_delay.delay_ms = 1.0;
  NetFaultConfig without_delay = with_delay;
  without_delay.delay_rate = 0.0;

  NetFaultInjector a(with_delay);
  NetFaultInjector b(without_delay);
  std::vector<int> drops_a;
  std::vector<int> drops_b;
  for (int i = 0; i < 64; ++i) {
    a.DrawDelayMs();
    b.DrawDelayMs();
    drops_a.push_back(a.DrawDrop() ? 1 : 0);
    drops_b.push_back(b.DrawDrop() ? 1 : 0);
  }
  EXPECT_EQ(drops_a, drops_b);
}

TEST(NetFaultTest, InjectedDropConsumesARetryAttempt) {
  EchoServer server;
  NetFaultConfig config;
  config.seed = 1;
  config.drop_rate = 1.0;  // every request dropped: all attempts burn out
  NetFaultInjector injector(config);

  HttpClientOptions options;
  options.max_retries = 2;
  options.backoff_base_sec = 0.01;
  options.backoff_max_sec = 0.02;
  HttpClient client("127.0.0.1", server.port(), options);
  client.set_fault_injector(&injector);
  HttpResponse response;
  std::string error;
  EXPECT_FALSE(client.FetchWithRetry("POST", "/x", "", &response, &error));
  EXPECT_NE(error.find("injected request drop"), std::string::npos) << error;
  EXPECT_EQ(injector.counts().dropped, 3u);
}

TEST(NetFaultTest, DuplicateReplaysTheRequestAgainstTheServer) {
  HttpServer server;
  std::string error;
  std::atomic<int> hits{0};
  ASSERT_TRUE(server.Start(
      0,
      [&hits](const HttpRequest&) {
        ++hits;
        HttpResponse response;
        response.body = "ok\n";
        return response;
      },
      &error))
      << error;

  NetFaultConfig config;
  config.seed = 1;
  config.dup_rate = 1.0;  // every successful exchange is replayed once
  NetFaultInjector injector(config);
  HttpClient client("127.0.0.1", server.port());
  client.set_fault_injector(&injector);
  HttpResponse response;
  ASSERT_TRUE(client.FetchWithRetry("POST", "/results", "{}", &response, &error));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(hits.load(), 2) << "the duplicate must actually hit the server";
  EXPECT_EQ(injector.counts().duplicated, 1u);
}

}  // namespace
}  // namespace mobisim
