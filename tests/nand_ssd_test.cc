// The NAND/SSD device tier: striping arithmetic, the uFLIP response shapes
// the timing model must reproduce, device-spec validation, name-normalized
// catalog lookups, and a mixed-traffic property sweep over the full catalog.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config_text.h"
#include "src/device/device_catalog.h"
#include "src/device/flash_card.h"
#include "src/device/flash_disk.h"
#include "src/device/nand_ssd.h"
#include "src/device/uflip.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace mobisim {
namespace {

constexpr std::uint64_t kCapacity = 4 * 1024 * 1024;  // 32 erase blocks

std::unique_ptr<NandSsd> MakeNand(const DeviceSpec& spec,
                                  std::uint64_t region_blocks,
                                  double utilization) {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = kCapacity;
  auto device = std::make_unique<NandSsd>(spec, options);
  device->Preload(region_blocks, utilization, /*interleave=*/false);
  return device;
}

UflipStats RunPattern(const DeviceSpec& spec, UflipPattern pattern,
                      std::uint32_t blocks_per_op, double utilization,
                      std::uint32_t partitions = 4) {
  UflipParams params;
  params.ops = 256;
  params.blocks_per_op = blocks_per_op;
  params.region_blocks = 2048;
  params.partitions = partitions;
  auto device = MakeNand(spec, params.region_blocks, utilization);
  return RunUflipPattern(*device, pattern, params);
}

// ---- Striping arithmetic ---------------------------------------------------

TEST(NandSsdTest, TopologyCounts) {
  auto chip = MakeNand(NandChip(), 1024, 0.5);
  EXPECT_EQ(chip->channels(), 1u);
  EXPECT_EQ(chip->units(), 1u);

  auto ssd = MakeNand(NandSsd4ch(), 1024, 0.5);
  EXPECT_EQ(ssd->channels(), 4u);
  EXPECT_EQ(ssd->units(), 8u);  // 4 channels x 2 dies x 1 plane

  auto wide = MakeNand(NandSsd8ch(), 1024, 0.5);
  EXPECT_EQ(wide->channels(), 8u);
  EXPECT_EQ(wide->units(), 16u);
}

TEST(NandSsdTest, PagesForBytesRoundsUpToWholePages) {
  auto ssd = MakeNand(NandSsd4ch(), 1024, 0.5);  // 2-KB pages
  EXPECT_EQ(ssd->PagesForBytes(0), 0u);
  EXPECT_EQ(ssd->PagesForBytes(1), 1u);
  EXPECT_EQ(ssd->PagesForBytes(2048), 1u);
  EXPECT_EQ(ssd->PagesForBytes(2049), 2u);
  EXPECT_EQ(ssd->PagesForBytes(4096), 2u);
  EXPECT_EQ(ssd->PagesForBytes(16384), 8u);
}

TEST(NandSsdTest, StripingIsRoundRobinAcrossDistinctChannels) {
  auto ssd = MakeNand(NandSsd4ch(), 1024, 0.5);
  const std::vector<std::uint32_t> units = ssd->StripeUnits(8);
  ASSERT_EQ(units.size(), 8u);
  for (std::uint32_t u = 0; u < 8; ++u) {
    EXPECT_EQ(units[u], u);
  }
  // Unit numbering is channel-major: consecutive pages land on distinct
  // channels until every channel is in flight.
  EXPECT_EQ(ssd->ChannelOf(units[0]), 0u);
  EXPECT_EQ(ssd->ChannelOf(units[1]), 1u);
  EXPECT_EQ(ssd->ChannelOf(units[2]), 2u);
  EXPECT_EQ(ssd->ChannelOf(units[3]), 3u);
  EXPECT_EQ(ssd->ChannelOf(units[4]), 0u);

  // The cursor advances with issued pages and wraps modulo the unit count.
  BlockRecord rec;
  rec.time_us = 0;
  rec.op = OpType::kWrite;
  rec.lba = 0;
  rec.block_count = 6;  // 3 pages
  rec.file_id = 1;
  ssd->Write(0, rec);
  const std::vector<std::uint32_t> next = ssd->StripeUnits(8);
  EXPECT_EQ(next[0], 3u);
  EXPECT_EQ(next[7], (3u + 7u) % 8u);
}

// ---- uFLIP response shapes -------------------------------------------------

TEST(NandSsdTest, UflipRandomWritePenalty) {
  // High utilization so cleaning engages: random overwrites scatter their
  // invalidations and force live-block copies; sequential overwrites leave
  // fully-dead victims behind.  Reads must not share the asymmetry.
  const UflipStats seq_w =
      RunPattern(NandSsd4ch(), UflipPattern::kSequentialWrite, 4, 0.9);
  const UflipStats rand_w =
      RunPattern(NandSsd4ch(), UflipPattern::kRandomWrite, 4, 0.9);
  EXPECT_GT(rand_w.mean_response_us, 1.25 * seq_w.mean_response_us);

  const UflipStats seq_r =
      RunPattern(NandSsd4ch(), UflipPattern::kSequentialRead, 4, 0.9);
  const UflipStats rand_r =
      RunPattern(NandSsd4ch(), UflipPattern::kRandomRead, 4, 0.9);
  EXPECT_LT(rand_r.mean_response_us, 1.5 * seq_r.mean_response_us);
}

TEST(NandSsdTest, UflipGranularityKneeAtPageSize) {
  // On the single-unit chip at low utilization the cost is pure cell timing:
  // half-page and full-page writes both program one page, and the cost
  // climbs once a request spans pages.
  const double half_page =
      RunPattern(NandChip(), UflipPattern::kSequentialWrite, 1, 0.5)
          .mean_response_us;
  const double one_page =
      RunPattern(NandChip(), UflipPattern::kSequentialWrite, 2, 0.5)
          .mean_response_us;
  const double two_pages =
      RunPattern(NandChip(), UflipPattern::kSequentialWrite, 4, 0.5)
          .mean_response_us;
  EXPECT_DOUBLE_EQ(half_page, one_page);
  EXPECT_GT(two_pages, 1.4 * one_page);
}

TEST(NandSsdTest, UflipParallelismScalesThenSaturates) {
  // The same 16-page read stream across channel counts (dies fixed at 2):
  // throughput must grow monotonically and with diminishing returns.
  std::vector<double> tp;
  for (const std::uint32_t channels : {1u, 4u, 8u, 16u}) {
    DeviceSpec spec = NandSsd4ch();
    spec.name = "nand-ssd-" + std::to_string(channels) + "ch";
    spec.nand.channels = channels;
    tp.push_back(RunPattern(spec, UflipPattern::kSequentialRead, 32, 0.5)
                     .throughput_kbps);
  }
  EXPECT_GT(tp[1], 2.0 * tp[0]);  // striping pays while pages queue
  EXPECT_GT(tp[2], tp[1]);
  EXPECT_GT(tp[3], tp[2]);
  EXPECT_LT(tp[3] / tp[2], tp[1] / tp[0]);  // ...and saturates
}

TEST(NandSsdTest, UflipPartitionsDegradeTowardRandom) {
  const double p1 =
      RunPattern(NandSsd4ch(), UflipPattern::kPartitionedWrite, 4, 0.9, 1)
          .mean_response_us;
  const double p16 =
      RunPattern(NandSsd4ch(), UflipPattern::kPartitionedWrite, 4, 0.9, 16)
          .mean_response_us;
  EXPECT_GT(p16, p1);
}

// ---- Spec validation -------------------------------------------------------

std::string ValidationError(const DeviceSpec& spec, const DeviceOptions& options) {
  try {
    ValidateDeviceSpec(spec, options);
  } catch (const SimError& e) {
    return e.what();
  }
  return "";
}

TEST(ValidateDeviceSpecTest, AcceptsEveryCatalogSpec) {
  DeviceOptions options;
  for (const DeviceSpec& spec : AllDeviceSpecs()) {
    EXPECT_EQ(ValidationError(spec, options), "") << spec.name;
  }
}

TEST(ValidateDeviceSpecTest, NamesTheOffendingField) {
  DeviceOptions options;

  DeviceSpec spec = IntelCardDatasheet();
  spec.read_kbps = 0.0;
  EXPECT_NE(ValidationError(spec, options).find("read_kbps"), std::string::npos);

  spec = IntelCardDatasheet();
  spec.write_kbps = -1.0;
  EXPECT_NE(ValidationError(spec, options).find("write_kbps"), std::string::npos);

  spec = IntelCardDatasheet();
  spec.erase_segment_bytes = 0;
  EXPECT_NE(ValidationError(spec, options).find("erase_segment_bytes"),
            std::string::npos);

  spec = Cu140Datasheet();
  spec.read_overhead_ms = std::nan("");
  EXPECT_NE(ValidationError(spec, options).find("read_overhead_ms"),
            std::string::npos);

  options.block_bytes = 0;
  EXPECT_NE(ValidationError(Cu140Datasheet(), options).find("block_bytes"),
            std::string::npos);
  options.block_bytes = 1024;

  // Disks do not erase: a zero segment size must only be rejected for
  // flash-class devices.
  spec = Cu140Datasheet();
  spec.erase_segment_bytes = 0;
  EXPECT_EQ(ValidationError(spec, options), "");
}

TEST(ValidateDeviceSpecTest, NandTopologyFieldsAreChecked) {
  DeviceOptions options;

  DeviceSpec spec = NandSsd4ch();
  spec.nand.channels = 0;
  EXPECT_NE(ValidationError(spec, options).find("nand.channels"), std::string::npos);

  spec = NandSsd4ch();
  spec.nand.read_page_us = 0.0;
  EXPECT_NE(ValidationError(spec, options).find("nand.read_us"), std::string::npos);

  spec = NandSsd4ch();
  spec.nand.channel_mbps = -40.0;
  EXPECT_NE(ValidationError(spec, options).find("nand.channel_mbps"),
            std::string::npos);

  // The GC erase unit must stay equal to the NAND erase block.
  spec = NandSsd4ch();
  spec.nand.pages_per_block = 32;  // halves block_bytes() without updating it
  EXPECT_NE(ValidationError(spec, options).find("erase_segment_bytes"),
            std::string::npos);
}

TEST(ValidateDeviceSpecTest, ConstructorsRejectMalformedSpecs) {
  DeviceOptions options;
  options.capacity_bytes = kCapacity;
  DeviceSpec spec = NandSsd4ch();
  spec.nand.dies_per_channel = 0;
  EXPECT_THROW(NandSsd(spec, options), SimError);

  DeviceSpec card = IntelCardDatasheet();
  card.erase_ms_per_segment = 0.0;
  EXPECT_THROW(FlashCard(card, options), SimError);
}

// ---- Name-normalized catalog lookups ---------------------------------------

TEST(DeviceLookupTest, UnderscoreDashAndCaseResolveIdentically) {
  const auto canonical = DeviceByName("nand-ssd-4ch");
  ASSERT_TRUE(canonical.has_value());
  for (const char* alias : {"nand_ssd_4ch", "NAND-SSD-4CH", " nand-ssd-4ch "}) {
    const auto spec = DeviceByName(alias);
    ASSERT_TRUE(spec.has_value()) << alias;
    EXPECT_EQ(spec->name, canonical->name) << alias;
  }
  EXPECT_TRUE(DeviceByName("intel_datasheet").has_value());
  EXPECT_TRUE(DeviceByName("intel-datasheet").has_value());
  EXPECT_FALSE(DeviceByName("no-such-device").has_value());
}

TEST(DeviceLookupTest, EveryCatalogSpecHasAKindName) {
  for (const DeviceSpec& spec : AllDeviceSpecs()) {
    EXPECT_STRNE(DeviceKindName(spec.kind), "") << spec.name;
  }
  EXPECT_STREQ(DeviceKindName(DeviceKind::kNandSsd), "nand-ssd");
}

// ---- Catalog-wide mixed-traffic property sweep -----------------------------

std::unique_ptr<StorageDevice> MakeAnyDevice(const DeviceSpec& spec) {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = 8 * 1024 * 1024;
  std::unique_ptr<StorageDevice> device = CreateDevice(spec, options);
  if (auto* card = dynamic_cast<FlashCard*>(device.get())) {
    card->Preload(1024, 0.7);
  } else if (auto* ssd = dynamic_cast<NandSsd*>(device.get())) {
    ssd->Preload(1024, 0.7);
  } else if (auto* disk = dynamic_cast<FlashDisk*>(device.get())) {
    disk->Preload(1024);
  }
  return device;
}

TEST(DeviceCatalogPropertyTest, MixedTrafficInvariantsHoldForEverySpec) {
  for (const DeviceSpec& spec : AllDeviceSpecs()) {
    SCOPED_TRACE(spec.name);
    auto device = MakeAnyDevice(spec);
    Rng rng(29);
    SimTime now = 0;
    SimTime last_busy = 0;
    double last_joules = 0.0;

    for (int i = 0; i < 400; ++i) {
      now += static_cast<SimTime>(rng.Exponential(150000.0));
      BlockRecord rec;
      rec.time_us = now;
      rec.block_count = static_cast<std::uint32_t>(rng.UniformInt(1, 8));
      rec.lba = static_cast<std::uint64_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(1024 - rec.block_count)));
      rec.file_id = static_cast<std::uint32_t>(rng.UniformInt(0, 20));

      const double roll = rng.NextDouble();
      SimTime response = 0;
      if (roll < 0.45) {
        rec.op = OpType::kRead;
        response = device->Read(now, rec);
      } else if (roll < 0.9) {
        rec.op = OpType::kWrite;
        response = device->Write(now, rec);
      } else {
        rec.op = OpType::kErase;
        device->Trim(now, rec);
      }

      // Finite, non-negative service times; trims are instantaneous.
      ASSERT_GE(response, 0);
      ASSERT_LT(response, UsFromSec(600));

      // busy_until never regresses (only PowerLoss may truncate it) and
      // accounting only ever adds energy.
      ASSERT_GE(device->busy_until(), last_busy);
      last_busy = device->busy_until();
      device->AdvanceTo(now);
      const double joules = device->energy().total_joules();
      ASSERT_GE(joules, last_joules);
      last_joules = joules;
    }

    device->Finish(std::max(now, device->busy_until()));
    EXPECT_GE(device->energy().total_joules(), last_joules);
    EXPECT_GT(device->counters().reads, 0u);
    EXPECT_GT(device->counters().writes, 0u);
  }
}

}  // namespace
}  // namespace mobisim
