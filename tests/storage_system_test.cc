// Integration tests for the composed hierarchy: DRAM cache -> SRAM write
// buffer -> device, including the deferred spin-up policy.
#include <gtest/gtest.h>

#include "src/core/storage_system.h"
#include "src/device/device_catalog.h"

namespace mobisim {
namespace {

constexpr std::uint32_t kBlock = 1024;

SimConfig DiskConfig(std::uint64_t dram, std::uint64_t sram) {
  SimConfig config;
  config.device = Cu140Datasheet();
  config.dram_bytes = dram;
  config.sram_bytes = sram;
  return config;
}

BlockRecord Rec(SimTime t, OpType op, std::uint64_t lba, std::uint32_t count,
                std::uint32_t file = 1) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = file;
  return rec;
}

TEST(StorageSystemTest, DramHitIsFast) {
  StorageSystem system(DiskConfig(1024 * 1024, 0), /*trace_blocks=*/100, kBlock);
  const SimTime miss = system.Handle(Rec(0, OpType::kRead, 0, 2));
  EXPECT_GT(miss, UsFromMs(20));  // went to the disk
  const SimTime hit = system.Handle(Rec(kUsPerSec, OpType::kRead, 0, 2));
  EXPECT_LT(hit, UsFromMs(1));  // served from DRAM
  EXPECT_EQ(system.dram().hits(), 1u);
  EXPECT_EQ(system.dram().misses(), 1u);
}

TEST(StorageSystemTest, ZeroDramAlwaysGoesToDevice) {
  StorageSystem system(DiskConfig(0, 0), 100, kBlock);
  system.Handle(Rec(0, OpType::kRead, 0, 2));
  const SimTime again = system.Handle(Rec(kUsPerSec, OpType::kRead, 0, 2, 2));
  EXPECT_GT(again, UsFromMs(20));
}

TEST(StorageSystemTest, WriteAllocatesInDram) {
  StorageSystem system(DiskConfig(1024 * 1024, 0), 100, kBlock);
  system.Handle(Rec(0, OpType::kWrite, 5, 2));
  const SimTime hit = system.Handle(Rec(kUsPerSec, OpType::kRead, 5, 2));
  EXPECT_LT(hit, UsFromMs(1));
}

TEST(StorageSystemTest, SramAbsorbsWritesWhileDiskSleeps) {
  StorageSystem system(DiskConfig(0, 32 * 1024), 100, kBlock);
  // Let the disk spin down (threshold 5 s, never used yet -> asleep at 10 s).
  const SimTime t = 10 * kUsPerSec;
  const SimTime response = system.Handle(Rec(t, OpType::kWrite, 0, 2));
  EXPECT_LT(response, UsFromMs(1));            // SRAM speed, no spin-up
  EXPECT_EQ(system.device().counters().spinups, 0u);
  EXPECT_GT(system.sram().dirty_blocks(), 0u);  // still buffered
}

TEST(StorageSystemTest, WithoutSramWritesWakeTheDisk) {
  StorageSystem system(DiskConfig(0, 0), 100, kBlock);
  const SimTime t = 10 * kUsPerSec;
  const SimTime response = system.Handle(Rec(t, OpType::kWrite, 0, 2));
  EXPECT_GT(response, UsFromMs(1000));  // spin-up on the critical path
  EXPECT_EQ(system.device().counters().spinups, 1u);
}

TEST(StorageSystemTest, SramFullForcesFlushStall) {
  StorageSystem system(DiskConfig(0, 4 * 1024), 100, kBlock);  // 4-block buffer
  const SimTime t = 10 * kUsPerSec;  // disk asleep
  system.Handle(Rec(t, OpType::kWrite, 0, 4));
  // Buffer now full; the next write must wait for a flush (spin-up + write).
  const SimTime response = system.Handle(Rec(t + kUsPerSec, OpType::kWrite, 10, 2));
  EXPECT_GT(response, UsFromMs(1000));
  EXPECT_EQ(system.device().counters().spinups, 1u);
  // The new write lands in the buffer and is immediately drained behind the
  // scenes (the disk is spinning after the flush).
  EXPECT_EQ(system.sram().dirty_blocks(), 0u);
  EXPECT_GE(system.device().counters().writes, 2u);
}

TEST(StorageSystemTest, ReadsAreServedFromSram) {
  StorageSystem system(DiskConfig(0, 32 * 1024), 100, kBlock);
  const SimTime t = 10 * kUsPerSec;
  system.Handle(Rec(t, OpType::kWrite, 7, 2));
  const SimTime response = system.Handle(Rec(t + kUsPerSec, OpType::kRead, 7, 2));
  EXPECT_LT(response, UsFromMs(1));  // no disk access
  EXPECT_EQ(system.device().counters().reads, 0u);
}

TEST(StorageSystemTest, PartialSramOverlapFlushesBeforeRead) {
  StorageSystem system(DiskConfig(0, 32 * 1024), 100, kBlock);
  const SimTime t = 10 * kUsPerSec;
  system.Handle(Rec(t, OpType::kWrite, 7, 1));
  // Read spans the buffered block and one that is not buffered: the system
  // must flush first so the device holds current data, then read.
  const SimTime response = system.Handle(Rec(t + kUsPerSec, OpType::kRead, 7, 2));
  EXPECT_GT(response, UsFromMs(1000));  // spin-up + flush + read
  EXPECT_EQ(system.sram().dirty_blocks(), 0u);
  EXPECT_GE(system.device().counters().writes, 1u);
  EXPECT_EQ(system.device().counters().reads, 1u);
}

TEST(StorageSystemTest, WriteBehindDrainsWhileSpinning) {
  StorageSystem system(DiskConfig(0, 32 * 1024), 100, kBlock);
  // Wake the disk with a read, then write: the write should be absorbed AND
  // drained in the background because the disk is spinning anyway.
  system.Handle(Rec(0, OpType::kRead, 50, 1));
  const SimTime t = kUsPerSec;
  const SimTime response = system.Handle(Rec(t, OpType::kWrite, 0, 2));
  EXPECT_LT(response, UsFromMs(1));
  EXPECT_EQ(system.sram().dirty_blocks(), 0u);  // drained behind the scenes
  EXPECT_GE(system.device().counters().writes, 1u);
}

TEST(StorageSystemTest, EraseInvalidatesEverywhere) {
  StorageSystem system(DiskConfig(1024 * 1024, 32 * 1024), 100, kBlock);
  const SimTime t = 10 * kUsPerSec;
  system.Handle(Rec(t, OpType::kWrite, 0, 4));
  system.Handle(Rec(t + 1000, OpType::kErase, 0, 4));
  EXPECT_EQ(system.sram().dirty_blocks(), 0u);
  // A subsequent read misses DRAM (invalidated) and goes to the device.
  const SimTime response = system.Handle(Rec(t + kUsPerSec, OpType::kRead, 0, 4));
  EXPECT_GT(response, UsFromMs(20));
}

TEST(StorageSystemTest, FinishDrainsLeftoverWrites) {
  StorageSystem system(DiskConfig(0, 32 * 1024), 100, kBlock);
  const SimTime t = 10 * kUsPerSec;
  system.Handle(Rec(t, OpType::kWrite, 0, 4));
  EXPECT_GT(system.sram().dirty_blocks(), 0u);
  system.Finish(t + kUsPerSec);
  EXPECT_EQ(system.sram().dirty_blocks(), 0u);
  EXPECT_GE(system.device().counters().writes, 1u);
}

TEST(StorageSystemTest, FlashPreloadedToUtilization) {
  SimConfig config;
  config.device = IntelCardDatasheet();
  config.dram_bytes = 0;
  config.flash_utilization = 0.80;
  StorageSystem system(config, /*trace_blocks=*/1000, kBlock);
  // Writes to preloaded blocks are overwrites (no live growth).
  system.Handle(Rec(0, OpType::kWrite, 0, 4));
  EXPECT_GT(system.device().counters().writes, 0u);
}

TEST(StorageSystemTest, WriteBackPlusSramPrefersCache) {
  // With both write-back DRAM and SRAM configured, writes settle in DRAM and
  // the SRAM path is bypassed entirely.
  SimConfig config = DiskConfig(1024 * 1024, 32 * 1024);
  config.write_back_cache = true;
  StorageSystem system(config, 100, kBlock);
  const SimTime t = 10 * kUsPerSec;  // disk asleep
  const SimTime response = system.Handle(Rec(t, OpType::kWrite, 0, 2));
  EXPECT_LT(response, UsFromMs(1));
  EXPECT_EQ(system.sram().dirty_blocks(), 0u);
  EXPECT_EQ(system.dram().dirty_blocks(), 2u);
  EXPECT_EQ(system.device().counters().spinups, 0u);
}

TEST(StorageSystemTest, WriteBackSyncFlushesOnSchedule) {
  SimConfig config = DiskConfig(1024 * 1024, 0);
  config.write_back_cache = true;
  config.cache_sync_interval_us = 5 * kUsPerSec;
  StorageSystem system(config, 100, kBlock);
  system.Handle(Rec(0, OpType::kWrite, 0, 2));
  EXPECT_EQ(system.dram().dirty_blocks(), 2u);
  // The next operation past the sync deadline triggers the flush.
  system.Handle(Rec(20 * kUsPerSec, OpType::kRead, 50, 1));
  EXPECT_EQ(system.dram().dirty_blocks(), 0u);
  EXPECT_GE(system.device().counters().writes, 1u);
}

TEST(StorageSystemTest, GeometryModelIntegrates) {
  SimConfig config = DiskConfig(1024 * 1024, 32 * 1024);
  config.use_disk_geometry = true;
  config.disk_geometry = Cu140Geometry();
  StorageSystem system(config, 100, kBlock);
  const SimTime read = system.Handle(Rec(0, OpType::kRead, 0, 2));
  EXPECT_GT(read, UsFromMs(1));
  // Deferred spin-up works through the geometry model too.
  const SimTime t = 20 * kUsPerSec;
  const SimTime write = system.Handle(Rec(t, OpType::kWrite, 10, 2));
  EXPECT_LT(write, UsFromMs(1));
  EXPECT_EQ(system.device().counters().spinups, 0u);
}

TEST(StorageSystemTest, OversizedWriteBypassesSram) {
  // A write larger than the whole SRAM goes straight to the device.
  StorageSystem system(DiskConfig(0, 4 * 1024), 100, kBlock);
  const SimTime response = system.Handle(Rec(0, OpType::kRead, 50, 1));
  (void)response;
  const SimTime write = system.Handle(Rec(kUsPerSec, OpType::kWrite, 0, 8));
  EXPECT_GT(write, UsFromMs(10));  // disk service, not SRAM
  EXPECT_EQ(system.sram().dirty_blocks(), 0u);
}

TEST(StorageSystemTest, RequiredCapacityCoversTraceAtUtilization) {
  const std::uint64_t cap = RequiredCapacityBytes(10 * 1024 * 1024, 0.8, 128 * 1024);
  EXPECT_GE(static_cast<double>(cap) * 0.8, 10.0 * 1024 * 1024);
  EXPECT_EQ(cap % (128 * 1024), 0u);
}

}  // namespace
}  // namespace mobisim
