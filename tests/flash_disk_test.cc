// Unit tests for the flash disk emulator (SunDisk SDP family), including the
// SDP5A decoupled-erasure pool.
#include <gtest/gtest.h>

#include "src/device/device_catalog.h"
#include "src/device/flash_disk.h"

namespace mobisim {
namespace {

DeviceSpec TestFlashDisk() {
  DeviceSpec s;
  s.name = "test-flash-disk";
  s.kind = DeviceKind::kFlashDisk;
  s.read_overhead_ms = 1.0;
  s.write_overhead_ms = 1.0;
  s.sequential_overhead_ms = 1.0;
  s.read_kbps = 1024.0;
  s.write_kbps = 64.0;  // coupled erase+write
  s.erase_segment_bytes = 512;
  s.read_w = 0.5;
  s.write_w = 0.5;
  s.erase_w = 0.5;
  s.idle_w = 0.01;
  return s;
}

DeviceSpec TestAsyncFlashDisk() {
  DeviceSpec s = TestFlashDisk();
  s.name = "test-flash-disk-async";
  s.erase_kbps = 128.0;
  s.pre_erased_write_kbps = 512.0;
  return s;
}

DeviceOptions TestOptions() {
  DeviceOptions options;
  options.block_bytes = 1024;
  options.capacity_bytes = 64 * 1024;  // 64 blocks
  return options;
}

BlockRecord Rec(SimTime t, OpType op, std::uint64_t lba, std::uint32_t count,
                std::uint32_t file = 1) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = file;
  return rec;
}

TEST(FlashDiskTest, ReadTiming) {
  FlashDisk disk(TestFlashDisk(), TestOptions());
  const SimTime response = disk.Read(0, Rec(0, OpType::kRead, 0, 1));
  EXPECT_EQ(response, UsFromMs(1) + kUsPerSec / 1024);
}

TEST(FlashDiskTest, CoupledWriteTiming) {
  FlashDisk disk(TestFlashDisk(), TestOptions());
  // 1 KB at 64 KB/s = 15.625 ms, plus 1 ms overhead.
  const SimTime response = disk.Write(0, Rec(0, OpType::kWrite, 0, 1));
  EXPECT_EQ(response, UsFromMs(1) + TransferTimeUs(1024, 64.0));
}

TEST(FlashDiskTest, UtilizationDoesNotAffectWrites) {
  // The paper's key point: no intra-device copying, so a nearly-full flash
  // disk writes exactly as fast as an empty one.
  FlashDisk empty(TestFlashDisk(), TestOptions());
  FlashDisk full(TestFlashDisk(), TestOptions());
  full.Preload(60);
  const SimTime r_empty = empty.Write(0, Rec(0, OpType::kWrite, 0, 4));
  const SimTime r_full = full.Write(0, Rec(0, OpType::kWrite, 0, 4));
  EXPECT_EQ(r_empty, r_full);
}

TEST(FlashDiskTest, AsyncWritesFastWhenPoolCovers) {
  FlashDisk disk(TestAsyncFlashDisk(), TestOptions());
  ASSERT_TRUE(disk.asynchronous_erasure());
  // Fresh card: everything pre-erased, so writes run at 512 KB/s.
  const SimTime response = disk.Write(0, Rec(0, OpType::kWrite, 0, 4));
  EXPECT_EQ(response, UsFromMs(1) + TransferTimeUs(4096, 512.0));
  EXPECT_EQ(disk.counters().write_stalls, 0u);
}

TEST(FlashDiskTest, AsyncFallsBackWhenPoolEmpty) {
  DeviceOptions options = TestOptions();
  FlashDisk disk(TestAsyncFlashDisk(), options);
  disk.Preload(64);  // whole device live: zero pre-erased
  EXPECT_EQ(disk.pre_erased_bytes(), 0u);
  const SimTime response = disk.Write(0, Rec(0, OpType::kWrite, 0, 1));
  const double coupled_kbps = 1.0 / (1.0 / 128.0 + 1.0 / 512.0);
  EXPECT_EQ(response, UsFromMs(1) + TransferTimeUs(1024, coupled_kbps));
  EXPECT_EQ(disk.counters().write_stalls, 1u);
}

TEST(FlashDiskTest, BackgroundErasureReplenishesPool) {
  FlashDisk disk(TestAsyncFlashDisk(), TestOptions());
  disk.Preload(56);  // 8 blocks pre-erased
  // Overwrite 8 blocks: the new copies land in the pool, the old copies
  // become dirty.
  disk.Write(0, Rec(0, OpType::kWrite, 0, 8));
  EXPECT_GT(disk.dirty_bytes(), 0u);
  const std::uint64_t dirty = disk.dirty_bytes();
  // Idle long enough to erase everything: dirty -> pre-erased.
  disk.AdvanceTo(60 * kUsPerSec);
  EXPECT_EQ(disk.dirty_bytes(), 0u);
  EXPECT_EQ(disk.pre_erased_bytes(), dirty);
  // The next overwrite of that size is fast again.
  const SimTime response = disk.Write(60 * kUsPerSec,
                                      Rec(60 * kUsPerSec, OpType::kWrite, 0, 8));
  EXPECT_EQ(response, UsFromMs(1) + TransferTimeUs(8 * 1024, 512.0));
}

TEST(FlashDiskTest, SyncModeOnDecoupledPartUsesCoupledRate) {
  FlashDisk disk(TestAsyncFlashDisk(), TestOptions());
  disk.set_asynchronous_erasure(false);
  const double coupled_kbps = 1.0 / (1.0 / 128.0 + 1.0 / 512.0);
  const SimTime response = disk.Write(0, Rec(0, OpType::kWrite, 0, 1));
  EXPECT_EQ(response, UsFromMs(1) + TransferTimeUs(1024, coupled_kbps));
}

TEST(FlashDiskTest, TrimFreesSpace) {
  FlashDisk disk(TestAsyncFlashDisk(), TestOptions());
  disk.Preload(64);
  disk.Trim(0, Rec(0, OpType::kErase, 0, 16));
  EXPECT_EQ(disk.dirty_bytes(), 16u * 1024);
  disk.AdvanceTo(10 * 60 * kUsPerSec);
  EXPECT_EQ(disk.pre_erased_bytes(), 16u * 1024);
}

TEST(FlashDiskTest, EnergyAccountsActiveAndIdle) {
  DeviceSpec spec = TestFlashDisk();
  FlashDisk disk(spec, TestOptions());
  const SimTime response = disk.Write(0, Rec(0, OpType::kWrite, 0, 1));
  disk.Finish(10 * kUsPerSec);
  const double expected = 0.5 * SecFromUs(response) + 0.01 * (10.0 - SecFromUs(response));
  EXPECT_NEAR(disk.energy().total_joules(), expected, 1e-6);
}

TEST(FlashDiskTest, QueueingAppliesAcrossOps) {
  FlashDisk disk(TestFlashDisk(), TestOptions());
  const SimTime r1 = disk.Write(0, Rec(0, OpType::kWrite, 0, 1));
  const SimTime r2 = disk.Write(0, Rec(0, OpType::kWrite, 1, 1, 1));
  EXPECT_GT(r2, r1);
}

}  // namespace
}  // namespace mobisim
