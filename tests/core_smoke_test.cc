// End-to-end smoke tests: every device model runs every workload without
// violating basic sanity properties.
#include <gtest/gtest.h>

#include "src/core/simulator.h"
#include "src/device/device_catalog.h"

namespace mobisim {
namespace {

TEST(CoreSmokeTest, AllDevicesRunSynthWorkload) {
  for (const DeviceSpec& spec : AllDeviceSpecs()) {
    SimConfig config = MakePaperConfig(spec, 2 * 1024 * 1024);
    const SimResult result = RunNamedWorkload("synth", config, /*scale=*/0.2);
    EXPECT_GT(result.total_energy_j(), 0.0) << spec.name;
    EXPECT_GT(result.read_response_ms.count(), 0u) << spec.name;
    EXPECT_GT(result.write_response_ms.count(), 0u) << spec.name;
    EXPECT_GE(result.read_response_ms.min(), 0.0) << spec.name;
    EXPECT_GE(result.write_response_ms.min(), 0.0) << spec.name;
  }
}

TEST(CoreSmokeTest, FlashUsesLessEnergyThanDisk) {
  SimConfig disk = MakePaperConfig(Cu140Datasheet(), 2 * 1024 * 1024);
  SimConfig card = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  const SimResult disk_result = RunNamedWorkload("synth", disk, 0.2);
  const SimResult card_result = RunNamedWorkload("synth", card, 0.2);
  EXPECT_LT(card_result.total_energy_j(), disk_result.total_energy_j());
}

}  // namespace
}  // namespace mobisim
