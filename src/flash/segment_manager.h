// Segment-level state of a flash memory card.
//
// Pure state machine, no notion of time or energy: it tracks which logical
// block lives in which erase segment, per-segment live counts, erase counts,
// and free (erased) slots.  The FlashCard device model layers timing, energy,
// and the background-erase schedule on top.
//
// Semantics follow section 4.2 of the paper: writes are out-of-place into a
// single active segment which is filled completely before a new segment is
// opened; cleaning copies the remaining live blocks of a victim segment into
// the active segment and then erases the victim.
#ifndef MOBISIM_SRC_FLASH_SEGMENT_MANAGER_H_
#define MOBISIM_SRC_FLASH_SEGMENT_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/stats.h"

namespace mobisim {

class FtlPolicy;

enum class CleaningPolicy : std::uint8_t {
  // Pick the segment with the fewest live blocks (the MFFS policy, section 2).
  kGreedy = 0,
  // LFS/eNVy-style cost-benefit: maximize (free space gained * age) / cost.
  kCostBenefit = 1,
  // Greedy biased toward under-erased segments, implementing the paper's
  // "spread the load over the flash memory to avoid burning out particular
  // areas" (section 2).  Trades some extra copying for a narrower
  // erase-count distribution.
  kWearAware = 2,
};

const char* CleaningPolicyName(CleaningPolicy policy);

struct SegmentManagerConfig {
  std::uint64_t capacity_bytes = 40ull * 1024 * 1024;
  std::uint32_t segment_bytes = 128 * 1024;
  std::uint32_t block_bytes = 1024;
  // Logical address-space size in blocks; 0 means equal to the physical slot
  // count.  A larger logical space lets file systems burn through addresses
  // (create/delete churn) while live data stays within physical capacity.
  std::uint64_t logical_blocks = 0;
  // Route cleaning copies into their own active segment instead of mixing
  // them with fresh host writes.  This is eNVy's locality trick (and LFS age
  // sorting): survivors of cleaning are cold, so segregating them keeps cold
  // data out of the hot segments and slashes write amplification under
  // skewed traffic.
  bool separate_cleaning_segment = false;
  // Erase-cycle limit per segment; a segment reaching it is retired (goes
  // bad) and its capacity is lost.  0 disables wear-out (the default: the
  // paper tracks erase counts but does not model failures).
  std::uint32_t endurance_limit = 0;
  // Victim-selection policy, fixed at construction so the PickVictim epoch
  // cache can never be invalidated by a caller switching policies mid-run.
  // Used when `policy` is null (the manager then owns a private
  // LogStructuredFtl for this cleaner).
  CleaningPolicy cleaning_policy = CleaningPolicy::kGreedy;
  // Externally owned FtlPolicy to score victims with; must outlive the
  // manager.  FlashCard injects its own policy here so victim selection and
  // placement hooks come from one object.
  const FtlPolicy* policy = nullptr;
};

class SegmentManager {
 public:
  static constexpr std::uint32_t kNoSegment = ~std::uint32_t{0};

  explicit SegmentManager(const SegmentManagerConfig& config);
  // Out of line: the owned policy's deleter needs the complete FtlPolicy.
  ~SegmentManager();

  // Marks `count` logical blocks starting at `lba` live, placing them in
  // append order (used to preload the card to a target utilization).
  void Preload(std::uint64_t lba, std::uint64_t count);

  // True if a one-block host write can proceed right now.
  bool HasFreeSlot() const { return free_slots_ > 0; }

  // Out-of-place write of one logical block.  Requires HasFreeSlot().
  // Invalidates the block's previous location if it had one.
  void WriteBlock(std::uint64_t lba);

  // Drops a block's mapping (file deletion / trim).  No-op if unmapped.
  void TrimBlock(std::uint64_t lba);

  bool IsMapped(std::uint64_t lba) const;
  // Segment currently holding `lba`, or kNoSegment.
  std::uint32_t BlockSegment(std::uint64_t lba) const;

  // Chooses a cleaning victim among full segments that contain at least one
  // invalid slot; kNoSegment if none qualifies.  Scoring delegates to the
  // policy fixed at construction time.
  std::uint32_t PickVictim() const;

  // Number of live blocks cleaning this victim would copy.
  std::uint32_t VictimLiveBlocks(std::uint32_t segment) const;

  // Copies the victim's live blocks to the active segment (consuming free
  // slots) and erases the victim.  Requires free_slots() >= live count.
  // Returns the number of blocks copied.
  std::uint32_t CleanSegment(std::uint32_t segment);

  // Per-segment endurance override used by fault injection to sample a wear
  // budget per erase block; 0 falls back to config.endurance_limit.
  void SetEnduranceBudget(std::uint32_t segment, std::uint32_t limit);

  // Retires a currently-erased, non-active segment immediately (factory bad
  // block).  Its capacity is lost.
  void RetireSegment(std::uint32_t segment);

  // -- Introspection ----------------------------------------------------------
  std::uint32_t segment_count() const { return static_cast<std::uint32_t>(segments_.size()); }
  std::uint32_t blocks_per_segment() const { return blocks_per_segment_; }
  std::uint64_t total_blocks() const;
  std::uint64_t free_slots() const { return free_slots_; }
  std::uint64_t live_blocks() const { return live_blocks_; }
  // Segments that are fully erased (no slot consumed), excluding the active
  // segment.
  std::uint32_t erased_segment_count() const { return erased_segments_; }
  // Segments retired by the endurance limit.
  std::uint32_t bad_segment_count() const { return bad_segments_; }
  bool segment_is_bad(std::uint32_t segment) const;
  // Physical slots not lost to retired segments.
  std::uint64_t usable_blocks() const {
    return total_blocks() -
           static_cast<std::uint64_t>(bad_segments_) * blocks_per_segment_;
  }
  // Unwritten slots remaining in the current active segment (0 if none open).
  std::uint32_t active_free_slots() const;
  // Unwritten slots remaining in the cleaning destination segment; falls
  // back to the host active segment when cleaning is not segregated.
  std::uint32_t cleaning_free_slots() const;
  double utilization() const;
  std::uint32_t segment_live_count(std::uint32_t segment) const;
  std::uint32_t segment_erase_count(std::uint32_t segment) const;
  std::uint64_t total_erase_operations() const { return total_erases_; }
  // Endurance summary over all segments.
  RunningStats EraseCountStats() const;

  // Internal-consistency check used by tests and MOBISIM_DCHECK call sites:
  // live + free + invalid slots == total slots, per-segment counts match the
  // mapping, etc.
  bool CheckInvariants() const;

 private:
  struct Segment {
    std::uint32_t slots_used = 0;   // appended blocks since last erase
    std::uint32_t live = 0;         // still-mapped blocks
    std::uint32_t erase_count = 0;
    // Sampled wear budget for this segment; 0 uses config.endurance_limit.
    std::uint32_t endurance_limit = 0;
    bool bad = false;               // retired by the endurance limit
    std::uint64_t sequence = 0;     // fill-completion order, for cost-benefit age
    // Logical blocks appended since last erase; entries may be stale
    // (superseded), validated against the mapping during cleaning.
    std::vector<std::uint64_t> residents;
  };

  // Opens an erased segment into `slot` (the host or cleaning active role).
  void OpenNewActiveSegment(std::uint32_t& slot);
  void AppendBlock(std::uint64_t lba, bool cleaning = false);
  void InvalidateBlock(std::uint64_t lba);

  SegmentManagerConfig config_;
  // Private log-structured policy backing config_.cleaning_policy when no
  // external policy was injected.
  std::unique_ptr<const FtlPolicy> owned_policy_;
  const FtlPolicy* policy_ = nullptr;
  std::uint32_t blocks_per_segment_;
  std::vector<Segment> segments_;
  // lba -> segment index, or kNoSegment.
  std::vector<std::uint32_t> block_segment_;
  std::uint32_t active_segment_ = kNoSegment;
  // Destination of cleaning copies when separate_cleaning_segment is set.
  std::uint32_t cleaning_segment_ = kNoSegment;
  std::uint64_t free_slots_ = 0;
  std::uint64_t live_blocks_ = 0;
  std::uint32_t erased_segments_ = 0;
  std::uint32_t bad_segments_ = 0;
  std::uint64_t total_erases_ = 0;
  std::uint64_t fill_sequence_ = 0;

  // PickVictim is a full scan over segments, and the device model re-asks it
  // after nearly every record while the erased reserve is low.  Every input
  // to the scoring (live counts, fill order, erase counts, the active
  // segment) changes only through the mutating methods, which bump
  // mutation_epoch_; the last answer is cached and reused until then.  The
  // policy is fixed at construction, so the epoch alone keys the cache.
  std::uint64_t mutation_epoch_ = 0;
  mutable std::uint64_t victim_epoch_ = ~std::uint64_t{0};
  mutable std::uint32_t victim_cache_ = kNoSegment;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_FLASH_SEGMENT_MANAGER_H_
