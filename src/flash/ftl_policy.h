// Flash translation layer policies.
//
// An FtlPolicy bundles every decision the flash card delegates to its
// translation/cleaning scheme:
//
//   * victim selection  -- which sealed segment the cleaner erases next
//                          (ScoreVictim, consulted by SegmentManager);
//   * block placement   -- what physically gets appended to the log when the
//                          host overwrites a block (PlanHostWrite);
//   * read cost         -- extra device-internal bytes needed to assemble a
//                          block on read, e.g. merging page diffs
//                          (ExtraReadBytes);
//   * cleaning routing  -- whether cleaning copies are segregated from host
//                          writes (RouteCleaningSeparately).
//
// Ownership and threading contract: a policy instance is owned by exactly one
// device (FlashCard owns its policy via MakeFtlPolicy; a bare SegmentManager
// without an injected policy owns a private log-structured one).  Instances
// are stateful and NOT thread-safe; parallel sweeps are safe because every
// simulation point builds its own device and therefore its own policy.
//
// Cost-hook contract: PlanHostWrite/ExtraReadBytes describe *what* the device
// should charge (log appends, programmed bytes, internal merge reads); the
// FlashCard translates that into time and energy using its datasheet rates.
// A plan with appends == {lba} and programmed_bytes == block_bytes is the
// identity plan -- the classic log-structured write -- and devices take a
// fast path that is byte-identical to the pre-FtlPolicy code.
//
// Registering a new policy: add a FtlPolicyKind value, a name in the table in
// ftl_policy.cc (FtlPolicyKindName/FtlPolicyKindFromName), a class deriving
// from FtlPolicy here, and a case in MakeFtlPolicy.  config_text / the
// `ftl =` sweep dimension pick it up by name automatically.
#ifndef MOBISIM_SRC_FLASH_FTL_POLICY_H_
#define MOBISIM_SRC_FLASH_FTL_POLICY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/flash/segment_manager.h"

namespace mobisim {

// Structural FTL scheme.  Orthogonal to CleaningPolicy: log-structured
// schemes still choose a cleaner (greedy / cost-benefit / wear-aware).
enum class FtlPolicyKind : std::uint8_t {
  // MFFS-style out-of-place log with segment cleaning (the paper's scheme).
  kLogStructured = 0,
  // Page-differential logging (Kim/Whang/Song): an overwrite of a dirty page
  // appends only the delta; a full chain forces a merge, reads pay to fold
  // outstanding diffs in.
  kPageDiff = 1,
  // FAT-style block remapping per the flash-disk emulator: a bounded in-RAM
  // remap table redirects overwritten blocks, segments are reclaimed in FIFO
  // fill order, and table wraparound flushes a map page to flash.
  kFatRemap = 2,
};

// The single name-lowering rule every by-name lookup (cleaners, FTL kinds,
// devices, backends) routes through: strips whitespace, maps '_' to '-',
// lowercases.  Canonical names use '-'; spec files may write either.
std::string NormalizeName(const std::string& name);

const char* FtlPolicyKindName(FtlPolicyKind kind);
// Strict inverse of FtlPolicyKindName; accepts '_' for '-'.  nullopt on
// anything else.
std::optional<FtlPolicyKind> FtlPolicyKindFromName(const std::string& name);

// Strict inverse of CleaningPolicyName; accepts '_' for '-'.  This is the
// single name table both config_text and the spec parser route through.
std::optional<CleaningPolicy> CleaningPolicyFromName(const std::string& name);

// Per-policy event counters, surfaced through DeviceCounters into SimResult.
// All stay zero for the log-structured policy.
struct FtlCounters {
  std::uint64_t diff_writes = 0;       // host writes absorbed as page diffs
  std::uint64_t diff_merges = 0;       // merges forced by a full diff chain
  std::uint64_t diff_merge_reads = 0;  // reads that folded outstanding diffs
  std::uint64_t remap_table_hits = 0;  // lookups served by the remap table
  std::uint64_t remap_table_wraps = 0; // table wraparounds (map-page flushes)
};

// One cleaning candidate as seen by ScoreVictim.
struct VictimCandidate {
  std::uint32_t index = 0;
  std::uint32_t live = 0;         // still-mapped blocks
  std::uint32_t erase_count = 0;
  std::uint64_t sequence = 0;     // fill-completion stamp (1 = oldest)
};

// Scan-invariant context for ScoreVictim.
struct VictimView {
  std::uint32_t blocks_per_segment = 0;
  std::uint64_t fill_sequence = 0;   // newest stamp issued so far
  // Highest erase count across all segments; populated only when the policy
  // reports NeedsMaxEraseCount().
  std::uint32_t max_erase_count = 0;
};

// What servicing a one-block host write physically does to the card.
struct HostWritePlan {
  // Log appends to perform, in order (the block itself, and possibly a
  // policy metadata page such as a diff page or a map page).
  std::uint64_t appends[2] = {0, 0};
  std::uint32_t append_count = 0;
  // Bytes transferred over the host interface and programmed.
  std::uint64_t programmed_bytes = 0;
  // Device-internal bytes read before programming (e.g. merge of a full
  // diff chain), charged at the internal read rate.
  std::uint64_t merge_read_bytes = 0;
};

class FtlPolicy {
 public:
  virtual ~FtlPolicy() = default;

  virtual FtlPolicyKind kind() const = 0;
  virtual const char* name() const = 0;

  // -- Victim selection (SegmentManager::PickVictim) -----------------------
  // Higher score wins; the first candidate (lowest index) wins ties.  Called
  // only for sealed segments with at least one invalid slot.
  virtual double ScoreVictim(const VictimCandidate& candidate,
                             const VictimView& view) const = 0;
  // Whether the victim scan must pre-compute VictimView::max_erase_count.
  virtual bool NeedsMaxEraseCount() const { return false; }

  // -- Placement and cost hooks (FlashCard) --------------------------------
  // Claims the never-accessed logical window [base, base + available) for
  // policy metadata pages (diff pages, map pages).  Policies clamp their
  // pools to a fraction of `available`; without an attached window they
  // degrade to identity plans.  Called once, before any I/O.
  virtual void AttachMetaWindow(std::uint64_t base, std::uint64_t available,
                                std::uint32_t block_bytes) {
    (void)base;
    (void)available;
    (void)block_bytes;
  }
  // Plans a one-block host write of `lba` (`mapped`: the block has a live
  // copy on flash).  The default is the identity plan.
  virtual HostWritePlan PlanHostWrite(std::uint64_t lba, bool mapped,
                                      std::uint32_t block_bytes);
  // Device-internal bytes needed on top of the host transfer to assemble
  // `lba` on read (0 for policies that store blocks whole).
  virtual std::uint64_t ExtraReadBytes(std::uint64_t lba) {
    (void)lba;
    return 0;
  }
  // The block was trimmed (file deletion); drop any per-block policy state.
  virtual void OnTrim(std::uint64_t lba) { (void)lba; }
  // Whether cleaning copies go to a segregated destination segment.
  // `configured` is the SimConfig request; policies may force it.
  virtual bool RouteCleaningSeparately(bool configured) const { return configured; }

  const FtlCounters& counters() const { return counters_; }

 protected:
  FtlCounters counters_;
};

// The paper's scheme, extracted: out-of-place log writes plus the classic
// victim scorers.  ScoreVictim reproduces the pre-FtlPolicy switch
// byte-for-byte (same expressions, same evaluation order).
class LogStructuredFtl : public FtlPolicy {
 public:
  explicit LogStructuredFtl(CleaningPolicy cleaner) : cleaner_(cleaner) {}

  FtlPolicyKind kind() const override { return FtlPolicyKind::kLogStructured; }
  const char* name() const override { return CleaningPolicyName(cleaner_); }
  double ScoreVictim(const VictimCandidate& candidate,
                     const VictimView& view) const override;
  bool NeedsMaxEraseCount() const override {
    return cleaner_ == CleaningPolicy::kWearAware;
  }
  CleaningPolicy cleaner() const { return cleaner_; }

 private:
  CleaningPolicy cleaner_;
};

// Page-differential logging (Kim/Whang/Song).  An overwrite of a mapped
// block appends a diff of `block_bytes / diff_divisor` bytes instead of the
// whole page; diffs from all blocks pack into shared diff pages drawn from
// the metadata window, and a physical diff-page append happens only when a
// page's worth of diff bytes has accumulated.  Once a block carries
// `max_diffs` outstanding diffs the next overwrite merges: the base page and
// its diffs are read back internally and the folded page is rewritten whole.
// Reads of a block with outstanding diffs pay the internal reads to fold
// them in (merge-on-read).  Victim selection delegates to the configured
// log cleaner.
class PageDiffFtl : public FtlPolicy {
 public:
  struct Params {
    std::uint32_t max_diffs = 3;     // outstanding diffs before a merge
    std::uint32_t diff_divisor = 4;  // diff size = block_bytes / divisor
    std::uint32_t pool_pages = 32;   // diff-page pool (cycled round-robin)
  };

  explicit PageDiffFtl(CleaningPolicy cleaner);
  PageDiffFtl(CleaningPolicy cleaner, const Params& params);

  FtlPolicyKind kind() const override { return FtlPolicyKind::kPageDiff; }
  const char* name() const override { return "page-diff"; }
  double ScoreVictim(const VictimCandidate& candidate,
                     const VictimView& view) const override;
  bool NeedsMaxEraseCount() const override {
    return cleaner_ == CleaningPolicy::kWearAware;
  }
  void AttachMetaWindow(std::uint64_t base, std::uint64_t available,
                        std::uint32_t block_bytes) override;
  HostWritePlan PlanHostWrite(std::uint64_t lba, bool mapped,
                              std::uint32_t block_bytes) override;
  std::uint64_t ExtraReadBytes(std::uint64_t lba) override;
  void OnTrim(std::uint64_t lba) override;

  std::uint32_t pool_pages() const { return pool_pages_; }

 private:
  CleaningPolicy cleaner_;
  Params params_;
  std::uint64_t meta_base_ = 0;
  std::uint32_t pool_pages_ = 0;   // 0 until a window is attached
  std::uint32_t pool_cursor_ = 0;
  std::uint64_t diff_unit_ = 1;    // bytes per diff, fixed at attach time
  std::uint64_t pending_diff_bytes_ = 0;
  // Outstanding diff count per host lba (< meta_base_).
  std::vector<std::uint8_t> diffs_;
};

// FAT-style block remapping per the flash-disk emulator.  Overwrites are
// redirected through a bounded in-RAM remap table; segments are reclaimed
// strictly in fill (FIFO) order, which is what a FAT remapper's sequential
// fold-and-erase does.  Every overwrite of a mapped block consumes a table
// entry; when the cursor wraps around the table the accumulated map updates
// are flushed as a map page from the metadata window.  Reads and writes of
// remapped blocks count remap_table_hits.
class FatRemapFtl : public FtlPolicy {
 public:
  struct Params {
    std::uint32_t table_entries = 1024;  // remap entries per flush cycle
    std::uint32_t map_pool_pages = 4;    // map-page pool (cycled round-robin)
  };

  FatRemapFtl();
  explicit FatRemapFtl(const Params& params);

  FtlPolicyKind kind() const override { return FtlPolicyKind::kFatRemap; }
  const char* name() const override { return "fat-remap"; }
  double ScoreVictim(const VictimCandidate& candidate,
                     const VictimView& view) const override;
  void AttachMetaWindow(std::uint64_t base, std::uint64_t available,
                        std::uint32_t block_bytes) override;
  HostWritePlan PlanHostWrite(std::uint64_t lba, bool mapped,
                              std::uint32_t block_bytes) override;
  std::uint64_t ExtraReadBytes(std::uint64_t lba) override;
  void OnTrim(std::uint64_t lba) override;

  std::uint32_t table_cursor() const { return table_cursor_; }

 private:
  Params params_;
  std::uint64_t meta_base_ = 0;
  std::uint32_t pool_pages_ = 0;   // 0 until a window is attached
  std::uint32_t pool_cursor_ = 0;
  std::uint32_t table_cursor_ = 0;
  // Blocks currently redirected through the table (overwritten since start).
  std::vector<bool> remapped_;
};

// Owning factory: the policy a device builds from its configuration.
std::unique_ptr<FtlPolicy> MakeFtlPolicy(FtlPolicyKind kind, CleaningPolicy cleaner);

}  // namespace mobisim

#endif  // MOBISIM_SRC_FLASH_FTL_POLICY_H_
