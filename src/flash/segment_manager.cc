#include "src/flash/segment_manager.h"

#include <algorithm>

#include "src/flash/ftl_policy.h"
#include "src/util/check.h"

namespace mobisim {

// CleaningPolicyName lives in ftl_policy.cc, next to its strict inverse, so
// there is exactly one policy-name table.

SegmentManager::SegmentManager(const SegmentManagerConfig& config) : config_(config) {
  MOBISIM_CHECK(config.block_bytes > 0);
  MOBISIM_CHECK(config.segment_bytes >= config.block_bytes);
  MOBISIM_CHECK(config.segment_bytes % config.block_bytes == 0);
  MOBISIM_CHECK(config.capacity_bytes >= config.segment_bytes);
  blocks_per_segment_ = config.segment_bytes / config.block_bytes;
  const std::uint32_t segment_count =
      static_cast<std::uint32_t>(config.capacity_bytes / config.segment_bytes);
  MOBISIM_CHECK(segment_count >= 2);
  segments_.resize(segment_count);
  const std::uint64_t logical =
      config.logical_blocks > 0
          ? config.logical_blocks
          : static_cast<std::uint64_t>(segment_count) * blocks_per_segment_;
  MOBISIM_CHECK(logical >= static_cast<std::uint64_t>(segment_count) * blocks_per_segment_);
  block_segment_.assign(logical, kNoSegment);
  free_slots_ = total_blocks();
  erased_segments_ = segment_count;
  if (config.policy != nullptr) {
    policy_ = config.policy;
  } else {
    owned_policy_ = std::make_unique<LogStructuredFtl>(config.cleaning_policy);
    policy_ = owned_policy_.get();
  }
}

SegmentManager::~SegmentManager() = default;

std::uint64_t SegmentManager::total_blocks() const {
  return static_cast<std::uint64_t>(segments_.size()) * blocks_per_segment_;
}

double SegmentManager::utilization() const {
  return static_cast<double>(live_blocks_) / static_cast<double>(total_blocks());
}

std::uint32_t SegmentManager::active_free_slots() const {
  if (active_segment_ == kNoSegment) {
    return 0;
  }
  return blocks_per_segment_ - segments_[active_segment_].slots_used;
}

std::uint32_t SegmentManager::cleaning_free_slots() const {
  if (!config_.separate_cleaning_segment) {
    return active_free_slots();
  }
  if (cleaning_segment_ == kNoSegment) {
    return 0;
  }
  return blocks_per_segment_ - segments_[cleaning_segment_].slots_used;
}

std::uint32_t SegmentManager::segment_live_count(std::uint32_t segment) const {
  MOBISIM_DCHECK(segment < segments_.size());
  return segments_[segment].live;
}

std::uint32_t SegmentManager::segment_erase_count(std::uint32_t segment) const {
  MOBISIM_DCHECK(segment < segments_.size());
  return segments_[segment].erase_count;
}

void SegmentManager::OpenNewActiveSegment(std::uint32_t& slot) {
  for (std::uint32_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].slots_used == 0 && !segments_[i].bad && i != active_segment_ &&
        i != cleaning_segment_) {
      slot = i;
      MOBISIM_CHECK(erased_segments_ > 0);
      --erased_segments_;
      // The segment will fill completely before it closes; one allocation
      // up front instead of push_back growth (CleanSegment moves the vector
      // away, so capacity does not survive an erase cycle).
      segments_[i].residents.reserve(blocks_per_segment_);
      return;
    }
  }
  MOBISIM_CHECK(false && "no erased segment available for the active role");
}

void SegmentManager::AppendBlock(std::uint64_t lba, bool cleaning) {
  MOBISIM_CHECK(free_slots_ > 0);
  ++mutation_epoch_;
  std::uint32_t& role = (cleaning && config_.separate_cleaning_segment) ? cleaning_segment_
                                                                        : active_segment_;
  if (role == kNoSegment || segments_[role].slots_used == blocks_per_segment_) {
    OpenNewActiveSegment(role);
  }
  const std::uint32_t target = role;
  Segment& seg = segments_[target];
  ++seg.slots_used;
  ++seg.live;
  seg.residents.push_back(lba);
  if (seg.slots_used == blocks_per_segment_) {
    // Seal the segment: a full segment is no longer "active" and becomes a
    // cleaning candidate like any other.
    seg.sequence = ++fill_sequence_;
    role = kNoSegment;
  }
  --free_slots_;
  ++live_blocks_;
  block_segment_[lba] = target;
}

void SegmentManager::InvalidateBlock(std::uint64_t lba) {
  const std::uint32_t seg_idx = block_segment_[lba];
  if (seg_idx == kNoSegment) {
    return;
  }
  ++mutation_epoch_;
  Segment& seg = segments_[seg_idx];
  MOBISIM_DCHECK(seg.live > 0);
  --seg.live;
  --live_blocks_;
  block_segment_[lba] = kNoSegment;
}

void SegmentManager::Preload(std::uint64_t lba, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    MOBISIM_CHECK(lba + i < block_segment_.size());
    MOBISIM_CHECK(block_segment_[lba + i] == kNoSegment);
    AppendBlock(lba + i);
  }
}

void SegmentManager::WriteBlock(std::uint64_t lba) {
  MOBISIM_CHECK(lba < block_segment_.size());
  InvalidateBlock(lba);
  AppendBlock(lba);
}

void SegmentManager::TrimBlock(std::uint64_t lba) {
  MOBISIM_CHECK(lba < block_segment_.size());
  InvalidateBlock(lba);
}

bool SegmentManager::IsMapped(std::uint64_t lba) const {
  MOBISIM_CHECK(lba < block_segment_.size());
  return block_segment_[lba] != kNoSegment;
}

std::uint32_t SegmentManager::BlockSegment(std::uint64_t lba) const {
  MOBISIM_CHECK(lba < block_segment_.size());
  return block_segment_[lba];
}

std::uint32_t SegmentManager::PickVictim() const {
  if (victim_epoch_ == mutation_epoch_) {
    return victim_cache_;
  }
  VictimView view;
  view.blocks_per_segment = blocks_per_segment_;
  view.fill_sequence = fill_sequence_;
  if (policy_->NeedsMaxEraseCount()) {
    for (const Segment& seg : segments_) {
      view.max_erase_count = std::max(view.max_erase_count, seg.erase_count);
    }
  }

  std::uint32_t best = kNoSegment;
  double best_score = -1.0;
  for (std::uint32_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = segments_[i];
    if (i == active_segment_ || seg.slots_used != blocks_per_segment_ ||
        seg.live == blocks_per_segment_) {
      continue;  // only full segments with at least one invalid slot qualify
    }
    VictimCandidate candidate;
    candidate.index = i;
    candidate.live = seg.live;
    candidate.erase_count = seg.erase_count;
    candidate.sequence = seg.sequence;
    const double score = policy_->ScoreVictim(candidate, view);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  victim_epoch_ = mutation_epoch_;
  victim_cache_ = best;
  return best;
}

std::uint32_t SegmentManager::VictimLiveBlocks(std::uint32_t segment) const {
  MOBISIM_CHECK(segment < segments_.size());
  return segments_[segment].live;
}

std::uint32_t SegmentManager::CleanSegment(std::uint32_t segment) {
  MOBISIM_CHECK(segment < segments_.size());
  MOBISIM_CHECK(segment != active_segment_);
  MOBISIM_CHECK(segment != cleaning_segment_);
  Segment& victim = segments_[segment];
  MOBISIM_CHECK(victim.slots_used == blocks_per_segment_);
  MOBISIM_CHECK(free_slots_ >= victim.live);

  // Copy the still-live residents into the active segment.  Resident entries
  // may be stale (the block was overwritten elsewhere since being appended
  // here); the mapping is the source of truth.
  std::uint32_t copied = 0;
  std::vector<std::uint64_t> residents = std::move(victim.residents);
  victim.residents.clear();
  for (const std::uint64_t lba : residents) {
    if (block_segment_[lba] != segment) {
      continue;
    }
    InvalidateBlock(lba);
    AppendBlock(lba, /*cleaning=*/true);
    ++copied;
  }
  MOBISIM_CHECK(victim.live == 0);

  victim.slots_used = 0;
  victim.sequence = 0;
  ++victim.erase_count;
  ++total_erases_;
  ++mutation_epoch_;
  const std::uint32_t limit =
      victim.endurance_limit > 0 ? victim.endurance_limit : config_.endurance_limit;
  if (limit > 0 && victim.erase_count >= limit) {
    // The erase succeeded but the segment is at its cycle limit: retire it.
    victim.bad = true;
    ++bad_segments_;
  } else {
    ++erased_segments_;
    free_slots_ += blocks_per_segment_;
  }
  return copied;
}

void SegmentManager::SetEnduranceBudget(std::uint32_t segment, std::uint32_t limit) {
  MOBISIM_CHECK(segment < segments_.size());
  ++mutation_epoch_;
  segments_[segment].endurance_limit = limit;
}

void SegmentManager::RetireSegment(std::uint32_t segment) {
  MOBISIM_CHECK(segment < segments_.size());
  Segment& seg = segments_[segment];
  MOBISIM_CHECK(seg.slots_used == 0 && !seg.bad);
  MOBISIM_CHECK(segment != active_segment_ && segment != cleaning_segment_);
  MOBISIM_CHECK(erased_segments_ > 0);
  MOBISIM_CHECK(free_slots_ >= blocks_per_segment_);
  ++mutation_epoch_;
  seg.bad = true;
  --erased_segments_;
  free_slots_ -= blocks_per_segment_;
  ++bad_segments_;
}

bool SegmentManager::segment_is_bad(std::uint32_t segment) const {
  MOBISIM_CHECK(segment < segments_.size());
  return segments_[segment].bad;
}

RunningStats SegmentManager::EraseCountStats() const {
  RunningStats stats;
  for (const Segment& seg : segments_) {
    stats.Add(static_cast<double>(seg.erase_count));
  }
  return stats;
}

bool SegmentManager::CheckInvariants() const {
  std::vector<std::uint32_t> live_per_segment(segments_.size(), 0);
  std::uint64_t mapped = 0;
  for (std::size_t lba = 0; lba < block_segment_.size(); ++lba) {
    const std::uint32_t seg = block_segment_[lba];
    if (seg == kNoSegment) {
      continue;
    }
    if (seg >= segments_.size()) {
      return false;
    }
    ++live_per_segment[seg];
    ++mapped;
  }
  if (mapped != live_blocks_) {
    return false;
  }
  std::uint64_t used = 0;
  std::uint32_t erased = 0;
  for (std::uint32_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = segments_[i];
    if (seg.live != live_per_segment[i]) {
      return false;
    }
    if (seg.live > seg.slots_used || seg.slots_used > blocks_per_segment_) {
      return false;
    }
    used += seg.slots_used;
    if (seg.slots_used == 0 && !seg.bad && i != active_segment_ && i != cleaning_segment_) {
      ++erased;
    }
  }
  if (erased != erased_segments_) {
    return false;
  }
  const std::uint64_t bad_capacity =
      static_cast<std::uint64_t>(bad_segments_) * blocks_per_segment_;
  return used + free_slots_ + bad_capacity == total_blocks();
}

}  // namespace mobisim
