#include "src/flash/ftl_policy.h"

#include <algorithm>
#include <cctype>

#include "src/util/check.h"

namespace mobisim {

// Canonical names use '-'; parsing tolerates '_' and case so spec files may
// write cost_benefit / PAGE_DIFF etc.  Unknown names stay rejected.
std::string NormalizeName(const std::string& name) {
  std::string v;
  v.reserve(name.size());
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 &&
        (v.empty() || v.back() != ' ')) {
      continue;  // names carry no interior spaces; trim everything
    }
    v.push_back(c == '_' ? '-'
                         : static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return v;
}

const char* CleaningPolicyName(CleaningPolicy policy) {
  switch (policy) {
    case CleaningPolicy::kGreedy:
      return "greedy";
    case CleaningPolicy::kCostBenefit:
      return "cost-benefit";
    case CleaningPolicy::kWearAware:
      return "wear-aware";
  }
  return "unknown";
}

std::optional<CleaningPolicy> CleaningPolicyFromName(const std::string& name) {
  const std::string v = NormalizeName(name);
  if (v == "greedy") {
    return CleaningPolicy::kGreedy;
  }
  if (v == "cost-benefit") {
    return CleaningPolicy::kCostBenefit;
  }
  if (v == "wear-aware") {
    return CleaningPolicy::kWearAware;
  }
  return std::nullopt;
}

const char* FtlPolicyKindName(FtlPolicyKind kind) {
  switch (kind) {
    case FtlPolicyKind::kLogStructured:
      return "log";
    case FtlPolicyKind::kPageDiff:
      return "page-diff";
    case FtlPolicyKind::kFatRemap:
      return "fat-remap";
  }
  return "unknown";
}

std::optional<FtlPolicyKind> FtlPolicyKindFromName(const std::string& name) {
  const std::string v = NormalizeName(name);
  if (v == "log") {
    return FtlPolicyKind::kLogStructured;
  }
  if (v == "page-diff") {
    return FtlPolicyKind::kPageDiff;
  }
  if (v == "fat-remap") {
    return FtlPolicyKind::kFatRemap;
  }
  return std::nullopt;
}

HostWritePlan FtlPolicy::PlanHostWrite(std::uint64_t lba, bool mapped,
                                       std::uint32_t block_bytes) {
  (void)mapped;
  HostWritePlan plan;
  plan.appends[0] = lba;
  plan.append_count = 1;
  plan.programmed_bytes = block_bytes;
  return plan;
}

namespace {

// The pre-FtlPolicy victim switch, verbatim: same expressions, same casts,
// same evaluation order, so extracted policies score byte-identically.
double LogCleanerScore(CleaningPolicy policy, const VictimCandidate& seg,
                       const VictimView& view) {
  switch (policy) {
    case CleaningPolicy::kGreedy:
      return static_cast<double>(view.blocks_per_segment - seg.live);
    case CleaningPolicy::kCostBenefit: {
      const double u =
          static_cast<double>(seg.live) / static_cast<double>(view.blocks_per_segment);
      const double age = static_cast<double>(view.fill_sequence - seg.sequence) + 1.0;
      return (1.0 - u) * age / (1.0 + u);
    }
    case CleaningPolicy::kWearAware: {
      // Greedy, plus a bonus for under-erased segments so cold data gets
      // rotated off low-wear areas.
      const double invalid = static_cast<double>(view.blocks_per_segment - seg.live);
      const double deficit =
          static_cast<double>(view.max_erase_count - seg.erase_count) /
          static_cast<double>(std::max<std::uint32_t>(view.max_erase_count, 1));
      return invalid + 0.3 * deficit * static_cast<double>(view.blocks_per_segment);
    }
  }
  return 0.0;
}

}  // namespace

double LogStructuredFtl::ScoreVictim(const VictimCandidate& candidate,
                                     const VictimView& view) const {
  return LogCleanerScore(cleaner_, candidate, view);
}

// -- PageDiffFtl -----------------------------------------------------------

PageDiffFtl::PageDiffFtl(CleaningPolicy cleaner) : PageDiffFtl(cleaner, Params()) {}

PageDiffFtl::PageDiffFtl(CleaningPolicy cleaner, const Params& params)
    : cleaner_(cleaner), params_(params) {
  MOBISIM_CHECK(params.max_diffs > 0);
  MOBISIM_CHECK(params.diff_divisor > 0);
}

double PageDiffFtl::ScoreVictim(const VictimCandidate& candidate,
                                const VictimView& view) const {
  return LogCleanerScore(cleaner_, candidate, view);
}

void PageDiffFtl::AttachMetaWindow(std::uint64_t base, std::uint64_t available,
                                   std::uint32_t block_bytes) {
  meta_base_ = base;
  // Claim at most a quarter of the spare window so the cleaner's slack
  // segments stay effective even on tiny cards.
  pool_pages_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params_.pool_pages, available / 4));
  diff_unit_ = std::max<std::uint64_t>(1, block_bytes / params_.diff_divisor);
  diffs_.assign(base, 0);
}

HostWritePlan PageDiffFtl::PlanHostWrite(std::uint64_t lba, bool mapped,
                                         std::uint32_t block_bytes) {
  HostWritePlan plan;
  if (pool_pages_ == 0 || !mapped || lba >= diffs_.size()) {
    // No diff pool (unattached window) or no base page to diff against:
    // classic full-page append.
    plan.appends[plan.append_count++] = lba;
    plan.programmed_bytes = block_bytes;
    return plan;
  }
  const std::uint64_t diff_bytes = diff_unit_;
  if (diffs_[lba] < params_.max_diffs) {
    // Absorb the overwrite as a diff.  The base page stays mapped; the diff
    // lands in a shared diff page that is physically appended only once a
    // page's worth of diff bytes has accumulated.
    ++counters_.diff_writes;
    ++diffs_[lba];
    pending_diff_bytes_ += diff_bytes;
    plan.programmed_bytes = diff_bytes;
    if (pending_diff_bytes_ >= block_bytes) {
      pending_diff_bytes_ -= block_bytes;
      plan.appends[plan.append_count++] = meta_base_ + pool_cursor_;
      pool_cursor_ = (pool_cursor_ + 1) % pool_pages_;
    }
    return plan;
  }
  // Chain full: merge.  Read the base page and its diffs back internally and
  // rewrite the folded page whole.
  ++counters_.diff_merges;
  plan.merge_read_bytes =
      block_bytes + static_cast<std::uint64_t>(diffs_[lba]) * diff_bytes;
  diffs_[lba] = 0;
  plan.appends[plan.append_count++] = lba;
  plan.programmed_bytes = block_bytes;
  return plan;
}

std::uint64_t PageDiffFtl::ExtraReadBytes(std::uint64_t lba) {
  if (lba >= diffs_.size() || diffs_[lba] == 0) {
    return 0;
  }
  ++counters_.diff_merge_reads;
  return static_cast<std::uint64_t>(diffs_[lba]) * diff_unit_;
}

void PageDiffFtl::OnTrim(std::uint64_t lba) {
  if (lba < diffs_.size()) {
    diffs_[lba] = 0;
  }
}

// -- FatRemapFtl -----------------------------------------------------------

FatRemapFtl::FatRemapFtl() : FatRemapFtl(Params()) {}

FatRemapFtl::FatRemapFtl(const Params& params) : params_(params) {
  MOBISIM_CHECK(params.table_entries > 0);
}

double FatRemapFtl::ScoreVictim(const VictimCandidate& candidate,
                                const VictimView& view) const {
  (void)view;
  // FIFO fold order: the oldest sealed segment (smallest fill stamp) scores
  // highest.  Stamps start at 1 and are unique, so 1/stamp is a strict,
  // positive ordering the `score > best` scan resolves deterministically.
  return 1.0 / static_cast<double>(candidate.sequence);
}

void FatRemapFtl::AttachMetaWindow(std::uint64_t base, std::uint64_t available,
                                   std::uint32_t block_bytes) {
  (void)block_bytes;
  meta_base_ = base;
  pool_pages_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params_.map_pool_pages, available / 4));
  remapped_.assign(base, false);
}

HostWritePlan FatRemapFtl::PlanHostWrite(std::uint64_t lba, bool mapped,
                                         std::uint32_t block_bytes) {
  HostWritePlan plan;
  plan.appends[plan.append_count++] = lba;
  plan.programmed_bytes = block_bytes;
  if (mapped && lba < remapped_.size()) {
    // Overwriting a live block redirects it through the remap table.
    ++counters_.remap_table_hits;
    remapped_[lba] = true;
    ++table_cursor_;
    if (table_cursor_ >= params_.table_entries) {
      // Table wraparound: persist the accumulated map updates.
      table_cursor_ = 0;
      ++counters_.remap_table_wraps;
      if (pool_pages_ > 0) {
        plan.appends[plan.append_count++] = meta_base_ + pool_cursor_;
        pool_cursor_ = (pool_cursor_ + 1) % pool_pages_;
        plan.programmed_bytes += block_bytes;
      }
    }
  }
  return plan;
}

std::uint64_t FatRemapFtl::ExtraReadBytes(std::uint64_t lba) {
  if (lba < remapped_.size() && remapped_[lba]) {
    // The lookup goes through the in-RAM table: counted, but free of I/O.
    ++counters_.remap_table_hits;
  }
  return 0;
}

void FatRemapFtl::OnTrim(std::uint64_t lba) {
  if (lba < remapped_.size()) {
    remapped_[lba] = false;
  }
}

std::unique_ptr<FtlPolicy> MakeFtlPolicy(FtlPolicyKind kind, CleaningPolicy cleaner) {
  switch (kind) {
    case FtlPolicyKind::kLogStructured:
      return std::make_unique<LogStructuredFtl>(cleaner);
    case FtlPolicyKind::kPageDiff:
      return std::make_unique<PageDiffFtl>(cleaner);
    case FtlPolicyKind::kFatRemap:
      return std::make_unique<FatRemapFtl>();
  }
  MOBISIM_CHECK(false && "unknown FtlPolicyKind");
  return nullptr;
}

}  // namespace mobisim
