#include "src/cache/buffer_cache.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

BufferCache::BufferCache(const MemorySpec& spec, std::uint64_t capacity_bytes,
                         std::uint32_t block_bytes)
    : spec_(spec),
      capacity_blocks_(capacity_bytes / block_bytes),
      block_bytes_(block_bytes),
      meter_({{"active", spec.active_w}, {"refresh", /*computed below*/ 0.0}}) {
  MOBISIM_CHECK(block_bytes > 0);
  refresh_w_ = spec.idle_w_per_mbyte * static_cast<double>(capacity_bytes) / (1024.0 * 1024.0);
}

void BufferCache::TouchBlock(std::uint64_t lba) {
  const auto it = index_.find(lba);
  MOBISIM_DCHECK(it != index_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
}

bool BufferCache::ReadHit(std::uint64_t lba, std::uint32_t count) {
  if (!enabled()) {
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (index_.find(lba + i) == index_.end()) {
      ++misses_;
      return false;
    }
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    TouchBlock(lba + i);
  }
  ++hits_;
  return true;
}

void BufferCache::Insert(std::uint64_t lba, std::uint32_t count,
                         std::vector<std::uint64_t>* evicted_dirty) {
  if (!enabled()) {
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t block = lba + i;
    const auto it = index_.find(block);
    if (it != index_.end()) {
      TouchBlock(block);
      continue;
    }
    if (lru_.size() >= capacity_blocks_) {
      const std::uint64_t victim = lru_.back();
      lru_.pop_back();
      index_.erase(victim);
      if (dirty_.erase(victim) > 0 && evicted_dirty != nullptr) {
        evicted_dirty->push_back(victim);
      }
    }
    lru_.push_front(block);
    index_[block] = lru_.begin();
  }
}

void BufferCache::InvalidateRange(std::uint64_t lba, std::uint32_t count) {
  if (!enabled()) {
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto it = index_.find(lba + i);
    if (it == index_.end()) {
      continue;
    }
    lru_.erase(it->second);
    index_.erase(it);
    dirty_.erase(lba + i);
  }
}

void BufferCache::Clear() {
  lru_.clear();
  index_.clear();
  dirty_.clear();
}

void BufferCache::MarkDirty(std::uint64_t lba, std::uint32_t count) {
  if (!enabled()) {
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    MOBISIM_DCHECK(index_.find(lba + i) != index_.end());
    dirty_.insert(lba + i);
  }
}

std::vector<BufferCache::DirtyRange> BufferCache::DrainDirty() {
  std::vector<std::uint64_t> blocks(dirty_.begin(), dirty_.end());
  std::sort(blocks.begin(), blocks.end());
  dirty_.clear();
  std::vector<DirtyRange> ranges;
  for (const std::uint64_t block : blocks) {
    if (!ranges.empty() && ranges.back().lba + ranges.back().count == block) {
      ++ranges.back().count;
    } else {
      ranges.push_back(DirtyRange{block, 1});
    }
  }
  return ranges;
}

SimTime BufferCache::AccessTime(std::uint64_t bytes) const {
  return static_cast<SimTime>(spec_.access_overhead_us) +
         TransferTimeUs(bytes, spec_.read_kbps);
}

void BufferCache::NoteTransfer(std::uint64_t bytes) {
  meter_.Accumulate(kModeActive, AccessTime(bytes));
}

void BufferCache::AccountUntil(SimTime t) {
  if (t <= accounted_until_ || !enabled()) {
    accounted_until_ = std::max(accounted_until_, t);
    return;
  }
  meter_.AccumulateJoules(kModeRefresh, refresh_w_ * SecFromUs(t - accounted_until_));
  accounted_until_ = t;
}

}  // namespace mobisim
