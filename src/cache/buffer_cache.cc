#include "src/cache/buffer_cache.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

BufferCache::BufferCache(const MemorySpec& spec, std::uint64_t capacity_bytes,
                         std::uint32_t block_bytes)
    : spec_(spec),
      capacity_blocks_(capacity_bytes / block_bytes),
      block_bytes_(block_bytes),
      meter_({{"active", spec.active_w}, {"refresh", /*computed below*/ 0.0}}) {
  MOBISIM_CHECK(block_bytes > 0);
  refresh_w_ = spec.idle_w_per_mbyte * static_cast<double>(capacity_bytes) / (1024.0 * 1024.0);
}

void BufferCache::InvalidateRange(std::uint64_t lba, std::uint32_t count) {
  if (!enabled()) {
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    bool was_dirty = false;
    cache_.Erase(lba + i, &was_dirty);
  }
}

void BufferCache::Clear() { cache_.Clear(); }

void BufferCache::MarkDirty(std::uint64_t lba, std::uint32_t count) {
  if (!enabled()) {
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const bool present = cache_.MarkDirty(lba + i);
    MOBISIM_DCHECK(present);
    (void)present;
  }
}

std::vector<BufferCache::DirtyRange> BufferCache::DrainDirty() {
  std::vector<std::uint64_t> blocks;
  blocks.reserve(cache_.dirty_count());
  cache_.CollectDirty(&blocks);
  std::sort(blocks.begin(), blocks.end());
  cache_.ClearDirtyBits();
  std::vector<DirtyRange> ranges;
  for (const std::uint64_t block : blocks) {
    if (!ranges.empty() && ranges.back().lba + ranges.back().count == block) {
      ++ranges.back().count;
    } else {
      ranges.push_back(DirtyRange{block, 1});
    }
  }
  return ranges;
}

}  // namespace mobisim
