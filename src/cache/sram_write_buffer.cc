#include "src/cache/sram_write_buffer.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

SramWriteBuffer::SramWriteBuffer(const MemorySpec& spec, std::uint64_t capacity_bytes,
                                 std::uint32_t block_bytes)
    : spec_(spec),
      capacity_blocks_(capacity_bytes / block_bytes),
      block_bytes_(block_bytes),
      meter_({{"active", spec.active_w}, {"retention", 0.0}}) {
  MOBISIM_CHECK(block_bytes > 0);
  retention_w_ = spec.idle_w_per_mbyte * static_cast<double>(capacity_bytes) / (1024.0 * 1024.0);
}

bool SramWriteBuffer::ContainsAll(std::uint64_t lba, std::uint32_t count) const {
  if (!enabled() || count == 0) {
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (dirty_.find(lba + i) == dirty_.end()) {
      return false;
    }
  }
  return true;
}

bool SramWriteBuffer::ContainsAny(std::uint64_t lba, std::uint32_t count) const {
  if (!enabled()) {
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (dirty_.find(lba + i) != dirty_.end()) {
      return true;
    }
  }
  return false;
}

bool SramWriteBuffer::Absorb(std::uint64_t lba, std::uint32_t count) {
  if (!enabled()) {
    return false;
  }
  std::uint32_t new_blocks = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (dirty_.find(lba + i) == dirty_.end()) {
      ++new_blocks;
    }
  }
  if (dirty_.size() + new_blocks > capacity_blocks_) {
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    dirty_.insert(lba + i);
  }
  ++absorbed_;
  return true;
}

void SramWriteBuffer::Discard(std::uint64_t lba, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    dirty_.erase(lba + i);
  }
}

std::vector<SramWriteBuffer::FlushRange> SramWriteBuffer::Drain() {
  std::vector<std::uint64_t> blocks(dirty_.begin(), dirty_.end());
  std::sort(blocks.begin(), blocks.end());
  dirty_.clear();
  std::vector<FlushRange> ranges;
  for (const std::uint64_t block : blocks) {
    if (!ranges.empty() && ranges.back().lba + ranges.back().count == block) {
      ++ranges.back().count;
    } else {
      ranges.push_back(FlushRange{block, 1});
    }
  }
  if (!ranges.empty()) {
    ++flushes_;
  }
  return ranges;
}

SimTime SramWriteBuffer::AccessTime(std::uint64_t bytes) const {
  return static_cast<SimTime>(spec_.access_overhead_us) +
         TransferTimeUs(bytes, spec_.write_kbps);
}

void SramWriteBuffer::NoteTransfer(std::uint64_t bytes) {
  meter_.Accumulate(kModeActive, AccessTime(bytes));
}

void SramWriteBuffer::AccountUntil(SimTime t) {
  if (t <= accounted_until_ || !enabled()) {
    accounted_until_ = std::max(accounted_until_, t);
    return;
  }
  meter_.AccumulateJoules(kModeRetention, retention_w_ * SecFromUs(t - accounted_until_));
  accounted_until_ = t;
}

}  // namespace mobisim
