#include "src/cache/sram_write_buffer.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

SramWriteBuffer::SramWriteBuffer(const MemorySpec& spec, std::uint64_t capacity_bytes,
                                 std::uint32_t block_bytes)
    : spec_(spec),
      capacity_blocks_(capacity_bytes / block_bytes),
      block_bytes_(block_bytes),
      meter_({{"active", spec.active_w}, {"retention", 0.0}}) {
  MOBISIM_CHECK(block_bytes > 0);
  retention_w_ = spec.idle_w_per_mbyte * static_cast<double>(capacity_bytes) / (1024.0 * 1024.0);
}

bool SramWriteBuffer::Absorb(std::uint64_t lba, std::uint32_t count) {
  if (!enabled()) {
    return false;
  }
  std::uint32_t new_blocks = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!dirty_.contains(lba + i)) {
      ++new_blocks;
    }
  }
  if (dirty_.size() + new_blocks > capacity_blocks_) {
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    dirty_.insert(lba + i);
  }
  ++absorbed_;
  return true;
}

void SramWriteBuffer::Discard(std::uint64_t lba, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    dirty_.erase(lba + i);
  }
}

std::vector<SramWriteBuffer::FlushRange> SramWriteBuffer::Drain() {
  std::vector<std::uint64_t> blocks;
  blocks.reserve(dirty_.size());
  dirty_.CollectInto(&blocks);
  std::sort(blocks.begin(), blocks.end());
  dirty_.clear();
  std::vector<FlushRange> ranges;
  for (const std::uint64_t block : blocks) {
    if (!ranges.empty() && ranges.back().lba + ranges.back().count == block) {
      ++ranges.back().count;
    } else {
      ranges.push_back(FlushRange{block, 1});
    }
  }
  if (!ranges.empty()) {
    ++flushes_;
  }
  return ranges;
}

}  // namespace mobisim
