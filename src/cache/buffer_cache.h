// Write-through DRAM buffer cache.
//
// First level of the storage hierarchy (section 4.2): reads are serviced
// from here on a hit; every write goes through to the next level.  A zero
// capacity disables the cache entirely (the configuration used for the hp
// trace, which was captured below the file system's own cache).
//
// DRAM is volatile and pays a continuous refresh cost, so a bigger cache is
// not automatically better energy-wise -- that trade-off is the subject of
// the paper's section 5.4 / figure 4.
#ifndef MOBISIM_SRC_CACHE_BUFFER_CACHE_H_
#define MOBISIM_SRC_CACHE_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/device/device_spec.h"
#include "src/util/energy_meter.h"
#include "src/util/sim_time.h"

namespace mobisim {

class BufferCache {
 public:
  BufferCache(const MemorySpec& spec, std::uint64_t capacity_bytes, std::uint32_t block_bytes);

  bool enabled() const { return capacity_blocks_ > 0; }
  std::uint64_t capacity_blocks() const { return capacity_blocks_; }
  std::uint64_t cached_blocks() const { return lru_.size(); }

  // True if every block of [lba, lba+count) is cached; refreshes LRU
  // positions on a hit.  Misses leave the cache untouched (the caller
  // fetches from below and then calls Insert).
  bool ReadHit(std::uint64_t lba, std::uint32_t count);
  // Inserts blocks (write-allocate), evicting least-recently-used blocks as
  // needed.  In write-through operation victims are always clean and
  // eviction is free; in write-back operation evicted dirty blocks are
  // appended to `evicted_dirty` (if non-null) and the caller must write them
  // to the device.
  void Insert(std::uint64_t lba, std::uint32_t count,
              std::vector<std::uint64_t>* evicted_dirty = nullptr);
  void InvalidateRange(std::uint64_t lba, std::uint32_t count);
  // Drops every cached block (power loss: DRAM is volatile).  Dirty data is
  // gone too — the caller counts it as lost.  Hit/miss counters survive.
  void Clear();

  // -- Write-back support (section 4.2: "a write-back cache might avoid
  // some erasures at the cost of occasional data loss") -------------------
  // Marks cached blocks dirty; they must already be present (Insert first).
  void MarkDirty(std::uint64_t lba, std::uint32_t count);
  std::uint64_t dirty_blocks() const { return dirty_.size(); }
  // A maximal run of consecutive dirty blocks.
  struct DirtyRange {
    std::uint64_t lba = 0;
    std::uint32_t count = 0;
  };
  // Clears all dirty flags and returns the blocks coalesced into ranges
  // sorted by LBA (the periodic sync path).  Blocks stay cached.
  std::vector<DirtyRange> DrainDirty();

  // Time to move `bytes` through the DRAM, and the paired active energy.
  SimTime AccessTime(std::uint64_t bytes) const;
  // Accounts active energy for a transfer of `bytes`.
  void NoteTransfer(std::uint64_t bytes);
  // Accounts refresh energy up to `t`.
  void AccountUntil(SimTime t);
  void Finish(SimTime end) { AccountUntil(end); }

  const EnergyMeter& energy() const { return meter_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  enum Mode : std::size_t { kModeActive = 0, kModeRefresh };

  void TouchBlock(std::uint64_t lba);

  MemorySpec spec_;
  std::uint64_t capacity_blocks_;
  std::uint32_t block_bytes_;
  EnergyMeter meter_;
  SimTime accounted_until_ = 0;
  double refresh_w_ = 0.0;

  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
  std::unordered_set<std::uint64_t> dirty_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_CACHE_BUFFER_CACHE_H_
