// Write-through DRAM buffer cache.
//
// First level of the storage hierarchy (section 4.2): reads are serviced
// from here on a hit; every write goes through to the next level.  A zero
// capacity disables the cache entirely (the configuration used for the hp
// trace, which was captured below the file system's own cache).
//
// DRAM is volatile and pays a continuous refresh cost, so a bigger cache is
// not automatically better energy-wise -- that trade-off is the subject of
// the paper's section 5.4 / figure 4.
#ifndef MOBISIM_SRC_CACHE_BUFFER_CACHE_H_
#define MOBISIM_SRC_CACHE_BUFFER_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/device/device_spec.h"
#include "src/util/block_hash.h"
#include "src/util/energy_meter.h"
#include "src/util/sim_time.h"

namespace mobisim {

class BufferCache {
 public:
  BufferCache(const MemorySpec& spec, std::uint64_t capacity_bytes, std::uint32_t block_bytes);

  bool enabled() const { return capacity_blocks_ > 0; }
  std::uint64_t capacity_blocks() const { return capacity_blocks_; }
  std::uint64_t cached_blocks() const { return cache_.size(); }

  // True if every block of [lba, lba+count) is cached; refreshes LRU
  // positions on a hit.  Misses leave the cache untouched (the caller
  // fetches from below and then calls Insert).  Inline: probed once per
  // simulated read.
  bool ReadHit(std::uint64_t lba, std::uint32_t count) {
    if (!enabled()) {
      return false;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!cache_.Contains(lba + i)) {
        ++misses_;
        return false;
      }
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      cache_.TouchIfPresent(lba + i);
    }
    ++hits_;
    return true;
  }
  // Inserts blocks (write-allocate), evicting least-recently-used blocks as
  // needed.  In write-through operation victims are always clean and
  // eviction is free; in write-back operation evicted dirty blocks are
  // appended to `evicted_dirty` (if non-null) and the caller must write them
  // to the device.
  void Insert(std::uint64_t lba, std::uint32_t count,
              std::vector<std::uint64_t>* evicted_dirty = nullptr) {
    if (!enabled()) {
      return;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t block = lba + i;
      if (cache_.TouchIfPresent(block)) {
        continue;
      }
      if (cache_.size() >= capacity_blocks_) {
        bool was_dirty = false;
        const std::uint64_t victim = cache_.EvictLru(&was_dirty);
        if (was_dirty && evicted_dirty != nullptr) {
          evicted_dirty->push_back(victim);
        }
      }
      cache_.InsertFront(block);
    }
  }
  void InvalidateRange(std::uint64_t lba, std::uint32_t count);
  // Drops every cached block (power loss: DRAM is volatile).  Dirty data is
  // gone too — the caller counts it as lost.  Hit/miss counters survive.
  void Clear();

  // -- Write-back support (section 4.2: "a write-back cache might avoid
  // some erasures at the cost of occasional data loss") -------------------
  // Marks cached blocks dirty; they must already be present (Insert first).
  void MarkDirty(std::uint64_t lba, std::uint32_t count);
  std::uint64_t dirty_blocks() const { return cache_.dirty_count(); }
  // A maximal run of consecutive dirty blocks.
  struct DirtyRange {
    std::uint64_t lba = 0;
    std::uint32_t count = 0;
  };
  // Clears all dirty flags and returns the blocks coalesced into ranges
  // sorted by LBA (the periodic sync path).  Blocks stay cached.
  std::vector<DirtyRange> DrainDirty();

  // Time to move `bytes` through the DRAM, and the paired active energy.
  SimTime AccessTime(std::uint64_t bytes) const {
    return static_cast<SimTime>(spec_.access_overhead_us) +
           TransferTimeUs(bytes, spec_.read_kbps);
  }
  // Accounts active energy for a transfer of `bytes`.
  void NoteTransfer(std::uint64_t bytes) { meter_.Accumulate(kModeActive, AccessTime(bytes)); }
  // Accounts refresh energy up to `t`.
  void AccountUntil(SimTime t) {
    if (t <= accounted_until_ || !enabled()) {
      accounted_until_ = std::max(accounted_until_, t);
      return;
    }
    meter_.AccumulateJoules(kModeRefresh, refresh_w_ * SecFromUs(t - accounted_until_));
    accounted_until_ = t;
  }
  void Finish(SimTime end) { AccountUntil(end); }

  const EnergyMeter& energy() const { return meter_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  enum Mode : std::size_t { kModeActive = 0, kModeRefresh };

  MemorySpec spec_;
  std::uint64_t capacity_blocks_;
  std::uint32_t block_bytes_;
  EnergyMeter meter_;
  SimTime accounted_until_ = 0;
  double refresh_w_ = 0.0;

  // Index, recency order, and dirty bits in one flat structure (see
  // block_hash.h); eviction order is exact LRU, identical to the previous
  // list-based implementation.
  LruBlockMap cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_CACHE_BUFFER_CACHE_H_
