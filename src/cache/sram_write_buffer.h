// Battery-backed SRAM write buffer (Quantum Daytona style).
//
// Absorbs writes so that a spun-down disk can stay asleep (the paper's
// deferred spin-up policy, sections 2 and 5.5).  Contents survive a crash,
// so synchronous writes that fit become asynchronous with respect to the
// disk.  When the buffer fills, the accumulated dirty blocks are flushed to
// the device and the triggering write waits.  Recently written blocks are
// readable out of the buffer.
#ifndef MOBISIM_SRC_CACHE_SRAM_WRITE_BUFFER_H_
#define MOBISIM_SRC_CACHE_SRAM_WRITE_BUFFER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/device/device_spec.h"
#include "src/util/block_hash.h"
#include "src/util/energy_meter.h"
#include "src/util/sim_time.h"

namespace mobisim {

class SramWriteBuffer {
 public:
  SramWriteBuffer(const MemorySpec& spec, std::uint64_t capacity_bytes,
                  std::uint32_t block_bytes);

  bool enabled() const { return capacity_blocks_ > 0; }
  std::uint64_t capacity_blocks() const { return capacity_blocks_; }
  std::uint64_t dirty_blocks() const { return dirty_.size(); }

  // True if every block of the range is buffered (read can be serviced
  // here).  Inline: probed once per simulated operation.
  bool ContainsAll(std::uint64_t lba, std::uint32_t count) const {
    if (!enabled() || count == 0) {
      return false;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      if (!dirty_.contains(lba + i)) {
        return false;
      }
    }
    return true;
  }
  // True if any block of the range is buffered (read below would see stale
  // data; the caller must drain first).
  bool ContainsAny(std::uint64_t lba, std::uint32_t count) const {
    if (!enabled()) {
      return false;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      if (dirty_.contains(lba + i)) {
        return true;
      }
    }
    return false;
  }

  // Absorbs a write if the whole range fits (blocks already present are
  // free).  Returns false -- leaving the buffer untouched -- when it does
  // not fit and the caller must flush first.
  bool Absorb(std::uint64_t lba, std::uint32_t count);

  // Removes blocks covered by a file deletion; they no longer need flushing.
  void Discard(std::uint64_t lba, std::uint32_t count);

  // A maximal run of consecutive dirty blocks, flushed as one device write.
  struct FlushRange {
    std::uint64_t lba = 0;
    std::uint32_t count = 0;
  };
  // Empties the buffer, returning its contents coalesced into ranges sorted
  // by LBA.
  std::vector<FlushRange> Drain();

  SimTime AccessTime(std::uint64_t bytes) const {
    return static_cast<SimTime>(spec_.access_overhead_us) +
           TransferTimeUs(bytes, spec_.write_kbps);
  }
  void NoteTransfer(std::uint64_t bytes) { meter_.Accumulate(kModeActive, AccessTime(bytes)); }
  void AccountUntil(SimTime t) {
    if (t <= accounted_until_ || !enabled()) {
      accounted_until_ = std::max(accounted_until_, t);
      return;
    }
    meter_.AccumulateJoules(kModeRetention, retention_w_ * SecFromUs(t - accounted_until_));
    accounted_until_ = t;
  }
  void Finish(SimTime end) { AccountUntil(end); }

  const EnergyMeter& energy() const { return meter_; }
  std::uint64_t absorbed_writes() const { return absorbed_; }
  std::uint64_t flushes() const { return flushes_; }

 private:
  enum Mode : std::size_t { kModeActive = 0, kModeRetention };

  MemorySpec spec_;
  std::uint64_t capacity_blocks_;
  std::uint32_t block_bytes_;
  EnergyMeter meter_;
  SimTime accounted_until_ = 0;
  double retention_w_ = 0.0;

  FlatBlockSet dirty_;
  std::uint64_t absorbed_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_CACHE_SRAM_WRITE_BUFFER_H_
