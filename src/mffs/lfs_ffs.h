// Log-structured flash file system (Kawaguchi, Nishioka & Motoda, USENIX
// '95), which section 6 of the paper describes as the fix for MFFS 2.00's
// pathologies: data and inode blocks are appended to a segmented log on the
// flash card, an in-memory inode map makes reads O(1) (no FAT-chain walks,
// no rewrite anomaly), and segments are cleaned LFS-style.
//
// Implemented as a TestbedDevice so the section-3 micro-benchmarks can run
// MFFS 2.00 and this design side by side (bench_related_lfs_ffs).
#ifndef MOBISIM_SRC_MFFS_LFS_FFS_H_
#define MOBISIM_SRC_MFFS_LFS_FFS_H_

#include <memory>
#include <unordered_map>

#include "src/device/device_spec.h"
#include "src/flash/segment_manager.h"
#include "src/mffs/testbed_device.h"

namespace mobisim {

struct LfsFfsConfig {
  DeviceSpec card;  // raw medium speeds (IntelCardDatasheet())
  std::uint64_t capacity_bytes = 10ull * 1024 * 1024;
  std::uint32_t block_bytes = 512;
  // Software overhead per operation (syscall + log bookkeeping).
  double fs_overhead_ms = 1.0;
  // One inode/summary block is logged for every `blocks_per_inode_update`
  // data blocks written (LFS segment-summary amortization).
  std::uint32_t blocks_per_inode_update = 16;
  CleaningPolicy policy = CleaningPolicy::kCostBenefit;
  bool separate_cleaning_segment = true;
};

LfsFfsConfig DefaultLfsFfsConfig();

class LfsFfsTestbedDevice : public TestbedDevice {
 public:
  explicit LfsFfsTestbedDevice(const LfsFfsConfig& config);

  double WriteChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                      std::uint64_t file_total_bytes, double data_ratio) override;
  double ReadChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                     std::uint64_t file_total_bytes, double data_ratio) override;
  void DeleteFile(std::uint32_t file_id) override;
  void Format() override;
  void IdleCleanup() override;
  std::string name() const override { return "intel-lfs-ffs"; }

  std::uint64_t cleaning_copies() const { return cleaning_copies_; }
  std::uint64_t segment_erases() const { return segment_erases_; }

 private:
  struct FileState {
    std::uint64_t first_lba = 0;
    std::uint64_t lba_blocks = 0;
  };

  FileState& GetFile(std::uint32_t file_id, std::uint64_t file_total_bytes);
  // Logs `blocks` blocks (data at the given file/offset, or inode blocks);
  // returns cleaning cost in ms.
  double LogBlocks(const FileState& file, std::uint64_t start_block, std::uint64_t blocks);

  LfsFfsConfig config_;
  std::unique_ptr<SegmentManager> segments_;
  std::unordered_map<std::uint32_t, FileState> files_;
  std::uint64_t next_lba_ = 0;
  std::uint64_t inode_lba_ = 0;       // rotating inode-block addresses
  std::uint64_t inode_accumulator_ = 0;
  std::uint64_t cleaning_copies_ = 0;
  std::uint64_t segment_erases_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_MFFS_LFS_FFS_H_
