// File-level device behaviour models for the hardware micro-benchmarks.
//
// These reproduce the paper's section 3 testbed (an OmniBook 300 under DOS):
// sequences of file reads and writes against a real device plus its file
// system and compression software.  Unlike the block-level StorageDevice
// models, these operate at file granularity and include the *software*
// behaviours the paper measured -- most notably the MFFS 2.00 anomaly where
// the cost of appending to a file grows linearly with the data already
// written (figure 1), and cleaning pressure as a card fills (figure 3).
#ifndef MOBISIM_SRC_MFFS_TESTBED_DEVICE_H_
#define MOBISIM_SRC_MFFS_TESTBED_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/device/device_spec.h"
#include "src/flash/segment_manager.h"
#include "src/mffs/compression.h"
#include "src/util/rng.h"

namespace mobisim {

class TestbedDevice {
 public:
  virtual ~TestbedDevice() = default;

  // Cost (ms) of writing `bytes` at `offset` of file `file_id`, whose
  // eventual full size is `file_total_bytes` (known to the benchmark).
  // `data_ratio` is the compressibility of the payload (1.0 = random).
  virtual double WriteChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                              std::uint64_t file_total_bytes, double data_ratio) = 0;
  virtual double ReadChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                             std::uint64_t file_total_bytes, double data_ratio) = 0;
  virtual void DeleteFile(std::uint32_t file_id) = 0;
  // Restores the device to its freshly-erased benchmark state.
  virtual void Format() = 0;
  // Background housekeeping the device performs while the system is idle
  // (free of charge to subsequent operations).  No-op by default.
  virtual void IdleCleanup() {}
  virtual std::string name() const = 0;
};

// Conventional device (magnetic disk or flash disk emulator) under DOS,
// optionally with DoubleSpace/Stacker-style compression.  The disk is taken
// to be continuously spinning, as in the paper's benchmarks.
class SimpleTestbedDevice : public TestbedDevice {
 public:
  SimpleTestbedDevice(const DeviceSpec& spec, const CompressionModel& compression);

  double WriteChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                      std::uint64_t file_total_bytes, double data_ratio) override;
  double ReadChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                     std::uint64_t file_total_bytes, double data_ratio) override;
  void DeleteFile(std::uint32_t file_id) override;
  void Format() override;
  std::string name() const override { return spec_.name; }

 private:
  DeviceSpec spec_;
  CompressionModel compression_;
  std::uint32_t last_file_ = ~std::uint32_t{0};
  std::uint64_t last_end_offset_ = 0;
};

// Intel flash card under the Microsoft Flash File System 2.00.
struct MffsConfig {
  DeviceSpec card;  // raw medium speeds (IntelCardDatasheet())
  std::uint64_t capacity_bytes = 10ull * 1024 * 1024;
  std::uint32_t block_bytes = 512;
  // Fixed file-system overhead per operation (FAT-style chain bookkeeping).
  double fs_overhead_ms = 3.0;
  // Marginal cost per Kbyte that reaches the flash, folding in the raw write
  // and MFFS per-byte software overhead (derived from Table 1: ~44 KB/s
  // marginal on the 25-MHz host).
  double write_ms_per_kb = 22.5;
  // The MFFS 2.00 anomaly: each append also rewrites this fraction of the
  // file's already-written (user) data, so write latency grows linearly with
  // file size (figure 1).
  double rewrite_fraction = 0.009;
  // Reads walk the file's block chain: per-Kbyte-of-preceding-data cost.
  double read_chain_ms_per_kb = 0.2;
  double read_overhead_ms = 5.8;
  CompressionModel compression;  // MFFS compresses unconditionally
};

class MffsTestbedDevice : public TestbedDevice {
 public:
  explicit MffsTestbedDevice(const MffsConfig& config);

  double WriteChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                      std::uint64_t file_total_bytes, double data_ratio) override;
  double ReadChunkMs(std::uint32_t file_id, std::uint64_t offset, std::uint32_t bytes,
                     std::uint64_t file_total_bytes, double data_ratio) override;
  void DeleteFile(std::uint32_t file_id) override;
  void Format() override;
  std::string name() const override { return "intel-mffs2.00"; }

  // MFFS cleans asynchronously when the system is idle: reclaims every
  // segment with invalid data, free of charge to the subsequent operations.
  // Benchmarks call this between setup and measurement phases.
  void IdleCleanup() override;

  std::uint64_t cleaning_copies() const { return cleaning_copies_; }
  std::uint64_t segment_erases() const { return segment_erases_; }

 private:
  struct FileState {
    std::uint64_t first_lba = 0;
    std::uint64_t lba_blocks = 0;    // reserved logical range
    std::uint64_t user_bytes = 0;    // uncompressed file size so far
    std::uint64_t stored_bytes = 0;  // compressed bytes currently stored
  };

  FileState& GetFile(std::uint32_t file_id, std::uint64_t file_total_bytes);
  // Writes `blocks` physical blocks (cleaning on demand).  Appends extend
  // the file's block range; overwrites start at the block holding
  // `user_offset`; anomaly rewrites (user_offset < 0 semantics via
  // `is_rewrite`) cycle through existing blocks.  Returns cleaning cost (ms).
  double WritePhysicalBlocks(FileState& file, std::uint64_t blocks, bool extend,
                             std::uint64_t user_offset, bool is_rewrite,
                             bool scatter_rewrites);

  MffsConfig config_;
  std::unique_ptr<SegmentManager> segments_;
  std::unordered_map<std::uint32_t, FileState> files_;
  std::uint64_t next_lba_ = 0;
  std::uint64_t cleaning_copies_ = 0;
  std::uint64_t segment_erases_ = 0;
  Rng rewrite_rng_{0x4d46465332ull};  // placement of scattered anomaly rewrites
  std::uint64_t rotor_ = 0;           // placement of sequential (append-time) rewrites
};

MffsConfig DefaultMffsConfig();

}  // namespace mobisim

#endif  // MOBISIM_SRC_MFFS_TESTBED_DEVICE_H_
