#include "src/mffs/microbench.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

namespace {

// File ids used by the benchmarks start high to stay clear of caller ids.
constexpr std::uint32_t kBenchFileBase = 1u << 20;

}  // namespace

MicroBenchResult BenchWriteFiles(TestbedDevice& device, std::uint64_t file_bytes,
                                 std::uint32_t chunk_bytes, std::uint64_t total_bytes,
                                 double data_ratio) {
  MOBISIM_CHECK(file_bytes > 0 && chunk_bytes > 0);
  MicroBenchResult result;
  std::uint32_t file_id = kBenchFileBase;
  std::uint64_t written = 0;
  while (written < total_bytes) {
    for (std::uint64_t offset = 0; offset < file_bytes && written < total_bytes;
         offset += chunk_bytes) {
      const std::uint32_t bytes =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(chunk_bytes, file_bytes - offset));
      const double ms = device.WriteChunkMs(file_id, offset, bytes, file_bytes, data_ratio);
      result.latency_ms.push_back(ms);
      result.total_ms += ms;
      written += bytes;
    }
    ++file_id;
  }
  result.total_bytes = written;
  return result;
}

MicroBenchResult BenchReadFiles(TestbedDevice& device, std::uint64_t file_bytes,
                                std::uint32_t chunk_bytes, std::uint64_t total_bytes,
                                double data_ratio) {
  MOBISIM_CHECK(file_bytes > 0 && chunk_bytes > 0);
  MicroBenchResult result;
  std::uint32_t file_id = kBenchFileBase;
  std::uint64_t read = 0;
  while (read < total_bytes) {
    for (std::uint64_t offset = 0; offset < file_bytes && read < total_bytes;
         offset += chunk_bytes) {
      const std::uint32_t bytes =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(chunk_bytes, file_bytes - offset));
      const double ms = device.ReadChunkMs(file_id, offset, bytes, file_bytes, data_ratio);
      result.latency_ms.push_back(ms);
      result.total_ms += ms;
      read += bytes;
    }
    ++file_id;
  }
  result.total_bytes = read;
  return result;
}

std::vector<double> BenchOverwritePasses(TestbedDevice& device, std::uint64_t live_bytes,
                                         std::uint64_t write_bytes, std::uint32_t chunk_bytes,
                                         std::uint32_t passes, double data_ratio, Rng& rng,
                                         std::uint64_t live_file_bytes) {
  MOBISIM_CHECK(live_bytes >= chunk_bytes);
  MOBISIM_CHECK(live_file_bytes >= chunk_bytes);
  // Lay down the live data as ordinary files, each written sequentially.
  // (The paper's figure 3 experiment fills the card with live data, then
  // issues 4-Kbyte overwrites at random positions within it.)
  const std::uint32_t file_base = kBenchFileBase + (1u << 10);
  const std::uint32_t file_count = static_cast<std::uint32_t>(
      (live_bytes + live_file_bytes - 1) / live_file_bytes);
  for (std::uint32_t f = 0; f < file_count; ++f) {
    const std::uint64_t file_bytes =
        std::min<std::uint64_t>(live_file_bytes, live_bytes - f * live_file_bytes);
    for (std::uint64_t offset = 0; offset < file_bytes; offset += chunk_bytes) {
      const std::uint32_t bytes = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk_bytes, file_bytes - offset));
      device.WriteChunkMs(file_base + f, offset, bytes, file_bytes, data_ratio);
    }
  }

  // The system sits idle between setup and measurement; MFFS-style devices
  // use the time to reclaim setup garbage.
  device.IdleCleanup();

  std::vector<double> pass_kbps;
  const std::uint64_t chunk_slots = live_bytes / chunk_bytes;
  const std::uint64_t chunks_per_file = live_file_bytes / chunk_bytes;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    double pass_ms = 0.0;
    std::uint64_t written = 0;
    while (written < write_bytes) {
      const std::uint64_t slot =
          static_cast<std::uint64_t>(rng.UniformInt(0, static_cast<std::int64_t>(chunk_slots) - 1));
      const std::uint32_t file_id = file_base + static_cast<std::uint32_t>(slot / chunks_per_file);
      const std::uint64_t offset = (slot % chunks_per_file) * chunk_bytes;
      pass_ms += device.WriteChunkMs(file_id, offset, chunk_bytes, live_file_bytes, data_ratio);
      written += chunk_bytes;
    }
    pass_kbps.push_back(static_cast<double>(written) / 1024.0 / (pass_ms / 1000.0));
  }
  return pass_kbps;
}

}  // namespace mobisim
