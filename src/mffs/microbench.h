// Software micro-benchmarks replicating the paper's section 3 methodology:
// repeatedly read and write sequences of files in fixed-size chunks and
// report the throughput obtained, including per-chunk latency series for the
// figure reproductions.
#ifndef MOBISIM_SRC_MFFS_MICROBENCH_H_
#define MOBISIM_SRC_MFFS_MICROBENCH_H_

#include <cstdint>
#include <vector>

#include "src/mffs/testbed_device.h"
#include "src/util/rng.h"

namespace mobisim {

struct MicroBenchResult {
  double total_ms = 0.0;
  std::uint64_t total_bytes = 0;
  // Per-chunk latency (ms) in issue order.
  std::vector<double> latency_ms;

  double throughput_kbps() const {
    return total_ms <= 0.0 ? 0.0
                           : static_cast<double>(total_bytes) / 1024.0 / (total_ms / 1000.0);
  }
};

// Writes files of `file_bytes` (sequentially, `chunk_bytes` at a time) until
// `total_bytes` have been written; a fresh file id per file.  Matches the
// paper's write benchmark for Table 1 and figure 1.
MicroBenchResult BenchWriteFiles(TestbedDevice& device, std::uint64_t file_bytes,
                                 std::uint32_t chunk_bytes, std::uint64_t total_bytes,
                                 double data_ratio);

// Reads back the same layout (files must have been written first).
MicroBenchResult BenchReadFiles(TestbedDevice& device, std::uint64_t file_bytes,
                                std::uint32_t chunk_bytes, std::uint64_t total_bytes,
                                double data_ratio);

// Figure 3: `passes` overwrites of `write_bytes` each, in `chunk_bytes`
// units at random positions within `live_bytes` of existing data on a card.
// The live data is laid out as files of `live_file_bytes` (1 MB by default,
// as a DOS file system full of ordinary files would look).  Returns one
// throughput figure per pass.
std::vector<double> BenchOverwritePasses(TestbedDevice& device, std::uint64_t live_bytes,
                                         std::uint64_t write_bytes, std::uint32_t chunk_bytes,
                                         std::uint32_t passes, double data_ratio, Rng& rng,
                                         std::uint64_t live_file_bytes = 1024 * 1024);

}  // namespace mobisim

#endif  // MOBISIM_SRC_MFFS_MICROBENCH_H_
