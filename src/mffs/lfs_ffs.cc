#include "src/mffs/lfs_ffs.h"

#include <algorithm>

#include "src/device/device_catalog.h"
#include "src/util/check.h"
#include "src/util/sim_time.h"

namespace mobisim {

namespace {

double TransferMs(std::uint64_t bytes, double kbps) {
  return MsFromUs(TransferTimeUs(bytes, kbps));
}

}  // namespace

LfsFfsConfig DefaultLfsFfsConfig() {
  LfsFfsConfig config;
  config.card = IntelCardDatasheet();
  return config;
}

LfsFfsTestbedDevice::LfsFfsTestbedDevice(const LfsFfsConfig& config) : config_(config) {
  Format();
}

void LfsFfsTestbedDevice::Format() {
  SegmentManagerConfig seg;
  seg.capacity_bytes = config_.capacity_bytes;
  seg.segment_bytes = config_.card.erase_segment_bytes;
  seg.block_bytes = config_.block_bytes;
  seg.logical_blocks = 8ull * (config_.capacity_bytes / config_.block_bytes);
  seg.separate_cleaning_segment = config_.separate_cleaning_segment;
  seg.cleaning_policy = config_.policy;
  segments_ = std::make_unique<SegmentManager>(seg);
  files_.clear();
  next_lba_ = 0;
  // Inode blocks live in a reserved slice at the top of the logical space.
  inode_lba_ = seg.logical_blocks - 1;
  inode_accumulator_ = 0;
  cleaning_copies_ = 0;
  segment_erases_ = 0;
}

LfsFfsTestbedDevice::FileState& LfsFfsTestbedDevice::GetFile(
    std::uint32_t file_id, std::uint64_t file_total_bytes) {
  auto it = files_.find(file_id);
  if (it != files_.end()) {
    return it->second;
  }
  FileState state;
  state.first_lba = next_lba_;
  state.lba_blocks =
      (std::max<std::uint64_t>(file_total_bytes, config_.block_bytes) + config_.block_bytes -
       1) /
      config_.block_bytes;
  next_lba_ += state.lba_blocks;
  MOBISIM_CHECK(next_lba_ < 7ull * (config_.capacity_bytes / config_.block_bytes));
  return files_.emplace(file_id, state).first->second;
}

double LfsFfsTestbedDevice::LogBlocks(const FileState& file, std::uint64_t start_block,
                                      std::uint64_t blocks) {
  double cost_ms = 0.0;
  const double copy_block_ms = TransferMs(config_.block_bytes, config_.card.write_kbps) +
                               TransferMs(config_.block_bytes, config_.card.read_kbps);
  for (std::uint64_t i = 0; i < blocks; ++i) {
    // Keep erased segments for the log head, the cleaning destination, and
    // one in reserve (cleaning copies may open a fresh segment mid-clean).
    while (segments_->erased_segment_count() < 3) {
      const std::uint32_t victim = segments_->PickVictim();
      MOBISIM_CHECK(victim != SegmentManager::kNoSegment && "LFS-FFS card is wedged (full)");
      const std::uint32_t copied = segments_->CleanSegment(victim);
      cleaning_copies_ += copied;
      ++segment_erases_;
      cost_ms += static_cast<double>(copied) * copy_block_ms + config_.card.erase_ms_per_segment;
    }
    const std::uint64_t lba = file.first_lba + ((start_block + i) % file.lba_blocks);
    segments_->WriteBlock(lba);
  }
  return cost_ms;
}

double LfsFfsTestbedDevice::WriteChunkMs(std::uint32_t file_id, std::uint64_t offset,
                                         std::uint32_t bytes, std::uint64_t file_total_bytes,
                                         double data_ratio) {
  (void)data_ratio;  // no compression layer: data is logged raw
  FileState& file = GetFile(file_id, file_total_bytes);
  const std::uint64_t blocks = (bytes + config_.block_bytes - 1) / config_.block_bytes;
  double cost_ms = config_.fs_overhead_ms + TransferMs(bytes, config_.card.write_kbps);
  cost_ms += LogBlocks(file, offset / config_.block_bytes, blocks);

  // Amortized inode/segment-summary logging.
  inode_accumulator_ += blocks;
  while (inode_accumulator_ >= config_.blocks_per_inode_update) {
    inode_accumulator_ -= config_.blocks_per_inode_update;
    FileState inode_file;
    inode_file.first_lba = inode_lba_;
    inode_file.lba_blocks = 1;
    cost_ms += TransferMs(config_.block_bytes, config_.card.write_kbps);
    cost_ms += LogBlocks(inode_file, 0, 1);
  }
  return cost_ms;
}

double LfsFfsTestbedDevice::ReadChunkMs(std::uint32_t file_id, std::uint64_t offset,
                                        std::uint32_t bytes, std::uint64_t file_total_bytes,
                                        double data_ratio) {
  (void)offset;
  (void)data_ratio;
  GetFile(file_id, file_total_bytes);
  // In-memory inode map: constant per-op cost plus the raw transfer.
  return config_.fs_overhead_ms + TransferMs(bytes, config_.card.read_kbps);
}

void LfsFfsTestbedDevice::DeleteFile(std::uint32_t file_id) {
  const auto it = files_.find(file_id);
  if (it == files_.end()) {
    return;
  }
  for (std::uint64_t i = 0; i < it->second.lba_blocks; ++i) {
    if (segments_->IsMapped(it->second.first_lba + i)) {
      segments_->TrimBlock(it->second.first_lba + i);
    }
  }
  files_.erase(it);
}

void LfsFfsTestbedDevice::IdleCleanup() {
  while (true) {
    const std::uint32_t victim = segments_->PickVictim();
    if (victim == SegmentManager::kNoSegment ||
        segments_->free_slots() < segments_->VictimLiveBlocks(victim)) {
      return;
    }
    cleaning_copies_ += segments_->CleanSegment(victim);
    ++segment_erases_;
  }
}

}  // namespace mobisim
