// On-the-fly compression model (DoubleSpace / Stacker / MFFS built-in).
//
// The paper's micro-benchmarks run each device with and without compression
// (the Intel card's MFFS 2.00 compresses unconditionally).  We model
// compression as a CPU-side rate plus a storage-ratio change: compressing
// halves what hits the medium (the paper's Moby-Dick text compressed ~2:1)
// but costs compressor/decompressor time on the 25-MHz OmniBook.  Small
// whole-file writes are buffered by DoubleSpace/Stacker and flushed in
// batches, which is why compressed small-file writes beat the raw medium.
#ifndef MOBISIM_SRC_MFFS_COMPRESSION_H_
#define MOBISIM_SRC_MFFS_COMPRESSION_H_

#include <cstdint>

namespace mobisim {

struct CompressionModel {
  bool enabled = false;
  // Stored bytes per input byte for compressible data (Moby-Dick ~0.5).
  double ratio = 0.5;
  // Compressor / decompressor throughput on the host CPU, Kbytes/s.
  double compress_kbps = 260.0;
  double decompress_kbps = 150.0;
  // Whole files up to this size are absorbed by the compressor's write-behind
  // buffer: their cost is CPU-only.
  std::uint32_t buffered_file_bytes = 8 * 1024;
  // One-time cost of opening a compressed file for reading (DoubleSpace pays
  // this; Stacker's is negligible).
  double open_overhead_ms = 0.0;
  // Per-chunk driver overhead for non-buffered compressed writes (Stacker on
  // the PCMCIA flash disk pays a large one).
  double chunk_overhead_ms = 0.0;

  // Bytes that reach the medium for `bytes` of input with the given
  // compressibility (1.0 = incompressible).
  std::uint64_t StoredBytes(std::uint64_t bytes, double data_ratio) const {
    if (!enabled) {
      return bytes;
    }
    return static_cast<std::uint64_t>(static_cast<double>(bytes) * data_ratio);
  }
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_MFFS_COMPRESSION_H_
