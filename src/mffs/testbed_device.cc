#include "src/mffs/testbed_device.h"

#include <algorithm>
#include <unordered_set>

#include "src/device/device_catalog.h"
#include "src/util/check.h"
#include "src/util/sim_time.h"

namespace mobisim {

namespace {

double TransferMs(std::uint64_t bytes, double kbps) {
  return MsFromUs(TransferTimeUs(bytes, kbps));
}

}  // namespace

// --------------------------- SimpleTestbedDevice ----------------------------

SimpleTestbedDevice::SimpleTestbedDevice(const DeviceSpec& spec,
                                         const CompressionModel& compression)
    : spec_(spec), compression_(compression) {}

double SimpleTestbedDevice::WriteChunkMs(std::uint32_t file_id, std::uint64_t offset,
                                         std::uint32_t bytes, std::uint64_t file_total_bytes,
                                         double data_ratio) {
  const bool sequential = file_id == last_file_ && offset == last_end_offset_;
  last_file_ = file_id;
  last_end_offset_ = offset + bytes;

  if (compression_.enabled) {
    const double cpu_ms = TransferMs(bytes, compression_.compress_kbps);
    if (file_total_bytes <= compression_.buffered_file_bytes) {
      // Small whole-file writes are absorbed by the compressor's
      // write-behind buffering (section 3: "buffered and written to disk in
      // batches"); only the CPU cost is visible.
      return cpu_ms;
    }
    const std::uint64_t stored = compression_.StoredBytes(bytes, data_ratio);
    const double overhead_ms = sequential ? 0.0 : spec_.write_overhead_ms;
    return cpu_ms + overhead_ms + compression_.chunk_overhead_ms +
           TransferMs(stored, spec_.write_kbps);
  }
  const double overhead_ms = sequential ? 0.0 : spec_.write_overhead_ms;
  return overhead_ms + TransferMs(bytes, spec_.write_kbps);
}

double SimpleTestbedDevice::ReadChunkMs(std::uint32_t file_id, std::uint64_t offset,
                                        std::uint32_t bytes, std::uint64_t file_total_bytes,
                                        double data_ratio) {
  (void)file_total_bytes;
  const bool sequential = file_id == last_file_ && offset == last_end_offset_;
  const bool first_access_of_file = file_id != last_file_;
  last_file_ = file_id;
  last_end_offset_ = offset + bytes;

  const double overhead_ms = sequential ? 0.0 : spec_.read_overhead_ms;
  if (compression_.enabled) {
    const std::uint64_t stored = compression_.StoredBytes(bytes, data_ratio);
    const double open_ms = first_access_of_file ? compression_.open_overhead_ms : 0.0;
    return overhead_ms + open_ms + TransferMs(stored, spec_.read_kbps) +
           TransferMs(bytes, compression_.decompress_kbps);
  }
  return overhead_ms + TransferMs(bytes, spec_.read_kbps);
}

void SimpleTestbedDevice::DeleteFile(std::uint32_t file_id) { (void)file_id; }

void SimpleTestbedDevice::Format() {
  last_file_ = ~std::uint32_t{0};
  last_end_offset_ = 0;
}

// ---------------------------- MffsTestbedDevice -----------------------------

MffsConfig DefaultMffsConfig() {
  MffsConfig config;
  config.card = IntelCardDatasheet();
  config.compression.enabled = true;  // MFFS 2.00 compresses unconditionally
  config.compression.ratio = 0.5;
  config.compression.decompress_kbps = 714.0;
  return config;
}

MffsTestbedDevice::MffsTestbedDevice(const MffsConfig& config) : config_(config) {
  Format();
}

void MffsTestbedDevice::Format() {
  SegmentManagerConfig seg;
  seg.capacity_bytes = config_.capacity_bytes;
  seg.segment_bytes = config_.card.erase_segment_bytes;
  seg.block_bytes = config_.block_bytes;
  // Generous logical space: file create/delete churn burns addresses.
  seg.logical_blocks = 8ull * (config_.capacity_bytes / config_.block_bytes);
  segments_ = std::make_unique<SegmentManager>(seg);
  files_.clear();
  next_lba_ = 0;
  cleaning_copies_ = 0;
  segment_erases_ = 0;
  rewrite_rng_ = Rng(0x4d46465332ull);
  rotor_ = 0;
}

MffsTestbedDevice::FileState& MffsTestbedDevice::GetFile(std::uint32_t file_id,
                                                         std::uint64_t file_total_bytes) {
  auto it = files_.find(file_id);
  if (it != files_.end()) {
    return it->second;
  }
  FileState state;
  state.first_lba = next_lba_;
  state.lba_blocks =
      (std::max<std::uint64_t>(file_total_bytes, config_.block_bytes) + config_.block_bytes - 1) /
      config_.block_bytes;
  next_lba_ += state.lba_blocks;
  MOBISIM_CHECK(next_lba_ <= 8ull * (config_.capacity_bytes / config_.block_bytes));
  return files_.emplace(file_id, state).first->second;
}

double MffsTestbedDevice::WritePhysicalBlocks(FileState& file, std::uint64_t blocks,
                                              bool extend, std::uint64_t user_offset,
                                              bool is_rewrite, bool scatter_rewrites) {
  double cost_ms = 0.0;
  const double copy_block_ms = TransferMs(config_.block_bytes, config_.card.write_kbps) +
                               TransferMs(config_.block_bytes, config_.card.read_kbps);
  std::uint64_t stored_blocks =
      (file.stored_bytes + config_.block_bytes - 1) / config_.block_bytes;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    // Keep one segment's worth of erased blocks in hand: cleaning a victim
    // requires room to relocate its live blocks.
    while (segments_->free_slots() <= segments_->blocks_per_segment()) {
      const std::uint32_t victim = segments_->PickVictim();
      MOBISIM_CHECK(victim != SegmentManager::kNoSegment && "MFFS card is wedged (full)");
      const std::uint32_t copied = segments_->CleanSegment(victim);
      cleaning_copies_ += copied;
      ++segment_erases_;
      cost_ms += static_cast<double>(copied) * copy_block_ms + config_.card.erase_ms_per_segment;
    }
    std::uint64_t lba;
    const std::uint64_t span =
        std::min(std::max<std::uint64_t>(stored_blocks, 1), file.lba_blocks);
    if (extend) {
      // New data extends the file's mapped range (clamped to the
      // reservation; compression can only shrink the need).
      lba = file.first_lba + std::min(stored_blocks + i, file.lba_blocks - 1);
    } else if (is_rewrite && scatter_rewrites) {
      // Overwrite-time anomaly rewrites touch random blocks of the file
      // (FAT-chain updates land all over it), so their garbage spreads
      // across segments and victim quality degrades as the card fills.
      lba = file.first_lba +
            static_cast<std::uint64_t>(
                rewrite_rng_.UniformInt(0, static_cast<std::int64_t>(span) - 1));
    } else if (is_rewrite) {
      // Append-time rewrites walk the file in order; their garbage dies in
      // write order and is cheap to reclaim.
      lba = file.first_lba + (rotor_++ % span);
    } else {
      // Overwrites invalidate the blocks actually addressed, so random-
      // offset overwrite workloads produce scattered invalidation (the
      // figure 3 cleaning pattern).
      const std::uint64_t start = (user_offset / config_.block_bytes) % span;
      lba = file.first_lba + (start + i) % span;
    }
    segments_->WriteBlock(lba);
  }
  return cost_ms;
}

double MffsTestbedDevice::WriteChunkMs(std::uint32_t file_id, std::uint64_t offset,
                                       std::uint32_t bytes, std::uint64_t file_total_bytes,
                                       double data_ratio) {
  FileState& file = GetFile(file_id, file_total_bytes);
  const std::uint64_t stored = config_.compression.StoredBytes(bytes, data_ratio);
  const std::uint64_t stored_blocks =
      (stored + config_.block_bytes - 1) / config_.block_bytes;

  // The MFFS 2.00 anomaly: appending also rewrites a slice of everything the
  // file already holds, so per-write latency climbs with cumulative data
  // (figure 1).  The slice tracks the file's *user* size: the paper saw the
  // same growth for compressible and random payloads.
  const std::uint64_t rewrite_bytes =
      static_cast<std::uint64_t>(config_.rewrite_fraction * static_cast<double>(file.user_bytes));
  const std::uint64_t rewrite_blocks = rewrite_bytes / config_.block_bytes;

  double cost_ms = config_.fs_overhead_ms +
                   (static_cast<double>(stored + rewrite_bytes) / 1024.0) * config_.write_ms_per_kb;
  const bool is_append = offset >= file.user_bytes;
  cost_ms += WritePhysicalBlocks(file, stored_blocks, is_append, offset, /*is_rewrite=*/false,
                                 /*scatter_rewrites=*/false);
  if (rewrite_blocks > 0) {
    cost_ms += WritePhysicalBlocks(file, rewrite_blocks, /*extend=*/false, 0,
                                   /*is_rewrite=*/true, /*scatter_rewrites=*/!is_append);
  }
  if (is_append) {
    file.user_bytes = offset + bytes;
    file.stored_bytes += stored;
  }
  return cost_ms;
}

double MffsTestbedDevice::ReadChunkMs(std::uint32_t file_id, std::uint64_t offset,
                                      std::uint32_t bytes, std::uint64_t file_total_bytes,
                                      double data_ratio) {
  FileState& file = GetFile(file_id, file_total_bytes);
  const std::uint64_t stored = config_.compression.StoredBytes(bytes, data_ratio);
  // Walking the block chain costs time proportional to how deep into the
  // file the chunk sits.
  const double chain_kb =
      static_cast<double>(std::min<std::uint64_t>(offset, file.user_bytes)) / 1024.0;
  double cost_ms = config_.read_overhead_ms + chain_kb * config_.read_chain_ms_per_kb +
                   TransferMs(stored, config_.card.read_kbps);
  if (data_ratio < 1.0) {
    cost_ms += TransferMs(bytes, config_.compression.decompress_kbps);
  }
  return cost_ms;
}

void MffsTestbedDevice::IdleCleanup() {
  while (true) {
    const std::uint32_t victim = segments_->PickVictim();
    if (victim == SegmentManager::kNoSegment ||
        segments_->free_slots() < segments_->VictimLiveBlocks(victim)) {
      return;
    }
    cleaning_copies_ += segments_->CleanSegment(victim);
    ++segment_erases_;
  }
}

void MffsTestbedDevice::DeleteFile(std::uint32_t file_id) {
  const auto it = files_.find(file_id);
  if (it == files_.end()) {
    return;
  }
  const FileState& file = it->second;
  for (std::uint64_t i = 0; i < file.lba_blocks; ++i) {
    if (segments_->IsMapped(file.first_lba + i)) {
      segments_->TrimBlock(file.first_lba + i);
    }
  }
  files_.erase(it);
}

}  // namespace mobisim
