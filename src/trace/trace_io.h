// Text serialization for file-level traces.
//
// Format (one record per line, '#' comments allowed):
//   mobisim-trace v1
//   name <string>
//   block <bytes>
//   <time_us> <r|w|e> <file_id> <offset> <size>
#ifndef MOBISIM_SRC_TRACE_TRACE_IO_H_
#define MOBISIM_SRC_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "src/trace/trace_record.h"

namespace mobisim {

void WriteTrace(const Trace& trace, std::ostream& out);
// Returns std::nullopt on malformed input; the error is described in
// `error` when non-null.
std::optional<Trace> ReadTrace(std::istream& in, std::string* error = nullptr);

// File-path convenience wrappers.  Writes are atomic (temp file + fsync +
// rename) and return false on any write error, so a crash or full disk
// never leaves a truncated trace file behind.
bool WriteTraceFile(const Trace& trace, const std::string& path);
std::optional<Trace> ReadTraceFile(const std::string& path, std::string* error = nullptr);

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_TRACE_IO_H_
