#include "src/trace/synth_workload.h"

#include <algorithm>
#include <vector>

#include "src/util/check.h"

namespace mobisim {

Trace GenerateSynthWorkload(const SynthWorkloadConfig& config) {
  MOBISIM_CHECK(config.file_bytes > 0);
  MOBISIM_CHECK(config.dataset_bytes >= config.file_bytes);
  MOBISIM_CHECK(config.read_fraction + config.write_fraction <= 1.0);

  const std::uint32_t file_count =
      static_cast<std::uint32_t>(config.dataset_bytes / config.file_bytes);
  const std::uint32_t hot_count = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.hot_data_fraction * file_count));

  Rng rng(config.seed);
  Trace trace;
  trace.name = "synth";
  trace.block_bytes = 512;
  trace.records.reserve(config.op_count);

  // Tracks whether an erase emptied a file; the next write then rewrites the
  // whole file unit, as the paper specifies.
  std::vector<bool> erased(file_count, false);

  SimTime now = 0;
  for (std::uint32_t i = 0; i < config.op_count; ++i) {
    // Inter-arrival.
    double gap_ms;
    if (rng.Chance(config.short_fraction)) {
      gap_ms = rng.Uniform(0.0, 2.0 * config.short_mean_ms);
    } else {
      gap_ms = config.long_base_ms + rng.Exponential(config.long_exp_mean_ms);
    }
    now += UsFromMs(gap_ms);

    // File selection: hot files are [0, hot_count).
    std::uint32_t file_id;
    if (rng.Chance(config.hot_access_fraction)) {
      file_id = static_cast<std::uint32_t>(rng.UniformInt(0, hot_count - 1));
    } else {
      file_id = static_cast<std::uint32_t>(rng.UniformInt(hot_count, file_count - 1));
    }

    TraceRecord rec;
    rec.time_us = now;
    rec.file_id = file_id;

    const double op_draw = rng.NextDouble();
    if (op_draw < config.read_fraction && !erased[file_id]) {
      rec.op = OpType::kRead;
    } else if (op_draw < config.read_fraction + config.write_fraction || erased[file_id]) {
      rec.op = OpType::kWrite;
    } else {
      rec.op = OpType::kErase;
      erased[file_id] = true;
      rec.offset = 0;
      rec.size_bytes = 0;
      trace.records.push_back(rec);
      continue;
    }

    if (rec.op == OpType::kWrite && erased[file_id]) {
      // First write after an erase rewrites the entire file unit.
      rec.offset = 0;
      rec.size_bytes = config.file_bytes;
      erased[file_id] = false;
    } else {
      // Access size: 40% 0.5 KB, 40% (0.5, 16] KB, 20% (16, 32] KB.
      const double size_draw = rng.NextDouble();
      std::uint32_t size;
      if (size_draw < 0.40) {
        size = 512;
      } else if (size_draw < 0.80) {
        size = static_cast<std::uint32_t>(rng.Uniform(512.0, 16.0 * 1024.0));
      } else {
        size = static_cast<std::uint32_t>(rng.Uniform(16.0 * 1024.0, 32.0 * 1024.0));
      }
      size = std::min(size, config.file_bytes);
      const std::uint64_t max_offset = config.file_bytes - size;
      rec.offset = static_cast<std::uint64_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(max_offset)));
      rec.size_bytes = size;
    }
    trace.records.push_back(rec);
  }
  return trace;
}

}  // namespace mobisim
