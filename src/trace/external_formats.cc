#include "src/trace/external_formats.h"

#include <algorithm>
#include <istream>
#include <sstream>

namespace mobisim {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

bool IsBlankOrComment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') {
      return true;
    }
    if (c != ' ' && c != '\t' && c != '\r') {
      return false;
    }
  }
  return true;
}

// Requests in external traces carry no file identity; synthesize one from
// the request's neighbourhood so the seek model sees locality when requests
// target nearby blocks.
std::uint32_t LocalityGroup(std::uint64_t lba) {
  return static_cast<std::uint32_t>(lba >> 6);  // 64-block neighbourhoods
}

}  // namespace

std::optional<BlockTrace> ImportHplTrace(std::istream& in, const HplImportOptions& options,
                                         std::string* error) {
  BlockTrace trace;
  trace.name = "hpl-import";
  trace.block_bytes = options.block_bytes;

  std::string line;
  int line_no = 0;
  std::uint64_t max_block = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsBlankOrComment(line)) {
      continue;
    }
    std::istringstream ls(line);
    double timestamp_sec = 0.0;
    int device = 0;
    std::uint64_t start = 0;
    std::uint64_t length = 0;
    std::string op;
    ls >> timestamp_sec >> device >> start >> length >> op;
    if (ls.fail() || op.empty()) {
      SetError(error, "hpl line " + std::to_string(line_no) + ": malformed");
      return std::nullopt;
    }
    if (options.device_filter >= 0 && device != options.device_filter) {
      continue;
    }
    const char op_char = static_cast<char>(std::tolower(op[0]));
    if (op_char != 'r' && op_char != 'w') {
      SetError(error, "hpl line " + std::to_string(line_no) + ": op must be R or W");
      return std::nullopt;
    }

    BlockRecord rec;
    rec.time_us = UsFromSec(timestamp_sec);
    rec.op = op_char == 'r' ? OpType::kRead : OpType::kWrite;
    if (options.offsets_in_bytes) {
      const std::uint64_t first = start / options.block_bytes;
      const std::uint64_t last =
          (start + std::max<std::uint64_t>(length, 1) - 1) / options.block_bytes;
      rec.lba = first;
      rec.block_count = static_cast<std::uint32_t>(last - first + 1);
    } else {
      rec.lba = start;
      rec.block_count = static_cast<std::uint32_t>(std::max<std::uint64_t>(length, 1));
    }
    rec.file_id = LocalityGroup(rec.lba);
    max_block = std::max(max_block, rec.lba + rec.block_count);
    trace.records.push_back(rec);
  }
  if (trace.records.empty()) {
    SetError(error, "hpl trace contained no records");
    return std::nullopt;
  }
  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [](const BlockRecord& a, const BlockRecord& b) {
                     return a.time_us < b.time_us;
                   });
  trace.total_blocks = max_block;
  return trace;
}

std::optional<BlockTrace> ImportDiskSimTrace(std::istream& in,
                                             const DiskSimImportOptions& options,
                                             std::string* error) {
  BlockTrace trace;
  trace.name = "disksim-import";
  trace.block_bytes = options.block_bytes;
  const std::uint64_t scale = std::max<std::uint64_t>(
      1, options.block_bytes / options.disksim_block_bytes);

  std::string line;
  int line_no = 0;
  std::uint64_t max_block = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsBlankOrComment(line)) {
      continue;
    }
    std::istringstream ls(line);
    double timestamp_ms = 0.0;
    int device = 0;
    std::uint64_t blkno = 0;
    std::uint64_t size_blocks = 0;
    unsigned flags = 0;
    ls >> timestamp_ms >> device >> blkno >> size_blocks >> flags;
    if (ls.fail()) {
      SetError(error, "disksim line " + std::to_string(line_no) + ": malformed");
      return std::nullopt;
    }
    if (options.device_filter >= 0 && device != options.device_filter) {
      continue;
    }
    BlockRecord rec;
    rec.time_us = UsFromMs(timestamp_ms);
    rec.op = (flags & 1u) != 0 ? OpType::kRead : OpType::kWrite;  // DiskSim: bit 0 = read
    const std::uint64_t first = blkno / scale;
    const std::uint64_t last =
        (blkno + std::max<std::uint64_t>(size_blocks, 1) - 1) / scale;
    rec.lba = first;
    rec.block_count = static_cast<std::uint32_t>(last - first + 1);
    rec.file_id = LocalityGroup(rec.lba);
    max_block = std::max(max_block, rec.lba + rec.block_count);
    trace.records.push_back(rec);
  }
  if (trace.records.empty()) {
    SetError(error, "disksim trace contained no records");
    return std::nullopt;
  }
  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [](const BlockRecord& a, const BlockRecord& b) {
                     return a.time_us < b.time_us;
                   });
  trace.total_blocks = max_block;
  return trace;
}

}  // namespace mobisim
