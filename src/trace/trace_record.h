// File-level and block-level trace representations.
//
// The paper's traces are file-level (which file, read/write, offset, size,
// time) and are preprocessed into disk-level operations by assigning each
// file a unique disk location (section 4.1).  We mirror that split: a Trace
// holds file-level TraceRecords; BlockMapper (block_mapper.h) lowers it to a
// BlockTrace of logical-block operations the simulator consumes.
#ifndef MOBISIM_SRC_TRACE_TRACE_RECORD_H_
#define MOBISIM_SRC_TRACE_TRACE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/sim_time.h"

namespace mobisim {

enum class OpType : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  // Whole-file deletion (the dos and synth traces contain these).
  kErase = 2,
};

const char* OpTypeName(OpType op);

// One file-level trace event.
struct TraceRecord {
  SimTime time_us = 0;
  OpType op = OpType::kRead;
  std::uint32_t file_id = 0;
  // Byte offset within the file; unused for kErase.
  std::uint64_t offset = 0;
  // Transfer length in bytes; unused for kErase.
  std::uint32_t size_bytes = 0;
};

// A complete file-level workload.
struct Trace {
  std::string name;
  // File-system block size this workload was collected with (Table 3).
  std::uint32_t block_bytes = 1024;
  std::vector<TraceRecord> records;
};

// One block-level (disk-level) operation after file->extent mapping.
struct BlockRecord {
  SimTime time_us = 0;
  OpType op = OpType::kRead;
  // First logical block address touched.
  std::uint64_t lba = 0;
  std::uint32_t block_count = 0;
  // Originating file, kept so device models can apply the paper's
  // same-file-no-seek assumption (section 4.2).
  std::uint32_t file_id = 0;
};

struct BlockTrace {
  std::string name;
  std::uint32_t block_bytes = 1024;
  // One past the highest LBA any record touches (the address-space size).
  std::uint64_t total_blocks = 0;
  std::vector<BlockRecord> records;

  std::uint64_t total_bytes() const { return total_blocks * block_bytes; }
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_TRACE_RECORD_H_
