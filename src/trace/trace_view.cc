#include "src/trace/trace_view.h"

namespace mobisim {

TraceView TraceView::FromBlockTrace(const BlockTrace& trace) {
  auto storage = std::make_shared<TraceViewStorage>();
  storage->name = trace.name;
  storage->block_bytes = trace.block_bytes;
  storage->total_blocks = trace.total_blocks;
  storage->record_count = trace.records.size();
  storage->zero_copy = false;

  const std::size_t n = trace.records.size();
  storage->own_times.reserve(n);
  storage->own_lbas.reserve(n);
  storage->own_counts.reserve(n);
  storage->own_file_ids.reserve(n);
  storage->own_ops.reserve(n);
  for (const BlockRecord& rec : trace.records) {
    storage->own_times.push_back(rec.time_us);
    storage->own_lbas.push_back(rec.lba);
    storage->own_counts.push_back(rec.block_count);
    storage->own_file_ids.push_back(rec.file_id);
    storage->own_ops.push_back(static_cast<std::uint8_t>(rec.op));
  }
  storage->times = storage->own_times.data();
  storage->lbas = storage->own_lbas.data();
  storage->counts = storage->own_counts.data();
  storage->file_ids = storage->own_file_ids.data();
  storage->ops = storage->own_ops.data();
  return TraceView(std::move(storage));
}

BlockTrace TraceView::ToBlockTrace() const {
  BlockTrace trace;
  if (storage_ == nullptr) {
    return trace;
  }
  trace.name = storage_->name;
  trace.block_bytes = storage_->block_bytes;
  trace.total_blocks = storage_->total_blocks;
  trace.records.reserve(storage_->record_count);
  for (std::size_t i = 0; i < storage_->record_count; ++i) {
    trace.records.push_back(record(i));
  }
  return trace;
}

}  // namespace mobisim
