#include "src/trace/calibrated_workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/trace/synth_workload.h"
#include "src/util/check.h"

namespace mobisim {

namespace {

// Shifted geometric with the given mean (>= 1): support {1, 2, ...}.
std::uint32_t GeometricBlocks(Rng& rng, double mean) {
  MOBISIM_DCHECK(mean >= 1.0);
  if (mean <= 1.0) {
    return 1;
  }
  const double p = 1.0 / mean;
  double u = rng.NextDouble();
  if (u >= 1.0) {
    u = 1.0 - 1e-12;
  }
  const double k = std::floor(std::log(1.0 - u) / std::log(1.0 - p));
  return 1 + static_cast<std::uint32_t>(std::min(k, 4095.0));
}

}  // namespace

CalibratedWorkloadConfig MacWorkloadConfig(double scale) {
  CalibratedWorkloadConfig c;
  c.name = "mac";
  c.duration_sec = 3.5 * 3600 * scale;
  c.distinct_kbytes = 22000;
  c.read_fraction = 0.50;
  c.block_bytes = 1024;
  c.mean_read_blocks = 1.3;
  c.mean_write_blocks = 1.2;
  c.short_fraction = 0.97;
  c.short_mean_sec = 0.04;
  c.long_mean_sec = 1.33;
  c.max_gap_sec = 90.8;
  c.delete_fraction = 0.0;
  c.file_count = 1100;
  c.mean_file_kbytes = 20.0;
  c.zipf_skew = 1.30;
  c.sequential_fraction = 0.65;
  c.drift_cycles = 0.9;
  c.seed = 101;
  return c;
}

CalibratedWorkloadConfig DosWorkloadConfig(double scale) {
  CalibratedWorkloadConfig c;
  c.name = "dos";
  c.duration_sec = 1.5 * 3600 * scale;
  c.distinct_kbytes = 16300;
  c.read_fraction = 0.24;
  c.block_bytes = 512;
  c.mean_read_blocks = 3.8;
  c.mean_write_blocks = 3.4;
  c.short_fraction = 0.998;
  c.short_mean_sec = 0.15;
  c.long_mean_sec = 189.0;
  c.max_gap_sec = 713.0;
  c.delete_fraction = 0.02;
  c.file_count = 815;
  c.mean_file_kbytes = 20.0;
  c.zipf_skew = 1.0;
  c.drift_cycles = 0.9;
  c.seed = 202;
  return c;
}

CalibratedWorkloadConfig HpWorkloadConfig(double scale) {
  CalibratedWorkloadConfig c;
  c.name = "hp";
  c.duration_sec = 4.4 * 24 * 3600 * scale;
  c.distinct_kbytes = 32000;
  c.read_fraction = 0.38;
  c.block_bytes = 1024;
  c.mean_read_blocks = 4.3;
  c.mean_write_blocks = 6.2;
  // hp is bursty: request trains with ~0.5-s spacing separated by long
  // silences (its sigma of 112 s against an 11.1-s mean demands a heavy
  // tail; the 30-min max matches Table 3).
  c.short_fraction = 0.98;
  c.short_mean_sec = 0.5;
  c.long_mean_sec = 545.0;
  c.max_gap_sec = 1800.0;
  c.delete_fraction = 0.0;
  c.file_count = 1600;
  c.mean_file_kbytes = 20.0;
  c.zipf_skew = 1.0;
  c.drift_cycles = 0.9;
  c.seed = 303;
  return c;
}

Trace GenerateCalibratedWorkload(const CalibratedWorkloadConfig& config) {
  MOBISIM_CHECK(config.file_count > 0);
  MOBISIM_CHECK(config.block_bytes > 0);
  MOBISIM_CHECK(config.duration_sec > 0.0);

  Rng rng(config.seed);
  const std::uint32_t block = config.block_bytes;

  // File population: exponential sizes around the mean, minimum one block.
  struct FileState {
    std::uint32_t size_blocks = 1;
    std::uint64_t next_seq_block = 0;  // sequential-run cursor
    bool erased = false;
  };
  std::vector<FileState> files(config.file_count);
  const double mean_file_blocks = config.mean_file_kbytes * 1024.0 / block;
  for (FileState& f : files) {
    const double drawn = rng.Exponential(mean_file_blocks);
    const double capped = std::min(drawn, 16.0 * mean_file_blocks);
    f.size_blocks = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(capped));
  }

  // Popularity: Zipf over ranks, with ranks shuffled onto file ids so hot
  // files are scattered across the logical address space.
  ZipfDistribution zipf(config.file_count, config.zipf_skew);
  std::vector<std::uint32_t> rank_to_file(config.file_count);
  std::iota(rank_to_file.begin(), rank_to_file.end(), 0);
  for (std::size_t i = rank_to_file.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.UniformInt(0, static_cast<int64_t>(i)));
    std::swap(rank_to_file[i], rank_to_file[j]);
  }

  const double mean_gap_sec = config.short_fraction * config.short_mean_sec +
                              (1.0 - config.short_fraction) * config.long_mean_sec;
  const std::uint64_t op_count =
      std::max<std::uint64_t>(16, static_cast<std::uint64_t>(config.duration_sec / mean_gap_sec));

  Trace trace;
  trace.name = config.name;
  trace.block_bytes = block;
  trace.records.reserve(op_count);

  SimTime now = 0;
  for (std::uint64_t i = 0; i < op_count; ++i) {
    double gap_sec;
    if (rng.Chance(config.short_fraction)) {
      gap_sec = rng.Uniform(0.0, 2.0 * config.short_mean_sec);
    } else {
      gap_sec = rng.Exponential(config.long_mean_sec);
    }
    gap_sec = std::min(gap_sec, config.max_gap_sec);
    now += UsFromSec(gap_sec);

    const std::uint64_t drift = static_cast<std::uint64_t>(
        static_cast<double>(i) / static_cast<double>(op_count) * config.drift_cycles *
        static_cast<double>(config.file_count));
    const std::uint32_t file_id =
        rank_to_file[(zipf.Sample(rng) + drift) % config.file_count];
    FileState& file = files[file_id];

    TraceRecord rec;
    rec.time_us = now;
    rec.file_id = file_id;

    if (config.delete_fraction > 0.0 && !file.erased && rng.Chance(config.delete_fraction)) {
      rec.op = OpType::kErase;
      file.erased = true;
      trace.records.push_back(rec);
      continue;
    }

    const bool is_read = !file.erased && rng.Chance(config.read_fraction);
    rec.op = is_read ? OpType::kRead : OpType::kWrite;
    const double mean_blocks = is_read ? config.mean_read_blocks : config.mean_write_blocks;
    std::uint32_t size_blocks = std::min(GeometricBlocks(rng, mean_blocks), file.size_blocks);

    std::uint64_t start_block;
    if (file.erased) {
      // First write after a delete recreates the file from its beginning.
      start_block = 0;
      file.erased = false;
    } else if (rng.Chance(config.sequential_fraction) &&
               file.next_seq_block + size_blocks <= file.size_blocks) {
      start_block = file.next_seq_block;
    } else {
      const std::uint64_t max_start = file.size_blocks - size_blocks;
      start_block =
          static_cast<std::uint64_t>(rng.UniformInt(0, static_cast<std::int64_t>(max_start)));
    }
    file.next_seq_block = start_block + size_blocks;
    if (file.next_seq_block >= file.size_blocks) {
      file.next_seq_block = 0;
    }

    rec.offset = start_block * block;
    rec.size_bytes = size_blocks * block;
    trace.records.push_back(rec);
  }
  return trace;
}

Trace GenerateNamedWorkload(const std::string& name, double scale, std::uint64_t seed) {
  if (name == "synth") {
    SynthWorkloadConfig config;
    config.op_count = std::max<std::uint32_t>(
        16, static_cast<std::uint32_t>(config.op_count * scale));
    config.seed = seed;
    return GenerateSynthWorkload(config);
  }
  CalibratedWorkloadConfig config;
  if (name == "mac") {
    config = MacWorkloadConfig(scale);
  } else if (name == "dos" || name == "pc") {
    // The paper names this workload both "pc" (section 4.1) and "dos".
    config = DosWorkloadConfig(scale);
  } else if (name == "hp") {
    config = HpWorkloadConfig(scale);
  } else {
    MOBISIM_CHECK(false && "unknown workload name");
  }
  config.seed += seed;
  return GenerateCalibratedWorkload(config);
}

}  // namespace mobisim
