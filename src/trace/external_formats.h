// Importers for common published disk-trace formats, so the simulator can
// run real traces (e.g. the Ruemmler/Wilkes HP traces this paper used, or
// DiskSim workloads) when the user has them.
//
// Supported formats:
//
//  - HPL (Ruemmler & Wilkes / SRT-style ASCII): one request per line,
//        <timestamp-seconds> <device> <start-byte-or-block> <length> <R|W>
//    Timestamps are decimal seconds; `hpl_offsets_in_bytes` selects whether
//    the third column is bytes or blocks.
//
//  - DiskSim ASCII: one request per line,
//        <timestamp-ms> <devno> <blkno> <size-in-blocks> <flags>
//    where bit 0 of flags set means a read (DiskSim convention).
//
// Both importers produce a BlockTrace directly (these are disk-level traces;
// like the paper's hp trace they should be simulated without a DRAM cache).
// Requests for devices other than `device_filter` are dropped when the
// filter is >= 0.
#ifndef MOBISIM_SRC_TRACE_EXTERNAL_FORMATS_H_
#define MOBISIM_SRC_TRACE_EXTERNAL_FORMATS_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "src/trace/trace_record.h"

namespace mobisim {

struct HplImportOptions {
  std::uint32_t block_bytes = 1024;
  bool offsets_in_bytes = true;
  int device_filter = -1;  // -1 = accept all devices
};

std::optional<BlockTrace> ImportHplTrace(std::istream& in, const HplImportOptions& options,
                                         std::string* error = nullptr);

struct DiskSimImportOptions {
  std::uint32_t disksim_block_bytes = 512;  // DiskSim's block unit
  std::uint32_t block_bytes = 1024;         // output trace block size
  int device_filter = -1;
};

std::optional<BlockTrace> ImportDiskSimTrace(std::istream& in,
                                             const DiskSimImportOptions& options,
                                             std::string* error = nullptr);

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_EXTERNAL_FORMATS_H_
