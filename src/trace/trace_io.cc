#include "src/trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "src/util/atomic_file.h"

namespace mobisim {

namespace {

constexpr char kMagic[] = "mobisim-trace v1";

char OpChar(OpType op) {
  switch (op) {
    case OpType::kRead:
      return 'r';
    case OpType::kWrite:
      return 'w';
    case OpType::kErase:
      return 'e';
  }
  return '?';
}

bool ParseOp(char c, OpType* op) {
  switch (c) {
    case 'r':
      *op = OpType::kRead;
      return true;
    case 'w':
      *op = OpType::kWrite;
      return true;
    case 'e':
      *op = OpType::kErase;
      return true;
    default:
      return false;
  }
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& out) {
  out << kMagic << "\n";
  out << "name " << (trace.name.empty() ? "unnamed" : trace.name) << "\n";
  out << "block " << trace.block_bytes << "\n";
  for (const TraceRecord& rec : trace.records) {
    out << rec.time_us << ' ' << OpChar(rec.op) << ' ' << rec.file_id << ' ' << rec.offset << ' '
        << rec.size_bytes << "\n";
  }
}

std::optional<Trace> ReadTrace(std::istream& in, std::string* error) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    SetError(error, "missing or bad magic line");
    return std::nullopt;
  }

  Trace trace;
  bool have_block = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "name") {
      ls >> trace.name;
      continue;
    }
    if (first == "block") {
      ls >> trace.block_bytes;
      if (trace.block_bytes == 0) {
        SetError(error, "block size must be positive");
        return std::nullopt;
      }
      have_block = true;
      continue;
    }
    TraceRecord rec;
    char op_char = 0;
    std::istringstream rs(line);
    rs >> rec.time_us >> op_char >> rec.file_id >> rec.offset >> rec.size_bytes;
    if (rs.fail() || !ParseOp(op_char, &rec.op)) {
      SetError(error, "malformed record: " + line);
      return std::nullopt;
    }
    trace.records.push_back(rec);
  }
  if (!have_block) {
    SetError(error, "missing block-size header");
    return std::nullopt;
  }
  return trace;
}

bool WriteTraceFile(const Trace& trace, const std::string& path) {
  // Serialize in memory, then publish atomically: a crash, a full disk, or
  // a concurrent writer must never leave a silently truncated trace file
  // that a later run would trust.
  std::ostringstream out;
  WriteTrace(trace, out);
  if (!out) {
    return false;
  }
  return WriteFileAtomic(path, out.str());
}

std::optional<Trace> ReadTraceFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  return ReadTrace(in, error);
}

}  // namespace mobisim
