// Read-only, column-oriented view of a block trace.
//
// The simulator's per-record loop reads five fields per record; a TraceView
// hands it five parallel arrays (structure-of-arrays) instead of a vector of
// structs.  The columns are backed either by an mmap'd trace-cache entry
// (the zero-copy path: the `.mtc` v2 layout on disk IS the column layout,
// 8-byte aligned, so the file pages are walked in place) or by owned vectors
// copied out of a BlockTrace (generation, or the fallback when an entry
// cannot be mapped).  Both backings expose identical data, so simulation
// results are byte-identical whichever path produced the view.
//
// Views are cheap to copy (one shared_ptr) and safe to share across sweep
// worker threads — the backing is immutable after construction.  A view
// keeps its mapping alive even if the cache entry is gc'd or overwritten
// underneath it: the unlinked file's pages stay valid until the last view
// drops (POSIX mmap semantics; pinned by trace_view_test).
#ifndef MOBISIM_SRC_TRACE_TRACE_VIEW_H_
#define MOBISIM_SRC_TRACE_TRACE_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace_record.h"
#include "src/util/mmap_file.h"

namespace mobisim {

// The immutable backing of a TraceView.  Filled either by
// TraceView::FromBlockTrace (owned vectors) or by the trace cache's mmap
// loader (column pointers into `map`).  Consumers never touch this directly.
struct TraceViewStorage {
  std::string name;
  std::uint32_t block_bytes = 0;
  std::uint64_t total_blocks = 0;
  std::size_t record_count = 0;
  bool zero_copy = false;

  // Owned columns (copy path); unused when the view maps a file.
  std::vector<SimTime> own_times;
  std::vector<std::uint64_t> own_lbas;
  std::vector<std::uint32_t> own_counts;
  std::vector<std::uint32_t> own_file_ids;
  std::vector<std::uint8_t> own_ops;

  // Keeps the mapped entry alive for the life of the view (zero-copy path).
  MmapFile map;

  // Column pointers, into `map` or the own_* vectors.
  const SimTime* times = nullptr;
  const std::uint64_t* lbas = nullptr;
  const std::uint32_t* counts = nullptr;
  const std::uint32_t* file_ids = nullptr;
  const std::uint8_t* ops = nullptr;
};

class TraceView {
 public:
  TraceView() = default;
  explicit TraceView(std::shared_ptr<const TraceViewStorage> storage)
      : storage_(std::move(storage)) {}

  // Copies a BlockTrace into owned columns (the non-mmap backing).
  static TraceView FromBlockTrace(const BlockTrace& trace);

  bool empty() const { return storage_ == nullptr || storage_->record_count == 0; }
  explicit operator bool() const { return storage_ != nullptr; }

  const std::string& name() const { return storage_->name; }
  std::uint32_t block_bytes() const { return storage_->block_bytes; }
  std::uint64_t total_blocks() const { return storage_->total_blocks; }
  std::size_t size() const { return storage_ == nullptr ? 0 : storage_->record_count; }
  // True when the columns point into a mapped cache entry (no copy was made).
  bool zero_copy() const { return storage_ != nullptr && storage_->zero_copy; }

  const SimTime* times() const { return storage_->times; }
  const std::uint64_t* lbas() const { return storage_->lbas; }
  const std::uint32_t* counts() const { return storage_->counts; }
  const std::uint32_t* file_ids() const { return storage_->file_ids; }
  const std::uint8_t* ops() const { return storage_->ops; }

  // Row-form accessor for tests and non-hot-path consumers.
  BlockRecord record(std::size_t i) const {
    BlockRecord rec;
    rec.time_us = storage_->times[i];
    rec.op = static_cast<OpType>(storage_->ops[i]);
    rec.lba = storage_->lbas[i];
    rec.block_count = storage_->counts[i];
    rec.file_id = storage_->file_ids[i];
    return rec;
  }

  // Materializes a row-form copy (tests, format round-trips).
  BlockTrace ToBlockTrace() const;

 private:
  std::shared_ptr<const TraceViewStorage> storage_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_TRACE_VIEW_H_
