// Persistent, fingerprint-keyed cache of generated block traces.
//
// The paper's methodology (section 4.1) fixes the workload traces once and
// reuses them across every device/configuration point; this cache gives
// repeated sweeps the same discipline across *processes*.  A generated
// BlockTrace is stored under `<dir>/<fingerprint>.mtc`, where the
// fingerprint is the 64-bit FNV-1a hash of a canonical rendering of the
// full workload configuration (every generator parameter, not just the
// name), the scale, the seed, and the trace-format version — so any change
// to the generators, the block mapper, or the entry format invalidates old
// entries instead of silently replaying stale traces.
//
// Entries are written atomically (unique temp file + fsync + rename, see
// src/util/atomic_file.h) and carry a length/hash footer; readers validate
// both and treat a torn or corrupted entry as a miss, delete it, and let
// the caller regenerate.  Concurrent writers are safe: last rename wins and
// every intermediate state is a complete, valid file.  A cached load is
// bit-identical to generation — BlockTrace holds only integral fields, and
// the serialization is exact — so results are byte-identical with the cache
// on, off, cold, or warm.
//
// The v2 entry layout is column-oriented (one array per BlockRecord field,
// each 8-byte aligned; see DESIGN.md for the byte-level map), which is what
// makes LoadView possible: a valid entry is mmap'd and its columns handed to
// the simulator in place — zero copies, zero per-record parsing — as a
// TraceView.  Entries that cannot be mapped or whose columns fail alignment
// checks fall back to the copying loader; corrupt entries are dropped and
// regenerated exactly as before.
#ifndef MOBISIM_SRC_TRACE_TRACE_CACHE_H_
#define MOBISIM_SRC_TRACE_TRACE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/trace_record.h"
#include "src/trace/trace_view.h"

namespace mobisim {

// Bump whenever the workload generators, BlockMapper, or the on-disk entry
// layout change in any way that affects the produced BlockTrace: the
// version participates in the fingerprint, so old entries simply miss.
// v2: column-oriented (SoA) layout with aligned columns for zero-copy mmap.
constexpr std::uint32_t kTraceCacheFormatVersion = 2;

// Canonical key text for a named workload at (scale, seed): the format
// version plus every parameter of the generator configuration the workload
// name resolves to, rendered round-trip-exactly.  `format_version` is a
// parameter so tests can prove that a version bump invalidates.
std::string CanonicalTraceKeyText(const std::string& workload, double scale,
                                  std::uint64_t seed,
                                  std::uint32_t format_version = kTraceCacheFormatVersion);

// 16-hex-digit FNV-1a fingerprint of CanonicalTraceKeyText.
std::string TraceCacheFingerprint(const std::string& workload, double scale,
                                  std::uint64_t seed,
                                  std::uint32_t format_version = kTraceCacheFormatVersion);

// Exact binary serialization of a BlockTrace (little-endian, with a
// trailing FNV-1a hash footer).  Deserialize returns std::nullopt on any
// truncation, corruption, or version mismatch, describing it in `error`.
std::string SerializeBlockTrace(const BlockTrace& trace);
std::optional<BlockTrace> DeserializeBlockTrace(const std::string& data,
                                                std::string* error = nullptr);

struct TraceCacheStats {
  std::uint64_t hits = 0;      // entries loaded from disk
  std::uint64_t misses = 0;    // lookups that required generation
  std::uint64_t stores = 0;    // entries written
  std::uint64_t corrupt = 0;   // invalid entries detected (and removed)
  std::uint64_t errors = 0;    // store failures (cache stayed best-effort)
  std::uint64_t views = 0;     // zero-copy mmap loads (no payload copy)
  std::uint64_t copies = 0;    // copying loads (Load, or LoadView fallback)
};

// The persistent cache directory.  Thread-safe: Load/Store may be called
// concurrently from sweep workers (stats are atomic, writes are atomic
// renames of unique temp files).  All failures are soft — a missing or
// unwritable directory degrades to generating every trace, never to a
// failed run.
class TraceCache {
 public:
  explicit TraceCache(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string EntryPath(const std::string& fingerprint) const;

  // Returns the cached trace, or nullptr on a miss.  A corrupted or torn
  // entry counts as a miss (and `corrupt`), and the bad file is removed so
  // the regenerated trace can be re-stored.  Always copies (counts `copies`);
  // the hot path is LoadView.
  std::shared_ptr<const BlockTrace> Load(const std::string& fingerprint);

  // Zero-copy load: maps the entry, validates header/footer in place, and
  // returns a TraceView whose columns point into the mapping (counts
  // `views`).  Falls back to the copying loader — identical data, counts
  // `copies` — when the file cannot be mapped or a column ends up
  // misaligned.  A corrupted or torn entry is removed and reported as a
  // (corrupt) miss, exactly like Load; the returned view is then empty.
  TraceView LoadView(const std::string& fingerprint);

  // Stores the trace under the fingerprint, creating the cache directory if
  // needed.  Best-effort: returns false (and counts `errors`) on failure.
  bool Store(const std::string& fingerprint, const BlockTrace& trace,
             std::string* error = nullptr);

  TraceCacheStats stats() const;
  // One-line summary for the drivers' stderr reporting, e.g.
  //   trace-cache: hits=12 misses=0 stores=0 corrupt=0 errors=0 views=12 copies=0 dir=/x
  // CI greps this line: `misses=0 stores=0 corrupt=0 errors=0` proves a warm
  // run generated nothing, `copies=0` that no cached payload was copied.
  std::string StatsLine() const;

 private:
  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> views_{0};
  std::atomic<std::uint64_t> copies_{0};
};

// The one code path every consumer shares: load the (workload, scale, seed)
// trace from `cache`, or generate + map + store it.  `cache` may be null
// (plain generation).  Exceptions from unknown workload names propagate
// exactly as GenerateNamedWorkload's do.
std::shared_ptr<const BlockTrace> LoadOrGenerateBlockTrace(TraceCache* cache,
                                                           const std::string& workload,
                                                           double scale,
                                                           std::uint64_t seed);

// The view-returning twin, and what the sweep engine actually uses: a warm
// cache yields an mmap-backed zero-copy view, a cold one generates, stores,
// and wraps the generated trace in an owned-column view.  Same determinism
// contract as LoadOrGenerateBlockTrace: the view's data is bit-identical
// however it was produced.
TraceView LoadOrGenerateTraceView(TraceCache* cache, const std::string& workload,
                                  double scale, std::uint64_t seed);

// Maintenance view of a cache directory (the `trace-cache stats` / `gc`
// subcommands of mobisim_bench).
struct TraceCacheEntry {
  std::string fingerprint;
  std::string path;
  std::uint64_t bytes = 0;
  std::int64_t mtime = 0;  // seconds since epoch, for age-ordered eviction
  bool valid = false;      // footer and length verified
};

// Lists `<dir>/*.mtc`, validating each entry; empty for a missing dir.
std::vector<TraceCacheEntry> ListTraceCache(const std::string& dir);

struct TraceCacheGcResult {
  std::size_t removed = 0;
  std::size_t kept = 0;
  std::uint64_t removed_bytes = 0;
  std::uint64_t kept_bytes = 0;
};

// Deletes every invalid entry and any leftover temp files, then evicts the
// oldest valid entries until the directory holds at most `max_bytes`
// (0 = no size limit, invalid-entry cleanup only).
TraceCacheGcResult GcTraceCache(const std::string& dir, std::uint64_t max_bytes);

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_TRACE_CACHE_H_
