// Lowers a file-level Trace to a block-level BlockTrace.
//
// Mirrors the preprocessing in section 4.1 of the paper: each file is
// associated with a unique disk location.  We make two passes: the first
// finds the maximum extent each file ever reaches, the second allocates
// contiguous logical-block extents in order of first appearance and emits
// block-level records.  Whole-file erases become trims of the file's extent.
#ifndef MOBISIM_SRC_TRACE_BLOCK_MAPPER_H_
#define MOBISIM_SRC_TRACE_BLOCK_MAPPER_H_

#include <cstdint>
#include <unordered_map>

#include "src/trace/trace_record.h"

namespace mobisim {

class BlockMapper {
 public:
  // Lowers `trace` using its own block size.
  static BlockTrace Map(const Trace& trace);

  // Exposed for tests: the extent assigned to a file, in blocks.
  struct Extent {
    std::uint64_t first_block = 0;
    std::uint64_t block_count = 0;
  };
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_BLOCK_MAPPER_H_
