// Workload statistics in the shape of the paper's Table 3.
#ifndef MOBISIM_SRC_TRACE_TRACE_STATS_H_
#define MOBISIM_SRC_TRACE_TRACE_STATS_H_

#include <cstdint>

#include "src/trace/trace_record.h"
#include "src/util/stats.h"

namespace mobisim {

struct TraceStats {
  // Wall-clock span of the analysed records, in seconds.
  double duration_sec = 0.0;
  // Unique Kbytes touched by any read or write.
  std::uint64_t distinct_kbytes = 0;
  // Fraction of read operations among reads+writes.
  double read_fraction = 0.0;
  std::uint32_t block_bytes = 0;
  // Sizes in file-system blocks.
  RunningStats read_blocks;
  RunningStats write_blocks;
  // Inter-arrival time in seconds across all operations.
  RunningStats interarrival_sec;
  std::uint64_t read_count = 0;
  std::uint64_t write_count = 0;
  std::uint64_t erase_count = 0;
};

// Computes Table-3-style statistics.  `skip_fraction` drops the leading part
// of the trace first (the paper reports statistics for the 90% that remains
// after the warm start, i.e. skip_fraction = 0.1).
TraceStats ComputeTraceStats(const Trace& trace, double skip_fraction = 0.0);

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_TRACE_STATS_H_
