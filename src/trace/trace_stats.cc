#include "src/trace/trace_stats.h"

#include <unordered_set>

#include "src/util/check.h"

namespace mobisim {

TraceStats ComputeTraceStats(const Trace& trace, double skip_fraction) {
  MOBISIM_CHECK(skip_fraction >= 0.0 && skip_fraction < 1.0);
  TraceStats stats;
  stats.block_bytes = trace.block_bytes;
  if (trace.records.empty()) {
    return stats;
  }

  const std::size_t first = static_cast<std::size_t>(
      skip_fraction * static_cast<double>(trace.records.size()));
  if (first >= trace.records.size()) {
    return stats;
  }

  const std::uint64_t block = trace.block_bytes;
  // Distinct 1-Kbyte units touched, keyed by (file, kbyte-within-file).
  std::unordered_set<std::uint64_t> distinct_kb;
  SimTime prev_time = trace.records[first].time_us;
  SimTime start_time = prev_time;
  SimTime end_time = prev_time;

  for (std::size_t i = first; i < trace.records.size(); ++i) {
    const TraceRecord& rec = trace.records[i];
    end_time = rec.time_us;
    if (i > first) {
      stats.interarrival_sec.Add(SecFromUs(rec.time_us - prev_time));
    }
    prev_time = rec.time_us;

    if (rec.op == OpType::kErase) {
      ++stats.erase_count;
      continue;
    }
    const double blocks =
        static_cast<double>((rec.offset % block + rec.size_bytes + block - 1) / block);
    if (rec.op == OpType::kRead) {
      ++stats.read_count;
      stats.read_blocks.Add(blocks);
    } else {
      ++stats.write_count;
      stats.write_blocks.Add(blocks);
    }
    const std::uint64_t first_kb = rec.offset / 1024;
    const std::uint64_t last_kb = (rec.offset + std::max<std::uint64_t>(rec.size_bytes, 1) - 1) /
                                  1024;
    for (std::uint64_t kb = first_kb; kb <= last_kb; ++kb) {
      distinct_kb.insert((static_cast<std::uint64_t>(rec.file_id) << 32) | kb);
    }
  }

  stats.duration_sec = SecFromUs(end_time - start_time);
  stats.distinct_kbytes = distinct_kb.size();
  const std::uint64_t rw = stats.read_count + stats.write_count;
  stats.read_fraction =
      rw == 0 ? 0.0 : static_cast<double>(stats.read_count) / static_cast<double>(rw);
  return stats;
}

}  // namespace mobisim
