// The synthetic workload of section 4.1.
//
// 6 Mbytes of 32-Kbyte files.  7/8 of accesses go to 1/8 of the data (the
// hot-and-cold structure borrowed from the Sprite LFS cleaning evaluation).
// Operations are 60% reads, 35% writes, 5% erases; an erase deletes a whole
// file and the next write to that file rewrites the full 32-Kbyte unit.
// Access sizes: 40% are 0.5 Kbytes, 40% uniform in (0.5, 16] Kbytes, 20%
// uniform in (16, 32] Kbytes.  Inter-arrival times are bimodal: 90% uniform
// with a 10-ms mean, 10% are 20 ms plus an exponential with a 3-s mean.
#ifndef MOBISIM_SRC_TRACE_SYNTH_WORKLOAD_H_
#define MOBISIM_SRC_TRACE_SYNTH_WORKLOAD_H_

#include <cstdint>

#include "src/trace/trace_record.h"
#include "src/util/rng.h"

namespace mobisim {

struct SynthWorkloadConfig {
  // Total dataset and file unit; 6 MB of 32-KB files per the paper.
  std::uint64_t dataset_bytes = 6 * 1024 * 1024;
  std::uint32_t file_bytes = 32 * 1024;
  std::uint32_t op_count = 20000;
  // Hot-and-cold skew: `hot_access_fraction` of accesses hit
  // `hot_data_fraction` of the files.
  double hot_access_fraction = 7.0 / 8.0;
  double hot_data_fraction = 1.0 / 8.0;
  // Operation mix.
  double read_fraction = 0.60;
  double write_fraction = 0.35;  // remainder is erases
  // Inter-arrival structure.
  double short_fraction = 0.90;
  double short_mean_ms = 10.0;
  double long_base_ms = 20.0;
  double long_exp_mean_ms = 3000.0;
  std::uint64_t seed = 42;
};

// Generates the workload; the trace's block size is 512 bytes (the smallest
// access unit the workload produces).
Trace GenerateSynthWorkload(const SynthWorkloadConfig& config);

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_SYNTH_WORKLOAD_H_
