#include "src/trace/trace_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include <sys/stat.h>

#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/trace/synth_workload.h"
#include "src/util/atomic_file.h"
#include "src/util/hash.h"
#include "src/util/parse.h"

namespace mobisim {

namespace {

// v2 layout ("MTC2"): a 32-byte fixed header, the name padded to an 8-byte
// boundary, then one column per BlockRecord field — times u64[n], lbas
// u64[n], counts u32[n], file_ids u32[n], ops u8[n], each zero-padded to the
// next 8-byte boundary — and a u64 Fnv1a64Wide footer over everything before
// it.  Every column therefore starts 8-byte aligned relative to the (page-
// aligned) mmap base, which is what lets LoadView hand the simulator typed
// pointers straight into the file.
constexpr char kEntryMagic[4] = {'M', 'T', 'C', '2'};
constexpr char kEntrySuffix[] = ".mtc";
constexpr std::size_t kFixedHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8;
constexpr std::size_t kFooterBytes = 8;

constexpr std::size_t PadTo8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

// Resolved offsets of one entry's pieces; filled by ParseEntryLayout.
struct EntryLayout {
  std::uint32_t block_bytes = 0;
  std::uint32_t name_len = 0;
  std::uint64_t record_count = 0;
  std::uint64_t total_blocks = 0;
  std::size_t name_off = 0;
  std::size_t times_off = 0;
  std::size_t lbas_off = 0;
  std::size_t counts_off = 0;
  std::size_t file_ids_off = 0;
  std::size_t ops_off = 0;
  std::size_t footer_off = 0;  // == total size - kFooterBytes
};

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(const char* data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* data, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
  }
  return v;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

// The zero-copy path reads column words through typed pointers, which only
// decodes the little-endian wire format correctly on a little-endian host.
// Big-endian hosts take the copying loader (GetU32/GetU64 decode portably).
bool HostIsLittleEndian() {
  const std::uint32_t probe = 1;
  unsigned char byte0 = 0;
  std::memcpy(&byte0, &probe, 1);
  return byte0 == 1;
}

// Validates the fixed header and resolves every column offset.  The record
// count pins the exact file size, so any truncation or extension fails here
// before the (more expensive) footer hash check.
bool ParseEntryLayout(const char* data, std::size_t size, EntryLayout* layout,
                      std::string* error) {
  if (size < kFixedHeaderBytes + kFooterBytes) {
    SetError(error, "entry truncated (shorter than header)");
    return false;
  }
  if (std::memcmp(data, kEntryMagic, sizeof(kEntryMagic)) != 0) {
    SetError(error, "bad magic");
    return false;
  }
  const std::uint32_t version = GetU32(data, 4);
  if (version != kTraceCacheFormatVersion) {
    SetError(error, "format version mismatch");
    return false;
  }
  layout->block_bytes = GetU32(data, 8);
  layout->name_len = GetU32(data, 12);
  layout->record_count = GetU64(data, 16);
  layout->total_blocks = GetU64(data, 24);
  layout->name_off = kFixedHeaderBytes;
  if (layout->name_len > size - kFixedHeaderBytes - kFooterBytes) {
    SetError(error, "entry truncated (name)");
    return false;
  }
  // The times column alone needs 8 bytes per record; bounding the count by
  // it keeps the offset arithmetic below overflow-free.
  const std::uint64_t n = layout->record_count;
  if (n > size / 8) {
    SetError(error, "entry truncated (records)");
    return false;
  }
  layout->times_off = layout->name_off + PadTo8(layout->name_len);
  layout->lbas_off = layout->times_off + 8 * n;
  layout->counts_off = layout->lbas_off + 8 * n;
  layout->file_ids_off = layout->counts_off + PadTo8(4 * n);
  layout->ops_off = layout->file_ids_off + PadTo8(4 * n);
  layout->footer_off = layout->ops_off + PadTo8(n);
  if (layout->footer_off + kFooterBytes != size) {
    SetError(error, "entry truncated (records)");
    return false;
  }
  return true;
}

void AppendCalibratedConfig(std::ostringstream& out,
                            const CalibratedWorkloadConfig& c) {
  out << "generator = calibrated\n"
      << "name = " << c.name << "\n"
      << "duration_sec = " << CanonicalDouble(c.duration_sec) << "\n"
      << "distinct_kbytes = " << c.distinct_kbytes << "\n"
      << "read_fraction = " << CanonicalDouble(c.read_fraction) << "\n"
      << "block_bytes = " << c.block_bytes << "\n"
      << "mean_read_blocks = " << CanonicalDouble(c.mean_read_blocks) << "\n"
      << "mean_write_blocks = " << CanonicalDouble(c.mean_write_blocks) << "\n"
      << "short_fraction = " << CanonicalDouble(c.short_fraction) << "\n"
      << "short_mean_sec = " << CanonicalDouble(c.short_mean_sec) << "\n"
      << "long_mean_sec = " << CanonicalDouble(c.long_mean_sec) << "\n"
      << "max_gap_sec = " << CanonicalDouble(c.max_gap_sec) << "\n"
      << "delete_fraction = " << CanonicalDouble(c.delete_fraction) << "\n"
      << "file_count = " << c.file_count << "\n"
      << "mean_file_kbytes = " << CanonicalDouble(c.mean_file_kbytes) << "\n"
      << "zipf_skew = " << CanonicalDouble(c.zipf_skew) << "\n"
      << "sequential_fraction = " << CanonicalDouble(c.sequential_fraction) << "\n"
      << "drift_cycles = " << CanonicalDouble(c.drift_cycles) << "\n"
      << "seed = " << c.seed << "\n";
}

void AppendSynthConfig(std::ostringstream& out, const SynthWorkloadConfig& c) {
  out << "generator = synth\n"
      << "dataset_bytes = " << c.dataset_bytes << "\n"
      << "file_bytes = " << c.file_bytes << "\n"
      << "op_count = " << c.op_count << "\n"
      << "hot_access_fraction = " << CanonicalDouble(c.hot_access_fraction) << "\n"
      << "hot_data_fraction = " << CanonicalDouble(c.hot_data_fraction) << "\n"
      << "read_fraction = " << CanonicalDouble(c.read_fraction) << "\n"
      << "write_fraction = " << CanonicalDouble(c.write_fraction) << "\n"
      << "short_fraction = " << CanonicalDouble(c.short_fraction) << "\n"
      << "short_mean_ms = " << CanonicalDouble(c.short_mean_ms) << "\n"
      << "long_base_ms = " << CanonicalDouble(c.long_base_ms) << "\n"
      << "long_exp_mean_ms = " << CanonicalDouble(c.long_exp_mean_ms) << "\n"
      << "seed = " << c.seed << "\n";
}

bool IsEntryName(const std::string& name) {
  const std::string suffix(kEntrySuffix);
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string CanonicalTraceKeyText(const std::string& workload, double scale,
                                  std::uint64_t seed, std::uint32_t format_version) {
  // Mirrors GenerateNamedWorkload exactly: the key captures the *effective*
  // generator configuration, so a change to any preset constant (or to how
  // scale/seed feed in) produces a different fingerprint.
  std::ostringstream out;
  out << "mobisim-trace-cache v" << format_version << "\n"
      << "workload = " << workload << "\n"
      << "scale = " << CanonicalDouble(scale) << "\n"
      << "request_seed = " << seed << "\n";
  if (workload == "synth") {
    SynthWorkloadConfig config;
    config.op_count = std::max<std::uint32_t>(
        16, static_cast<std::uint32_t>(static_cast<double>(config.op_count) * scale));
    config.seed = seed;
    AppendSynthConfig(out, config);
  } else if (workload == "mac" || workload == "dos" || workload == "pc" ||
             workload == "hp") {
    CalibratedWorkloadConfig config;
    if (workload == "mac") {
      config = MacWorkloadConfig(scale);
    } else if (workload == "hp") {
      config = HpWorkloadConfig(scale);
    } else {
      config = DosWorkloadConfig(scale);
    }
    config.seed += seed;
    AppendCalibratedConfig(out, config);
  } else {
    // Unknown names MOBISIM_CHECK-fail at generation time; the key is only
    // ever used for lookups that will fail the same way.
    out << "generator = unknown\n";
  }
  return out.str();
}

std::string TraceCacheFingerprint(const std::string& workload, double scale,
                                  std::uint64_t seed, std::uint32_t format_version) {
  return HexU64(Fnv1a64(CanonicalTraceKeyText(workload, scale, seed, format_version)));
}

std::string SerializeBlockTrace(const BlockTrace& trace) {
  const std::size_t n = trace.records.size();
  const std::size_t total = kFixedHeaderBytes + PadTo8(trace.name.size()) +
                            8 * n + 8 * n + PadTo8(4 * n) + PadTo8(4 * n) +
                            PadTo8(n) + kFooterBytes;
  std::string out;
  out.reserve(total);
  out.append(kEntryMagic, sizeof(kEntryMagic));
  PutU32(&out, kTraceCacheFormatVersion);
  PutU32(&out, trace.block_bytes);
  PutU32(&out, static_cast<std::uint32_t>(trace.name.size()));
  PutU64(&out, static_cast<std::uint64_t>(n));
  PutU64(&out, trace.total_blocks);
  out.append(trace.name);
  out.append(PadTo8(trace.name.size()) - trace.name.size(), '\0');
  for (const BlockRecord& rec : trace.records) {
    PutU64(&out, static_cast<std::uint64_t>(rec.time_us));
  }
  for (const BlockRecord& rec : trace.records) {
    PutU64(&out, rec.lba);
  }
  for (const BlockRecord& rec : trace.records) {
    PutU32(&out, rec.block_count);
  }
  out.append(PadTo8(4 * n) - 4 * n, '\0');
  for (const BlockRecord& rec : trace.records) {
    PutU32(&out, rec.file_id);
  }
  out.append(PadTo8(4 * n) - 4 * n, '\0');
  for (const BlockRecord& rec : trace.records) {
    out.push_back(static_cast<char>(rec.op));
  }
  out.append(PadTo8(n) - n, '\0');
  // Footer: hash of everything before it.  Length is implicit — the record
  // count fixes the exact file size, so truncation fails before hashing.
  PutU64(&out, Fnv1a64Wide(out.data(), out.size()));
  return out;
}

std::optional<BlockTrace> DeserializeBlockTrace(const std::string& data,
                                                std::string* error) {
  EntryLayout layout;
  const char* base = data.data();
  if (!ParseEntryLayout(base, data.size(), &layout, error)) {
    return std::nullopt;
  }
  const std::uint64_t stored_hash = GetU64(base, layout.footer_off);
  if (Fnv1a64Wide(base, layout.footer_off) != stored_hash) {
    SetError(error, "footer hash mismatch");
    return std::nullopt;
  }

  BlockTrace trace;
  trace.name.assign(base + layout.name_off, layout.name_len);
  trace.block_bytes = layout.block_bytes;
  trace.total_blocks = layout.total_blocks;
  trace.records.reserve(layout.record_count);
  for (std::uint64_t i = 0; i < layout.record_count; ++i) {
    const unsigned char op = static_cast<unsigned char>(base[layout.ops_off + i]);
    if (op > static_cast<unsigned char>(OpType::kErase)) {
      SetError(error, "bad op byte");
      return std::nullopt;
    }
    BlockRecord rec;
    rec.time_us = static_cast<SimTime>(GetU64(base, layout.times_off + 8 * i));
    rec.op = static_cast<OpType>(op);
    rec.lba = GetU64(base, layout.lbas_off + 8 * i);
    rec.block_count = GetU32(base, layout.counts_off + 4 * i);
    rec.file_id = GetU32(base, layout.file_ids_off + 4 * i);
    trace.records.push_back(rec);
  }
  return trace;
}

namespace {

// Builds zero-copy storage over a mapped entry.  Returns nullptr with
// `*use_fallback` set when the entry should be loaded by the copying path
// instead (a column landed misaligned, or the host is big-endian); nullptr
// with it clear means the entry is torn or corrupt and should be dropped.
std::shared_ptr<const TraceViewStorage> MapTraceEntry(MmapFile map,
                                                      bool* use_fallback,
                                                      std::string* error) {
  *use_fallback = false;
  EntryLayout layout;
  const char* base = map.data();
  if (!ParseEntryLayout(base, map.size(), &layout, error)) {
    return nullptr;
  }
  const std::uint64_t stored_hash = GetU64(base, layout.footer_off);
  if (Fnv1a64Wide(base, layout.footer_off) != stored_hash) {
    SetError(error, "footer hash mismatch");
    return nullptr;
  }
  for (std::uint64_t i = 0; i < layout.record_count; ++i) {
    if (static_cast<unsigned char>(base[layout.ops_off + i]) >
        static_cast<unsigned char>(OpType::kErase)) {
      SetError(error, "bad op byte");
      return nullptr;
    }
  }
  const auto aligned8 = [base](std::size_t off) {
    return (reinterpret_cast<std::uintptr_t>(base + off) & 7) == 0;
  };
  if (!HostIsLittleEndian() || !aligned8(layout.times_off) ||
      !aligned8(layout.lbas_off) || !aligned8(layout.counts_off) ||
      !aligned8(layout.file_ids_off)) {
    *use_fallback = true;
    SetError(error, "columns not directly addressable on this host");
    return nullptr;
  }
  auto storage = std::make_shared<TraceViewStorage>();
  storage->name.assign(base + layout.name_off, layout.name_len);
  storage->block_bytes = layout.block_bytes;
  storage->total_blocks = layout.total_blocks;
  storage->record_count = layout.record_count;
  storage->zero_copy = true;
  storage->map = std::move(map);
  const char* mapped = storage->map.data();
  storage->times = reinterpret_cast<const SimTime*>(mapped + layout.times_off);
  storage->lbas = reinterpret_cast<const std::uint64_t*>(mapped + layout.lbas_off);
  storage->counts = reinterpret_cast<const std::uint32_t*>(mapped + layout.counts_off);
  storage->file_ids =
      reinterpret_cast<const std::uint32_t*>(mapped + layout.file_ids_off);
  storage->ops = reinterpret_cast<const std::uint8_t*>(mapped + layout.ops_off);
  return storage;
}

}  // namespace

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir)) {}

std::string TraceCache::EntryPath(const std::string& fingerprint) const {
  return dir_ + "/" + fingerprint + kEntrySuffix;
}

std::shared_ptr<const BlockTrace> TraceCache::Load(const std::string& fingerprint) {
  const std::string path = EntryPath(fingerprint);
  std::string data;
  if (!ReadFileToString(path, &data)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto trace = DeserializeBlockTrace(data);
  if (!trace) {
    // Torn or corrupted: drop the entry so the regenerated trace replaces
    // it, and report the lookup as a (corrupt) miss.
    std::remove(path.c_str());
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  copies_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<const BlockTrace>(std::move(*trace));
}

TraceView TraceCache::LoadView(const std::string& fingerprint) {
  const std::string path = EntryPath(fingerprint);
  std::string map_error;
  MmapFile map;
  if (map.Open(path, &map_error)) {
    bool use_fallback = false;
    std::string parse_error;
    if (auto storage = MapTraceEntry(std::move(map), &use_fallback, &parse_error)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      views_.fetch_add(1, std::memory_order_relaxed);
      return TraceView(std::move(storage));
    }
    if (!use_fallback) {
      // Torn or corrupted: same recovery as Load — drop the entry so the
      // regenerated trace replaces it, and report a (corrupt) miss.
      std::remove(path.c_str());
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return TraceView();
    }
    // Valid entry that cannot be addressed in place: copy it below.
  }
  // Copying fallback: the file exists but could not be mapped (or mapped but
  // not addressed directly).  A plain missing entry lands here too and is
  // just a miss.
  std::string data;
  if (!ReadFileToString(path, &data)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return TraceView();
  }
  auto trace = DeserializeBlockTrace(data);
  if (!trace) {
    std::remove(path.c_str());
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return TraceView();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  copies_.fetch_add(1, std::memory_order_relaxed);
  return TraceView::FromBlockTrace(*trace);
}

bool TraceCache::Store(const std::string& fingerprint, const BlockTrace& trace,
                       std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    SetError(error, "cannot create cache dir " + dir_ + ": " + ec.message());
    errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!WriteFileAtomic(EntryPath(fingerprint), SerializeBlockTrace(trace), error)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TraceCacheStats TraceCache::stats() const {
  TraceCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.views = views_.load(std::memory_order_relaxed);
  s.copies = copies_.load(std::memory_order_relaxed);
  return s;
}

std::string TraceCache::StatsLine() const {
  const TraceCacheStats s = stats();
  std::ostringstream out;
  out << "trace-cache: hits=" << s.hits << " misses=" << s.misses
      << " stores=" << s.stores << " corrupt=" << s.corrupt
      << " errors=" << s.errors << " views=" << s.views
      << " copies=" << s.copies << " dir=" << dir_;
  return out.str();
}

std::shared_ptr<const BlockTrace> LoadOrGenerateBlockTrace(TraceCache* cache,
                                                           const std::string& workload,
                                                           double scale,
                                                           std::uint64_t seed) {
  std::string fingerprint;
  if (cache != nullptr) {
    fingerprint = TraceCacheFingerprint(workload, scale, seed);
    if (auto cached = cache->Load(fingerprint)) {
      return cached;
    }
  }
  const Trace trace = GenerateNamedWorkload(workload, scale, seed);
  auto blocks = std::make_shared<const BlockTrace>(BlockMapper::Map(trace));
  if (cache != nullptr) {
    cache->Store(fingerprint, *blocks);  // best-effort; failure only counts
  }
  return blocks;
}

TraceView LoadOrGenerateTraceView(TraceCache* cache, const std::string& workload,
                                  double scale, std::uint64_t seed) {
  std::string fingerprint;
  if (cache != nullptr) {
    fingerprint = TraceCacheFingerprint(workload, scale, seed);
    if (TraceView view = cache->LoadView(fingerprint)) {
      return view;
    }
  }
  const Trace trace = GenerateNamedWorkload(workload, scale, seed);
  const BlockTrace blocks = BlockMapper::Map(trace);
  if (cache != nullptr) {
    cache->Store(fingerprint, blocks);  // best-effort; failure only counts
  }
  return TraceView::FromBlockTrace(blocks);
}

std::vector<TraceCacheEntry> ListTraceCache(const std::string& dir) {
  std::vector<TraceCacheEntry> entries;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    if (!item.is_regular_file(ec)) {
      continue;
    }
    const std::string name = item.path().filename().string();
    if (!IsEntryName(name)) {
      continue;
    }
    TraceCacheEntry entry;
    entry.path = item.path().string();
    entry.fingerprint = name.substr(0, name.size() - (sizeof(kEntrySuffix) - 1));
    entry.bytes = static_cast<std::uint64_t>(item.file_size(ec));
    struct stat st {};
    if (::stat(entry.path.c_str(), &st) == 0) {
      entry.mtime = static_cast<std::int64_t>(st.st_mtime);
    }
    std::string data;
    entry.valid =
        ReadFileToString(entry.path, &data) && DeserializeBlockTrace(data).has_value();
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const TraceCacheEntry& a, const TraceCacheEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  return entries;
}

TraceCacheGcResult GcTraceCache(const std::string& dir, std::uint64_t max_bytes) {
  TraceCacheGcResult result;
  std::error_code ec;
  // Leftover temp files (a writer that died mid-store) are garbage too.
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = item.path().filename().string();
    if (name.find(".mtc.tmp.") != std::string::npos) {
      result.removed_bytes += static_cast<std::uint64_t>(item.file_size(ec));
      std::filesystem::remove(item.path(), ec);
      ++result.removed;
    }
  }

  std::vector<TraceCacheEntry> entries = ListTraceCache(dir);
  std::uint64_t total = 0;
  std::vector<TraceCacheEntry> valid;
  for (TraceCacheEntry& entry : entries) {
    if (!entry.valid) {
      result.removed_bytes += entry.bytes;
      std::remove(entry.path.c_str());
      ++result.removed;
      continue;
    }
    total += entry.bytes;
    valid.push_back(std::move(entry));
  }

  // Oldest-first eviction down to the byte budget.
  std::sort(valid.begin(), valid.end(),
            [](const TraceCacheEntry& a, const TraceCacheEntry& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime
                                        : a.fingerprint < b.fingerprint;
            });
  for (const TraceCacheEntry& entry : valid) {
    if (max_bytes != 0 && total > max_bytes) {
      total -= entry.bytes;
      result.removed_bytes += entry.bytes;
      std::remove(entry.path.c_str());
      ++result.removed;
    } else {
      ++result.kept;
      result.kept_bytes += entry.bytes;
    }
  }
  return result;
}

}  // namespace mobisim
