#include "src/trace/trace_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include <sys/stat.h>

#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/trace/synth_workload.h"
#include "src/util/atomic_file.h"
#include "src/util/hash.h"
#include "src/util/parse.h"

namespace mobisim {

namespace {

constexpr char kEntryMagic[4] = {'M', 'T', 'C', '1'};
constexpr char kEntrySuffix[] = ".mtc";
// Fixed wire size of one BlockRecord: i64 + u8 + u64 + u32 + u32.
constexpr std::size_t kRecordBytes = 8 + 1 + 8 + 4 + 4;

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(const std::string& data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const std::string& data, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i])) << (8 * i);
  }
  return v;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

void AppendCalibratedConfig(std::ostringstream& out,
                            const CalibratedWorkloadConfig& c) {
  out << "generator = calibrated\n"
      << "name = " << c.name << "\n"
      << "duration_sec = " << CanonicalDouble(c.duration_sec) << "\n"
      << "distinct_kbytes = " << c.distinct_kbytes << "\n"
      << "read_fraction = " << CanonicalDouble(c.read_fraction) << "\n"
      << "block_bytes = " << c.block_bytes << "\n"
      << "mean_read_blocks = " << CanonicalDouble(c.mean_read_blocks) << "\n"
      << "mean_write_blocks = " << CanonicalDouble(c.mean_write_blocks) << "\n"
      << "short_fraction = " << CanonicalDouble(c.short_fraction) << "\n"
      << "short_mean_sec = " << CanonicalDouble(c.short_mean_sec) << "\n"
      << "long_mean_sec = " << CanonicalDouble(c.long_mean_sec) << "\n"
      << "max_gap_sec = " << CanonicalDouble(c.max_gap_sec) << "\n"
      << "delete_fraction = " << CanonicalDouble(c.delete_fraction) << "\n"
      << "file_count = " << c.file_count << "\n"
      << "mean_file_kbytes = " << CanonicalDouble(c.mean_file_kbytes) << "\n"
      << "zipf_skew = " << CanonicalDouble(c.zipf_skew) << "\n"
      << "sequential_fraction = " << CanonicalDouble(c.sequential_fraction) << "\n"
      << "drift_cycles = " << CanonicalDouble(c.drift_cycles) << "\n"
      << "seed = " << c.seed << "\n";
}

void AppendSynthConfig(std::ostringstream& out, const SynthWorkloadConfig& c) {
  out << "generator = synth\n"
      << "dataset_bytes = " << c.dataset_bytes << "\n"
      << "file_bytes = " << c.file_bytes << "\n"
      << "op_count = " << c.op_count << "\n"
      << "hot_access_fraction = " << CanonicalDouble(c.hot_access_fraction) << "\n"
      << "hot_data_fraction = " << CanonicalDouble(c.hot_data_fraction) << "\n"
      << "read_fraction = " << CanonicalDouble(c.read_fraction) << "\n"
      << "write_fraction = " << CanonicalDouble(c.write_fraction) << "\n"
      << "short_fraction = " << CanonicalDouble(c.short_fraction) << "\n"
      << "short_mean_ms = " << CanonicalDouble(c.short_mean_ms) << "\n"
      << "long_base_ms = " << CanonicalDouble(c.long_base_ms) << "\n"
      << "long_exp_mean_ms = " << CanonicalDouble(c.long_exp_mean_ms) << "\n"
      << "seed = " << c.seed << "\n";
}

bool IsEntryName(const std::string& name) {
  const std::string suffix(kEntrySuffix);
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string CanonicalTraceKeyText(const std::string& workload, double scale,
                                  std::uint64_t seed, std::uint32_t format_version) {
  // Mirrors GenerateNamedWorkload exactly: the key captures the *effective*
  // generator configuration, so a change to any preset constant (or to how
  // scale/seed feed in) produces a different fingerprint.
  std::ostringstream out;
  out << "mobisim-trace-cache v" << format_version << "\n"
      << "workload = " << workload << "\n"
      << "scale = " << CanonicalDouble(scale) << "\n"
      << "request_seed = " << seed << "\n";
  if (workload == "synth") {
    SynthWorkloadConfig config;
    config.op_count = std::max<std::uint32_t>(
        16, static_cast<std::uint32_t>(static_cast<double>(config.op_count) * scale));
    config.seed = seed;
    AppendSynthConfig(out, config);
  } else if (workload == "mac" || workload == "dos" || workload == "pc" ||
             workload == "hp") {
    CalibratedWorkloadConfig config;
    if (workload == "mac") {
      config = MacWorkloadConfig(scale);
    } else if (workload == "hp") {
      config = HpWorkloadConfig(scale);
    } else {
      config = DosWorkloadConfig(scale);
    }
    config.seed += seed;
    AppendCalibratedConfig(out, config);
  } else {
    // Unknown names MOBISIM_CHECK-fail at generation time; the key is only
    // ever used for lookups that will fail the same way.
    out << "generator = unknown\n";
  }
  return out.str();
}

std::string TraceCacheFingerprint(const std::string& workload, double scale,
                                  std::uint64_t seed, std::uint32_t format_version) {
  return HexU64(Fnv1a64(CanonicalTraceKeyText(workload, scale, seed, format_version)));
}

std::string SerializeBlockTrace(const BlockTrace& trace) {
  std::string out;
  out.reserve(64 + trace.name.size() + trace.records.size() * kRecordBytes);
  out.append(kEntryMagic, sizeof(kEntryMagic));
  PutU32(&out, kTraceCacheFormatVersion);
  PutU32(&out, static_cast<std::uint32_t>(trace.name.size()));
  out.append(trace.name);
  PutU32(&out, trace.block_bytes);
  PutU64(&out, trace.total_blocks);
  PutU64(&out, static_cast<std::uint64_t>(trace.records.size()));
  for (const BlockRecord& rec : trace.records) {
    PutU64(&out, static_cast<std::uint64_t>(rec.time_us));
    out.push_back(static_cast<char>(rec.op));
    PutU64(&out, rec.lba);
    PutU32(&out, rec.block_count);
    PutU32(&out, rec.file_id);
  }
  // Footer: hash of everything before it.  Length is implicit — the record
  // count fixes the exact file size, so truncation fails before hashing.
  PutU64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

std::optional<BlockTrace> DeserializeBlockTrace(const std::string& data,
                                                std::string* error) {
  // Fixed-size pieces: magic + version + name_len ... + record_count.
  constexpr std::size_t kFixedHeader = 4 + 4 + 4 + 4 + 8 + 8;
  constexpr std::size_t kFooter = 8;
  if (data.size() < kFixedHeader + kFooter) {
    SetError(error, "entry truncated (shorter than header)");
    return std::nullopt;
  }
  if (data.compare(0, sizeof(kEntryMagic), kEntryMagic, sizeof(kEntryMagic)) != 0) {
    SetError(error, "bad magic");
    return std::nullopt;
  }
  std::size_t pos = sizeof(kEntryMagic);
  const std::uint32_t version = GetU32(data, pos);
  pos += 4;
  if (version != kTraceCacheFormatVersion) {
    SetError(error, "format version mismatch");
    return std::nullopt;
  }
  const std::uint32_t name_len = GetU32(data, pos);
  pos += 4;
  if (name_len > data.size() - pos) {
    SetError(error, "entry truncated (name)");
    return std::nullopt;
  }

  BlockTrace trace;
  trace.name = data.substr(pos, name_len);
  pos += name_len;
  if (data.size() - pos < 4 + 8 + 8 + kFooter) {
    SetError(error, "entry truncated (header)");
    return std::nullopt;
  }
  trace.block_bytes = GetU32(data, pos);
  pos += 4;
  trace.total_blocks = GetU64(data, pos);
  pos += 8;
  const std::uint64_t record_count = GetU64(data, pos);
  pos += 8;

  // The record count pins the exact file size; any other length is a torn
  // or corrupted write.
  const std::uint64_t payload = data.size() - pos - kFooter;
  if (record_count > payload / kRecordBytes || record_count * kRecordBytes != payload) {
    SetError(error, "entry truncated (records)");
    return std::nullopt;
  }
  const std::uint64_t stored_hash = GetU64(data, data.size() - kFooter);
  if (Fnv1a64(data.data(), data.size() - kFooter) != stored_hash) {
    SetError(error, "footer hash mismatch");
    return std::nullopt;
  }

  trace.records.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    BlockRecord rec;
    rec.time_us = static_cast<SimTime>(GetU64(data, pos));
    pos += 8;
    const unsigned char op = static_cast<unsigned char>(data[pos]);
    pos += 1;
    if (op > static_cast<unsigned char>(OpType::kErase)) {
      SetError(error, "bad op byte");
      return std::nullopt;
    }
    rec.op = static_cast<OpType>(op);
    rec.lba = GetU64(data, pos);
    pos += 8;
    rec.block_count = GetU32(data, pos);
    pos += 4;
    rec.file_id = GetU32(data, pos);
    pos += 4;
    trace.records.push_back(rec);
  }
  return trace;
}

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir)) {}

std::string TraceCache::EntryPath(const std::string& fingerprint) const {
  return dir_ + "/" + fingerprint + kEntrySuffix;
}

std::shared_ptr<const BlockTrace> TraceCache::Load(const std::string& fingerprint) {
  const std::string path = EntryPath(fingerprint);
  std::string data;
  if (!ReadFileToString(path, &data)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto trace = DeserializeBlockTrace(data);
  if (!trace) {
    // Torn or corrupted: drop the entry so the regenerated trace replaces
    // it, and report the lookup as a (corrupt) miss.
    std::remove(path.c_str());
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<const BlockTrace>(std::move(*trace));
}

bool TraceCache::Store(const std::string& fingerprint, const BlockTrace& trace,
                       std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    SetError(error, "cannot create cache dir " + dir_ + ": " + ec.message());
    errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!WriteFileAtomic(EntryPath(fingerprint), SerializeBlockTrace(trace), error)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TraceCacheStats TraceCache::stats() const {
  TraceCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

std::string TraceCache::StatsLine() const {
  const TraceCacheStats s = stats();
  std::ostringstream out;
  out << "trace-cache: hits=" << s.hits << " misses=" << s.misses
      << " stores=" << s.stores << " corrupt=" << s.corrupt
      << " errors=" << s.errors << " dir=" << dir_;
  return out.str();
}

std::shared_ptr<const BlockTrace> LoadOrGenerateBlockTrace(TraceCache* cache,
                                                           const std::string& workload,
                                                           double scale,
                                                           std::uint64_t seed) {
  std::string fingerprint;
  if (cache != nullptr) {
    fingerprint = TraceCacheFingerprint(workload, scale, seed);
    if (auto cached = cache->Load(fingerprint)) {
      return cached;
    }
  }
  const Trace trace = GenerateNamedWorkload(workload, scale, seed);
  auto blocks = std::make_shared<const BlockTrace>(BlockMapper::Map(trace));
  if (cache != nullptr) {
    cache->Store(fingerprint, *blocks);  // best-effort; failure only counts
  }
  return blocks;
}

std::vector<TraceCacheEntry> ListTraceCache(const std::string& dir) {
  std::vector<TraceCacheEntry> entries;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    if (!item.is_regular_file(ec)) {
      continue;
    }
    const std::string name = item.path().filename().string();
    if (!IsEntryName(name)) {
      continue;
    }
    TraceCacheEntry entry;
    entry.path = item.path().string();
    entry.fingerprint = name.substr(0, name.size() - (sizeof(kEntrySuffix) - 1));
    entry.bytes = static_cast<std::uint64_t>(item.file_size(ec));
    struct stat st {};
    if (::stat(entry.path.c_str(), &st) == 0) {
      entry.mtime = static_cast<std::int64_t>(st.st_mtime);
    }
    std::string data;
    entry.valid =
        ReadFileToString(entry.path, &data) && DeserializeBlockTrace(data).has_value();
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const TraceCacheEntry& a, const TraceCacheEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  return entries;
}

TraceCacheGcResult GcTraceCache(const std::string& dir, std::uint64_t max_bytes) {
  TraceCacheGcResult result;
  std::error_code ec;
  // Leftover temp files (a writer that died mid-store) are garbage too.
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = item.path().filename().string();
    if (name.find(".mtc.tmp.") != std::string::npos) {
      result.removed_bytes += static_cast<std::uint64_t>(item.file_size(ec));
      std::filesystem::remove(item.path(), ec);
      ++result.removed;
    }
  }

  std::vector<TraceCacheEntry> entries = ListTraceCache(dir);
  std::uint64_t total = 0;
  std::vector<TraceCacheEntry> valid;
  for (TraceCacheEntry& entry : entries) {
    if (!entry.valid) {
      result.removed_bytes += entry.bytes;
      std::remove(entry.path.c_str());
      ++result.removed;
      continue;
    }
    total += entry.bytes;
    valid.push_back(std::move(entry));
  }

  // Oldest-first eviction down to the byte budget.
  std::sort(valid.begin(), valid.end(),
            [](const TraceCacheEntry& a, const TraceCacheEntry& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime
                                        : a.fingerprint < b.fingerprint;
            });
  for (const TraceCacheEntry& entry : valid) {
    if (max_bytes != 0 && total > max_bytes) {
      total -= entry.bytes;
      result.removed_bytes += entry.bytes;
      std::remove(entry.path.c_str());
      ++result.removed;
    } else {
      ++result.kept;
      result.kept_bytes += entry.bytes;
    }
  }
  return result;
}

}  // namespace mobisim
