// Synthetic stand-ins for the paper's mac, dos, and hp traces.
//
// The original traces (PowerBook Duo 230 file-level traces, Kester Li's
// Berkeley dos traces, and the Ruemmler/Wilkes HP-UX disk traces) are not
// publicly available.  Every simulation result in the paper is a function of
// the workload statistics its Table 3 reports, so we generate workloads
// calibrated to those statistics: duration, distinct Kbytes accessed, read
// fraction, file-system block size, mean read/write sizes in blocks, and the
// mean / max / sigma of the inter-arrival time, plus a hot/cold locality
// structure and (for dos) deletions.
#ifndef MOBISIM_SRC_TRACE_CALIBRATED_WORKLOAD_H_
#define MOBISIM_SRC_TRACE_CALIBRATED_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/trace/trace_record.h"
#include "src/util/rng.h"

namespace mobisim {

struct CalibratedWorkloadConfig {
  std::string name;
  // Table 3 targets.
  double duration_sec = 0.0;
  std::uint64_t distinct_kbytes = 0;
  double read_fraction = 0.5;
  std::uint32_t block_bytes = 1024;
  double mean_read_blocks = 1.0;
  double mean_write_blocks = 1.0;
  // Inter-arrival model: `short_fraction` of gaps are uniform in
  // [0, 2*short_mean_sec]; the rest are exponential with mean long_mean_sec,
  // capped at max_gap_sec.  Calibrated per trace so that the overall
  // mean/sigma/max land near Table 3.
  double short_fraction = 0.95;
  double short_mean_sec = 0.05;
  double long_mean_sec = 1.0;
  double max_gap_sec = 100.0;
  // Fraction of operations that delete a file (dos only in the paper).
  double delete_fraction = 0.0;
  // File population shape.
  std::uint32_t file_count = 1000;
  double mean_file_kbytes = 20.0;
  // Zipf skew of file popularity; ~0.9 concentrates most traffic on a small
  // working set, which is what makes a 2-MB DRAM cache effective.
  double zipf_skew = 0.9;
  // Probability that an access continues sequentially from the previous
  // access to the same file rather than starting at a random offset.
  double sequential_fraction = 0.5;
  // Working-set drift: the Zipf popularity ranking rotates through the file
  // population this many times over the trace.  Non-stationary popularity is
  // what lets a trace touch far more data than the cache holds while still
  // enjoying a high hit rate -- exactly the structure of the paper's traces
  // (22000 distinct KB under a 2-MB cache with ~millisecond mean reads).
  double drift_cycles = 0.0;
  std::uint64_t seed = 1;
};

// Presets matching Table 3 of the paper.  `scale` in (0, 1] shrinks the
// operation count (and hence duration) proportionally for fast tests.
CalibratedWorkloadConfig MacWorkloadConfig(double scale = 1.0);
CalibratedWorkloadConfig DosWorkloadConfig(double scale = 1.0);
CalibratedWorkloadConfig HpWorkloadConfig(double scale = 1.0);

Trace GenerateCalibratedWorkload(const CalibratedWorkloadConfig& config);

// Convenience: generate one of the named presets ("mac", "dos", "hp",
// "synth") at the given scale.  MOBISIM_CHECK-fails on unknown names.
Trace GenerateNamedWorkload(const std::string& name, double scale = 1.0,
                            std::uint64_t seed = 1);

}  // namespace mobisim

#endif  // MOBISIM_SRC_TRACE_CALIBRATED_WORKLOAD_H_
