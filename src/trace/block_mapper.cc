#include "src/trace/block_mapper.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "read";
    case OpType::kWrite:
      return "write";
    case OpType::kErase:
      return "erase";
  }
  return "unknown";
}

BlockTrace BlockMapper::Map(const Trace& trace) {
  MOBISIM_CHECK(trace.block_bytes > 0);
  const std::uint64_t block = trace.block_bytes;

  // Pass 1: maximum extent (in blocks) each file ever reaches.
  std::unordered_map<std::uint32_t, std::uint64_t> max_blocks;
  for (const TraceRecord& rec : trace.records) {
    if (rec.op == OpType::kErase) {
      continue;
    }
    const std::uint64_t end = rec.offset + rec.size_bytes;
    const std::uint64_t blocks = (end + block - 1) / block;
    std::uint64_t& entry = max_blocks[rec.file_id];
    entry = std::max(entry, std::max<std::uint64_t>(blocks, 1));
  }

  // Pass 2: allocate extents in order of first appearance and emit records.
  BlockTrace out;
  out.name = trace.name;
  out.block_bytes = trace.block_bytes;
  out.records.reserve(trace.records.size());

  std::unordered_map<std::uint32_t, Extent> extents;
  std::uint64_t next_block = 0;
  for (const TraceRecord& rec : trace.records) {
    auto it = extents.find(rec.file_id);
    if (it == extents.end()) {
      const auto size_it = max_blocks.find(rec.file_id);
      // A file whose only events are erases gets a minimal 1-block extent.
      const std::uint64_t blocks = size_it == max_blocks.end() ? 1 : size_it->second;
      it = extents.emplace(rec.file_id, Extent{next_block, blocks}).first;
      next_block += blocks;
    }
    const Extent& extent = it->second;

    BlockRecord block_rec;
    block_rec.time_us = rec.time_us;
    block_rec.op = rec.op;
    block_rec.file_id = rec.file_id;
    if (rec.op == OpType::kErase) {
      block_rec.lba = extent.first_block;
      block_rec.block_count = static_cast<std::uint32_t>(extent.block_count);
    } else {
      const std::uint64_t first = rec.offset / block;
      const std::uint64_t last = (rec.offset + std::max<std::uint64_t>(rec.size_bytes, 1) - 1) /
                                 block;
      MOBISIM_CHECK(last < extent.block_count);
      block_rec.lba = extent.first_block + first;
      block_rec.block_count = static_cast<std::uint32_t>(last - first + 1);
    }
    out.records.push_back(block_rec);
  }
  out.total_blocks = next_block;
  return out;
}

}  // namespace mobisim
