// The composed storage hierarchy: DRAM buffer cache -> battery-backed SRAM
// write buffer -> non-volatile storage device.
//
// This is the paper's system under test.  Policies implemented here:
//   - write-through, write-allocate DRAM caching (section 4.2);
//   - SRAM write absorption with deferred disk spin-up: writes that fit in
//     SRAM complete without waking a sleeping disk (section 2);
//   - write-behind: while the device is awake anyway, absorbed writes drain
//     to it asynchronously so the buffer is empty when the disk next sleeps;
//   - piggyback flush: a read that wakes the device also drains the buffer,
//     off the read's critical path;
//   - read consistency: a read partially covered by buffered dirty blocks
//     forces a synchronous flush first.
#ifndef MOBISIM_SRC_CORE_STORAGE_SYSTEM_H_
#define MOBISIM_SRC_CORE_STORAGE_SYSTEM_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/cache/sram_write_buffer.h"
#include "src/core/sim_config.h"
#include "src/device/geometric_disk.h"
#include "src/device/magnetic_disk.h"
#include "src/device/storage_device.h"
#include "src/fault/fault.h"

namespace mobisim {

class StorageSystem {
 public:
  // `trace_blocks` is the workload's logical address-space size (used to
  // preload flash devices to the configured utilization).  `block_bytes` is
  // the workload's file-system block size.
  StorageSystem(const SimConfig& config, std::uint64_t trace_blocks,
                std::uint32_t block_bytes);

  // Services one block-level operation; returns its response time (us).
  // Erases return 0 (metadata-only).
  SimTime Handle(const BlockRecord& rec);

  // Brings all components' background accounting up to `now` without I/O.
  // Inline: runs once per simulated record before the operation proper.
  void AccountTo(SimTime now) {
    dram_.AccountUntil(now);
    sram_.AccountUntil(now);
    device_->AdvanceTo(now);
    if (fault_on_) {
      while (!pending_.empty() && pending_.front().completion_us <= now) {
        pending_.pop_front();
      }
    }
    if (config_.write_back_cache && now >= next_cache_sync_us_) {
      SyncDirtyCache(now);
      next_cache_sync_us_ = now + config_.cache_sync_interval_us;
    }
  }

  // Cuts power at `now` and reboots.  Battery-backed SRAM keeps its
  // contents (in-flight SRAM flushes are pulled back into the buffer);
  // volatile DRAM is cleared and its dirty write-back data — plus any other
  // acknowledged-but-not-yet-durable device writes — is counted lost.
  // Returns the device's recovery time; fault_stats() accumulates the
  // damage.  Only meaningful when config.fault enables power loss.
  SimTime PowerLoss(SimTime now);

  const FaultStats& fault_stats() const { return fault_stats_; }

  // Closes all energy accounting at `end` (extended to cover in-flight work).
  void Finish(SimTime end);

  StorageDevice& device() { return *device_; }
  const StorageDevice& device() const { return *device_; }
  const BufferCache& dram() const { return dram_; }
  const SramWriteBuffer& sram() const { return sram_; }

  // Total energy drawn so far across device + DRAM + SRAM (used for warm-up
  // snapshots).
  double TotalEnergyJoules() const;

 private:
  // Who issued a device write; decides its fate when power fails mid-flight.
  enum class WriteSource : std::uint8_t {
    kHost,       // synchronous host write (bypassed SRAM)
    kSramFlush,  // flush of battery-backed SRAM contents
    kCacheSync,  // write-back DRAM sync / dirty eviction
  };
  // A device write issued but not yet complete.  With fault injection on,
  // the host sees writes acknowledged at issue time, so anything still here
  // when power fails was acknowledged but is not durable.
  struct PendingWrite {
    SimTime completion_us = 0;
    std::uint64_t lba = 0;
    std::uint32_t count = 0;
    WriteSource source = WriteSource::kHost;
  };

  SimTime HandleRead(const BlockRecord& rec);
  SimTime HandleWrite(const BlockRecord& rec);
  void HandleErase(const BlockRecord& rec);

  // Device I/O with bounded retry-with-backoff for injected transient
  // errors.  Plain passthrough when fault injection is off.  Returns the
  // total elapsed time (attempts + backoff).
  SimTime DeviceRead(SimTime now, const BlockRecord& rec);
  SimTime DeviceWrite(SimTime now, const BlockRecord& rec, WriteSource source);

  // Writes all buffered SRAM ranges to the device starting at `now`;
  // returns the completion time.
  SimTime DrainSramTo(SimTime now);
  bool DeviceIsSleeping(SimTime now) const;
  // Write-back mode: flushes the cache's dirty blocks to the device (off the
  // critical path) and writes back a list of evicted dirty blocks.
  void SyncDirtyCache(SimTime now);
  void WriteBackEvicted(SimTime now, const std::vector<std::uint64_t>& blocks);

  SimConfig config_;
  std::uint32_t block_bytes_;
  std::unique_ptr<StorageDevice> device_;
  MagneticDisk* disk_ = nullptr;      // non-null for the average-cost disk model
  GeometricDisk* geo_disk_ = nullptr;  // non-null for the geometry model
  BufferCache dram_;
  SramWriteBuffer sram_;
  SimTime next_cache_sync_us_ = 0;

  // Fault state (inert when config.fault is all-default).
  bool fault_on_ = false;
  FaultStats fault_stats_;
  // Completion times are monotone in issue order (one serializing device),
  // so durable entries are pruned from the front.
  std::deque<PendingWrite> pending_;

  // Per-call scratch for dirty-eviction victims, kept as a member so the hot
  // read/write paths do not allocate; cleared before each use.
  std::vector<std::uint64_t> evicted_scratch_;
};

// Capacity (bytes) a device needs so `trace_bytes` of live data fits at
// `utilization`, rounded up to whole erase segments with cleaning slack.
std::uint64_t RequiredCapacityBytes(std::uint64_t trace_bytes, double utilization,
                                    std::uint32_t segment_bytes);

}  // namespace mobisim

#endif  // MOBISIM_SRC_CORE_STORAGE_SYSTEM_H_
