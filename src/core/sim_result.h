// Results of one simulation run.
#ifndef MOBISIM_SRC_CORE_SIM_RESULT_H_
#define MOBISIM_SRC_CORE_SIM_RESULT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/device/storage_device.h"
#include "src/util/stats.h"

namespace mobisim {

struct SimResult {
  std::string workload;
  std::string device;

  // Energy over the post-warm-up portion of the run, in joules, split by
  // component as in the paper's tables.
  double device_energy_j = 0.0;
  double dram_energy_j = 0.0;
  double sram_energy_j = 0.0;
  double total_energy_j() const { return device_energy_j + dram_energy_j + sram_energy_j; }

  // Response times in milliseconds, post-warm-up operations only.
  RunningStats read_response_ms;
  RunningStats write_response_ms;
  RunningStats overall_response_ms;
  // Percentile estimates over the same samples (reservoir-backed).
  ReservoirSample read_percentiles_ms;
  ReservoirSample write_percentiles_ms;

  // Post-warm-up wall-clock span in seconds.
  double duration_sec = 0.0;
  std::uint64_t record_count = 0;
  std::uint64_t warm_record_count = 0;

  // Whole-run device event counters (includes warm-up).
  DeviceCounters counters;

  // Cache behaviour (whole run).
  std::uint64_t dram_hits = 0;
  std::uint64_t dram_misses = 0;
  std::uint64_t sram_absorbed = 0;
  std::uint64_t sram_flushes = 0;

  // Flash endurance: per-segment erase-count distribution at end of run.
  double max_segment_erases = 0.0;
  double mean_segment_erases = 0.0;

  // Whole-run device time breakdown: seconds per operating mode, in the
  // device's meter order (e.g. disk: read, write, idle, sleep, spinup), and
  // a rendered one-line energy breakdown.
  std::vector<std::pair<std::string, double>> device_mode_seconds;
  std::string device_energy_breakdown;

  // FTL policy columns and counters are exported only when ftl_enabled, so
  // sweeps that never name an FTL keep their historical output schema.
  bool ftl_enabled = false;

  // -- Fault injection and recovery (exported only when fault_enabled so
  // healthy runs keep their pre-fault output schema byte-identical) --------
  bool fault_enabled = false;
  std::uint64_t power_losses = 0;
  // Host write blocks acknowledged but lost to power failures.
  std::uint64_t lost_acked_writes = 0;
  std::uint64_t io_retries = 0;
  std::uint64_t io_failures = 0;
  std::uint64_t transient_errors = 0;
  double recovery_sec = 0.0;
  double recovery_energy_j = 0.0;
  std::uint64_t remapped_blocks = 0;
  std::uint64_t bad_segments = 0;
  // Usable fraction of physical flash capacity at end of run (1.0 when the
  // device does not model capacity, e.g. disks).
  double usable_capacity_fraction = 1.0;
  // (seconds, usable fraction) per capacity-losing event.
  std::vector<std::pair<double, double>> capacity_timeline;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_CORE_SIM_RESULT_H_
