// Text configuration for simulations: `key = value` lines (or CLI
// `key=value` tokens) mapped onto SimConfig.  Used by the mobisim_cli
// example so whole experiments can be described in a file.
//
// Recognised keys (sizes accept k/m/g suffixes; booleans accept
// true/false/1/0; times are seconds as decimals):
//   device               catalog name, e.g. intel-datasheet
//   dram, sram           cache sizes
//   capacity             device capacity
//   utilization          flash live fraction (0..1)
//   spin_down            disk spin-down threshold, seconds
//   spin_down_policy     fixed | adaptive
//   cleaning             background | on-demand
//   cleaning_policy      greedy | cost-benefit | wear-aware
//   ftl                  log | page-diff | fat-remap | a cleaner name
//   export_ftl           bool (emit ftl columns even for the default policy)
//   separate_cleaning    bool
//   interleave_prefill   bool
//   async_erasure        bool
//   write_back           bool
//   sync_interval        write-back sync period, seconds
//   warm_fraction        leading fraction used to warm caches
//   geometry             bool (use the geometry-based disk model)
//   fault.seed                  fault-injection RNG seed
//   fault.power_loss_interval   mean seconds between power losses (0 = off)
//   fault.transient_error_rate  per-I/O transient failure probability (0..1)
//   fault.bad_block_rate        factory bad-segment probability (0..1)
//   fault.wear_out              bool (per-segment endurance budgets)
//   fault.endurance_scale       wear budget mean as multiple of datasheet
//   fault.endurance_spread      wear budget stddev as fraction of the mean
//   fault.max_retries           I/O retry bound
//   fault.retry_backoff         base retry backoff, seconds
#ifndef MOBISIM_SRC_CORE_CONFIG_TEXT_H_
#define MOBISIM_SRC_CORE_CONFIG_TEXT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/sim_config.h"

namespace mobisim {

// Applies one `key=value` assignment.  Returns false (with a message in
// `error`) on unknown keys or malformed values.
bool ApplyConfigAssignment(SimConfig* config, const std::string& key,
                           const std::string& value, std::string* error);

// Parses `text` ('#' comments, blank lines, `key = value` lines).
std::optional<SimConfig> ParseConfigText(const std::string& text, std::string* error);

// Convenience for CLI argv tokens of the form key=value; unrecognised tokens
// are returned untouched for the caller to interpret.
std::vector<std::string> ApplyConfigArgs(SimConfig* config,
                                         const std::vector<std::string>& args,
                                         std::string* error);

// Parses "64k" / "2m" / "1g" / plain bytes.  Returns nullopt on garbage.
std::optional<std::uint64_t> ParseSize(const std::string& text);
std::optional<bool> ParseBool(const std::string& text);
// Device catalog lookup by spec name ("cu140-datasheet", ...).
std::optional<DeviceSpec> DeviceByName(const std::string& name);
// Cleaning policy by name ("greedy", "cost-benefit", "wear-aware"); the
// inverse of CleaningPolicyName.
std::optional<CleaningPolicy> CleaningPolicyByName(const std::string& name);

// One FTL grid-dimension value.  Cleaner names mean "the log-structured FTL
// with that cleaner"; FTL names ("log", "page-diff", "fat-remap") select the
// translation layer and leave the cleaner alone.
struct FtlSelection {
  FtlPolicyKind kind = FtlPolicyKind::kLogStructured;
  std::optional<CleaningPolicy> cleaner;
};
std::optional<FtlSelection> FtlSelectionByName(const std::string& name);

// One-line summary of a config, for logging.
std::string DescribeConfig(const SimConfig& config);

}  // namespace mobisim

#endif  // MOBISIM_SRC_CORE_CONFIG_TEXT_H_
