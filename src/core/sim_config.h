// Simulation configuration: one storage organization to evaluate.
#ifndef MOBISIM_SRC_CORE_SIM_CONFIG_H_
#define MOBISIM_SRC_CORE_SIM_CONFIG_H_

#include <cstdint>

#include "src/device/device_catalog.h"
#include "src/device/device_spec.h"
#include "src/device/geometric_disk.h"
#include "src/fault/fault.h"
#include "src/flash/ftl_policy.h"
#include "src/flash/segment_manager.h"
#include "src/util/sim_time.h"

namespace mobisim {

struct SimConfig {
  DeviceSpec device;

  // DRAM buffer cache; 2 Mbytes in the paper's mac/dos runs, 0 for hp.
  MemorySpec dram = NecDramSpec();
  std::uint64_t dram_bytes = 2ull * 1024 * 1024;

  // Battery-backed SRAM write buffer; the paper gives magnetic disks a
  // 32-Kbyte buffer by default ("benefit of the doubt", section 2).
  MemorySpec sram = NecSramSpec();
  std::uint64_t sram_bytes = 0;

  // Device capacity.  With `auto_capacity` the simulator grows this so the
  // workload fits at the requested utilization, mirroring the paper's "flash
  // large relative to the trace" methodology (section 5.2).
  std::uint64_t capacity_bytes = 40ull * 1024 * 1024;
  bool auto_capacity = true;

  // Fraction of flash holding live data at simulation start (80% in the
  // paper's baseline runs).
  double flash_utilization = 0.80;
  // Spread the preloaded filler among workload blocks (see
  // FlashCard::Preload).  Off by default: a real card segregates cold data
  // into fully-live segments the greedy cleaner skips; interleaving is the
  // pessimal-mixing ablation.
  bool interleave_prefill = false;

  // Disk power management: spin down after this much inactivity.
  SimTime spin_down_after_us = 5 * kUsPerSec;
  // Fixed threshold (the paper) or the adaptive policy from the paper's
  // reference [5].
  SpinDownPolicy spin_down_policy = SpinDownPolicy::kFixedThreshold;

  // Use the detailed geometry-based disk model (seek curve + rotational
  // position) instead of the paper's average-cost model; disks only.
  bool use_disk_geometry = false;
  DiskGeometry disk_geometry;

  // Flash-card cleaning.
  bool background_cleaning = true;
  CleaningPolicy cleaning_policy = CleaningPolicy::kGreedy;
  // Flash translation policy.  The log-structured default is the paper's
  // MFFS model; page-diff and fat-remap are FTL ablations.
  FtlPolicyKind ftl_policy = FtlPolicyKind::kLogStructured;
  // Emit the ftl/backend columns and FTL counters even for the default
  // policy; rows from historical (pre-FTL) sweeps stay byte-identical while
  // this is off and the policy is the default.
  bool export_ftl_metrics = false;
  // eNVy-style hot/cold separation of cleaning copies (ablation; the MFFS
  // card mixes them).
  bool separate_cleaning_segment = false;

  // Flash-disk decoupled erasure (honoured only when the spec supports it,
  // i.e. the SDP5A).
  bool flash_async_erasure = true;

  // Leading fraction of the trace used to warm the caches; statistics cover
  // the remainder (10% in the paper, section 4.2).
  double warm_fraction = 0.10;

  // Write-back DRAM caching (section 4.2 raises it as the alternative that
  // "might avoid some erasures at the cost of occasional data loss").  Dirty
  // blocks are flushed on eviction and every `cache_sync_interval_us`
  // (DOS/UNIX-style periodic sync).  Default is the paper's write-through.
  bool write_back_cache = false;
  SimTime cache_sync_interval_us = 30 * kUsPerSec;

  // Fault injection and recovery (`fault.*` config keys).  All defaults
  // model healthy hardware; the layer is then a strict no-op.
  FaultConfig fault;
};

// Convenience constructors for the paper's standard configurations.
// `sram_bytes` of 0 keeps the catalog default for the device class.
SimConfig MakePaperConfig(const DeviceSpec& device, std::uint64_t dram_bytes,
                          std::uint64_t sram_bytes = 32 * 1024);

}  // namespace mobisim

#endif  // MOBISIM_SRC_CORE_SIM_CONFIG_H_
