// Structured export of simulation results.
//
// A SimResult is flattened into a ResultRow: an ordered list of key/value
// fields (numbers rendered with round-trip precision, strings marked for
// quoting).  Rows serialize to JSON objects (one per line -> JSONL) and CSV,
// and parse back for tooling and tests.  The sweep engine prepends
// configuration fields to each row so every output line is self-describing.
#ifndef MOBISIM_SRC_CORE_RESULT_IO_H_
#define MOBISIM_SRC_CORE_RESULT_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/sim_result.h"

namespace mobisim {

struct ResultField {
  std::string key;
  std::string value;  // already rendered
  bool quoted = false;  // true -> JSON string / always-quoted CSV text
};

// Ordered flat record; keys are unique within a row.
struct ResultRow {
  std::vector<ResultField> fields;

  void AddText(const std::string& key, const std::string& value);
  // Doubles render with %.17g so that JSON -> parse -> JSON is bit-stable.
  void AddNumber(const std::string& key, double value);
  void AddInt(const std::string& key, std::uint64_t value);

  const ResultField* Find(const std::string& key) const;
  // Value lookup helpers; `fallback` when the key is missing or non-numeric.
  double Number(const std::string& key, double fallback = 0.0) const;
  std::string Text(const std::string& key, const std::string& fallback = "") const;
};

// Flattens the full SimResult: energy split, response-time statistics,
// percentiles, counters, cache behaviour, endurance, and per-mode device
// seconds (as mode_<name>_sec).
ResultRow ResultToRow(const SimResult& result);

// --- Run metadata (JSONL header line) ---
//
// A stored run may begin with one metadata line: a JSON object whose first
// key is "_meta".  It identifies the run (git SHA, spec name), fingerprints
// the spec that produced it (so a diff harness can refuse to compare
// incompatible matrices), and records provenance (date, host).  Data readers
// skip it; it never appears in CSV output.
struct RunMeta {
  std::string spec_name;  // logical name, e.g. "ci_reference"
  std::string spec_hash;  // SpecFingerprint() of the producing spec
  std::string git_sha;    // commit the binary was built from ("local" if unknown)
  std::string created;    // ISO-8601 UTC timestamp
  std::string host;       // machine that ran the sweep
  std::uint64_t points = 0;  // data rows that follow
};

// True when the row is a metadata header (first field is "_meta").
bool IsMetaRow(const ResultRow& row);
ResultRow MetaToRow(const RunMeta& meta);
// Returns nullopt when `row` is not a metadata header.
std::optional<RunMeta> MetaFromRow(const ResultRow& row);

// --- JSON (one flat object per row) ---
std::string RowToJson(const ResultRow& row);
// Parses a flat JSON object with string/number/bool/null values.  Returns
// nullopt (with a message in `error`) on malformed input or nesting.
std::optional<ResultRow> RowFromJson(const std::string& text, std::string* error);

// --- CSV (RFC-4180-style quoting) ---
std::string RowToCsvHeader(const ResultRow& row);
std::string RowToCsvLine(const ResultRow& row);
// Reassembles a row from a header line and a data line.
std::optional<ResultRow> RowFromCsv(const std::string& header, const std::string& line,
                                    std::string* error);

}  // namespace mobisim

#endif  // MOBISIM_SRC_CORE_RESULT_IO_H_
