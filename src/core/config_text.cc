#include "src/core/config_text.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "src/util/parse.h"

namespace mobisim {

namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// Strict finite parse: rejects nan/inf and out-of-range values like 1e999
// instead of letting them poison a config (NaN passes naive range checks —
// `nan < 0.0` and `nan >= 1.0` are both false).
std::optional<double> ParseDouble(const std::string& text) {
  return ParseFiniteDouble(text);
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

std::optional<std::uint64_t> ParseSize(const std::string& raw) {
  const std::string text = Lower(Trim(raw));
  if (text.empty()) {
    return std::nullopt;
  }
  std::uint64_t multiplier = 1;
  std::string digits = text;
  const char suffix = text.back();
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k' ? 1024ull : suffix == 'm' ? 1024ull * 1024 : 1024ull * 1024 * 1024;
    digits = text.substr(0, text.size() - 1);
  }
  const auto value = ParseDouble(digits);
  if (!value || *value < 0) {
    return std::nullopt;
  }
  // Guard the cast: double -> uint64 is undefined behaviour once the scaled
  // value reaches 2^64, so sizes like 99999999999g are an error, not UB.
  const double scaled = *value * static_cast<double>(multiplier);
  if (scaled >= 18446744073709549568.0) {  // largest double below 2^64
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(scaled);
}

std::optional<bool> ParseBool(const std::string& raw) {
  const std::string text = Lower(Trim(raw));
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  return std::nullopt;
}

std::optional<DeviceSpec> DeviceByName(const std::string& name) {
  // Same lowering rule as every other name table (NormalizeName): catalog
  // names are canonical '-', lookups tolerate '_' , case, and stray spaces,
  // so intel_datasheet and intel-datasheet resolve identically everywhere.
  const std::string wanted = NormalizeName(name);
  for (const DeviceSpec& spec : AllDeviceSpecs()) {
    if (NormalizeName(spec.name) == wanted) {
      return spec;
    }
  }
  return std::nullopt;
}

std::optional<CleaningPolicy> CleaningPolicyByName(const std::string& name) {
  // One name table for the whole tree: delegate to the flash layer's strict
  // parser (tolerates '_' and case, rejects everything else).
  return CleaningPolicyFromName(name);
}

std::optional<FtlSelection> FtlSelectionByName(const std::string& name) {
  // Cleaner names select the log-structured FTL with that cleaner, so
  // `ftl=greedy,...,page-diff` sweeps cleaners and FTLs in one dimension.
  if (const auto cleaner = CleaningPolicyFromName(name)) {
    return FtlSelection{FtlPolicyKind::kLogStructured, cleaner};
  }
  if (const auto kind = FtlPolicyKindFromName(name)) {
    return FtlSelection{*kind, std::nullopt};
  }
  return std::nullopt;
}

bool ApplyConfigAssignment(SimConfig* config, const std::string& raw_key,
                           const std::string& raw_value, std::string* error) {
  const std::string key = Lower(Trim(raw_key));
  const std::string value = Trim(raw_value);

  if (key == "device") {
    const auto spec = DeviceByName(value);
    if (!spec) {
      SetError(error, "unknown device '" + value + "'");
      return false;
    }
    config->device = *spec;
    return true;
  }
  if (key == "dram" || key == "sram" || key == "capacity") {
    const auto size = ParseSize(value);
    if (!size) {
      SetError(error, "bad size '" + value + "' for " + key);
      return false;
    }
    if (key == "dram") {
      config->dram_bytes = *size;
    } else if (key == "sram") {
      config->sram_bytes = *size;
    } else {
      config->capacity_bytes = *size;
      config->auto_capacity = false;
    }
    return true;
  }
  if (key == "utilization" || key == "warm_fraction") {
    const auto v = ParseDouble(value);
    if (!v || *v < 0.0 || *v >= 1.0) {
      SetError(error, "bad fraction '" + value + "' for " + key);
      return false;
    }
    (key == "utilization" ? config->flash_utilization : config->warm_fraction) = *v;
    return true;
  }
  if (key == "spin_down" || key == "sync_interval") {
    const auto v = ParseDouble(value);
    if (!v || *v < 0.0) {
      SetError(error, "bad seconds '" + value + "' for " + key);
      return false;
    }
    (key == "spin_down" ? config->spin_down_after_us : config->cache_sync_interval_us) =
        UsFromSec(*v);
    return true;
  }
  if (key == "spin_down_policy") {
    if (Lower(value) == "fixed") {
      config->spin_down_policy = SpinDownPolicy::kFixedThreshold;
    } else if (Lower(value) == "adaptive") {
      config->spin_down_policy = SpinDownPolicy::kAdaptive;
    } else {
      SetError(error, "spin_down_policy must be fixed|adaptive");
      return false;
    }
    return true;
  }
  if (key == "cleaning") {
    if (Lower(value) == "background") {
      config->background_cleaning = true;
    } else if (Lower(value) == "on-demand") {
      config->background_cleaning = false;
    } else {
      SetError(error, "cleaning must be background|on-demand");
      return false;
    }
    return true;
  }
  if (key == "cleaning_policy") {
    const auto policy = CleaningPolicyByName(value);
    if (!policy) {
      SetError(error, "cleaning_policy must be greedy|cost-benefit|wear-aware");
      return false;
    }
    config->cleaning_policy = *policy;
    return true;
  }
  if (key == "ftl") {
    const auto selection = FtlSelectionByName(value);
    if (!selection) {
      SetError(error,
               "ftl must be log|page-diff|fat-remap or a cleaner name "
               "(greedy|cost-benefit|wear-aware)");
      return false;
    }
    config->ftl_policy = selection->kind;
    if (selection->cleaner) {
      config->cleaning_policy = *selection->cleaner;
    }
    return true;
  }
  if (key == "export_ftl") {
    const auto v = ParseBool(value);
    if (!v) {
      SetError(error, "bad boolean '" + value + "' for " + key);
      return false;
    }
    config->export_ftl_metrics = *v;
    return true;
  }
  if (key.rfind("nand.", 0) == 0) {
    // NAND topology/timing overrides.  They refine an already-selected
    // kNandSsd device, so `device = nand-...` must come first; anything else
    // would silently edit fields no other device kind reads.
    if (config->device.kind != DeviceKind::kNandSsd) {
      SetError(error, "'" + key + "' requires a nand-ssd device (set device = " +
                          "nand-chip|nand-ssd-4ch|nand-ssd-8ch first)");
      return false;
    }
    NandTopology& nand = config->device.nand;
    if (key == "nand.channels" || key == "nand.dies" || key == "nand.planes" ||
        key == "nand.pages_per_block") {
      const auto v = ParseDouble(value);
      if (!v || *v < 1.0 || *v != static_cast<double>(static_cast<std::uint32_t>(*v))) {
        SetError(error, "bad count '" + value + "' for " + key);
        return false;
      }
      const std::uint32_t count = static_cast<std::uint32_t>(*v);
      if (key == "nand.channels") {
        nand.channels = count;
      } else if (key == "nand.dies") {
        nand.dies_per_channel = count;
      } else if (key == "nand.planes") {
        nand.planes_per_die = count;
      } else {
        nand.pages_per_block = count;
      }
    } else if (key == "nand.page_bytes") {
      const auto size = ParseSize(value);
      if (!size || *size == 0 || *size > (1u << 20)) {
        SetError(error, "bad size '" + value + "' for " + key);
        return false;
      }
      nand.page_bytes = static_cast<std::uint32_t>(*size);
    } else if (key == "nand.read_us" || key == "nand.page_us" ||
               key == "nand.program_us" || key == "nand.erase_ms" ||
               key == "nand.channel_mbps") {
      const auto v = ParseDouble(value);
      if (!v || *v <= 0.0) {
        SetError(error, "bad value '" + value + "' for " + key);
        return false;
      }
      if (key == "nand.read_us" || key == "nand.page_us") {
        nand.read_page_us = *v;
      } else if (key == "nand.program_us") {
        nand.program_page_us = *v;
      } else if (key == "nand.erase_ms") {
        nand.erase_block_ms = *v;
      } else {
        nand.channel_mbps = *v;
      }
    } else {
      SetError(error, "unknown key '" + key + "'");
      return false;
    }
    // The GC erase unit tracks the NAND erase block; ValidateDeviceSpec
    // rejects a divergence, so keep them in lockstep here.
    config->device.erase_segment_bytes = nand.block_bytes();
    config->device.erase_ms_per_segment = nand.erase_block_ms;
    return true;
  }
  if (key == "fault.seed") {
    const auto v = ParseDouble(value);
    if (!v || *v < 0.0) {
      SetError(error, "bad seed '" + value + "' for " + key);
      return false;
    }
    config->fault.seed = static_cast<std::uint64_t>(*v);
    return true;
  }
  if (key == "fault.power_loss_interval" || key == "fault.retry_backoff") {
    const auto v = ParseDouble(value);
    if (!v || *v < 0.0) {
      SetError(error, "bad seconds '" + value + "' for " + key);
      return false;
    }
    (key == "fault.power_loss_interval" ? config->fault.power_loss_interval_us
                                        : config->fault.retry_backoff_us) = UsFromSec(*v);
    return true;
  }
  if (key == "fault.transient_error_rate" || key == "fault.bad_block_rate" ||
      key == "fault.endurance_spread") {
    const auto v = ParseDouble(value);
    if (!v || *v < 0.0 || *v >= 1.0) {
      SetError(error, "bad fraction '" + value + "' for " + key);
      return false;
    }
    if (key == "fault.transient_error_rate") {
      config->fault.transient_error_rate = *v;
    } else if (key == "fault.bad_block_rate") {
      config->fault.bad_block_rate = *v;
    } else {
      config->fault.endurance_spread = *v;
    }
    return true;
  }
  if (key == "fault.endurance_scale") {
    const auto v = ParseDouble(value);
    if (!v || *v <= 0.0) {
      SetError(error, "bad scale '" + value + "' for " + key);
      return false;
    }
    config->fault.endurance_scale = *v;
    return true;
  }
  if (key == "fault.max_retries") {
    const auto v = ParseDouble(value);
    if (!v || *v < 0.0 || *v != static_cast<double>(static_cast<std::uint32_t>(*v))) {
      SetError(error, "bad count '" + value + "' for " + key);
      return false;
    }
    config->fault.max_retries = static_cast<std::uint32_t>(*v);
    return true;
  }
  if (key == "fault.wear_out") {
    const auto v = ParseBool(value);
    if (!v) {
      SetError(error, "bad boolean '" + value + "' for " + key);
      return false;
    }
    config->fault.wear_out = *v;
    return true;
  }
  const struct {
    const char* name;
    bool SimConfig::*field;
  } bool_keys[] = {
      {"separate_cleaning", &SimConfig::separate_cleaning_segment},
      {"interleave_prefill", &SimConfig::interleave_prefill},
      {"async_erasure", &SimConfig::flash_async_erasure},
      {"write_back", &SimConfig::write_back_cache},
      {"geometry", &SimConfig::use_disk_geometry},
  };
  for (const auto& entry : bool_keys) {
    if (key == entry.name) {
      const auto v = ParseBool(value);
      if (!v) {
        SetError(error, "bad boolean '" + value + "' for " + key);
        return false;
      }
      config->*(entry.field) = *v;
      return true;
    }
  }
  SetError(error, "unknown key '" + key + "'");
  return false;
}

std::optional<SimConfig> ParseConfigText(const std::string& text, std::string* error) {
  SimConfig config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      SetError(error, "line " + std::to_string(line_no) + ": expected key = value");
      return std::nullopt;
    }
    std::string assign_error;
    if (!ApplyConfigAssignment(&config, line.substr(0, eq), line.substr(eq + 1),
                               &assign_error)) {
      SetError(error, "line " + std::to_string(line_no) + ": " + assign_error);
      return std::nullopt;
    }
  }
  return config;
}

std::vector<std::string> ApplyConfigArgs(SimConfig* config,
                                         const std::vector<std::string>& args,
                                         std::string* error) {
  std::vector<std::string> leftover;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      leftover.push_back(arg);
      continue;
    }
    std::string assign_error;
    if (!ApplyConfigAssignment(config, arg.substr(0, eq), arg.substr(eq + 1),
                               &assign_error)) {
      // Unknown keys fall through to the caller; real value errors abort.
      if (assign_error.rfind("unknown key", 0) == 0) {
        leftover.push_back(arg);
      } else {
        SetError(error, assign_error);
        return leftover;
      }
    }
  }
  return leftover;
}

std::string DescribeConfig(const SimConfig& config) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s dram=%lluK sram=%lluK util=%.0f%% spin_down=%.1fs policy=%s%s%s",
                config.device.name.c_str(),
                static_cast<unsigned long long>(config.dram_bytes / 1024),
                static_cast<unsigned long long>(config.sram_bytes / 1024),
                config.flash_utilization * 100.0, SecFromUs(config.spin_down_after_us),
                CleaningPolicyName(config.cleaning_policy),
                config.write_back_cache ? " write-back" : "",
                config.use_disk_geometry ? " geometry" : "");
  std::string out(buf);
  if (config.ftl_policy != FtlPolicyKind::kLogStructured) {
    out += " ftl=";
    out += FtlPolicyKindName(config.ftl_policy);
  }
  return out;
}

}  // namespace mobisim
