#include "src/core/result_io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mobisim {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Keys come from identifiers and device mode names; normalize to
// [a-z0-9_] so they are valid CSV headers and easy to query downstream.
std::string SanitizeKey(const std::string& raw) {
  std::string key;
  key.reserve(raw.size());
  for (const char c : raw) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      key += '_';
    }
  }
  return key;
}

class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool Parse(ResultRow* row, std::string* error) {
    SkipSpace();
    if (!Consume('{')) {
      SetError(error, "expected '{'");
      return false;
    }
    SkipSpace();
    if (Consume('}')) {
      return AtEnd(error);
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        SetError(error, "expected string key at offset " + std::to_string(pos_));
        return false;
      }
      SkipSpace();
      if (!Consume(':')) {
        SetError(error, "expected ':' after key '" + key + "'");
        return false;
      }
      SkipSpace();
      ResultField field;
      field.key = key;
      if (!ParseValue(&field, error)) {
        return false;
      }
      row->fields.push_back(std::move(field));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return AtEnd(error);
      }
      SetError(error, "expected ',' or '}' at offset " + std::to_string(pos_));
      return false;
    }
  }

 private:
  bool AtEnd(std::string* error) {
    SkipSpace();
    if (pos_ != text_.size()) {
      SetError(error, "trailing garbage after object");
      return false;
    }
    return true;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          *out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool ParseValue(ResultField* field, std::string* error) {
    if (pos_ >= text_.size()) {
      SetError(error, "unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '"') {
      field->quoted = true;
      if (!ParseString(&field->value)) {
        SetError(error, "bad string value for key '" + field->key + "'");
        return false;
      }
      return true;
    }
    if (c == '{' || c == '[') {
      SetError(error, "nested values are not supported (key '" + field->key + "')");
      return false;
    }
    // number / true / false / null: take the raw token.
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) == 0) {
      ++pos_;
    }
    field->value = text_.substr(start, pos_ - start);
    if (field->value.empty()) {
      SetError(error, "empty value for key '" + field->key + "'");
      return false;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string CsvQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

// Splits one CSV line; `quoted_out` records which fields were quoted.
bool SplitCsvLine(const std::string& line, std::vector<std::string>* cells,
                  std::vector<bool>* quoted_out, std::string* error) {
  cells->clear();
  if (quoted_out != nullptr) {
    quoted_out->clear();
  }
  std::string cell;
  bool in_quotes = false;
  bool was_quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty() && !was_quoted) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      cells->push_back(cell);
      if (quoted_out != nullptr) {
        quoted_out->push_back(was_quoted);
      }
      cell.clear();
      was_quoted = false;
    } else {
      cell += c;
    }
  }
  if (in_quotes) {
    SetError(error, "unterminated quote in CSV line");
    return false;
  }
  cells->push_back(cell);
  if (quoted_out != nullptr) {
    quoted_out->push_back(was_quoted);
  }
  return true;
}

void AddStats(ResultRow* row, const std::string& prefix, const RunningStats& stats) {
  row->AddInt(prefix + "_count", stats.count());
  row->AddNumber(prefix + "_mean", stats.mean());
  row->AddNumber(prefix + "_stddev", stats.stddev());
  row->AddNumber(prefix + "_min", stats.min());
  row->AddNumber(prefix + "_max", stats.max());
}

void AddPercentiles(ResultRow* row, const std::string& prefix,
                    const ReservoirSample& sample) {
  const std::vector<double> qs = sample.Quantiles({0.50, 0.90, 0.95, 0.99});
  row->AddNumber(prefix + "_p50", qs[0]);
  row->AddNumber(prefix + "_p90", qs[1]);
  row->AddNumber(prefix + "_p95", qs[2]);
  row->AddNumber(prefix + "_p99", qs[3]);
}

}  // namespace

void ResultRow::AddText(const std::string& key, const std::string& value) {
  fields.push_back(ResultField{SanitizeKey(key), value, /*quoted=*/true});
}

void ResultRow::AddNumber(const std::string& key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  fields.push_back(ResultField{SanitizeKey(key), buf, /*quoted=*/false});
}

void ResultRow::AddInt(const std::string& key, std::uint64_t value) {
  fields.push_back(ResultField{SanitizeKey(key), std::to_string(value),
                               /*quoted=*/false});
}

const ResultField* ResultRow::Find(const std::string& key) const {
  for (const ResultField& field : fields) {
    if (field.key == key) {
      return &field;
    }
  }
  return nullptr;
}

double ResultRow::Number(const std::string& key, double fallback) const {
  const ResultField* field = Find(key);
  if (field == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(field->value.c_str(), &end);
  if (end == field->value.c_str() || *end != '\0') {
    return fallback;
  }
  return value;
}

std::string ResultRow::Text(const std::string& key, const std::string& fallback) const {
  const ResultField* field = Find(key);
  return field == nullptr ? fallback : field->value;
}

ResultRow ResultToRow(const SimResult& result) {
  ResultRow row;
  row.AddText("workload", result.workload);
  row.AddText("device", result.device);

  row.AddNumber("device_energy_j", result.device_energy_j);
  row.AddNumber("dram_energy_j", result.dram_energy_j);
  row.AddNumber("sram_energy_j", result.sram_energy_j);
  row.AddNumber("total_energy_j", result.total_energy_j());

  AddStats(&row, "read_ms", result.read_response_ms);
  AddStats(&row, "write_ms", result.write_response_ms);
  AddStats(&row, "overall_ms", result.overall_response_ms);
  AddPercentiles(&row, "read_ms", result.read_percentiles_ms);
  AddPercentiles(&row, "write_ms", result.write_percentiles_ms);

  row.AddNumber("duration_sec", result.duration_sec);
  row.AddInt("record_count", result.record_count);
  row.AddInt("warm_record_count", result.warm_record_count);

  const DeviceCounters& c = result.counters;
  row.AddInt("dev_reads", c.reads);
  row.AddInt("dev_writes", c.writes);
  row.AddInt("dev_bytes_read", c.bytes_read);
  row.AddInt("dev_bytes_written", c.bytes_written);
  row.AddInt("spinups", c.spinups);
  row.AddInt("segment_erases", c.segment_erases);
  row.AddInt("blocks_copied", c.blocks_copied);
  row.AddInt("clean_jobs", c.clean_jobs);
  row.AddInt("write_stalls", c.write_stalls);
  row.AddNumber("stall_sec", static_cast<double>(c.stall_time_us) / 1e6);

  row.AddInt("dram_hits", result.dram_hits);
  row.AddInt("dram_misses", result.dram_misses);
  row.AddInt("sram_absorbed", result.sram_absorbed);
  row.AddInt("sram_flushes", result.sram_flushes);

  row.AddNumber("max_segment_erases", result.max_segment_erases);
  row.AddNumber("mean_segment_erases", result.mean_segment_erases);

  // FTL counters are gated like the fault block below: only sweeps that name
  // an FTL (or export explicitly) carry them, so pre-FTL output is unchanged.
  if (result.ftl_enabled) {
    row.AddInt("diff_writes", c.diff_writes);
    row.AddInt("diff_merges", c.diff_merges);
    row.AddInt("diff_merge_reads", c.diff_merge_reads);
    row.AddInt("remap_table_hits", c.remap_table_hits);
    row.AddInt("remap_table_wraps", c.remap_table_wraps);
  }

  // Device operating modes differ per device kind (disk: read/write/idle/
  // sleep/spinup; flash: read/write/erase/...), so a column per mode would
  // give heterogeneous sweeps ragged schemas.  Pack them into one
  // "name=seconds;..." field instead; keys stay identical across devices.
  std::string modes;
  for (const auto& [mode, seconds] : result.device_mode_seconds) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s=%.17g", mode.c_str(), seconds);
    if (!modes.empty()) {
      modes += ';';
    }
    modes += buf;
  }
  row.AddText("mode_seconds", modes);

  // Fault metrics are gated so healthy runs keep the exact pre-fault schema
  // (the committed bench_db baseline depends on it).  The sweep runner sets
  // fault.export_metrics uniformly across a grid, so fault sweeps still
  // produce one consistent schema per file.
  if (result.fault_enabled) {
    row.AddInt("power_losses", result.power_losses);
    row.AddInt("lost_acked_writes", result.lost_acked_writes);
    row.AddInt("io_retries", result.io_retries);
    row.AddInt("io_failures", result.io_failures);
    row.AddInt("transient_errors", result.transient_errors);
    row.AddNumber("recovery_sec", result.recovery_sec);
    row.AddNumber("recovery_energy_j", result.recovery_energy_j);
    row.AddInt("remapped_blocks", result.remapped_blocks);
    row.AddInt("bad_segments", result.bad_segments);
    row.AddNumber("usable_capacity_fraction", result.usable_capacity_fraction);
    // Same packed convention as mode_seconds: "sec=fraction;...".
    std::string timeline;
    for (const auto& [sec, fraction] : result.capacity_timeline) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g=%.17g", sec, fraction);
      if (!timeline.empty()) {
        timeline += ';';
      }
      timeline += buf;
    }
    row.AddText("capacity_timeline", timeline);
  }
  return row;
}

bool IsMetaRow(const ResultRow& row) {
  return !row.fields.empty() && row.fields.front().key == "_meta";
}

ResultRow MetaToRow(const RunMeta& meta) {
  ResultRow row;
  row.AddInt("_meta", 1);
  row.AddText("spec_name", meta.spec_name);
  row.AddText("spec_hash", meta.spec_hash);
  row.AddText("git_sha", meta.git_sha);
  row.AddText("created", meta.created);
  row.AddText("host", meta.host);
  row.AddInt("points", meta.points);
  return row;
}

std::optional<RunMeta> MetaFromRow(const ResultRow& row) {
  if (!IsMetaRow(row)) {
    return std::nullopt;
  }
  RunMeta meta;
  meta.spec_name = row.Text("spec_name");
  meta.spec_hash = row.Text("spec_hash");
  meta.git_sha = row.Text("git_sha");
  meta.created = row.Text("created");
  meta.host = row.Text("host");
  meta.points = static_cast<std::uint64_t>(row.Number("points", 0));
  return meta;
}

std::string RowToJson(const ResultRow& row) {
  std::string out = "{";
  bool first = true;
  for (const ResultField& field : row.fields) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + JsonEscape(field.key) + "\":";
    if (field.quoted) {
      out += "\"" + JsonEscape(field.value) + "\"";
    } else {
      out += field.value;
    }
  }
  out += "}";
  return out;
}

std::optional<ResultRow> RowFromJson(const std::string& text, std::string* error) {
  ResultRow row;
  JsonScanner scanner(text);
  if (!scanner.Parse(&row, error)) {
    return std::nullopt;
  }
  return row;
}

std::string RowToCsvHeader(const ResultRow& row) {
  std::string out;
  bool first = true;
  for (const ResultField& field : row.fields) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += field.key;  // sanitized keys never need quoting
  }
  return out;
}

std::string RowToCsvLine(const ResultRow& row) {
  std::string out;
  bool first = true;
  for (const ResultField& field : row.fields) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += field.quoted ? CsvQuote(field.value) : field.value;
  }
  return out;
}

std::optional<ResultRow> RowFromCsv(const std::string& header, const std::string& line,
                                    std::string* error) {
  std::vector<std::string> keys;
  std::vector<std::string> values;
  std::vector<bool> quoted;
  if (!SplitCsvLine(header, &keys, nullptr, error) ||
      !SplitCsvLine(line, &values, &quoted, error)) {
    return std::nullopt;
  }
  if (keys.size() != values.size()) {
    SetError(error, "CSV header has " + std::to_string(keys.size()) + " columns but row has " +
                        std::to_string(values.size()));
    return std::nullopt;
  }
  ResultRow row;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    row.fields.push_back(ResultField{keys[i], values[i], quoted[i]});
  }
  return row;
}

}  // namespace mobisim
