// Trace-driven simulator: runs a block-level workload through a
// StorageSystem and gathers the paper's metrics.
//
// Thread-safety contract (relied on by src/runner's parallel sweep engine;
// audited 2026-08, keep it true):
//   - RunSimulation and RunNamedWorkload share no mutable state: every piece
//     of simulation state (StorageSystem, devices, caches, RNGs, reservoir
//     samplers) is constructed per call, and the workload generators seed
//     their own Rng instances.  Concurrent calls from different threads are
//     safe, and results are bit-identical to serial execution regardless of
//     scheduling.
//   - A `const BlockTrace&` or TraceView may be shared across concurrent
//     RunSimulation calls; the simulator only reads it (TraceView backings
//     are immutable after construction, including mmap'd ones).
//   - Do NOT share one StorageSystem/StorageDevice across threads, even
//     through const methods: some accessors refresh cached aggregates (e.g.
//     FlashCard::counters() recomputes erase statistics into a mutable
//     member).  One simulation, one thread.
//   - Anything added to this path must stay free of function-local statics,
//     globals, and ambient RNG (rand, time-seeded generators); determinism
//     here is what makes parallel sweeps reproducible.
#ifndef MOBISIM_SRC_CORE_SIMULATOR_H_
#define MOBISIM_SRC_CORE_SIMULATOR_H_

#include <string>

#include "src/core/sim_config.h"
#include "src/core/sim_result.h"
#include "src/core/storage_system.h"
#include "src/trace/trace_record.h"
#include "src/trace/trace_view.h"

namespace mobisim {

// Runs `trace` under `config`.  The first config.warm_fraction of records
// warms the caches; energy and response statistics cover the remainder
// (section 4.2 of the paper).  The TraceView overload is the real
// implementation (it walks the view's columns in place, zero-copy when the
// view maps a cache entry); the BlockTrace overload copies into a view and
// produces byte-identical results.
SimResult RunSimulation(const TraceView& trace, const SimConfig& config);
SimResult RunSimulation(const BlockTrace& trace, const SimConfig& config);

// Convenience: generate the named workload ("mac", "dos", "hp", "synth"),
// lower it to block level, and simulate.  `scale` shrinks the workload for
// fast runs.  The hp trace is automatically run without a DRAM cache, as in
// the paper (its trace was captured below the buffer cache).
SimResult RunNamedWorkload(const std::string& workload, const SimConfig& config,
                           double scale = 1.0);

}  // namespace mobisim

#endif  // MOBISIM_SRC_CORE_SIMULATOR_H_
