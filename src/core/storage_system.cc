#include "src/core/storage_system.h"

#include <algorithm>

#include "src/device/flash_card.h"
#include "src/device/flash_disk.h"
#include "src/device/nand_ssd.h"
#include "src/util/check.h"

namespace mobisim {

std::uint64_t RequiredCapacityBytes(std::uint64_t trace_bytes, double utilization,
                                    std::uint32_t segment_bytes) {
  MOBISIM_CHECK(utilization > 0.0 && utilization < 1.0);
  const std::uint32_t segment = std::max<std::uint32_t>(segment_bytes, 1);
  const auto needed = static_cast<std::uint64_t>(
      static_cast<double>(trace_bytes) / utilization);
  // Round up to whole segments and leave the cleaner three segments of slack.
  const std::uint64_t rounded = ((needed + segment - 1) / segment + 3) * segment;
  return rounded;
}

StorageSystem::StorageSystem(const SimConfig& config, std::uint64_t trace_blocks,
                             std::uint32_t block_bytes)
    : config_(config),
      block_bytes_(block_bytes),
      dram_(config.dram, config.dram_bytes, block_bytes),
      sram_(config.sram, config.sram_bytes, block_bytes) {
  DeviceOptions options;
  options.block_bytes = block_bytes;
  options.spin_down_after_us = config.spin_down_after_us;
  options.spin_down_policy = config.spin_down_policy;
  options.background_cleaning = config.background_cleaning;
  options.cleaning_policy = config.cleaning_policy;
  options.ftl_policy = config.ftl_policy;
  options.separate_cleaning_segment = config.separate_cleaning_segment;
  options.fault = config.fault;
  fault_on_ = config.fault.enabled();

  const std::uint64_t trace_bytes = trace_blocks * block_bytes;
  options.capacity_bytes = config.capacity_bytes;
  if (config.device.kind != DeviceKind::kMagneticDisk && config.auto_capacity) {
    const std::uint32_t segment =
        config.device.erase_segment_bytes > 0 ? config.device.erase_segment_bytes : block_bytes;
    options.capacity_bytes = std::max(
        options.capacity_bytes,
        RequiredCapacityBytes(trace_bytes, config.flash_utilization, segment));
  }
  if (config.device.kind == DeviceKind::kMagneticDisk) {
    options.capacity_bytes = std::max(options.capacity_bytes, trace_bytes);
  }

  if (config.device.kind == DeviceKind::kMagneticDisk && config.use_disk_geometry) {
    device_ = std::make_unique<GeometricDisk>(config.device, config.disk_geometry, options);
  } else {
    device_ = CreateDevice(config.device, options);
  }
  disk_ = dynamic_cast<MagneticDisk*>(device_.get());
  geo_disk_ = dynamic_cast<GeometricDisk*>(device_.get());

  if (auto* card = dynamic_cast<FlashCard*>(device_.get())) {
    card->Preload(trace_blocks, config.flash_utilization, config.interleave_prefill);
  } else if (auto* ssd = dynamic_cast<NandSsd*>(device_.get())) {
    ssd->Preload(trace_blocks, config.flash_utilization, config.interleave_prefill);
  } else if (auto* flash_disk = dynamic_cast<FlashDisk*>(device_.get())) {
    const std::uint64_t capacity_blocks = options.capacity_bytes / block_bytes;
    const auto live_blocks = static_cast<std::uint64_t>(
        config.flash_utilization * static_cast<double>(capacity_blocks));
    flash_disk->Preload(std::max(live_blocks, trace_blocks));
    flash_disk->set_asynchronous_erasure(config.flash_async_erasure &&
                                         config.device.pre_erased_write_kbps > 0.0);
  }
}

double StorageSystem::TotalEnergyJoules() const {
  return device_->energy().total_joules() + dram_.energy().total_joules() +
         sram_.energy().total_joules();
}

bool StorageSystem::DeviceIsSleeping(SimTime now) const {
  if (disk_ != nullptr) {
    return !disk_->IsSpinningAt(now);
  }
  if (geo_disk_ != nullptr) {
    return !geo_disk_->IsSpinningAt(now);
  }
  // Flash devices have no spin state; write-behind is always cheap, so treat
  // them as awake.
  return false;
}

SimTime StorageSystem::DeviceRead(SimTime now, const BlockRecord& rec) {
  if (!fault_on_) {
    return device_->Read(now, rec);
  }
  SimTime elapsed = 0;
  std::uint32_t attempt = 0;
  for (;;) {
    const IoResult r = device_->ReadOp(now + elapsed, rec);
    elapsed += r.time_us;
    if (r.ok()) {
      break;
    }
    if (attempt >= config_.fault.max_retries) {
      ++fault_stats_.io_failures;
      break;
    }
    ++attempt;
    ++fault_stats_.io_retries;
    // Exponential backoff: attempt k waits 2^(k-1) * retry_backoff.
    elapsed += config_.fault.retry_backoff_us * (SimTime{1} << (attempt - 1));
  }
  return elapsed;
}

SimTime StorageSystem::DeviceWrite(SimTime now, const BlockRecord& rec,
                                   WriteSource source) {
  if (!fault_on_) {
    return device_->Write(now, rec);
  }
  SimTime elapsed = 0;
  std::uint32_t attempt = 0;
  bool durable = false;
  for (;;) {
    const IoResult r = device_->WriteOp(now + elapsed, rec);
    elapsed += r.time_us;
    if (r.ok()) {
      durable = true;
      break;
    }
    if (attempt >= config_.fault.max_retries) {
      ++fault_stats_.io_failures;
      break;
    }
    ++attempt;
    ++fault_stats_.io_retries;
    elapsed += config_.fault.retry_backoff_us * (SimTime{1} << (attempt - 1));
  }
  if (durable) {
    // Track the in-flight window: if power fails before `completion_us` the
    // write was acknowledged but is not durable yet.
    pending_.push_back({now + elapsed, rec.lba, rec.block_count, source});
  }
  return elapsed;
}

SimTime StorageSystem::DrainSramTo(SimTime now) {
  SimTime completion = now;
  for (const SramWriteBuffer::FlushRange& range : sram_.Drain()) {
    BlockRecord rec;
    rec.time_us = now;
    rec.op = OpType::kWrite;
    rec.lba = range.lba;
    rec.block_count = range.count;
    // Flushed ranges come from arbitrary files; charge a random access.
    rec.file_id = ~std::uint32_t{0} - 1;
    completion = now + DeviceWrite(now, rec, WriteSource::kSramFlush);
  }
  return completion;
}

SimTime StorageSystem::PowerLoss(SimTime now) {
  AccountTo(now);
  ++fault_stats_.power_losses;

  // Triage in-flight device writes.  SRAM-flush data still sits safely in
  // the battery-backed buffer — put it back so it re-flushes after reboot;
  // everything else was acknowledged to the host and is gone.
  std::vector<PendingWrite> respill;
  for (const PendingWrite& w : pending_) {
    if (w.completion_us <= now) {
      continue;  // became durable before the lights went out
    }
    if (w.source == WriteSource::kSramFlush) {
      if (!sram_.Absorb(w.lba, w.count)) {
        // The buffer refilled since the flush was issued; write the range
        // straight out during recovery instead of dropping it.
        respill.push_back(w);
      }
    } else {
      fault_stats_.lost_acked_blocks += w.count;
    }
  }
  pending_.clear();

  // DRAM is volatile: dirty write-back blocks die with it, clean contents
  // just need re-fetching.
  fault_stats_.lost_acked_blocks += dram_.dirty_blocks();
  dram_.Clear();

  const double energy_before_j = TotalEnergyJoules();
  const SimTime recovery = device_->PowerLoss(now);
  for (const PendingWrite& w : respill) {
    BlockRecord rec;
    rec.time_us = now + recovery;
    rec.op = OpType::kWrite;
    rec.lba = w.lba;
    rec.block_count = w.count;
    rec.file_id = ~std::uint32_t{0} - 1;
    // Recovery replay; transient errors are not modeled on this path.
    device_->Write(now + recovery, rec);
  }
  fault_stats_.recovery_time_us += recovery;
  fault_stats_.recovery_energy_j += TotalEnergyJoules() - energy_before_j;

  if (config_.write_back_cache) {
    // The periodic-sync clock restarts with the reboot.
    next_cache_sync_us_ = now + recovery + config_.cache_sync_interval_us;
  }
  return recovery;
}

void StorageSystem::SyncDirtyCache(SimTime now) {
  for (const BufferCache::DirtyRange& range : dram_.DrainDirty()) {
    BlockRecord rec;
    rec.time_us = now;
    rec.op = OpType::kWrite;
    rec.lba = range.lba;
    rec.block_count = range.count;
    rec.file_id = ~std::uint32_t{0} - 2;
    DeviceWrite(now, rec, WriteSource::kCacheSync);
  }
}

void StorageSystem::WriteBackEvicted(SimTime now, const std::vector<std::uint64_t>& blocks) {
  for (const std::uint64_t lba : blocks) {
    BlockRecord rec;
    rec.time_us = now;
    rec.op = OpType::kWrite;
    rec.lba = lba;
    rec.block_count = 1;
    rec.file_id = ~std::uint32_t{0} - 2;
    DeviceWrite(now, rec, WriteSource::kCacheSync);
  }
}

SimTime StorageSystem::Handle(const BlockRecord& rec) {
  AccountTo(rec.time_us);
  switch (rec.op) {
    case OpType::kRead:
      return HandleRead(rec);
    case OpType::kWrite:
      return HandleWrite(rec);
    case OpType::kErase:
      HandleErase(rec);
      return 0;
  }
  MOBISIM_CHECK(false && "unreachable");
  return 0;
}

SimTime StorageSystem::HandleRead(const BlockRecord& rec) {
  const SimTime now = rec.time_us;
  const std::uint64_t bytes = static_cast<std::uint64_t>(rec.block_count) * block_bytes_;

  if (dram_.ReadHit(rec.lba, rec.block_count)) {
    dram_.NoteTransfer(bytes);
    return dram_.AccessTime(bytes);
  }
  if (sram_.ContainsAll(rec.lba, rec.block_count)) {
    sram_.NoteTransfer(bytes);
    dram_.Insert(rec.lba, rec.block_count);
    return sram_.AccessTime(bytes);
  }

  SimTime start = now;
  if (sram_.ContainsAny(rec.lba, rec.block_count)) {
    // The device copy of some blocks is stale; flush before reading.
    start = DrainSramTo(now);
  }
  const SimTime response = (start - now) + DeviceRead(start, rec);
  evicted_scratch_.clear();
  dram_.Insert(rec.lba, rec.block_count, &evicted_scratch_);
  dram_.NoteTransfer(bytes);
  if (!evicted_scratch_.empty()) {
    WriteBackEvicted(now + response, evicted_scratch_);
  }
  return response;
}

SimTime StorageSystem::HandleWrite(const BlockRecord& rec) {
  const SimTime now = rec.time_us;
  const std::uint64_t bytes = static_cast<std::uint64_t>(rec.block_count) * block_bytes_;

  if (config_.write_back_cache && dram_.enabled() &&
      rec.block_count <= dram_.capacity_blocks()) {
    // Write-back: the write completes in DRAM; evicted dirty victims and the
    // periodic sync carry it to the device later.
    evicted_scratch_.clear();
    dram_.Insert(rec.lba, rec.block_count, &evicted_scratch_);
    dram_.MarkDirty(rec.lba, rec.block_count);
    dram_.NoteTransfer(bytes);
    const SimTime response = dram_.AccessTime(bytes);
    if (!evicted_scratch_.empty()) {
      WriteBackEvicted(now + response, evicted_scratch_);
    }
    return response;
  }

  // Write-through, write-allocate DRAM.
  dram_.Insert(rec.lba, rec.block_count);
  dram_.NoteTransfer(bytes);

  if (!sram_.enabled() || rec.block_count > sram_.capacity_blocks()) {
    // No buffer (or the write cannot possibly fit): synchronous device write.
    // Under fault injection the host ack still happens at issue time, so a
    // power loss inside this window loses the data (no battery backing).
    return DeviceWrite(now, rec, WriteSource::kHost);
  }

  SimTime response = 0;
  if (!sram_.Absorb(rec.lba, rec.block_count)) {
    // Buffer full: the write waits for the flush (this is the clustered-
    // writes penalty of section 5.5).
    const SimTime drained_at = DrainSramTo(now);
    response = drained_at - now;
    MOBISIM_CHECK(sram_.Absorb(rec.lba, rec.block_count));
  }
  sram_.NoteTransfer(bytes);
  response += sram_.AccessTime(bytes);

  // Write-behind: while the device is awake anyway, drain eagerly so the
  // buffer is empty when the disk next spins down.
  if (!DeviceIsSleeping(now + response)) {
    DrainSramTo(now + response);
  }
  return response;
}

void StorageSystem::HandleErase(const BlockRecord& rec) {
  dram_.InvalidateRange(rec.lba, rec.block_count);
  sram_.Discard(rec.lba, rec.block_count);
  device_->Trim(rec.time_us, rec);
}

void StorageSystem::Finish(SimTime end) {
  // Leftover buffered writes ultimately reach the device.
  if (dram_.dirty_blocks() > 0) {
    SyncDirtyCache(std::max(end, device_->busy_until()));
    end = std::max(end, device_->busy_until());
  }
  if (sram_.dirty_blocks() > 0) {
    end = std::max(end, DrainSramTo(std::max(end, device_->busy_until())));
  }
  end = std::max(end, device_->busy_until());
  device_->Finish(end);
  dram_.Finish(end);
  sram_.Finish(end);
}

}  // namespace mobisim
