#include "src/core/simulator.h"

#include <algorithm>

#include "src/device/flash_card.h"
#include "src/device/nand_ssd.h"
#include "src/fault/fault.h"
#include "src/trace/block_mapper.h"
#include "src/trace/calibrated_workload.h"
#include "src/util/check.h"

namespace mobisim {

SimConfig MakePaperConfig(const DeviceSpec& device, std::uint64_t dram_bytes,
                          std::uint64_t sram_bytes) {
  SimConfig config;
  config.device = device;
  config.dram_bytes = dram_bytes;
  // The paper couples SRAM write buffers with magnetic disks by default;
  // flash runs without one (section 5.1 notes this as future work).
  config.sram_bytes = device.kind == DeviceKind::kMagneticDisk ? sram_bytes : 0;
  return config;
}

SimResult RunSimulation(const TraceView& trace, const SimConfig& config) {
  MOBISIM_CHECK(trace.size() > 0);
  MOBISIM_CHECK(config.warm_fraction >= 0.0 && config.warm_fraction < 1.0);

  StorageSystem system(config, trace.total_blocks(), trace.block_bytes());

  SimResult result;
  result.workload = trace.name();
  result.device = config.device.name;
  result.record_count = trace.size();
  result.warm_record_count = static_cast<std::uint64_t>(
      config.warm_fraction * static_cast<double>(trace.size()));

  double warm_device_j = 0.0;
  double warm_dram_j = 0.0;
  double warm_sram_j = 0.0;

  // The per-record loop walks the view's columns directly: no struct
  // assembly beyond the BlockRecord handed to StorageSystem, no indirection
  // through a vector of rows.
  const std::size_t n = trace.size();
  const SimTime* times = trace.times();
  const std::uint8_t* ops = trace.ops();
  const std::uint64_t* lbas = trace.lbas();
  const std::uint32_t* counts = trace.counts();
  const std::uint32_t* file_ids = trace.file_ids();

  SimTime post_warm_start = times[0];

  // Power-loss schedule: exponential inter-arrival times starting from the
  // trace's first timestamp.  Inert (no draws) unless configured.
  FaultPlan fault_plan(config.fault);
  SimTime next_power_loss = 0;
  if (fault_plan.power_loss_enabled()) {
    next_power_loss = times[0] + fault_plan.NextInterval();
  }

  for (std::size_t i = 0; i < n; ++i) {
    BlockRecord rec;
    rec.time_us = times[i];
    rec.op = static_cast<OpType>(ops[i]);
    rec.lba = lbas[i];
    rec.block_count = counts[i];
    rec.file_id = file_ids[i];
    if (fault_plan.power_loss_enabled()) {
      while (rec.time_us >= next_power_loss) {
        system.PowerLoss(next_power_loss);
        next_power_loss += fault_plan.NextInterval();
      }
    }
    if (i == result.warm_record_count) {
      // Snapshot energy at the warm/measure boundary; the caches keep their
      // contents ("warm start").
      system.AccountTo(rec.time_us);
      warm_device_j = system.device().energy().total_joules();
      warm_dram_j = system.dram().energy().total_joules();
      warm_sram_j = system.sram().energy().total_joules();
      post_warm_start = rec.time_us;
    }
    const SimTime response_us = system.Handle(rec);
    if (i >= result.warm_record_count && rec.op != OpType::kErase) {
      const double response_ms = MsFromUs(response_us);
      result.overall_response_ms.Add(response_ms);
      if (rec.op == OpType::kRead) {
        result.read_response_ms.Add(response_ms);
        result.read_percentiles_ms.Add(response_ms);
      } else {
        result.write_response_ms.Add(response_ms);
        result.write_percentiles_ms.Add(response_ms);
      }
    }
  }

  const SimTime end = times[n - 1];
  system.Finish(end);

  result.duration_sec = SecFromUs(std::max<SimTime>(0, end - post_warm_start));
  result.device_energy_j = system.device().energy().total_joules() - warm_device_j;
  result.dram_energy_j = system.dram().energy().total_joules() - warm_dram_j;
  result.sram_energy_j = system.sram().energy().total_joules() - warm_sram_j;

  result.counters = system.device().counters();
  const EnergyMeter& meter = system.device().energy();
  for (std::size_t m = 0; m < meter.mode_count(); ++m) {
    result.device_mode_seconds.emplace_back(meter.mode_name(m),
                                            SecFromUs(meter.mode_time_us(m)));
  }
  result.device_energy_breakdown = meter.Breakdown();
  result.dram_hits = system.dram().hits();
  result.dram_misses = system.dram().misses();
  result.sram_absorbed = system.sram().absorbed_writes();
  result.sram_flushes = system.sram().flushes();
  result.max_segment_erases = result.counters.segment_erase_stats.max();
  result.mean_segment_erases = result.counters.segment_erase_stats.mean();

  result.ftl_enabled = config.export_ftl_metrics ||
                       config.ftl_policy != FtlPolicyKind::kLogStructured;

  result.fault_enabled = config.fault.enabled() || config.fault.export_metrics;
  if (result.fault_enabled) {
    const FaultStats& fs = system.fault_stats();
    result.power_losses = fs.power_losses;
    result.lost_acked_writes = fs.lost_acked_blocks;
    result.io_retries = fs.io_retries;
    result.io_failures = fs.io_failures;
    result.recovery_sec = SecFromUs(fs.recovery_time_us);
    result.recovery_energy_j = fs.recovery_energy_j;
    result.transient_errors = result.counters.transient_errors;
    result.remapped_blocks = result.counters.remapped_blocks;
    result.bad_segments = result.counters.bad_segments;
    if (result.counters.physical_blocks > 0) {
      result.usable_capacity_fraction =
          static_cast<double>(result.counters.usable_blocks) /
          static_cast<double>(result.counters.physical_blocks);
    }
    if (const auto* card = dynamic_cast<const FlashCard*>(&system.device())) {
      for (const auto& [at_us, fraction] : card->capacity_events()) {
        result.capacity_timeline.emplace_back(SecFromUs(at_us), fraction);
      }
    } else if (const auto* ssd = dynamic_cast<const NandSsd*>(&system.device())) {
      for (const auto& [at_us, fraction] : ssd->capacity_events()) {
        result.capacity_timeline.emplace_back(SecFromUs(at_us), fraction);
      }
    }
  }
  return result;
}

SimResult RunSimulation(const BlockTrace& trace, const SimConfig& config) {
  return RunSimulation(TraceView::FromBlockTrace(trace), config);
}

SimResult RunNamedWorkload(const std::string& workload, const SimConfig& config, double scale) {
  const Trace trace = GenerateNamedWorkload(workload, scale);
  const BlockTrace blocks = BlockMapper::Map(trace);
  SimConfig adjusted = config;
  if (workload == "hp") {
    // The hp trace was gathered below the buffer cache; simulating one would
    // double-count locality (section 4.1).
    adjusted.dram_bytes = 0;
  }
  return RunSimulation(blocks, adjusted);
}

}  // namespace mobisim
