// Flash memory as a cache for disk blocks.
//
// Implements the architecture of Marsh, Douglis & Krishnan, "Flash Memory
// File Caching for Mobile Computers" (HICSS '94), which section 6 of the
// storage-alternatives paper discusses: a flash card sits between the DRAM
// buffer cache and the magnetic disk, absorbing reads and (because flash is
// non-volatile) writes, so the disk can stay spun down much longer.
//
// Policies:
//   - reads fill the flash cache (LRU over disk blocks);
//   - writes complete in flash and are marked dirty; dirty data destages to
//     disk in batches when the dirty fraction crosses a threshold, when an
//     eviction needs a dirty victim's slot, and at shutdown;
//   - the flash side is a real FlashCard model, so cache churn pays
//     segment-cleaning costs and wears the card.
#ifndef MOBISIM_SRC_FCACHE_FLASH_CACHE_SYSTEM_H_
#define MOBISIM_SRC_FCACHE_FLASH_CACHE_SYSTEM_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/cache/buffer_cache.h"
#include "src/device/device_catalog.h"
#include "src/device/flash_card.h"
#include "src/device/magnetic_disk.h"
#include "src/trace/trace_record.h"

namespace mobisim {

struct FlashCacheConfig {
  DeviceSpec disk = Cu140Datasheet();
  DeviceSpec flash = IntelCardDatasheet();
  // Raw flash capacity devoted to the cache; the usable block count is
  // smaller so the card's cleaner has headroom.
  std::uint64_t flash_bytes = 4ull * 1024 * 1024;
  // Fraction of flash blocks usable for cached data.  The rest is cleaning
  // slack: an LRU cache keeps its card permanently full, so without generous
  // headroom the cleaner lives in the regime of the paper's figure 2 at 95%
  // utilization.
  double flash_usable_fraction = 0.50;
  MemorySpec dram = NecDramSpec();
  std::uint64_t dram_bytes = 2ull * 1024 * 1024;
  std::uint32_t block_bytes = 1024;
  std::uint64_t disk_capacity_bytes = 40ull * 1024 * 1024;
  SimTime spin_down_after_us = 5 * kUsPerSec;
  // Destage to disk once this fraction of cached blocks is dirty.
  double destage_threshold = 0.50;
  // Piggyback destaging (on read-miss spin-ups) moves at most this many
  // blocks per opportunity, bounding the queueing it inflicts on the rest of
  // the burst.
  std::uint32_t destage_chunk_blocks = 64;
};

class FlashCacheSystem {
 public:
  explicit FlashCacheSystem(const FlashCacheConfig& config);

  // Services one block-level operation; returns its response time (us).
  SimTime Handle(const BlockRecord& rec);
  void Finish(SimTime end);

  double disk_energy_j() const { return disk_->energy().total_joules(); }
  double flash_energy_j() const { return flash_->energy().total_joules(); }
  double dram_energy_j() const { return dram_.energy().total_joules(); }
  double total_energy_j() const {
    return disk_energy_j() + flash_energy_j() + dram_energy_j();
  }
  std::uint64_t flash_hits() const { return flash_hits_; }
  std::uint64_t flash_misses() const { return flash_misses_; }
  std::uint64_t destages() const { return destages_; }
  const DeviceCounters& disk_counters() const { return disk_->counters(); }
  const DeviceCounters& flash_counters() const { return flash_->counters(); }
  std::uint64_t cached_blocks() const { return lru_.size(); }
  std::uint64_t dirty_blocks() const { return dirty_count_; }

 private:
  struct CacheEntry {
    std::uint64_t slot = 0;  // flash-side block address
    bool dirty = false;
    std::list<std::uint64_t>::iterator lru_it;
  };

  SimTime HandleRead(const BlockRecord& rec);
  SimTime HandleWrite(const BlockRecord& rec);
  void HandleErase(const BlockRecord& rec);

  // True if every block of the range is in the flash cache.
  bool CachedAll(std::uint64_t lba, std::uint32_t count) const;
  // Ensures a free flash slot, evicting (and if needed destaging) LRU
  // blocks; returns the slot.
  std::uint64_t AcquireSlot(SimTime now);
  // Installs blocks into the flash cache (paying flash writes); `dirty`
  // marks them as newer than the disk copy.
  SimTime InstallRange(SimTime now, std::uint64_t lba, std::uint32_t count, bool dirty);
  // Writes up to `max_blocks` dirty cached blocks to the disk in LBA
  // (elevator) order; they stay cached clean.  Returns the completion time.
  SimTime Destage(SimTime now, std::uint64_t max_blocks);
  SimTime DestageAll(SimTime now) { return Destage(now, ~std::uint64_t{0}); }
  void Touch(std::uint64_t lba);

  FlashCacheConfig config_;
  BufferCache dram_;
  std::unique_ptr<FlashCard> flash_;
  std::unique_ptr<MagneticDisk> disk_;

  std::uint64_t cache_capacity_blocks_;
  std::unordered_map<std::uint64_t, CacheEntry> entries_;  // disk lba -> entry
  std::list<std::uint64_t> lru_;                           // front = most recent
  std::vector<std::uint64_t> free_slots_;
  std::uint64_t dirty_count_ = 0;
  std::uint64_t flash_hits_ = 0;
  std::uint64_t flash_misses_ = 0;
  std::uint64_t destages_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_FCACHE_FLASH_CACHE_SYSTEM_H_
