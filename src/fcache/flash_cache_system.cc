#include "src/fcache/flash_cache_system.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

namespace {

// Sentinel file id for cache-internal traffic (destages, fills).
constexpr std::uint32_t kCacheFile = ~std::uint32_t{0} - 7;

BlockRecord MakeRecord(SimTime t, OpType op, std::uint64_t lba, std::uint32_t count) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = kCacheFile;
  return rec;
}

}  // namespace

FlashCacheSystem::FlashCacheSystem(const FlashCacheConfig& config)
    : config_(config), dram_(config.dram, config.dram_bytes, config.block_bytes) {
  MOBISIM_CHECK(config.block_bytes > 0);

  DeviceOptions flash_options;
  flash_options.block_bytes = config.block_bytes;
  flash_options.capacity_bytes = std::max<std::uint64_t>(
      config.flash_bytes, 2ull * config.flash.erase_segment_bytes + config.block_bytes);
  flash_ = std::make_unique<FlashCard>(config.flash, flash_options);

  DeviceOptions disk_options;
  disk_options.block_bytes = config.block_bytes;
  disk_options.capacity_bytes = config.disk_capacity_bytes;
  disk_options.spin_down_after_us = config.spin_down_after_us;
  disk_ = std::make_unique<MagneticDisk>(config.disk, disk_options);

  const std::uint64_t flash_blocks =
      flash_options.capacity_bytes / config.block_bytes;
  cache_capacity_blocks_ = static_cast<std::uint64_t>(
      config.flash_usable_fraction * static_cast<double>(flash_blocks));
  MOBISIM_CHECK(cache_capacity_blocks_ > 0);
  free_slots_.reserve(cache_capacity_blocks_);
  // Hand out slots from the top down so pops are cheap.
  for (std::uint64_t s = cache_capacity_blocks_; s > 0; --s) {
    free_slots_.push_back(s - 1);
  }
}

bool FlashCacheSystem::CachedAll(std::uint64_t lba, std::uint32_t count) const {
  for (std::uint32_t i = 0; i < count; ++i) {
    if (entries_.find(lba + i) == entries_.end()) {
      return false;
    }
  }
  return true;
}

void FlashCacheSystem::Touch(std::uint64_t lba) {
  const auto it = entries_.find(lba);
  MOBISIM_DCHECK(it != entries_.end());
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

SimTime FlashCacheSystem::Destage(SimTime now, std::uint64_t max_blocks) {
  // Collect dirty disk blocks in LBA (elevator) order, up to the budget.
  std::vector<std::uint64_t> dirty;
  dirty.reserve(std::min<std::uint64_t>(dirty_count_, max_blocks));
  for (const auto& [lba, entry] : entries_) {
    if (entry.dirty) {
      dirty.push_back(lba);
    }
  }
  if (dirty.empty()) {
    return now;
  }
  std::sort(dirty.begin(), dirty.end());
  if (dirty.size() > max_blocks) {
    dirty.resize(max_blocks);
  }
  for (const std::uint64_t lba : dirty) {
    entries_[lba].dirty = false;
    --dirty_count_;
  }
  ++destages_;

  SimTime completion = now;
  std::uint64_t run_start = dirty.front();
  std::uint32_t run_len = 1;
  auto flush_run = [&]() {
    completion = now + disk_->Write(now, MakeRecord(now, OpType::kWrite, run_start, run_len));
  };
  for (std::size_t i = 1; i < dirty.size(); ++i) {
    if (dirty[i] == run_start + run_len) {
      ++run_len;
    } else {
      flush_run();
      run_start = dirty[i];
      run_len = 1;
    }
  }
  flush_run();
  return completion;
}

std::uint64_t FlashCacheSystem::AcquireSlot(SimTime now) {
  if (!free_slots_.empty()) {
    const std::uint64_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  MOBISIM_CHECK(!lru_.empty());
  const std::uint64_t victim_lba = lru_.back();
  const auto it = entries_.find(victim_lba);
  MOBISIM_DCHECK(it != entries_.end());
  if (it->second.dirty) {
    // The cache is full of dirty data: destage everything in one disk
    // session rather than dribbling single blocks.
    DestageAll(now);
  }
  const std::uint64_t slot = it->second.slot;
  flash_->Trim(now, MakeRecord(now, OpType::kErase, slot, 1));
  lru_.pop_back();
  entries_.erase(it);
  return slot;
}

SimTime FlashCacheSystem::InstallRange(SimTime now, std::uint64_t lba, std::uint32_t count,
                                       bool dirty) {
  SimTime response = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t block = lba + i;
    const auto it = entries_.find(block);
    std::uint64_t slot;
    if (it != entries_.end()) {
      slot = it->second.slot;
      if (dirty && !it->second.dirty) {
        it->second.dirty = true;
        ++dirty_count_;
      }
      Touch(block);
    } else {
      slot = AcquireSlot(now);
      lru_.push_front(block);
      CacheEntry entry;
      entry.slot = slot;
      entry.dirty = dirty;
      entry.lru_it = lru_.begin();
      entries_.emplace(block, entry);
      if (dirty) {
        ++dirty_count_;
      }
    }
    response = flash_->Write(now, MakeRecord(now, OpType::kWrite, slot, 1)) ;
  }
  return response;
}

SimTime FlashCacheSystem::HandleRead(const BlockRecord& rec) {
  const SimTime now = rec.time_us;
  const std::uint64_t bytes = static_cast<std::uint64_t>(rec.block_count) * config_.block_bytes;

  if (dram_.ReadHit(rec.lba, rec.block_count)) {
    dram_.NoteTransfer(bytes);
    return dram_.AccessTime(bytes);
  }
  if (CachedAll(rec.lba, rec.block_count)) {
    ++flash_hits_;
    for (std::uint32_t i = 0; i < rec.block_count; ++i) {
      Touch(rec.lba + i);
    }
    // Timing: one flash read of the full size (slot scatter is irrelevant on
    // a byte-addressed card).
    const SimTime response =
        flash_->Read(now, MakeRecord(now, OpType::kRead, entries_[rec.lba].slot,
                                     rec.block_count));
    dram_.Insert(rec.lba, rec.block_count);
    dram_.NoteTransfer(bytes);
    return response;
  }

  ++flash_misses_;
  const SimTime response = disk_->Read(now, rec);
  // Fill the flash cache off the critical path, then cache in DRAM too.
  InstallRange(now + response, rec.lba, rec.block_count, /*dirty=*/false);
  dram_.Insert(rec.lba, rec.block_count);
  dram_.NoteTransfer(bytes);
  // Piggyback: the miss spun the disk up anyway; use the session to destage
  // a bounded chunk of dirty data instead of paying dedicated spin-ups
  // later.
  if (dirty_count_ > 0) {
    Destage(now + response, config_.destage_chunk_blocks);
  }
  return response;
}

SimTime FlashCacheSystem::HandleWrite(const BlockRecord& rec) {
  const SimTime now = rec.time_us;
  const std::uint64_t bytes = static_cast<std::uint64_t>(rec.block_count) * config_.block_bytes;
  dram_.Insert(rec.lba, rec.block_count);
  dram_.NoteTransfer(bytes);

  // Flash is non-volatile: the write is durable once it lands there.
  const SimTime response = InstallRange(now, rec.lba, rec.block_count, /*dirty=*/true);

  if (static_cast<double>(dirty_count_) >
      config_.destage_threshold * static_cast<double>(cache_capacity_blocks_)) {
    // Background destage; not charged to this write.
    DestageAll(now + response);
  }
  return response;
}

void FlashCacheSystem::HandleErase(const BlockRecord& rec) {
  dram_.InvalidateRange(rec.lba, rec.block_count);
  for (std::uint32_t i = 0; i < rec.block_count; ++i) {
    const auto it = entries_.find(rec.lba + i);
    if (it == entries_.end()) {
      continue;
    }
    if (it->second.dirty) {
      --dirty_count_;
    }
    flash_->Trim(rec.time_us, MakeRecord(rec.time_us, OpType::kErase, it->second.slot, 1));
    free_slots_.push_back(it->second.slot);
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  disk_->Trim(rec.time_us, rec);
}

SimTime FlashCacheSystem::Handle(const BlockRecord& rec) {
  dram_.AccountUntil(rec.time_us);
  flash_->AdvanceTo(rec.time_us);
  disk_->AdvanceTo(rec.time_us);
  switch (rec.op) {
    case OpType::kRead:
      return HandleRead(rec);
    case OpType::kWrite:
      return HandleWrite(rec);
    case OpType::kErase:
      HandleErase(rec);
      return 0;
  }
  MOBISIM_CHECK(false && "unreachable");
  return 0;
}

void FlashCacheSystem::Finish(SimTime end) {
  if (dirty_count_ > 0) {
    end = std::max(end, DestageAll(std::max(end, disk_->busy_until())));
  }
  end = std::max({end, disk_->busy_until(), flash_->busy_until()});
  disk_->Finish(end);
  flash_->Finish(end);
  dram_.Finish(end);
}

}  // namespace mobisim
