// Shared command-line surface of the mobisim tools.
//
// mobisim_bench, mobisim_sweep and mobisim_cli accept one common set of
// export and execution flags:
//
//   --jobs N | --serial      worker threads for the sweep engine
//   --seed N                 workload-generator seed override
//   --replicas N             independent re-runs per grid cell
//   --jsonl FILE|-           one JSON object per row (metadata header first)
//   --csv FILE|-             fixed-schema CSV
//   --db DIR                 land the run in a bench_db result store
//   --name NAME              run name inside the store (required with --db)
//   --sha SHA                commit id for the store (default: $GITHUB_SHA,
//                            then $MOBISIM_GIT_SHA, then "local")
//   --trace-cache DIR        persistent trace cache directory (default:
//                            $MOBISIM_TRACE_CACHE; empty = disabled)
//   --no-trace-cache         disable the trace cache even if the env is set
//   --quiet                  suppress progress and summaries on stderr
//
// ExtractCommonFlags pulls these out of an argument list, leaving
// tool-specific tokens behind, so the three tools cannot drift apart again.
// SinkSet turns parsed options into ready-to-use streaming ResultSinks —
// the open-file/metadata-header/tee wiring previously duplicated in every
// bench main().
#ifndef MOBISIM_SRC_RUNNER_CLI_OPTIONS_H_
#define MOBISIM_SRC_RUNNER_CLI_OPTIONS_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/result_io.h"
#include "src/runner/result_sink.h"

namespace mobisim {

class TraceCache;

struct CliOptions {
  std::size_t jobs = 0;  // 0 = one worker per hardware core; 1 = serial
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> replicas;
  std::string jsonl_path;  // empty = no JSONL sink; "-" = stdout
  std::string csv_path;    // empty = no CSV sink; "-" = stdout
  std::string db_root;     // empty = no result store
  std::string db_name;
  std::string git_sha;  // filled from the environment by ExtractCommonFlags
  // Persistent trace cache directory; empty = disabled.  ExtractCommonFlags
  // fills it from --trace-cache, falling back to $MOBISIM_TRACE_CACHE
  // unless --no-trace-cache was given.
  std::string trace_cache_dir;
  bool quiet = false;

  // True when any export destination (file, stdout, or store) was requested.
  bool wants_export() const {
    return !jsonl_path.empty() || !csv_path.empty() || !db_root.empty();
  }
};

// Removes every common flag (and its argument) from `args`, leaving
// tool-specific tokens in their original order.  Returns false with a
// message in `error` on a malformed flag (missing argument, bad number,
// --db without --name); the caller prints its own usage.
bool ExtractCommonFlags(std::vector<std::string>* args, CliOptions* options,
                        std::string* error);

// The usage fragment describing the common flags, for per-tool usage text.
const char* CommonFlagsUsage();

// Parses a `K/N` shard designator strictly: both sides must be plain
// digits, N > 0 and K < N.  Anything else returns false with a message in
// `error` naming exactly what is wrong — a bad shard must be a loud usage
// error, never a silently empty or wrong shard.  Shared by mobisim_sweep
// --shard and the sweepd work-item splitter.
bool ParseShardSpec(const std::string& text, std::size_t* shard,
                    std::size_t* shards, std::string* error);

// Opens the persistent trace cache the options ask for; null when disabled.
// The directory is created lazily on first store, so a bad path degrades to
// generating every trace rather than failing the run.
std::unique_ptr<TraceCache> OpenTraceCache(const CliOptions& options);

// ISO-8601 UTC timestamp (second resolution) and host name, for RunMeta.
std::string NowUtc();
std::string HostName();
// $GITHUB_SHA, then $MOBISIM_GIT_SHA, then "local".
std::string DefaultGitSha();

// The export destinations a CliOptions asks for, opened and owned in one
// place.  JSONL files start with the RunMeta header line; CSV sinks carry
// `csv_header` so even an empty run emits a well-formed table.
class SinkSet {
 public:
  SinkSet() = default;
  ~SinkSet() { Finish(); }
  SinkSet(const SinkSet&) = delete;
  SinkSet& operator=(const SinkSet&) = delete;

  // Opens the requested sinks ("-" = stdout).  Returns false with `error`
  // when a file cannot be opened.  Safe to call on options with no export
  // destinations (sinks() is then empty).
  bool Open(const CliOptions& options, const RunMeta& meta,
            const std::string& csv_header, std::string* error);

  // Adds a CSV sink on stdout; mobisim_sweep's default when the caller
  // requested no destination at all.
  void AddStdoutCsv(const std::string& csv_header);

  // Borrowed pointers, valid until this SinkSet is destroyed.
  const std::vector<ResultSink*>& sinks() const { return sinks_; }

  // Finishes every sink exactly once (flush, default CSV header on empty
  // runs) and closes the files.  Called automatically on destruction.
  void Finish();

 private:
  std::ofstream jsonl_file_;
  std::ofstream csv_file_;
  std::unique_ptr<JsonlResultSink> jsonl_;
  std::unique_ptr<CsvResultSink> csv_;
  std::vector<ResultSink*> sinks_;
  bool finished_ = false;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_RUNNER_CLI_OPTIONS_H_
