// Declarative description of a parameter sweep: a base SimConfig plus a list
// of values per swept dimension.  The cross product enumerates to concrete
// ExperimentPoints in a fixed, documented order, so results are addressable
// by index and parallel execution can never reorder them.
//
// Spec text reuses the config_text `key = value` syntax.  Non-sweep keys are
// applied to the base configuration (see src/core/config_text.h); sweep keys
// take comma-separated lists:
//   devices            device catalog names
//   workloads          mac | dos | hp | synth
//   utilizations       flash live fractions (0..1)
//   dram_sizes         DRAM buffer-cache sizes (k/m/g suffixes)
//   sram_sizes         SRAM write-buffer sizes
//   backends           average-cost | geometry (simulator backend variants)
//   ftl                log | page-diff | fat-remap | cleaner names (one
//                      dimension spanning FTLs and log cleaners)
//   cleaning_policies  greedy | cost-benefit | wear-aware
//   power_loss_intervals  mean seconds between power losses (0 = none)
//   seeds              workload generator seeds (integers)
//   scale              workload scale factor (single value, not swept)
//   replicas           independent re-runs per point (seed-derived; default 1)
// An omitted dimension sweeps nothing: the base config's value is used.
//
// `replicas = N` re-runs every grid cell N times with derived seeds
// (ReplicaSeed below), innermost in the enumeration.  Replicated points are
// how regression tracking estimates the noise floor: the spread across
// replicas of the same cell is what seed choice alone does to each metric.
#ifndef MOBISIM_SRC_RUNNER_EXPERIMENT_SPEC_H_
#define MOBISIM_SRC_RUNNER_EXPERIMENT_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/config_text.h"
#include "src/core/sim_config.h"

namespace mobisim {

struct ExperimentSpec {
  // Same default as mobisim_cli: Intel card, 2-MB DRAM cache.
  SimConfig base = MakePaperConfig(IntelCardDatasheet(), 2 * 1024 * 1024);
  std::vector<DeviceSpec> devices;
  std::vector<std::string> workloads;
  std::vector<double> utilizations;
  std::vector<std::uint64_t> dram_sizes;
  std::vector<std::uint64_t> sram_sizes;
  // Simulator backend variants ("average-cost" | "geometry"); see the
  // `backends` key.  Empty keeps base.use_disk_geometry.
  std::vector<std::string> backends;
  // FTL policy dimension (`ftl` key): cleaner names sweep the log-structured
  // cleaners, FTL names swap the translation layer.  Any use of this
  // dimension turns on FTL metric export for the whole sweep.
  std::vector<FtlSelection> ftl_policies;
  std::vector<CleaningPolicy> cleaning_policies;
  std::vector<double> power_loss_intervals;
  std::vector<std::uint64_t> seeds;
  double scale = 1.0;
  std::size_t replicas = 1;
};

// One cell of the grid: a fully resolved configuration plus the workload to
// generate.  `index` is the position in enumeration order; `replica` is the
// re-run number within the cell (0 for the base seed).
struct ExperimentPoint {
  std::size_t index = 0;
  std::string workload = "synth";
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::size_t replica = 0;
  SimConfig config;
};

// Workload seed for replica k of a cell whose listed seed is `seed`.
// Replica 0 keeps the listed seed (so `replicas = 1` leaves grids unchanged);
// later replicas use a splitmix64-style derivation, stable across platforms.
std::uint64_t ReplicaSeed(std::uint64_t seed, std::size_t replica);

// Number of points the spec enumerates (empty dimensions count as 1).
std::size_t GridSize(const ExperimentSpec& spec);

// Expands the cross product.  Enumeration order nests, outermost first:
// device, workload, utilization, dram, sram, backend, ftl, cleaning policy,
// power-loss interval, seed — i.e. the seed varies fastest.  When any fault
// dimension or base fault knob is active, every enumerated config exports
// fault metrics so all rows in a sweep share one schema; likewise any use of
// the backend/ftl dimensions turns on FTL metric export everywhere.
std::vector<ExperimentPoint> EnumerateGrid(const ExperimentSpec& spec);

// Keeps only the points of shard `shard` out of `shards` (index % shards ==
// shard).  Point indices stay global, so shard outputs from different
// processes or machines merge by concatenation and still join by index.
// This is the one sharding rule every dispatcher and worker must share.
std::vector<ExperimentPoint> FilterShard(std::vector<ExperimentPoint> points,
                                         std::size_t shard, std::size_t shards);

// Keeps only the points whose global index appears in `indices` (order and
// duplicates in `indices` are irrelevant; enumeration order is preserved).
// This is how a dispatcher retries individual failed points of a shard.
std::vector<ExperimentPoint> FilterPoints(std::vector<ExperimentPoint> points,
                                          const std::vector<std::size_t>& indices);

// Applies one `key = value` line: sweep keys here, anything else delegated to
// ApplyConfigAssignment on the base config.  False + `error` on bad input.
bool ApplySpecAssignment(ExperimentSpec* spec, const std::string& key,
                         const std::string& value, std::string* error);

// Parses a whole spec file ('#' comments, blank lines, `key = value`).
std::optional<ExperimentSpec> ParseExperimentSpec(const std::string& text,
                                                  std::string* error);

// One-line summary ("2 devices x 3 workloads x 6 utilizations = 36 points").
std::string DescribeSpec(const ExperimentSpec& spec);

// Canonical full-fidelity rendering of the spec: every sweep dimension and
// every base-config field, one `key = value` line each, in a fixed order with
// fixed number formatting.  Two spec files that parse to the same grid (e.g.
// the same lines reordered, extra comments, different whitespace) produce the
// same canonical text; any change to the grid or the base configuration
// changes it.
std::string CanonicalSpecText(const ExperimentSpec& spec);

// 16-hex-digit FNV-1a fingerprint of CanonicalSpecText.  Persisted in result
// metadata headers so regression diffs can verify both runs executed the same
// experiment.
std::string SpecFingerprint(const ExperimentSpec& spec);

}  // namespace mobisim

#endif  // MOBISIM_SRC_RUNNER_EXPERIMENT_SPEC_H_
