// Declarative registry of the paper's benches.
//
// Every figure, table, ablation and related-system study registers one
// BenchDef: a name, a description for `mobisim_bench list`, its scaling
// knobs, and a run function.  The single `mobisim_bench` multi-tool routes
// all of them through the src/runner sweep engine and the shared ResultSink
// stack, so every bench gains `--jsonl`/`--csv` export, `--jobs N` parallel
// execution, `--seed`/`--replicas` overrides and bench_db storage without
// hand-rolled flag loops or output plumbing.
//
// A bench's run function receives a BenchContext and talks to the engine at
// whichever level fits its structure:
//
//   - RunGrid(spec): a declarative ExperimentSpec grid, fanned across cores
//     by RunSweep.  Most paper figures are one or a few of these.
//   - RunPoints(points): hand-built ExperimentPoints for grids whose axes
//     are not spec dimensions (e.g. Figure 4 couples capacity and
//     utilization).  Same engine, same sinks, same determinism contract.
//   - Emit(row): measurements that do not run the trace-driven simulator at
//     all (testbed microbenchmarks, eNVy transactions, wear-out runs).
//     Rows still flow to the shared sinks — tagged with the bench name and
//     a running point index — but only to schema-free ones (JSONL), since
//     their columns vary bench to bench.
//
// Text output is the bench's own: run functions print the historical
// tables/plots to stdout, byte-identical to the pre-registry binaries.
#ifndef MOBISIM_SRC_RUNNER_BENCH_REGISTRY_H_
#define MOBISIM_SRC_RUNNER_BENCH_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"

namespace mobisim {

class BenchContext;
class TraceCache;

struct BenchDef {
  std::string name;         // registry key, e.g. "fig2_utilization"
  std::string description;  // one line for `mobisim_bench list`
  std::string source;       // paper anchor: "Table 4", "Figure 2", "ablation", ...
  std::string dims;         // human summary of the swept/measured axes

  // Workload scale: the value used when the caller passes none, and the
  // scaled-down value used under --smoke.  Benches with fixed-size
  // measurements (microbenchmarks) set uses_scale = false.
  bool uses_scale = true;
  double default_scale = 1.0;
  double smoke_scale = 0.1;

  // Optional bench-specific count (workload seeds, endurance cycles,
  // transactions...); 0 means the bench has no such knob.  param_help names
  // it in `mobisim_bench list` output.
  std::uint64_t default_param = 0;
  std::uint64_t smoke_param = 0;
  std::string param_help;

  // False for timing benches (google-benchmark): their output depends on
  // the machine, so golden-output tests skip them.
  bool deterministic = true;

  std::function<void(BenchContext&)> run;
};

// Execution environment of one bench run: resolved knobs plus the engine
// and sink plumbing.  Constructed by RunBench; benches only consume it.
class BenchContext {
 public:
  struct Options {
    double scale = 0.0;       // 0 = bench default (or smoke) scale
    std::uint64_t param = 0;  // 0 = bench default (or smoke) param
    bool smoke = false;
    std::size_t threads = 0;  // SweepOptions.threads: 0 = all cores
    std::optional<std::uint64_t> seed;    // override every grid's seed list
    std::optional<std::size_t> replicas;  // override every grid's replicas
    std::vector<ResultSink*> sinks;       // shared export sinks (may be empty)
    TraceCache* trace_cache = nullptr;    // persistent trace cache (borrowed)
  };

  BenchContext(const BenchDef& def, const Options& options);

  const BenchDef& def() const { return def_; }
  double scale() const { return scale_; }
  std::uint64_t param() const { return param_; }
  bool smoke() const { return options_.smoke; }
  std::size_t threads() const { return options_.threads; }
  // Persistent trace cache (null when the caller runs uncached).  For
  // benches that drive RunSimulation directly instead of through RunGrid.
  TraceCache* trace_cache() const { return options_.trace_cache; }

  // Enumerates and runs the spec's grid through RunSweep; rows stream to
  // the shared sinks tagged with the bench name, with point indices made
  // globally unique across this bench run.  --seed/--replicas overrides
  // apply here.
  std::vector<SweepOutcome> RunGrid(ExperimentSpec spec);

  // Same, for hand-built points (the engine's point-level API).  A --seed
  // override rewrites every point's seed; --replicas does not apply.
  std::vector<SweepOutcome> RunPoints(std::vector<ExperimentPoint> points);

  // Exports one hand-measured row (prefixed with a `point` index when the
  // bench did not set one) to the schema-free sinks.  For measurements the
  // trace-driven simulator cannot express.
  void Emit(ResultRow row);

  // Rows exported so far (grid outcomes + emitted rows).
  std::size_t rows_emitted() const { return next_index_; }
  // Grid points that failed and were exported as `_error` rows.
  std::size_t failed_points() const { return failed_; }

 private:
  std::vector<SweepOutcome> Dispatch(std::vector<ExperimentPoint> points);

  const BenchDef& def_;
  Options options_;
  double scale_ = 1.0;
  std::uint64_t param_ = 0;
  std::size_t next_index_ = 0;
  std::size_t failed_ = 0;
};

// Registers a bench; the name must be unique and non-empty, and `run` must
// be set (MOBISIM_CHECK-enforced).  Returns true so registration can run
// from a static initializer.
bool RegisterBench(BenchDef def);

// All registered benches, sorted by name; stable across link order.
std::vector<const BenchDef*> AllBenches();

// Lookup by name; null when unknown.
const BenchDef* FindBench(const std::string& name);

// Runs one bench end to end: resolves knobs, tags+indexes its export rows,
// and turns an exception escaping run() into an `_error` row instead of
// aborting a multi-bench invocation.  Returns the number of failed points
// (0 = clean run).
std::size_t RunBench(const BenchDef& def, const BenchContext::Options& options);

// Registers a bench from a static initializer:
//   REGISTER_BENCH(fig2)({.name = "fig2", ..., .run = Run});
// expands to a uniquely named registration constant.
#define REGISTER_BENCH_CONCAT_INNER(a, b) a##b
#define REGISTER_BENCH_CONCAT(a, b) REGISTER_BENCH_CONCAT_INNER(a, b)
#define REGISTER_BENCH(tag)                                              \
  [[maybe_unused]] static const bool REGISTER_BENCH_CONCAT(              \
      mobisim_registered_bench_, tag) = ::mobisim::RegisterBench

}  // namespace mobisim

#endif  // MOBISIM_SRC_RUNNER_BENCH_REGISTRY_H_
