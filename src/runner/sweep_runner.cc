#include "src/runner/sweep_runner.h"

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "src/core/simulator.h"
#include "src/flash/segment_manager.h"
#include "src/trace/trace_cache.h"
#include "src/util/progress.h"
#include "src/util/thread_pool.h"

namespace mobisim {

namespace {

// The paper simulates the hp trace without a DRAM buffer cache (it was
// captured below one); mirror RunNamedWorkload so engine and one-off runs
// agree.
ExperimentPoint AdjustForWorkload(ExperimentPoint point) {
  if (point.workload == "hp") {
    point.config.dram_bytes = 0;
  }
  return point;
}

struct TraceKey {
  std::string workload;
  double scale;
  std::uint64_t seed;

  bool operator<(const TraceKey& other) const {
    if (workload != other.workload) {
      return workload < other.workload;
    }
    if (scale != other.scale) {
      return scale < other.scale;
    }
    return seed < other.seed;
  }
};

// A cached trace, or the reason it could not be generated.  A generation
// failure fails only the points that need this trace, never the whole sweep.
struct CachedTrace {
  TraceView trace;
  std::string error;
};

// Generates each distinct trace once, in parallel; afterwards the map is
// read-only and safe to share across workers.  With a persistent cache,
// each trace is an mmap-backed zero-copy view of the disk entry when a
// valid one exists, and is generated + stored otherwise
// (LoadOrGenerateTraceView is thread-safe, so the parallel fan-out needs no
// extra locking).
std::map<TraceKey, CachedTrace> BuildTraceMap(const std::vector<ExperimentPoint>& points,
                                              ThreadPool* pool,
                                              TraceCache* persistent) {
  std::map<TraceKey, CachedTrace> cache;
  for (const ExperimentPoint& point : points) {
    cache.emplace(TraceKey{point.workload, point.scale, point.seed}, CachedTrace{});
  }
  std::vector<std::pair<const TraceKey, CachedTrace>*> entries;
  entries.reserve(cache.size());
  for (auto& entry : cache) {
    entries.push_back(&entry);
  }
  ParallelFor(pool, entries.size(), [&entries, persistent](std::size_t i) {
    const TraceKey& key = entries[i]->first;
    try {
      entries[i]->second.trace =
          LoadOrGenerateTraceView(persistent, key.workload, key.scale, key.seed);
    } catch (const std::exception& e) {
      entries[i]->second.error = e.what();
    }
  });
  return cache;
}

}  // namespace

ResultRow PointToRow(const ExperimentPoint& point) {
  ResultRow row;
  row.AddInt("point", point.index);
  row.AddText("workload", point.workload);
  row.AddText("device", point.config.device.name);
  row.AddInt("seed", point.seed);
  row.AddInt("replica", point.replica);
  row.AddNumber("scale", point.scale);
  row.AddNumber("utilization", point.config.flash_utilization);
  row.AddInt("dram_bytes", point.config.dram_bytes);
  row.AddInt("sram_bytes", point.config.sram_bytes);
  row.AddInt("capacity_bytes", point.config.capacity_bytes);
  row.AddInt("auto_capacity", point.config.auto_capacity ? 1 : 0);
  row.AddText("cleaning_policy", CleaningPolicyName(point.config.cleaning_policy));
  // FTL/backend columns join the metadata only when the FTL layer is in play
  // (swept or explicitly exported) so historical sweeps keep their schema.
  if (point.config.export_ftl_metrics ||
      point.config.ftl_policy != FtlPolicyKind::kLogStructured) {
    row.AddText("ftl", FtlPolicyKindName(point.config.ftl_policy));
    row.AddText("backend", point.config.use_disk_geometry ? "geometry" : "average-cost");
  }
  // Fault dimensions join the metadata only on fault runs so fault-free
  // sweeps keep their historical schema byte-for-byte.
  if (point.config.fault.enabled() || point.config.fault.export_metrics) {
    row.AddNumber("power_loss_interval_sec",
                  SecFromUs(point.config.fault.power_loss_interval_us));
  }
  return row;
}

ResultRow MergePointAndResult(const ExperimentPoint& point, const SimResult& result) {
  ResultRow row = PointToRow(point);
  ResultRow result_row = ResultToRow(result);
  for (ResultField& field : result_row.fields) {
    if (row.Find(field.key) == nullptr) {
      row.fields.push_back(std::move(field));
    }
  }
  return row;
}

std::string SweepCsvHeader() {
  // The schema depends only on field *names*, never on data, so a
  // default-constructed point and result enumerate exactly the columns a
  // real sweep row carries.
  const ExperimentPoint point;
  const SimResult result;
  return RowToCsvHeader(MergePointAndResult(point, result));
}

std::vector<SweepOutcome> RunSweep(const std::vector<ExperimentPoint>& points,
                                   const SweepOptions& options) {
  std::vector<SweepOutcome> outcomes(points.size());
  if (points.empty()) {
    for (ResultSink* sink : options.sinks) {
      sink->Finish();
    }
    return outcomes;
  }

  const std::size_t threads =
      options.threads == 0 ? ThreadPool::DefaultThreadCount() : options.threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
  }

  const auto traces = BuildTraceMap(points, pool.get(), options.trace_cache);
  ProgressMeter meter("sweep", points.size(), options.progress);

  // Emission bookkeeping: rows leave in point order, streamed as soon as the
  // completed prefix grows.
  std::mutex emit_mu;
  std::vector<bool> ready(points.size(), false);
  std::size_t next_emit = 0;

  auto run_point = [&](std::size_t i) {
    const ExperimentPoint point = AdjustForWorkload(points[i]);
    const CachedTrace& cached =
        traces.at(TraceKey{point.workload, point.scale, point.seed});

    SweepOutcome& outcome = outcomes[i];
    outcome.point = point;
    // A failing point (trace generation or simulation) becomes an `_error`
    // row instead of taking the whole sweep down with it.
    if (cached.trace.empty()) {
      outcome.failed = true;
      outcome.error = cached.error;
    } else {
      try {
        outcome.result = RunSimulation(cached.trace, point.config);
        outcome.row = MergePointAndResult(point, outcome.result);
      } catch (const std::exception& e) {
        outcome.failed = true;
        outcome.error = e.what();
      }
    }
    if (outcome.failed) {
      outcome.row = PointToRow(point);
      outcome.row.AddText("_error", outcome.error);
    }

    meter.Advance();
    std::lock_guard<std::mutex> lock(emit_mu);
    ready[i] = true;
    while (next_emit < points.size() && ready[next_emit]) {
      for (ResultSink* sink : options.sinks) {
        if (outcomes[next_emit].failed && !sink->AcceptsErrorRows()) {
          continue;
        }
        sink->Write(outcomes[next_emit].row);
      }
      if (options.on_emit) {
        options.on_emit(outcomes[next_emit]);
      }
      ++next_emit;
    }
  };

  ParallelFor(pool.get(), points.size(), run_point);
  meter.Finish();
  for (ResultSink* sink : options.sinks) {
    sink->Finish();
  }
  return outcomes;
}

std::vector<SweepOutcome> RunSweep(const ExperimentSpec& spec,
                                   const SweepOptions& options) {
  return RunSweep(EnumerateGrid(spec), options);
}

}  // namespace mobisim
