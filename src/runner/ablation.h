// Ablation-matrix rendering: fold one sweep's rows into side-by-side
// markdown tables, one per metric, with a column per policy tuple
// (ftl / cleaning policy / backend) and a row per experiment cell
// (workload x device x utilization).  This is the human-readable face of a
// `backends= x ftl=` cross sweep: the JSONL rows remain the machine record
// (stored and diffed in bench_db); the matrix file is what a person reads to
// compare policies at a glance.
#ifndef MOBISIM_SRC_RUNNER_ABLATION_H_
#define MOBISIM_SRC_RUNNER_ABLATION_H_

#include <string>
#include <vector>

#include "src/core/result_io.h"

namespace mobisim {

// Renders the matrix from sweep rows (metadata rows are skipped).  Values
// are means across replicas/seeds of the same cell; cells whose every row is
// an `_error` row render as ERR; cells the grid never produced stay blank.
// Deterministic: column order follows first appearance of each policy tuple
// in the rows (i.e. enumeration order), row order first appearance of each
// cell, so serial and merged-shard runs render identically.
std::string RenderAblationMatrix(const std::vector<ResultRow>& rows);

}  // namespace mobisim

#endif  // MOBISIM_SRC_RUNNER_ABLATION_H_
