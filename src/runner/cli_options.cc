#include "src/runner/cli_options.h"

#include <cstdlib>
#include <ctime>
#include <iostream>

#include <unistd.h>

#include "src/trace/trace_cache.h"
#include "src/util/parse.h"

namespace mobisim {

namespace {

// Parses a strictly positive integer; false on garbage, sign, zero, or
// overflow (ParseUint64 is strict — no silent wrap or saturation).
bool ParsePositive(const std::string& text, std::uint64_t* value) {
  const auto parsed = ParseUint64(text);
  if (!parsed || *parsed == 0) {
    return false;
  }
  *value = *parsed;
  return true;
}

bool ParseUnsigned(const std::string& text, std::uint64_t* value) {
  const auto parsed = ParseUint64(text);
  if (!parsed) {
    return false;
  }
  *value = *parsed;
  return true;
}

}  // namespace

bool ExtractCommonFlags(std::vector<std::string>* args, CliOptions* options,
                        std::string* error) {
  options->git_sha = DefaultGitSha();
  bool no_trace_cache = false;
  std::vector<std::string> rest;
  const std::vector<std::string>& in = *args;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::string& flag = in[i];
    const bool takes_value = flag == "--jobs" || flag == "--seed" ||
                             flag == "--replicas" || flag == "--jsonl" ||
                             flag == "--csv" || flag == "--db" || flag == "--name" ||
                             flag == "--sha" || flag == "--trace-cache";
    if (takes_value && i + 1 >= in.size()) {
      *error = flag + " requires an argument";
      return false;
    }
    if (flag == "--jobs") {
      std::uint64_t jobs = 0;
      if (!ParsePositive(in[++i], &jobs)) {
        *error = "--jobs wants a positive integer, got '" + in[i] + "'";
        return false;
      }
      options->jobs = static_cast<std::size_t>(jobs);
    } else if (flag == "--serial") {
      options->jobs = 1;
    } else if (flag == "--seed") {
      std::uint64_t seed = 0;
      if (!ParseUnsigned(in[++i], &seed)) {
        *error = "--seed wants a non-negative integer, got '" + in[i] + "'";
        return false;
      }
      options->seed = seed;
    } else if (flag == "--replicas") {
      std::uint64_t replicas = 0;
      if (!ParsePositive(in[++i], &replicas)) {
        *error = "--replicas wants a positive integer, got '" + in[i] + "'";
        return false;
      }
      options->replicas = static_cast<std::size_t>(replicas);
    } else if (flag == "--jsonl") {
      options->jsonl_path = in[++i];
    } else if (flag == "--csv") {
      options->csv_path = in[++i];
    } else if (flag == "--db") {
      options->db_root = in[++i];
    } else if (flag == "--name") {
      options->db_name = in[++i];
    } else if (flag == "--sha") {
      options->git_sha = in[++i];
    } else if (flag == "--trace-cache") {
      options->trace_cache_dir = in[++i];
    } else if (flag == "--no-trace-cache") {
      no_trace_cache = true;
    } else if (flag == "--quiet") {
      options->quiet = true;
    } else {
      rest.push_back(flag);
    }
  }
  if (!options->db_root.empty() && options->db_name.empty()) {
    *error = "--db requires --name";
    return false;
  }
  // Environment default, explicitly overridable in both directions.
  if (no_trace_cache) {
    options->trace_cache_dir.clear();
  } else if (options->trace_cache_dir.empty()) {
    const char* env = std::getenv("MOBISIM_TRACE_CACHE");
    if (env != nullptr) {
      options->trace_cache_dir = env;
    }
  }
  *args = std::move(rest);
  return true;
}

bool ParseShardSpec(const std::string& text, std::size_t* shard,
                    std::size_t* shards, std::string* error) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    *error = "shard '" + text + "' must be K/N (e.g. 0/4)";
    return false;
  }
  const auto k = ParseUint64(text.substr(0, slash));
  const auto n = ParseUint64(text.substr(slash + 1));
  if (!k || !n) {
    *error = "shard '" + text + "' wants two non-negative integers K/N";
    return false;
  }
  if (*n == 0) {
    *error = "shard '" + text + "' has a zero shard count";
    return false;
  }
  if (*k >= *n) {
    *error = "shard index " + std::to_string(*k) + " must be < shard count " +
             std::to_string(*n);
    return false;
  }
  *shard = static_cast<std::size_t>(*k);
  *shards = static_cast<std::size_t>(*n);
  return true;
}

const char* CommonFlagsUsage() {
  return "common flags: [--jobs N | --serial] [--seed N] [--replicas N]\n"
         "              [--jsonl FILE|-] [--csv FILE|-]\n"
         "              [--db DIR --name NAME [--sha SHA]] [--quiet]\n"
         "              [--trace-cache DIR | --no-trace-cache]\n"
         "              (trace cache default: $MOBISIM_TRACE_CACHE)\n";
}

std::unique_ptr<TraceCache> OpenTraceCache(const CliOptions& options) {
  if (options.trace_cache_dir.empty()) {
    return nullptr;
  }
  return std::make_unique<TraceCache>(options.trace_cache_dir);
}

std::string NowUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

std::string HostName() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
  const char* env = std::getenv("HOSTNAME");
  return env != nullptr ? env : "unknown";
}

std::string DefaultGitSha() {
  for (const char* var : {"GITHUB_SHA", "MOBISIM_GIT_SHA"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && value[0] != '\0') {
      return value;
    }
  }
  return "local";
}

bool SinkSet::Open(const CliOptions& options, const RunMeta& meta,
                   const std::string& csv_header, std::string* error) {
  const auto open = [error](const std::string& path, std::ofstream* file,
                            std::ostream** out) {
    if (path == "-") {
      *out = &std::cout;
      return true;
    }
    file->open(path);
    if (!*file) {
      *error = "cannot open " + path + " for writing";
      return false;
    }
    *out = file;
    return true;
  };
  if (!options.jsonl_path.empty()) {
    std::ostream* out = nullptr;
    if (!open(options.jsonl_path, &jsonl_file_, &out)) {
      return false;
    }
    jsonl_ = std::make_unique<JsonlResultSink>(*out);
    // Metadata header first: identifies the run and fingerprints the spec so
    // downstream diffs can verify they compare like with like.
    jsonl_->Write(MetaToRow(meta));
    sinks_.push_back(jsonl_.get());
  }
  if (!options.csv_path.empty()) {
    std::ostream* out = nullptr;
    if (!open(options.csv_path, &csv_file_, &out)) {
      return false;
    }
    csv_ = std::make_unique<CsvResultSink>(*out, csv_header);
    sinks_.push_back(csv_.get());
  }
  return true;
}

void SinkSet::AddStdoutCsv(const std::string& csv_header) {
  csv_ = std::make_unique<CsvResultSink>(std::cout, csv_header);
  sinks_.push_back(csv_.get());
}

void SinkSet::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  for (ResultSink* sink : sinks_) {
    sink->Finish();
  }
  if (jsonl_file_.is_open()) {
    jsonl_file_.close();
  }
  if (csv_file_.is_open()) {
    csv_file_.close();
  }
}

}  // namespace mobisim
