#include "src/runner/bench_registry.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "src/util/check.h"

namespace mobisim {

namespace {

std::vector<BenchDef>& Registry() {
  static std::vector<BenchDef> registry;
  return registry;
}

// Tags every row with the bench that produced it; forwarded Finish is a
// no-op so RunSweep's per-grid Finish cannot close a sink that later grids
// (or later benches) still write to — the sink's owner finishes it once.
class BenchLabelSink : public ResultSink {
 public:
  BenchLabelSink(std::string bench, ResultSink* inner)
      : bench_(std::move(bench)), inner_(inner) {}

  void Write(const ResultRow& row) override {
    ResultRow labeled;
    labeled.AddText("bench", bench_);
    for (const ResultField& field : row.fields) {
      labeled.fields.push_back(field);
    }
    inner_->Write(labeled);
  }
  void Finish() override {}
  bool AcceptsErrorRows() const override { return inner_->AcceptsErrorRows(); }
  bool AcceptsDynamicRows() const override { return inner_->AcceptsDynamicRows(); }

 private:
  std::string bench_;
  ResultSink* inner_;
};

}  // namespace

BenchContext::BenchContext(const BenchDef& def, const Options& options)
    : def_(def), options_(options) {
  scale_ = options_.scale > 0.0
               ? options_.scale
               : (options_.smoke ? def_.smoke_scale : def_.default_scale);
  param_ = options_.param != 0
               ? options_.param
               : (options_.smoke ? def_.smoke_param : def_.default_param);
}

std::vector<SweepOutcome> BenchContext::Dispatch(std::vector<ExperimentPoint> points) {
  // Re-index so rows from successive grids of one bench never collide: the
  // `point` column is unique (and monotonic) within the whole bench run.
  for (ExperimentPoint& point : points) {
    point.index = next_index_++;
    if (options_.seed) {
      point.seed = *options_.seed;
    }
  }
  std::vector<BenchLabelSink> labeled;
  labeled.reserve(options_.sinks.size());
  SweepOptions sweep_options;
  sweep_options.threads = options_.threads;
  sweep_options.trace_cache = options_.trace_cache;
  for (ResultSink* sink : options_.sinks) {
    labeled.emplace_back(def_.name, sink);
  }
  for (BenchLabelSink& sink : labeled) {
    sweep_options.sinks.push_back(&sink);
  }
  std::vector<SweepOutcome> outcomes = RunSweep(points, sweep_options);
  for (const SweepOutcome& outcome : outcomes) {
    if (outcome.failed) {
      ++failed_;
    }
  }
  return outcomes;
}

std::vector<SweepOutcome> BenchContext::RunGrid(ExperimentSpec spec) {
  if (options_.seed) {
    spec.seeds = {*options_.seed};
  }
  if (options_.replicas) {
    spec.replicas = *options_.replicas;
  }
  return Dispatch(EnumerateGrid(spec));
}

std::vector<SweepOutcome> BenchContext::RunPoints(std::vector<ExperimentPoint> points) {
  return Dispatch(std::move(points));
}

void BenchContext::Emit(ResultRow row) {
  if (row.Find("point") == nullptr) {
    ResultRow indexed;
    indexed.AddInt("point", next_index_);
    for (ResultField& field : row.fields) {
      indexed.fields.push_back(std::move(field));
    }
    row = std::move(indexed);
  }
  ++next_index_;
  for (ResultSink* sink : options_.sinks) {
    if (!sink->AcceptsDynamicRows()) {
      continue;
    }
    if (row.Find("_error") != nullptr && !sink->AcceptsErrorRows()) {
      continue;
    }
    BenchLabelSink labeled(def_.name, sink);
    labeled.Write(row);
  }
}

bool RegisterBench(BenchDef def) {
  MOBISIM_CHECK(!def.name.empty());
  MOBISIM_CHECK(def.run != nullptr);
  MOBISIM_CHECK(FindBench(def.name) == nullptr);
  Registry().push_back(std::move(def));
  return true;
}

std::vector<const BenchDef*> AllBenches() {
  std::vector<const BenchDef*> benches;
  benches.reserve(Registry().size());
  for (const BenchDef& def : Registry()) {
    benches.push_back(&def);
  }
  std::sort(benches.begin(), benches.end(),
            [](const BenchDef* a, const BenchDef* b) { return a->name < b->name; });
  return benches;
}

const BenchDef* FindBench(const std::string& name) {
  for (const BenchDef& def : Registry()) {
    if (def.name == name) {
      return &def;
    }
  }
  return nullptr;
}

std::size_t RunBench(const BenchDef& def, const BenchContext::Options& options) {
  BenchContext context(def, options);
  try {
    def.run(context);
  } catch (const std::exception& e) {
    // A bench that throws becomes one `_error` row (mirroring failed sweep
    // points) so `run --all` keeps going and the export records the failure.
    ResultRow row;
    row.AddText("_error", e.what());
    context.Emit(std::move(row));
    return context.failed_points() + 1;
  }
  return context.failed_points();
}

}  // namespace mobisim
