// Parallel execution of experiment grids.
//
// RunSweep fans a list of ExperimentPoints across a fixed thread pool.  Every
// source of randomness is seeded per point (the workload generator from
// point.seed, the result reservoirs from compile-time constants), and traces
// are generated once per distinct (workload, scale, seed) — or loaded
// bit-identically from the optional persistent trace cache — and shared
// read-only, so a parallel run produces bit-identical SimResults to a serial
// run of the same points — scheduling order cannot leak into the numbers.
// Rows reach the sinks strictly in enumeration order regardless of which
// point finishes first.
#ifndef MOBISIM_SRC_RUNNER_SWEEP_RUNNER_H_
#define MOBISIM_SRC_RUNNER_SWEEP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <ostream>
#include <vector>

#include "src/core/sim_result.h"
#include "src/runner/experiment_spec.h"
#include "src/runner/result_sink.h"

namespace mobisim {

class TraceCache;
struct SweepOutcome;

struct SweepOptions {
  // Worker threads; 0 = one per hardware core, 1 = serial (no pool).
  std::size_t threads = 0;
  // Optional sinks; rows are written in point order as prefixes complete.
  std::vector<ResultSink*> sinks;
  // Progress meter destination (e.g. &std::cerr); null disables it.
  std::ostream* progress = nullptr;
  // Optional persistent trace cache (src/trace/trace_cache.h): generated
  // traces are loaded from / stored to it, borrowed for the call.  Results
  // are byte-identical with the cache on, off, cold, or warm.
  TraceCache* trace_cache = nullptr;
  // Optional per-row hook, invoked in strict emission (point) order, after
  // the sinks have seen the row, under the emission lock — so it may touch
  // the sinks' streams (e.g. flush a spool file so a later crash loses at
  // most the in-flight row) and update progress counters without its own
  // locking.  Keep it cheap: it serializes emission.
  std::function<void(const SweepOutcome&)> on_emit;
};

struct SweepOutcome {
  ExperimentPoint point;
  SimResult result;
  // Config metadata + flattened result, exactly what the sinks received.
  ResultRow row;
  // A point whose simulation (or trace generation) threw is marked failed
  // rather than aborting the sweep: `row` then carries the point metadata
  // plus an `_error` column with `error`, `result` is default-constructed,
  // and sinks whose AcceptsErrorRows() is false never see the row.
  bool failed = false;
  std::string error;
};

// Metadata columns (point, workload, seed, replica, scale, device,
// utilization, sizes, cleaning policy) prepended to every exported row.
ResultRow PointToRow(const ExperimentPoint& point);

// The full export schema: PointToRow columns followed by the ResultToRow
// fields not already present.  This is exactly what sinks receive for every
// point, so sweep rows always share one schema.
ResultRow MergePointAndResult(const ExperimentPoint& point, const SimResult& result);

// CSV header of the sweep export schema.  The schema is fixed (it does not
// depend on the data), so an empty sweep can still emit a valid header —
// pass this as CsvResultSink's default header.
std::string SweepCsvHeader();

// Runs the points and returns outcomes indexed by point order.  Honours the
// paper's hp methodology (the hp trace is simulated without a DRAM cache,
// matching RunNamedWorkload); the adjusted config is what the row reports.
std::vector<SweepOutcome> RunSweep(const std::vector<ExperimentPoint>& points,
                                   const SweepOptions& options);

// Convenience: enumerate the spec's grid and run it.
std::vector<SweepOutcome> RunSweep(const ExperimentSpec& spec,
                                   const SweepOptions& options);

}  // namespace mobisim

#endif  // MOBISIM_SRC_RUNNER_SWEEP_RUNNER_H_
