#include "src/runner/ablation.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace mobisim {

namespace {

// Metrics worth comparing across policies, with display precision.  Kept
// small on purpose: the matrix is a summary; the JSONL rows carry everything.
struct MatrixMetric {
  const char* key;
  const char* title;
  int decimals;
};

constexpr MatrixMetric kMetrics[] = {
    {"total_energy_j", "Total energy (J)", 2},
    {"write_ms_mean", "Mean write response (ms)", 2},
    {"read_ms_mean", "Mean read response (ms)", 2},
    {"segment_erases", "Segment erases", 0},
    {"blocks_copied", "Cleaning copies (blocks)", 0},
};

struct CellStats {
  double sum = 0.0;
  std::size_t count = 0;   // clean rows folded in
  std::size_t errors = 0;  // `_error` rows seen
};

std::string PolicyLabel(const ResultRow& row) {
  // The ftl column already says "log" for plain cleaner sweeps, so lead with
  // the cleaner (the axis people actually varied) and qualify with the FTL
  // when it is not the log-structured default.
  const std::string ftl = row.Text("ftl", "log");
  const std::string cleaner = row.Text("cleaning_policy", "?");
  std::string label = ftl == "log" ? cleaner : ftl;
  const std::string backend = row.Text("backend", "average-cost");
  if (backend != "average-cost") {
    label += "/" + backend;
  }
  return label;
}

std::string CellLabel(const ResultRow& row) {
  char util[32];
  std::snprintf(util, sizeof(util), "%.0f%%", row.Number("utilization", 0.0) * 100.0);
  return row.Text("workload", "?") + " / " + row.Text("device", "?") + " / " + util;
}

std::string FormatValue(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

}  // namespace

std::string RenderAblationMatrix(const std::vector<ResultRow>& rows) {
  // First-appearance orders keep the rendering deterministic and identical
  // between a serial run and a merged shard set (both are in point order).
  std::vector<std::string> policies;
  std::vector<std::string> cells;
  // (cell, policy, metric) -> stats
  std::map<std::string, std::map<std::string, std::vector<CellStats>>> table;
  constexpr std::size_t kMetricCount = sizeof(kMetrics) / sizeof(kMetrics[0]);

  for (const ResultRow& row : rows) {
    if (IsMetaRow(row)) {
      continue;
    }
    const std::string policy = PolicyLabel(row);
    const std::string cell = CellLabel(row);
    if (std::find(policies.begin(), policies.end(), policy) == policies.end()) {
      policies.push_back(policy);
    }
    if (std::find(cells.begin(), cells.end(), cell) == cells.end()) {
      cells.push_back(cell);
    }
    std::vector<CellStats>& stats = table[cell][policy];
    stats.resize(kMetricCount);
    const bool is_error = row.Find("_error") != nullptr;
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      if (is_error) {
        ++stats[m].errors;
      } else {
        stats[m].sum += row.Number(kMetrics[m].key, 0.0);
        ++stats[m].count;
      }
    }
  }

  std::string out = "# Ablation matrix\n";
  if (policies.empty()) {
    out += "\n(no data rows)\n";
    return out;
  }
  out += "\nColumns are policy tuples (cleaner, or ftl[/backend]); values are"
         " means across\nreplicas and seeds.  ERR marks cells whose every run"
         " failed.\n";

  for (std::size_t m = 0; m < kMetricCount; ++m) {
    out += "\n## " + std::string(kMetrics[m].title) + "\n\n";
    out += "| cell |";
    for (const std::string& policy : policies) {
      out += " " + policy + " |";
    }
    out += "\n|---|";
    for (std::size_t i = 0; i < policies.size(); ++i) {
      out += "---|";
    }
    out += "\n";
    for (const std::string& cell : cells) {
      out += "| " + cell + " |";
      for (const std::string& policy : policies) {
        const auto cell_it = table.find(cell);
        const auto policy_it = cell_it->second.find(policy);
        if (policy_it == cell_it->second.end()) {
          out += "  |";  // grid never produced this combination
          continue;
        }
        const CellStats& stats = policy_it->second[m];
        if (stats.count == 0) {
          out += stats.errors > 0 ? " ERR |" : "  |";
        } else {
          out += " " +
                 FormatValue(stats.sum / static_cast<double>(stats.count),
                             kMetrics[m].decimals) +
                 " |";
        }
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace mobisim
