#include "src/runner/experiment_spec.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "src/core/config_text.h"
#include "src/util/hash.h"
#include "src/util/parse.h"

namespace mobisim {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitList(const std::string& value) {
  std::vector<std::string> items;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) {
    item = Trim(item);
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  return items;
}

// Strict fraction in [0, 1): ParseFiniteDouble rejects nan (which would
// pass the range checks below — nan compares false against everything) and
// overflowing literals like 1e999.
std::optional<double> ParseFraction(const std::string& text) {
  const auto v = ParseFiniteDouble(text);
  if (!v || *v < 0.0 || *v >= 1.0) {
    return std::nullopt;
  }
  return v;
}

// Strict decimal uint64: unlike std::stoull this rejects "-1" (which would
// silently wrap to 2^64-1) and overflow instead of crashing or wrapping.
std::optional<std::uint64_t> ParseU64(const std::string& text) {
  return ParseUint64(text);
}

// Effective size of a dimension: empty sweeps nothing but still contributes
// one point (the base value).
template <typename T>
std::size_t DimSize(const std::vector<T>& dim) {
  return dim.empty() ? 1 : dim.size();
}

// Round-trip-exact double rendering, matching ResultRow::AddNumber, so the
// canonical text (and thus the fingerprint) is insensitive to how the value
// was originally spelled but sensitive to any actual change.
std::string CanonNumber(double value) { return CanonicalDouble(value); }

}  // namespace

std::uint64_t ReplicaSeed(std::uint64_t seed, std::size_t replica) {
  if (replica == 0) {
    return seed;
  }
  // splitmix64 of (seed, replica): well-distributed, platform-stable.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(replica);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::size_t GridSize(const ExperimentSpec& spec) {
  return DimSize(spec.devices) * DimSize(spec.workloads) * DimSize(spec.utilizations) *
         DimSize(spec.dram_sizes) * DimSize(spec.sram_sizes) * DimSize(spec.backends) *
         DimSize(spec.ftl_policies) * DimSize(spec.cleaning_policies) *
         DimSize(spec.power_loss_intervals) * DimSize(spec.seeds) *
         (spec.replicas == 0 ? 1 : spec.replicas);
}

std::vector<ExperimentPoint> EnumerateGrid(const ExperimentSpec& spec) {
  // Materialize each dimension with its fallback so the nest below is uniform.
  const std::vector<DeviceSpec> devices =
      spec.devices.empty() ? std::vector<DeviceSpec>{spec.base.device} : spec.devices;
  const std::vector<std::string> workloads =
      spec.workloads.empty() ? std::vector<std::string>{"synth"} : spec.workloads;
  const std::vector<double> utilizations =
      spec.utilizations.empty() ? std::vector<double>{spec.base.flash_utilization}
                                : spec.utilizations;
  const std::vector<std::uint64_t> dram_sizes =
      spec.dram_sizes.empty() ? std::vector<std::uint64_t>{spec.base.dram_bytes}
                              : spec.dram_sizes;
  const std::vector<std::uint64_t> sram_sizes =
      spec.sram_sizes.empty() ? std::vector<std::uint64_t>{spec.base.sram_bytes}
                              : spec.sram_sizes;
  const std::vector<std::string> backends =
      spec.backends.empty()
          ? std::vector<std::string>{spec.base.use_disk_geometry ? "geometry"
                                                                 : "average-cost"}
          : spec.backends;
  const std::vector<FtlSelection> ftl_policies =
      spec.ftl_policies.empty()
          ? std::vector<FtlSelection>{FtlSelection{spec.base.ftl_policy, std::nullopt}}
          : spec.ftl_policies;
  const std::vector<CleaningPolicy> policies =
      spec.cleaning_policies.empty()
          ? std::vector<CleaningPolicy>{spec.base.cleaning_policy}
          : spec.cleaning_policies;
  const std::vector<double> power_loss_intervals =
      spec.power_loss_intervals.empty()
          ? std::vector<double>{SecFromUs(spec.base.fault.power_loss_interval_us)}
          : spec.power_loss_intervals;
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{1} : spec.seeds;
  const std::size_t replicas = spec.replicas == 0 ? 1 : spec.replicas;
  // Any fault activity anywhere in the grid turns metric export on for every
  // point, so a sweep's rows all share one column schema.
  const bool export_fault =
      !spec.power_loss_intervals.empty() || spec.base.fault.enabled();
  // Same rule for the FTL/backend schema block.
  const bool export_ftl =
      !spec.ftl_policies.empty() || !spec.backends.empty() ||
      spec.base.ftl_policy != FtlPolicyKind::kLogStructured ||
      spec.base.export_ftl_metrics;

  std::vector<ExperimentPoint> points;
  points.reserve(GridSize(spec));
  for (const DeviceSpec& device : devices) {
    for (const std::string& workload : workloads) {
      for (const double utilization : utilizations) {
        for (const std::uint64_t dram : dram_sizes) {
          for (const std::uint64_t sram : sram_sizes) {
            for (const std::string& backend : backends) {
              for (const FtlSelection& ftl : ftl_policies) {
                for (const CleaningPolicy policy : policies) {
                  for (const double power_loss_sec : power_loss_intervals) {
                    for (const std::uint64_t seed : seeds) {
                      for (std::size_t replica = 0; replica < replicas; ++replica) {
                        ExperimentPoint point;
                        point.index = points.size();
                        point.workload = workload;
                        point.scale = spec.scale;
                        point.seed = ReplicaSeed(seed, replica);
                        point.replica = replica;
                        point.config = spec.base;
                        point.config.device = device;
                        point.config.flash_utilization = utilization;
                        point.config.dram_bytes = dram;
                        point.config.sram_bytes = sram;
                        point.config.use_disk_geometry = backend == "geometry";
                        // Cleaning dimension first; an ftl value that names a
                        // cleaner overrides it (the two dimensions share the
                        // cleaner axis on purpose).
                        point.config.cleaning_policy = policy;
                        point.config.ftl_policy = ftl.kind;
                        if (ftl.cleaner) {
                          point.config.cleaning_policy = *ftl.cleaner;
                        }
                        if (export_ftl) {
                          point.config.export_ftl_metrics = true;
                        }
                        point.config.fault.power_loss_interval_us =
                            UsFromSec(power_loss_sec);
                        if (export_fault) {
                          point.config.fault.export_metrics = true;
                        }
                        points.push_back(std::move(point));
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return points;
}

std::vector<ExperimentPoint> FilterShard(std::vector<ExperimentPoint> points,
                                         std::size_t shard, std::size_t shards) {
  if (shards <= 1) {
    return points;
  }
  std::vector<ExperimentPoint> mine;
  for (ExperimentPoint& point : points) {
    if (point.index % shards == shard) {
      mine.push_back(std::move(point));
    }
  }
  return mine;
}

std::vector<ExperimentPoint> FilterPoints(std::vector<ExperimentPoint> points,
                                          const std::vector<std::size_t>& indices) {
  std::vector<ExperimentPoint> mine;
  for (ExperimentPoint& point : points) {
    if (std::find(indices.begin(), indices.end(), point.index) != indices.end()) {
      mine.push_back(std::move(point));
    }
  }
  return mine;
}

bool ApplySpecAssignment(ExperimentSpec* spec, const std::string& raw_key,
                         const std::string& raw_value, std::string* error) {
  std::string key = Trim(raw_key);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  const std::string value = Trim(raw_value);

  if (key == "devices") {
    spec->devices.clear();
    for (const std::string& name : SplitList(value)) {
      const auto device = DeviceByName(name);
      if (!device) {
        SetError(error, "unknown device '" + name + "' in devices list");
        return false;
      }
      spec->devices.push_back(*device);
    }
    return true;
  }
  if (key == "workloads") {
    spec->workloads = SplitList(value);
    for (const std::string& name : spec->workloads) {
      if (name != "mac" && name != "dos" && name != "pc" && name != "hp" &&
          name != "synth") {
        SetError(error, "unknown workload '" + name + "' in workloads list");
        return false;
      }
    }
    return true;
  }
  if (key == "utilizations") {
    spec->utilizations.clear();
    for (const std::string& item : SplitList(value)) {
      const auto v = ParseFraction(item);
      if (!v) {
        SetError(error, "bad utilization '" + item + "' (want fraction in [0, 1))");
        return false;
      }
      spec->utilizations.push_back(*v);
    }
    return true;
  }
  if (key == "dram_sizes" || key == "sram_sizes") {
    std::vector<std::uint64_t> sizes;
    for (const std::string& item : SplitList(value)) {
      const auto size = ParseSize(item);
      if (!size) {
        SetError(error, "bad size '" + item + "' in " + key);
        return false;
      }
      sizes.push_back(*size);
    }
    (key == "dram_sizes" ? spec->dram_sizes : spec->sram_sizes) = std::move(sizes);
    return true;
  }
  if (key == "backends") {
    spec->backends.clear();
    for (const std::string& item : SplitList(value)) {
      // Same lowering rule as every other name axis.
      const std::string v = NormalizeName(item);
      if (v != "average-cost" && v != "geometry") {
        SetError(error, "bad backend '" + item + "' (want average-cost|geometry)");
        return false;
      }
      spec->backends.push_back(v);
    }
    return true;
  }
  if (key == "ftl") {
    // The spec-level `ftl` is always the sweep dimension, even with a single
    // value, so one key spells the whole FTL axis of an ablation matrix.
    spec->ftl_policies.clear();
    for (const std::string& item : SplitList(value)) {
      const auto selection = FtlSelectionByName(item);
      if (!selection) {
        SetError(error, "bad ftl '" + item +
                            "' (want log|page-diff|fat-remap or a cleaner name)");
        return false;
      }
      spec->ftl_policies.push_back(*selection);
    }
    return true;
  }
  if (key == "cleaning_policies") {
    spec->cleaning_policies.clear();
    for (const std::string& item : SplitList(value)) {
      const auto policy = CleaningPolicyByName(item);
      if (!policy) {
        SetError(error, "bad cleaning policy '" + item +
                            "' (want greedy|cost-benefit|wear-aware)");
        return false;
      }
      spec->cleaning_policies.push_back(*policy);
    }
    return true;
  }
  if (key == "power_loss_intervals") {
    spec->power_loss_intervals.clear();
    for (const std::string& item : SplitList(value)) {
      const auto v = ParseFiniteDouble(item);
      if (!v || *v < 0.0) {
        SetError(error,
                 "bad power-loss interval '" + item + "' (want seconds >= 0)");
        return false;
      }
      spec->power_loss_intervals.push_back(*v);
    }
    return true;
  }
  if (key == "seeds") {
    spec->seeds.clear();
    for (const std::string& item : SplitList(value)) {
      const auto seed = ParseU64(item);
      if (!seed) {
        SetError(error, "bad seed '" + item + "' (want unsigned integer)");
        return false;
      }
      spec->seeds.push_back(*seed);
    }
    return true;
  }
  if (key == "replicas") {
    const auto n = ParseU64(value);
    if (!n || *n == 0 || *n > 1000) {
      SetError(error, "bad replicas '" + value + "' (want integer in [1, 1000])");
      return false;
    }
    spec->replicas = static_cast<std::size_t>(*n);
    return true;
  }
  if (key == "scale") {
    const auto v = ParseFiniteDouble(value);
    if (!v || *v <= 0.0) {
      SetError(error, "bad scale '" + value + "' (want finite number > 0)");
      return false;
    }
    spec->scale = *v;
    return true;
  }
  // Everything else is a base-config key.
  return ApplyConfigAssignment(&spec->base, key, value, error);
}

std::optional<ExperimentSpec> ParseExperimentSpec(const std::string& text,
                                                  std::string* error) {
  ExperimentSpec spec;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      SetError(error, "line " + std::to_string(line_no) + ": expected key = value");
      return std::nullopt;
    }
    std::string assign_error;
    if (!ApplySpecAssignment(&spec, line.substr(0, eq), line.substr(eq + 1),
                             &assign_error)) {
      SetError(error, "line " + std::to_string(line_no) + ": " + assign_error);
      return std::nullopt;
    }
  }
  return spec;
}

std::string DescribeSpec(const ExperimentSpec& spec) {
  std::ostringstream out;
  out << DimSize(spec.devices) << " devices x " << DimSize(spec.workloads)
      << " workloads x " << DimSize(spec.utilizations) << " utilizations x "
      << DimSize(spec.dram_sizes) << " dram x " << DimSize(spec.sram_sizes)
      << " sram x " << DimSize(spec.cleaning_policies) << " policies x "
      << DimSize(spec.seeds) << " seeds";
  if (!spec.backends.empty()) {
    out << " x " << spec.backends.size() << " backends";
  }
  if (!spec.ftl_policies.empty()) {
    out << " x " << spec.ftl_policies.size() << " ftl";
  }
  if (!spec.power_loss_intervals.empty()) {
    out << " x " << spec.power_loss_intervals.size() << " power-loss intervals";
  }
  if (spec.replicas > 1) {
    out << " x " << spec.replicas << " replicas";
  }
  out << " = " << GridSize(spec) << " points (scale " << spec.scale << ")";
  return out.str();
}

namespace {

void AppendDeviceFields(std::ostringstream& out, const std::string& prefix,
                        const DeviceSpec& d) {
  out << prefix << ".name = " << d.name << "\n"
      << prefix << ".kind = " << static_cast<int>(d.kind) << "\n"
      << prefix << ".read_overhead_ms = " << CanonNumber(d.read_overhead_ms) << "\n"
      << prefix << ".write_overhead_ms = " << CanonNumber(d.write_overhead_ms) << "\n"
      << prefix << ".sequential_overhead_ms = " << CanonNumber(d.sequential_overhead_ms)
      << "\n"
      << prefix << ".read_kbps = " << CanonNumber(d.read_kbps) << "\n"
      << prefix << ".write_kbps = " << CanonNumber(d.write_kbps) << "\n"
      << prefix << ".internal_read_kbps = " << CanonNumber(d.internal_read_kbps) << "\n"
      << prefix << ".internal_write_kbps = " << CanonNumber(d.internal_write_kbps)
      << "\n"
      << prefix << ".spinup_ms = " << CanonNumber(d.spinup_ms) << "\n"
      << prefix << ".erase_segment_bytes = " << d.erase_segment_bytes << "\n"
      << prefix << ".erase_ms_per_segment = " << CanonNumber(d.erase_ms_per_segment)
      << "\n"
      << prefix << ".erase_kbps = " << CanonNumber(d.erase_kbps) << "\n"
      << prefix << ".pre_erased_write_kbps = " << CanonNumber(d.pre_erased_write_kbps)
      << "\n"
      << prefix << ".endurance_cycles = " << d.endurance_cycles << "\n"
      << prefix << ".read_w = " << CanonNumber(d.read_w) << "\n"
      << prefix << ".write_w = " << CanonNumber(d.write_w) << "\n"
      << prefix << ".erase_w = " << CanonNumber(d.erase_w) << "\n"
      << prefix << ".idle_w = " << CanonNumber(d.idle_w) << "\n"
      << prefix << ".sleep_w = " << CanonNumber(d.sleep_w) << "\n"
      << prefix << ".spinup_w = " << CanonNumber(d.spinup_w) << "\n";
  // NAND topology block only for NAND devices: no pre-existing spec carries
  // one, so every historical fingerprint is unchanged.
  if (d.kind == DeviceKind::kNandSsd) {
    out << prefix << ".nand.channels = " << d.nand.channels << "\n"
        << prefix << ".nand.dies = " << d.nand.dies_per_channel << "\n"
        << prefix << ".nand.planes = " << d.nand.planes_per_die << "\n"
        << prefix << ".nand.page_bytes = " << d.nand.page_bytes << "\n"
        << prefix << ".nand.pages_per_block = " << d.nand.pages_per_block << "\n"
        << prefix << ".nand.read_us = " << CanonNumber(d.nand.read_page_us) << "\n"
        << prefix << ".nand.program_us = " << CanonNumber(d.nand.program_page_us)
        << "\n"
        << prefix << ".nand.erase_ms = " << CanonNumber(d.nand.erase_block_ms) << "\n"
        << prefix << ".nand.channel_mbps = " << CanonNumber(d.nand.channel_mbps)
        << "\n";
  }
}

}  // namespace

std::string CanonicalSpecText(const ExperimentSpec& spec) {
  std::ostringstream out;

  out << "devices =";
  for (const DeviceSpec& d : spec.devices) {
    out << " " << d.name;
  }
  out << "\n";
  out << "workloads =";
  for (const std::string& w : spec.workloads) {
    out << " " << w;
  }
  out << "\n";
  out << "utilizations =";
  for (const double u : spec.utilizations) {
    out << " " << CanonNumber(u);
  }
  out << "\n";
  out << "dram_sizes =";
  for (const std::uint64_t b : spec.dram_sizes) {
    out << " " << b;
  }
  out << "\n";
  out << "sram_sizes =";
  for (const std::uint64_t b : spec.sram_sizes) {
    out << " " << b;
  }
  out << "\n";
  out << "cleaning_policies =";
  for (const CleaningPolicy p : spec.cleaning_policies) {
    out << " " << CleaningPolicyName(p);
  }
  out << "\n";
  out << "seeds =";
  for (const std::uint64_t s : spec.seeds) {
    out << " " << s;
  }
  out << "\n";
  out << "scale = " << CanonNumber(spec.scale) << "\n";
  out << "replicas = " << spec.replicas << "\n";

  const SimConfig& c = spec.base;
  AppendDeviceFields(out, "base.device", c.device);
  out << "base.dram = " << c.dram.name << "\n"
      << "base.dram_bytes = " << c.dram_bytes << "\n"
      << "base.sram = " << c.sram.name << "\n"
      << "base.sram_bytes = " << c.sram_bytes << "\n"
      << "base.capacity_bytes = " << c.capacity_bytes << "\n"
      << "base.auto_capacity = " << (c.auto_capacity ? 1 : 0) << "\n"
      << "base.flash_utilization = " << CanonNumber(c.flash_utilization) << "\n"
      << "base.interleave_prefill = " << (c.interleave_prefill ? 1 : 0) << "\n"
      << "base.spin_down_after_us = " << c.spin_down_after_us << "\n"
      << "base.spin_down_policy = " << static_cast<int>(c.spin_down_policy) << "\n"
      << "base.use_disk_geometry = " << (c.use_disk_geometry ? 1 : 0) << "\n"
      << "base.background_cleaning = " << (c.background_cleaning ? 1 : 0) << "\n"
      << "base.cleaning_policy = " << CleaningPolicyName(c.cleaning_policy) << "\n"
      << "base.separate_cleaning_segment = " << (c.separate_cleaning_segment ? 1 : 0)
      << "\n"
      << "base.flash_async_erasure = " << (c.flash_async_erasure ? 1 : 0) << "\n"
      << "base.warm_fraction = " << CanonNumber(c.warm_fraction) << "\n"
      << "base.write_back_cache = " << (c.write_back_cache ? 1 : 0) << "\n"
      << "base.cache_sync_interval_us = " << c.cache_sync_interval_us << "\n";
  // Fault block only when the spec actually uses faults, so the fingerprints
  // of all pre-existing (fault-free) specs are unchanged.
  if (c.fault.enabled() || !spec.power_loss_intervals.empty()) {
    out << "power_loss_intervals =";
    for (const double v : spec.power_loss_intervals) {
      out << " " << CanonNumber(v);
    }
    out << "\n";
    out << "base.fault.seed = " << c.fault.seed << "\n"
        << "base.fault.power_loss_interval_us = " << c.fault.power_loss_interval_us
        << "\n"
        << "base.fault.transient_error_rate = " << CanonNumber(c.fault.transient_error_rate)
        << "\n"
        << "base.fault.bad_block_rate = " << CanonNumber(c.fault.bad_block_rate) << "\n"
        << "base.fault.wear_out = " << (c.fault.wear_out ? 1 : 0) << "\n"
        << "base.fault.endurance_scale = " << CanonNumber(c.fault.endurance_scale) << "\n"
        << "base.fault.endurance_spread = " << CanonNumber(c.fault.endurance_spread)
        << "\n"
        << "base.fault.max_retries = " << c.fault.max_retries << "\n"
        << "base.fault.retry_backoff_us = " << c.fault.retry_backoff_us << "\n";
  }
  // FTL/backend block only when the spec uses those dimensions (or a
  // non-default base FTL), preserving pre-FTL spec fingerprints.
  if (!spec.ftl_policies.empty() || !spec.backends.empty() ||
      c.ftl_policy != FtlPolicyKind::kLogStructured || c.export_ftl_metrics) {
    out << "backends =";
    for (const std::string& b : spec.backends) {
      out << " " << b;
    }
    out << "\n";
    out << "ftl =";
    for (const FtlSelection& f : spec.ftl_policies) {
      out << " " << (f.cleaner ? CleaningPolicyName(*f.cleaner)
                               : FtlPolicyKindName(f.kind));
    }
    out << "\n";
    out << "base.ftl_policy = " << FtlPolicyKindName(c.ftl_policy) << "\n"
        << "base.export_ftl_metrics = " << (c.export_ftl_metrics ? 1 : 0) << "\n";
  }
  return out.str();
}

std::string SpecFingerprint(const ExperimentSpec& spec) {
  return HexU64(Fnv1a64(CanonicalSpecText(spec)));
}

}  // namespace mobisim
