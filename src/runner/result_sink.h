// Streaming destinations for sweep results.
//
// The sweep runner emits rows strictly in point (enumeration) order, one call
// at a time, so sinks need no locking of their own.  Finish() flushes; it is
// called once after the last row (and is safe to call on an empty run).
#ifndef MOBISIM_SRC_RUNNER_RESULT_SINK_H_
#define MOBISIM_SRC_RUNNER_RESULT_SINK_H_

#include <ostream>
#include <string>

#include "src/core/result_io.h"

namespace mobisim {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void Write(const ResultRow& row) = 0;
  virtual void Finish() {}
  // Whether the sink can take `_error` rows from failed sweep points.  Such
  // rows carry only the point metadata plus an `_error` message, so sinks
  // with a rigid schema (CSV) opt out and the runner skips them.
  virtual bool AcceptsErrorRows() const { return true; }
  // Whether the sink tolerates rows whose schema differs row to row (the
  // bench registry's hand-measured rows: microbenchmark cells, testbed
  // curves).  Fixed-schema sinks (CSV) opt out; such rows only reach
  // schema-free destinations like JSONL.
  virtual bool AcceptsDynamicRows() const { return true; }
};

// One JSON object per line (JSONL / NDJSON).
class JsonlResultSink : public ResultSink {
 public:
  explicit JsonlResultSink(std::ostream& out) : out_(out) {}
  void Write(const ResultRow& row) override;
  void Finish() override;

 private:
  std::ostream& out_;
};

// CSV with a header derived from the first row.  Later rows must carry the
// same keys in the same order (the sweep runner guarantees this for rows it
// produces); a mismatch MOBISIM_CHECK-fails rather than writing a corrupt
// table.
//
// `default_header` covers the zero-row case: when no row ever arrives,
// Finish() emits it so the file is still a well-formed (empty) table and
// downstream readers never special-case header-less files.  Sweep callers
// pass SweepCsvHeader(); an empty default keeps the old emit-nothing
// behaviour.
class CsvResultSink : public ResultSink {
 public:
  explicit CsvResultSink(std::ostream& out, std::string default_header = "")
      : out_(out), default_header_(std::move(default_header)) {}
  void Write(const ResultRow& row) override;
  void Finish() override;
  bool AcceptsErrorRows() const override { return false; }
  bool AcceptsDynamicRows() const override { return false; }

 private:
  std::ostream& out_;
  std::string default_header_;
  std::string header_;
  bool wrote_header_ = false;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_RUNNER_RESULT_SINK_H_
