#include "src/runner/result_sink.h"

#include "src/util/check.h"

namespace mobisim {

void JsonlResultSink::Write(const ResultRow& row) { out_ << RowToJson(row) << "\n"; }

void JsonlResultSink::Finish() { out_.flush(); }

void CsvResultSink::Write(const ResultRow& row) {
  const std::string header = RowToCsvHeader(row);
  if (!wrote_header_) {
    header_ = header;
    wrote_header_ = true;
    out_ << header_ << "\n";
  } else {
    MOBISIM_CHECK(header == header_ && "CSV rows must share one schema");
  }
  out_ << RowToCsvLine(row) << "\n";
}

void CsvResultSink::Finish() {
  if (!wrote_header_ && !default_header_.empty()) {
    header_ = default_header_;
    wrote_header_ = true;
    out_ << header_ << "\n";
  }
  out_.flush();
}

}  // namespace mobisim
