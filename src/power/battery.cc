#include "src/power/battery.h"

#include <cmath>

#include "src/util/check.h"

namespace mobisim {

Battery::Battery(const BatteryConfig& config) : config_(config) {
  MOBISIM_CHECK(config.nominal_wh > 0.0);
  MOBISIM_CHECK(config.nominal_load_w > 0.0);
  MOBISIM_CHECK(config.peukert_exponent >= 1.0);
}

double Battery::EffectiveWh(double load_w) const {
  MOBISIM_CHECK(load_w > 0.0);
  // Peukert: t = C / I^k normalized at the nominal rate; in watt terms,
  // capacity scales by (nominal/load)^(k-1).
  const double ratio = config_.nominal_load_w / load_w;
  return config_.nominal_wh * std::pow(ratio, config_.peukert_exponent - 1.0);
}

double Battery::LifetimeHours(double load_w) const {
  return EffectiveWh(load_w) / load_w;
}

double Battery::ExtensionVs(double base_load_w, double new_load_w) const {
  return LifetimeHours(new_load_w) / LifetimeHours(base_load_w) - 1.0;
}

}  // namespace mobisim
