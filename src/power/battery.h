// Battery lifetime model.
//
// The paper's bottom line is battery life ("these energy savings can
// translate into a 22% extension of battery life").  This module turns
// simulated storage energy into battery hours: a pack has a nominal
// watt-hour capacity specified at a nominal discharge rate, and real
// chemistry delivers less at higher rates (Peukert's law), so shaving watts
// extends life slightly super-linearly.
#ifndef MOBISIM_SRC_POWER_BATTERY_H_
#define MOBISIM_SRC_POWER_BATTERY_H_

namespace mobisim {

struct BatteryConfig {
  // Typical early-90s notebook NiMH pack.
  double nominal_wh = 24.0;
  // Discharge rate at which the nominal capacity is specified.
  double nominal_load_w = 12.0;
  // Peukert exponent; 1.0 = ideal battery, NiMH ~1.05-1.15.
  double peukert_exponent = 1.10;
};

class Battery {
 public:
  explicit Battery(const BatteryConfig& config);

  // Hours of runtime under a constant load (watts > 0).
  double LifetimeHours(double load_w) const;
  // Effective deliverable capacity (Wh) at the given load.
  double EffectiveWh(double load_w) const;
  // Relative battery-life extension of `new_load_w` vs `base_load_w`
  // (0.22 = 22% longer).
  double ExtensionVs(double base_load_w, double new_load_w) const;

 private:
  BatteryConfig config_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_POWER_BATTERY_H_
