#include "src/hybrid/hybrid_store.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mobisim {

namespace {

constexpr std::uint32_t kNoFile = ~std::uint32_t{0};

BlockRecord MakeRecord(SimTime t, OpType op, std::uint64_t lba, std::uint32_t count,
                       std::uint32_t file_id) {
  BlockRecord rec;
  rec.time_us = t;
  rec.op = op;
  rec.lba = lba;
  rec.block_count = count;
  rec.file_id = file_id;
  return rec;
}

}  // namespace

HybridStore::HybridStore(const HybridConfig& config)
    : config_(config), dram_(config.dram, config.dram_bytes, config.block_bytes) {
  DeviceOptions disk_options;
  disk_options.block_bytes = config.block_bytes;
  disk_options.capacity_bytes = config.disk_capacity_bytes;
  disk_options.spin_down_after_us = config.spin_down_after_us;
  disk_ = std::make_unique<MagneticDisk>(config.disk, disk_options);

  DeviceOptions flash_options;
  flash_options.block_bytes = config.block_bytes;
  flash_options.capacity_bytes = std::max<std::uint64_t>(
      config.flash_bytes, 3ull * config.flash.erase_segment_bytes);
  flash_ = std::make_unique<FlashCard>(config.flash, flash_options);

  flash_capacity_blocks_ = static_cast<std::uint64_t>(
      config.flash_fill_fraction *
      static_cast<double>(flash_options.capacity_bytes / config.block_bytes));
  MOBISIM_CHECK(flash_capacity_blocks_ > 0);
  flash_free_.emplace_back(0, flash_->segments().total_blocks());
}

std::uint64_t HybridStore::AllocateFlash(std::uint64_t count) {
  for (auto& [lba, range] : flash_free_) {
    if (range >= count) {
      const std::uint64_t result = lba;
      lba += count;
      range -= count;
      return result;
    }
  }
  return kNoLba;
}

void HybridStore::FreeFlash(std::uint64_t lba, std::uint64_t count) {
  flash_free_.emplace_back(lba, count);
}

double HybridStore::flash_service_fraction() const {
  const std::uint64_t total = flash_accesses_ + disk_accesses_;
  return total == 0 ? 0.0
                    : static_cast<double>(flash_accesses_) / static_cast<double>(total);
}

HybridStore::FileInfo& HybridStore::GetFile(const BlockRecord& rec) {
  auto it = files_.find(rec.file_id);
  if (it == files_.end()) {
    FileInfo info;
    info.home_lba = rec.lba;  // the block trace's disk address for this file
    info.first_lba = rec.lba;
    info.block_count = rec.block_count;
    it = files_.emplace(rec.file_id, info).first;
  }
  FileInfo& file = it->second;
  // Track the file's full extent as we observe it.
  const std::uint64_t end = rec.lba + rec.block_count;
  const std::uint64_t home_end = std::max(file.home_lba + file.block_count, end);
  const std::uint64_t new_home = std::min(file.home_lba, rec.lba);
  extent_grew_ = new_home != file.home_lba || home_end - new_home != file.block_count;
  file.home_lba = new_home;
  file.block_count = home_end - new_home;
  return file;
}

void HybridStore::Heat(FileInfo& file, SimTime now) {
  const double dt_sec = SecFromUs(std::max<SimTime>(0, now - file.heat_updated_us));
  file.heat = file.heat * std::exp2(-dt_sec / config_.half_life_sec) + 1.0;
  file.heat_updated_us = now;
}

std::uint32_t HybridStore::ColdestOnFlash(SimTime now) {
  std::uint32_t coldest = kNoFile;
  double coldest_heat = 0.0;
  for (auto& [id, file] : files_) {
    if (!file.on_flash) {
      continue;
    }
    const double dt_sec = SecFromUs(std::max<SimTime>(0, now - file.heat_updated_us));
    const double heat = file.heat * std::exp2(-dt_sec / config_.half_life_sec);
    if (coldest == kNoFile || heat < coldest_heat) {
      coldest = id;
      coldest_heat = heat;
    }
  }
  return coldest;
}

void HybridStore::Demote(std::uint32_t file_id, SimTime now) {
  FileInfo& file = files_.at(file_id);
  MOBISIM_DCHECK(file.on_flash);
  // Move the data back to its disk home (off the critical path).
  flash_->Read(now, MakeRecord(now, OpType::kRead, file.first_lba,
                               static_cast<std::uint32_t>(file.flash_blocks), file_id));
  disk_->Write(now, MakeRecord(now, OpType::kWrite, file.home_lba,
                               static_cast<std::uint32_t>(file.flash_blocks), file_id));
  flash_->Trim(now, MakeRecord(now, OpType::kErase, file.first_lba,
                               static_cast<std::uint32_t>(file.flash_blocks), file_id));
  FreeFlash(file.first_lba, file.flash_blocks);
  flash_used_blocks_ -= file.flash_blocks;
  file.on_flash = false;
  file.flash_blocks = 0;
  file.first_lba = file.home_lba;
  ++demotions_;
}

void HybridStore::ConsiderPromotion(std::uint32_t file_id, FileInfo& file, SimTime now) {
  if (file.on_flash || file.heat < config_.promote_heat ||
      file.block_count > flash_capacity_blocks_) {
    return;
  }
  // Make room by demoting colder residents, if that is justified.
  while (flash_used_blocks_ + file.block_count > flash_capacity_blocks_) {
    const std::uint32_t coldest = ColdestOnFlash(now);
    if (coldest == kNoFile) {
      return;
    }
    FileInfo& victim = files_.at(coldest);
    Heat(victim, now);
    victim.heat -= 1.0;  // undo the touch Heat() adds
    if (file.heat < victim.heat * config_.promote_margin) {
      return;  // not hot enough to displace residents
    }
    Demote(coldest, now);
  }
  // Copy disk -> flash off the critical path.
  const std::uint64_t flash_lba = AllocateFlash(file.block_count);
  if (flash_lba == kNoLba) {
    return;  // logical space fragmented; skip this promotion
  }
  disk_->Read(now, MakeRecord(now, OpType::kRead, file.home_lba,
                              static_cast<std::uint32_t>(file.block_count), file_id));
  flash_->Write(now, MakeRecord(now, OpType::kWrite, flash_lba,
                                static_cast<std::uint32_t>(file.block_count), file_id));
  file.on_flash = true;
  file.first_lba = flash_lba;
  file.flash_blocks = file.block_count;
  flash_used_blocks_ += file.block_count;
  ++promotions_;
}

SimTime HybridStore::Handle(const BlockRecord& rec) {
  dram_.AccountUntil(rec.time_us);
  disk_->AdvanceTo(rec.time_us);
  flash_->AdvanceTo(rec.time_us);

  if (rec.op == OpType::kErase) {
    const auto it = files_.find(rec.file_id);
    if (it != files_.end()) {
      FileInfo& file = it->second;
      if (file.on_flash) {
        flash_->Trim(rec.time_us,
                     MakeRecord(rec.time_us, OpType::kErase, file.first_lba,
                                static_cast<std::uint32_t>(file.flash_blocks), rec.file_id));
        FreeFlash(file.first_lba, file.flash_blocks);
        flash_used_blocks_ -= file.flash_blocks;
      }
      files_.erase(it);
    }
    dram_.InvalidateRange(rec.lba, rec.block_count);
    return 0;
  }

  FileInfo& file = GetFile(rec);
  if (file.on_flash && extent_grew_) {
    // The file outgrew its flash allocation; send it home before routing.
    Demote(rec.file_id, rec.time_us);
  }
  Heat(file, rec.time_us);

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * config_.block_bytes;
  if (rec.op == OpType::kRead && dram_.ReadHit(rec.lba, rec.block_count)) {
    dram_.NoteTransfer(bytes);
    ConsiderPromotion(rec.file_id, file, rec.time_us);
    return dram_.AccessTime(bytes);
  }

  // Route to the owning device, translating to its address space.
  SimTime response;
  if (file.on_flash) {
    ++flash_accesses_;
    const std::uint64_t offset = rec.lba - file.home_lba;
    const BlockRecord routed = MakeRecord(rec.time_us, rec.op, file.first_lba + offset,
                                          rec.block_count, rec.file_id);
    response = rec.op == OpType::kRead ? flash_->Read(rec.time_us, routed)
                                       : flash_->Write(rec.time_us, routed);
  } else {
    ++disk_accesses_;
    response = rec.op == OpType::kRead ? disk_->Read(rec.time_us, rec)
                                       : disk_->Write(rec.time_us, rec);
  }
  dram_.Insert(rec.lba, rec.block_count);
  dram_.NoteTransfer(bytes);
  ConsiderPromotion(rec.file_id, file, rec.time_us);
  return response;
}

void HybridStore::Finish(SimTime end) {
  end = std::max({end, disk_->busy_until(), flash_->busy_until()});
  disk_->Finish(end);
  flash_->Finish(end);
  dram_.Finish(end);
}

}  // namespace mobisim
