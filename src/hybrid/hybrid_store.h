// Hybrid disk + flash storage with hot/cold file placement.
//
// The paper's economics (section 1: flash at $30-50/Mbyte vs disk at
// $1-5/Mbyte) make an all-flash mobile store expensive; its conclusion asks
// how far flash's energy advantage stretches.  This module implements the
// natural middle point: a small flash card holds the hot files, the disk
// holds the rest, and files migrate between them based on an exponentially
// decayed access-frequency estimate.  Writes to flash-resident files never
// touch the disk, so it can stay spun down through hot-set activity.
//
// Placement is per file (the unit the paper's traces and seek model use).
// Migrations run off the critical path: the data movement is charged to the
// devices (keeping them busy) but not to the triggering request.
#ifndef MOBISIM_SRC_HYBRID_HYBRID_STORE_H_
#define MOBISIM_SRC_HYBRID_HYBRID_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/device/device_catalog.h"
#include "src/device/flash_card.h"
#include "src/device/magnetic_disk.h"
#include "src/trace/trace_record.h"

namespace mobisim {

struct HybridConfig {
  DeviceSpec disk = Cu140Datasheet();
  DeviceSpec flash = IntelCardDatasheet();
  std::uint64_t flash_bytes = 4ull * 1024 * 1024;
  // Fraction of flash capacity the placement policy may fill (the rest is
  // cleaning slack).
  double flash_fill_fraction = 0.60;
  MemorySpec dram = NecDramSpec();
  std::uint64_t dram_bytes = 2ull * 1024 * 1024;
  std::uint32_t block_bytes = 1024;
  std::uint64_t disk_capacity_bytes = 40ull * 1024 * 1024;
  SimTime spin_down_after_us = 5 * kUsPerSec;
  // Heat decays by half every `half_life_sec`; a file becomes a promotion
  // candidate at `promote_heat` recent accesses and migrates when its heat
  // exceeds the coldest flash resident's by `promote_margin`.  Higher
  // thresholds curb migration churn (promotions cost a disk read + flash
  // write of the whole file).
  double half_life_sec = 120.0;
  double promote_heat = 8.0;
  double promote_margin = 2.0;
};

class HybridStore {
 public:
  explicit HybridStore(const HybridConfig& config);

  // Services one block-level operation; returns its response time (us).
  SimTime Handle(const BlockRecord& rec);
  void Finish(SimTime end);

  double disk_energy_j() const { return disk_->energy().total_joules(); }
  double flash_energy_j() const { return flash_->energy().total_joules(); }
  double dram_energy_j() const { return dram_.energy().total_joules(); }
  double total_energy_j() const {
    return disk_energy_j() + flash_energy_j() + dram_energy_j();
  }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t flash_resident_blocks() const { return flash_used_blocks_; }
  const DeviceCounters& disk_counters() const { return disk_->counters(); }
  const DeviceCounters& flash_counters() const { return flash_->counters(); }
  // Fraction of block accesses served by the flash side (post-placement).
  double flash_service_fraction() const;

 private:
  struct FileInfo {
    bool on_flash = false;
    double heat = 0.0;
    SimTime heat_updated_us = 0;
    std::uint64_t first_lba = 0;    // within the owning device's space
    std::uint64_t block_count = 0;  // observed extent (disk blocks)
    std::uint64_t flash_blocks = 0; // blocks allocated on flash when resident
    std::uint64_t home_lba = 0;     // disk-side address (stable)
  };

  // Looks up (or creates) the file and folds the record into its observed
  // extent; sets `extent_grew_` when the extent changed.
  FileInfo& GetFile(const BlockRecord& rec);
  bool extent_grew_ = false;
  void Heat(FileInfo& file, SimTime now);
  void ConsiderPromotion(std::uint32_t file_id, FileInfo& file, SimTime now);
  void Demote(std::uint32_t file_id, SimTime now);
  // Coldest flash-resident file, or ~0u if none.
  std::uint32_t ColdestOnFlash(SimTime now);

  HybridConfig config_;
  BufferCache dram_;
  std::unique_ptr<MagneticDisk> disk_;
  std::unique_ptr<FlashCard> flash_;

  // Flash logical-address allocator: first-fit over free ranges.
  std::uint64_t AllocateFlash(std::uint64_t count);  // returns lba or kNoLba
  void FreeFlash(std::uint64_t lba, std::uint64_t count);
  static constexpr std::uint64_t kNoLba = ~std::uint64_t{0};

  std::unordered_map<std::uint32_t, FileInfo> files_;
  std::uint64_t flash_capacity_blocks_;
  std::uint64_t flash_used_blocks_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flash_free_;  // (lba, count)
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t flash_accesses_ = 0;
  std::uint64_t disk_accesses_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_HYBRID_HYBRID_STORE_H_
