#include "src/sweepd/lease.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "src/runner/cli_options.h"
#include "src/sweepd/merge.h"
#include "src/util/atomic_file.h"
#include "src/util/hash.h"
#include "src/util/heartbeat.h"

namespace mobisim {

namespace {

// Parses a single-JSON-object request body (trailing newline tolerated).
std::optional<ResultRow> ParseBodyRow(const std::string& body) {
  std::string text = body;
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  if (text.empty()) {
    return ResultRow{};  // an empty body is a valid empty request
  }
  std::string error;
  return RowFromJson(text, &error);
}

HttpResponse JsonOk(const ResultRow& row) {
  HttpResponse response;
  response.body = RowToJson(row) + "\n";
  return response;
}

std::string JoinIndices(const std::vector<std::uint64_t>& points) {
  std::ostringstream out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << points[i];
  }
  return out.str();
}

}  // namespace

std::size_t ExpectedItemPoints(const WorkItem& item, std::size_t total_points) {
  if (!item.points.empty()) {
    return item.points.size();
  }
  if (item.shards == 0) {
    return 0;
  }
  // FilterShard keeps global indices with index % shards == shard.
  return total_points / item.shards +
         (item.shard < total_points % item.shards ? 1 : 0);
}

LeaseService::LeaseService(const Spool* spool, SpoolMeta meta,
                           std::string spec_text, LeaseServiceOptions options)
    : spool_(spool),
      meta_(std::move(meta)),
      spec_text_(std::move(spec_text)),
      options_(options) {
  // Owner ids must never collide with local worker pids (the dispatcher's
  // dead-owner test) or with a previous dispatcher incarnation's remote
  // owners (heartbeat files survive restarts): high bit set, seeded from
  // wall clock and pid, then sequential.
  next_owner_ = (Fnv1a64(NowUtc() + "/" + std::to_string(::getpid())) |
                 (1ull << 63));
}

std::optional<HttpResponse> LeaseService::Handle(const HttpRequest& request) {
  if (request.path != "/lease" && request.path != "/heartbeat" &&
      request.path != "/results" && request.path != "/done") {
    return std::nullopt;
  }
  if (request.method != "POST") {
    return HttpError(405, "lease endpoints are POST only");
  }
  if (request.path == "/lease") {
    return HandleLease(request);
  }
  if (request.path == "/heartbeat") {
    return HandleHeartbeat(request);
  }
  if (request.path == "/results") {
    return HandleResults(request);
  }
  return HandleDone(request);
}

void LeaseService::InvalidateItem(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.item.id == id) {
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t LeaseService::active_leases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leases_.size();
}

LeaseService::Lease* LeaseService::Validate(const std::string& token,
                                            std::string* why) {
  const auto it = leases_.find(token);
  if (it == leases_.end()) {
    *why = "unknown or invalidated lease token";
    return nullptr;
  }
  // The token table alone is not authoritative — the spool is.  The item
  // must still be running under the granted attempt with the granted
  // owner's heartbeat; anything else means the lease was forfeited (expiry,
  // requeue, a rival finisher) while this worker was partitioned.
  std::string error;
  const auto current = spool_->ReadItem("running", it->second.item.id, &error);
  if (!current || current->attempt != it->second.item.attempt) {
    leases_.erase(it);
    *why = "lease lost: item is no longer running under this attempt";
    return nullptr;
  }
  const auto beat = ReadHeartbeat(spool_->HeartbeatPath(it->second.item.id));
  if (!beat || beat->owner != it->second.owner) {
    leases_.erase(it);
    *why = "lease lost: heartbeat owned by someone else";
    return nullptr;
  }
  return &it->second;
}

HttpResponse LeaseService::HandleLease(const HttpRequest& request) {
  const auto body = ParseBodyRow(request.body);
  if (!body) {
    return HttpError(400, "lease request body is not a JSON object");
  }
  std::string worker = body->Text("worker");
  if (worker.empty()) {
    worker = "remote";
  }

  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t owner = next_owner_++;
  std::string error;
  const auto item = spool_->Claim(owner, &error);
  if (!item) {
    if (!error.empty()) {
      return HttpError(500, error);
    }
    ResultRow row;
    row.AddText("state", drained_.load() ? "drained" : "empty");
    return JsonOk(row);
  }
  ever_leased_.store(true);

  Lease lease;
  lease.item = *item;
  lease.owner = owner;
  lease.worker = worker;
  // Rows streamed by previous attempts are the resume set: the worker skips
  // those points, and /results treats their fingerprints as already seen.
  std::vector<std::uint64_t> done_points;
  for (const std::string& part : spool_->PartPaths(item->id)) {
    for (const ResultRow& row : LoadPartialRows(part)) {
      const auto index = PointIndexOf(row);
      if (index) {
        done_points.push_back(*index);
        lease.fingerprints.insert(PointFingerprint(row));
      }
    }
  }

  const std::string token = HexU64(
      Fnv1a64(item->id + "/" + std::to_string(item->attempt) + "/" +
              std::to_string(owner)));
  leases_[token] = std::move(lease);

  ResultRow response;
  response.AddText("state", "lease");
  response.AddText("token", token);
  response.AddText("item", WorkItemToJson(*item));
  response.AddText("spec", spec_text_);  // verbatim; JsonEscape carries \n
  response.AddText("name", meta_.name);
  response.AddText("spec_hash", meta_.spec_hash);
  response.AddInt("points_total", meta_.points);
  response.AddInt("expected_points", ExpectedItemPoints(*item, meta_.points));
  response.AddNumber("lease_sec", options_.lease_sec);
  response.AddText("done_points", JoinIndices(done_points));

  ResultRow event;
  event.AddText("event", "lease_granted");
  event.AddText("item", item->id);
  event.AddInt("attempt", item->attempt);
  event.AddInt("owner", owner);
  event.AddText("worker", worker);
  spool_->AppendEvent(std::move(event));
  if (options_.log != nullptr) {
    *options_.log << "sweepd: leased " << item->id << " (attempt "
                  << item->attempt << ") to " << worker << "\n";
  }
  return JsonOk(response);
}

HttpResponse LeaseService::HandleHeartbeat(const HttpRequest& request) {
  const auto body = ParseBodyRow(request.body);
  if (!body) {
    return HttpError(400, "heartbeat body is not a JSON object");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string why;
  Lease* lease = Validate(body->Text("token"), &why);
  if (lease == nullptr) {
    return HttpError(410, why);
  }
  const std::uint64_t rows =
      static_cast<std::uint64_t>(body->Number("rows", 0.0));
  WriteHeartbeat(spool_->HeartbeatPath(lease->item.id), {rows, lease->owner});
  ResultRow row;
  row.AddText("state", "ok");
  row.AddNumber("lease_sec", options_.lease_sec);
  return JsonOk(row);
}

HttpResponse LeaseService::HandleResults(const HttpRequest& request) {
  // Body: one token line, then result rows as JSONL.
  std::istringstream lines(request.body);
  std::string line;
  if (!std::getline(lines, line)) {
    return HttpError(400, "empty results body");
  }
  const auto header = ParseBodyRow(line);
  if (!header) {
    return HttpError(400, "results header is not a JSON object");
  }

  std::lock_guard<std::mutex> lock(mu_);
  std::string why;
  Lease* lease = Validate(header->Text("token"), &why);
  if (lease == nullptr) {
    return HttpError(410, why);
  }

  // Dedup before append: a replayed or duplicated chunk (client retry after
  // a lost response, injected request duplication) re-sends fingerprints we
  // have already written, so it falls through to a no-op.
  std::size_t accepted = 0;
  std::size_t duplicates = 0;
  std::size_t malformed = 0;
  std::ostringstream fresh;
  while (std::getline(lines, line)) {
    if (line.empty() || line == "\r") {
      continue;
    }
    std::string error;
    const auto row = RowFromJson(line, &error);
    if (!row || !PointIndexOf(*row)) {
      ++malformed;  // retried chunks re-send whole; a torn line heals itself
      continue;
    }
    const std::string fingerprint = PointFingerprint(*row);
    if (!lease->fingerprints.insert(fingerprint).second) {
      ++duplicates;
      continue;
    }
    fresh << RowToJson(*row) << "\n";
    ++accepted;
  }
  if (accepted > 0) {
    const std::string part_path =
        spool_->PartPath(lease->item.id, lease->item.attempt);
    std::ofstream part(part_path, std::ios::app);
    if (!part) {
      return HttpError(500, "cannot append to part file");
    }
    part << fresh.str();
    part.flush();
    if (!part) {
      return HttpError(500, "short write to part file");
    }
    lease->uploaded += accepted;
    // An upload is proof of life as good as a heartbeat.
    WriteHeartbeat(spool_->HeartbeatPath(lease->item.id),
                   {lease->uploaded, lease->owner});
  }

  ResultRow row;
  row.AddText("state", "ok");
  row.AddInt("accepted", accepted);
  row.AddInt("duplicates", duplicates);
  row.AddInt("malformed", malformed);
  return JsonOk(row);
}

HttpResponse LeaseService::HandleDone(const HttpRequest& request) {
  const auto body = ParseBodyRow(request.body);
  if (!body) {
    return HttpError(400, "done body is not a JSON object");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string why;
  Lease* lease = Validate(body->Text("token"), &why);
  if (lease == nullptr) {
    return HttpError(410, why);
  }
  // Copies: the lease table entry dies before the event is written.
  const WorkItem item = lease->item;
  const std::uint64_t owner = lease->owner;

  // Finalize exactly as a local worker would: every attempt's part rows,
  // merged under the shared conflict rule, in global point-index order.
  std::map<std::uint64_t, ResultRow> merged;
  MergeStats stats;
  for (const std::string& part : spool_->PartPaths(item.id)) {
    for (ResultRow& row : LoadPartialRows(part)) {
      std::string error;
      if (!MergeRowInto(&merged, std::move(row), &stats, &error)) {
        return HttpError(409, "uploaded rows conflict: " + error);
      }
    }
  }
  const std::size_t expected = ExpectedItemPoints(item, meta_.points);
  if (merged.size() < expected) {
    // A /done racing an unacknowledged /results chunk (or a worker that
    // lost track) must not publish a short shard; the client re-uploads
    // and retries.
    ResultRow row;
    row.AddText("error", "incomplete upload");
    row.AddInt("have", merged.size());
    row.AddInt("want", expected);
    HttpResponse response;
    response.status = 409;
    response.body = RowToJson(row) + "\n";
    return response;
  }

  std::size_t error_rows = 0;
  RunMeta run_meta;
  run_meta.spec_name = meta_.name;
  run_meta.spec_hash = meta_.spec_hash;
  run_meta.git_sha = DefaultGitSha();
  run_meta.created = NowUtc();
  run_meta.host = HostName();
  run_meta.points = merged.size();
  std::ostringstream out;
  out << RowToJson(MetaToRow(run_meta)) << "\n";
  for (const auto& [index, row] : merged) {
    (void)index;
    if (IsErrorRow(row)) {
      ++error_rows;
    }
    out << RowToJson(row) << "\n";
  }
  std::string error;
  if (!WriteFileAtomic(spool_->RowsPath(item.id), out.str(), &error)) {
    return HttpError(500, error);
  }
  if (!spool_->FinishItem(item, &error)) {
    // Requeued between Validate and here (the dispatcher thread races us by
    // design); the rows file is deterministic, so the re-run converges.
    for (auto it = leases_.begin(); it != leases_.end();) {
      it = it->second.item.id == item.id ? leases_.erase(it) : std::next(it);
    }
    return HttpError(410, "lease lost while finalizing: " + error);
  }
  for (auto it = leases_.begin(); it != leases_.end();) {
    it = it->second.item.id == item.id ? leases_.erase(it) : std::next(it);
  }

  ResultRow event;
  event.AddText("event", error_rows > 0 ? "shard_poisoned" : "shard_done");
  event.AddText("item", item.id);
  event.AddInt("attempt", item.attempt);
  event.AddInt("rows", merged.size());
  event.AddInt("error_rows", error_rows);
  event.AddInt("owner", owner);
  spool_->AppendEvent(std::move(event));
  if (options_.log != nullptr) {
    *options_.log << "sweepd: " << item.id << " done remotely (" << merged.size()
                  << " rows, " << error_rows << " errors)\n";
  }

  ResultRow row;
  row.AddText("state", "ok");
  row.AddInt("rows", merged.size());
  row.AddInt("error_rows", error_rows);
  return JsonOk(row);
}

}  // namespace mobisim
