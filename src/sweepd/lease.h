// HTTP lease protocol: how remote workers serve a spool they cannot mount.
//
// A shared-filesystem worker talks to the spool directly — rename() is its
// claim, a heartbeat file its liveness, a part file its streamed rows.  A
// remote worker has only the dispatcher's HTTP endpoint, so this service
// translates four POSTs into exactly those spool operations:
//
//   POST /lease      claim one queued item.  The response carries the work
//                    item, the canonical spec text *verbatim* (remote and
//                    local workers parse identical bytes), a lease token,
//                    and the point indices already streamed by previous
//                    attempts (the resume set).
//   POST /heartbeat  rewrite the item's heartbeat file.  The dispatcher's
//                    existing lease-expiry loop needs no remote awareness:
//                    a partitioned worker simply stops beating and the item
//                    requeues through the normal spool lifecycle.
//   POST /results    append a chunk of result rows to the attempt's part
//                    file.  Idempotent by point fingerprint: a duplicated
//                    or replayed chunk (retries, injected network faults)
//                    changes nothing, so clients may retry blindly.
//   POST /done       finalize: merge part rows, publish done/<id>.jsonl
//                    atomically, move the task — the same sequence a local
//                    worker performs, validated against the expected point
//                    count so a torn upload can never finalize short.
//
// Failure ordering is resolved by the token table plus the spool itself: a
// token is valid only while its item sits in running/ with the granted
// attempt number and its heartbeat still names the granted owner.  When the
// dispatcher requeues an expired lease it invalidates the token, so a late
// upload from a partitioned worker gets 410 Gone and cannot corrupt the
// merged output; the rows it streamed before the partition stay in the old
// part file, where the next claimant inherits them (deterministic points
// make any overlap collapse as exact duplicates at merge time).
//
// Tokens are capabilities against *accidental* misuse (a worker replaying a
// stale lease), not authentication: the endpoint binds to loopback unless
// explicitly told otherwise, and trusts its network.
#ifndef MOBISIM_SRC_SWEEPD_LEASE_H_
#define MOBISIM_SRC_SWEEPD_LEASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <set>
#include <string>

#include "src/sweepd/spool.h"
#include "src/util/http_server.h"

namespace mobisim {

// Points a whole-shard item covers (FilterShard arithmetic) or the explicit
// retry list's size — what /done requires before it will finalize.
std::size_t ExpectedItemPoints(const WorkItem& item, std::size_t total_points);

struct LeaseServiceOptions {
  double lease_sec = 30.0;  // echoed to workers so they pace heartbeats
  std::ostream* log = nullptr;
};

class LeaseService {
 public:
  LeaseService(const Spool* spool, SpoolMeta meta, std::string spec_text,
               LeaseServiceOptions options);

  // Serves the four lease endpoints; nullopt when `request.path` is not one
  // of them (the caller falls through to its own routes).  Thread-safe.
  std::optional<HttpResponse> Handle(const HttpRequest& request);

  // Dispatcher recovery hook: called before an item is requeued or failed so
  // the holder's token dies with the lease.  Uploads racing this call are
  // still safe — Validate re-checks the running/ state under the lock.
  void InvalidateItem(const std::string& id);

  // Once true, /lease answers "drained" instead of "empty" when the queue is
  // dry: the dispatcher has confirmed (post retry-enqueue) that no further
  // work will ever appear, so pollers may exit instead of spinning.
  void set_drained(bool drained) { drained_.store(drained); }

  bool ever_leased() const { return ever_leased_.load(); }
  std::size_t active_leases() const;

 private:
  struct Lease {
    WorkItem item;
    std::uint64_t owner = 0;
    std::string worker;  // self-reported name, for events and status
    // Fingerprints of every row already in the item's part files (seeded at
    // grant time, grown per upload): the idempotency filter for /results.
    std::set<std::string> fingerprints;
    std::uint64_t uploaded = 0;  // rows accepted, mirrored into the heartbeat
  };

  HttpResponse HandleLease(const HttpRequest& request);
  HttpResponse HandleHeartbeat(const HttpRequest& request);
  HttpResponse HandleResults(const HttpRequest& request);
  HttpResponse HandleDone(const HttpRequest& request);

  // Looks up `token` and proves the lease still holds: item in running/ with
  // the granted attempt, heartbeat owned by the granted owner.  On any
  // mismatch the token is erased and `why` explains the 410.  mu_ held.
  Lease* Validate(const std::string& token, std::string* why);

  const Spool* spool_;
  SpoolMeta meta_;
  std::string spec_text_;
  LeaseServiceOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, Lease> leases_;  // token -> lease
  std::uint64_t next_owner_ = 0;
  std::atomic<bool> drained_{false};
  std::atomic<bool> ever_leased_{false};
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_SWEEPD_LEASE_H_
