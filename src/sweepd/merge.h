// Merging shard JSONL outputs back into one run.
//
// The sharding contract (src/runner/experiment_spec.h: FilterShard) keeps
// point indices global, and every point's row is deterministic, so merging
// is pure bookkeeping: collect rows, order by global point index, and
// deduplicate by point fingerprint.  Duplicates appear legitimately — a
// shard re-run after a worker death, a retry of individual `_error` points,
// the same directory merged twice — and always resolve the same way: exact
// duplicates collapse, a clean row replaces an `_error` row for the same
// point (a retry succeeded), an `_error` row never replaces a clean one,
// and two differing clean rows for one point is a hard error (those are not
// shards of the same sweep).
//
// This one code path serves `mobisim_sweep --merge`, the sweepd dispatcher's
// final and incremental merges, and the `GET /results` live view.
#ifndef MOBISIM_SRC_SWEEPD_MERGE_H_
#define MOBISIM_SRC_SWEEPD_MERGE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/result_io.h"

namespace mobisim {

class Spool;

// Global point index of a data row; nullopt when the row has none (such
// rows cannot take part in an index-ordered merge).
std::optional<std::uint64_t> PointIndexOf(const ResultRow& row);

// True when the row records a failed point (`_error` column present) —
// the fault subsystem's classification of a poisoned sweep point.
bool IsErrorRow(const ResultRow& row);

// 16-hex-digit FNV-1a fingerprint of the row's full rendered content.  Two
// occurrences of the same deterministic point collapse to one fingerprint;
// any difference in metadata or metrics changes it.
std::string PointFingerprint(const ResultRow& row);

// Data rows of a possibly torn streamed JSONL file: malformed lines (a
// crash mid-write leaves at most one, at the tail) and metadata headers are
// skipped instead of failing the load.  This is how a worker resumes from a
// dead predecessor's partial output.
std::vector<ResultRow> LoadPartialRows(const std::string& path);

struct MergeStats {
  std::size_t files = 0;
  std::size_t rows_in = 0;
  std::size_t duplicates = 0;  // exact re-occurrences collapsed
  std::size_t overridden = 0;  // _error rows replaced by a clean retry row
  std::size_t error_rows = 0;  // _error rows remaining after the merge
};

// The single conflict-resolution rule every merge entry point shares (and
// the lease service's /done finalizer): exact duplicates collapse, a clean
// row replaces an `_error` row for the same point, never the reverse, and
// two differing clean rows is the one hard error (returns false with
// `error` set).  `merged` is keyed by global point index.
bool MergeRowInto(std::map<std::uint64_t, ResultRow>* merged, ResultRow row,
                  MergeStats* stats, std::string* error);

struct MergedRun {
  std::string spec_hash;  // consistent across all inputs that declared one
  std::vector<ResultRow> rows;  // global point-index order
  MergeStats stats;
};

// Merges complete shard run files (each an optional metadata header plus
// data rows).  Files carrying different spec fingerprints refuse to merge.
std::optional<MergedRun> MergeShardFiles(const std::vector<std::string>& files,
                                         std::string* error);

// Merges a directory of shard outputs: a spool root (its done/*.jsonl), a
// spool's done/ directory itself, or a flat directory of
// `mobisim_sweep --shard` JSONL files.
std::optional<MergedRun> MergeShardDir(const std::string& dir, std::string* error);

// Live view of a spool mid-run: done rows plus the streamed partial rows of
// running attempts.  Tolerant by construction (partial files may be torn).
MergedRun MergeSpoolLive(const Spool& spool);

struct CliOptions;

// Exports a merged run everywhere the common CLI flags ask: an optional
// JSONL file at `merged_path` (atomic, with a metadata header), the
// --jsonl/--csv sinks, JSONL on stdout when nothing else was requested,
// and an idempotent bench_db merge for --db.  `tool` prefixes the summary
// lines.  Returns a process exit status (0 on success).  One function so
// `mobisim_sweep --merge` and `mobisim_sweepd merge`/`serve` cannot drift.
int ExportMergedRun(const MergedRun& merged, const CliOptions& common,
                    const std::string& run_name, const std::string& merged_path,
                    const char* tool);

}  // namespace mobisim

#endif  // MOBISIM_SRC_SWEEPD_MERGE_H_
