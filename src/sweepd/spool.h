// Persistent spool directory: the shared state of a local sweep service.
//
// A sweep is split into shard work items that live as small JSON files and
// move between four state directories by atomic rename — the classic
// maildir-style queue, chosen so that a dispatcher, N worker processes, and
// a human with `ls` all see exactly one consistent state per item, and a
// crash at any instant leaves the spool recoverable:
//
//   <root>/spec.spec              canonical ExperimentSpec text (the truth)
//   <root>/spool.json             run name, spec fingerprint, shards, points
//   <root>/queue/<id>.task        items waiting for a worker
//   <root>/running/<id>.task      leased items
//   <root>/running/<id>.hb        lease heartbeat (src/util/heartbeat.h)
//   <root>/running/<id>.a<K>.jsonl.part  attempt-K streamed rows (resume input)
//   <root>/done/<id>.task         completed items
//   <root>/done/<id>.jsonl        their rows (complete: WriteFileAtomic)
//   <root>/failed/<id>.task       items whose retry budget is exhausted
//   <root>/events.jsonl           append-only event log
//   <root>/http.port              live status endpoint's port, while serving
//   <root>/merged.jsonl           final merged run (written by serve/merge)
//
// Claiming is rename(queue/X, running/X): exactly one of two racing workers
// succeeds, the other sees ENOENT and moves on.  Requeueing writes the item
// (attempt+1) back into queue/ atomically before unlinking the running copy,
// so a dispatcher crash can duplicate a queue entry but never lose one —
// and re-running a shard is safe because point results are deterministic.
#ifndef MOBISIM_SRC_SWEEPD_SPOOL_H_
#define MOBISIM_SRC_SWEEPD_SPOOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/result_io.h"
#include "src/runner/experiment_spec.h"

namespace mobisim {

// One unit of dispatchable work: a whole shard of the grid (points.empty())
// or an explicit point list (a retry of individual `_error` points).
struct WorkItem {
  std::string id;                   // "shard-0003", retries "shard-0003.r1"
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::vector<std::size_t> points;  // empty = all of index % shards == shard
  std::size_t attempt = 0;          // 0 first try; bumped by every requeue/retry
};

std::string WorkItemToJson(const WorkItem& item);
std::optional<WorkItem> WorkItemFromJson(const std::string& text, std::string* error);

// Identity of the whole run, written once at spool creation.
struct SpoolMeta {
  std::string name;       // run name (doubles as the bench_db spec name)
  std::string spec_hash;  // SpecFingerprint of spec.spec
  std::size_t shards = 0;
  std::size_t points = 0;  // total grid size
  std::string created;
  std::string host;
};

class Spool {
 public:
  explicit Spool(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  // Creates the layout, writes the spec source text verbatim (after
  // validating that it parses — workers re-parse these exact bytes, so
  // dispatcher and workers cannot disagree about the grid) plus the
  // metadata, and enqueues `shards` whole-shard items.  Refuses a root that
  // already holds a spool (delete it explicitly to restart from scratch — a
  // half-finished spool is resumable state, not garbage).  Returns nullopt
  // with `error` on failure.
  static std::optional<Spool> Create(const std::string& root,
                                     const std::string& spec_text,
                                     const std::string& name, std::size_t shards,
                                     std::string* error);

  std::optional<SpoolMeta> ReadMeta(std::string* error) const;
  std::optional<ExperimentSpec> LoadSpec(std::string* error) const;
  // The verbatim bytes of spec.spec — what `POST /lease` hands to a remote
  // worker, so a worker across the network parses the exact same text a
  // shared-filesystem worker would.
  std::optional<std::string> ReadSpecText(std::string* error) const;

  // --- paths ---
  std::string SpecPath() const { return root_ + "/spec.spec"; }
  std::string MetaPath() const { return root_ + "/spool.json"; }
  std::string TaskPath(const std::string& state, const std::string& id) const {
    return root_ + "/" + state + "/" + id + ".task";
  }
  std::string HeartbeatPath(const std::string& id) const {
    return root_ + "/running/" + id + ".hb";
  }
  std::string PartPath(const std::string& id, std::size_t attempt) const {
    return root_ + "/running/" + id + ".a" + std::to_string(attempt) +
           ".jsonl.part";
  }
  std::string RowsPath(const std::string& id) const {
    return root_ + "/done/" + id + ".jsonl";
  }
  std::string EventsPath() const { return root_ + "/events.jsonl"; }
  std::string PortPath() const { return root_ + "/http.port"; }
  std::string MergedPath() const { return root_ + "/merged.jsonl"; }

  // --- item lifecycle ---
  bool Enqueue(const WorkItem& item, std::string* error) const;
  // Claims the lexicographically first queued item by renaming it into
  // running/ (the rename IS the lease) and writes the first heartbeat for
  // `owner`.  nullopt with empty `error` when the queue is empty.
  std::optional<WorkItem> Claim(std::uint64_t owner, std::string* error) const;
  // Moves a finished item's task from running/ to done/ (its rows file must
  // already be in place) and removes the lease + part files.  Returns false
  // when the lease was lost (the item is no longer in running/): the caller
  // must treat the shard as re-owned by someone else and touch nothing.
  bool FinishItem(const WorkItem& item, std::string* error) const;
  // Dispatcher recovery: writes the item back into queue/ with attempt+1,
  // then retires the running copy.  Part files are kept — the next owner
  // resumes from the rows the dead worker already streamed.
  bool Requeue(const WorkItem& item, std::string* error) const;
  // Retires an item whose retry budget is exhausted into failed/.
  bool FailItem(const WorkItem& item, const std::string& state_from,
                std::string* error) const;

  // --- inspection ---
  // Item ids present in a state directory ("queue", "running", ...), sorted.
  std::vector<std::string> ListIds(const std::string& state) const;
  std::optional<WorkItem> ReadItem(const std::string& state, const std::string& id,
                                   std::string* error) const;
  // Every attempt's part file for `id` that exists on disk, sorted.
  std::vector<std::string> PartPaths(const std::string& id) const;

  struct Counts {
    std::size_t queued = 0;
    std::size_t running = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
  };
  Counts CountItems() const;

  // Appends one event line (a "ts" field is prepended) to events.jsonl.
  // Single-write O_APPEND semantics keep concurrent appenders line-atomic.
  void AppendEvent(ResultRow event) const;

 private:
  std::string root_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_SWEEPD_SPOOL_H_
