// Worker process loop: claim shards from a spool, run them, stream rows.
//
// A worker is stateless by design — everything it needs (the canonical
// spec, the shard arithmetic, a trace cache) is either in the spool or
// derivable, so any number of workers on any machine sharing the spool
// filesystem can serve one sweep, and a freshly respawned worker can pick
// up where a dead one stopped: the dead worker's streamed part file is
// read back, already-completed points are skipped, and only the remainder
// is simulated.  Point results are deterministic, so a re-run of the same
// point (duplicated work after a lease expires spuriously) merges away as
// an exact-duplicate row.
//
// Failed points become `_error` rows (the sweep engine's fault
// classification) rather than killing the shard; a shard that carries any
// is "poisoned" and the worker's exit status says so, so a dispatcher can
// retry exactly those points.
#ifndef MOBISIM_SRC_SWEEPD_WORKER_H_
#define MOBISIM_SRC_SWEEPD_WORKER_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "src/util/http_client.h"

namespace mobisim {

struct WorkerOptions {
  std::string spool_root;
  std::size_t jobs = 1;       // simulation threads inside this worker
  std::uint64_t owner = 0;    // heartbeat owner id; 0 = getpid()
  std::string trace_cache_dir;
  double heartbeat_sec = 1.0;
  std::ostream* log = nullptr;  // per-item progress lines; null = quiet

  // Test hooks, used by the crash-recovery tests and the CI smoke job:
  // sleep after each emitted row (so a status poll can observe a live run),
  // and die via _Exit after emitting N rows in total — indistinguishable
  // from `kill -9` at the spool level: the lease goes stale, the part file
  // ends mid-shard, nothing is finalized.
  std::size_t throttle_ms = 0;
  std::size_t kill_after_rows = 0;  // 0 = never

  static constexpr int kExitClean = 0;
  static constexpr int kExitPoisoned = 3;  // finished, but with _error rows
};

struct WorkerSummary {
  std::size_t items = 0;
  std::size_t rows = 0;        // rows this worker simulated and streamed
  std::size_t resumed = 0;     // rows inherited from dead predecessors
  std::size_t error_rows = 0;  // poisoned points among its own rows
  std::size_t lost_leases = 0;
};

// Claims and runs queued items until the queue is empty, then returns.
// The process exit code should be kExitPoisoned when error_rows > 0.
WorkerSummary RunWorkerLoop(const WorkerOptions& options);

// --- remote mode (`work --connect HOST:PORT`) ---
//
// The same worker, speaking the dispatcher's HTTP lease protocol instead of
// touching the spool: POST /lease to claim (the response carries the spec
// text verbatim and the resume set), a background thread POSTing
// /heartbeat, result rows uploaded in chunks via POST /results (idempotent
// server-side, so chunks are retried blindly), POST /done to finalize.
//
// Partition tolerance is the worker's half of the protocol: every request
// runs under connect/read deadlines with bounded exponential backoff, an
// HTTP 410 on any request means the lease was forfeited (stop work on the
// item, claim the next — whatever was uploaded is inherited by the next
// owner), and a dispatcher that stays unreachable through the retry budget
// ends the loop rather than spinning forever.
struct RemoteWorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t jobs = 1;
  std::string worker_name;  // self-reported in /lease; default host:pid
  std::string trace_cache_dir;
  double heartbeat_sec = 1.0;
  double poll_sec = 0.5;        // wait between /lease polls while queue is empty
  std::size_t chunk_rows = 8;   // rows per /results upload
  HttpClientOptions http;       // timeouts, retries, backoff
  NetFaultConfig net_fault;     // injected drops/delays/duplicates (tests, CI)
  std::ostream* log = nullptr;

  // Same test hooks as the local worker (see WorkerOptions).
  std::size_t throttle_ms = 0;
  std::size_t kill_after_rows = 0;  // _Exit(137) after N rows, like kill -9

  static constexpr int kExitClean = 0;
  static constexpr int kExitPoisoned = 3;     // finished, but with _error rows
  static constexpr int kExitUnreachable = 4;  // dispatcher gone past retries
};

struct RemoteWorkerSummary {
  std::size_t items = 0;       // shards this worker finalized via /done
  std::size_t rows = 0;        // rows simulated and uploaded
  std::size_t inherited = 0;   // points skipped via the lease's resume set
  std::size_t error_rows = 0;  // poisoned points among its own rows
  std::size_t lost_leases = 0;
  std::uint64_t transport_failures = 0;  // failed attempts (before retry)
  bool drained = false;      // dispatcher confirmed the sweep is complete
  bool unreachable = false;  // loop ended because the dispatcher vanished
};

RemoteWorkerSummary RunRemoteWorkerLoop(const RemoteWorkerOptions& options);

}  // namespace mobisim

#endif  // MOBISIM_SRC_SWEEPD_WORKER_H_
