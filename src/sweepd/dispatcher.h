// Fault-tolerant dispatch of a spooled sweep across local worker processes.
//
// The dispatcher owns no simulation: it creates work items (Spool::Create
// does that), spawns and reaps worker processes, and enforces the lease
// protocol — a running item whose heartbeat goes stale past the lease
// deadline, or whose owning spawned worker died, is requeued with its
// attempt count bumped; an item that exhausts its retry budget moves to
// failed/.  Completed shards that carry `_error` rows (poisoned points)
// get targeted retry items for exactly those point indices, again up to
// the retry budget, after which the `_error` rows stand in the merged
// output.
//
// While running it serves a minimal HTTP endpoint (GET /status: live
// counters, points/sec, ETA; GET /results: the merged view so far) and
// appends every state transition to events.jsonl.
#ifndef MOBISIM_SRC_SWEEPD_DISPATCHER_H_
#define MOBISIM_SRC_SWEEPD_DISPATCHER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/result_io.h"

namespace mobisim {

class Spool;
struct SpoolMeta;

struct DispatcherOptions {
  std::string spool_root;
  std::size_t workers = 0;          // local workers to spawn; 0 = external only
  std::size_t jobs_per_worker = 1;  // simulation threads per worker
  // Extra attempts an item (and an `_error` point) gets beyond its first.
  std::size_t retry_budget = 1;
  double lease_sec = 30.0;  // heartbeat silence that forfeits a lease
  double poll_sec = 0.25;
  int http_port = -1;  // -1 = no endpoint; 0 = ephemeral (port in http.port)
  // Loopback-only by default; binding all interfaces (so `work --connect`
  // can reach the lease endpoints from another machine) takes an explicit
  // flag because the endpoint trusts its network.
  bool http_bind_any = false;
  std::string trace_cache_dir;  // forwarded to spawned workers
  std::ostream* log = nullptr;

  // Worker binary for spawned workers; empty = this binary (/proc/self/exe).
  std::string worker_binary;
  // Test hooks forwarded to spawned workers (see WorkerOptions): throttle
  // every worker, and have the FIRST spawned worker die after N rows.
  std::size_t throttle_ms = 0;
  std::size_t kill_first_worker_after_rows = 0;
};

struct DispatchSummary {
  std::size_t shards_done = 0;
  std::size_t shards_failed = 0;
  std::size_t points_done = 0;   // distinct points with a merged row
  std::size_t error_points = 0;  // points still `_error` after retries
  std::size_t requeues = 0;      // lease recoveries (worker death / stall)
  std::size_t retries = 0;       // targeted `_error`-point retry items
  std::size_t workers_spawned = 0;
  bool complete = false;  // every item reached done/ (or failed/)
};

// Runs the dispatch loop to completion.  The spool must already exist
// (Spool::Create).  Returns the summary; `complete` with zero failures and
// zero error points is a fully clean sweep.
DispatchSummary RunDispatcher(const DispatcherOptions& options);

// The live counters row (the GET /status payload): shard states, point
// progress, points/sec over `elapsed_sec`, and the ETA those imply.  Also
// used by the `status` subcommand when it inspects a spool directly.
ResultRow SpoolStatusRow(const Spool& spool, const SpoolMeta& meta,
                         double elapsed_sec);

// One row per running item: attempt, heartbeat owner, last-heartbeat age
// (-1 when no heartbeat was ever written), and whether the lease is stale
// against `lease_sec` (0 disables the staleness verdict).
std::vector<ResultRow> SpoolLeaseRows(const Spool& spool, double lease_sec);

// The full /status body: SpoolStatusRow's fields plus "lease_sec" and a
// nested "leases" array of SpoolLeaseRows.  (Nested JSON — consumers that
// only understand flat rows should use SpoolStatusRow directly.)
std::string RenderStatusJson(const Spool& spool, const SpoolMeta& meta,
                             double elapsed_sec, double lease_sec);

}  // namespace mobisim

#endif  // MOBISIM_SRC_SWEEPD_DISPATCHER_H_
