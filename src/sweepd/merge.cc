#include "src/sweepd/merge.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "src/bench_db/bench_db.h"
#include "src/runner/cli_options.h"
#include "src/runner/sweep_runner.h"
#include "src/sweepd/spool.h"
#include "src/util/atomic_file.h"
#include "src/util/hash.h"

namespace mobisim {

namespace {

namespace fs = std::filesystem;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

MergedRun Finalize(std::map<std::uint64_t, ResultRow> merged, MergeStats stats,
                   std::string spec_hash) {
  MergedRun run;
  run.spec_hash = std::move(spec_hash);
  run.stats = stats;
  run.rows.reserve(merged.size());
  for (auto& [index, row] : merged) {
    (void)index;
    if (IsErrorRow(row)) {
      ++run.stats.error_rows;
    }
    run.rows.push_back(std::move(row));
  }
  return run;
}

}  // namespace

bool MergeRowInto(std::map<std::uint64_t, ResultRow>* merged, ResultRow row,
                  MergeStats* stats, std::string* error) {
  const auto index = PointIndexOf(row);
  if (!index) {
    SetError(error, "data row without a global point index cannot be merged");
    return false;
  }
  ++stats->rows_in;
  const auto it = merged->find(*index);
  if (it == merged->end()) {
    merged->emplace(*index, std::move(row));
    return true;
  }
  if (PointFingerprint(it->second) == PointFingerprint(row)) {
    ++stats->duplicates;  // the same deterministic row seen again
    return true;
  }
  const bool stored_error = IsErrorRow(it->second);
  const bool incoming_error = IsErrorRow(row);
  if (stored_error && !incoming_error) {
    it->second = std::move(row);  // a retry succeeded
    ++stats->overridden;
    return true;
  }
  if (!stored_error && incoming_error) {
    ++stats->duplicates;  // stale failure after a success: keep the success
    return true;
  }
  if (stored_error) {
    it->second = std::move(row);  // both failed: keep the later attempt's message
    ++stats->duplicates;
    return true;
  }
  SetError(error, "point " + std::to_string(*index) +
                      ": conflicting non-error rows; the inputs are not shards "
                      "of the same deterministic sweep");
  return false;
}

std::optional<std::uint64_t> PointIndexOf(const ResultRow& row) {
  const ResultField* field = row.Find("point");
  if (field == nullptr || field->quoted) {
    return std::nullopt;
  }
  const double value = row.Number("point", -1.0);
  if (value < 0.0) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value);
}

bool IsErrorRow(const ResultRow& row) { return row.Find("_error") != nullptr; }

std::string PointFingerprint(const ResultRow& row) {
  return HexU64(Fnv1a64(RowToJson(row)));
}

std::vector<ResultRow> LoadPartialRows(const std::string& path) {
  std::vector<ResultRow> rows;
  std::ifstream in(path);
  if (!in) {
    return rows;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    auto row = RowFromJson(line, &parse_error);
    if (!row || IsMetaRow(*row) || !PointIndexOf(*row)) {
      continue;  // torn tail of a crashed writer, or a header: not data
    }
    rows.push_back(std::move(*row));
  }
  return rows;
}

std::optional<MergedRun> MergeShardFiles(const std::vector<std::string>& files,
                                         std::string* error) {
  std::map<std::uint64_t, ResultRow> merged;
  MergeStats stats;
  std::string spec_hash;
  for (const std::string& file : files) {
    ++stats.files;
    std::string load_error;
    auto run = LoadRunFile(file, &load_error);
    if (!run) {
      SetError(error, load_error);
      return std::nullopt;
    }
    if (run->has_meta && !run->meta.spec_hash.empty()) {
      if (spec_hash.empty()) {
        spec_hash = run->meta.spec_hash;
      } else if (spec_hash != run->meta.spec_hash) {
        SetError(error, file + ": spec fingerprint " + run->meta.spec_hash +
                            " disagrees with " + spec_hash +
                            "; these shards come from different experiments");
        return std::nullopt;
      }
    }
    for (ResultRow& row : run->rows) {
      std::string merge_error;
      if (!MergeRowInto(&merged, std::move(row), &stats, &merge_error)) {
        SetError(error, file + ": " + merge_error);
        return std::nullopt;
      }
    }
  }
  return Finalize(std::move(merged), stats, std::move(spec_hash));
}

std::optional<MergedRun> MergeShardDir(const std::string& dir, std::string* error) {
  std::error_code ec;
  // A spool root points at its done/ directory; anything else is taken as a
  // flat directory of shard JSONL files.
  std::string scan = dir;
  if (fs::is_directory(dir + "/done", ec)) {
    scan = dir + "/done";
  }
  std::vector<std::string> files;
  fs::directory_iterator it(scan, ec);
  if (ec) {
    SetError(error, "cannot list " + scan + ": " + ec.message());
    return std::nullopt;
  }
  for (const auto& entry : it) {
    if (entry.path().extension() == ".jsonl") {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) {
    SetError(error, "no .jsonl shard outputs in " + scan);
    return std::nullopt;
  }
  std::sort(files.begin(), files.end());
  return MergeShardFiles(files, error);
}

MergedRun MergeSpoolLive(const Spool& spool) {
  std::map<std::uint64_t, ResultRow> merged;
  MergeStats stats;
  std::string spec_hash;
  for (const std::string& id : spool.ListIds("done")) {
    ++stats.files;
    for (ResultRow& row : LoadPartialRows(spool.RowsPath(id))) {
      std::string ignored;
      MergeRowInto(&merged, std::move(row), &stats, &ignored);
    }
  }
  for (const std::string& id : spool.ListIds("running")) {
    for (const std::string& part : spool.PartPaths(id)) {
      ++stats.files;
      for (ResultRow& row : LoadPartialRows(part)) {
        std::string ignored;
        MergeRowInto(&merged, std::move(row), &stats, &ignored);
      }
    }
  }
  return Finalize(std::move(merged), stats, std::move(spec_hash));
}

int ExportMergedRun(const MergedRun& merged, const CliOptions& common,
                    const std::string& run_name, const std::string& merged_path,
                    const char* tool) {
  RunMeta meta;
  meta.spec_name = run_name;
  meta.spec_hash = merged.spec_hash;
  meta.git_sha = common.git_sha.empty() ? DefaultGitSha() : common.git_sha;
  meta.created = NowUtc();
  meta.host = HostName();
  meta.points = merged.rows.size();

  std::string error;
  if (!merged_path.empty()) {
    std::ostringstream out;
    out << RowToJson(MetaToRow(meta)) << "\n";
    for (const ResultRow& row : merged.rows) {
      out << RowToJson(row) << "\n";
    }
    if (!WriteFileAtomic(merged_path, out.str(), &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  SinkSet sinks;
  if (!sinks.Open(common, meta, SweepCsvHeader(), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // With no destination at all, JSONL goes to stdout: the merged run IS the
  // output of a merge, not a side effect.
  std::unique_ptr<JsonlResultSink> stdout_jsonl;
  std::vector<ResultSink*> outs = sinks.sinks();
  if (outs.empty() && common.db_root.empty() && merged_path.empty()) {
    std::cout << RowToJson(MetaToRow(meta)) << "\n";
    stdout_jsonl = std::make_unique<JsonlResultSink>(std::cout);
    outs.push_back(stdout_jsonl.get());
  }
  for (ResultSink* sink : outs) {
    for (const ResultRow& row : merged.rows) {
      if (IsErrorRow(row) && !sink->AcceptsErrorRows()) {
        continue;
      }
      sink->Write(row);
    }
  }
  sinks.Finish();
  if (stdout_jsonl != nullptr) {
    stdout_jsonl->Finish();
  }

  if (!common.db_root.empty()) {
    BenchDb db(common.db_root);
    const auto stored = db.MergeRun(meta, merged.rows, &error);
    if (!stored) {
      std::fprintf(stderr, "error merging into store: %s\n", error.c_str());
      return 1;
    }
    if (!common.quiet) {
      std::fprintf(stderr, "%s: merged into %s (spec hash %s)\n", tool,
                   stored->c_str(), meta.spec_hash.c_str());
    }
  }
  if (!common.quiet) {
    std::fprintf(stderr,
                 "%s: %zu rows merged (%zu files, %zu duplicates collapsed, "
                 "%zu error rows)\n",
                 tool, merged.rows.size(), merged.stats.files,
                 merged.stats.duplicates, merged.stats.error_rows);
  }
  return 0;
}

}  // namespace mobisim
