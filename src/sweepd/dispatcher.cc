#include "src/sweepd/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/sweepd/lease.h"
#include "src/sweepd/merge.h"
#include "src/sweepd/spool.h"
#include "src/util/atomic_file.h"
#include "src/util/bytes.h"
#include "src/util/heartbeat.h"
#include "src/util/http_server.h"

namespace mobisim {

namespace {

// "shard-0003.r2" -> "shard-0003": retry items chain off the original id.
std::string BaseId(const std::string& id) {
  const std::size_t dot = id.find(".r");
  return dot == std::string::npos ? id : id.substr(0, dot);
}

std::string SelfBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return "";
  }
  buf[n] = '\0';
  return buf;
}

pid_t SpawnWorker(const std::string& binary, const DispatcherOptions& options,
                  std::size_t kill_after_rows) {
  std::vector<std::string> args = {binary, "work", "--spool", options.spool_root,
                                   "--jobs", std::to_string(options.jobs_per_worker),
                                   "--quiet"};
  if (!options.trace_cache_dir.empty()) {
    args.push_back("--trace-cache");
    args.push_back(options.trace_cache_dir);
  }
  if (options.throttle_ms > 0) {
    args.push_back("--throttle-ms");
    args.push_back(std::to_string(options.throttle_ms));
  }
  if (kill_after_rows > 0) {
    args.push_back("--kill-after-rows");
    args.push_back(std::to_string(kill_after_rows));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; the parent sees a dead worker and respawns
  }
  return pid;
}

// On-disk footprint of the spool directory, best-effort: files appear and
// vanish while workers run, so any stat error just skips that file.
std::uint64_t SpoolDiskBytes(const std::string& root) {
  std::uint64_t bytes = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(root, ec);
  const std::filesystem::recursive_directory_iterator end;
  while (!ec && it != end) {
    if (it->is_regular_file(ec) && !ec) {
      const std::uintmax_t size = it->file_size(ec);
      if (!ec) {
        bytes += size;
      }
    }
    ec.clear();
    it.increment(ec);
  }
  return bytes;
}

}  // namespace

ResultRow SpoolStatusRow(const Spool& spool, const SpoolMeta& meta,
                         double elapsed_sec) {
  const Spool::Counts counts = spool.CountItems();
  const MergedRun merged = MergeSpoolLive(spool);
  const std::size_t done_points = merged.rows.size();
  const double rate = elapsed_sec > 0.0 ? done_points / elapsed_sec : 0.0;
  const std::size_t remaining =
      meta.points > done_points ? meta.points - done_points : 0;

  ResultRow row;
  row.AddText("name", meta.name);
  row.AddText("spec_hash", meta.spec_hash);
  row.AddInt("shards_queued", counts.queued);
  row.AddInt("shards_running", counts.running);
  row.AddInt("shards_done", counts.done);
  row.AddInt("shards_failed", counts.failed);
  row.AddInt("points_total", meta.points);
  row.AddInt("points_done", done_points);
  row.AddInt("error_points", merged.stats.error_rows);
  row.AddNumber("elapsed_sec", elapsed_sec);
  row.AddNumber("points_per_sec", rate);
  row.AddNumber("eta_sec", rate > 0.0 ? remaining / rate : 0.0);
  // Disk footprint both ways: the raw count for tooling, the human form for
  // anyone watching `sweepd status` or the /status endpoint directly.
  const std::uint64_t spool_bytes = SpoolDiskBytes(spool.root());
  row.AddInt("spool_bytes", spool_bytes);
  row.AddText("spool_size", HumanBytes(spool_bytes));
  return row;
}

std::vector<ResultRow> SpoolLeaseRows(const Spool& spool, double lease_sec) {
  std::vector<ResultRow> rows;
  for (const std::string& id : spool.ListIds("running")) {
    std::string error;
    const auto item = spool.ReadItem("running", id, &error);
    const auto beat = ReadHeartbeat(spool.HeartbeatPath(id));
    const auto age = SecondsSinceModified(spool.HeartbeatPath(id));
    ResultRow row;
    row.AddText("item", id);
    row.AddInt("attempt", item ? item->attempt : 0);
    row.AddInt("owner", beat ? beat->owner : 0);
    row.AddInt("rows", beat ? beat->counter : 0);
    row.AddNumber("heartbeat_age_sec", age ? *age : -1.0);
    row.AddInt("stale", lease_sec > 0.0 && age && *age > lease_sec ? 1 : 0);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderStatusJson(const Spool& spool, const SpoolMeta& meta,
                             double elapsed_sec, double lease_sec) {
  std::string flat = RowToJson(SpoolStatusRow(spool, meta, elapsed_sec));
  flat.pop_back();  // re-open the object to splice in the nested array
  std::ostringstream out;
  out << flat << ",\"lease_sec\":" << lease_sec << ",\"leases\":[";
  bool first = true;
  for (const ResultRow& row : SpoolLeaseRows(spool, lease_sec)) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << RowToJson(row);
  }
  out << "]}";
  return out.str();
}

namespace {

std::string RenderResults(const Spool& spool, const SpoolMeta& meta) {
  const MergedRun merged = MergeSpoolLive(spool);
  RunMeta header;
  header.spec_name = meta.name;
  header.spec_hash = meta.spec_hash;
  header.git_sha = "live";
  header.created = meta.created;
  header.host = meta.host;
  header.points = merged.rows.size();
  std::ostringstream out;
  out << RowToJson(MetaToRow(header)) << "\n";
  for (const ResultRow& row : merged.rows) {
    out << RowToJson(row) << "\n";
  }
  return out.str();
}

}  // namespace

DispatchSummary RunDispatcher(const DispatcherOptions& options) {
  DispatchSummary summary;
  Spool spool(options.spool_root);
  std::string error;
  const auto meta = spool.ReadMeta(&error);
  if (!meta) {
    if (options.log != nullptr) {
      *options.log << "sweepd: " << error << "\n";
    }
    return summary;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  // Live endpoint: /status and /results recompute from the spool on every
  // request, so the handler needs no shared mutable state with this loop;
  // the lease endpoints (POST /lease, /heartbeat, /results, /done) go
  // through the LeaseService, which locks internally.
  HttpServer http;
  std::unique_ptr<LeaseService> lease_service;
  if (options.http_port >= 0) {
    const auto spec_text = spool.ReadSpecText(&error);
    if (!spec_text) {
      if (options.log != nullptr) {
        *options.log << "sweepd: " << error << "\n";
      }
      return summary;
    }
    LeaseServiceOptions lease_options;
    lease_options.lease_sec = options.lease_sec;
    lease_options.log = options.log;
    lease_service =
        std::make_unique<LeaseService>(&spool, *meta, *spec_text, lease_options);
    const bool ok = http.Start(
        static_cast<std::uint16_t>(options.http_port), options.http_bind_any,
        [&spool, &meta, &elapsed, &options,
         lease = lease_service.get()](const HttpRequest& request) {
          if (auto handled = lease->Handle(request)) {
            return *handled;
          }
          HttpResponse response;
          if (request.path == "/status" || request.path == "/") {
            response.body =
                RenderStatusJson(spool, *meta, elapsed(), options.lease_sec) +
                "\n";
          } else if (request.path == "/results") {
            response.content_type = "application/jsonl";
            response.body = RenderResults(spool, *meta);
          } else {
            response = HttpNotFound();
          }
          return response;
        },
        &error);
    if (!ok) {
      if (options.log != nullptr) {
        *options.log << "sweepd: http: " << error << "\n";
      }
      return summary;
    }
    WriteFileAtomic(spool.PortPath(), std::to_string(http.port()) + "\n");
    if (options.log != nullptr) {
      *options.log << "sweepd: status at http://127.0.0.1:" << http.port()
                   << "/status\n";
    }
  }

  const std::string binary =
      options.worker_binary.empty() ? SelfBinary() : options.worker_binary;
  std::map<pid_t, std::size_t> live;  // pid -> worker ordinal
  // Hard cap on total spawns: generous headroom over the expected respawn
  // churn, so a crash-looping worker binary cannot fork-bomb the machine.
  const std::size_t spawn_cap =
      options.workers * (options.retry_budget + 2) + 4;

  const auto spawn_if_needed = [&] {
    while (live.size() < options.workers &&
           summary.workers_spawned < spawn_cap &&
           !spool.ListIds("queue").empty() && !binary.empty()) {
      const std::size_t kill_rows = summary.workers_spawned == 0
                                        ? options.kill_first_worker_after_rows
                                        : 0;
      const pid_t pid = SpawnWorker(binary, options, kill_rows);
      if (pid <= 0) {
        return;
      }
      live.emplace(pid, summary.workers_spawned);
      ++summary.workers_spawned;
      ResultRow event;
      event.AddText("event", "worker_spawned");
      event.AddInt("pid", static_cast<std::uint64_t>(pid));
      spool.AppendEvent(std::move(event));
    }
  };

  // Requeue an item whose lease was forfeited, or fail it when its retry
  // budget is spent.
  const auto recover = [&](const WorkItem& item, const std::string& why) {
    if (lease_service) {
      // The holder's token dies with the lease: a late upload from the old
      // owner now gets 410 Gone instead of touching the requeued item.
      lease_service->InvalidateItem(item.id);
    }
    ResultRow event;
    if (item.attempt < options.retry_budget) {
      if (spool.Requeue(item, &error)) {
        ++summary.requeues;
        event.AddText("event", "shard_requeued");
      } else {
        event.AddText("event", "requeue_failed");
      }
    } else {
      spool.FailItem(item, "running", &error);
      event.AddText("event", "shard_failed");
    }
    event.AddText("item", item.id);
    event.AddInt("attempt", item.attempt);
    event.AddText("why", why);
    spool.AppendEvent(std::move(event));
    if (options.log != nullptr) {
      *options.log << "sweepd: " << item.id << " " << why << " (attempt "
                   << item.attempt << ")\n";
    }
  };

  std::set<std::string> processed_done;
  std::set<std::uint64_t> dead_owners;
  // Items observed in running/ without a heartbeat yet, and when (elapsed
  // seconds) each was first seen.  rename() preserves mtimes, so a freshly
  // claimed item's task file can look arbitrarily old — the lease clock for
  // a heartbeat-less item starts when the dispatcher first notices it.
  std::map<std::string, double> first_seen_without_heartbeat;

  spawn_if_needed();
  while (true) {
    // Reap spawned workers; a death is also an instant lease forfeit for
    // every item the dead pid owned (no need to wait out the deadline).
    for (auto it = live.begin(); it != live.end();) {
      int status = 0;
      const pid_t done = ::waitpid(it->first, &status, WNOHANG);
      if (done == it->first) {
        ResultRow event;
        event.AddText("event", "worker_exit");
        event.AddInt("pid", static_cast<std::uint64_t>(it->first));
        event.AddInt("status", static_cast<std::uint64_t>(
                                   WIFEXITED(status) ? WEXITSTATUS(status) : 128));
        spool.AppendEvent(std::move(event));
        dead_owners.insert(static_cast<std::uint64_t>(it->first));
        it = live.erase(it);
      } else {
        ++it;
      }
    }

    // Lease enforcement over running items.
    for (const std::string& id : spool.ListIds("running")) {
      const auto item = spool.ReadItem("running", id, &error);
      if (!item) {
        continue;  // claimed or finished between listing and reading
      }
      const auto beat = ReadHeartbeat(spool.HeartbeatPath(id));
      const bool owner_dead = beat && dead_owners.count(beat->owner) > 0;
      const auto age = SecondsSinceModified(spool.HeartbeatPath(id));
      double silence = 0.0;
      if (age) {
        first_seen_without_heartbeat.erase(id);
        silence = *age;
      } else {
        const auto [it, inserted] =
            first_seen_without_heartbeat.emplace(id, elapsed());
        silence = inserted ? 0.0 : elapsed() - it->second;
      }
      if (owner_dead) {
        recover(*item, "worker died");
      } else if (silence > options.lease_sec) {
        recover(*item, "lease expired");
      }
    }

    // Poisoned-shard handling: a completed shard whose rows include
    // `_error` points gets a targeted retry item for exactly those
    // indices, up to the retry budget.
    for (const std::string& id : spool.ListIds("done")) {
      if (!processed_done.insert(id).second) {
        continue;
      }
      const auto item = spool.ReadItem("done", id, &error);
      if (!item) {
        continue;
      }
      std::vector<std::size_t> error_points;
      for (const ResultRow& row : LoadPartialRows(spool.RowsPath(id))) {
        const auto index = PointIndexOf(row);
        if (index && IsErrorRow(row)) {
          error_points.push_back(static_cast<std::size_t>(*index));
        }
      }
      if (error_points.empty()) {
        continue;
      }
      const std::size_t round = item->attempt + 1;
      ResultRow event;
      if (round <= options.retry_budget) {
        WorkItem retry;
        retry.id = BaseId(id) + ".r" + std::to_string(round);
        retry.shard = item->shard;
        retry.shards = item->shards;
        retry.points = error_points;
        retry.attempt = round;
        if (spool.Enqueue(retry, &error)) {
          ++summary.retries;
          event.AddText("event", "points_retried");
          event.AddText("item", retry.id);
        } else {
          event.AddText("event", "retry_enqueue_failed");
          event.AddText("item", id);
        }
      } else {
        event.AddText("event", "points_exhausted");
        event.AddText("item", id);
      }
      event.AddInt("error_points", error_points.size());
      event.AddInt("round", round);
      spool.AppendEvent(std::move(event));
    }

    spawn_if_needed();

    const Spool::Counts counts = spool.CountItems();
    if (counts.queued == 0 && counts.running == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(options.poll_sec));
  }

  // Workers exit on their own once the queue drains; reap the stragglers.
  for (const auto& [pid, ordinal] : live) {
    (void)ordinal;
    int status = 0;
    ::waitpid(pid, &status, 0);
  }

  if (lease_service && lease_service->ever_leased()) {
    // Tell remote pollers the sweep is over — "drained", not "empty" — and
    // keep serving briefly so they can hear it and exit cleanly instead of
    // finding a closed port mid-poll.
    lease_service->set_drained(true);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(2.0 * options.poll_sec + 0.25));
  }

  if (http.running()) {
    http.Stop();
    std::error_code ec;
    std::filesystem::remove(spool.PortPath(), ec);
  }

  const Spool::Counts counts = spool.CountItems();
  const MergedRun merged = MergeSpoolLive(spool);
  summary.shards_done = counts.done;
  summary.shards_failed = counts.failed;
  summary.points_done = merged.rows.size();
  summary.error_points = merged.stats.error_rows;
  summary.complete = counts.queued == 0 && counts.running == 0;
  ResultRow event;
  event.AddText("event", "sweep_complete");
  event.AddInt("shards_done", summary.shards_done);
  event.AddInt("shards_failed", summary.shards_failed);
  event.AddInt("points_done", summary.points_done);
  event.AddInt("error_points", summary.error_points);
  spool.AppendEvent(std::move(event));
  return summary;
}

}  // namespace mobisim
